(** Constraint solving over input-byte variables.

    A {!store} maintains interval domains for every byte variable together
    with the list of accumulated path constraints.  Adding a constraint
    triggers interval propagation (forward evaluation plus best-effort
    backward narrowing), which is what lets directed symbolic execution
    prune unsatisfiable branch choices cheaply — the loop-dead test of
    §III-B.  Full model construction ([solve]) performs backtracking search
    with a node budget; every candidate model is verified by concrete
    evaluation, so narrowing never needs to be complete for soundness. *)

open Octo_vm.Isa

type interval = int * int (* inclusive; over 0..2^32-1 *)

let word_max = 0xFFFFFFFF
let top : interval = (0, word_max)
let byte_top : interval = (0, 255)

type store = {
  mutable doms : (int * interval) list;  (* assoc var -> domain; sorted not required *)
  mutable cons : Expr.cond list;         (* newest first *)
  mutable nvars : int;
}

let create () = { doms = []; cons = []; nvars = 0 }

let copy s = { doms = s.doms; cons = s.cons; nvars = s.nvars }

let dom s v = match List.assoc_opt v s.doms with Some d -> d | None -> byte_top

let set_dom s v d = s.doms <- (v, d) :: List.remove_assoc v s.doms

let constraints s = List.rev s.cons

(* ------------------------------------------------------------------ *)
(* Forward interval evaluation with wrap-awareness: any operation that
   might wrap returns [top] rather than a wrong tight bound. *)

let pow2_bound hi =
  let rec go b = if b > hi && b - 1 <= word_max then b - 1 else go (b * 2) in
  if hi >= word_max then word_max else go 1

let rec ival s (e : Expr.t) : interval =
  match e with
  | Const v -> (v, v)
  | Byte i -> dom s i
  | Sel (table, idx) ->
      (* Bounds over the feasible slice of the table. *)
      let li, hi_ = ival s idx in
      let lo = max 0 li and hi = min (Array.length table - 1) hi_ in
      if lo > hi then (0, 0)
      else begin
        let mn = ref table.(lo) and mx = ref table.(lo) in
        for i = lo to hi do
          mn := min !mn table.(i);
          mx := max !mx table.(i)
        done;
        (* An out-of-range index evaluates to 0. *)
        if li < 0 || hi_ >= Array.length table then (min 0 !mn, !mx) else (!mn, !mx)
      end
  | Bin (op, a, b) ->
      let la, ha = ival s a and lb, hb = ival s b in
      (match op with
      | Add -> if ha + hb <= word_max then (la + lb, ha + hb) else top
      | Sub -> if la - hb >= 0 then (la - hb, ha - lb) else top
      | Mul ->
          (* Overflow-safe product bound: ha*hb can exceed the native int
             range, so divide instead of multiplying. *)
          if ha = 0 || hb <= word_max / ha then (la * lb, ha * hb) else top
      | Div -> if lb > 0 then (la / hb, ha / lb) else top
      | Mod -> if lb > 0 then (0, hb - 1) else top
      | And -> (0, min ha hb)
      | Or -> (max la lb, pow2_bound (max ha hb + min ha hb))
      | Xor -> (0, pow2_bound (max ha hb + min ha hb))
      | Shl ->
          (* Shift counts are masked to 31, as in the VM semantics; the
             overflow check divides rather than shifting left. *)
          let k = lb land 31 in
          if lb = hb && ha <= word_max lsr k then (la lsl k, ha lsl k) else top
      | Shr ->
          let k = lb land 31 in
          if lb = hb then (la lsr k, ha lsr k) else (0, ha))

(* ------------------------------------------------------------------ *)
(* Condition evaluation under current domains. *)

type verdict = True | False | Maybe

let eval_cond_iv s (c : Expr.cond) : verdict =
  let la, ha = ival s c.lhs and lb, hb = ival s c.rhs in
  match c.rel with
  | Eq -> if la = ha && lb = hb && la = lb then True else if ha < lb || la > hb then False else Maybe
  | Ne -> if ha < lb || la > hb then True else if la = ha && lb = hb && la = lb then False else Maybe
  | Lt -> if ha < lb then True else if la >= hb then False else Maybe
  | Le -> if ha <= lb then True else if la > hb then False else Maybe
  | Gt -> if la > hb then True else if ha <= lb then False else Maybe
  | Ge -> if la >= hb then True else if ha < lb then False else Maybe

(* ------------------------------------------------------------------ *)
(* Backward narrowing: given that expression [e] must lie within [lo,hi],
   tighten byte-variable domains.  Handles the invertible spine shapes that
   dominate parser constraints (offsets, lengths, masked bytes); anything
   else is left to search. *)

exception Unsat_exn

let inter (l1, h1) (l2, h2) =
  let l = max l1 l2 and h = min h1 h2 in
  if l > h then raise Unsat_exn;
  (l, h)

let rec narrow s (e : Expr.t) ((lo, hi) as want : interval) =
  if lo > hi then raise Unsat_exn;
  match e with
  | Const v -> if v < lo || v > hi then raise Unsat_exn
  | Byte i -> set_dom s i (inter (dom s i) (inter want byte_top))
  | Sel (table, idx) ->
      (* Only indices whose table entry lies in [want] remain feasible;
         narrow the index to their convex hull. *)
      let li, hi_ = ival s idx in
      let lo_i = max 0 li and hi_i = min (Array.length table - 1) hi_ in
      let first = ref (-1) and last = ref (-1) in
      for i = lo_i to hi_i do
        if table.(i) >= lo && table.(i) <= hi then begin
          if !first < 0 then first := i;
          last := i
        end
      done;
      if !first < 0 then raise Unsat_exn else narrow s idx (!first, !last)
  | Bin (op, a, b) -> (
      match (op, Expr.to_const_opt a, Expr.to_const_opt b) with
      | Add, Some k, None ->
          if lo - k >= 0 && hi - k <= word_max then narrow s b (max 0 (lo - k), hi - k)
      | Add, None, Some k ->
          if lo - k >= 0 && hi - k <= word_max then narrow s a (max 0 (lo - k), hi - k)
      | Sub, None, Some k -> if hi + k <= word_max then narrow s a (lo + k, hi + k)
      | Mul, Some k, None when k > 0 ->
          narrow s b ((lo + k - 1) / k, hi / k)
      | Mul, None, Some k when k > 0 ->
          narrow s a ((lo + k - 1) / k, hi / k)
      | Shl, None, Some k ->
          let k = k land 31 in
          narrow s a ((lo + (1 lsl k) - 1) lsr k, hi lsr k)
      | Shr, None, Some k ->
          let k = k land 31 in
          if hi <= word_max lsr k then
            narrow s a (lo lsl k, (hi lsl k) lor ((1 lsl k) - 1))
      | And, None, Some 0xff ->
          (* Common byte-masking pattern: the mask is exact when the operand
             is already a byte. *)
          let la, ha = ival s a in
          if ha <= 0xff then narrow s a (inter (la, ha) want)
      | _ ->
          (* No inversion known: at least check feasibility. *)
          let l, h = ival s e in
          if h < lo || l > hi then raise Unsat_exn)

let narrow_cond s (c : Expr.cond) =
  let la, ha = ival s c.lhs and lb, hb = ival s c.rhs in
  match c.rel with
  | Eq ->
      let l = max la lb and h = min ha hb in
      if l > h then raise Unsat_exn;
      narrow s c.lhs (l, h);
      narrow s c.rhs (l, h)
  | Ne -> (
      (* Only exact when one side is a fixed constant at a domain edge. *)
      match (Expr.to_const_opt c.lhs, Expr.to_const_opt c.rhs) with
      | Some v, None ->
          if lb = hb && lb = v then raise Unsat_exn;
          if v = lb then narrow s c.rhs (lb + 1, hb)
          else if v = hb then narrow s c.rhs (lb, hb - 1)
      | None, Some v ->
          if la = ha && la = v then raise Unsat_exn;
          if v = la then narrow s c.lhs (la + 1, ha)
          else if v = ha then narrow s c.lhs (la, ha - 1)
      | Some x, Some y -> if x = y then raise Unsat_exn
      | None, None -> ())
  | Lt ->
      if lb = 0 && hb = 0 then raise Unsat_exn;
      narrow s c.lhs (la, min ha (hb - 1));
      narrow s c.rhs (max lb (la + 1), hb)
  | Le ->
      narrow s c.lhs (la, min ha hb);
      narrow s c.rhs (max lb la, hb)
  | Gt ->
      narrow s c.lhs (max la (lb + 1), ha);
      narrow s c.rhs (lb, min hb (ha - 1))
  | Ge ->
      narrow s c.lhs (max la lb, ha);
      narrow s c.rhs (lb, min hb ha)

(* Re-propagate all constraints to a fixpoint (domains only shrink, so this
   terminates).  A pass cap guards against pathological ping-ponging. *)
let propagate s =
  let max_passes = 50 in
  let rec go pass =
    if pass >= max_passes then ()
    else begin
      let before = s.doms in
      List.iter (fun c -> narrow_cond s c) s.cons;
      if s.doms != before && s.doms <> before then go (pass + 1)
    end
  in
  go 0

type add_result = Ok | Unsat

(** [add s c] records constraint [c] and propagates.  [Unsat] means the
    store is now definitely unsatisfiable (domains emptied); [Ok] means it
    may still be satisfiable. *)
let add s (c : Expr.cond) : add_result =
  s.cons <- c :: s.cons;
  List.iter (fun v -> if not (List.mem_assoc v s.doms) then s.nvars <- s.nvars + 1)
    (Expr.cond_vars c);
  try
    propagate s;
    Ok
  with Unsat_exn -> Unsat

(** [entails s c] evaluates [c] under the current domains. *)
let entails s c = eval_cond_iv s c

(* ------------------------------------------------------------------ *)
(* Model search. *)

type model = (int, int) Hashtbl.t

(** [model_byte m i] reads offset [i] from a model; unconstrained bytes
    default to 0. *)
let model_byte (m : model) i = match Hashtbl.find_opt m i with Some v -> v | None -> 0

type solve_result =
  | Sat of model
  | Unsat_result
  | Unknown  (** node budget exhausted *)

let all_vars s =
  List.fold_left
    (fun acc c -> List.fold_left (fun a v -> if List.mem v a then a else v :: a) acc (Expr.cond_vars c))
    [] s.cons
  |> List.sort compare

(* Check all constraints whose variables are fully fixed by the domains. *)
let check_fixed s =
  let env i =
    let l, h = dom s i in
    if l = h then l else raise Exit
  in
  List.for_all
    (fun c -> try Expr.eval_cond env c with Exit -> true | Expr.Symbolic_division_by_zero -> false)
    s.cons

(** [solve ?budget s] searches for a concrete byte assignment satisfying
    every constraint in [s].  The search assigns variables smallest-domain
    first and verifies the final assignment by concrete evaluation. *)
let solve ?(budget = 200_000) (s : store) : solve_result =
  let nodes = ref 0 in
  let vars = all_vars s in
  let exception Found of model in
  let rec go (st : store) remaining =
    incr nodes;
    if !nodes > budget then raise Exit;
    (* Select the unfixed variable with the smallest domain. *)
    let unfixed =
      List.filter_map
        (fun v ->
          let l, h = dom st v in
          if l = h then None else Some (v, h - l))
        remaining
    in
    match unfixed with
    | [] ->
        if check_fixed st then begin
          let m = Hashtbl.create 16 in
          List.iter
            (fun v ->
              let l, _ = dom st v in
              Hashtbl.replace m v l)
            vars;
          raise (Found m)
        end
    | _ ->
        let v, _ = List.fold_left (fun (bv, bw) (v, w) -> if w < bw then (v, w) else (bv, bw))
            (List.hd unfixed) (List.tl unfixed)
        in
        let l, h = dom st v in
        let try_value x =
          let st' = copy st in
          set_dom st' v (x, x);
          match (try propagate st'; true with Unsat_exn -> false) with
          | true -> go st' remaining
          | false -> ()
        in
        (* Ascending scan is fine: domains are at most 256 wide. *)
        for x = l to h do
          try_value x
        done
  in
  try
    (try propagate s with Unsat_exn -> raise Not_found);
    go s vars;
    Unsat_result
  with
  | Found m -> Sat m
  | Exit -> Unknown
  | Not_found -> Unsat_result

(** [sat ?budget s extra] checks satisfiability of [s] plus the extra
    constraints without mutating [s]. *)
let sat ?budget (s : store) (extra : Expr.cond list) : solve_result =
  let s' = copy s in
  let ok = List.for_all (fun c -> add s' c = Ok) extra in
  if not ok then Unsat_result else solve ?budget s'
