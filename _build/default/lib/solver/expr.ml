(** Symbolic expressions over input-file bytes.

    The symbolic executor models every byte of the input file as a variable
    [Byte i] (its file offset).  Register and memory contents become
    expressions over those variables with 32-bit wrap-around semantics,
    matching {!Octo_vm.Isa.eval_binop}.  This module is the term language of
    the constraint solver that replaces angr's solver engine (paper §IV-B). *)

open Octo_vm.Isa

type t =
  | Const of int          (** 32-bit constant *)
  | Byte of int           (** input-file byte at offset [i]; value in 0..255 *)
  | Bin of binop * t * t
  | Sel of int array * t
      (** [Sel (table, idx)]: a load from a concrete read-only table at a
          symbolic index (already normalised to be in-bounds).  Produced by
          the symbolic executor for table lookups such as indirect-dispatch
          handler tables, letting the solver reason about which index
          selects a wanted value instead of concretizing the address. *)

type cond = {
  rel : relop;
  lhs : t;
  rhs : t;
}
(** A path constraint: [lhs rel rhs] must hold (unsigned comparison). *)

let const v = Const (mask32 v)
let byte i = Byte i

(* Constant folding keeps expression trees small: almost all arithmetic in
   a concrete execution prefix folds away immediately. *)
let bin op a b =
  match (a, b) with
  | Const x, Const y -> (
      match op with
      | Div | Mod when mask32 y = 0 -> Bin (op, a, b) (* preserved; faults at eval *)
      | _ -> Const (eval_binop op x y))
  | Const 0, e when op = Add || op = Or || op = Xor -> e
  | e, Const 0 when op = Add || op = Sub || op = Or || op = Xor || op = Shl || op = Shr -> e
  | e, Const 1 when op = Mul || op = Div -> e
  | _ -> Bin (op, a, b)

let is_const = function Const _ -> true | Byte _ | Bin _ | Sel _ -> false

let to_const_opt = function Const v -> Some v | Byte _ | Bin _ | Sel _ -> None

(** [sel table idx] builds a table select, folding constant indices. *)
let sel table idx =
  match idx with
  | Const i when i >= 0 && i < Array.length table -> Const table.(i)
  | _ -> Sel (table, idx)

exception Symbolic_division_by_zero

(** [eval env e] evaluates [e] under the byte assignment [env]. *)
let rec eval env e =
  match e with
  | Const v -> v
  | Byte i -> env i land 0xff
  | Bin (op, a, b) ->
      let x = eval env a and y = eval env b in
      (match op with
      | (Div | Mod) when mask32 y = 0 -> raise Symbolic_division_by_zero
      | _ -> eval_binop op x y)
  | Sel (table, idx) ->
      let i = eval env idx in
      if i >= 0 && i < Array.length table then table.(i) else 0

(** [eval_cond env c] decides [c] under a full assignment. *)
let eval_cond env c = eval_relop c.rel (eval env c.lhs) (eval env c.rhs)

(** [vars e] collects the byte offsets occurring in [e]. *)
let rec vars_acc acc = function
  | Const _ -> acc
  | Byte i -> i :: acc
  | Bin (_, a, b) -> vars_acc (vars_acc acc a) b
  | Sel (_, idx) -> vars_acc acc idx

let vars e = List.sort_uniq compare (vars_acc [] e)

let cond_vars c = List.sort_uniq compare (vars_acc (vars_acc [] c.lhs) c.rhs)

(** [negate_rel r] is the relation holding exactly when [r] does not. *)
let negate_rel = function
  | Eq -> Ne
  | Ne -> Eq
  | Lt -> Ge
  | Ge -> Lt
  | Le -> Gt
  | Gt -> Le

let negate c = { c with rel = negate_rel c.rel }

let rec pp ppf = function
  | Const v -> Fmt.pf ppf "%d" v
  | Byte i -> Fmt.pf ppf "in[%d]" i
  | Bin (op, a, b) -> Fmt.pf ppf "(%a %s %a)" pp a (string_of_binop op) pp b
  | Sel (table, idx) -> Fmt.pf ppf "table%d[%a]" (Array.length table) pp idx

let pp_cond ppf c = Fmt.pf ppf "%a %s %a" pp c.lhs (string_of_relop c.rel) pp c.rhs

(** [size e] is the node count, used to bound expression growth. *)
let rec size = function
  | Const _ | Byte _ -> 1
  | Bin (_, a, b) -> 1 + size a + size b
  | Sel (_, idx) -> 1 + size idx
