lib/solver/solve.ml: Array Expr Hashtbl List Octo_vm
