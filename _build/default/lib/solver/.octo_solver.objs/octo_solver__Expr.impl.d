lib/solver/expr.ml: Array Fmt List Octo_vm
