(** Byte-string helpers shared across the PoC-manipulation code paths. *)

(** [of_int_list l] builds a byte string from integer byte values
    (each masked to 8 bits). *)
let of_int_list l =
  let b = Bytes.create (List.length l) in
  List.iteri (fun i v -> Bytes.set_uint8 b i (v land 0xff)) l;
  Bytes.to_string b

(** [to_int_list s] is the inverse of {!of_int_list}. *)
let to_int_list s = List.init (String.length s) (fun i -> Char.code s.[i])

(** [concat parts] concatenates byte strings. *)
let concat parts = String.concat "" parts

(** [u16le v] encodes [v] as two little-endian bytes. *)
let u16le v = of_int_list [ v land 0xff; (v lsr 8) land 0xff ]

(** [u32le v] encodes [v] as four little-endian bytes. *)
let u32le v =
  of_int_list [ v land 0xff; (v lsr 8) land 0xff; (v lsr 16) land 0xff; (v lsr 24) land 0xff ]

(** [repeat n c] is a string of [n] copies of byte [c]. *)
let repeat n c = String.make n (Char.chr (c land 0xff))

(** [hexdump s] renders [s] in the classic 16-bytes-per-line hex layout,
    used by the CLI and examples when showing PoC files. *)
let hexdump s =
  let buf = Buffer.create (String.length s * 4) in
  let n = String.length s in
  let rec line off =
    if off < n then begin
      Buffer.add_string buf (Printf.sprintf "%08x  " off);
      for i = off to off + 15 do
        if i < n then Buffer.add_string buf (Printf.sprintf "%02x " (Char.code s.[i]))
        else Buffer.add_string buf "   ";
        if i - off = 7 then Buffer.add_char buf ' '
      done;
      Buffer.add_string buf " |";
      for i = off to min (off + 15) (n - 1) do
        let c = s.[i] in
        Buffer.add_char buf (if c >= ' ' && c <= '~' then c else '.')
      done;
      Buffer.add_string buf "|\n";
      line (off + 16)
    end
  in
  line 0;
  Buffer.contents buf

(** [diff_offsets a b] lists the offsets at which [a] and [b] differ
    (including length mismatch tails).  Used to classify Type-I vs Type-II
    guiding-input changes in reports. *)
let diff_offsets a b =
  let la = String.length a and lb = String.length b in
  let n = max la lb in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      let ca = if i < la then Some a.[i] else None in
      let cb = if i < lb then Some b.[i] else None in
      if ca = cb then go (i + 1) acc else go (i + 1) (i :: acc)
  in
  go 0 []
