lib/util/bytes_util.ml: Buffer Bytes Char List Printf String
