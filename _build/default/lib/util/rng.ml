(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic component of the reproduction (fuzzers, workload
    generators) draws from this generator so that benchmark tables are
    reproducible run-to-run.  The implementation follows Steele et al.'s
    splitmix64 reference, truncated to OCaml's 63-bit native ints. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* One splitmix64 step: golden-gamma increment then two xor-shift mixes. *)
let next_int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** [bits t] returns 62 uniformly random non-negative bits. *)
let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

(** [int t n] returns a uniform value in [0, n).  [n] must be positive. *)
let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  bits t mod n

(** [byte t] returns a uniform value in [0, 255]. *)
let byte t = int t 256

(** [bool t] flips a fair coin. *)
let bool t = bits t land 1 = 1

(** [choose t arr] picks a uniform element of [arr]. *)
let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))

(** [split t] derives an independent generator, advancing [t]. *)
let split t = { state = next_int64 t }
