(** Profile-guided devirtualization: the "dynamic CFG" repair for
    unresolvable indirect calls.

    The paper's Idx-15 failure is an angr CFG-recovery defect on an indirect
    call; the authors note the pair would verify once fixed (§V-B).  This
    pass implements the fix the way binary-analysis frameworks do it:
    replay the target on concrete seeds, record which functions each
    indirect call site actually reaches (the dynamic CFG of §IV-B), and
    rewrite every unresolvable [Icall] into a direct call to a synthesized
    dispatcher that compares the runtime slot against each observed target.

    The rewrite is semantics-preserving on all observed targets (unobserved
    slots terminate with a distinct exit code instead of trapping), keeps
    instruction indices stable (one instruction replaces one instruction, so
    labels survive), and makes the program fully analysable by {!Cfg.build}
    and the directed symbolic executor. *)

open Octo_vm.Isa

(* Dispatcher naming: one synthesized function per rewritten call site. *)
let dispatcher_name fname pc = Printf.sprintf "__devirt_%s_%d" fname pc

let slot_of_function (prog : program) name =
  let found = ref None in
  Array.iteri (fun i n -> if n = name && !found = None then found := Some i) prog.ftable;
  !found

(* Build the dispatcher body: the runtime slot arrives in r0 and the
   original call arguments in r1..rn.  Layout, three instructions per
   observed target:
     3k:   Jif Ne r0, slot_k -> 3(k+1)   (no match: try the next target)
     3k+1: Call target_k (r1..rn) -> r31
     3k+2: Ret r31
   The final slot (3n) is a distinct exit for unobserved targets. *)
let dispatcher_code ~targets ~nargs : instr array =
  let args = List.init nargs (fun i -> Reg (i + 1)) in
  let code =
    List.concat
      (List.mapi
         (fun k (target, slot) ->
           [ Jif (Ne, Reg 0, Imm slot, 3 * (k + 1)); Call (target, args, Some 31); Ret (Reg 31) ])
         targets)
    @ [ Sys (Exit (Imm 97)) ]
  in
  Array.of_list code

(** [apply prog ~observed] rewrites every register-indirect call whose
    enclosing function has observed outgoing call edges.  Functions are
    shared with the original program except the rewritten ones; the
    function table is extended with the dispatchers (appended, so existing
    slots keep their meaning). *)
let apply (prog : program) ~(observed : Dyncfg.observed) : program =
  let new_funcs : (string, func) Hashtbl.t = Hashtbl.create 16 in
  let dispatchers = ref [] in
  Hashtbl.iter
    (fun fname (f : func) ->
      let code = Array.copy f.code in
      Array.iteri
        (fun pc ins ->
          match ins with
          | Icall ((Reg _ | Sym _), args, dst) ->
              let targets =
                Dyncfg.call_edges observed
                |> List.filter_map (fun (caller, callee) ->
                       if caller = fname then
                         match slot_of_function prog callee with
                         | Some slot when Hashtbl.mem prog.funcs callee -> Some (callee, slot)
                         | _ -> None
                       else None)
                |> List.sort_uniq compare
              in
              if targets <> [] then begin
                let dname = dispatcher_name fname pc in
                let nargs = List.length args in
                let dcode = dispatcher_code ~targets ~nargs in
                dispatchers :=
                  { fname = dname; nparams = nargs + 1; code = dcode } :: !dispatchers;
                (match ins with
                | Icall (slot_op, args, dst') ->
                    code.(pc) <- Call (dname, slot_op :: args, dst')
                | _ -> assert false);
                ignore dst
              end
          | _ -> ())
        f.code;
      Hashtbl.replace new_funcs fname { f with code })
    prog.funcs;
  List.iter (fun d -> Hashtbl.replace new_funcs d.fname d) !dispatchers;
  {
    prog with
    pname = prog.pname ^ "+devirt";
    funcs = new_funcs;
    ftable =
      Array.append prog.ftable
        (Array.of_list (List.rev_map (fun d -> d.fname) !dispatchers));
  }

(** [has_unresolved_icalls prog] answers whether devirtualization is needed
    at all. *)
let has_unresolved_icalls (prog : program) =
  Hashtbl.fold
    (fun _ (f : func) acc ->
      acc
      || Array.exists
           (function Icall ((Reg _ | Sym _), _, _) -> true | _ -> false)
           f.code)
    prog.funcs false
