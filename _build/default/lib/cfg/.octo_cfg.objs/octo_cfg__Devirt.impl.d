lib/cfg/devirt.ml: Array Dyncfg Hashtbl List Octo_vm Printf
