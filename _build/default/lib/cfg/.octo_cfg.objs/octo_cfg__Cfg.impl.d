lib/cfg/cfg.ml: Array Hashtbl List Octo_vm Printf
