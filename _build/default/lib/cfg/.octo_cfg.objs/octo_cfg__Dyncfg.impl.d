lib/cfg/dyncfg.ml: Hashtbl Interp Isa List Octo_vm
