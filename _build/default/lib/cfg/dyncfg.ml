(** Dynamic CFG refinement (paper §IV-B, "dynamic CFG").

    The static CFG of {!Cfg} misses edges that only exist at run time —
    indirect-call targets in particular.  The paper's implementation prefers
    angr's dynamic CFG; our analogue replays the program concretely on a set
    of seed inputs, records the observed call edges through the interpreter's
    edge hook, and exposes them as extra resolution facts.  [resolve] then
    answers whether every indirect call site was observed, allowing a
    [Cfg.build ~allow_unresolved:true] result to be trusted. *)

open Octo_vm

type observed = {
  calls : (string * string, unit) Hashtbl.t;  (** (caller, callee) edges seen *)
  blocks : (string * int, unit) Hashtbl.t;    (** (function, pc) coverage *)
}

let observe (prog : Isa.program) ~(seeds : string list) : observed =
  let calls = Hashtbl.create 64 in
  let blocks = Hashtbl.create 256 in
  let stack = ref [ prog.entry ] in
  let hooks =
    {
      Interp.no_hooks with
      on_call =
        (fun ~fname ~frame_id:_ ~args:_ ->
          (match !stack with
          | caller :: _ -> Hashtbl.replace calls (caller, fname) ()
          | [] -> ());
          stack := fname :: !stack);
      on_ret = (fun _ -> match !stack with _ :: rest -> stack := rest | [] -> ());
      on_step = (fun fname pc -> Hashtbl.replace blocks (fname, pc) ());
    }
  in
  List.iter
    (fun input ->
      stack := [ prog.entry ];
      ignore (Interp.run ~hooks prog ~input))
    seeds;
  { calls; blocks }

(** [covered o fname pc] reports whether the seed replays executed the given
    program point. *)
let covered o fname pc = Hashtbl.mem o.blocks (fname, pc)

(** [call_edges o] lists observed (caller, callee) pairs. *)
let call_edges o = Hashtbl.fold (fun k () acc -> k :: acc) o.calls []

(** [saw_call o ~caller ~callee] checks a specific dynamic call edge. *)
let saw_call o ~caller ~callee = Hashtbl.mem o.calls (caller, callee)
