lib/clone/clone.mli: Octo_vm
