lib/clone/clone.ml: Array Buffer Digest Fmt Hashtbl List Octo_vm Printf
