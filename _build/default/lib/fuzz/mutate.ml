(** AFL-style mutation operators, driven by the deterministic PRNG so fuzz
    campaigns are reproducible. *)

module Rng = Octo_util.Rng

let interesting = [| 0; 1; 16; 17; 32; 64; 100; 127; 128; 255 |]

(* Single havoc operators; each takes and returns a byte string. *)

let flip_bit rng s =
  if String.length s = 0 then s
  else begin
    let b = Bytes.of_string s in
    let i = Rng.int rng (Bytes.length b) in
    Bytes.set_uint8 b i (Bytes.get_uint8 b i lxor (1 lsl Rng.int rng 8));
    Bytes.to_string b
  end

let set_interesting rng s =
  if String.length s = 0 then s
  else begin
    let b = Bytes.of_string s in
    Bytes.set_uint8 b (Rng.int rng (Bytes.length b)) (Rng.choose rng interesting);
    Bytes.to_string b
  end

let arith rng s =
  if String.length s = 0 then s
  else begin
    let b = Bytes.of_string s in
    let i = Rng.int rng (Bytes.length b) in
    let delta = Rng.int rng 35 - 17 in
    Bytes.set_uint8 b i ((Bytes.get_uint8 b i + delta) land 0xff);
    Bytes.to_string b
  end

let overwrite_random rng s =
  if String.length s = 0 then s
  else begin
    let b = Bytes.of_string s in
    Bytes.set_uint8 b (Rng.int rng (Bytes.length b)) (Rng.byte rng);
    Bytes.to_string b
  end

let insert_block rng s =
  let len = 1 + Rng.int rng 32 in
  let blob = String.init len (fun _ -> Char.chr (Rng.byte rng)) in
  let pos = Rng.int rng (String.length s + 1) in
  String.sub s 0 pos ^ blob ^ String.sub s pos (String.length s - pos)

let clone_block rng s =
  if String.length s = 0 then s
  else begin
    let len = 1 + Rng.int rng (min 32 (String.length s)) in
    let src = Rng.int rng (String.length s - len + 1) in
    let blob = String.sub s src len in
    let pos = Rng.int rng (String.length s + 1) in
    String.sub s 0 pos ^ blob ^ String.sub s pos (String.length s - pos)
  end

let delete_block rng s =
  if String.length s <= 1 then s
  else begin
    let len = 1 + Rng.int rng (min 16 (String.length s - 1)) in
    let pos = Rng.int rng (String.length s - len + 1) in
    String.sub s 0 pos ^ String.sub s (pos + len) (String.length s - pos - len)
  end

let ops = [| flip_bit; set_interesting; arith; overwrite_random; insert_block; clone_block; delete_block |]

(** [havoc rng s] applies a random stack of 1-6 operators, AFL's havoc
    stage. *)
let havoc rng s =
  let n = 1 + Rng.int rng 6 in
  let rec go i acc = if i >= n then acc else go (i + 1) ((Rng.choose rng ops) rng acc) in
  go 0 s

(** [splice rng a b] joins a prefix of [a] with a suffix of [b] and havocs
    the result, AFL's splice stage. *)
let splice rng a b =
  if String.length a = 0 || String.length b = 0 then havoc rng (a ^ b)
  else begin
    let cut_a = Rng.int rng (String.length a) in
    let cut_b = Rng.int rng (String.length b) in
    havoc rng (String.sub a 0 cut_a ^ String.sub b cut_b (String.length b - cut_b))
  end

(** [deterministic s] enumerates AFL's deterministic first pass: per-byte
    interesting values and small arithmetic.  Returned lazily as a sequence
    to avoid materialising the whole set. *)
let deterministic (s : string) : string Seq.t =
  let per_byte i =
    let variants =
      Array.to_list (Array.map (fun v -> (i, v)) interesting)
      @ List.concat_map
          (fun d -> [ (i, (Char.code s.[i] + d) land 0xff); (i, (Char.code s.[i] - d) land 0xff) ])
          [ 1; 2; 4; 8; 16; 17; 32 ]
    in
    List.to_seq variants
  in
  Seq.concat_map
    (fun i ->
      Seq.map
        (fun (i, v) ->
          let b = Bytes.of_string s in
          Bytes.set_uint8 b i v;
          Bytes.to_string b)
        (per_byte i))
    (Seq.init (String.length s) Fun.id)
