lib/fuzz/aflfast.ml: Array Coverage Hashtbl Interp Isa List Mutate Octo_util Octo_vm Queue Seq Unix
