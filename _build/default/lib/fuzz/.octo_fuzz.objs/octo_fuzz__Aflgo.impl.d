lib/fuzz/aflgo.ml: Array Bytes Coverage Hashtbl Interp Isa List Mutate Octo_cfg Octo_util Octo_vm Printf Queue Unix
