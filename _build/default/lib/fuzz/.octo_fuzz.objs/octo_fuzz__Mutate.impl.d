lib/fuzz/mutate.ml: Array Bytes Char Fun List Octo_util Seq String
