lib/fuzz/coverage.ml: Bytes Hashtbl Interp Isa Octo_vm
