(** The input-file abstraction of MiniVM.

    Each run of a program is given exactly one input file: the PoC.  Programs
    open it (fd), read sequentially, seek, or map it wholesale.  The file
    position indicator exposed by [tell] is the anchor the combining phase P3
    uses to place crash-primitive bunches (paper §III-C). *)

type handle = {
  fd : int;
  mutable pos : int;
}

type t = {
  data : string;
  mutable handles : handle list;
  mutable next_fd : int;
}

let create data = { data; handles = []; next_fd = 3 }

let size t = String.length t.data

let open_ t =
  let fd = t.next_fd in
  t.next_fd <- t.next_fd + 1;
  t.handles <- { fd; pos = 0 } :: t.handles;
  fd

exception Bad_fd of int

let handle t fd =
  match List.find_opt (fun h -> h.fd = fd) t.handles with
  | Some h -> h
  | None -> raise (Bad_fd fd)

(** [read t fd len] consumes up to [len] bytes from the current position and
    returns [(file_offset, bytes)].  Short reads at EOF return fewer bytes;
    reads at EOF return the empty string, which target programs use as their
    end-of-input condition. *)
let read t fd len =
  let h = handle t fd in
  (* A position seeked past EOF reads as empty, like pread(2). *)
  let off = min h.pos (String.length t.data) in
  let avail = String.length t.data - off in
  let n = min (max len 0) avail in
  let s = String.sub t.data off n in
  h.pos <- h.pos + n;
  (off, s)

let seek t fd pos =
  let h = handle t fd in
  h.pos <- max 0 pos

let tell t fd = (handle t fd).pos
