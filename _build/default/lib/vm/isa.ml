(** Instruction-set architecture of MiniVM.

    MiniVM is the binary substrate standing in for the x86 programs the paper
    instruments with Intel PIN and executes with angr (see DESIGN.md §2).  It
    is a 32-bit register machine: every function owns 32 registers, memory is
    byte-addressed with bounds-checked regions, and programs interact with an
    input file through syscalls.  Crashes arise organically from memory-safety
    faults, exactly as in the C/C++ targets of the paper.

    Instructions are polymorphic in the jump-label type: the assembler DSL
    uses string labels (['lbl = string]); assembled code uses instruction
    indices (['lbl = int]).  *)

type reg = int
(** Register index, 0..31.  Arguments of an [n]-ary function arrive in
    registers 0..n-1; all other registers start at 0. *)

type operand =
  | Reg of reg        (** register contents *)
  | Imm of int        (** immediate (masked to 32 bits at use) *)
  | Sym of string     (** address of a data-section symbol; the assembler
                          rewrites this to [Imm] *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | And | Or | Xor | Shl | Shr

type relop = Eq | Ne | Lt | Le | Gt | Ge
(** Comparisons are unsigned over the 32-bit value domain. *)

(** Syscalls.  [fd] 0 always denotes the single input file (the PoC). *)
type syscall =
  | Open of reg                               (** [fd <- open(input)] *)
  | Read of reg * operand * operand * operand (** [n <- read fd buf len] *)
  | Seek of operand * operand                 (** [seek fd pos] *)
  | Tell of reg * operand                     (** [pos <- tell fd]: the file
                                                  position indicator used by
                                                  the combining phase P3 *)
  | Fsize of reg * operand                    (** [n <- size fd] *)
  | Mmap of reg * operand                     (** [addr <- mmap fd] *)
  | Alloc of reg * operand                    (** [addr <- alloc size] *)
  | Exit of operand                           (** terminate with code *)
  | Emit of operand                           (** append value to the
                                                  program's output channel *)

type 'lbl instr_g =
  | Mov of reg * operand
  | Bin of binop * reg * operand * operand
  | Load8 of reg * operand * operand          (** [dst <- mem8[base+off]] *)
  | Store8 of operand * operand * operand     (** [mem8[base+off] <- v] *)
  | LoadW of reg * operand * operand          (** 32-bit little-endian load *)
  | StoreW of operand * operand * operand     (** 32-bit little-endian store *)
  | Jmp of 'lbl
  | Jif of relop * operand * operand * 'lbl   (** conditional jump *)
  | Call of string * operand list * reg option(** direct call; optional
                                                  destination register for the
                                                  return value *)
  | Icall of operand * operand list * reg option
      (** indirect call through the function table; unresolvable targets are
          what trips the CFG builder on Table II's Idx-15 *)
  | Ret of operand
  | Sys of syscall
  | Halt

type pinstr = string instr_g
(** Pre-assembly instruction: jump targets are label names. *)

type instr = int instr_g
(** Assembled instruction: jump targets are instruction indices. *)

type func = {
  fname : string;
  nparams : int;
  code : instr array;
}

type program = {
  pname : string;
  entry : string;
  funcs : (string, func) Hashtbl.t;
  ftable : string array;
      (** function table for indirect calls: [Icall] operands index here *)
  data : (string * int * string) list;
      (** data section: (symbol, address, bytes); loaded read-only *)
}

let func_exn p name =
  match Hashtbl.find_opt p.funcs name with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Isa.func_exn: no function %S in %s" name p.pname)

let mask32 v = v land 0xFFFFFFFF

(** [eval_binop op a b] applies [op] with 32-bit wrap-around semantics.
    Division or modulus by zero is reported by raising [Division_by_zero];
    the interpreter converts it into a fault. *)
let eval_binop op a b =
  let a = mask32 a and b = mask32 b in
  let r =
    match op with
    | Add -> a + b
    | Sub -> a - b
    | Mul -> a * b
    | Div -> if b = 0 then raise Division_by_zero else a / b
    | Mod -> if b = 0 then raise Division_by_zero else a mod b
    | And -> a land b
    | Or -> a lor b
    | Xor -> a lxor b
    | Shl -> a lsl (b land 31)
    | Shr -> a lsr (b land 31)
  in
  mask32 r

(** [eval_relop op a b] compares unsigned 32-bit values. *)
let eval_relop op a b =
  let a = mask32 a and b = mask32 b in
  match op with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> a < b
  | Le -> a <= b
  | Gt -> a > b
  | Ge -> a >= b

let string_of_binop = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Mod -> "mod"
  | And -> "and" | Or -> "or" | Xor -> "xor" | Shl -> "shl" | Shr -> "shr"

let string_of_relop = function
  | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge"

let pp_operand ppf = function
  | Reg r -> Fmt.pf ppf "r%d" r
  | Imm v -> Fmt.pf ppf "#%d" v
  | Sym s -> Fmt.pf ppf "@%s" s

let pp_instr ppf (ins : instr) =
  let op = pp_operand in
  match ins with
  | Mov (d, a) -> Fmt.pf ppf "mov r%d, %a" d op a
  | Bin (b, d, x, y) -> Fmt.pf ppf "%s r%d, %a, %a" (string_of_binop b) d op x op y
  | Load8 (d, b, o) -> Fmt.pf ppf "ld8 r%d, [%a+%a]" d op b op o
  | Store8 (b, o, v) -> Fmt.pf ppf "st8 [%a+%a], %a" op b op o op v
  | LoadW (d, b, o) -> Fmt.pf ppf "ldw r%d, [%a+%a]" d op b op o
  | StoreW (b, o, v) -> Fmt.pf ppf "stw [%a+%a], %a" op b op o op v
  | Jmp t -> Fmt.pf ppf "jmp %d" t
  | Jif (r, a, b, t) -> Fmt.pf ppf "j%s %a, %a, %d" (string_of_relop r) op a op b t
  | Call (f, args, dst) ->
      Fmt.pf ppf "call %s(%a)%s" f (Fmt.list ~sep:Fmt.comma op) args
        (match dst with Some d -> Printf.sprintf " -> r%d" d | None -> "")
  | Icall (f, args, dst) ->
      Fmt.pf ppf "icall %a(%a)%s" op f (Fmt.list ~sep:Fmt.comma op) args
        (match dst with Some d -> Printf.sprintf " -> r%d" d | None -> "")
  | Ret v -> Fmt.pf ppf "ret %a" op v
  | Sys (Open r) -> Fmt.pf ppf "sys.open -> r%d" r
  | Sys (Read (d, fd, buf, len)) -> Fmt.pf ppf "sys.read r%d, %a, %a, %a" d op fd op buf op len
  | Sys (Seek (fd, p)) -> Fmt.pf ppf "sys.seek %a, %a" op fd op p
  | Sys (Tell (d, fd)) -> Fmt.pf ppf "sys.tell r%d, %a" d op fd
  | Sys (Fsize (d, fd)) -> Fmt.pf ppf "sys.fsize r%d, %a" d op fd
  | Sys (Mmap (d, fd)) -> Fmt.pf ppf "sys.mmap r%d, %a" d op fd
  | Sys (Alloc (d, sz)) -> Fmt.pf ppf "sys.alloc r%d, %a" d op sz
  | Sys (Exit c) -> Fmt.pf ppf "sys.exit %a" op c
  | Sys (Emit v) -> Fmt.pf ppf "sys.emit %a" op v
  | Halt -> Fmt.pf ppf "halt"
