lib/vm/mem.ml: Asm Bytes Fmt List String
