lib/vm/interp.ml: Array Char Fmt Isa List Mem String Vfile
