lib/vm/isa.ml: Fmt Hashtbl Printf
