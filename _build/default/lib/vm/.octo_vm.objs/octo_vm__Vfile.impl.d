lib/vm/vfile.ml: List String
