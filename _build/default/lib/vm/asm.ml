(** Assembler DSL for MiniVM programs.

    Target programs (the S/T pairs of Table II) are written as lists of
    {!item}s: labelled pseudo-instructions with string jump targets and
    symbolic data references.  [assemble] resolves labels to instruction
    indices, lays out the read-only data section, and builds the function
    table used by indirect calls. *)

open Isa

type item =
  | L of string       (** label definition *)
  | I of pinstr       (** instruction *)

type src_func = {
  name : string;
  params : int;
  body : item list;
}

exception Asm_error of string

let asm_error fmt = Printf.ksprintf (fun s -> raise (Asm_error s)) fmt

(* Data section base: addresses below this are the unmapped "null page", so
   loads through a corrupted-to-zero pointer fault as null dereferences. *)
let data_base = 0x1000

(** [fn name ~params body] declares a source function. *)
let fn name ~params body = { name; params; body }

(* Label resolution: a label names the index of the next real instruction. *)
let resolve_labels body =
  let table = Hashtbl.create 16 in
  let idx = ref 0 in
  List.iter
    (function
      | L lbl ->
          if Hashtbl.mem table lbl then asm_error "duplicate label %S" lbl;
          Hashtbl.replace table lbl !idx
      | I _ -> incr idx)
    body;
  table

let resolve_operand syms = function
  | Sym s -> (
      match Hashtbl.find_opt syms s with
      | Some addr -> Imm addr
      | None -> asm_error "unknown data symbol %S" s)
  | (Reg _ | Imm _) as op -> op

let resolve_syscall syms sc =
  let op = resolve_operand syms in
  match sc with
  | Open r -> Open r
  | Read (d, fd, buf, len) -> Read (d, op fd, op buf, op len)
  | Seek (fd, p) -> Seek (op fd, op p)
  | Tell (d, fd) -> Tell (d, op fd)
  | Fsize (d, fd) -> Fsize (d, op fd)
  | Mmap (d, fd) -> Mmap (d, op fd)
  | Alloc (d, sz) -> Alloc (d, op sz)
  | Exit c -> Exit (op c)
  | Emit v -> Emit (op v)

let resolve_instr labels syms (ins : pinstr) : instr =
  let op = resolve_operand syms in
  let target lbl =
    match Hashtbl.find_opt labels lbl with
    | Some i -> i
    | None -> asm_error "unknown label %S" lbl
  in
  match ins with
  | Mov (d, a) -> Mov (d, op a)
  | Bin (b, d, x, y) -> Bin (b, d, op x, op y)
  | Load8 (d, b, o) -> Load8 (d, op b, op o)
  | Store8 (b, o, v) -> Store8 (op b, op o, op v)
  | LoadW (d, b, o) -> LoadW (d, op b, op o)
  | StoreW (b, o, v) -> StoreW (op b, op o, op v)
  | Jmp t -> Jmp (target t)
  | Jif (r, a, b, t) -> Jif (r, op a, op b, target t)
  | Call (f, args, dst) -> Call (f, List.map op args, dst)
  | Icall (f, args, dst) -> Icall (op f, List.map op args, dst)
  | Ret v -> Ret (op v)
  | Sys sc -> Sys (resolve_syscall syms sc)
  | Halt -> Halt

(** [assemble ~name ~entry ~data funcs] builds an executable program.

    [data] is a list of (symbol, bytes) laid out consecutively from the data
    base address.  Function-table slots are assigned in declaration order, so
    an [Icall] through immediate [i] invokes the [i]-th declared function. *)
let assemble ~name ~entry ?(data = []) (funcs : src_func list) : program =
  let syms = Hashtbl.create 16 in
  let addr = ref data_base in
  let placed =
    List.map
      (fun (sym, bytes) ->
        if Hashtbl.mem syms sym then asm_error "duplicate data symbol %S" sym;
        let a = !addr in
        Hashtbl.replace syms sym a;
        addr := !addr + String.length bytes;
        (sym, a, bytes))
      data
  in
  let table = Hashtbl.create 16 in
  List.iter
    (fun f ->
      if Hashtbl.mem table f.name then asm_error "duplicate function %S" f.name;
      let labels = resolve_labels f.body in
      let code =
        List.filter_map (function L _ -> None | I i -> Some i) f.body
        |> Array.of_list
        |> Array.map (resolve_instr labels syms)
      in
      Hashtbl.replace table f.name { fname = f.name; nparams = f.params; code })
    funcs;
  if not (Hashtbl.mem table entry) then asm_error "entry function %S not defined" entry;
  (* Validate direct call targets and arity at assembly time so target-pair
     bugs surface early rather than as runtime faults. *)
  Hashtbl.iter
    (fun _ f ->
      Array.iter
        (function
          | Call (callee, args, _) -> (
              match Hashtbl.find_opt table callee with
              | None -> asm_error "call to undefined function %S (in %s)" callee f.fname
              | Some g ->
                  if List.length args <> g.nparams then
                    asm_error "call to %S with %d args, expected %d (in %s)" callee
                      (List.length args) g.nparams f.fname)
          | _ -> ())
        f.code)
    table;
  {
    pname = name;
    entry;
    funcs = table;
    ftable = Array.of_list (List.map (fun f -> f.name) funcs);
    data = placed;
  }

(** [size_of_code p] counts instructions across all functions; stands in for
    the paper's "binary size" when discussing fuzzer efficiency. *)
let size_of_code (p : program) =
  Hashtbl.fold (fun _ f acc -> acc + Array.length f.code) p.funcs 0
