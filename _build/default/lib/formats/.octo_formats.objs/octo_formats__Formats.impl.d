lib/formats/formats.ml: Char List Octo_util String
