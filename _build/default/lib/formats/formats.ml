(** Builders for the five synthetic file formats parsed by the Table II
    target programs (DESIGN.md §5).

    Each format is a miniature of the real container the paper's binaries
    parse (JPEG, PDF, JPEG2000, GIF, TIFF, AVI): a magic header followed by
    tagged, length-prefixed records.  The byte-level structure — magic
    strings, dispatch tags, length fields, payloads — is what the PoC
    reforming pipeline manipulates, so these miniatures exercise the same
    mechanics as the originals. *)

module B = Octo_util.Bytes_util

(** Mini-JPEG: ["MJ"] then segments [[marker; len; payload...]].
    Markers: [0xE0] app data (skipped), [0xC0] frame header (w16,h16 LE),
    [0xDA] scan data (the vulnerable decoder), [0xD9] end of image. *)
module Mjpg = struct
  let magic = "MJ"
  let m_app = 0xE0
  let m_frame = 0xC0
  let m_scan = 0xDA
  let m_end = 0xD9

  let segment ~marker payload =
    B.concat [ B.of_int_list [ marker; String.length payload land 0xff ]; payload ]

  let frame_header ~w ~h = segment ~marker:m_frame (B.concat [ B.u16le w; B.u16le h ])

  let file segments = B.concat ((magic :: segments) @ [ B.of_int_list [ m_end; 0 ] ])

  (** A small well-formed image, used as fuzzer seed. *)
  let valid_sample () =
    file [ frame_header ~w:4 ~h:4; segment ~marker:m_scan (B.repeat 8 0x11) ]
end

(** Mini-PDF: ["%MPD"] then objects [[type; len; payload...]].
    Types: ['P'] page, ['F'] font record, ['S'] embedded stream,
    ['X'] xref record (off8), ['E'] end. *)
module Mpdf = struct
  let magic = "%MPD"
  let o_page = Char.code 'P'
  let o_font = Char.code 'F'
  let o_stream = Char.code 'S'
  let o_xref = Char.code 'X'
  let o_end = Char.code 'E'

  let obj ~typ payload =
    B.concat [ B.of_int_list [ typ; String.length payload land 0xff ]; payload ]

  let file objects = B.concat ((magic :: objects) @ [ B.of_int_list [ o_end; 0 ] ])

  let valid_sample () =
    file [ obj ~typ:o_page (B.repeat 4 0x20); obj ~typ:o_font (B.repeat 6 0x41) ]
end

(** Mini-JPEG2000 codestream: ["J2"] then boxes [[type; len; payload...]].
    Types: [0x54] tile-part (vulnerable decoder; its header additionally
    carries the two SOT sub-marker bytes [0x93 0x5A] before the length),
    [0x51] size header, [0x45] end of codestream. *)
module Mj2k = struct
  let magic = "J2"
  (* Standalone codestream files carry a longer container signature than
     the bare "J2" marker used when embedded in a PDF stream. *)
  let raw_magic = "OJ2K"
  let b_tile = 0x54
  let b_size = 0x51
  let b_end = 0x45
  let sot1 = 0x93
  let sot2 = 0x5A

  let box ~typ payload =
    B.concat [ B.of_int_list [ typ; String.length payload land 0xff ]; payload ]

  (** Tile-part box: [[0x54; 0x93; 0x5A; len; payload...]]. *)
  let tile_part payload =
    B.concat [ B.of_int_list [ b_tile; sot1; sot2; String.length payload land 0xff ]; payload ]

  let file boxes = B.concat ((magic :: boxes) @ [ B.of_int_list [ b_end; 0 ] ])

  (** Standalone file as consumed by opj_dump. *)
  let raw_file boxes = B.concat ((raw_magic :: boxes) @ [ B.of_int_list [ b_end; 0 ] ])

  let valid_sample () = file [ box ~typ:b_size (B.repeat 4 0x01); tile_part (B.repeat 8 0x22) ]
end

(** Mini-GIF: ["MG"] + 3 version bytes + blocks [[type; len; payload...]].
    Types: [0x2C] image descriptor (vulnerable decoder), [0x21] extension,
    [0x3B] trailer. *)
module Mgif = struct
  let magic = "MG"
  let version_ok = "87a"
  let b_image = 0x2C
  let b_ext = 0x21
  let b_trailer = 0x3B

  (* Image descriptors carry two header bytes that parsers validate. *)
  let image_flag = 0x77
  let image_flag2 = 0x88

  let block ~typ payload =
    B.concat [ B.of_int_list [ typ; String.length payload land 0xff ]; payload ]

  (** Image descriptor block: [[0x2C; flag; flag2; len; payload...]]. *)
  let image_block payload =
    B.concat
      [ B.of_int_list [ b_image; image_flag; image_flag2; String.length payload land 0xff ];
        payload ]

  let file ~version blocks =
    B.concat ((magic :: version :: blocks) @ [ B.of_int_list [ b_trailer ] ])

  let valid_sample () = file ~version:version_ok [ image_block (B.repeat 8 0x33) ]
end

(** Mini-TIFF: ["II"] + entry count byte + directory entries [[tag; value]].
    Tag [0x3d] is the one whose field write is out of bounds in the
    vulnerable shared accessor (the CVE-2016-10095 analogue). *)
module Mtif = struct
  let magic = "II"
  let tag_vuln = 0x3d

  let entry ~tag ~value = B.of_int_list [ tag; value ]

  let file entries = B.concat (magic :: B.of_int_list [ List.length entries ] :: entries)

  let valid_sample () = file [ entry ~tag:0x01 ~value:4; entry ~tag:0x02 ~value:4 ]
end

(** Mini-AVI: ["AV"] then frame records [[0x46; len; payload...]] terminated
    by [0x00]. *)
module Mavi = struct
  let magic = "AV"
  let r_frame = 0x46
  let r_end = 0x00

  let frame payload =
    B.concat [ B.of_int_list [ r_frame; String.length payload land 0xff ]; payload ]

  let file frames = B.concat ((magic :: frames) @ [ B.of_int_list [ r_end ] ])

  let valid_sample () = file [ frame (B.repeat 4 0x10) ]
end

(** Mini-BMP: ["BM"] + w byte + h byte + pixel bytes; used by the Idx-11
    target whose cloned TIFF accessor is dead code. *)
module Mbmp = struct
  let magic = "BM"

  let file ~w ~h pixels = B.concat [ magic; B.of_int_list [ w; h ]; pixels ]

  let valid_sample () = file ~w:2 ~h:2 (B.repeat 4 0x55)
end
