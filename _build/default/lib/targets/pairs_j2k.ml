(** Table II pairs built on the Mini-JPEG2000 codestream.

    These are the paper's header-reforming Type-II cases (§II-C, §V-B):

    - Idx 7: [ghostscript] (PDF with embedded J2K stream) → [opj_dump_211]
      (raw J2K): the PoC header must change from PDF to J2K format.
    - Idx 8: [opj_dump_211] (raw J2K) → [mupdf] (PDF wrapping J2K): the
      reverse header change.  MuPDF's object parser is deliberately branchy;
      it is the Table IV/V state-explosion target.
    - Idx 13: [ghostscript] → [opj_dump_220]: Idx-7's T patched with a
      tile-length check → Type-III. *)

open Octo_vm.Isa
open Octo_vm.Asm
open Dsl
module F = Octo_formats.Formats
module B = Octo_util.Bytes_util

(* The embedded-codestream walk shared textually (not as ℓ — each program
   has its own driver) by ghostscript and mupdf: parse boxes from the
   current file position, dispatching tile-parts to the shared decoder.
   Register 24 counts tiles. *)
let j2k_box_loop ~obj_label ~bad_label =
  [ L "j2k" ]
  @ check_magic ~fail:bad_label F.Mj2k.magic
  @ [ I (Mov (24, Imm 0)); L "box" ]
  @ read_byte_or ~eof:bad_label 22
  @ [ I (Jif (Eq, Reg 22, Imm F.Mj2k.b_tile, "tile")) ]
  @ [ I (Jif (Eq, Reg 22, Imm F.Mj2k.b_end, obj_label)) ]
  @ read_byte_or ~eof:bad_label 23
  @ skip_bytes (Reg 23)
  @ [ I (Jmp "box"); L "tile" ]
  (* SOT sub-marker validation precedes the tile-part length. *)
  @ read_byte_or ~eof:bad_label 21
  @ [ I (Jif (Ne, Reg 21, Imm F.Mj2k.sot1, bad_label)) ]
  @ read_byte_or ~eof:bad_label 21
  @ [ I (Jif (Ne, Reg 21, Imm F.Mj2k.sot2, bad_label)) ]
  @ read_byte_or ~eof:bad_label 23
  @ [
      I (Call ("j2k_tile", [ Reg fd; Reg 23; Reg 24 ], Some 25));
      I (Bin (Add, 24, Reg 24, Imm 1));
      I (Jmp "box");
    ]

(* ------------------------------------------------------------------ *)
(* Idx 7 / 13: S — ghostscript: a PDF interpreter that decodes embedded
   J2K streams inline. *)

let ghostscript =
  assemble ~name:"ghostscript" ~entry:"main"
    [
      fn "main" ~params:0
        (prologue
        @ check_magic ~fail:"bad" F.Mpdf.magic
        @ [ L "obj" ]
        @ read_byte_or ~eof:"bad" 20
        @ [
            I (Jif (Eq, Reg 20, Imm F.Mpdf.o_end, "ok"));
            I (Jif (Eq, Reg 20, Imm F.Mpdf.o_stream, "stream"));
          ]
        @ read_byte_or ~eof:"bad" 21
        @ skip_bytes (Reg 21)
        @ [ I (Jmp "obj"); L "stream" ]
        @ read_byte_or ~eof:"bad" 21  (* stream length, unused: inline parse *)
        @ j2k_box_loop ~obj_label:"obj" ~bad_label:"bad"
        @ [ L "ok" ]
        @ exit_with 0
        @ [ L "bad" ]
        @ exit_with 1);
      Shared.j2k_tile;
    ]

(* T — opj_dump parsing a raw codestream. *)
let opj_dump_body ~patched =
  (prologue
  @ check_magic ~fail:"bad" F.Mj2k.raw_magic
  @ [ I (Mov (24, Imm 0)); L "box" ]
  @ read_byte_or ~eof:"bad" 22
  @ [ I (Jif (Eq, Reg 22, Imm F.Mj2k.b_tile, "tile")) ]
  @ [ I (Jif (Eq, Reg 22, Imm F.Mj2k.b_end, "ok")) ]
  @ read_byte_or ~eof:"bad" 23
  @ skip_bytes (Reg 23)
  @ [ I (Jmp "box"); L "tile" ]
  (* SOT sub-marker validation precedes the tile-part length. *)
  @ read_byte_or ~eof:"bad" 21
  @ [ I (Jif (Ne, Reg 21, Imm F.Mj2k.sot1, "bad")) ]
  @ read_byte_or ~eof:"bad" 21
  @ [ I (Jif (Ne, Reg 21, Imm F.Mj2k.sot2, "bad")) ]
  @ read_byte_or ~eof:"bad" 23
  @ (if patched then
       (* The 2.2.0 fix: tile-parts longer than the decode buffer are
          refused before the copy. *)
       [ I (Jif (Gt, Reg 23, Imm 16, "toolong")) ]
     else [])
  @ [
      I (Call ("j2k_tile", [ Reg fd; Reg 23; Reg 24 ], Some 25));
      I (Bin (Add, 24, Reg 24, Imm 1));
      I (Jmp "box");
      L "ok";
    ]
  @ exit_with 0
  @ [ L "toolong" ]
  @ exit_with 2
  @ [ L "bad" ]
  @ exit_with 1)

let opj_dump_211 =
  assemble ~name:"opj_dump_211" ~entry:"main"
    [ fn "main" ~params:0 (opj_dump_body ~patched:false); Shared.j2k_tile ]

let opj_dump_220 =
  assemble ~name:"opj_dump_220" ~entry:"main"
    [ fn "main" ~params:0 (opj_dump_body ~patched:true); Shared.j2k_tile ]

(* ------------------------------------------------------------------ *)
(* Idx 8: T — MuPDF.  PDF object parser with a flags preamble and a wide
   per-object dispatch; every iteration of the object loop multiplies the
   naive executor's state count. *)

let mupdf =
  assemble ~name:"mupdf" ~entry:"main"
    [
      fn "main" ~params:0
        ([
           (* Benign indirect call to the banner: resolvable by our CFG
              (immediate slot), but enough to break AFLGo's instrumentation
              pass — the Table V "tool error" on MuPDF. *)
           I (Icall (Imm 1, [], None));
         ]
        @ prologue
        @ check_magic ~fail:"bad" F.Mpdf.magic
        @ read_byte_or ~eof:"bad" 19  (* version/flags byte, informational *)
        (* Linearization hint table: [count] entries, each a kind byte
           selecting one of three layouts.  Three live forks per entry make
           the naive executor's frontier grow as 3^n — the MemError row of
           Table IV — while directed execution exits the loop immediately. *)
        @ read_byte_or ~eof:"bad" 17
        @ [
            I (Mov (16, Imm 0));
            L "hint";
            I (Jif (Ge, Reg 16, Reg 17, "obj"));
          ]
        @ read_byte_or ~eof:"bad" 15
        @ [
            I (Jif (Eq, Reg 15, Imm 1, "h_one"));
            I (Jif (Eq, Reg 15, Imm 2, "h_two"));
            I (Sys (Read (tcount, Reg fd, Reg scratch, Imm 3)));
            I (Jmp "h_next");
            L "h_one";
            I (Sys (Read (tcount, Reg fd, Reg scratch, Imm 1)));
            I (Jmp "h_next");
            L "h_two";
            I (Sys (Read (tcount, Reg fd, Reg scratch, Imm 2)));
            L "h_next";
            I (Bin (Add, 16, Reg 16, Imm 1));
            I (Jmp "hint");
            L "obj";
          ]
        @ read_byte_or ~eof:"bad" 20
        @ [
            I (Jif (Eq, Reg 20, Imm F.Mpdf.o_end, "ok"));
            I (Jif (Eq, Reg 20, Imm F.Mpdf.o_stream, "stream"));
            I (Jif (Eq, Reg 20, Imm F.Mpdf.o_page, "page"));
            I (Jif (Eq, Reg 20, Imm F.Mpdf.o_font, "fontobj"));
            I (Jif (Eq, Reg 20, Imm F.Mpdf.o_xref, "xrefobj"));
          ]
        @ read_byte_or ~eof:"bad" 21
        @ skip_bytes (Reg 21)
        @ [ I (Jmp "obj"); L "page" ]
        @ read_byte_or ~eof:"bad" 21
        @ read_byte_or ~eof:"bad" 22  (* page mode: three layouts *)
        @ [
            I (Jif (Eq, Reg 22, Imm 1, "pg_wide"));
            I (Jif (Eq, Reg 22, Imm 2, "pg_tall"));
          ]
        @ skip_bytes (Reg 21)
        @ [ I (Jmp "obj"); L "pg_wide" ]
        @ skip_bytes (Reg 21)
        @ [ I (Jmp "obj"); L "pg_tall" ]
        @ skip_bytes (Reg 21)
        @ [ I (Jmp "obj"); L "fontobj" ]
        @ read_byte_or ~eof:"bad" 21
        @ skip_bytes (Reg 21)
        @ [ I (Jmp "obj"); L "xrefobj" ]
        @ read_byte_or ~eof:"bad" 21
        @ [ I (Jmp "obj"); L "stream" ]
        @ read_byte_or ~eof:"bad" 21  (* stream length, unused *)
        (* Stream dictionary tag: MuPDF only decodes "strm"-tagged streams. *)
        @ check_magic ~fail:"bad" "strm"
        @ j2k_box_loop ~obj_label:"obj" ~bad_label:"bad"
        @ [ L "ok" ]
        @ exit_with 0
        @ [ L "bad" ]
        @ exit_with 1);
      fn "banner" ~params:0 [ I (Sys (Emit (Imm 0x4D))); I (Ret (Imm 0)) ];
      Shared.j2k_tile;
    ]

(* ------------------------------------------------------------------ *)
(* PoCs.  One malicious tile-part declaring 0x20 bytes overruns the
   16-byte decode buffer at the first ep entry (matching the Table III
   observation that the J2K pairs succeed even without context-aware
   taint: a single bunch). *)

let tile_boxes = [ F.Mj2k.tile_part (B.repeat 32 0x42) ]

(** Idx 7/13 PoC: a PDF whose stream object embeds the malicious
    codestream. *)
let poc_pdf_wrapped =
  let codestream = F.Mj2k.file tile_boxes in
  B.concat
    [
      F.Mpdf.magic;
      B.of_int_list [ F.Mpdf.o_stream; String.length codestream land 0xff ];
      codestream;
      B.of_int_list [ F.Mpdf.o_end ];
    ]

(** Idx 8 PoC: the standalone codestream. *)
let poc_raw_j2k = F.Mj2k.raw_file tile_boxes
