(** Table II pairs built on the Mini-PDF format.

    - Idx 3: [poppler_pdftops] → [xpdf_pdftops]  (CVE-2017-18267 analogue,
      CWE-835 infinite xref loop, Type-I; enters ep once per xref record so
      it is also a Table III multi-bunch case)
    - Idx 6: [pdfalto] → [xpdf_pdfinfo]  (CVE-2019-9878 analogue, CWE-119,
      Type-I)
    - Idx 14: [pdfalto] → [xpdf_pdftops_411]  (Idx-6's T patched with a
      length sanity check → Type-III)
    - Idx 15: [pdf2htmlex] → [poppler_pdfinfo]  (CVE-2018-21009 analogue;
      T dispatches object handlers through an unresolvable indirect call,
      reproducing the angr CFG failure → Failure) *)

open Octo_vm.Isa
open Octo_vm.Asm
open Dsl
module F = Octo_formats.Formats
module B = Octo_util.Bytes_util

(* ------------------------------------------------------------------ *)
(* Idx 3: xref records are [X][off8]; the shared walker follows byte-sized
   "next" pointers.  Other objects are [type][len][payload]. *)

let xref_loop_body ~extra =
  (prologue
  @ check_magic ~fail:"bad" F.Mpdf.magic
  @ [ L "obj" ]
  @ read_byte_or ~eof:"bad" 20
  @ [
      I (Jif (Eq, Reg 20, Imm F.Mpdf.o_end, "ok"));
      I (Jif (Eq, Reg 20, Imm F.Mpdf.o_xref, "xref"));
    ]
  @ (if extra then
       (* T additionally understands page objects and counts them. *)
       [ I (Jif (Eq, Reg 20, Imm F.Mpdf.o_page, "page")) ]
     else [])
  @ read_byte_or ~eof:"bad" 21
  @ skip_bytes (Reg 21)
  @ [ I (Jmp "obj"); L "xref" ]
  @ read_byte_or ~eof:"bad" 22
  @ [
      (* Remember the parse position: the walker seeks around the file. *)
      I (Sys (Tell (24, Reg fd)));
      I (Call ("xref_walk", [ Reg fd; Reg 22 ], Some 23));
      I (Sys (Seek (Reg fd, Reg 24)));
      I (Jmp "obj");
    ]
  @ (if extra then
       [ L "page" ]
       @ read_byte_or ~eof:"bad" 21
       @ skip_bytes (Reg 21)
       @ [ I (Bin (Add, 25, Reg 25, Imm 1)); I (Jmp "obj") ]
     else [])
  @ [ L "ok" ]
  @ (if extra then [ I (Sys (Emit (Reg 25))) ] else [])
  @ exit_with 0
  @ [ L "bad" ]
  @ exit_with 1)

let poppler_pdftops =
  assemble ~name:"poppler_pdftops" ~entry:"main"
    [ fn "main" ~params:0 (xref_loop_body ~extra:false); Shared.xref_walk ]

let xpdf_pdftops =
  assemble ~name:"xpdf_pdftops" ~entry:"main"
    [ fn "main" ~params:0 (xref_loop_body ~extra:true); Shared.xref_walk ]

(** Two xref records: the first chain terminates at a zero byte (offset 9);
    the second points at offset 10, whose value is 10 — a self-loop, the
    CWE-835 hang. *)
let poc_xref_cycle =
  B.concat
    [
      F.Mpdf.magic;                                  (* 0..3   *)
      B.of_int_list [ F.Mpdf.o_xref; 9 ];            (* 4,5    *)
      B.of_int_list [ F.Mpdf.o_xref; 10 ];           (* 6,7    *)
      B.of_int_list [ F.Mpdf.o_end ];                (* 8      *)
      B.of_int_list [ 0x00; 10 ];                    (* 9, 10  *)
    ]

(* ------------------------------------------------------------------ *)
(* Idx 6 / 14: font records [F][len][payload] parsed by the shared
   font_copy; the patch of Idx-14 rejects oversized records up front. *)

let font_loop_body ~banner ~patched =
  (banner
  @ prologue
  @ check_magic ~fail:"bad" F.Mpdf.magic
  @ [ L "obj" ]
  @ read_byte_or ~eof:"bad" 20
  @ [ I (Jif (Eq, Reg 20, Imm F.Mpdf.o_end, "ok")) ]
  @ read_byte_or ~eof:"bad" 21
  @ [ I (Jif (Eq, Reg 20, Imm F.Mpdf.o_font, "font")) ]
  @ skip_bytes (Reg 21)
  @ [ I (Jmp "obj"); L "font" ]
  @ (if patched then
       (* The upstream fix: font records larger than the decode buffer are
          rejected before the vulnerable copy. *)
       [ I (Jif (Gt, Reg 21, Imm 16, "toolong")) ]
     else [])
  @ [
      I (Call ("font_copy", [ Reg fd; Reg 21 ], Some 22));
      I (Jmp "obj");
      L "ok";
    ]
  @ exit_with 0
  @ [ L "toolong" ]
  @ exit_with 2
  @ [ L "bad" ]
  @ exit_with 1)

let pdfalto =
  assemble ~name:"pdfalto" ~entry:"main"
    [ fn "main" ~params:0 (font_loop_body ~banner:[] ~patched:false); Shared.font_copy ]

let xpdf_pdfinfo =
  assemble ~name:"xpdf_pdfinfo" ~entry:"main"
    [
      fn "main" ~params:0
        (font_loop_body ~banner:[ I (Sys (Emit (Imm 0x69))) ] (* "i" *) ~patched:false);
      Shared.font_copy;
    ]

let xpdf_pdftops_411 =
  assemble ~name:"xpdf_pdftops_411" ~entry:"main"
    [
      fn "main" ~params:0
        (font_loop_body ~banner:[ I (Sys (Emit (Imm 0x70))) ] (* "p" *) ~patched:true);
      Shared.font_copy;
    ]

(** A font record whose declared length (0x20) overruns the 16-byte decode
    buffer. *)
let poc_font_overflow =
  F.Mpdf.file [ F.Mpdf.obj ~typ:F.Mpdf.o_font (B.repeat 32 0x41) ]

(* ------------------------------------------------------------------ *)
(* Idx 15: S parses fonts like pdfalto (plus an object counter); T routes
   every object through a handler table loaded from data and called
   indirectly — the construct angr's CFG recovery chokes on. *)

let pdf2htmlex =
  assemble ~name:"pdf2htmlex" ~entry:"main"
    [
      fn "main" ~params:0
        (prologue
        @ [ I (Mov (25, Imm 0)) ]
        @ check_magic ~fail:"bad" F.Mpdf.magic
        @ [ L "obj" ]
        @ read_byte_or ~eof:"bad" 20
        @ [
            I (Jif (Eq, Reg 20, Imm F.Mpdf.o_end, "ok"));
            I (Bin (Add, 25, Reg 25, Imm 1));
          ]
        @ read_byte_or ~eof:"bad" 21
        @ [ I (Jif (Eq, Reg 20, Imm F.Mpdf.o_font, "font")) ]
        @ skip_bytes (Reg 21)
        @ [
            I (Jmp "obj");
            L "font";
            I (Call ("font_copy", [ Reg fd; Reg 21 ], Some 22));
            I (Jmp "obj");
            L "ok";
            I (Sys (Emit (Reg 25)));
          ]
        @ exit_with 0
        @ [ L "bad" ]
        @ exit_with 1);
      Shared.font_copy;
    ]

(* Function-table layout (declaration order): 0 main, 1 h_page, 2 h_font,
   3 h_end, 4 h_skip, 5 font_copy.  The handler table is indexed by
   [object type & 7]: 'P'&7=0, 'F'&7=6, 'E'&7=5, everything else skips. *)
let handler_table =
  B.of_int_list [ 1; 4; 4; 4; 4; 3; 2; 4 ]

let sub_prologue = [ I (Mov (fd, Reg 0)); I (Sys (Alloc (scratch, Imm 64))) ]

let skip_handler name =
  fn name ~params:1
    (sub_prologue
    @ read_byte_or ~eof:"eof" 21
    @ skip_bytes (Reg 21)
    @ [ I (Ret (Imm 0)); L "eof"; I (Sys (Exit (Imm 1))) ])

let poppler_pdfinfo =
  assemble ~name:"poppler_pdfinfo" ~entry:"main" ~data:[ ("htab", handler_table) ]
    [
      fn "main" ~params:0
        (prologue
        @ check_magic ~fail:"bad" F.Mpdf.magic
        @ [ L "obj" ]
        @ read_byte_or ~eof:"bad" 20
        @ [
            I (Bin (And, 21, Reg 20, Imm 7));
            I (Load8 (22, Sym "htab", Reg 21));
            (* Indirect dispatch through the loaded slot: statically
               unresolvable, the Idx-15 CFG-failure trigger. *)
            I (Icall (Reg 22, [ Reg fd ], Some 23));
            I (Jmp "obj");
            L "bad";
          ]
        @ exit_with 1);
      skip_handler "h_page";
      fn "h_font" ~params:1
        (sub_prologue
        @ read_byte_or ~eof:"eof" 21
        @ [
            I (Call ("font_copy", [ Reg fd; Reg 21 ], Some 22));
            I (Ret (Imm 0));
            L "eof";
            I (Sys (Exit (Imm 1)));
          ]);
      fn "h_end" ~params:1 [ I (Sys (Exit (Imm 0))) ];
      skip_handler "h_skip";
      Shared.font_copy;
    ]
