(** The cloned vulnerable code ℓ: decoder functions reused verbatim by both
    S and T of each Table II pair.

    Each function is the analogue of the real shared code named in the
    paper's dataset — a JPEG scan decoder, LibTIFF's [_TIFFVGetField], a
    JPEG2000 tile decoder, a PDF xref walker, a video codec, a GIF image
    reader, a font record parser — carrying the same vulnerability class as
    the corresponding CVE (CWE-119 buffer overflow, CWE-190 integer
    overflow, CWE-835 infinite loop).  Crashes are organic memory faults of
    the MiniVM, not assertions.

    Because both sides of a pair link the exact same [src_func] value, the
    clone detector of {!Octo_clone} finds these functions with identical
    fingerprints — real code reuse, not a hand-fed ℓ. *)

open Octo_vm.Isa
open Octo_vm.Asm

(* A bounded copy loop with an unbounded length: reads [len] bytes from the
   file into a 16-byte buffer.  The CWE-119 shape shared by several pairs;
   each instance below adds a distinguishing prologue so the fingerprints of
   distinct decoders do not collide. *)
let copy_into_16 ~name ~nparams ~tag =
  (* r0 = fd, r1 = len; r2.. locals.  [tag] is emitted once, standing in for
     the decoder-specific setup that makes each real function unique. *)
  fn name ~params:nparams
    ([
       I (Sys (Emit (Imm tag)));
       I (Sys (Alloc (2, Imm 16)));  (* destination buffer: 16 bytes *)
       I (Sys (Alloc (3, Imm 4)));   (* read scratch *)
       I (Mov (4, Imm 0));           (* i *)
       L "loop";
       I (Jif (Ge, Reg 4, Reg 1, "done"));
       I (Sys (Read (5, Reg 0, Reg 3, Imm 1)));
       I (Jif (Eq, Reg 5, Imm 0, "done"));
       I (Load8 (6, Reg 3, Imm 0));
       I (Store8 (Reg 2, Reg 4, Reg 6));  (* faults when i >= 16: CWE-119 *)
       I (Bin (Add, 4, Reg 4, Imm 1));
       I (Jmp "loop");
       L "done";
       I (Ret (Imm 0));
     ])

(** JPEG scan-data decoder — the CVE-2017-0700 analogue (pairs 1, 2). *)
let mjpg_scan = copy_into_16 ~name:"mjpg_scan" ~nparams:2 ~tag:0xDA

(** PDF font-record parser — the CVE-2019-9878 analogue (pairs 6, 14, 15). *)
let font_copy = copy_into_16 ~name:"font_copy" ~nparams:2 ~tag:0xF0

(** JPEG2000 tile-part decoder — the ghostscript-BZ697463 analogue
    (pairs 7, 8, 13).  r2 of the caller carries the tile index. *)
let j2k_tile = copy_into_16 ~name:"j2k_tile" ~nparams:3 ~tag:0x54

(** Per-frame video codec — the CVE-2018-11102 analogue (pair 4). *)
let codec_decode = copy_into_16 ~name:"codec_decode" ~nparams:3 ~tag:0x46

(** GIF image-descriptor reader — the CVE-2011-2896 analogue (pair 9). *)
let gif_read_image = copy_into_16 ~name:"gif_read_image" ~nparams:3 ~tag:0x2C

(** LibTIFF field accessor — the CVE-2016-10095 analogue (pairs 10-12).
    A switch over the tag: ordinary tags store within the 8-byte field
    record; tag 0x3d stores far past it, the out-of-bounds write of
    [_TIFFVGetField]. *)
let tif_get_field =
  fn "tif_get_field" ~params:2
    ([
       (* r0 = tag, r1 = value *)
       I (Sys (Alloc (2, Imm 8)));
       I (Jif (Eq, Reg 0, Imm 0x01, "c_width"));
       I (Jif (Eq, Reg 0, Imm 0x02, "c_height"));
       I (Jif (Eq, Reg 0, Imm 0x03, "c_depth"));
       I (Jif (Eq, Reg 0, Imm 0x3d, "c_pagename"));
       I (Store8 (Reg 2, Imm 0, Reg 1));
       I (Ret (Imm 0));
       L "c_width";
       I (Store8 (Reg 2, Imm 1, Reg 1));
       I (Ret (Imm 0));
       L "c_height";
       I (Store8 (Reg 2, Imm 2, Reg 1));
       I (Ret (Imm 0));
       L "c_depth";
       I (Store8 (Reg 2, Imm 3, Reg 1));
       I (Ret (Imm 0));
       L "c_pagename";
       (* The vulnerable case: writes 16 bytes past an 8-byte record. *)
       I (Store8 (Reg 2, Imm 16, Reg 1));
       I (Ret (Imm 0));
     ])

(** PDF xref-chain walker — the CVE-2017-18267 infinite-loop analogue
    (pair 3).  Follows single-byte "next" pointers; a pointer cycle hangs
    the process (CWE-835, surfacing as the MiniVM step-budget fault). *)
let xref_walk =
  fn "xref_walk" ~params:2
    ([
       (* r0 = fd, r1 = start offset *)
       I (Sys (Alloc (2, Imm 4)));
       I (Sys (Seek (Reg 0, Reg 1)));
       L "walk";
       I (Sys (Read (3, Reg 0, Reg 2, Imm 1)));
       I (Jif (Eq, Reg 3, Imm 0, "done"));
       I (Load8 (4, Reg 2, Imm 0));
       I (Jif (Eq, Reg 4, Imm 0, "done"));
       I (Sys (Seek (Reg 0, Reg 4)));
       I (Jmp "walk");
       L "done";
       I (Ret (Imm 0));
     ])

(** Image allocator + decoder — the CVE-2018-20330 integer-overflow
    analogue (pair 5).  [w*h*4] wraps in 32 bits for large dimensions,
    producing an undersized allocation that the pixel writes overflow. *)
let img_alloc_decode =
  fn "img_alloc_decode" ~params:3
    ([
       (* r0 = fd, r1 = w, r2 = h *)
       I (Bin (Mul, 3, Reg 1, Reg 2));
       I (Bin (Mul, 3, Reg 3, Imm 4));  (* RGBA stride: CWE-190 wrap site *)
       I (Sys (Alloc (4, Reg 3)));
       I (Mov (5, Imm 0));
       L "px";
       I (Jif (Ge, Reg 5, Imm 4, "done"));
       I (Store8 (Reg 4, Reg 5, Imm 0xFF)); (* faults when the alloc wrapped *)
       I (Bin (Add, 5, Reg 5, Imm 1));
       I (Jmp "px");
       L "done";
       I (Ret (Reg 4));
     ])

(** All shared decoders, for linking convenience and clone-detection
    tests. *)
let all =
  [ mjpg_scan; font_copy; j2k_tile; codec_decode; gif_read_image; tif_get_field;
    xref_walk; img_alloc_decode ]
