(** Table II pairs Idx 10-12: [tiffsplit] → {[opj_compress], [libsdl2_img],
    [libgdiplus]}, the CVE-2016-10095 analogue (CWE-119), all Type-III.

    The shared [tif_get_field] writes out of bounds only for tag 0x3d
    (the motivating example of paper §II-C).  The three propagated programs
    each neutralise the clone differently:

    - Idx 10 [opj_compress]: calls the accessor with hardcoded tags, so the
      replayed tainted-argument constraint [tag = 0x3d] conflicts.
    - Idx 11 [libsdl2_img]: carries the clone as dead code — ep is never
      called (verification case ii).
    - Idx 12 [libgdiplus]: the only path to the accessor sits behind
      contradictory byte checks — program-dead (verification case iii). *)

open Octo_vm.Isa
open Octo_vm.Asm
open Dsl
module F = Octo_formats.Formats
module B = Octo_util.Bytes_util

(** S: splits a TIFF by walking the directory and querying every field. *)
let tiffsplit =
  assemble ~name:"tiffsplit" ~entry:"main"
    [
      fn "main" ~params:0
        (prologue
        @ check_magic ~fail:"bad" F.Mtif.magic
        @ read_byte_or ~eof:"bad" 24  (* entry count *)
        @ [
            I (Mov (23, Imm 0));
            L "ent";
            I (Jif (Ge, Reg 23, Reg 24, "ok"));
          ]
        @ read_byte_or ~eof:"bad" 20
        @ read_byte_or ~eof:"bad" 21
        @ [
            I (Call ("tif_get_field", [ Reg 20; Reg 21 ], Some 22));
            I (Bin (Add, 23, Reg 23, Imm 1));
            I (Jmp "ent");
            L "ok";
          ]
        @ exit_with 0
        @ [ L "bad" ]
        @ exit_with 1);
      Shared.tif_get_field;
    ]

(** Idx 10 T: reads directory values but queries only its seven hardcoded
    tags — the vulnerable 0x3d can never arrive as the tag argument. *)
let opj_compress =
  let query tag =
    read_byte_or ~eof:"bad" 21
    @ [ I (Call ("tif_get_field", [ Imm tag; Reg 21 ], Some 22)) ]
  in
  assemble ~name:"opj_compress" ~entry:"main"
    [
      fn "main" ~params:0
        (prologue
        @ check_magic ~fail:"bad" F.Mtif.magic
        @ read_byte_or ~eof:"bad" 24  (* entry count, informational *)
        @ query 0x01 @ query 0x02 @ query 0x03 @ query 0x04
        @ exit_with 0
        @ [ L "bad" ]
        @ exit_with 1);
      Shared.tif_get_field;
    ]

(** Idx 11 T: a BMP loader that links the TIFF accessor but never calls
    it. *)
let libsdl2_img =
  assemble ~name:"libsdl2_img" ~entry:"main"
    [
      fn "main" ~params:0
        (prologue
        @ check_magic ~fail:"bad" F.Mbmp.magic
        @ read_byte_or ~eof:"bad" 20  (* width *)
        @ read_byte_or ~eof:"bad" 21  (* height *)
        @ [
            I (Bin (Mul, 22, Reg 20, Reg 21));
            I (Sys (Alloc (23, Reg 22)));
            I (Mov (24, Imm 0));
            L "px";
            I (Jif (Ge, Reg 24, Reg 22, "ok"));
            I (Sys (Read (tcount, Reg fd, Reg scratch, Imm 1)));
            I (Jif (Eq, Reg tcount, Imm 0, "ok"));
            I (Load8 (25, Reg scratch, Imm 0));
            I (Store8 (Reg 23, Reg 24, Reg 25));
            I (Bin (Add, 24, Reg 24, Imm 1));
            I (Jmp "px");
            L "ok";
          ]
        @ exit_with 0
        @ [ L "bad" ]
        @ exit_with 1);
      Shared.tif_get_field;  (* the propagated clone: present, never called *)
    ]

(** Idx 12 T: the directory parser sits behind a little-endian check, but
    an earlier guard already insisted on the big-endian marker byte —
    contradictory constraints, so the call site is unreachable on every
    input. *)
let libgdiplus =
  assemble ~name:"libgdiplus" ~entry:"main"
    [
      fn "main" ~params:0
        (prologue
        @ read_byte_or ~eof:"bad" 20
        @ read_byte_or ~eof:"bad" 19
        @ [
            (* Only the big-endian container is supported... *)
            I (Jif (Ne, Reg 20, Imm (Char.code 'M'), "bad"));
            (* ...but the directory walker was imported from the
               little-endian code path. *)
            I (Jif (Eq, Reg 20, Imm (Char.code 'I'), "dir"));
          ]
        @ exit_with 0
        @ ([ L "dir" ]
          @ read_byte_or ~eof:"bad" 24
          @ [
              I (Mov (23, Imm 0));
              L "ent";
              I (Jif (Ge, Reg 23, Reg 24, "done"));
            ]
          @ read_byte_or ~eof:"bad" 21
          @ read_byte_or ~eof:"bad" 22
          @ [
              I (Call ("tif_get_field", [ Reg 21; Reg 22 ], Some 25));
              I (Bin (Add, 23, Reg 23, Imm 1));
              I (Jmp "ent");
              L "done";
            ]
          @ exit_with 0)
        @ [ L "bad" ]
        @ exit_with 1);
      Shared.tif_get_field;
    ]

(** Directory with a single entry querying the vulnerable tag 0x3d. *)
let poc_tag_overflow = F.Mtif.file [ F.Mtif.entry ~tag:F.Mtif.tag_vuln ~value:0x41 ]
