(** Table II pair Idx 9: [gif2png] → [gif2png_strict] (artificial), the
    CVE-2011-2896 analogue, Type-II.

    Reproduces the paper's artificial case: the disclosed PoC carries an
    invalid GIF version, which the original gif2png ignores; the hardened
    build validates the version (and, in our stressor extension, a palette
    table whose size must reconcile with a checksum byte).  OCTOPOCS must
    reform the header to a valid version, and the palette loop forces the
    directed executor through its loop-state retry machinery — this pair is
    the slowest directed-symex row of Table IV and the one case AFLFast
    solves in Table V. *)

open Octo_vm.Isa
open Octo_vm.Asm
open Dsl
module F = Octo_formats.Formats
module B = Octo_util.Bytes_util

let block_loop =
  ([ I (Mov (24, Imm 0)); L "blk" ]
  @ read_byte_or ~eof:"bad" 20
  @ [
      I (Jif (Eq, Reg 20, Imm F.Mgif.b_trailer, "ok"));
      I (Bin (Add, 24, Reg 24, Imm 1));
      I (Jif (Eq, Reg 20, Imm F.Mgif.b_image, "img"));
    ]
  @ read_byte_or ~eof:"bad" 21
  @ skip_bytes (Reg 21)
  @ [ I (Jmp "blk"); L "img" ]
  (* Image descriptors carry two validated header bytes before the
     length. *)
  @ read_byte_or ~eof:"bad" 23
  @ [ I (Jif (Ne, Reg 23, Imm F.Mgif.image_flag, "bad")) ]
  @ read_byte_or ~eof:"bad" 23
  @ [ I (Jif (Ne, Reg 23, Imm F.Mgif.image_flag2, "bad")) ]
  @ read_byte_or ~eof:"bad" 21
  @ [
      I (Call ("gif_read_image", [ Reg fd; Reg 21; Reg 24 ], Some 22));
      I (Jmp "blk");
      L "ok";
    ]
  @ exit_with 0
  @ [ L "bad" ]
  @ exit_with 1)

(** S: the original converter reads the three version bytes and ignores
    them (the disclosed PoC has an invalid version and still crashes). *)
let gif2png =
  assemble ~name:"gif2png" ~entry:"main"
    [
      fn "main" ~params:0
        (prologue
        @ check_magic ~fail:"bad" F.Mgif.magic
        @ read_byte_or ~eof:"bad" 17
        @ read_byte_or ~eof:"bad" 18
        @ read_byte_or ~eof:"bad" 19
        @ block_loop);
      Shared.gif_read_image;
    ]

(** T: the hardened build.  Version bytes must read "87a"; a palette table
    follows, [rle] entries of 1-3 component bytes each, and the running
    checksum [1 + 3*entries] must equal the last version byte (0x61), which
    pins the entry count to 32 — satisfiable only after 32 loop-state
    retries.  Each entry's type byte selects one of three layouts, so the
    naive executor forks threefold per entry. *)
let gif2png_strict =
  assemble ~name:"gif2png_strict" ~entry:"main"
    [
      fn "main" ~params:0
        (prologue
        @ check_magic ~fail:"bad" F.Mgif.magic
        @ read_byte_or ~eof:"bad" 17
        @ [ I (Jif (Ne, Reg 17, Imm (Char.code '8'), "bad")) ]
        @ read_byte_or ~eof:"bad" 18
        @ [ I (Jif (Ne, Reg 18, Imm (Char.code '7'), "bad")) ]
        @ read_byte_or ~eof:"bad" 19
        @ [ I (Jif (Ne, Reg 19, Imm (Char.code 'a'), "bad")) ]
        @ read_byte_or ~eof:"bad" 16  (* palette entry count *)
        @ [
            I (Mov (15, Imm 1));      (* checksum accumulator *)
            I (Mov (14, Imm 0));      (* entry index *)
            L "pal";
            I (Jif (Ge, Reg 14, Reg 16, "palx"));
          ]
        @ read_byte_or ~eof:"bad" 13  (* entry layout selector *)
        @ [
            I (Jif (Eq, Reg 13, Imm 1, "p_rgb"));
            I (Jif (Eq, Reg 13, Imm 2, "p_rgba"));
            (* grayscale: one component *)
            I (Sys (Read (tcount, Reg fd, Reg scratch, Imm 1)));
            I (Jmp "p_next");
            L "p_rgb";
            I (Sys (Read (tcount, Reg fd, Reg scratch, Imm 3)));
            I (Jmp "p_next");
            L "p_rgba";
            I (Sys (Read (tcount, Reg fd, Reg scratch, Imm 4)));
            L "p_next";
            I (Bin (Add, 15, Reg 15, Imm 3));
            I (Bin (Add, 14, Reg 14, Imm 1));
            I (Jmp "pal");
            L "palx";
            I (Jif (Ne, Reg 15, Reg 19, "bad"));
          ]
        @ block_loop);
      Shared.gif_read_image;
    ]

(** The disclosed PoC: invalid version "xyz" (ignored by S), one extension
    block, a benign image block, then the oversized image block that
    overruns the 16-byte reader. *)
let poc_gif_overflow =
  F.Mgif.file ~version:"xyz"
    [
      F.Mgif.block ~typ:F.Mgif.b_ext (B.repeat 2 0x05);
      F.Mgif.image_block (B.repeat 4 0x11);
      F.Mgif.image_block (B.repeat 32 0x41);
    ]
