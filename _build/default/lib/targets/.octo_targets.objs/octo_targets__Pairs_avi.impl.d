lib/targets/pairs_avi.ml: Dsl Octo_formats Octo_util Octo_vm Shared
