lib/targets/pairs_j2k.ml: Dsl Octo_formats Octo_util Octo_vm Shared String
