lib/targets/pairs_tif.ml: Char Dsl Octo_formats Octo_util Octo_vm Shared
