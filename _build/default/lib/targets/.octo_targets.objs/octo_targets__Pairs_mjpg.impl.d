lib/targets/pairs_mjpg.ml: Dsl Octo_formats Octo_util Octo_vm Shared
