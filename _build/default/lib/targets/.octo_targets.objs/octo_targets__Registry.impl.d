lib/targets/registry.ml: List Octo_vm Pairs_avi Pairs_gif Pairs_j2k Pairs_mjpg Pairs_mpdf Pairs_tif Printf
