lib/targets/shared.ml: Octo_vm
