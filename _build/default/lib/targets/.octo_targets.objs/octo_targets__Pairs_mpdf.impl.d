lib/targets/pairs_mpdf.ml: Dsl Octo_formats Octo_util Octo_vm Shared
