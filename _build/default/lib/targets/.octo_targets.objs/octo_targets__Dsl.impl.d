lib/targets/dsl.ml: Char List Octo_vm String
