lib/targets/pairs_gif.ml: Char Dsl Octo_formats Octo_util Octo_vm Shared
