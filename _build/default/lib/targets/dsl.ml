(** Assembly idioms shared by the Table II target programs.

    Register conventions for [main]-style driver functions:
    - r28: input file descriptor
    - r29: 64-byte scratch buffer for single-byte reads
    - r30, r31: short-lived temporaries (r31 receives read counts)
    Shared decoder functions manage their own registers and scratch. *)

open Octo_vm.Isa
open Octo_vm.Asm

let fd = 28
let scratch = 29
let t0 = 30
let tcount = 31

(** Open the input file and allocate the scratch buffer. *)
let prologue = [ I (Sys (Open fd)); I (Sys (Alloc (scratch, Imm 64))) ]

(** [read_byte dst] reads exactly one byte into register [dst]; on EOF the
    read count in [tcount] is 0 (callers branch on it when EOF matters). *)
let read_byte dst =
  [ I (Sys (Read (tcount, Reg fd, Reg scratch, Imm 1))); I (Load8 (dst, Reg scratch, Imm 0)) ]

(** [read_byte_or ~eof dst] reads one byte, jumping to [eof] at end of
    input. *)
let read_byte_or ~eof dst = read_byte dst @ [ I (Jif (Eq, Reg tcount, Imm 0, eof)) ]

(** [check_magic ~fail s] consumes [String.length s] bytes and jumps to
    [fail] unless they equal [s]. *)
let check_magic ~fail s =
  List.concat_map
    (fun c -> read_byte_or ~eof:fail t0 @ [ I (Jif (Ne, Reg t0, Imm (Char.code c), fail)) ])
    (List.init (String.length s) (String.get s))

(** [skip_bytes len] advances the file position by the value of [len]
    (an operand), using seek — the library-call skip idiom. *)
let skip_bytes len =
  [
    I (Sys (Tell (t0, Reg fd)));
    I (Bin (Add, t0, Reg t0, len));
    I (Sys (Seek (Reg fd, Reg t0)));
  ]

(** [exit_with c] terminates the program with status [c]. *)
let exit_with c = [ I (Sys (Exit (Imm c))) ]
