(** Table II pairs built on the Mini-JPEG format.

    - Idx 1: [jpegc] → [libgdx_img]  (CVE-2017-0700 analogue, Type-I)
    - Idx 2: [jpegc] → [zxing_scan]  (same vulnerability, Type-I)
    - Idx 5: [tjbench_turbo] → [tjbench_moz]  (CVE-2018-20330 analogue,
      CWE-190, Type-I)

    Both T programs of Idx 1/2 accept exactly the files S accepts (the
    guiding input is unchanged — Type-I); they differ in code structure:
    wrapper functions, logging, a different segment-skipping idiom. *)

open Octo_vm.Isa
open Octo_vm.Asm
open Dsl
module F = Octo_formats.Formats
module B = Octo_util.Bytes_util

(* ------------------------------------------------------------------ *)
(* Idx 1 & 2: S — a standalone JPEG compressor CLI. *)

let jpegc =
  assemble ~name:"jpegc" ~entry:"main"
    [
      fn "main" ~params:0
        (prologue
        @ check_magic ~fail:"bad" F.Mjpg.magic
        @ [ L "seg" ]
        @ read_byte_or ~eof:"bad" 20
        @ [ I (Jif (Eq, Reg 20, Imm F.Mjpg.m_end, "ok")) ]
        @ read_byte_or ~eof:"bad" 21
        @ [
            I (Jif (Eq, Reg 20, Imm F.Mjpg.m_scan, "scan"));
            I (Jif (Eq, Reg 20, Imm F.Mjpg.m_frame, "frame"));
          ]
        @ skip_bytes (Reg 21)
        @ [
            I (Jmp "seg");
            L "scan";
            I (Call ("mjpg_scan", [ Reg fd; Reg 21 ], Some 22));
            I (Jmp "seg");
            L "frame";
          ]
        @ skip_bytes (Reg 21)
        @ [ I (Jmp "seg"); L "ok" ]
        @ exit_with 0
        @ [ L "bad" ]
        @ exit_with 1);
      Shared.mjpg_scan;
    ]

(* Idx 1: T — a game framework's image loader.  Same file acceptance, but
   decoding lives behind a wrapper and logs a banner. *)
let libgdx_img =
  assemble ~name:"libgdx_img" ~entry:"main"
    [
      fn "main" ~params:0
        [
          I (Sys (Emit (Imm 0x6C)));  (* "l": loader banner *)
          I (Sys (Open 20));
          I (Call ("decode_image", [ Reg 20 ], Some 21));
          I (Sys (Exit (Reg 21)));
        ];
      fn "decode_image" ~params:1
        ([ I (Mov (fd, Reg 0)); I (Sys (Alloc (scratch, Imm 64))) ]
        @ check_magic ~fail:"bad" F.Mjpg.magic
        @ [ L "seg" ]
        @ read_byte_or ~eof:"bad" 20
        @ [ I (Jif (Eq, Reg 20, Imm F.Mjpg.m_end, "ok")) ]
        @ read_byte_or ~eof:"bad" 21
        @ [
            (* Extra validation absent from S: reject reserved markers. *)
            I (Jif (Eq, Reg 20, Imm 0xFF, "bad"));
            I (Jif (Eq, Reg 20, Imm F.Mjpg.m_scan, "scan"));
          ]
        @ skip_bytes (Reg 21)
        @ [
            I (Jmp "seg");
            L "scan";
            I (Call ("mjpg_scan", [ Reg fd; Reg 21 ], Some 22));
            I (Jmp "seg");
            L "ok";
            I (Ret (Imm 0));
            L "bad";
            I (Ret (Imm 1));
          ]);
      Shared.mjpg_scan;
    ]

(* Idx 2: T — a barcode scanner that embeds the same decoder; it skips
   uninteresting segments by reading byte-by-byte instead of seeking. *)
let zxing_scan =
  assemble ~name:"zxing_scan" ~entry:"main"
    [
      fn "main" ~params:0
        [
          I (Sys (Open 20));
          I (Call ("scan_barcode", [ Reg 20 ], Some 21));
          I (Sys (Exit (Reg 21)));
        ];
      fn "scan_barcode" ~params:1
        ([ I (Mov (fd, Reg 0)); I (Sys (Alloc (scratch, Imm 64))) ]
        @ check_magic ~fail:"bad" F.Mjpg.magic
        @ [ L "seg" ]
        @ read_byte_or ~eof:"bad" 20
        @ [ I (Jif (Eq, Reg 20, Imm F.Mjpg.m_end, "ok")) ]
        @ read_byte_or ~eof:"bad" 21
        @ [
            I (Jif (Eq, Reg 20, Imm F.Mjpg.m_scan, "scan"));
            (* Byte-wise skip loop. *)
            I (Mov (22, Imm 0));
            L "skip";
            I (Jif (Ge, Reg 22, Reg 21, "seg"));
            I (Sys (Read (tcount, Reg fd, Reg scratch, Imm 1)));
            I (Bin (Add, 22, Reg 22, Imm 1));
            I (Jmp "skip");
            L "scan";
            I (Call ("mjpg_scan", [ Reg fd; Reg 21 ], Some 23));
            I (Jmp "seg");
            L "ok";
            I (Sys (Emit (Imm 0x7A)));  (* "z": decoded *)
            I (Ret (Imm 0));
            L "bad";
            I (Ret (Imm 1));
          ]);
      Shared.mjpg_scan;
    ]

(** The malformed scan segment: its length byte (0x20) exceeds the 16-byte
    decoder buffer, the CWE-119 trigger. *)
let poc_scan_overflow = F.Mjpg.file [ F.Mjpg.segment ~marker:F.Mjpg.m_scan (B.repeat 32 0x41) ]

(* ------------------------------------------------------------------ *)
(* Idx 5: S — libjpeg-turbo's tjbench.  The frame header carries 16-bit
   dimensions; [w*h*4] wraps in 32-bit arithmetic (CWE-190). *)

let frame_dispatch_body ~banner =
  (banner
  @ prologue
  @ check_magic ~fail:"bad" F.Mjpg.magic
  @ [ L "seg" ]
  @ read_byte_or ~eof:"bad" 20
  @ [ I (Jif (Eq, Reg 20, Imm F.Mjpg.m_end, "ok")) ]
  @ read_byte_or ~eof:"bad" 21
  @ [ I (Jif (Eq, Reg 20, Imm F.Mjpg.m_frame, "frame")) ]
  @ skip_bytes (Reg 21)
  @ [
      I (Jmp "seg");
      L "frame";
      I (Sys (Read (tcount, Reg fd, Reg scratch, Imm 4)));
      I (Load8 (22, Reg scratch, Imm 0));
      I (Load8 (23, Reg scratch, Imm 1));
      I (Bin (Shl, 23, Reg 23, Imm 8));
      I (Bin (Or, 22, Reg 22, Reg 23));  (* w *)
      I (Load8 (24, Reg scratch, Imm 2));
      I (Load8 (25, Reg scratch, Imm 3));
      I (Bin (Shl, 25, Reg 25, Imm 8));
      I (Bin (Or, 24, Reg 24, Reg 25));  (* h *)
      I (Call ("img_alloc_decode", [ Reg fd; Reg 22; Reg 24 ], Some 26));
      I (Jmp "seg");
      L "ok";
    ]
  @ exit_with 0
  @ [ L "bad" ]
  @ exit_with 1)

let tjbench_turbo =
  assemble ~name:"tjbench_turbo" ~entry:"main"
    [ fn "main" ~params:0 (frame_dispatch_body ~banner:[]); Shared.img_alloc_decode ]

let tjbench_moz =
  assemble ~name:"tjbench_moz" ~entry:"main"
    [
      fn "main" ~params:0
        (frame_dispatch_body
           ~banner:[ I (Sys (Emit (Imm 0x6D))); I (Sys (Emit (Imm 0x7A))) ] (* "mz" *));
      Shared.img_alloc_decode;
    ]

(** Frame header declaring a 0x8000 x 0x8000 image: the RGBA size
    computation wraps to 0, the allocation is empty, and the first pixel
    write faults. *)
let poc_dim_overflow = F.Mjpg.file [ F.Mjpg.frame_header ~w:0x8000 ~h:0x8000 ]
