(** Table II pair Idx 4: [avconv] → [ffmpeg1] on the Mini-AVI container
    (CVE-2018-11102 analogue, CWE-119, Type-I).

    The shared per-frame codec is entered once per frame record, so the PoC
    (benign frame + oversized frame) produces two bunches — one of the
    Table III cases where context-free taint merges them and fails. *)

open Octo_vm.Isa
open Octo_vm.Asm
open Dsl
module F = Octo_formats.Formats
module B = Octo_util.Bytes_util

let demux_body ~strict =
  (prologue
  @ check_magic ~fail:"bad" F.Mavi.magic
  @ [ I (Mov (24, Imm 0)); L "rec" ]
  @ read_byte_or ~eof:"bad" 20
  @ [
      I (Jif (Eq, Reg 20, Imm F.Mavi.r_end, "ok"));
      I (Jif (Eq, Reg 20, Imm F.Mavi.r_frame, "frame"));
    ]
  @ (if strict then [ I (Jif (Eq, Reg 20, Imm 0xFF, "bad")) ] else [])
  @ [ I (Jmp "bad"); L "frame" ]
  @ read_byte_or ~eof:"bad" 21
  @ [
      I (Call ("codec_decode", [ Reg fd; Reg 21; Reg 24 ], Some 22));
      I (Bin (Add, 24, Reg 24, Imm 1));
      I (Jmp "rec");
      L "ok";
    ]
  @ exit_with 0
  @ [ L "bad" ]
  @ exit_with 1)

let avconv =
  assemble ~name:"avconv" ~entry:"main"
    [ fn "main" ~params:0 (demux_body ~strict:false); Shared.codec_decode ]

let ffmpeg1 =
  assemble ~name:"ffmpeg1" ~entry:"main"
    [
      fn "main" ~params:0
        [
          I (Sys (Emit (Imm 0x66)));  (* "f" *)
          I (Call ("demux", [], Some 20));
          I (Sys (Exit (Reg 20)));
        ];
      fn "demux" ~params:0 (demux_body ~strict:true @ [ I (Ret (Imm 0)) ]);
      Shared.codec_decode;
    ]

(** Frame 1 decodes cleanly; frame 2 declares 0x20 bytes and overruns the
    16-byte codec buffer. *)
let poc_frame_overflow =
  F.Mavi.file [ F.Mavi.frame (B.repeat 4 0x10); F.Mavi.frame (B.repeat 32 0x41) ]
