lib/taint/taint.ml: Array Char Fmt Hashtbl Int Interp Isa List Octo_vm Set String
