lib/taint/taint.mli: Format Interp Isa Octo_vm
