lib/symex/naive.ml: Isa Octo_vm Queue Sym_state
