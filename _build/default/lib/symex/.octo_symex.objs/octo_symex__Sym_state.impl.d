lib/symex/sym_state.ml: Array Char Hashtbl List Mem Octo_solver Octo_vm Printf String
