lib/symex/directed.ml: Array Fmt Hashtbl Isa Octo_cfg Octo_solver Octo_vm Sym_state
