(** Naive (undirected) symbolic execution — the Table IV baseline.

    Breadth-first forking exploration, as a stock angr run would do when
    given only the address of the vulnerable location: every undecided
    branch clones the state for both satisfiable directions.  State count
    grows exponentially with branchy input parsing, which is exactly the
    path-explosion failure the paper demonstrates; when the live-state
    count exceeds [max_states] the run aborts with [Mem_error], matching
    the MemError entries of Table IV. *)

open Octo_vm

type config = {
  max_states : int;
      (** live-state cap standing in for 32 GB of RAM: an angr state for a
          real binary weighs tens of megabytes, so a few hundred live
          states exhaust a 32 GB machine *)
  max_total_steps : int;
}

let default_config = { max_states = 512; max_total_steps = 2_000_000 }

type outcome =
  | Reached of Sym_state.t    (** some state entered [ep] *)
  | Mem_error of int          (** state explosion; carries peak state count *)
  | Exhausted                  (** all states died without reaching [ep] *)
  | Step_limit

type stats = {
  mutable peak_states : int;
  mutable total_steps : int;
  mutable forks : int;
}

(** [run ?config prog ~ep] explores breadth-first until any state enters
    [ep].  Loop back-edges keep states alive indefinitely, so the step and
    state caps are load-bearing. *)
let run ?(config = default_config) ?(sym_file_size = Sym_state.default_sym_file_size)
    (prog : Isa.program) ~(ep : string) : outcome * stats =
  let stats = { peak_states = 0; total_steps = 0; forks = 0 } in
  let queue = Queue.create () in
  Queue.add (Sym_state.create ~sym_file_size prog ~ep) queue;
  let result = ref None in
  (* Lockstep scheduling, as angr's simulation manager does: every epoch
     advances every live state, so memory grows with the full breadth of
     the frontier. *)
  let slice = 1 in
  while !result = None && not (Queue.is_empty queue) do
    stats.peak_states <- max stats.peak_states (Queue.length queue);
    if Queue.length queue > config.max_states then result := Some (Mem_error stats.peak_states)
    else if stats.total_steps > config.max_total_steps then result := Some Step_limit
    else begin
      let st = Queue.pop queue in
      let continue_state = ref true in
      let budget = ref slice in
      while !continue_state && !budget > 0 && !result = None do
        decr budget;
        stats.total_steps <- stats.total_steps + 1;
        match Sym_state.step st with
        | Sym_state.Running -> ()
        | Sym_state.Finished _ | Sym_state.Faulted _ -> continue_state := false
        | Sym_state.Entered_ep _ -> result := Some (Reached st)
        | Sym_state.Branch_choice br ->
            (* Fork: both satisfiable directions continue. *)
            let other = Sym_state.clone st in
            stats.forks <- stats.forks + 1;
            if Sym_state.take_branch st br ~taken:true then ()
            else continue_state := false;
            if Sym_state.take_branch other br ~taken:false then Queue.add other queue
      done;
      if !continue_state && !result = None then Queue.add st queue
    end
  done;
  let outcome = match !result with Some r -> r | None -> Exhausted in
  (outcome, stats)
