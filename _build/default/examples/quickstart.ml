(* Quickstart: verify one propagated vulnerability end to end.

   Scenario: a buffer overflow was found in the standalone JPEG compressor
   [jpegc] (our CVE-2017-0700 analogue), with a public malformed-image PoC.
   Clone detection says the libgdx image loader embeds the same decoder.
   Does the vulnerability still trigger there?

   Run with: dune exec examples/quickstart.exe *)

module Registry = Octo_targets.Registry
module B = Octo_util.Bytes_util

let () =
  let c = Registry.find 1 in
  Format.printf "S = %s, T = %s, vulnerability %s@." c.s.pname c.t.pname c.vuln_id;
  Format.printf "original PoC (%d bytes):@.%s@." (String.length c.poc) (B.hexdump c.poc);

  (* The whole pipeline is one call: clone detection finds ℓ, the crash
     backtrace of S picks ep, taint extracts crash primitives, directed
     symbolic execution of T generates and combines the guiding input, and
     the reformed poc' is replayed against T. *)
  let report = Octopocs.run ~s:c.s ~t:c.t ~poc:c.poc () in

  Format.printf "shared functions ℓ = [%s], ep = %s@."
    (String.concat "; " report.ell) report.ep;
  (match report.taint with
  | Some t ->
      Format.printf "crash primitives: %d byte(s) across %d bunch(es)@." t.marked_offsets
        (List.length t.bunches)
  | None -> ());
  Format.printf "verdict: %a@." Octopocs.pp_verdict report.verdict;
  match report.verdict with
  | Octopocs.Triggered { poc'; _ } ->
      Format.printf "reformed poc' (%d bytes):@.%s@." (String.length poc') (B.hexdump poc');
      Format.printf
        "=> the propagated vulnerability is still triggerable in %s; patch urgently.@."
        c.t.pname
  | Octopocs.Not_triggerable r ->
      Format.printf "=> not triggerable (%a); the patch can be deprioritised.@."
        Octopocs.pp_reason r
  | Octopocs.Failure msg -> Format.printf "=> verification failed: %s@." msg
