examples/triage_report.ml: Format List Octo_targets Octopocs String
