examples/triage_report.mli:
