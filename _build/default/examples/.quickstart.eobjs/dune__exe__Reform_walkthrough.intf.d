examples/reform_walkthrough.mli:
