examples/fuzzer_shootout.ml: Format List Octo_clone Octo_formats Octo_fuzz Octo_targets Octo_util Octopocs
