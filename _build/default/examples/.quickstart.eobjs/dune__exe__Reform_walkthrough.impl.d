examples/reform_walkthrough.ml: Format Interp List Octo_cfg Octo_clone Octo_taint Octo_targets Octo_util Octo_vm Octopocs String
