examples/fuzzer_shootout.mli:
