examples/quickstart.ml: Format List Octo_targets Octo_util Octopocs String
