examples/quickstart.mli:
