(* PoC reforming walkthrough: the paper's motivating MuPDF scenario
   (§II-C), phase by phase.

   A malicious raw JPEG2000 codestream crashes opj_dump.  MuPDF embeds the
   same tile decoder but only accepts PDF files, so the original PoC does
   nothing to it.  This example runs each OCTOPOCS phase separately and
   prints the intermediate artifacts: the extracted bunches (P1), the
   directed-symbolic-execution statistics (P2), the solved constraints as a
   new PDF-shaped PoC (P3), and the replayed crash (P4).

   Run with: dune exec examples/reform_walkthrough.exe *)

open Octo_vm
module Registry = Octo_targets.Registry
module Clone = Octo_clone.Clone
module Taint = Octo_taint.Taint
module Cfg = Octo_cfg.Cfg
module B = Octo_util.Bytes_util

let section fmt = Format.printf ("@.== " ^^ fmt ^^ " ==@.")

let () =
  let c = Registry.find 8 in
  (* S = opj_dump (raw codestream), T = mupdf (PDF). *)
  section "Inputs";
  Format.printf "S = %s, T = %s@." c.s.pname c.t.pname;
  Format.printf "PoC for S (%d bytes):@.%s" (String.length c.poc) (B.hexdump c.poc);

  section "Preprocessing: ℓ and ep";
  let pairs = Clone.shared_functions c.s c.t in
  let ell = Clone.ell_names pairs in
  Format.printf "clone detection: ℓ = [%s]@." (String.concat "; " ell);
  let s_run = Interp.run c.s ~input:c.poc in
  (match s_run.outcome with
  | Interp.Crashed crash ->
      Format.printf "S crashes: %a@." Interp.pp_outcome s_run.outcome;
      Format.printf "backtrace: %s@." (String.concat " > " crash.backtrace)
  | Interp.Exited _ -> failwith "expected crash");
  let ep = c.vuln_func in
  Format.printf "ep (bottom-most ℓ function in the backtrace) = %s@." ep;

  section "P1: context-aware taint analysis";
  let taint = Taint.extract c.s ~poc:c.poc ~ep in
  Format.printf "ep entered %d time(s); %d tainted objects at peak@." taint.ep_entries
    taint.tainted_peak;
  List.iter (fun b -> Format.printf "  %a@." Taint.pp_bunch b) taint.bunches;

  section "P2: the original PoC does nothing to T";
  let t_orig = Interp.run c.t ~input:c.poc in
  Format.printf "T on original poc: %a (no crash: wrong container format)@."
    Interp.pp_outcome t_orig.outcome;

  section "P2+P3: directed symbolic execution and combining";
  let report = Octopocs.run ~s:c.s ~t:c.t ~poc:c.poc () in
  (match report.symex with
  | Some st ->
      Format.printf "runs: %d, symbolic steps: %d, branch decisions: %d, loop retries: %d@."
        st.runs st.total_steps st.branches_decided st.loop_retries
  | None -> ());

  section "P4: verification";
  (match report.verdict with
  | Octopocs.Triggered { poc'; ptype } ->
      Format.printf "reformed poc' (%d bytes, %s):@.%s"
        (String.length poc')
        (match ptype with Octopocs.Type_I -> "Type-I" | Octopocs.Type_II -> "Type-II")
        (B.hexdump poc');
      let t_run = Interp.run c.t ~input:poc' in
      Format.printf "T on poc': %a@." Interp.pp_outcome t_run.outcome;
      Format.printf
        "note the header: the raw 'OJ2K' codestream was re-wrapped as a '%%MPD' stream object.@."
  | v -> Format.printf "unexpected verdict: %a@." Octopocs.pp_verdict v);

  section "Contrast: the patched sibling is not triggerable";
  let c13 = Registry.find 13 in
  let r13 = Octopocs.run ~s:c13.s ~t:c13.t ~poc:c13.poc () in
  Format.printf "%s -> %s (patched): %a@." c13.s.pname c13.t.pname Octopocs.pp_verdict
    r13.verdict
