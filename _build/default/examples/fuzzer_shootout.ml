(* Fuzzer shootout: why PoC reforming beats re-discovery (§V-D).

   Give AFLFast and AFLGo a modest execution budget on the gif2png
   hardened target and compare against OCTOPOCS on the same pair.  The
   fuzzers must re-discover the crash bytes from scratch; OCTOPOCS reuses
   the crash primitives of the original PoC and only synthesises the
   guiding prefix.

   Run with: dune exec examples/fuzzer_shootout.exe *)

module Registry = Octo_targets.Registry
module Clone = Octo_clone.Clone
module Aflfast = Octo_fuzz.Aflfast
module Aflgo = Octo_fuzz.Aflgo
module F = Octo_formats.Formats
module B = Octo_util.Bytes_util

let budget = 40_000

let () =
  let c = Registry.find 9 in
  let ell = Clone.ell_names (Clone.shared_functions c.s c.t) in
  (* Minimal valid seed for the hardened target: correct version and the
     32-entry palette demanded by its checksum. *)
  let palette = B.concat (List.init 32 (fun _ -> B.of_int_list [ 0x00; 0x77 ])) in
  let seed =
    B.concat [ F.Mgif.magic; "87a"; B.of_int_list [ 32 ]; palette;
               B.of_int_list [ F.Mgif.b_trailer ] ]
  in
  Format.printf "target: %s, vulnerable clone: %s, budget: %d execs@.@." c.t.pname
    c.vuln_func budget;

  let fast =
    Aflfast.run ~config:{ Aflfast.default_config with max_execs = budget } c.t
      ~seeds:[ seed; c.poc ] ~crash_in:ell
  in
  Format.printf "AFLFast : %s (%d execs, %.2fs, %d coverage buckets)@."
    (match fast.crash_input with Some _ -> "crash found" | None -> "no crash")
    fast.execs fast.elapsed_s fast.coverage;

  (match
     Aflgo.run ~config:{ Aflgo.default_config with max_execs = budget } c.t
       ~target:c.vuln_func ~seeds:[ seed; c.poc ] ~crash_in:ell
   with
  | r ->
      Format.printf "AFLGo   : %s (%d execs, %.2fs, best distance %.1f)@."
        (match r.crash_input with Some _ -> "crash found" | None -> "no crash")
        r.execs r.elapsed_s r.best_distance
  | exception Aflgo.Aflgo_error msg -> Format.printf "AFLGo   : tool error (%s)@." msg);

  let r = Octopocs.run ~s:c.s ~t:c.t ~poc:c.poc () in
  Format.printf "OCTOPOCS: %a in %.2fs@." Octopocs.pp_verdict r.verdict r.elapsed_s;
  match r.verdict with
  | Octopocs.Triggered _ ->
      Format.printf
        "@.OCTOPOCS needs no search at all: the crash primitive is lifted from the@.";
      Format.printf "original PoC and only the guiding prefix is solved for.@."
  | _ -> ()
