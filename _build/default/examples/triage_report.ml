(* Patch-priority triage: the paper's "practical usage" scenario (§VII).

   A development team has run clone detection across its dependency tree
   and found fifteen propagated copies of known-vulnerable code.  Which
   ones actually need an emergency patch?  This example runs OCTOPOCS over
   the whole batch and produces a prioritised report: confirmed-triggerable
   first (with the working poc' size as evidence), proven-safe last, and
   tool failures flagged for manual analysis.

   Run with: dune exec examples/triage_report.exe *)

module Registry = Octo_targets.Registry

type row = {
  case : Registry.case;
  report : Octopocs.report;
}

let priority (r : row) =
  match r.report.verdict with
  | Octopocs.Triggered _ -> 0     (* patch now *)
  | Octopocs.Failure _ -> 1       (* needs a human *)
  | Octopocs.Not_triggerable _ -> 2 (* schedule normally *)

let () =
  let rows =
    List.map (fun (c : Registry.case) -> { case = c; report = Octopocs.run ~s:c.s ~t:c.t ~poc:c.poc () })
      Registry.all
  in
  let rows = List.stable_sort (fun a b -> compare (priority a) (priority b)) rows in
  Format.printf "PATCH-PRIORITY TRIAGE (%d propagated vulnerabilities analysed)@.@."
    (List.length rows);
  let banner = function
    | 0 -> "PATCH IMMEDIATELY — exploit reproduced"
    | 1 -> "MANUAL ANALYSIS — verification failed"
    | _ -> "VERIFIED NOT TRIGGERABLE — normal schedule"
  in
  let last = ref (-1) in
  List.iter
    (fun r ->
      let p = priority r in
      if p <> !last then begin
        last := p;
        Format.printf "@.--- %s ---@." (banner p)
      end;
      let evidence =
        match r.report.verdict with
        | Octopocs.Triggered { poc'; ptype } ->
            Format.asprintf "working %d-byte poc' (%s), %.0f ms"
              (String.length poc')
              (match ptype with Octopocs.Type_I -> "original PoC also works"
                              | Octopocs.Type_II -> "PoC had to be reformed")
              (r.report.elapsed_s *. 1000.)
        | Octopocs.Not_triggerable reason -> Format.asprintf "%a" Octopocs.pp_reason reason
        | Octopocs.Failure msg -> msg
      in
      Format.printf "%-18s %-10s %-20s %s@." r.case.t.pname r.case.t_version r.case.vuln_id
        evidence)
    rows;
  let n p = List.length (List.filter (fun r -> priority r = p) rows) in
  Format.printf "@.summary: %d urgent, %d manual, %d safe@." (n 0) (n 1) (n 2)
