(* Tests for byte-level taint analysis and crash-primitive extraction. *)

open Octo_vm.Isa
open Octo_vm.Asm
module Taint = Octo_taint.Taint
module Registry = Octo_targets.Registry

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

(* A tiny S: reads one byte, passes it through a register copy into the
   shared function "sink" which stores it out of bounds. *)
let tiny_s =
  assemble ~name:"tiny" ~entry:"main"
    [
      fn "main" ~params:0
        [
          I (Sys (Open 1));
          I (Sys (Alloc (2, Imm 4)));
          I (Sys (Read (3, Reg 1, Reg 2, Imm 1)));
          I (Load8 (4, Reg 2, Imm 0));
          I (Mov (5, Reg 4));  (* taint propagates through the copy *)
          I (Call ("sink", [ Reg 5 ], None));
          I Halt;
        ];
      fn "sink" ~params:1 [ I (Sys (Alloc (1, Imm 2))); I (Store8 (Reg 1, Imm 8, Reg 0)) ];
    ]

let extracts_through_copies () =
  let r = Taint.extract tiny_s ~poc:"\x41" ~ep:"sink" in
  check Alcotest.int "one entry" 1 r.ep_entries;
  match r.bunches with
  | [ b ] ->
      check Alcotest.(list (pair int int)) "offset 0 marked" [ (0, 0x41) ] b.prims;
      check Alcotest.(list (pair int bool)) "arg tainted" [ (0x41, true) ] b.ep_args
  | _ -> Alcotest.fail "expected one bunch"

let crash_recorded () =
  let r = Taint.extract tiny_s ~poc:"\x41" ~ep:"sink" in
  match r.crash with
  | Some c -> check Alcotest.string "crash in sink" "sink" c.crash_func
  | None -> Alcotest.fail "expected crash"

(* Overwriting a tainted register with a constant clears its taint, so the
   second sink call's argument is untainted. *)
let untaint_s =
  assemble ~name:"untaint" ~entry:"main"
    [
      fn "main" ~params:0
        [
          I (Sys (Open 1));
          I (Sys (Alloc (2, Imm 4)));
          I (Sys (Read (3, Reg 1, Reg 2, Imm 1)));
          I (Load8 (4, Reg 2, Imm 0));
          I (Mov (4, Imm 7));  (* kills the taint *)
          I (Call ("sink", [ Reg 4 ], None));
          I Halt;
        ];
      fn "sink" ~params:1 [ I (Sys (Alloc (1, Imm 2))); I (Store8 (Reg 1, Imm 8, Reg 0)) ];
    ]

let overwrite_clears_taint () =
  let r = Taint.extract untaint_s ~poc:"\x41" ~ep:"sink" in
  match r.bunches with
  | [ b ] ->
      check Alcotest.(list (pair int int)) "no primitives" [] b.prims;
      check Alcotest.(list (pair int bool)) "arg untainted" [ (7, false) ] b.ep_args
  | _ -> Alcotest.fail "expected one bunch"

(* Real pair: jpegc on the scan-overflow PoC. *)

let jpegc_bunch () =
  let c = Registry.find 1 in
  let r = Taint.extract c.s ~poc:c.poc ~ep:c.vuln_func in
  check Alcotest.int "single ep entry" 1 r.ep_entries;
  match r.bunches with
  | [ b ] ->
      let offs = List.map fst b.prims in
      (* len byte at 3, plus the 17 payload bytes read before the fault *)
      check Alcotest.bool "len byte marked" true (List.mem 3 offs);
      check Alcotest.bool "first payload byte marked" true (List.mem 4 offs);
      check Alcotest.bool "17th payload byte marked" true (List.mem 20 offs);
      check Alcotest.bool "unread tail not marked" false (List.mem 25 offs);
      check Alcotest.int "anchor after len" 4 b.anchor;
      (* args: (fd, len) — only len is input-derived *)
      (match b.ep_args with
      | [ (_, false); (len, true) ] -> check Alcotest.int "len value" 0x20 len
      | _ -> Alcotest.fail "unexpected arg taint pattern")
  | _ -> Alcotest.fail "expected one bunch"

let multi_entry_bunches () =
  let c = Registry.find 4 in
  (* avconv: two frames, crash on the second *)
  let r = Taint.extract c.s ~poc:c.poc ~ep:c.vuln_func in
  check Alcotest.int "two entries" 2 r.ep_entries;
  match r.bunches with
  | [ b1; b2 ] ->
      check Alcotest.int "seq 1" 1 b1.seq;
      check Alcotest.int "seq 2" 2 b2.seq;
      check Alcotest.bool "anchors increase" true (b2.anchor > b1.anchor);
      check Alcotest.bool "second bunch larger (crash payload)" true
        (List.length b2.prims > List.length b1.prims);
      check Alcotest.bool "bunches marked unmerged" true
        ((not b1.merged) && not b2.merged)
  | _ -> Alcotest.fail "expected two bunches"

let plain_mode_merges () =
  let c = Registry.find 4 in
  let aware = Taint.extract ~mode:Taint.Context_aware c.s ~poc:c.poc ~ep:c.vuln_func in
  let plain = Taint.extract ~mode:Taint.Plain c.s ~poc:c.poc ~ep:c.vuln_func in
  match (aware.bunches, plain.bunches) with
  | [ b1; b2 ], [ m ] ->
      check Alcotest.bool "merged flag" true m.merged;
      check Alcotest.int "union of offsets"
        (List.length (List.sort_uniq compare (List.map fst (b1.prims @ b2.prims))))
        (List.length m.prims);
      check Alcotest.int "anchored at first entry" b1.anchor m.anchor
  | _ -> Alcotest.fail "unexpected bunch structure"

let hang_crash_still_extracts () =
  let c = Registry.find 3 in
  (* poppler_pdftops hangs in xref_walk: extraction must terminate with the
     hang crash and both bunches. *)
  let r = Taint.extract c.s ~poc:c.poc ~ep:c.vuln_func in
  check Alcotest.int "two xref entries" 2 r.ep_entries;
  match r.crash with
  | Some { fault = Octo_vm.Mem.Hang; crash_func; _ } ->
      check Alcotest.string "hang inside walker" "xref_walk" crash_func
  | _ -> Alcotest.fail "expected hang crash"

let tif_args_tainted () =
  let c = Registry.find 10 in
  let r = Taint.extract c.s ~poc:c.poc ~ep:c.vuln_func in
  match r.bunches with
  | [ b ] -> (
      match b.ep_args with
      | [ (tag, true); (value, true) ] ->
          check Alcotest.int "vulnerable tag" 0x3d tag;
          check Alcotest.int "value byte" 0x41 value
      | _ -> Alcotest.fail "both args should be tainted")
  | _ -> Alcotest.fail "expected one bunch"

let no_ep_entry_no_bunches () =
  let p =
    assemble ~name:"noep" ~entry:"main"
      [ fn "main" ~params:0 [ I Halt ]; fn "sink" ~params:0 [ I (Ret (Imm 0)) ] ]
  in
  let r = Taint.extract p ~poc:"x" ~ep:"sink" in
  check Alcotest.int "no entries" 0 r.ep_entries;
  check Alcotest.int "no bunches" 0 (List.length r.bunches)

let taint_peak_positive () =
  let c = Registry.find 1 in
  let r = Taint.extract c.s ~poc:c.poc ~ep:c.vuln_func in
  check Alcotest.bool "objects were tracked" true (r.tainted_peak > 0);
  check Alcotest.bool "primitives counted" true (r.marked_offsets > 0)

let suite =
  [
    tc "taint flows through register copies" extracts_through_copies;
    tc "crash recorded with extraction" crash_recorded;
    tc "overwrite clears taint" overwrite_clears_taint;
    tc "jpegc: bunch offsets, anchor, args" jpegc_bunch;
    tc "avconv: per-entry bunches" multi_entry_bunches;
    tc "plain mode merges bunches" plain_mode_merges;
    tc "hang crash still yields bunches" hang_crash_still_extracts;
    tc "tiffsplit: both args tainted" tif_args_tainted;
    tc "ep never entered yields nothing" no_ep_entry_no_bunches;
    tc "stats populated" taint_peak_positive;
  ]
