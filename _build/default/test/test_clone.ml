(* Tests for VUDDY-style clone detection. *)

open Octo_vm.Isa
open Octo_vm.Asm
module Clone = Octo_clone.Clone
module Registry = Octo_targets.Registry
module Shared = Octo_targets.Shared

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let body_a = [ I (Mov (1, Imm 1)); I (Bin (Add, 1, Reg 1, Imm 2)); I (Ret (Reg 1)) ]
let body_b = [ I (Mov (1, Imm 1)); I (Bin (Add, 1, Reg 1, Imm 3)); I (Ret (Reg 1)) ]

let p1 =
  assemble ~name:"p1" ~entry:"main"
    [ fn "main" ~params:0 [ I Halt ]; fn "helper" ~params:0 body_a ]

let p2 =
  assemble ~name:"p2" ~entry:"main"
    [ fn "main" ~params:0 [ I (Sys (Exit (Imm 0))) ]; fn "helper" ~params:0 body_a ]

let p3 =
  assemble ~name:"p3" ~entry:"main"
    [ fn "main" ~params:0 [ I Halt ]; fn "helper" ~params:0 body_b ]

let p_renamed =
  assemble ~name:"p4" ~entry:"main"
    [ fn "main" ~params:0 [ I Halt ]; fn "assist" ~params:0 body_a ]

let fingerprint_equal_for_identical () =
  let fa = Clone.fingerprint (func_exn p1 "helper") in
  let fb = Clone.fingerprint (func_exn p2 "helper") in
  check Alcotest.string "identical bodies" fa fb

let fingerprint_differs_for_changed () =
  let fa = Clone.fingerprint (func_exn p1 "helper") in
  let fb = Clone.fingerprint (func_exn p3 "helper") in
  check Alcotest.bool "immediate change detected" true (fa <> fb)

let fingerprint_sensitive_to_params () =
  let f = func_exn p1 "helper" in
  let g = { f with nparams = 2 } in
  check Alcotest.bool "arity matters" true (Clone.fingerprint f <> Clone.fingerprint g)

let shared_same_name () =
  let pairs = Clone.shared_functions p1 p2 in
  check Alcotest.bool "helper found" true
    (List.exists (fun (p : Clone.clone_pair) -> p.t_func = "helper" && not p.renamed) pairs)

let shared_excludes_changed () =
  let pairs = Clone.shared_functions p1 p3 in
  check Alcotest.bool "changed helper not a clone" false
    (List.exists (fun (p : Clone.clone_pair) -> p.s_func = "helper") pairs)

let shared_detects_renamed () =
  let pairs = Clone.shared_functions p1 p_renamed in
  match List.find_opt (fun (p : Clone.clone_pair) -> p.s_func = "helper") pairs with
  | Some p ->
      check Alcotest.string "renamed target" "assist" p.t_func;
      check Alcotest.bool "flagged" true p.renamed
  | None -> Alcotest.fail "renamed clone missed"

let abstract_calls_level () =
  (* Same shape, different callee name: only the abstract level matches. *)
  let mk callee =
    assemble ~name:"w" ~entry:"main"
      [
        fn "main" ~params:0 [ I (Call (callee, [], None)); I Halt ];
        fn "x" ~params:0 [ I (Ret (Imm 0)) ];
        fn "y" ~params:0 [ I (Ret (Imm 0)) ];
      ]
  in
  let a = func_exn (mk "x") "main" and b = func_exn (mk "y") "main" in
  check Alcotest.bool "exact differs" true (Clone.fingerprint a <> Clone.fingerprint b);
  check Alcotest.string "abstract matches"
    (Clone.fingerprint ~level:Clone.Abstract_calls a)
    (Clone.fingerprint ~level:Clone.Abstract_calls b)

let vulnerable_clone_present () =
  let c = Registry.find 1 in
  check Alcotest.bool "present" true
    (Clone.is_vulnerable_clone_present c.s c.t ~vuln_func:c.vuln_func);
  check Alcotest.bool "absent for unknown" false
    (Clone.is_vulnerable_clone_present c.s c.t ~vuln_func:"does_not_exist")

let all_pairs_share_vuln_func () =
  List.iter
    (fun (c : Registry.case) ->
      let ell = Clone.ell_names (Clone.shared_functions c.s c.t) in
      check Alcotest.bool
        (Printf.sprintf "pair %d shares %s" c.idx c.vuln_func)
        true (List.mem c.vuln_func ell))
    Registry.all

let shared_decoders_distinct () =
  (* The shared decoder family must not collide pairwise, or clone
     detection would conflate different vulnerabilities. *)
  let fps =
    List.map
      (fun (f : src_func) ->
        let p = assemble ~name:"tmp" ~entry:f.name [ f ] in
        Clone.fingerprint (func_exn p f.name))
      Shared.all
  in
  check Alcotest.int "all distinct" (List.length fps)
    (List.length (List.sort_uniq compare fps))

let suite =
  [
    tc "fingerprint: identical bodies match" fingerprint_equal_for_identical;
    tc "fingerprint: changed immediate differs" fingerprint_differs_for_changed;
    tc "fingerprint: arity sensitive" fingerprint_sensitive_to_params;
    tc "shared: same-name clone" shared_same_name;
    tc "shared: changed body excluded" shared_excludes_changed;
    tc "shared: renamed clone detected" shared_detects_renamed;
    tc "abstract-calls level" abstract_calls_level;
    tc "vulnerable clone query" vulnerable_clone_present;
    tc "all 15 pairs share the vulnerable function" all_pairs_share_vuln_func;
    tc "shared decoders pairwise distinct" shared_decoders_distinct;
  ]
