test/test_vm.ml: Alcotest Array Asm Char Hashtbl Interp List Mem Octo_vm QCheck QCheck_alcotest Vfile
