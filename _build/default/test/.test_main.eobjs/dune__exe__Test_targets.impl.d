test/test_targets.ml: Alcotest Char Interp List Mem Octo_targets Octo_util Octo_vm Printf String
