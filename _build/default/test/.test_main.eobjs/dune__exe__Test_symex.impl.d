test/test_symex.ml: Alcotest Array Char List Octo_cfg Octo_solver Octo_symex Octo_targets Octo_vm String
