test/test_cfg.ml: Alcotest Hashtbl List Octo_cfg Octo_vm
