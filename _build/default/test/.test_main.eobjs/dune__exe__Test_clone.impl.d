test/test_clone.ml: Alcotest List Octo_clone Octo_targets Octo_vm Printf
