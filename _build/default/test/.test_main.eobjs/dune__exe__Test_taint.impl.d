test/test_taint.ml: Alcotest List Octo_taint Octo_targets Octo_vm
