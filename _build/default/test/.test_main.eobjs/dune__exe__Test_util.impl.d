test/test_util.ml: Alcotest Array Bytes_util Gen List Octo_util QCheck QCheck_alcotest Rng String
