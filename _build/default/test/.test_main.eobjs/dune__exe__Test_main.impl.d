test/test_main.ml: Alcotest Test_cfg Test_clone Test_extensions Test_formats Test_fuzz Test_pipeline Test_solver Test_symex Test_taint Test_targets Test_util Test_vm
