test/test_pipeline.ml: Alcotest Interp List Mem Octo_taint Octo_targets Octo_vm Octopocs Printf String
