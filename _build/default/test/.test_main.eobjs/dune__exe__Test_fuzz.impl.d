test/test_fuzz.ml: Alcotest Char Gen List Octo_fuzz Octo_targets Octo_util Octo_vm QCheck QCheck_alcotest Seq String
