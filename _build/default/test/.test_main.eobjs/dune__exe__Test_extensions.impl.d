test/test_extensions.ml: Alcotest Gen Interp List Octo_cfg Octo_formats Octo_solver Octo_symex Octo_targets Octo_vm Octopocs Printf QCheck QCheck_alcotest
