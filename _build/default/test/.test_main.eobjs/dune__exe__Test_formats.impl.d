test/test_formats.ml: Alcotest Char List Octo_formats Octo_targets Octo_util Octo_vm Pairs_avi Pairs_gif Pairs_mjpg Pairs_mpdf Pairs_tif String
