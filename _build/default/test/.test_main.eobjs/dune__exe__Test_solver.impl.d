test/test_solver.ml: Alcotest Fmt Gen List Octo_solver Octo_vm QCheck QCheck_alcotest
