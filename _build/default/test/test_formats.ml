(* Byte-level layout tests for the synthetic file formats. *)

module F = Octo_formats.Formats
module B = Octo_util.Bytes_util

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let bytes_of = B.to_int_list

let mjpg_segment () =
  check (Alcotest.list Alcotest.int) "marker,len,payload" [ 0xDA; 2; 0x41; 0x42 ]
    (bytes_of (F.Mjpg.segment ~marker:F.Mjpg.m_scan "AB"))

let mjpg_file () =
  let f = F.Mjpg.file [ F.Mjpg.segment ~marker:F.Mjpg.m_app "x" ] in
  check Alcotest.string "magic prefix" "MJ" (String.sub f 0 2);
  check Alcotest.int "end marker" F.Mjpg.m_end (Char.code f.[String.length f - 2])

let mjpg_frame_header () =
  check (Alcotest.list Alcotest.int) "w/h little endian"
    [ 0xC0; 4; 0x34; 0x12; 0x78; 0x56 ]
    (bytes_of (F.Mjpg.frame_header ~w:0x1234 ~h:0x5678))

let mpdf_obj () =
  check (Alcotest.list Alcotest.int) "type,len,payload"
    [ Char.code 'F'; 1; 0x41 ]
    (bytes_of (F.Mpdf.obj ~typ:F.Mpdf.o_font "A"))

let mpdf_file () =
  let f = F.Mpdf.file [] in
  check Alcotest.string "magic" "%MPD" (String.sub f 0 4);
  check Alcotest.int "terminated by E" (Char.code 'E') (Char.code f.[4])

let mj2k_tile_part () =
  check (Alcotest.list Alcotest.int) "tile header with SOT markers"
    [ 0x54; 0x93; 0x5A; 2; 1; 2 ]
    (bytes_of (F.Mj2k.tile_part (B.of_int_list [ 1; 2 ])))

let mj2k_raw_vs_embedded_magic () =
  let raw = F.Mj2k.raw_file [] and emb = F.Mj2k.file [] in
  check Alcotest.string "raw magic" "OJ2K" (String.sub raw 0 4);
  check Alcotest.string "embedded magic" "J2" (String.sub emb 0 2);
  check Alcotest.bool "raw is not a suffix-trim of embedded" true
    (String.length raw <> String.length emb || raw <> emb)

let mgif_image_block () =
  check (Alcotest.list Alcotest.int) "descriptor flags then len"
    [ F.Mgif.b_image; F.Mgif.image_flag; F.Mgif.image_flag2; 1; 0x11 ]
    (bytes_of (F.Mgif.image_block (B.of_int_list [ 0x11 ])))

let mgif_file_version () =
  let f = F.Mgif.file ~version:"87a" [] in
  check Alcotest.string "magic+version" "MG87a" (String.sub f 0 5);
  check Alcotest.int "trailer" F.Mgif.b_trailer (Char.code f.[5])

let mtif_layout () =
  let f = F.Mtif.file [ F.Mtif.entry ~tag:0x3d ~value:0x41 ] in
  check (Alcotest.list Alcotest.int) "II,count,tag,value"
    [ Char.code 'I'; Char.code 'I'; 1; 0x3d; 0x41 ]
    (bytes_of f)

let mavi_layout () =
  let f = F.Mavi.file [ F.Mavi.frame "ab" ] in
  check (Alcotest.list Alcotest.int) "AV,frame,end"
    [ Char.code 'A'; Char.code 'V'; 0x46; 2; 97; 98; 0 ]
    (bytes_of f)

let mbmp_layout () =
  let f = F.Mbmp.file ~w:2 ~h:3 "abcdef" in
  check Alcotest.string "magic" "BM" (String.sub f 0 2);
  check Alcotest.int "w" 2 (Char.code f.[2]);
  check Alcotest.int "h" 3 (Char.code f.[3])

let valid_samples_accepted () =
  (* Every format's valid sample must be accepted (exit 0) by a program of
     that format family. *)
  let open Octo_targets in
  let cases =
    [
      (Pairs_mjpg.jpegc, F.Mjpg.valid_sample ());
      (Pairs_mpdf.pdfalto, F.Mpdf.file [ F.Mpdf.obj ~typ:F.Mpdf.o_font "abc" ]);
      (Pairs_gif.gif2png, F.Mgif.valid_sample ());
      (Pairs_avi.avconv, F.Mavi.valid_sample ());
      (Pairs_tif.tiffsplit, F.Mtif.valid_sample ());
      (Pairs_tif.libsdl2_img, F.Mbmp.valid_sample ());
    ]
  in
  List.iter
    (fun (p, input) ->
      match (Octo_vm.Interp.run p ~input).outcome with
      | Octo_vm.Interp.Exited 0 -> ()
      | o ->
          Alcotest.failf "%s rejected its valid sample: %a" p.Octo_vm.Isa.pname
            Octo_vm.Interp.pp_outcome o)
    cases

let len_byte_masks () =
  (* Payloads longer than 255 have their length byte truncated, not an
     exception. *)
  let seg = F.Mjpg.segment ~marker:0xE0 (B.repeat 300 0x00) in
  check Alcotest.int "masked length" (300 land 0xff) (Char.code seg.[1])

let suite =
  [
    tc "mjpg: segment layout" mjpg_segment;
    tc "mjpg: file framing" mjpg_file;
    tc "mjpg: frame header dims" mjpg_frame_header;
    tc "mpdf: object layout" mpdf_obj;
    tc "mpdf: file framing" mpdf_file;
    tc "mj2k: tile-part SOT markers" mj2k_tile_part;
    tc "mj2k: raw vs embedded magic" mj2k_raw_vs_embedded_magic;
    tc "mgif: image descriptor layout" mgif_image_block;
    tc "mgif: version framing" mgif_file_version;
    tc "mtif: directory layout" mtif_layout;
    tc "mavi: frame layout" mavi_layout;
    tc "mbmp: header layout" mbmp_layout;
    tc "valid samples accepted by parsers" valid_samples_accepted;
    tc "length bytes masked" len_byte_masks;
  ]
