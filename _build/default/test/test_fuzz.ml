(* Tests for the fuzzing baselines: coverage map, mutators, AFLFast and
   AFLGo campaign behaviour. *)

open Octo_vm.Isa
open Octo_vm.Asm
module Coverage = Octo_fuzz.Coverage
module Mutate = Octo_fuzz.Mutate
module Aflfast = Octo_fuzz.Aflfast
module Aflgo = Octo_fuzz.Aflgo
module Rng = Octo_util.Rng
module Registry = Octo_targets.Registry

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

(* A tiny crashing target: input byte 0 = 0xCC crashes inside "boom". *)
let toy =
  assemble ~name:"toy" ~entry:"main"
    [
      fn "main" ~params:0
        [
          I (Sys (Open 1));
          I (Sys (Alloc (2, Imm 4)));
          I (Sys (Read (3, Reg 1, Reg 2, Imm 1)));
          I (Load8 (4, Reg 2, Imm 0));
          I (Jif (Eq, Reg 4, Imm 0xCC, "boom"));
          I (Sys (Exit (Imm 0)));
          L "boom";
          I (Call ("boom", [], None));
          I Halt;
        ];
      fn "boom" ~params:0 [ I (Store8 (Imm 4, Imm 0, Imm 1)) ];
    ]

(* ------------------------------------------------------------------ *)
(* Coverage *)

let coverage_detects_new_paths () =
  let cov = Coverage.create () in
  let a = Coverage.run cov toy ~input:"\x00" in
  check Alcotest.bool "first run is new" true (a.new_buckets > 0);
  let b = Coverage.run cov toy ~input:"\x01" in
  check Alcotest.int "same path adds nothing" 0 b.new_buckets;
  let c = Coverage.run cov toy ~input:"\xCC" in
  check Alcotest.bool "crash path is new" true (c.new_buckets > 0)

let coverage_path_hash_distinguishes () =
  let cov = Coverage.create () in
  let a = Coverage.run cov toy ~input:"\x00" in
  let b = Coverage.run cov toy ~input:"\xCC" in
  check Alcotest.bool "different paths, different hashes" true (a.path_hash <> b.path_hash);
  let c = Coverage.run cov toy ~input:"\x01" in
  check Alcotest.int "same path, same hash" a.path_hash c.path_hash

let coverage_counts () =
  let cov = Coverage.create () in
  ignore (Coverage.run cov toy ~input:"\x00");
  check Alcotest.bool "covered positive" true (Coverage.covered cov > 0)

(* ------------------------------------------------------------------ *)
(* Mutators *)

let havoc_nonempty_output () =
  let rng = Rng.create 1 in
  for _ = 1 to 200 do
    let m = Mutate.havoc rng "seed-input" in
    check Alcotest.bool "bounded growth" true (String.length m <= String.length "seed-input" + 6 * 33)
  done

let havoc_empty_input_ok () =
  let rng = Rng.create 2 in
  for _ = 1 to 50 do
    ignore (Mutate.havoc rng "")
  done

let splice_mixes () =
  let rng = Rng.create 3 in
  let m = Mutate.splice rng "AAAA" "BBBB" in
  check Alcotest.bool "produces something" true (String.length m >= 0)

let deterministic_covers_interesting () =
  let muts = List.of_seq (Mutate.deterministic "\x00") in
  check Alcotest.bool "contains 0xFF variant" true (List.mem "\xFF" muts);
  check Alcotest.bool "contains 17 variant" true (List.mem "\x11" muts)

let deterministic_count_linear () =
  let n1 = Seq.length (Mutate.deterministic "a") in
  let n3 = Seq.length (Mutate.deterministic "abc") in
  check Alcotest.int "per-byte count" (3 * n1) n3

(* ------------------------------------------------------------------ *)
(* Campaigns *)

let aflfast_finds_toy_crash () =
  let r =
    Aflfast.run
      ~config:{ Aflfast.default_config with max_execs = 30_000 }
      toy ~seeds:[ "\x00" ] ~crash_in:[ "boom" ]
  in
  (match r.crash_input with
  | Some input -> check Alcotest.int "trigger byte" 0xCC (Char.code input.[0])
  | None -> Alcotest.fail "AFLFast should find a one-byte crash");
  check Alcotest.bool "coverage grew" true (r.coverage > 0)

let aflfast_budget_respected () =
  let r =
    Aflfast.run
      ~config:{ Aflfast.default_config with max_execs = 500; deterministic_limit = 0 }
      toy ~seeds:[ "\x00" ] ~crash_in:[ "no_such_func" ]
  in
  check Alcotest.bool "stopped at budget" true (r.execs <= 501)

let aflfast_deterministic_rng () =
  let run () =
    Aflfast.run
      ~config:{ Aflfast.default_config with max_execs = 2_000 }
      toy ~seeds:[ "\x00" ] ~crash_in:[ "boom" ]
  in
  let a = run () and b = run () in
  check Alcotest.int "same exec count" a.execs b.execs;
  check (Alcotest.option Alcotest.string) "same crash input" a.crash_input b.crash_input

let aflgo_finds_toy_crash () =
  let r =
    Aflgo.run
      ~config:{ Aflgo.default_config with max_execs = 30_000 }
      toy ~target:"boom" ~seeds:[ "\x00" ] ~crash_in:[ "boom" ]
  in
  match r.crash_input with
  | Some _ -> ()
  | None -> Alcotest.fail "AFLGo should find a one-byte crash"

let aflgo_errors_on_icall () =
  let c = Registry.find 8 in
  (* mupdf contains an indirect call: the instrumentation pass bails. *)
  match
    Aflgo.run c.t ~target:c.vuln_func ~seeds:[ "" ] ~crash_in:[ c.vuln_func ]
  with
  | exception Aflgo.Aflgo_error _ -> ()
  | _ -> Alcotest.fail "expected Aflgo_error on mupdf"

let aflgo_tracks_distance () =
  let r =
    Aflgo.run
      ~config:{ Aflgo.default_config with max_execs = 2_000 }
      toy ~target:"boom" ~seeds:[ "\x00" ] ~crash_in:[ "boom" ]
  in
  check Alcotest.bool "finite best distance" true (r.best_distance < infinity)

let fuzzers_verify_vs_unrelated_crash () =
  (* crash_in filters: a crash outside the requested functions is not a
     verification. *)
  let r =
    Aflfast.run
      ~config:{ Aflfast.default_config with max_execs = 5_000 }
      toy ~seeds:[ "\x00" ] ~crash_in:[ "unrelated" ]
  in
  check (Alcotest.option Alcotest.string) "not counted" None r.crash_input

let qcheck_tests =
  [
    QCheck.Test.make ~name:"havoc output length bounded" ~count:200
      QCheck.(pair small_int (string_of_size Gen.(0 -- 40)))
      (fun (seed, s) ->
        let rng = Rng.create seed in
        let m = Mutate.havoc rng s in
        String.length m <= String.length s + 6 * 33);
    QCheck.Test.make ~name:"deterministic variants differ from base in one byte" ~count:50
      QCheck.(string_of_size Gen.(1 -- 10))
      (fun s ->
        Seq.for_all
          (fun m ->
            String.length m = String.length s
            && List.length (Octo_util.Bytes_util.diff_offsets s m) <= 1)
          (Mutate.deterministic s));
  ]

let suite =
  [
    tc "coverage: new path detection" coverage_detects_new_paths;
    tc "coverage: path hashes" coverage_path_hash_distinguishes;
    tc "coverage: covered count" coverage_counts;
    tc "mutate: havoc growth bounded" havoc_nonempty_output;
    tc "mutate: havoc on empty input" havoc_empty_input_ok;
    tc "mutate: splice" splice_mixes;
    tc "mutate: deterministic covers interesting values" deterministic_covers_interesting;
    tc "mutate: deterministic linear in length" deterministic_count_linear;
    tc "aflfast: finds shallow crash" aflfast_finds_toy_crash;
    tc "aflfast: budget respected" aflfast_budget_respected;
    tc "aflfast: deterministic campaigns" aflfast_deterministic_rng;
    tc "aflgo: finds shallow crash" aflgo_finds_toy_crash;
    tc "aflgo: errors on indirect calls" aflgo_errors_on_icall;
    tc "aflgo: tracks distance" aflgo_tracks_distance;
    tc "crash_in filters unrelated crashes" fuzzers_verify_vs_unrelated_crash;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests
