(* Tests for CFG recovery, the interprocedural distance map, and the
   dynamic-CFG refinement. *)

open Octo_vm.Isa
open Octo_vm.Asm
module Cfg = Octo_cfg.Cfg
module Dyncfg = Octo_cfg.Dyncfg

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

(* A three-function program: main -> middle -> target, with a branch in
   main that can skip the call. *)
let chain =
  assemble ~name:"chain" ~entry:"main"
    [
      fn "main" ~params:0
        [
          I (Mov (1, Imm 1));
          I (Jif (Eq, Reg 1, Imm 0, "skip"));
          I (Call ("middle", [], None));
          L "skip";
          I Halt;
        ];
      fn "middle" ~params:0 [ I (Call ("target", [], None)); I (Ret (Imm 0)) ];
      fn "target" ~params:0 [ I (Ret (Imm 0)) ];
    ]

let successors_shapes () =
  let f = func_exn chain "main" in
  check Alcotest.(list int) "jif both" [ 3; 2 ] (Cfg.successors f 1);
  check Alcotest.(list int) "call falls through" [ 3 ] (Cfg.successors f 2);
  check Alcotest.(list int) "halt ends" [] (Cfg.successors f 3)

let callees_listed () =
  let cs = Cfg.callees chain (func_exn chain "main") in
  check Alcotest.(list (pair int string)) "call sites" [ (2, "middle") ] cs

let distance_decreases_toward_ep () =
  let t = Cfg.build chain ~ep:"target" in
  let d_entry = Cfg.distance t "main" 0 in
  let d_call = Cfg.distance t "main" 2 in
  let d_mid = Cfg.distance t "middle" 0 in
  check Alcotest.bool "entry finite" true (d_entry < Cfg.infinity);
  check Alcotest.bool "monotone along path" true (d_entry >= d_call && d_call > d_mid);
  check Alcotest.int "inside ep" 0 (Cfg.distance t "target" 0)

let distance_infinite_off_path () =
  let t = Cfg.build chain ~ep:"target" in
  (* pc 3 is Halt: target unreachable from there. *)
  check Alcotest.int "dead pc" Cfg.infinity (Cfg.distance t "main" 3)

let ep_reachable_works () =
  let t = Cfg.build chain ~ep:"target" in
  check Alcotest.bool "reachable" true (Cfg.ep_reachable t)

let ep_missing_raises () =
  Alcotest.check_raises "missing ep"
    (Cfg.Cfg_error "entry-point function \"nope\" not present in chain") (fun () ->
      ignore (Cfg.build chain ~ep:"nope"))

let dead_clone =
  assemble ~name:"dead" ~entry:"main"
    [
      fn "main" ~params:0 [ I Halt ];
      fn "orphan" ~params:0 [ I (Ret (Imm 0)) ];
    ]

let dead_code_unreachable () =
  let t = Cfg.build dead_clone ~ep:"orphan" in
  check Alcotest.bool "not reachable" false (Cfg.ep_reachable t);
  check Alcotest.bool "never called" false (Cfg.ep_called_somewhere dead_clone ~ep:"orphan")

let ep_called_somewhere_positive () =
  check Alcotest.bool "called" true (Cfg.ep_called_somewhere chain ~ep:"target")

let icall_imm =
  assemble ~name:"ii" ~entry:"main"
    [
      fn "main" ~params:0 [ I (Icall (Imm 1, [], None)); I Halt ];
      fn "h" ~params:0 [ I (Ret (Imm 0)) ];
    ]

let icall_reg =
  assemble ~name:"ir" ~entry:"main"
    [
      fn "main" ~params:0 [ I (Mov (1, Imm 1)); I (Icall (Reg 1, [], None)); I Halt ];
      fn "h" ~params:0 [ I (Ret (Imm 0)) ];
    ]

let icall_imm_resolves () =
  let t = Cfg.build icall_imm ~ep:"h" in
  check Alcotest.bool "reachable through table" true (Cfg.ep_reachable t)

let icall_reg_raises () =
  match Cfg.build icall_reg ~ep:"h" with
  | exception Cfg.Cfg_error _ -> ()
  | _ -> Alcotest.fail "expected Cfg_error"

let icall_reg_allowed_when_permitted () =
  let t = Cfg.build ~allow_unresolved:true icall_reg ~ep:"h" in
  check Alcotest.bool "h not statically reachable" false (Cfg.ep_reachable t)

let reachable_funcs_set () =
  let r = Cfg.reachable_funcs chain in
  check Alcotest.bool "all three" true
    (Hashtbl.mem r "main" && Hashtbl.mem r "middle" && Hashtbl.mem r "target");
  let r2 = Cfg.reachable_funcs dead_clone in
  check Alcotest.bool "orphan excluded" false (Hashtbl.mem r2 "orphan")

let loop_distance_finite () =
  (* A loop before the call must still yield finite distances inside the
     loop body. *)
  let p =
    assemble ~name:"loop" ~entry:"main"
      [
        fn "main" ~params:0
          [
            I (Mov (1, Imm 0));
            L "l";
            I (Jif (Ge, Reg 1, Imm 3, "out"));
            I (Bin (Add, 1, Reg 1, Imm 1));
            I (Jmp "l");
            L "out";
            I (Call ("t", [], None));
            I Halt;
          ];
        fn "t" ~params:0 [ I (Ret (Imm 0)) ];
      ]
  in
  let t = Cfg.build p ~ep:"t" in
  check Alcotest.bool "loop body finite" true (Cfg.distance t "main" 2 < Cfg.infinity)

(* Dynamic CFG *)

let dyn_observe_calls () =
  let o = Dyncfg.observe chain ~seeds:[ "" ] in
  check Alcotest.bool "saw main->middle" true (Dyncfg.saw_call o ~caller:"main" ~callee:"middle");
  check Alcotest.bool "saw middle->target" true
    (Dyncfg.saw_call o ~caller:"middle" ~callee:"target");
  check Alcotest.bool "covered entry" true (Dyncfg.covered o "main" 0)

let dyn_resolves_icall_targets () =
  let o = Dyncfg.observe icall_reg ~seeds:[ "" ] in
  check Alcotest.bool "dynamic edge through icall" true
    (Dyncfg.saw_call o ~caller:"main" ~callee:"h")

let dyn_call_edges_list () =
  let o = Dyncfg.observe chain ~seeds:[ "" ] in
  check Alcotest.int "two edges" 2 (List.length (Dyncfg.call_edges o))

let suite =
  [
    tc "successors: instruction shapes" successors_shapes;
    tc "callees: direct call sites" callees_listed;
    tc "distance: decreases toward ep" distance_decreases_toward_ep;
    tc "distance: infinite off path" distance_infinite_off_path;
    tc "ep: reachable" ep_reachable_works;
    tc "ep: missing function raises" ep_missing_raises;
    tc "ep: dead clone unreachable" dead_code_unreachable;
    tc "ep: called somewhere" ep_called_somewhere_positive;
    tc "icall: immediate resolves" icall_imm_resolves;
    tc "icall: register raises Cfg_error" icall_reg_raises;
    tc "icall: allow_unresolved skips" icall_reg_allowed_when_permitted;
    tc "reachable functions" reachable_funcs_set;
    tc "distance: finite through loop" loop_distance_finite;
    tc "dyncfg: observes call edges" dyn_observe_calls;
    tc "dyncfg: resolves icall dynamically" dyn_resolves_icall_targets;
    tc "dyncfg: edge list" dyn_call_edges_list;
  ]
