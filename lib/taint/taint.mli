(** Crash-primitive extraction by dynamic taint analysis (paper §III-A,
    phase P1; engine design §IV-A).

    Runs S concretely on the PoC under byte-granular taint tracking driven
    by the interpreter's instrumentation hooks (the PIN analogue), and
    groups the input bytes used inside the shared code ℓ into per-entry
    {e bunches}. *)

open Octo_vm

(** Extraction mode. *)
type mode =
  | Plain
      (** context-free baseline (Table III): all primitives merged into a
          single bunch "located at once" at the first indicator *)
  | Context_aware
      (** the paper's contribution: one bunch per [ep] entry, each carrying
          its own anchor and argument record *)

(** Taint granularity.  [Byte_level] is the paper's §IV-A choice;
    [Word_level] is the ablation baseline that taints whole aligned 4-byte
    file blocks and therefore over-approximates. *)
type granularity =
  | Byte_level
  | Word_level

(** One crash-primitive group: the PoC bytes consumed inside ℓ during one
    dynamic entry of [ep]. *)
type bunch = {
  seq : int;  (** 1-based index of the [ep] entry this bunch belongs to *)
  prims : (int * int) list;
      (** crash primitives: (file offset in the original poc, byte value),
          sorted by offset *)
  ep_args : (int * bool) list;
      (** concrete arguments of this [ep] invocation, each flagged with
          whether it was tainted by the input file; only tainted arguments
          are replayed as constraints in T *)
  anchor : int;
      (** file position indicator at entry; bunch bytes live at
          [offset - anchor] relative to the indicator in the reformed PoC *)
  merged : bool;
      (** true for the {!Plain} baseline's single merged bunch *)
  sites : string list;
      (** functions (inside this [ep] entry's dynamic extent) whose
          tainted accesses consumed the primitives, sorted — the ℓ
          access-site evidence reported by the provenance layer *)
}

type result = {
  bunches : bunch list;        (** in entry order *)
  ep_entries : int;            (** how many times execution entered [ep] *)
  crash : Interp.crash option; (** the crash that ended the run, if any *)
  tainted_peak : int;          (** peak number of simultaneously tainted objects *)
  marked_offsets : int;        (** distinct poc offsets marked as primitives *)
}

(** [extract ?mode ?granularity program ~poc ~ep] runs [program] on [poc]
    under the taint engine and returns the crash primitives.  The run
    normally ends in the crash [poc] provokes; a clean exit yields
    [crash = None]. *)
val extract :
  ?mode:mode ->
  ?granularity:granularity ->
  ?compiled:Octo_vm.Compile.compiled ->
  Isa.program ->
  poc:string ->
  ep:string ->
  result

val pp_bunch : Format.formatter -> bunch -> unit
