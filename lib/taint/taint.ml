(** Crash-primitive extraction by dynamic taint analysis (paper §III-A, P1).

    This is the OCaml analogue of the paper's PIN-based taint engine
    (§IV-A): byte-granular, covering both registers and memory, driven by the
    interpreter's per-instruction access events (Algorithm 1).

    Two modes are provided:

    - {!Context_aware} (the paper's contribution): every entry of [ep] opens
      a fresh {e bunch}; file bytes whose taint reaches an access performed
      inside the dynamic extent of [ep] are recorded in the current bunch,
      together with the concrete arguments of that [ep] invocation and the
      file position indicator at entry (the anchor used by the combining
      phase P3).

    - {!Plain} (the Table III baseline): same marking rule, but all
      primitives are merged into a single bunch anchored at the first [ep]
      entry — reproducing the failure mode the ablation demonstrates. *)

open Octo_vm

module Offsets = Set.Make (Int)

type mode =
  | Plain
  | Context_aware

(** Taint granularity (paper §IV-A: "software S processes poc at the byte
    character-level.  Therefore, we also handle the tainting at the byte
    character-level").  [Word_level] is the ablation baseline: every input
    byte is tainted with its whole aligned 4-byte file block, so crash
    primitives over-approximate and drag neighbouring guiding bytes of S
    into poc', which conflicts with T's own guiding constraints whenever
    the two headers differ. *)
type granularity =
  | Byte_level
  | Word_level

type bunch = {
  seq : int;  (** 1-based index of the [ep] entry this bunch belongs to *)
  prims : (int * int) list;
      (** crash primitives: (file offset in the original poc, byte value),
          sorted by offset *)
  ep_args : (int * bool) list;
      (** concrete arguments of this [ep] invocation, each flagged with
          whether it was tainted by the input file.  Only tainted arguments
          are replayed as constraints in T (untainted ones — fds, pointers,
          loop counters — legitimately differ between S and T). *)
  anchor : int;
      (** file position indicator of the input fd when [ep] was entered;
          bunch bytes live at [offset - anchor] relative to the indicator *)
  merged : bool;
      (** true for the {!Plain} baseline: this bunch is the union of every
          entry's primitives and will be located in poc' "at once" —
          contiguously from the first indicator — which is precisely why the
          context-free baseline fails on multi-entry vulnerabilities
          (Table III) *)
  sites : string list;
      (** functions (inside the dynamic extent of this [ep] entry) whose
          tainted memory accesses consumed the primitives — the ℓ
          access-site evidence the provenance layer reports; sorted *)
}

type result = {
  bunches : bunch list;       (** in entry order *)
  ep_entries : int;           (** how many times execution entered [ep] *)
  crash : Interp.crash option;(** the crash that ended the run, if any *)
  tainted_peak : int;         (** peak number of simultaneously tainted objects *)
  marked_offsets : int;       (** total distinct poc offsets marked as primitives *)
}

(* Mutable extraction state threaded through the interpreter hooks. *)
module Sites = Set.Make (String)

type state = {
  taint : (Interp.obj, Offsets.t) Hashtbl.t;
  mutable bunch_offsets : Offsets.t array; (* index = ep entry - 1 *)
  mutable bunch_args : (int * bool) list array;
  mutable bunch_anchor : int array;
  mutable bunch_sites : Sites.t array;
  mutable ep_count : int;
  mutable ep_depth : int;     (* dynamic-extent counter for recursive ep *)
  mutable fstack : string list;  (* dynamic call stack (function names) *)
  mutable file_pos : int;     (* tracked file position indicator *)
  mutable peak : int;
  ep : string;
}

let grow_bunches st =
  let n = st.ep_count in
  if n > Array.length st.bunch_offsets then begin
    let copy_into blank old = Array.blit old 0 blank 0 (Array.length old); blank in
    st.bunch_offsets <- copy_into (Array.make n Offsets.empty) st.bunch_offsets;
    st.bunch_args <- copy_into (Array.make n []) st.bunch_args;
    st.bunch_anchor <- copy_into (Array.make n 0) st.bunch_anchor;
    st.bunch_sites <- copy_into (Array.make n Sites.empty) st.bunch_sites
  end

let taint_of st obj =
  match Hashtbl.find_opt st.taint obj with Some s -> s | None -> Offsets.empty

let mark st offs =
  if st.ep_count >= 1 then begin
    let i = st.ep_count - 1 in
    st.bunch_offsets.(i) <- Offsets.union st.bunch_offsets.(i) offs;
    (* Access-site evidence: the function whose instruction consumed the
       tainted bytes is the top of the dynamic call stack. *)
    match st.fstack with
    | site :: _ -> st.bunch_sites.(i) <- Sites.add site st.bunch_sites.(i)
    | [] -> ()
  end

(* The taint-propagation rule of Algorithm 1 lines 7-11, joined over all read
   objects: tainted reads propagate their offset sets to every written
   object; an untainted assignment clears the destination. *)
let on_access st (a : Interp.access) =
  let influence =
    List.fold_left (fun acc o -> Offsets.union acc (taint_of st o)) Offsets.empty a.reads
  in
  if Offsets.is_empty influence then
    List.iter (fun o -> Hashtbl.remove st.taint o) a.writes
  else begin
    List.iter (fun o -> Hashtbl.replace st.taint o influence) a.writes;
    st.peak <- max st.peak (Hashtbl.length st.taint);
    (* P1.3: inside the dynamic extent of ep, tainted accesses mark their
       influencing file bytes as crash primitives of the current bunch. *)
    if st.ep_depth > 0 then mark st influence
  end

(** [extract ?mode program ~poc ~ep] runs [program] on [poc] under the taint
    engine and returns the crash primitives.  The run normally ends in the
    crash that [poc] provokes; a clean exit yields [crash = None] (callers
    treat that as "this poc does not witness the vulnerability").

    [compiled] lets the pipeline reuse an already-looked-up compilation of
    [prog] ({!Octo_vm.Compile.get}), skipping the content-digest cache
    lookup; it MUST be the compilation of [prog]. *)
let extract ?(mode = Context_aware) ?(granularity = Byte_level) ?compiled
    (prog : Isa.program) ~(poc : string) ~(ep : string) : result =
  let st =
    {
      taint = Hashtbl.create 1024;
      bunch_offsets = [||];
      bunch_args = [||];
      bunch_anchor = [||];
      bunch_sites = [||];
      ep_count = 0;
      ep_depth = 0;
      fstack = [ prog.Isa.entry ];
      file_pos = 0;
      peak = 0;
      ep;
    }
  in
  let hooks =
    {
      Interp.no_hooks with
      on_access = (fun a -> on_access st a);
      on_input_bytes =
        (fun ~addr ~file_off ~len ->
          let source i =
            match granularity with
            | Byte_level -> Offsets.singleton (file_off + i)
            | Word_level ->
                (* Aligned 4-byte block of the file offset, clipped to the
                   file. *)
                let base = (file_off + i) land lnot 3 in
                let rec build k acc =
                  if k >= 4 then acc
                  else
                    build (k + 1)
                      (if base + k < String.length poc then Offsets.add (base + k) acc else acc)
                in
                build 0 Offsets.empty
          in
          for i = 0 to len - 1 do
            Hashtbl.replace st.taint (Interp.OMem (addr + i)) (source i)
          done;
          st.file_pos <- file_off + len;
          st.peak <- max st.peak (Hashtbl.length st.taint));
      on_seek = (fun ~fd:_ ~pos -> st.file_pos <- pos);
      on_call =
        (fun ~fname ~frame_id ~args ->
          st.fstack <- fname :: st.fstack;
          if fname = st.ep then begin
            st.ep_count <- st.ep_count + 1;
            st.ep_depth <- st.ep_depth + 1;
            grow_bunches st;
            (* The per-argument access events have already fired, so the
               callee's parameter registers carry their taint. *)
            st.bunch_args.(st.ep_count - 1) <-
              List.mapi
                (fun i v -> (v, not (Offsets.is_empty (taint_of st (Interp.OReg (frame_id, i))))))
                args;
            st.bunch_anchor.(st.ep_count - 1) <- st.file_pos
          end);
      on_ret =
        (fun fname ->
          (match st.fstack with top :: rest when top = fname -> st.fstack <- rest | _ -> ());
          if fname = st.ep then st.ep_depth <- max 0 (st.ep_depth - 1));
    }
  in
  let run_result =
    match compiled with
    | Some c -> Octo_vm.Compile.run ~hooks c ~input:poc
    | None -> Interp.run ~hooks prog ~input:poc
  in
  let crash = match run_result.outcome with Interp.Crashed c -> Some c | Interp.Exited _ -> None in
  let value_at off = if off >= 0 && off < String.length poc then Char.code poc.[off] else 0 in
  let bunch_of_set ~merged seq offs args anchor sites =
    { seq; prims = List.map (fun o -> (o, value_at o)) (Offsets.elements offs); ep_args = args;
      anchor; merged; sites = Sites.elements sites }
  in
  let bunches =
    match mode with
    | Context_aware ->
        List.init st.ep_count (fun i ->
            bunch_of_set ~merged:false (i + 1) st.bunch_offsets.(i) st.bunch_args.(i)
              st.bunch_anchor.(i) st.bunch_sites.(i))
    | Plain ->
        (* Baseline: one merged bunch, anchored at the first entry. *)
        if st.ep_count = 0 then []
        else
          let all = Array.fold_left Offsets.union Offsets.empty st.bunch_offsets in
          let all_sites = Array.fold_left Sites.union Sites.empty st.bunch_sites in
          [ bunch_of_set ~merged:true 1 all st.bunch_args.(0) st.bunch_anchor.(0) all_sites ]
  in
  let marked =
    List.fold_left (fun acc b -> Offsets.union acc (Offsets.of_list (List.map fst b.prims)))
      Offsets.empty bunches
    |> Offsets.cardinal
  in
  {
    bunches;
    ep_entries = st.ep_count;
    crash;
    tainted_peak = st.peak;
    marked_offsets = marked;
  }

let pp_bunch ppf b =
  let pp_arg ppf (v, tainted) = Fmt.pf ppf "%d%s" v (if tainted then "*" else "") in
  Fmt.pf ppf "bunch #%d (anchor %d, args [%a]): %a" b.seq b.anchor
    Fmt.(list ~sep:(any "; ") pp_arg)
    b.ep_args
    Fmt.(list ~sep:sp (pair ~sep:(any ":") int (fmt "0x%02x")))
    b.prims
