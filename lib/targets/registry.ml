(** The evaluation dataset: the 15 S/T pairs of Table II.

    Each case carries the two assembled programs, the public PoC for S, the
    name of the known-vulnerable function (what a VUDDY user starts from),
    and the verification outcome the paper reports.  The [in_table3] flag
    marks the nine pairs of the context-aware-taint ablation; [in_table45]
    marks the three pairs used in Tables IV and V. *)

open Octo_vm.Isa

type expected =
  | Type_I    (** poc' triggers; guiding input unchanged *)
  | Type_II   (** poc' triggers; guiding input reformed *)
  | Type_III  (** verified not triggerable *)
  | Fail      (** tool failure (CFG recovery) *)

let expected_to_string = function
  | Type_I -> "Type-I"
  | Type_II -> "Type-II"
  | Type_III -> "Type-III"
  | Fail -> "Failure"

type case = {
  idx : int;
  s : program;
  s_version : string;
  t : program;
  t_version : string;
  vuln_id : string;
  cwe : string;         (** "CWE-119", "CWE-190", "CWE-835" or "No-CWE" *)
  poc : string;
  vuln_func : string;   (** the known-vulnerable shared function *)
  expected : expected;
  in_table3 : bool;
  in_table45 : bool;
}

let case ~idx ~s ~s_version ~t ~t_version ~vuln_id ~cwe ~poc ~vuln_func ~expected
    ?(in_table3 = false) ?(in_table45 = false) () =
  { idx; s; s_version; t; t_version; vuln_id; cwe; poc; vuln_func; expected; in_table3;
    in_table45 }

let all : case list =
  [
    case ~idx:1 ~s:Pairs_mjpg.jpegc ~s_version:"N/A" ~t:Pairs_mjpg.libgdx_img
      ~t_version:"1.9.10" ~vuln_id:"CVE-2017-0700" ~cwe:"No-CWE"
      ~poc:Pairs_mjpg.poc_scan_overflow ~vuln_func:"mjpg_scan" ~expected:Type_I
      ~in_table3:true ();
    case ~idx:2 ~s:Pairs_mjpg.jpegc ~s_version:"N/A" ~t:Pairs_mjpg.zxing_scan
      ~t_version:"@0a32109" ~vuln_id:"CVE-2017-0700" ~cwe:"No-CWE"
      ~poc:Pairs_mjpg.poc_scan_overflow ~vuln_func:"mjpg_scan" ~expected:Type_I
      ~in_table3:true ();
    case ~idx:3 ~s:Pairs_mpdf.poppler_pdftops ~s_version:"0.59" ~t:Pairs_mpdf.xpdf_pdftops
      ~t_version:"4.02" ~vuln_id:"CVE-2017-18267" ~cwe:"CWE-835"
      ~poc:Pairs_mpdf.poc_xref_cycle ~vuln_func:"xref_walk" ~expected:Type_I
      ~in_table3:true ();
    case ~idx:4 ~s:Pairs_avi.avconv ~s_version:"12.3" ~t:Pairs_avi.ffmpeg1 ~t_version:"1.0"
      ~vuln_id:"CVE-2018-11102" ~cwe:"CWE-119" ~poc:Pairs_avi.poc_frame_overflow
      ~vuln_func:"codec_decode" ~expected:Type_I ~in_table3:true ();
    case ~idx:5 ~s:Pairs_mjpg.tjbench_turbo ~s_version:"2.0.1" ~t:Pairs_mjpg.tjbench_moz
      ~t_version:"@0xbbb7550" ~vuln_id:"CVE-2018-20330" ~cwe:"CWE-190"
      ~poc:Pairs_mjpg.poc_dim_overflow ~vuln_func:"img_alloc_decode" ~expected:Type_I
      ~in_table3:true ();
    case ~idx:6 ~s:Pairs_mpdf.pdfalto ~s_version:"0.2" ~t:Pairs_mpdf.xpdf_pdfinfo
      ~t_version:"4.0.0" ~vuln_id:"CVE-2019-9878" ~cwe:"CWE-119"
      ~poc:Pairs_mpdf.poc_font_overflow ~vuln_func:"font_copy" ~expected:Type_I
      ~in_table3:true ();
    case ~idx:7 ~s:Pairs_j2k.ghostscript ~s_version:"9.26" ~t:Pairs_j2k.opj_dump_211
      ~t_version:"2.1.1" ~vuln_id:"ghostscript-BZ697463" ~cwe:"No-CWE"
      ~poc:Pairs_j2k.poc_pdf_wrapped ~vuln_func:"j2k_tile" ~expected:Type_II
      ~in_table3:true ~in_table45:true ();
    case ~idx:8 ~s:Pairs_j2k.opj_dump_211 ~s_version:"2.1.1" ~t:Pairs_j2k.mupdf
      ~t_version:"1.9" ~vuln_id:"ghostscript-BZ697463" ~cwe:"No-CWE"
      ~poc:Pairs_j2k.poc_raw_j2k ~vuln_func:"j2k_tile" ~expected:Type_II
      ~in_table3:true ~in_table45:true ();
    case ~idx:9 ~s:Pairs_gif.gif2png ~s_version:"2.5.8" ~t:Pairs_gif.gif2png_strict
      ~t_version:"N/A" ~vuln_id:"CVE-2011-2896" ~cwe:"CWE-119"
      ~poc:Pairs_gif.poc_gif_overflow ~vuln_func:"gif_read_image" ~expected:Type_II
      ~in_table3:true ~in_table45:true ();
    case ~idx:10 ~s:Pairs_tif.tiffsplit ~s_version:"4.0.6" ~t:Pairs_tif.opj_compress
      ~t_version:"2.3.1" ~vuln_id:"CVE-2016-10095" ~cwe:"CWE-119"
      ~poc:Pairs_tif.poc_tag_overflow ~vuln_func:"tif_get_field" ~expected:Type_III ();
    case ~idx:11 ~s:Pairs_tif.tiffsplit ~s_version:"4.0.6" ~t:Pairs_tif.libsdl2_img
      ~t_version:"2.0.12" ~vuln_id:"CVE-2016-10095" ~cwe:"CWE-119"
      ~poc:Pairs_tif.poc_tag_overflow ~vuln_func:"tif_get_field" ~expected:Type_III ();
    case ~idx:12 ~s:Pairs_tif.tiffsplit ~s_version:"4.0.6" ~t:Pairs_tif.libgdiplus
      ~t_version:"6.0.5" ~vuln_id:"CVE-2016-10095" ~cwe:"CWE-119"
      ~poc:Pairs_tif.poc_tag_overflow ~vuln_func:"tif_get_field" ~expected:Type_III ();
    case ~idx:13 ~s:Pairs_j2k.ghostscript ~s_version:"9.26" ~t:Pairs_j2k.opj_dump_220
      ~t_version:"2.2.0" ~vuln_id:"ghostscript-BZ697463" ~cwe:"No-CWE"
      ~poc:Pairs_j2k.poc_pdf_wrapped ~vuln_func:"j2k_tile" ~expected:Type_III ();
    case ~idx:14 ~s:Pairs_mpdf.pdfalto ~s_version:"0.2" ~t:Pairs_mpdf.xpdf_pdftops_411
      ~t_version:"4.1.1" ~vuln_id:"CVE-2019-9878" ~cwe:"CWE-119"
      ~poc:Pairs_mpdf.poc_font_overflow ~vuln_func:"font_copy" ~expected:Type_III ();
    case ~idx:15 ~s:Pairs_mpdf.pdf2htmlex ~s_version:"0.14.6" ~t:Pairs_mpdf.poppler_pdfinfo
      ~t_version:"0.41.0" ~vuln_id:"CVE-2018-21009" ~cwe:"CWE-190"
      ~poc:Pairs_mpdf.poc_font_overflow ~vuln_func:"font_copy" ~expected:Fail ();
  ]

(** [find_opt idx] is the case at [idx], or [None] when [idx] is negative,
    zero, or past the table — the total lookup CLI-facing code must use so
    a bad index becomes a structured error, not an exception trace. *)
let find_opt idx = List.find_opt (fun c -> c.idx = idx) all

let find idx =
  match find_opt idx with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Registry.find: no case %d" idx)

let table3_cases = List.filter (fun c -> c.in_table3) all
let table45_cases = List.filter (fun c -> c.in_table45) all
