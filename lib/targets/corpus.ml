(** Deterministic corpus generator: mass-produced (S, T, PoC) pairs.

    Each generated pair is a pure function of [(seed, index)] — splitmix64
    streams drive every structural choice — so a corpus is never stored:
    any run (or a killed-and-resumed run on another machine) regenerates
    pair [i] bit-identically from its coordinates.

    The pairs reuse the Table II building blocks: a driver [main] built
    from the {!Dsl} idioms parses one of the six mini-format families
    (avi/gif/j2k/mjpg/mpdf/tif) and feeds a genuinely shared decoder from
    {!Shared} (the same [src_func] value is linked into S and T, so clone
    detection finds ℓ with identical fingerprints).  S always reaches the
    decoder's memory fault on the PoC; T is a seeded structural variant:

    - {b clone}: cosmetic clone edits only — the PoC still triggers
      (Type-I, the propagated-verbatim case).
    - {b guard}: T validates a format flag byte that S reads and ignores;
      the PoC carries the wrong byte, so the reformed poc' must flip it
      (Type-II, the paper's gif2png shape).
    - {b conflict}: T guards the decoder behind a check that contradicts
      the replayed crash primitives — a patched bound (len <= 8 vs the
      >= 17-byte overflow) or a rejected vulnerable tag — so P3 hits a
      constraint conflict (Type-III, the opj_compress shape).
    - {b deadep}: T links the decoder but never calls it
      (Type-III/[Ep_not_called], the libsdl2_img shape). *)

open Octo_vm.Isa
open Octo_vm.Asm
open Dsl
module F = Octo_formats.Formats
module Rng = Octo_util.Rng

type family = Gif | Mjpg | Mpdf | J2k | Avi | Tif
type variant = Clone | Guard | Conflict | Dead_ep

let families = [| Gif; Mjpg; Mpdf; J2k; Avi; Tif |]

let family_name = function
  | Gif -> "gif"
  | Mjpg -> "mjpg"
  | Mpdf -> "mpdf"
  | J2k -> "j2k"
  | Avi -> "avi"
  | Tif -> "tif"

let variant_name = function
  | Clone -> "clone"
  | Guard -> "guard"
  | Conflict -> "conflict"
  | Dead_ep -> "deadep"

(** The verdict class a correct pipeline must produce for each variant. *)
let expected_class = function
  | Clone -> "Type-I"
  | Guard -> "Type-II"
  | Conflict | Dead_ep -> "Type-III"

type gen_pair = {
  glabel : string;  (** sortable: ["g%05d-<family>-<variant>"] *)
  gfamily : family;
  gvariant : variant;
  gs : program;
  gt : program;
  gpoc : string;
  gexpected : string;  (** {!expected_class} of the variant *)
}

let magic = function
  | Gif -> F.Mgif.magic
  | Mjpg -> F.Mjpg.magic
  | Mpdf -> F.Mpdf.magic
  | J2k -> F.Mj2k.magic
  | Avi -> F.Mavi.magic
  | Tif -> F.Mtif.magic

(* The shared decoder each family drives, with its call-argument shape
   (2-arg decoders take (fd, len); 3-arg ones an extra index, constant in
   the generated drivers).  Tif is special-cased below: its decoder takes
   (tag, value) registers, not the file. *)
let decoder = function
  | Gif -> Shared.gif_read_image
  | Mjpg -> Shared.mjpg_scan
  | Mpdf -> Shared.font_copy
  | J2k -> Shared.j2k_tile
  | Avi -> Shared.codec_decode
  | Tif -> Shared.tif_get_field

(** [vuln_name fam] is the name of the family's shared vulnerable
    decoder — the annotation a scan probes with (what a VUDDY user
    starts from, mirroring {!Registry.case.vuln_func}). *)
let vuln_name = function
  | Gif -> "gif_read_image"
  | Mjpg -> "mjpg_scan"
  | Mpdf -> "font_copy"
  | J2k -> "j2k_tile"
  | Avi -> "codec_decode"
  | Tif -> "tif_get_field"

let decoder_call = function
  | Gif -> ("gif_read_image", [ Reg fd; Reg 18; Imm 0 ])
  | J2k -> ("j2k_tile", [ Reg fd; Reg 18; Imm 0 ])
  | Avi -> ("codec_decode", [ Reg fd; Reg 18; Imm 0 ])
  | Mjpg -> ("mjpg_scan", [ Reg fd; Reg 18 ])
  | Mpdf -> ("font_copy", [ Reg fd; Reg 18 ])
  | Tif -> assert false

(* Cosmetic clone edits: dead arithmetic on the scratch temporary, the
   kind of drift real propagation accrues without changing behaviour. *)
let clone_edits r =
  let n = 1 + Rng.int r 3 in
  List.concat
    (List.init n (fun _ ->
         let c = Rng.byte r and c' = Rng.byte r in
         [ I (Mov (t0, Imm c)); I (Bin (Add, t0, Reg t0, Imm c')) ]))

(* Driver for the stream families: magic, a format flag byte (S ignores
   it), a payload length byte, then the shared bounded-copy decoder.  The
   knobs carve the four variants out of one shape. *)
let stream_main fam ~edits ~guard ~conflict ~call =
  prologue
  @ check_magic ~fail:"bad" (magic fam)
  @ read_byte_or ~eof:"bad" 17 (* format flag *)
  @ (match guard with None -> [] | Some v -> [ I (Jif (Ne, Reg 17, Imm v, "bad")) ])
  @ edits
  @ read_byte_or ~eof:"bad" 18 (* payload length *)
  @ (if conflict then (* the downstream patch: lengths past 8 rejected *)
       [ I (Jif (Ge, Reg 18, Imm 9, "bad")) ]
     else [])
  @ (if call then
       let name, args = decoder_call fam in
       [ I (Call (name, args, Some 19)) ]
     else [])
  @ exit_with 0
  @ [ L "bad" ]
  @ exit_with 1

(* Driver for the tif family: magic, flag byte, entry count, then a
   directory loop feeding (tag, value) pairs to the field accessor — the
   tiffsplit shape, vulnerable through tag 0x3d. *)
let tif_main ~edits ~guard ~conflict ~call =
  prologue
  @ check_magic ~fail:"bad" F.Mtif.magic
  @ read_byte_or ~eof:"bad" 17 (* format flag *)
  @ (match guard with None -> [] | Some v -> [ I (Jif (Ne, Reg 17, Imm v, "bad")) ])
  @ edits
  @ read_byte_or ~eof:"bad" 20 (* entry count *)
  @ (if call then
       [ I (Mov (21, Imm 0)); L "ent"; I (Jif (Ge, Reg 21, Reg 20, "ok")) ]
       @ read_byte_or ~eof:"bad" 22 (* tag *)
       @ read_byte_or ~eof:"bad" 23 (* value *)
       @ (if conflict then (* the downstream patch: vulnerable tag rejected *)
            [ I (Jif (Eq, Reg 22, Imm F.Mtif.tag_vuln, "bad")) ]
          else [])
       @ [
           I (Call ("tif_get_field", [ Reg 22; Reg 23 ], Some 24));
           I (Bin (Add, 21, Reg 21, Imm 1));
           I (Jmp "ent");
           L "ok";
         ]
     else [])
  @ exit_with 0
  @ [ L "bad" ]
  @ exit_with 1

let build_program fam ~name ~edits ~guard ~conflict ~call =
  let body =
    if fam = Tif then tif_main ~edits ~guard ~conflict ~call
    else stream_main fam ~edits ~guard ~conflict ~call
  in
  assemble ~name ~entry:"main" [ fn "main" ~params:0 body; decoder fam ]

(* PoC layouts (generator-owned, matching the drivers above):
   stream families:  magic | flag | len | payload[len]   (len >= 17 so the
                     16-byte copy destination overflows)
   tif:              magic | flag | count | (tag value)*  (last entry tag
                     0x3d, the out-of-bounds write) *)
let build_poc fam r ~flag =
  let b = Buffer.create 64 in
  Buffer.add_string b (magic fam);
  Buffer.add_char b (Char.chr flag);
  (if fam = Tif then begin
     let nbenign = 1 + Rng.int r 2 in
     Buffer.add_char b (Char.chr (nbenign + 1));
     for _ = 1 to nbenign do
       Buffer.add_char b (Char.chr (1 + Rng.int r 3));
       Buffer.add_char b (Char.chr (Rng.byte r))
     done;
     Buffer.add_char b (Char.chr F.Mtif.tag_vuln);
     Buffer.add_char b (Char.chr (Rng.byte r))
   end
   else begin
     let plen = 17 + Rng.int r 24 in
     Buffer.add_char b (Char.chr plen);
     for _ = 1 to plen do
       Buffer.add_char b (Char.chr (Rng.byte r))
     done
   end);
  Buffer.contents b

(** [generate ~seed ~index] is pair [index] of the corpus seeded by
    [seed] — a pure function of its arguments.  Family, variant, clone
    edits, guard bytes and payload bytes are all drawn from one splitmix64
    stream derived from the coordinates. *)
let generate ~seed ~index =
  let r = Rng.create (seed lxor (index * 0x9E3779B9) lxor 0x6C62272E) in
  let fam = families.(Rng.int r (Array.length families)) in
  let variant =
    (* Weighted: verbatim propagation dominates real corpora. *)
    let d = Rng.int r 100 in
    if d < 40 then Clone else if d < 65 then Guard else if d < 85 then Conflict else Dead_ep
  in
  let label = Printf.sprintf "g%05d-%s-%s" index (family_name fam) (variant_name variant) in
  let v_req = Rng.byte r in
  let v_wrong = (v_req + 1 + Rng.int r 255) land 0xff in
  let s =
    build_program fam ~name:(label ^ "-s") ~edits:[] ~guard:None ~conflict:false ~call:true
  in
  let t =
    match variant with
    | Clone ->
        build_program fam ~name:(label ^ "-t") ~edits:(clone_edits r) ~guard:None
          ~conflict:false ~call:true
    | Guard ->
        build_program fam ~name:(label ^ "-t") ~edits:[] ~guard:(Some v_req) ~conflict:false
          ~call:true
    | Conflict ->
        build_program fam ~name:(label ^ "-t") ~edits:[] ~guard:None ~conflict:true
          ~call:true
    | Dead_ep ->
        build_program fam ~name:(label ^ "-t") ~edits:[] ~guard:None ~conflict:false
          ~call:false
  in
  let flag = match variant with Guard -> v_wrong | _ -> Rng.byte r in
  let poc = build_poc fam r ~flag in
  {
    glabel = label;
    gfamily = fam;
    gvariant = variant;
    gs = s;
    gt = t;
    gpoc = poc;
    gexpected = expected_class variant;
  }

(* ------------------------------------------------------------------ *)
(* Decoy targets for the clone-detection scan.

   A scan over pairs alone cannot measure precision: every indexed target
   genuinely links the vulnerable decoder, so every retrieval is a true
   positive.  Decoys are target-only programs seeded into the corpus to
   give the detector something to be wrong about, one kind per failure
   mode:

   - {b patched}: the decoder with its allocations enlarged 256x — the
     upstream fix.  Only two immediates move, so the winnowed index
     still retrieves it at high similarity; the validity filter's
     full-k-gram re-score is what rejects it (retrieval
     over-approximates, validation decides).
   - {b mutated}: the decoder with one opcode-level edit and cosmetic
     driver drift — a near-clone that should be retrieved but fail the
     confirmation threshold.
   - {b unrelated}: no decoder at all; must never be retrieved. *)

type decoy_kind = Patched | Mutated | Unrelated

let decoy_kind_name = function
  | Patched -> "patched"
  | Mutated -> "mutated"
  | Unrelated -> "unrelated"

(* The upstream fix: every allocation in the vulnerable function grows
   256x, so no generated PoC (payloads are single-byte-length bounded)
   can overflow it.  Only immediates change — the smallest edit the
   normalized token stream can register. *)
let patch_instr (ins : instr) : instr =
  match ins with Sys (Alloc (d, Imm n)) -> Sys (Alloc (d, Imm (n * 256))) | i -> i

(* One opcode-shape edit near the end of the function: the last Bin's
   operator flips Add<->Xor; a function without Bin (tif_get_field) flips
   its last Jif's relation instead.  Token-level change, so the
   fingerprint and part of the shingle set move. *)
let mutate_code (code : instr array) : instr array =
  let code = Array.copy code in
  let last p =
    let r = ref (-1) in
    Array.iteri (fun i ins -> if p ins then r := i) code;
    !r
  in
  let bin_at = last (function Bin _ -> true | _ -> false) in
  if bin_at >= 0 then begin
    (match code.(bin_at) with
    | Bin (op, d, x, y) ->
        let op' = match op with Add -> Xor | Xor -> Add | o -> o in
        code.(bin_at) <- Bin (op', d, x, y)
    | _ -> ());
    code
  end
  else begin
    let jif_at = last (function Jif _ -> true | _ -> false) in
    if jif_at >= 0 then
      (match code.(jif_at) with
      | Jif (r, a, b, t) ->
          let r' = match r with Eq -> Ne | Ne -> Eq | Lt -> Ge | Ge -> Lt | Le -> Gt | Gt -> Le in
          code.(jif_at) <- Jif (r', a, b, t)
      | _ -> ());
    code
  end

(* A program sharing no function shape with any family: a checksum
   driver.  The helper's body is loop-structured like nothing in
   {!Shared}, so no shingle window overlaps a decoder's. *)
let unrelated_program ~name r =
  let rounds = 1 + Rng.int r 6 in
  assemble ~name ~entry:"main"
    [
      fn "main" ~params:0
        (prologue
        @ read_byte_or ~eof:"end" t0
        @ [ I (Call ("csum", [ Reg t0; Imm rounds ], Some t0)) ]
        @ exit_with 0 @ [ L "end" ] @ exit_with 1);
      fn "csum" ~params:2
        [
          I (Mov (2, Imm 0));
          I (Mov (3, Imm 0));
          L "rounds";
          I (Jif (Ge, Reg 3, Reg 1, "out"));
          I (Bin (Mul, 2, Reg 2, Imm 31));
          I (Bin (Add, 2, Reg 2, Reg 0));
          I (Bin (And, 2, Reg 2, Imm 0xFFFF));
          I (Bin (Add, 3, Reg 3, Imm 1));
          I (Jmp "rounds");
          L "out";
          I (Ret (Reg 2));
        ];
    ]

(* Replace the named function's code in an assembled program; the func
   record and code array are fresh, so the shared [Shared] values other
   programs link are never mutated. *)
let rewrite_func (p : program) name f =
  match Hashtbl.find_opt p.funcs name with
  | None -> ()
  | Some df -> Hashtbl.replace p.funcs name { df with code = f df.code }

(** [decoy ~seed ~index] is decoy target [index] of the stream seeded by
    [seed] — like {!generate}, a pure function of its coordinates.  The
    kind cycles patched / mutated / unrelated by index; the family (for
    the first two kinds) and all cosmetic drift come from the splitmix64
    stream.  Returns [(label, program)]; labels sort as
    ["d%05d-<kind>-<family>"]. *)
let decoy ~seed ~index : string * program =
  let r = Rng.create (seed lxor (index * 0x85EBCA6B) lxor 0x165667B1) in
  let kind = match index mod 3 with 0 -> Patched | 1 -> Mutated | _ -> Unrelated in
  let fam = families.(Rng.int r (Array.length families)) in
  match kind with
  | Unrelated ->
      let label = Printf.sprintf "d%05d-%s-misc" index (decoy_kind_name kind) in
      (label, unrelated_program ~name:label r)
  | Patched | Mutated ->
      let label =
        Printf.sprintf "d%05d-%s-%s" index (decoy_kind_name kind) (family_name fam)
      in
      (* Cosmetic driver drift keeps decoy mains from fingerprint-matching
         any generated S main, so ℓ never accidentally includes main. *)
      let p =
        build_program fam ~name:label ~edits:(clone_edits r) ~guard:None ~conflict:false
          ~call:true
      in
      rewrite_func p (vuln_name fam)
        (if kind = Patched then Array.map patch_instr else mutate_code);
      (label, p)
