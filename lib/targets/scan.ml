(** Corpus scanning: clone-detection front-end over a {!Source}, scored
    against annotated ground truth.

    A scan separates a corpus into {e probes} (each pair's S with its
    annotated vulnerable function — what a VUDDY user starts from) and
    {e targets} (every pair's T, plus optional seeded decoys), indexes
    the targets with {!Octo_clone.Detect}, retrieves and confirms
    (S, T, ℓ, ep) candidates, and reports a precision/recall table
    against the corpus's own annotations:

    - {b ground truth}: (probe i, target j) is a positive iff T_j links
      a function whose exact {!Clone} fingerprint equals S_i's annotated
      vulnerable function — the propagated-verbatim relation the
      detector is supposed to recover.  Within a generated corpus every
      same-family pair is therefore a positive (the decoder is the very
      same linked value), which is what makes cross-pair retrieval
      measurable rather than vacuous.
    - {b precision} is measured against the decoys and cross-family
      near-misses: a patched or mutated decoy is retrieved by the
      winnowed index at high similarity, and the validity filter's
      full-k-gram re-score is what keeps it out of the confirmed set —
      retrieval over-approximates, validation decides.

    Detection is pure and deterministic; verification of the confirmed
    candidates is composed downstream (the CLI pipes them through
    {!Octopocs.run_stream}). *)

open Octo_vm.Isa
module Detect = Octo_clone.Detect
module Clone = Octo_clone.Clone

type probe = {
  pr_label : string;
  pr_s : program;
  pr_poc : string;
  pr_vuln : string;  (** annotated vulnerable function of S *)
  pr_expected : string option;  (** annotated verdict class of the pair *)
}

type target = { tg_label : string; tg_prog : program }

(** [of_source src] drains [src] into (probes, targets).  Every pair
    contributes its T as a target; a pair is additionally a probe when it
    carries a vulnerable-function annotation naming a function S actually
    defines.  Returns pairs in pull order. *)
let of_source (src : Source.t) : probe list * target list =
  let probes = ref [] and targets = ref [] in
  let rec go () =
    match Source.next src with
    | None -> ()
    | Some p ->
        targets := { tg_label = p.Source.plabel; tg_prog = p.Source.pt } :: !targets;
        (match p.Source.pvuln with
        | Some v when Hashtbl.mem p.Source.ps.funcs v ->
            probes :=
              {
                pr_label = p.Source.plabel;
                pr_s = p.Source.ps;
                pr_poc = p.Source.ppoc;
                pr_vuln = v;
                pr_expected = p.Source.pexpected;
              }
              :: !probes
        | _ -> ());
        go ()
  in
  go ();
  (List.rev !probes, List.rev !targets)

(** [decoy_targets ~seed ~count] is the seeded decoy stream as scan
    targets (see {!Corpus.decoy}). *)
let decoy_targets ~seed ~count : target list =
  List.init count (fun i ->
      let label, prog = Corpus.decoy ~seed ~index:i in
      { tg_label = label; tg_prog = prog })

(* Numeric-aware label ordering, matching the journal dump's: registry
   label "10" sorts after "9", generated labels sort lexically. *)
let label_compare a b =
  match (int_of_string_opt a, int_of_string_opt b) with
  | Some x, Some y -> compare x y
  | _ -> compare a b

type result = {
  candidates : Detect.candidate list;  (** confirmed, sorted by (s, t) label *)
  n_probes : int;
  n_targets : int;
  n_decoys : int;
  n_retrieved : int;  (** hits clearing the retrieval threshold *)
  n_rejected : int;  (** retrieved hits that failed confirmation *)
  n_no_crash : int;  (** probes whose S did not crash on its own PoC *)
  n_dropped : int;  (** confirmed candidates dropped by the [top] cap *)
  index_funcs : int;
  index_postings : int;
  gt : (string * string) list;  (** ground-truth positives, sorted *)
  n_tp : int;  (** confirmed candidates that are ground-truth positives *)
  by_class : (string * int * int) list;
      (** per annotated class: (class, diagonal positives confirmed,
          diagonal positives total) — the "recall on generator clone
          variants" row of the acceptance criteria *)
  params : Detect.params;
  top : int;
}

(** [run ?params ?top ~probes ~targets ~n_decoys ()] executes the
    detection pass: index all targets, query with each probe's
    vulnerable function, confirm hits through the validity filter.
    [top] (0 = unlimited) caps confirmed candidates per probe, best
    containment first; dropped candidates are counted, never silent. *)
let run ?(params = Detect.default_params) ?(top = 0) ~(probes : probe list)
    ~(targets : target list) ~n_decoys () : result =
  let ix = Detect.index_create params in
  let tprog : (string, program * string) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun tg ->
      Detect.index_add ix ~label:tg.tg_label tg.tg_prog;
      Hashtbl.replace tprog tg.tg_label
        (tg.tg_prog, Octo_vm.Compile.program_digest tg.tg_prog))
    targets;
  let _, index_funcs, index_postings = Detect.index_stats ix in
  (* Ground truth: per target, the exact fingerprint set of its
     functions; (i, j) is a positive iff T_j carries S_i's vulnerable
     fingerprint. *)
  let tfps : (string, (string, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun tg ->
      let set = Hashtbl.create 16 in
      Hashtbl.iter (fun _ f -> Hashtbl.replace set (Clone.fingerprint f) ()) tg.tg_prog.funcs;
      Hashtbl.replace tfps tg.tg_label set)
    targets;
  let gt : (string * string, unit) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun pr ->
      let fp = Clone.fingerprint (func_exn pr.pr_s pr.pr_vuln) in
      List.iter
        (fun tg ->
          match Hashtbl.find_opt tfps tg.tg_label with
          | Some set when Hashtbl.mem set fp -> Hashtbl.replace gt (pr.pr_label, tg.tg_label) ()
          | _ -> ())
        targets)
    probes;
  let n_retrieved = ref 0
  and n_rejected = ref 0
  and n_no_crash = ref 0
  and n_dropped = ref 0 in
  let candidates =
    List.concat_map
      (fun pr ->
        let sdig = Octo_vm.Compile.program_digest pr.pr_s in
        let crash = Detect.s_crash pr.pr_s ~poc:pr.pr_poc in
        if crash = None then incr n_no_crash;
        let hits = Detect.query ix (func_exn pr.pr_s pr.pr_vuln) in
        n_retrieved := !n_retrieved + List.length hits;
        let confirmed =
          List.filter_map
            (fun (h : Detect.hit) ->
              let t, tdig = Hashtbl.find tprog h.h_label in
              match
                Detect.confirm params ~sdig ~tdig ~s:pr.pr_s ~s_label:pr.pr_label ~t
                  ~t_label:h.h_label ~vuln_func:pr.pr_vuln ~s_crash:crash h
              with
              | Some c -> Some c
              | None ->
                  incr n_rejected;
                  None)
            hits
        in
        if top > 0 && List.length confirmed > top then begin
          let kept =
            List.stable_sort
              (fun (a : Detect.candidate) b -> compare b.c_score a.c_score)
              confirmed
            |> List.filteri (fun i _ -> i < top)
          in
          n_dropped := !n_dropped + (List.length confirmed - top);
          kept
        end
        else confirmed)
      probes
  in
  let candidates =
    List.sort
      (fun (a : Detect.candidate) b ->
        match label_compare a.c_s_label b.c_s_label with
        | 0 -> (
            match label_compare a.c_t_label b.c_t_label with
            | 0 -> compare a.c_hit_func b.c_hit_func
            | c -> c)
        | c -> c)
      candidates
  in
  let n_tp =
    List.length
      (List.filter (fun (c : Detect.candidate) -> Hashtbl.mem gt (c.c_s_label, c.c_t_label))
         candidates)
  in
  (* Diagonal recall per annotated class: of the probes whose own pair is
     a ground-truth positive, how many were rediscovered? *)
  let by_class =
    let tbl : (string, int * int) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun pr ->
        match pr.pr_expected with
        | Some cls when Hashtbl.mem gt (pr.pr_label, pr.pr_label) ->
            let conf, tot = Option.value (Hashtbl.find_opt tbl cls) ~default:(0, 0) in
            let hitp =
              List.exists
                (fun (c : Detect.candidate) ->
                  c.c_s_label = pr.pr_label && c.c_t_label = pr.pr_label)
                candidates
            in
            Hashtbl.replace tbl cls ((conf + if hitp then 1 else 0), tot + 1)
        | _ -> ())
      probes;
    Hashtbl.fold (fun cls (c, t) acc -> (cls, c, t) :: acc) tbl []
    |> List.sort compare
  in
  {
    candidates;
    n_probes = List.length probes;
    n_targets = List.length targets;
    n_decoys;
    n_retrieved = !n_retrieved;
    n_rejected = !n_rejected;
    n_no_crash = !n_no_crash;
    n_dropped = !n_dropped;
    index_funcs;
    index_postings;
    gt =
      Hashtbl.fold (fun k () acc -> k :: acc) gt []
      |> List.sort (fun (a1, a2) (b1, b2) ->
             match label_compare a1 b1 with 0 -> label_compare a2 b2 | c -> c);
    n_tp;
    by_class;
    params;
    top;
  }

(** [recall r] is |confirmed ∩ ground truth| / |ground truth| (1.0 on an
    empty ground truth); [precision r] is the same numerator over the
    confirmed count. *)
let recall r =
  if r.gt = [] then 1.0 else float_of_int r.n_tp /. float_of_int (List.length r.gt)

let precision r =
  if r.candidates = [] then 1.0
  else float_of_int r.n_tp /. float_of_int (List.length r.candidates)

(** [render ~corpus_id r] is the deterministic scan report: header,
    parameters, one line per confirmed candidate, counts and the
    precision/recall table.  Byte-identical across runs of the same
    corpus and parameters — the golden test and the CI scan-smoke job
    diff it directly. *)
let render ~corpus_id (r : result) : string =
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "scan: corpus=%s probes=%d targets=%d decoys=%d" corpus_id r.n_probes r.n_targets
    r.n_decoys;
  line "params: k=%d w=%d tau-retrieve=%.2f tau-confirm=%.2f top=%s" r.params.shingle_k
    r.params.winnow_w r.params.tau_retrieve r.params.tau_confirm
    (if r.top = 0 then "unlimited" else string_of_int r.top);
  line "index: %d function(s), %d posting(s)" r.index_funcs r.index_postings;
  List.iter
    (fun (c : Detect.candidate) ->
      line "candidate s=%s t=%s vuln=%s hit=%s sim=%.3f exact=%s ell=%d ep=%s reach=%s gt=%s"
        c.c_s_label c.c_t_label c.c_vuln_func c.c_hit_func c.c_score
        (if c.c_exact then "yes" else "no")
        (List.length c.c_ell) c.c_ep
        (match c.c_reachable with Some true -> "yes" | Some false -> "no" | None -> "cfg-fail")
        (if List.mem (c.c_s_label, c.c_t_label) r.gt then "tp" else "fp"))
    r.candidates;
  line "counts: retrieved=%d confirmed=%d rejected=%d no-crash=%d dropped=%d" r.n_retrieved
    (List.length r.candidates) r.n_rejected r.n_no_crash r.n_dropped;
  line "ground-truth: positives=%d" (List.length r.gt);
  line "precision: %.3f (%d/%d)" (precision r) r.n_tp (List.length r.candidates);
  line "recall: %.3f (%d/%d)" (recall r) r.n_tp (List.length r.gt);
  if r.by_class <> [] then begin
    line "diagonal recall by class:";
    List.iter
      (fun (cls, conf, tot) ->
        line "  %-9s %.3f (%d/%d)" cls
          (if tot = 0 then 1.0 else float_of_int conf /. float_of_int tot)
          conf tot)
      r.by_class
  end;
  Buffer.contents b
