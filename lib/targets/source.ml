(** Streaming pair sources: where verification batches come from.

    A source is a pull cursor over (S, T, PoC) pairs.  Consumers (the CLI
    driver, the chaos harness) never materialise the whole corpus — they
    pull one pair at a time, so a million-pair corpus verifies in bounded
    memory.  Three constructors cover the use cases:

    - {!registry}: the 15 curated Table II pairs (the paper's dataset);
    - {!generated}: the seeded {!Corpus} generator, pairs regenerated
      on demand from [(seed, index)];
    - {!directory}: an on-disk corpus of tiny [*.pair] manifests, each
      naming the coordinates of one pair (so a corpus directory is a few
      KB no matter how many pairs it describes, and survives replication
      to other machines byte-for-byte).

    {!of_spec} parses the CLI's [--corpus] argument into a source. *)

module Log = Octo_util.Log

type pair = {
  plabel : string;  (** journal/display label; unique within a source *)
  ps : Octo_vm.Isa.program;
  pt : Octo_vm.Isa.program;
  ppoc : string;
  pell : string list option;  (** explicit shared functions, if curated *)
  pexpected : string option;  (** expected verdict class, if known *)
  pvuln : string option;
      (** the known-vulnerable function of S (the scan's probe
          annotation; {!Registry.case.vuln_func} for curated pairs, the
          family decoder for generated ones) *)
}

exception Malformed_manifest of string
(** Raised by strict directory sources on an unparsable [.pair] manifest
    (the argument is the offending path). *)

type t = { src_id : string; pull : unit -> pair option }

let id t = t.src_id

(** [next t] pulls the next pair, or [None] when the source is drained.
    Sources are single-shot cursors: once drained they stay drained. *)
let next t = t.pull ()

let registry () =
  let remaining = ref Registry.all in
  {
    src_id = "registry";
    pull =
      (fun () ->
        match !remaining with
        | [] -> None
        | c :: rest ->
            remaining := rest;
            Some
              {
                plabel = string_of_int c.Registry.idx;
                ps = c.Registry.s;
                pt = c.Registry.t;
                ppoc = c.Registry.poc;
                pell = None;
                pexpected = Some (Registry.expected_to_string c.Registry.expected);
                pvuln = Some c.Registry.vuln_func;
              });
  }

let pair_of_gen (g : Corpus.gen_pair) =
  {
    plabel = g.Corpus.glabel;
    ps = g.Corpus.gs;
    pt = g.Corpus.gt;
    ppoc = g.Corpus.gpoc;
    pell = None;
    pexpected = Some g.Corpus.gexpected;
    pvuln = Some (Corpus.vuln_name g.Corpus.gfamily);
  }

let generated ~seed ~count () =
  let i = ref 0 in
  {
    src_id = Printf.sprintf "gen:%d:%d" count seed;
    pull =
      (fun () ->
        if !i >= count then None
        else begin
          let g = Corpus.generate ~seed ~index:!i in
          incr i;
          Some (pair_of_gen g)
        end);
  }

(* On-disk corpus manifests.  One pair per file, named so a sorted
   directory listing is the corpus order:

     octopair1
     seed=42
     index=17        -- a generated pair, or:
     registry=9      -- a curated Table II pair by index
*)

let manifest_ext = ".pair"

let parse_manifest path =
  let ic = open_in_bin path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  let kv = Hashtbl.create 4 in
  let ok = ref false in
  List.iteri
    (fun i line ->
      let line = String.trim line in
      if i = 0 && line = "octopair1" then ok := true
      else if line <> "" then
        match String.index_opt line '=' with
        | Some j ->
            Hashtbl.replace kv
              (String.sub line 0 j)
              (String.sub line (j + 1) (String.length line - j - 1))
        | None -> ())
    (List.rev !lines);
  if not !ok then None
  else
    let geti k = Option.bind (Hashtbl.find_opt kv k) int_of_string_opt in
    match geti "registry" with
    | Some idx ->
        Option.map
          (fun (c : Registry.case) ->
            {
              plabel = string_of_int c.Registry.idx;
              ps = c.Registry.s;
              pt = c.Registry.t;
              ppoc = c.Registry.poc;
              pell = None;
              pexpected = Some (Registry.expected_to_string c.Registry.expected);
              pvuln = Some c.Registry.vuln_func;
            })
          (Registry.find_opt idx)
    | None -> (
        match (geti "seed", geti "index") with
        | Some seed, Some index when index >= 0 ->
            Some (pair_of_gen (Corpus.generate ~seed ~index))
        | _ -> None)

(** [directory ?strict dir] streams the [.pair] manifests of [dir] in
    sorted order.  A malformed manifest is skipped with a warning by
    default; under [~strict:true] the pull raises {!Malformed_manifest}
    instead — silent skips under-count a corpus, which a batch that
    reports coverage statistics cannot afford. *)
let directory ?(strict = false) dir =
  let names =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun n -> Filename.check_suffix n manifest_ext)
    |> List.sort compare
  in
  let remaining = ref names in
  let rec pull () =
    match !remaining with
    | [] -> None
    | n :: rest -> (
        remaining := rest;
        let path = Filename.concat dir n in
        match (try parse_manifest path with Sys_error _ -> None) with
        | Some p -> Some p
        | None when strict -> raise (Malformed_manifest path)
        | None ->
            Log.warn (fun m -> m "corpus: skipping malformed manifest %s" path);
            pull ())
  in
  { src_id = "dir:" ^ dir; pull }

(** [write_dir ~dir ~seed ~count] materialises a corpus {e description}
    on disk: [count] one-pair manifests pointing at the generator, so the
    directory can be shipped, subset or diffed without shipping programs. *)
let write_dir ~dir ~seed ~count =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  for i = 0 to count - 1 do
    let path = Filename.concat dir (Printf.sprintf "pair-%05d%s" i manifest_ext) in
    let oc = open_out_bin path in
    Printf.fprintf oc "octopair1\nseed=%d\nindex=%d\n" seed i;
    close_out oc
  done

(** Parse a [--corpus] spec: ["registry"], ["gen:COUNT[:SEED]"] (seed
    defaults to 42), or a path to a corpus directory ([strict] governs
    malformed-manifest handling as in {!directory}). *)
let of_spec ?strict spec =
  let invalid () =
    Error
      (Printf.sprintf
         "invalid corpus spec %S (expected \"registry\", \"gen:COUNT[:SEED]\", or a corpus \
          directory)"
         spec)
  in
  if spec = "registry" then Ok (registry ())
  else if String.length spec > 4 && String.sub spec 0 4 = "gen:" then
    match String.split_on_char ':' spec with
    | [ _; cnt ] -> (
        match int_of_string_opt cnt with
        | Some c when c >= 0 -> Ok (generated ~seed:42 ~count:c ())
        | _ -> invalid ())
    | [ _; cnt; sd ] -> (
        match (int_of_string_opt cnt, int_of_string_opt sd) with
        | Some c, Some s when c >= 0 -> Ok (generated ~seed:s ~count:c ())
        | _ -> invalid ())
    | _ -> invalid ()
  else if Sys.file_exists spec && Sys.is_directory spec then Ok (directory ?strict spec)
  else invalid ()
