(** Control-flow analysis for MiniVM programs.

    This module stands in for angr's CFG recovery (paper §IV-B).  It builds:

    - the call graph (direct calls, plus indirect calls whose operand is an
      immediate function-table index);
    - per-function instruction-level successor graphs;
    - the interprocedural distance map used by backward path finding
      (§III-B): for every (function, pc), the minimum number of steps to the
      next entry of [ep].  Directed symbolic execution consults this map at
      every symbolic branch.

    Indirect calls through a register are unresolvable statically.  The real
    system inherited an angr bug here (Table II Idx-15); we model the same
    failure mode: [build] raises {!Cfg_error} when the program contains an
    unresolvable indirect call, unless [~allow_unresolved:true]. *)

open Octo_vm.Isa

exception Cfg_error of string

let infinity = max_int / 2

(** Static successor pcs of the instruction at [pc] within its function.
    Calls fall through: entering the callee is modelled separately via the
    call graph when computing distances. *)
let successors (f : func) pc =
  if pc < 0 || pc >= Array.length f.code then []
  else
    match f.code.(pc) with
    | Jmp t -> [ t ]
    | Jif (_, _, _, t) -> if t = pc + 1 then [ pc + 1 ] else [ t; pc + 1 ]
    | Ret _ | Halt | Sys (Exit _) -> []
    | Mov _ | Bin _ | Load8 _ | Store8 _ | LoadW _ | StoreW _ | Call _ | Icall _ | Sys _ ->
        [ pc + 1 ]

(** [callees program f] lists the (pc, callee-name) pairs of resolvable call
    sites in [f].  Unresolvable indirect calls raise unless allowed. *)
let callees ?(allow_unresolved = false) (prog : program) (f : func) =
  let out = ref [] in
  Array.iteri
    (fun pc ins ->
      match ins with
      | Call (g, _, _) -> out := (pc, g) :: !out
      | Icall (Imm i, _, _) ->
          if i >= 0 && i < Array.length prog.ftable then
            out := (pc, prog.ftable.(i)) :: !out
          else raise (Cfg_error (Printf.sprintf "icall to invalid table slot %d in %s" i f.fname))
      | Icall ((Reg _ | Sym _), _, _) ->
          if not allow_unresolved then
            raise
              (Cfg_error
                 (Printf.sprintf "unresolvable indirect call at %s@%d (CFG recovery failed)"
                    f.fname pc))
      | _ -> ())
    f.code;
  List.rev !out

(** Call graph: function name -> list of (callsite pc, callee). *)
type callgraph = (string, (int * string) list) Hashtbl.t

let call_graph ?allow_unresolved (prog : program) : callgraph =
  let g = Hashtbl.create 16 in
  Hashtbl.iter (fun name f -> Hashtbl.replace g name (callees ?allow_unresolved prog f)) prog.funcs;
  g

(** [reachable_funcs prog] is the set of functions reachable from the entry
    point through resolvable calls. *)
let reachable_funcs ?allow_unresolved (prog : program) =
  let cg = call_graph ?allow_unresolved prog in
  let seen = Hashtbl.create 16 in
  let rec visit name =
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.replace seen name ();
      match Hashtbl.find_opt cg name with
      | Some cs -> List.iter (fun (_, g) -> visit g) cs
      | None -> ()
    end
  in
  visit prog.entry;
  seen

type t = {
  prog : program;
  ep : string;
  dist : (string, int array) Hashtbl.t;
      (** per function: distance from each pc to the next entry of [ep] *)
  fn_dist : (string, int) Hashtbl.t;
      (** distance from function entry (pc 0) to entering [ep] *)
}

(* Relax one function's distance array given current callee-entry distances.
   d(pc) = 0 if the instruction at pc calls a function g with fn_dist g = 0?
   No: standing at a call to g costs 1 step to enter g, then fn_dist g to
   reach ep from g's entry (0 when g = ep).  We iterate to a fixpoint:
   d(pc) = min(1 + min over static successors, call_bonus(pc)) where
   call_bonus(pc) = 1 + fn_dist(g) for a call site to g. *)
let relax_function prog fn_dist (f : func) (d : int array) ~allow_unresolved =
  let n = Array.length f.code in
  let changed = ref false in
  let call_bonus pc =
    match f.code.(pc) with
    | Call (g, _, _) -> (
        match Hashtbl.find_opt fn_dist g with
        | Some dg when dg < infinity -> 1 + dg
        | _ -> infinity)
    | Icall (Imm i, _, _) when i >= 0 && i < Array.length prog.ftable -> (
        match Hashtbl.find_opt fn_dist prog.ftable.(i) with
        | Some dg when dg < infinity -> 1 + dg
        | _ -> infinity)
    | _ -> infinity
  in
  ignore allow_unresolved;
  (* Iterate until stable; functions are small so this is cheap. *)
  let pass () =
    let any = ref false in
    for pc = n - 1 downto 0 do
      let via_succ =
        List.fold_left (fun acc s -> min acc (if s < n then 1 + d.(s) else infinity)) infinity
          (successors f pc)
      in
      let best = min via_succ (call_bonus pc) in
      if best < d.(pc) then begin
        d.(pc) <- best;
        any := true
      end
    done;
    !any
  in
  let rec go () = if pass () then go () in
  go ();
  if n > 0 then begin
    let entry_d = d.(0) in
    match Hashtbl.find_opt fn_dist f.fname with
    | Some old when old <= entry_d -> ()
    | _ ->
        Hashtbl.replace fn_dist f.fname entry_d;
        changed := true
  end;
  !changed

(** [build ?allow_unresolved program ~ep] computes the interprocedural
    distance map toward entering [ep].  This is the product of the paper's
    backward path finding: distances decrease along every correct path from
    the entry of the program to [ep].

    @raise Cfg_error when CFG recovery hits an unresolvable indirect call
    (the simulated angr defect behind Table II's Failure row). *)
let build ?(allow_unresolved = false) (prog : program) ~(ep : string) : t =
  if not (Hashtbl.mem prog.funcs ep) then
    raise (Cfg_error (Printf.sprintf "entry-point function %S not present in %s" ep prog.pname));
  (* Force detection of unresolvable icalls up front. *)
  ignore (call_graph ~allow_unresolved prog);
  let fn_dist = Hashtbl.create 16 in
  Hashtbl.replace fn_dist ep 0;
  let dist = Hashtbl.create 16 in
  Hashtbl.iter
    (fun name f ->
      let d = Array.make (max 1 (Array.length f.code)) infinity in
      (* Inside ep itself every pc is "at" the target already. *)
      if name = ep then Array.fill d 0 (Array.length d) 0;
      Hashtbl.replace dist name d)
    prog.funcs;
  let rec fixpoint () =
    let changed = ref false in
    Hashtbl.iter
      (fun name f ->
        if name <> ep then
          let d = Hashtbl.find dist name in
          if relax_function prog fn_dist f d ~allow_unresolved then changed := true)
      prog.funcs;
    if !changed then fixpoint ()
  in
  fixpoint ();
  { prog; ep; dist; fn_dist }

(** [distance t fname pc] is the minimum number of steps from (fname, pc) to
    the next entry of [t.ep]; {!infinity} when unreachable. *)
let distance t fname pc =
  match Hashtbl.find_opt t.dist fname with
  | Some d when pc >= 0 && pc < Array.length d -> d.(pc)
  | _ -> infinity

(** [distance_fn t] is [distance t] specialised for hot loops (the branch
    policy of directed execution queries it at every undecided branch, twice):
    the per-function distance array is resolved once per function name and
    memoized, so every subsequent (func, pc) lookup is a bounds check plus an
    array read instead of a hashtable probe into [t.dist]. *)
let distance_fn t =
  let cache : (string, int array) Hashtbl.t = Hashtbl.create 16 in
  fun fname pc ->
    let arr =
      match Hashtbl.find_opt cache fname with
      | Some a -> a
      | None ->
          let a = match Hashtbl.find_opt t.dist fname with Some d -> d | None -> [||] in
          Hashtbl.add cache fname a;
          a
    in
    if pc >= 0 && pc < Array.length arr then arr.(pc) else infinity

(* ------------------------------------------------------------------ *)
(* Build cache.  A distance map is immutable once built, and batch
   verification (verify-all, benchmarks, loop retries) rebuilds the same
   (program, ep) map over and over.  Keyed by physical program identity, so
   a devirtualized copy of the same binary misses as it must.  The lock
   makes the cache safe under the parallel pair runner. *)

let cache_lock = Mutex.create ()
let cache : (program * string * t) list ref = ref []
let cache_cap = 32

(** [build_cached program ~ep] is {!build} memoized on the physical identity
    of [program] plus [ep].  Failures ({!Cfg_error}) are not cached. *)
let build_cached ?allow_unresolved (prog : program) ~(ep : string) : t =
  Mutex.lock cache_lock;
  let hit = List.find_opt (fun (p, e, _) -> p == prog && e = ep) !cache in
  Mutex.unlock cache_lock;
  match hit with
  | Some (_, _, t) ->
      Octo_util.Metrics.incr Octo_util.Metrics.Cache_hits;
      t
  | None ->
      let t = build ?allow_unresolved prog ~ep in
      Mutex.lock cache_lock;
      let rest =
        if List.length !cache >= cache_cap then List.filteri (fun i _ -> i < cache_cap - 1) !cache
        else !cache
      in
      cache := (prog, ep, t) :: rest;
      Mutex.unlock cache_lock;
      t

(** [ep_reachable t] tells whether the program entry can reach [ep] at all —
    the "ep is not called in T" test of verification case (ii). *)
let ep_reachable t = distance t t.prog.entry 0 < infinity

(** [ep_called_somewhere prog ~ep] is a purely syntactic check: does any
    reachable function contain a call site of [ep]?  Distinguishes "the clone
    exists but is dead code" (Type-III case ii) from deeper unreachability. *)
let ep_called_somewhere ?allow_unresolved (prog : program) ~ep =
  let reach = reachable_funcs ?allow_unresolved prog in
  let found = ref false in
  Hashtbl.iter
    (fun name () ->
      match Hashtbl.find_opt prog.funcs name with
      | None -> ()
      | Some f ->
          List.iter
            (fun (_, g) -> if g = ep then found := true)
            (callees ?allow_unresolved prog f))
    reach;
  !found
