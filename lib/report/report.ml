(* Deterministic run-report aggregation.

   [of_files] folds a run's durable state — the verdict journal (single
   file or sharded directory), the quarantine journal beside it, and
   optionally the OTL1 telemetry journal — into one plain-text document:
   verdict-class breakdown, degradation-rung frequencies, quarantine
   reasons, p50/p90/p99 per-phase latencies off the journaled log2
   histograms, and a throughput summary from the telemetry samples.

   Determinism contract: the rendering is a pure function of the input
   file bytes.  No paths, wall-clock times, hostnames or map iteration
   orders leak in — class order is fixed, every other breakdown is
   sorted lexicographically, and verdict dedup/ordering reuses the
   journal dump's rules ([Octopocs.sort_dump], last record per label
   wins).  Two invocations over the same files are byte-identical; two
   *independent* runs of the same seeded corpus agree too, as long as
   the report sticks to journal-derived sections (telemetry timestamps
   and latency histograms are real time, which is why the telemetry
   section only appears when a telemetry file is explicitly given, and
   why the latency section reads "(no metrics journaled)" unless the
   run recorded them). *)

module Journal = Octo_util.Journal
module Metrics = Octo_util.Metrics
module Telemetry = Octo_util.Telemetry

type t = {
  verdicts : (string * string * Octopocs.report) list;
      (** deduped (last record per label wins) and [sort_dump]-ordered *)
  undecodable : int;  (** intact frames [decode_result] rejected *)
  shards : int;  (** 0 for a single-file journal *)
  torn : int;  (** torn/corrupt tails dropped (0 or 1 for a file) *)
  quarantine : Octopocs.quarantine list;  (** deduped, sorted by label *)
  telemetry : Telemetry.replay option;
}

(* -- loading ----------------------------------------------------------- *)

let verdicts_of_records records =
  let tbl : (string, string * Octopocs.report) Hashtbl.t = Hashtbl.create 31 in
  let undecodable = ref 0 in
  List.iter
    (fun payload ->
      match Octopocs.decode_result payload with
      | Some (label, key, rep) -> Hashtbl.replace tbl label (key, rep)
      | None -> incr undecodable)
    records;
  let entries =
    Octopocs.sort_dump (Hashtbl.fold (fun l (k, rep) acc -> (l, k, rep) :: acc) tbl [])
  in
  (entries, !undecodable)

let quarantine_of_path path =
  if not (Sys.file_exists path) then []
  else begin
    let tbl : (string, Octopocs.quarantine) Hashtbl.t = Hashtbl.create 7 in
    List.iter
      (fun payload ->
        match Octopocs.decode_quarantine payload with
        | Some q -> Hashtbl.replace tbl q.Octopocs.qlabel q
        | None -> ())
      (Journal.replay path).Journal.records;
    Hashtbl.fold (fun _ q acc -> q :: acc) tbl []
    |> List.sort (fun (a : Octopocs.quarantine) b ->
           compare a.Octopocs.qlabel b.Octopocs.qlabel)
  end

let of_files ~journal ?telemetry () : (t, string) result =
  if not (Sys.file_exists journal) then Error (Printf.sprintf "no such journal: %s" journal)
  else begin
    let loaded =
      if Sys.is_directory journal then
        match Journal.Sharded.replay_merged journal with
        | exception Failure msg -> Error msg
        | m ->
            Ok
              ( m.Journal.Sharded.mrecords,
                m.Journal.Sharded.mshards,
                m.Journal.Sharded.mtorn,
                quarantine_of_path (Filename.concat journal "quarantine.jrnl") )
      else
        let r = Journal.replay journal in
        Ok (r.Journal.records, 0, (if r.Journal.torn then 1 else 0), [])
    in
    match loaded with
    | Error msg -> Error msg
    | Ok (records, shards, torn, quarantine) ->
        let verdicts, undecodable = verdicts_of_records records in
        let telemetry =
          match telemetry with
          | None -> None
          | Some p ->
              if Sys.file_exists p then Some (Telemetry.replay p)
              else Some { Telemetry.samples = []; undecodable = 0; torn = false }
        in
        Ok { verdicts; undecodable; shards; torn; quarantine; telemetry }
  end

(* -- aggregation helpers ----------------------------------------------- *)

(* Fold occurrences into sorted (key, count) rows — the one shape every
   breakdown below shares.  Sorting by key (not count) is a determinism
   rule: counts tie, names don't. *)
let tally xs =
  let tbl : (string, int) Hashtbl.t = Hashtbl.create 7 in
  List.iter
    (fun k -> Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
    xs;
  Hashtbl.fold (fun k n acc -> (k, n) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let classes = [ "Type-I"; "Type-II"; "Type-III"; "Failure" ]

(* -- rendering --------------------------------------------------------- *)

let render (r : t) : string =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "octopocs run report";
  line "===================";
  line "";
  line "verdicts: %d pair(s)%s%s%s" (List.length r.verdicts)
    (if r.shards > 0 then Printf.sprintf " across %d shard(s)" r.shards else "")
    (if r.undecodable > 0 then Printf.sprintf ", %d undecodable record(s)" r.undecodable
     else "")
    (if r.torn > 0 then Printf.sprintf ", %d torn tail(s) dropped" r.torn else "");
  let by_class =
    tally (List.map (fun (_, _, rep) -> Octopocs.verdict_class rep.Octopocs.verdict) r.verdicts)
  in
  List.iter
    (fun c ->
      match List.assoc_opt c by_class with
      | Some n -> line "  %-22s %6d" c n
      | None -> ())
    classes;
  (* A journal written by a future release may class verdicts we don't
     know; surface them rather than silently dropping the count. *)
  List.iter
    (fun (c, n) -> if not (List.mem c classes) then line "  %-22s %6d" c n)
    by_class;
  line "";
  line "degradation rungs:";
  let rungs =
    tally (List.concat_map (fun (_, _, rep) -> rep.Octopocs.degradations) r.verdicts)
  in
  if rungs = [] then line "  (none)"
  else List.iter (fun (rung, n) -> line "  %-22s %6d" rung n) rungs;
  line "";
  line "quarantine: %d pair(s)" (List.length r.quarantine);
  List.iter
    (fun (reason, n) -> line "  %-22s %6d" reason n)
    (tally (List.map (fun (q : Octopocs.quarantine) -> q.Octopocs.qreason) r.quarantine));
  line "";
  line "phase latencies (p50/p90/p99 ns, log2-bucket lower bounds):";
  let snaps = List.filter_map (fun (_, _, rep) -> rep.Octopocs.metrics) r.verdicts in
  if snaps = [] then line "  (no metrics journaled)"
  else begin
    let sum = Metrics.sum snaps in
    List.iter
      (fun p ->
        match Metrics.percentile sum p 50.0 with
        | None -> line "  %-10s (no spans)" (Metrics.phase_name p)
        | Some p50 ->
            let pc pct = Option.value ~default:0 (Metrics.percentile sum p pct) in
            line "  %-10s %10d / %10d / %10d  (%d span(s))" (Metrics.phase_name p) p50
              (pc 90.0) (pc 99.0) (Metrics.phase_spans sum p))
      Metrics.all_phases
  end;
  (match r.telemetry with
  | None -> ()
  | Some t ->
      line "";
      line "telemetry: %d sample(s)%s%s" (List.length t.Telemetry.samples)
        (if t.Telemetry.undecodable > 0 then
           Printf.sprintf ", %d undecodable frame(s)" t.Telemetry.undecodable
         else "")
        (if t.Telemetry.torn then ", torn tail dropped" else "");
      match (t.Telemetry.samples, List.rev t.Telemetry.samples) with
      | [], _ | _, [] -> ()
      | first :: _, last :: _ ->
          let s = last in
          line "  span                   %.3f s"
            (float_of_int (s.Telemetry.ts_ns - first.Telemetry.ts_ns) /. 1e9);
          line "  pulled/settled/quar    %d / %d / %d" s.Telemetry.pulled s.Telemetry.settled
            s.Telemetry.quarantined;
          line "  retries/stalls         %d / %d" s.Telemetry.retries s.Telemetry.stalls;
          line "  backoffs/deferrals     %d / %d" s.Telemetry.backoffs s.Telemetry.deferrals;
          let peak f = List.fold_left (fun acc x -> max acc (f x)) 0 t.Telemetry.samples in
          line "  peak rss (parent)      %d KiB" (peak (fun x -> x.Telemetry.rss_kb));
          line "  peak rss (child max)   %d KiB" (peak (fun x -> x.Telemetry.child_rss_kb));
          line "  peak in-flight         %d of window %d"
            (peak (fun x -> x.Telemetry.in_flight))
            (peak (fun x -> x.Telemetry.window));
          (* Throughput curve: overall rate plus the steepest inter-sample
             segment — enough to see a run that front-loaded or stalled. *)
          let span_s = float_of_int (s.Telemetry.ts_ns - first.Telemetry.ts_ns) /. 1e9 in
          if span_s > 0. && s.Telemetry.settled > first.Telemetry.settled then begin
            line "  throughput (overall)   %.1f pairs/s"
              (float_of_int (s.Telemetry.settled - first.Telemetry.settled) /. span_s);
            let best = ref 0. in
            ignore
              (List.fold_left
                 (fun prev x ->
                   (match prev with
                   | Some (p : Telemetry.sample) when x.Telemetry.ts_ns > p.Telemetry.ts_ns
                     ->
                       let rate =
                         float_of_int (x.Telemetry.settled - p.Telemetry.settled)
                         /. (float_of_int (x.Telemetry.ts_ns - p.Telemetry.ts_ns) /. 1e9)
                       in
                       if rate > !best then best := rate
                   | _ -> ());
                   Some x)
                 None t.Telemetry.samples);
            line "  throughput (peak)      %.1f pairs/s" !best
          end);
  Buffer.contents b

let of_files_rendered ~journal ?telemetry () =
  match of_files ~journal ?telemetry () with
  | Error msg -> Error msg
  | Ok r -> Ok (render r)
