(** A small fixed-size worker pool over OCaml 5 domains.

    Built for corpus-level parallelism: verifying hundreds of (S, T) pairs
    is embarrassingly parallel, each job being CPU-bound and touching only
    its own state.  The pool spawns [jobs] domains once and feeds them
    through a mutex-guarded queue, so batch after batch reuses the same
    domains instead of paying spawn cost per task.

    Jobs must not share mutable state unless they synchronize themselves;
    the pipeline satisfies this because every [Octopocs.run] builds its own
    stores, states and memories (the one shared structure, the CFG build
    cache, takes its own lock). *)

type task = unit -> unit

type t = {
  jobs : int;
  q : task Queue.t;
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
  mutable workers : unit Domain.t array;
}

let rec worker_loop pool =
  Mutex.lock pool.lock;
  while Queue.is_empty pool.q && not pool.closed do
    Condition.wait pool.nonempty pool.lock
  done;
  if Queue.is_empty pool.q then Mutex.unlock pool.lock (* closed and drained *)
  else begin
    let task = Queue.pop pool.q in
    Mutex.unlock pool.lock;
    (try task () with _ -> ());
    worker_loop pool
  end

(** [effective_jobs n] clamps a requested worker count to what the machine
    can actually run in parallel.  Oversubscribing domains is a measured
    pessimization for allocation-heavy work — minor collections are
    stop-the-world across all domains, so extra domains on the same core
    multiply GC synchronizations without adding compute. *)
let effective_jobs n = max 1 (min n (Domain.recommended_domain_count ()))

(** [create ~jobs] spawns a pool of [effective_jobs jobs] worker domains. *)
let create ~jobs =
  let jobs = effective_jobs jobs in
  let pool =
    {
      jobs;
      q = Queue.create ();
      lock = Mutex.create ();
      nonempty = Condition.create ();
      closed = false;
      workers = [||];
    }
  in
  pool.workers <- Array.init jobs (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

(** [submit pool task] enqueues a unit task.  Exceptions escaping the task
    are swallowed by the worker; wrap the task if you need them. *)
let submit pool task =
  Mutex.lock pool.lock;
  if pool.closed then begin
    Mutex.unlock pool.lock;
    invalid_arg "Pool.submit: pool is shut down"
  end
  else begin
    Queue.add task pool.q;
    Condition.signal pool.nonempty;
    Mutex.unlock pool.lock
  end

(** [shutdown pool] drains outstanding tasks and joins every worker. *)
let shutdown pool =
  Mutex.lock pool.lock;
  pool.closed <- true;
  Condition.broadcast pool.nonempty;
  Mutex.unlock pool.lock;
  Array.iter Domain.join pool.workers;
  pool.workers <- [||]

(** [map pool f items] applies [f] to every item on the pool's workers and
    returns the results in input order.  The first exception raised by any
    [f] is re-raised in the caller once all items have settled. *)
let map pool f items =
  let arr = Array.of_list items in
  let n = Array.length arr in
  if n = 0 then []
  else begin
    let out = Array.make n None in
    let remaining = ref n in
    let lock = Mutex.create () in
    let all_done = Condition.create () in
    Array.iteri
      (fun i x ->
        submit pool (fun () ->
            let r = try Stdlib.Ok (f x) with e -> Stdlib.Error e in
            Mutex.lock lock;
            out.(i) <- Some r;
            decr remaining;
            if !remaining = 0 then Condition.broadcast all_done;
            Mutex.unlock lock))
      arr;
    Mutex.lock lock;
    while !remaining > 0 do
      Condition.wait all_done lock
    done;
    Mutex.unlock lock;
    Array.to_list out
    |> List.map (function
         | Some (Stdlib.Ok v) -> v
         | Some (Stdlib.Error e) -> raise e
         | None -> assert false)
  end

(** [parallel_map ~jobs f items] is a one-shot [create]/[map]/[shutdown].
    With an effective worker count of 1 it degrades to [List.map] with no
    domain spawned. *)
let parallel_map ~jobs f items =
  if effective_jobs jobs <= 1 then List.map f items
  else begin
    let pool = create ~jobs in
    Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> map pool f items)
  end
