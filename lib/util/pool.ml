(** A small fixed-size worker pool over OCaml 5 domains.

    Built for corpus-level parallelism: verifying hundreds of (S, T) pairs
    is embarrassingly parallel, each job being CPU-bound and touching only
    its own state.  The pool spawns [jobs] domains once and feeds them
    through a mutex-guarded queue, so batch after batch reuses the same
    domains instead of paying spawn cost per task.

    Crash isolation: {!map_result} settles every item to a [result], so one
    raising job never forfeits the completed work of its batch-mates, and a
    bounded per-task retry absorbs transient faults.  Exceptions escaping a
    raw {!submit} task are logged (never silently swallowed) and the worker
    keeps serving.

    Jobs must not share mutable state unless they synchronize themselves;
    the pipeline satisfies this because every [Octopocs.run] builds its own
    stores, states and memories (the one shared structure, the CFG build
    cache, takes its own lock). *)

type task = unit -> unit

type t = {
  jobs : int;
  q : task Queue.t;
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
  mutable workers : unit Domain.t array;
}

let rec worker_loop pool =
  Mutex.lock pool.lock;
  while Queue.is_empty pool.q && not pool.closed do
    Condition.wait pool.nonempty pool.lock
  done;
  if Queue.is_empty pool.q then Mutex.unlock pool.lock (* closed and drained *)
  else begin
    let task = Queue.pop pool.q in
    Mutex.unlock pool.lock;
    (try task ()
     with e ->
       (* A worker must survive any task, but a crash must never be
          invisible: report it with its backtrace before moving on. *)
       let bt = Printexc.get_raw_backtrace () in
       Logs.err (fun m ->
           m "Pool: worker task raised %s@.%s" (Printexc.to_string e)
             (Printexc.raw_backtrace_to_string bt)));
    worker_loop pool
  end

(** [effective_jobs n] clamps a requested worker count to what the machine
    can actually run in parallel.  Oversubscribing domains is a measured
    pessimization for allocation-heavy work — minor collections are
    stop-the-world across all domains, so extra domains on the same core
    multiply GC synchronizations without adding compute. *)
let effective_jobs n = max 1 (min n (Domain.recommended_domain_count ()))

(** [create ~jobs] spawns a pool of [effective_jobs jobs] worker domains. *)
let create ~jobs =
  let jobs = effective_jobs jobs in
  let pool =
    {
      jobs;
      q = Queue.create ();
      lock = Mutex.create ();
      nonempty = Condition.create ();
      closed = false;
      workers = [||];
    }
  in
  pool.workers <- Array.init jobs (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

(** [submit pool task] enqueues a unit task.  Raises [Invalid_argument]
    once the pool is shut down; the check and the enqueue are one critical
    section, so a submit racing an in-flight {!shutdown} either lands the
    task before the close (and it runs: workers drain the queue on
    shutdown) or observes [closed] and raises — it can never deadlock or
    drop the task silently.  Exceptions escaping the task are logged by the
    worker; wrap the task if you need them. *)
let submit pool task =
  Mutex.lock pool.lock;
  if pool.closed then begin
    Mutex.unlock pool.lock;
    invalid_arg "Pool.submit: pool is shut down"
  end
  else begin
    Queue.add task pool.q;
    Condition.signal pool.nonempty;
    Mutex.unlock pool.lock
  end

(** [shutdown pool] drains outstanding tasks and joins every worker.
    Idempotent and safe to race: the worker array is claimed under the
    lock, so concurrent shutdowns join each domain exactly once. *)
let shutdown pool =
  Mutex.lock pool.lock;
  pool.closed <- true;
  let workers = pool.workers in
  pool.workers <- [||];
  Condition.broadcast pool.nonempty;
  Mutex.unlock pool.lock;
  Array.iter Domain.join workers

(* One task attempt with bounded retry: transient faults (a worker hiccup,
   an injected crash) get [retries] fresh attempts before the error is
   recorded; the final exception keeps its backtrace. *)
let run_task ~retries f x =
  let rec attempt k =
    match f x with
    | v -> Stdlib.Ok v
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        if k < retries then begin
          Logs.warn (fun m ->
              m "Pool: task raised %s; retrying (%d/%d)" (Printexc.to_string e) (k + 1) retries);
          attempt (k + 1)
        end
        else Stdlib.Error (e, bt)
  in
  attempt 0

(** [map_result ?retries pool f items] applies [f] to every item on the
    pool's workers and returns per-item results in input order: [Ok y] for
    items that succeeded, [Error (exn, backtrace)] for items whose every
    attempt raised.  One crashing item never discards its batch-mates'
    completed work.  [retries] (default 0) grants each item that many
    additional attempts. *)
let map_result ?(retries = 0) pool f items =
  let arr = Array.of_list items in
  let n = Array.length arr in
  if n = 0 then []
  else begin
    let out = Array.make n None in
    let remaining = ref n in
    let lock = Mutex.create () in
    let all_done = Condition.create () in
    Array.iteri
      (fun i x ->
        submit pool (fun () ->
            let r = run_task ~retries f x in
            Mutex.lock lock;
            out.(i) <- Some r;
            decr remaining;
            if !remaining = 0 then Condition.broadcast all_done;
            Mutex.unlock lock))
      arr;
    Mutex.lock lock;
    while !remaining > 0 do
      Condition.wait all_done lock
    done;
    Mutex.unlock lock;
    Array.to_list out
    |> List.map (function Some r -> r | None -> assert false)
  end

(** [map pool f items] is {!map_result} that re-raises the first (in input
    order) error once all items have settled, with its original
    backtrace. *)
let map pool f items =
  map_result pool f items
  |> List.map (function
       | Stdlib.Ok v -> v
       | Stdlib.Error (e, bt) -> Printexc.raise_with_backtrace e bt)

(** [parallel_map_result ~jobs ?retries f items] is a one-shot
    [create]/[map_result]/[shutdown].  With an effective worker count of 1
    it runs serially in the calling domain with identical result/retry
    semantics and no domain spawned. *)
let parallel_map_result ~jobs ?(retries = 0) f items =
  if effective_jobs jobs <= 1 then List.map (run_task ~retries f) items
  else begin
    let pool = create ~jobs in
    Fun.protect
      ~finally:(fun () -> shutdown pool)
      (fun () -> map_result ~retries pool f items)
  end

(** [parallel_map ~jobs f items] is a one-shot [create]/[map]/[shutdown].
    With an effective worker count of 1 it degrades to [List.map] with no
    domain spawned. *)
let parallel_map ~jobs f items =
  if effective_jobs jobs <= 1 then List.map f items
  else begin
    let pool = create ~jobs in
    Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> map pool f items)
  end
