(** A small fixed-size worker pool over OCaml 5 domains.

    Built for corpus-level parallelism: verifying hundreds of (S, T) pairs
    is embarrassingly parallel, each job being CPU-bound and touching only
    its own state.  The pool spawns [jobs] domains once and feeds them
    through a mutex-guarded queue, so batch after batch reuses the same
    domains instead of paying spawn cost per task.

    Crash isolation: {!map_result} settles every item to a [result], so one
    raising job never forfeits the completed work of its batch-mates, and a
    bounded per-task retry absorbs transient faults.  Exceptions escaping a
    raw {!submit} task are logged (never silently swallowed) and the worker
    keeps serving.

    Stall supervision: with [?stall_grace_s], {!map_result} runs a heartbeat
    watchdog.  Every attempt stamps a monotonic heartbeat ({!Deadline}'s
    clock) when it starts — and may refresh it with {!heartbeat} — and a
    supervisor domain requeues any task silent past the grace period under
    the same retry accounting as a crash, so one wedged worker no longer
    stalls the whole batch.  A superseded attempt that eventually finishes
    is discarded (first settled result wins) and its late failure does not
    consume a retry.

    Jobs must not share mutable state unless they synchronize themselves;
    the pipeline satisfies this because every [Octopocs.run] builds its own
    stores, states and memories (the one shared structure, the CFG build
    cache, takes its own lock). *)

type task = unit -> unit

(* Run queues are sharded work-stealing style: every worker owns a local
   run queue fed by tasks submitted *from* that worker (speculative
   futures, nested fan-out), while external submitters land on a global
   injection queue.  An idle worker drains its own queue first, then the
   injection queue, then steals from its siblings — so intra-pair
   parallelism spawned by a busy worker spreads to idle domains without
   funnelling every push through one hot mutex.  Each queue has its own
   lock; [lock]/[nonempty] only coordinate sleep and shutdown, with
   [navail] (total queued tasks) deciding whether sleeping is allowed. *)
type t = {
  pool_id : int;
  jobs : int;
  global : task Queue.t;            (* injection queue: external submits *)
  locals : task Queue.t array;      (* per-worker run queues *)
  qlocks : Mutex.t array;           (* 0..jobs-1 guard locals, [jobs] guards global *)
  lock : Mutex.t;                   (* sleep/shutdown coordination *)
  nonempty : Condition.t;
  navail : int Atomic.t;
  mutable closed : bool;
  mutable workers : unit Domain.t array;
}

let next_pool_id = Atomic.make 0

(* Which pool (by id) and worker slot the current domain belongs to; lets
   [submit] route worker-originated tasks to the worker's own queue. *)
let wid_key : (int * int) option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let pop_queue pool i =
  Mutex.lock pool.qlocks.(i);
  let q = if i = pool.jobs then pool.global else pool.locals.(i) in
  let t = if Queue.is_empty q then None else Some (Queue.pop q) in
  Mutex.unlock pool.qlocks.(i);
  if t <> None then Atomic.decr pool.navail;
  t

(* Take order for worker [id]: own queue, injection queue, steal from
   siblings (cyclically from the next slot, so victims are spread). *)
let take_task pool id =
  match pop_queue pool id with
  | Some _ as t -> t
  | None -> (
      match pop_queue pool pool.jobs with
      | Some _ as t -> t
      | None ->
          let rec steal k =
            if k >= pool.jobs - 1 then None
            else
              match pop_queue pool ((id + 1 + k) mod pool.jobs) with
              | Some _ as t -> t
              | None -> steal (k + 1)
          in
          steal 0)

(* Any-queue scan for non-worker helpers ({!await}): injection queue
   first, then every local queue. *)
let take_any pool =
  match pop_queue pool pool.jobs with
  | Some _ as t -> t
  | None ->
      let rec scan i =
        if i >= pool.jobs then None
        else match pop_queue pool i with Some _ as t -> t | None -> scan (i + 1)
      in
      scan 0

let run_logged task =
  try task ()
  with e ->
    (* A worker must survive any task, but a crash must never be
       invisible: report it with its backtrace before moving on. *)
    let bt = Printexc.get_raw_backtrace () in
    Log.err (fun m ->
        m "Pool: worker task raised %s@.%s" (Printexc.to_string e)
          (Printexc.raw_backtrace_to_string bt))

let rec worker_loop pool id =
  match take_task pool id with
  | Some task ->
      run_logged task;
      worker_loop pool id
  | None ->
      Mutex.lock pool.lock;
      (* Sleep only when no task exists anywhere; submitters signal while
         holding [lock], so the check-then-wait cannot miss a wakeup. *)
      if Atomic.get pool.navail = 0 && not pool.closed then
        Condition.wait pool.nonempty pool.lock;
      let stop = pool.closed && Atomic.get pool.navail = 0 in
      Mutex.unlock pool.lock;
      if not stop then worker_loop pool id

(** [effective_jobs n] clamps a requested worker count to what the machine
    can actually run in parallel.  Oversubscribing domains is a measured
    pessimization for allocation-heavy work — minor collections are
    stop-the-world across all domains, so extra domains on the same core
    multiply GC synchronizations without adding compute. *)
let effective_jobs n = max 1 (min n (Domain.recommended_domain_count ()))

(* Pool construction without the core-count clamp, for the one caller that
   is allowed to oversubscribe (the stall watchdog, which needs a second
   worker to make progress past a wedged task even on a 1-core machine). *)
let create_unclamped ~jobs =
  let pool =
    {
      pool_id = Atomic.fetch_and_add next_pool_id 1;
      jobs;
      global = Queue.create ();
      locals = Array.init jobs (fun _ -> Queue.create ());
      qlocks = Array.init (jobs + 1) (fun _ -> Mutex.create ());
      lock = Mutex.create ();
      nonempty = Condition.create ();
      navail = Atomic.make 0;
      closed = false;
      workers = [||];
    }
  in
  pool.workers <-
    Array.init jobs (fun id ->
        Domain.spawn (fun () ->
            Domain.DLS.set wid_key (Some (pool.pool_id, id));
            worker_loop pool id));
  pool

(** [create ~jobs] spawns a pool of [effective_jobs jobs] worker domains. *)
let create ~jobs = create_unclamped ~jobs:(effective_jobs jobs)

(** [submit pool task] enqueues a unit task.  Raises [Invalid_argument]
    once the pool is shut down; the closed check and the enqueue happen
    under the coordination lock, so a submit racing an in-flight
    {!shutdown} either lands the task before the close (and it runs:
    workers drain the queues on shutdown) or observes [closed] and raises
    — it can never deadlock or drop the task silently.  A submit from one
    of the pool's own workers lands on that worker's local queue
    (stealable by idle siblings); everyone else lands on the injection
    queue.  Exceptions escaping the task are logged by the worker; wrap
    the task if you need them. *)
let submit pool task =
  Mutex.lock pool.lock;
  if pool.closed then begin
    Mutex.unlock pool.lock;
    invalid_arg "Pool.submit: pool is shut down"
  end
  else begin
    let slot =
      match Domain.DLS.get wid_key with
      | Some (pid, id) when pid = pool.pool_id -> id
      | _ -> pool.jobs
    in
    Mutex.lock pool.qlocks.(slot);
    Queue.add task (if slot = pool.jobs then pool.global else pool.locals.(slot));
    Mutex.unlock pool.qlocks.(slot);
    Atomic.incr pool.navail;
    Condition.signal pool.nonempty;
    Mutex.unlock pool.lock
  end

(** [shutdown pool] drains outstanding tasks and joins every worker.
    Idempotent and safe to race: the worker array is claimed under the
    lock, so concurrent shutdowns join each domain exactly once. *)
let shutdown pool =
  Mutex.lock pool.lock;
  pool.closed <- true;
  let workers = pool.workers in
  pool.workers <- [||];
  Condition.broadcast pool.nonempty;
  Mutex.unlock pool.lock;
  Array.iter Domain.join workers

(* ------------------------------------------------------------------ *)
(* Futures with helping await. *)

type 'a fstate = Fpending | Fdone of ('a, exn * Printexc.raw_backtrace) result

type 'a future = {
  flock : Mutex.t;
  fcond : Condition.t;
  mutable fstate : 'a fstate;
}

(** [future pool f] submits [f] and returns a handle to its eventual
    result.  The task's exception (if any) is captured with its backtrace
    and surfaces at {!await} — never through the worker's crash log. *)
let future pool f =
  let fut = { flock = Mutex.create (); fcond = Condition.create (); fstate = Fpending } in
  submit pool (fun () ->
      let r =
        match f () with
        | v -> Stdlib.Ok v
        | exception e -> Stdlib.Error (e, Printexc.get_raw_backtrace ())
      in
      Mutex.lock fut.flock;
      fut.fstate <- Fdone r;
      Condition.broadcast fut.fcond;
      Mutex.unlock fut.flock);
  fut

(** [await pool fut] blocks until [fut] settles, HELPING while it waits:
    as long as the future is pending and any task is queued, the awaiting
    domain pops and runs pool tasks itself.  This makes nested fan-out
    deadlock-free — a worker that spawns futures and awaits them executes
    its own children when no sibling is idle (on a 1-core machine the
    whole construction degenerates to ordinary serial calls).  Sleeping is
    safe only once every queue is empty: the future's task is then
    necessarily running on some domain and will signal completion. *)
let await pool fut =
  let rec go () =
    Mutex.lock fut.flock;
    match fut.fstate with
    | Fdone r ->
        Mutex.unlock fut.flock;
        r
    | Fpending -> (
        Mutex.unlock fut.flock;
        match take_any pool with
        | Some task ->
            run_logged task;
            go ()
        | None ->
            Mutex.lock fut.flock;
            (match fut.fstate with
            | Fpending -> Condition.wait fut.fcond fut.flock
            | Fdone _ -> ());
            Mutex.unlock fut.flock;
            go ())
  in
  go ()

(* ------------------------------------------------------------------ *)
(* The process-shared pool. *)

let shared_ref : t option ref = ref None
let shared_lock = Mutex.create ()

(** [shared ()] is the lazily-created process-global pool, sized to the
    machine ([Domain.recommended_domain_count]) and shut down at exit.
    Intra-pair speculation uses it so every pipeline invocation draws on
    one fixed set of domains instead of spawning per call; batch drivers
    keep creating their own pools, so shared-pool tasks never displace a
    batch's pair tasks. *)
let shared () =
  Mutex.lock shared_lock;
  let p =
    match !shared_ref with
    | Some p -> p
    | None ->
        let p = create ~jobs:(Domain.recommended_domain_count ()) in
        shared_ref := Some p;
        at_exit (fun () -> shutdown p);
        p
  in
  Mutex.unlock shared_lock;
  p

(** [shutdown_shared ()] joins the shared pool's domains (no-op when it
    was never created) and forgets it, so a later {!shared} builds a
    fresh one.  The process sandbox calls this defensively before its
    first fork.  Note the stronger truth on OCaml 5.1: [Unix.fork] is
    refused permanently once any domain has EVER been spawned (the
    check latches — joining does not lift it), so forking drivers must
    run before the process's first domain; this shutdown only helps on
    runtimes that merely require a single-domain process at fork
    time. *)
let shutdown_shared () =
  Mutex.lock shared_lock;
  let p = !shared_ref in
  shared_ref := None;
  Mutex.unlock shared_lock;
  Option.iter shutdown p

(* ------------------------------------------------------------------ *)
(* Crash-retry backoff. *)

(** [backoff_delay ?base_s ?cap_s ~key ~attempt ()] is the capped
    exponential backoff before retry number [attempt] (1-based) of the task
    identified by [key]: [base_s * 2^(attempt-1)], capped at [cap_s], then
    scaled by a jitter factor in [0.5, 1.5) drawn from a splitmix64 stream
    seeded by [(key, attempt)].  Pure — the same (key, attempt) always
    yields the same delay — so retry schedules replay deterministically
    under the chaos harness while still decorrelating batch-mates that
    crash together (distinct keys jitter apart). *)
let backoff_delay ?(base_s = 0.002) ?(cap_s = 0.100) ~key ~attempt () =
  let a = max 1 (min attempt 16) in
  let d = Float.min cap_s (base_s *. Float.of_int (1 lsl (a - 1))) in
  let r = Rng.create (key lxor (attempt * 0x9E3779B9)) in
  let u = Float.of_int (Rng.int r 1_000_000) /. 1e6 in
  d *. (0.5 +. u)

(* Sleep the backoff for retry [attempt] of task [key] and count it. *)
let backoff_sleep ?base_s ?cap_s ~key ~attempt () =
  Metrics.incr Metrics.Pool_backoffs;
  Telemetry.note_backoff ();
  Unix.sleepf (backoff_delay ?base_s ?cap_s ~key ~attempt ())

(* One task attempt with bounded retry: transient faults (a worker hiccup,
   an injected crash) get [retries] fresh attempts before the error is
   recorded, each preceded by a capped exponential backoff (jittered by
   [bkey], the task's stable identity); the final exception keeps its
   backtrace. *)
let run_task ?(bkey = 0) ~retries f x =
  let rec attempt k =
    match f x with
    | v -> Stdlib.Ok v
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        if k < retries then begin
          Metrics.incr Metrics.Pool_retries;
          Telemetry.note_retry ();
          Log.warn (fun m ->
              m "Pool: task raised %s; retrying (%d/%d)" (Printexc.to_string e) (k + 1) retries);
          backoff_sleep ~key:bkey ~attempt:(k + 1) ();
          attempt (k + 1)
        end
        else Stdlib.Error (e, bt)
  in
  attempt 0

exception Stalled of string
(** A task that outlived the watchdog grace with no retries left.  The
    payload describes the silence (grace and attempt count) and — when
    earlier attempts of the same task raised *after* stamping their
    heartbeat — says so explicitly, so a crash-then-stall is
    distinguishable from a pure wedge in the structured failure.  There
    is no meaningful backtrace — the wedged attempt is still running
    somewhere. *)

let () =
  Printexc.register_printer (function
    | Stalled what -> Some (Printf.sprintf "Pool.Stalled(%s)" what)
    | _ -> None)

(* The refresher installed for the attempt currently running on this
   domain; [heartbeat] dispatches to it.  Outside a supervised attempt the
   refresher is a no-op, so library code may call [heartbeat] freely. *)
let hb_key : (unit -> unit) Domain.DLS.key = Domain.DLS.new_key (fun () -> fun () -> ())

(** [heartbeat ()] re-stamps the heartbeat of the supervised task running
    on the calling domain (no-op outside one).  Long cooperative tasks call
    this at natural progress points to tell the watchdog they are alive. *)
let heartbeat () = (Domain.DLS.get hb_key) ()

let run_settle_cb on_settle i r =
  match on_settle with
  | None -> ()
  | Some cb -> (
      try cb i r
      with e ->
        Log.err (fun m -> m "Pool: on_settle for item %d raised %s" i (Printexc.to_string e)))

(* Watchdog bookkeeping, one slot per item, all guarded by the map's lock.
   [wgen] is the current attempt's id: a requeue bumps it, turning the
   still-running attempt into a stale one whose failure no longer counts
   (its success still does — a correct result is a correct result). *)
type wd_slot = {
  mutable wstate : [ `Queued | `Running | `Settled ];
  mutable wstarted : int64;
  mutable wgen : int;
  mutable wattempts : int;  (* retries consumed, by crash or by stall *)
  mutable wsettling : bool; (* claim flag: holds the slot while the settle
                               callback runs outside the lock *)
  mutable wraised : int;    (* attempts that raised after their heartbeat
                               stamp (counted crash-retries only, so the
                               final Stalled message stays deterministic) *)
  mutable wlast_raise : string; (* printable exception of the last one *)
}

let map_result_watchdog ~retries ~grace ~on_settle pool f items =
  let arr = Array.of_list items in
  let n = Array.length arr in
  let grace_ns = Int64.of_float (grace *. 1e9) in
  let out = Array.make n None in
  let st =
    Array.init n (fun _ ->
        {
          wstate = `Queued;
          wstarted = 0L;
          wgen = 0;
          wattempts = 0;
          wsettling = false;
          wraised = 0;
          wlast_raise = "";
        })
  in
  let remaining = ref n in
  let lock = Mutex.create () in
  let all_done = Condition.create () in
  (* First settled result wins; late results of superseded attempts are
     discarded.  The callback runs outside the lock but before the item
     counts as done, so map_result cannot return under a live callback. *)
  let settle i r =
    let s = st.(i) in
    Mutex.lock lock;
    if s.wstate = `Settled || s.wsettling then begin
      Mutex.unlock lock;
      false
    end
    else begin
      s.wsettling <- true;
      Mutex.unlock lock;
      run_settle_cb on_settle i r;
      Mutex.lock lock;
      out.(i) <- Some r;
      s.wstate <- `Settled;
      decr remaining;
      if !remaining = 0 then Condition.broadcast all_done;
      Mutex.unlock lock;
      true
    end
  in
  let rec attempt i my_gen () =
    let s = st.(i) in
    Mutex.lock lock;
    if s.wstate = `Settled || s.wsettling || s.wgen <> my_gen then Mutex.unlock lock
    else begin
      s.wstate <- `Running;
      s.wstarted <- Deadline.monotonic_ns ();
      Mutex.unlock lock;
      Domain.DLS.set hb_key (fun () ->
          Mutex.lock lock;
          if s.wgen = my_gen && s.wstate = `Running then
            s.wstarted <- Deadline.monotonic_ns ();
          Mutex.unlock lock);
      let res =
        match f arr.(i) with
        | v -> Stdlib.Ok v
        | exception e -> Stdlib.Error (e, Printexc.get_raw_backtrace ())
      in
      Domain.DLS.set hb_key (fun () -> ());
      match res with
      | Stdlib.Ok _ -> ignore (settle i res)
      | Stdlib.Error (e, _) ->
          Mutex.lock lock;
          if s.wstate = `Settled || s.wsettling || s.wgen <> my_gen then begin
            (* Superseded by the watchdog: the fresh attempt owns the slot
               now, so this stale failure is discarded without consuming a
               retry.  Tagged distinctly from a live crash — this exception
               was raised after the attempt's heartbeat went silent. *)
            Mutex.unlock lock;
            Log.debug (fun m ->
                m
                  "Pool: task %d raised %s after its heartbeat went silent \
                   (attempt superseded; not a retry)"
                  i (Printexc.to_string e))
          end
          else if s.wattempts < retries then begin
            s.wattempts <- s.wattempts + 1;
            s.wraised <- s.wraised + 1;
            s.wlast_raise <- Printexc.to_string e;
            s.wgen <- s.wgen + 1;
            let g = s.wgen and a = s.wattempts in
            s.wstate <- `Queued;
            Mutex.unlock lock;
            Metrics.incr Metrics.Pool_retries;
            Telemetry.note_retry ();
            Log.warn (fun m ->
                m "Pool: task %d raised %s; retrying (%d/%d)" i (Printexc.to_string e) a
                  retries);
            (* Back off before requeueing: a transient fault (contended
               resource, injected crash burst) should not be re-hit
               immediately by every crashed batch-mate at once. *)
            backoff_sleep ~key:i ~attempt:a ();
            submit pool (attempt i g)
          end
          else begin
            Mutex.unlock lock;
            ignore (settle i res)
          end
    end
  in
  let supervisor =
    Domain.spawn (fun () ->
        let interval = Float.max 0.002 (Float.min (grace /. 4.) 0.05) in
        let rec watch () =
          Unix.sleepf interval;
          Mutex.lock lock;
          if !remaining = 0 then Mutex.unlock lock
          else begin
            let now = Deadline.monotonic_ns () in
            let requeues = ref [] in
            let stalls = ref [] in
            Array.iteri
              (fun i s ->
                if
                  s.wstate = `Running && (not s.wsettling)
                  && Int64.compare (Int64.sub now s.wstarted) grace_ns > 0
                then
                  if s.wattempts < retries then begin
                    s.wattempts <- s.wattempts + 1;
                    s.wgen <- s.wgen + 1;
                    s.wstate <- `Queued;
                    requeues := (i, s.wgen, s.wattempts) :: !requeues
                  end
                  else stalls := (i, s.wattempts, s.wraised, s.wlast_raise) :: !stalls)
              st;
            Mutex.unlock lock;
            List.iter
              (fun (i, g, a) ->
                Metrics.incr Metrics.Pool_retries;
                Telemetry.note_retry ();
                Log.warn (fun m ->
                    m "Pool: task %d silent past %.2fs grace; requeued (%d/%d)" i grace a
                      retries);
                submit pool (attempt i g))
              !requeues;
            List.iter
              (fun (i, a, raised, last_raise) ->
                (* Distinguish a pure wedge from a crash-then-stall: when
                   earlier attempts raised after stamping their heartbeat,
                   say so in the structured failure instead of reporting
                   only silence. *)
                let msg =
                  if raised = 0 then
                    Printf.sprintf "no heartbeat for %.2fs (attempt %d/%d)" grace (a + 1)
                      (retries + 1)
                  else
                    Printf.sprintf
                      "no heartbeat for %.2fs (attempt %d/%d); %d earlier attempt(s) \
                       crashed after their heartbeat, last: %s"
                      grace (a + 1) (retries + 1) raised last_raise
                in
                if settle i (Stdlib.Error (Stalled msg, Printexc.get_callstack 0)) then begin
                  Metrics.incr Metrics.Pool_stalls;
                  Telemetry.note_stall ();
                  Log.err (fun m -> m "Pool: task %d stalled; retries exhausted" i)
                end)
              !stalls;
            watch ()
          end
        in
        watch ())
  in
  Array.iteri (fun i _ -> submit pool (attempt i 0)) arr;
  Mutex.lock lock;
  while !remaining > 0 do
    Condition.wait all_done lock
  done;
  Mutex.unlock lock;
  Domain.join supervisor;
  Array.to_list out |> List.map (function Some r -> r | None -> assert false)

(** [map_result ?retries ?stall_grace_s ?on_settle pool f items] applies
    [f] to every item on the pool's workers and returns per-item results in
    input order: [Ok y] for items that succeeded, [Error (exn, backtrace)]
    for items whose every attempt raised.  One crashing item never discards
    its batch-mates' completed work.  [retries] (default 0) grants each
    item that many additional attempts.

    [on_settle i r] (if given) fires exactly once per item, from the worker
    that settled it, in completion order; [map_result] does not return
    until every callback has finished.  Callback exceptions are logged,
    never propagated.

    [stall_grace_s] arms the heartbeat watchdog: a task silent for longer
    is requeued under the same [retries] accounting, and once its attempts
    are exhausted it settles as [Error (Stalled _, _)].  The grace must
    comfortably exceed a healthy task's time between {!heartbeat}s (for the
    verification pipeline: its per-pair deadline). *)
let map_result ?(retries = 0) ?stall_grace_s ?on_settle pool f items =
  match (stall_grace_s, items) with
  | _, [] -> []
  | Some grace, _ -> map_result_watchdog ~retries ~grace ~on_settle pool f items
  | None, _ ->
      let arr = Array.of_list items in
      let n = Array.length arr in
      let out = Array.make n None in
      let remaining = ref n in
      let lock = Mutex.create () in
      let all_done = Condition.create () in
      Array.iteri
        (fun i x ->
          submit pool (fun () ->
              let r = run_task ~bkey:i ~retries f x in
              run_settle_cb on_settle i r;
              Mutex.lock lock;
              out.(i) <- Some r;
              decr remaining;
              if !remaining = 0 then Condition.broadcast all_done;
              Mutex.unlock lock))
        arr;
      Mutex.lock lock;
      while !remaining > 0 do
        Condition.wait all_done lock
      done;
      Mutex.unlock lock;
      Array.to_list out
      |> List.map (function Some r -> r | None -> assert false)

(** [map pool f items] is {!map_result} that re-raises the first (in input
    order) error once all items have settled, with its original
    backtrace. *)
let map pool f items =
  map_result pool f items
  |> List.map (function
       | Stdlib.Ok v -> v
       | Stdlib.Error (e, bt) -> Printexc.raise_with_backtrace e bt)

(** [parallel_map_result ~jobs ?retries ?stall_grace_s ?on_settle f items]
    is a one-shot [create]/[map_result]/[shutdown].  With an effective
    worker count of 1 it runs serially in the calling domain with identical
    result/retry/callback semantics and no domain spawned.

    Exception: a [stall_grace_s] with [jobs >= 2] overrides the core-count
    clamp — the watchdog needs a second worker to make progress past a
    wedged task, so on a small machine supervision is bought with domain
    oversubscription rather than silently disabled.  [jobs <= 1] keeps the
    serial path and an inert watchdog (a single worker cannot outrun its
    own wedge). *)
let parallel_map_result ~jobs ?(retries = 0) ?stall_grace_s ?on_settle f items =
  let workers =
    match stall_grace_s with
    | Some _ when jobs >= 2 -> max 2 (effective_jobs jobs)
    | _ -> effective_jobs jobs
  in
  if workers <= 1 then
    List.mapi
      (fun i x ->
        let r = run_task ~bkey:i ~retries f x in
        run_settle_cb on_settle i r;
        r)
      items
  else begin
    let pool = create_unclamped ~jobs:workers in
    Fun.protect
      ~finally:(fun () -> shutdown pool)
      (fun () -> map_result ~retries ?stall_grace_s ?on_settle pool f items)
  end

(** [parallel_map ~jobs f items] is a one-shot [create]/[map]/[shutdown].
    With an effective worker count of 1 it degrades to [List.map] with no
    domain spawned. *)
let parallel_map ~jobs f items =
  if effective_jobs jobs <= 1 then List.map f items
  else begin
    let pool = create ~jobs in
    Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> map pool f items)
  end
