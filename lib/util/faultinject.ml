(** Deterministic fault injection for the chaos harness.

    Each injection site is a point where production code asks "should a
    fault fire here?".  Decisions are drawn from splitmix64 streams — one
    independent stream per site, all derived from a single seed — so a
    schedule is a pure function of its seed: the same seed replays the same
    faults at the same draw positions regardless of how the surrounding
    batch is scheduled.  For that guarantee to hold across worker domains,
    give each job its own injector (the streams are mutable and
    unsynchronized by design; sharing one injector across domains trades
    determinism away).

    The default injector is {!none}: every check compiles to one tag test,
    so the sites cost nothing when the toggle is off.

    Sites:
    - {!Vm_syscall}: a MiniVM syscall fails mid-run (checked once per
      executed [Sys] instruction in {!Octo_vm.Interp}).
    - {!Solver_budget}: the model search starves, as if the node budget ran
      out ({!Octo_solver.Solve.solve} returns [Unknown]).
    - {!Worker_crash}: a synthetic exception escapes the job before the
      pipeline starts (checked in [Octopocs.run_all]'s worker wrapper).
    - {!Deadline_expiry}: an artificial deadline expiry at a pipeline phase
      boundary (raises {!Deadline.Deadline_exceeded}).
    - {!Journal_write}: a torn write during a write-ahead-journal append —
      only a prefix of the frame reaches the file before the "process dies"
      (checked in {!Journal.append}).
    - {!Worker_stall}: a worker wedges instead of crashing — the job sleeps
      past any watchdog grace before failing (checked in
      [Octopocs.run_all]'s worker wrapper, like {!Worker_crash}).
    - {!Child_segv}: a sandboxed worker process dies of SIGSEGV before
      producing a verdict (drawn by the parent supervisor before each
      fork, so retries advance the stream deterministically).
    - {!Child_oom_kill}: a sandboxed worker process is SIGKILLed as if by
      the kernel OOM killer (drawn like {!Child_segv}).  Both child sites
      are inert in Domain isolation — only the process sandbox checks
      them. *)

type site =
  | Vm_syscall
  | Solver_budget
  | Worker_crash
  | Deadline_expiry
  | Journal_write
  | Worker_stall
  | Child_segv
  | Child_oom_kill

exception Injected of string

let () =
  Printexc.register_printer (function
    | Injected what -> Some (Printf.sprintf "Injected(%s)" what)
    | _ -> None)

let all_sites =
  [
    Vm_syscall;
    Solver_budget;
    Worker_crash;
    Deadline_expiry;
    Journal_write;
    Worker_stall;
    Child_segv;
    Child_oom_kill;
  ]

(* The two child sites were appended at indices 6 and 7: [create] derives
   per-site streams from the master in index order, so appending (never
   reordering) keeps every pre-existing site's stream — and therefore
   every recorded chaos schedule — bit-identical across the change. *)
let nsites = 8

let site_index = function
  | Vm_syscall -> 0
  | Solver_budget -> 1
  | Worker_crash -> 2
  | Deadline_expiry -> 3
  | Journal_write -> 4
  | Worker_stall -> 5
  | Child_segv -> 6
  | Child_oom_kill -> 7

let site_name = function
  | Vm_syscall -> "vm-syscall"
  | Solver_budget -> "solver-budget"
  | Worker_crash -> "worker-crash"
  | Deadline_expiry -> "deadline-expiry"
  | Journal_write -> "journal-write"
  | Worker_stall -> "worker-stall"
  | Child_segv -> "child-segv"
  | Child_oom_kill -> "child-oom-kill"

(** [site_of_name name] maps a CLI-facing site name (e.g. ["child-segv"])
    back to its site; [None] for unknown names — the caller owns the
    user-facing error. *)
let site_of_name name = List.find_opt (fun s -> site_name s = name) all_sites

type t =
  | Off
  | On of {
      rates_ppm : int array;  (* per-site firing probability, parts/million *)
      streams : Rng.t array;  (* per-site independent splitmix64 streams *)
    }

let none = Off

let enabled = function Off -> false | On _ -> true

let ppm r = if r <= 0. then 0 else if r >= 1. then 1_000_000 else int_of_float (r *. 1e6)

(** [seed_for ~seed label] derives a per-pair injector seed from a batch
    seed and a pair label.  Registry pairs use integer indices mixed with a
    golden-ratio constant; corpus pairs have string labels, so this hashes
    the label bytes (FNV-1a, a fixed algorithm — NOT [Hashtbl.hash], whose
    output is not pinned across compiler versions) into the seed.  Stable
    across runs and processes, so killed-and-resumed corpus runs replay the
    same per-pair fault schedules. *)
let seed_for ~seed label =
  let h = ref 0x811C9DC5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x100000001B3 land max_int)
    label;
  seed lxor !h

(** [create ?rate ?site_rates ~seed ()] builds an injector whose every site
    fires with probability [rate] per check, overridden per-site by
    [site_rates].  A rate of [1.0] fires on every check (used by tests to
    force a specific fault), [0.0] never draws. *)
let create ?(rate = 0.01) ?(site_rates = []) ~seed () =
  let master = Rng.create seed in
  let streams = Array.init nsites (fun _ -> Rng.split master) in
  let rates_ppm = Array.make nsites (ppm rate) in
  List.iter (fun (s, r) -> rates_ppm.(site_index s) <- ppm r) site_rates;
  On { rates_ppm; streams }

(** [fire t site] draws the site's next decision.  Advances that site's
    stream (unless the site's rate is zero, which skips the draw). *)
let fire t site =
  match t with
  | Off -> false
  | On { rates_ppm; streams } ->
      let i = site_index site in
      rates_ppm.(i) > 0 && Rng.int streams.(i) 1_000_000 < rates_ppm.(i)

(** [maybe_raise t site ~what] fires the site and raises the fault it
    models: {!Deadline.Deadline_exceeded} for {!Deadline_expiry} (so the
    pipeline's deadline handling is exercised end-to-end), {!Injected}
    otherwise. *)
let maybe_raise t site ~what =
  if fire t site then
    match site with
    | Deadline_expiry -> raise (Deadline.Deadline_exceeded (what ^ " [injected]"))
    | _ -> raise (Injected (site_name site ^ ": " ^ what))
