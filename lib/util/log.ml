(* Leveled structured logging.

   One process-wide severity threshold behind an [Atomic]: a disabled
   call site costs a single atomic load plus an integer compare, the
   same budget as [Metrics]/[Trace].  Call sites use the message-thunk
   shape ([Log.warn (fun m -> m "fmt" args)]) so format arguments are
   never even evaluated below the threshold.

   Output goes to a pluggable sink (stderr by default, mutex-guarded so
   concurrent domains never interleave half-lines) and, optionally, to
   an append-only JSONL file for machine consumption.  The threshold is
   seeded from the [OCTOPOCS_LOG] environment variable at startup and
   can be overridden per run with [--log-level]. *)

type level = Error | Warn | Info | Debug

let severity = function Error -> 0 | Warn -> 1 | Info -> 2 | Debug -> 3
let level_name = function Error -> "error" | Warn -> "warn" | Info -> "info" | Debug -> "debug"

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "error" | "err" -> Some Error
  | "warn" | "warning" -> Some Warn
  | "info" -> Some Info
  | "debug" -> Some Debug
  | _ -> None

let all_levels = [ Error; Warn; Info; Debug ]

(* -- threshold --------------------------------------------------------- *)

let threshold = Atomic.make (severity Warn)

let set_level l = Atomic.set threshold (severity l)

let level () =
  match Atomic.get threshold with
  | 0 -> Error
  | 1 -> Warn
  | 2 -> Info
  | _ -> Debug

let enabled l = severity l <= Atomic.get threshold

let () =
  match Sys.getenv_opt "OCTOPOCS_LOG" with
  | None -> ()
  | Some s -> ( match level_of_string s with Some l -> set_level l | None -> ())

(* -- sinks ------------------------------------------------------------- *)

let lock = Mutex.create ()

let stderr_sink lvl msg = Printf.eprintf "octopocs: [%s] %s\n%!" (level_name lvl) msg

let sink : (level -> string -> unit) ref = ref stderr_sink
let set_sink f = Mutex.lock lock; sink := f; Mutex.unlock lock
let reset_sink () = set_sink stderr_sink

(* Optional machine-readable mirror: one JSON object per line, written
   regardless of which human sink is installed.  Timestamps are wall
   clock (operational logs correlate with the outside world; determinism
   lives in the journals, not here). *)
let jsonl : out_channel option ref = ref None

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let set_jsonl path =
  Mutex.lock lock;
  (match !jsonl with Some oc -> close_out_noerr oc | None -> ());
  jsonl := Some (open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path);
  Mutex.unlock lock

let close_jsonl () =
  Mutex.lock lock;
  (match !jsonl with Some oc -> close_out_noerr oc | None -> ());
  jsonl := None;
  Mutex.unlock lock

let output lvl msg =
  Mutex.lock lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock lock)
    (fun () ->
      !sink lvl msg;
      match !jsonl with
      | None -> ()
      | Some oc ->
          Printf.fprintf oc "{\"ts\":%.6f,\"level\":%S,\"msg\":\"%s\"}\n"
            (Unix.gettimeofday ()) (level_name lvl) (json_escape msg);
          flush oc)

(* -- call sites -------------------------------------------------------- *)

(* The thunk receives a printf-like [m]; nothing under the threshold is
   formatted or allocated beyond the closure itself. *)
type 'a msgf = (('a, Format.formatter, unit, unit) format4 -> 'a) -> unit

let log lvl (msgf : 'a msgf) =
  if severity lvl <= Atomic.get threshold then
    msgf (fun fmt -> Format.kasprintf (fun s -> output lvl s) fmt)

let err msgf = log Error msgf
let warn msgf = log Warn msgf
let info msgf = log Info msgf
let debug msgf = log Debug msgf
