(* Structured tracing: monotonic-clock spans, phase-tagged, nested via a
   per-domain span stack, emitted as JSONL compatible with Chrome's
   trace viewer (chrome://tracing or https://ui.perfetto.dev).

   File format: the first line is "[" and every following line is one
   complete JSON duration event ("ph":"B"/"E") terminated by a comma —
   the JSON-array framing Chrome's viewer accepts even without the
   closing "]", which lets the writer append one line per event and
   stay crash-tolerant (a torn final line is ignored by [validate_file]
   consumers only if they choose to; the writer itself never tears a
   line because each event is a single [output_string] under a lock).

   Timestamps are CLOCK_MONOTONIC microseconds ("ts", fractional), pid
   is the OS pid, tid is the OCaml domain id — so a parallel batch
   renders as one lane per pool worker.

   [with_span] is active when either the trace sink is open or metrics
   collection is on; when both are off it runs the thunk directly (one
   atomic load of overhead).  Every completed span also feeds the
   per-phase latency histogram in [Metrics].

   [enable]/[disable] must be called outside any open span (the CLI
   enables before a batch and disables after); toggling mid-span would
   emit unbalanced events. *)

type phase = Metrics.phase = Taint | Cfg | Symex | Solve | Combine | Verify

type sink = { oc : out_channel; path : string }

let lock = Mutex.create ()
let sink : sink option ref = ref None

(* Fast mirror of [!sink <> None] so [active] needs no mutex. *)
let sink_on = Atomic.make false

let enabled () = Atomic.get sink_on
let active () = Atomic.get sink_on || Metrics.is_on ()

let enable ~path =
  Mutex.lock lock;
  (match !sink with
  | Some s -> close_out_noerr s.oc
  | None -> ());
  let oc = open_out path in
  output_string oc "[\n";
  sink := Some { oc; path };
  Atomic.set sink_on true;
  Mutex.unlock lock

let disable () =
  Mutex.lock lock;
  (match !sink with
  | Some s ->
      (try flush s.oc with Sys_error _ -> ());
      close_out_noerr s.oc
  | None -> ());
  sink := None;
  Atomic.set sink_on false;
  Mutex.unlock lock

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let emit ~name ~cat ~ph ~ts_ns =
  Mutex.lock lock;
  (match !sink with
  | None -> ()
  | Some s ->
      let line =
        Printf.sprintf
          "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\",\"ts\":%.3f,\"pid\":%d,\"tid\":%d},\n"
          (json_escape name) (json_escape cat) ph
          (Int64.to_float ts_ns /. 1e3)
          (Unix.getpid ())
          (Domain.self () :> int)
      in
      output_string s.oc line);
  Mutex.unlock lock

(* -- span stack -------------------------------------------------------- *)

type frame = { fname : string; fphase : phase option; ft0 : int64 }

let stack_key : frame list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let depth () = List.length !(Domain.DLS.get stack_key)

let span_gen ~cat ~phase ~name f =
  if not (active ()) then f ()
  else begin
    let st = Domain.DLS.get stack_key in
    let t0 = Deadline.monotonic_ns () in
    if enabled () then emit ~name ~cat ~ph:'B' ~ts_ns:t0;
    st := { fname = name; fphase = phase; ft0 = t0 } :: !st;
    let finish () =
      let t1 = Deadline.monotonic_ns () in
      (match !st with _ :: tl -> st := tl | [] -> ());
      if enabled () then emit ~name ~cat ~ph:'E' ~ts_ns:t1;
      match phase with
      | Some p -> Metrics.observe_phase p (Int64.to_int (Int64.sub t1 t0))
      | None -> ()
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

(* A phase span: emitted under the phase's category so the trace viewer
   colours all six phases consistently, and observed into the metrics
   latency histogram for that phase. *)
let with_span phase name f =
  span_gen
    ~cat:(Metrics.phase_name phase)
    ~phase:(Some phase)
    ~name:(Metrics.phase_name phase ^ "." ^ name)
    f

(* A non-phase span (e.g. the per-pair envelope, cat "pair"): traced but
   not histogrammed. *)
let with_cat_span ~cat ~name f = span_gen ~cat ~phase:None ~name f

(* -- validation -------------------------------------------------------- *)

(* Schema checks for emitted trace files, used by tests and the `trace`
   CLI subcommand: every line after the "[" header is a duration event
   whose cat is one of the six phases or a known envelope category,
   begin/end events are balanced per tid with matching names (properly
   nested, LIFO), and timestamps are monotonically non-decreasing per
   tid. *)

type summary = {
  events : int;  (** total B/E events *)
  spans : int;  (** matched B/E pairs *)
  phases_covered : string list;  (** phase cats with >= 1 complete span *)
}

let allowed_cats =
  List.map Metrics.phase_name Metrics.all_phases @ [ "pair"; "batch" ]

exception Bad of string

(* Minimal field extraction: we only validate files this module wrote,
   so keys are unique per line and string values contain no unescaped
   quotes. *)
let field line key lineno =
  let pat = "\"" ^ key ^ "\":" in
  match
    let plen = String.length pat and n = String.length line in
    let rec find i =
      if i + plen > n then None
      else if String.sub line i plen = pat then Some (i + plen)
      else find (i + 1)
    in
    find 0
  with
  | None -> raise (Bad (Printf.sprintf "line %d: missing field %S" lineno key))
  | Some start ->
      let n = String.length line in
      if start < n && line.[start] = '"' then begin
        (* string value: scan to the next unescaped quote *)
        let b = Buffer.create 16 in
        let rec scan i =
          if i >= n then
            raise (Bad (Printf.sprintf "line %d: unterminated string" lineno))
          else if line.[i] = '\\' && i + 1 < n then begin
            Buffer.add_char b line.[i + 1];
            scan (i + 2)
          end
          else if line.[i] = '"' then Buffer.contents b
          else begin
            Buffer.add_char b line.[i];
            scan (i + 1)
          end
        in
        scan (start + 1)
      end
      else begin
        (* numeric value: scan to the next ',' or '}' *)
        let stop = ref start in
        while !stop < n && line.[!stop] <> ',' && line.[!stop] <> '}' do
          Stdlib.incr stop
        done;
        String.sub line start (!stop - start)
      end

let validate_file path =
  let ic = try Some (open_in path) with Sys_error _ -> None in
  match ic with
  | None -> Error (Printf.sprintf "cannot open %s" path)
  | Some ic -> (
      let finally () = close_in_noerr ic in
      let stacks : (int, (string * float) list ref) Hashtbl.t =
        Hashtbl.create 8
      in
      let last_ts : (int, float) Hashtbl.t = Hashtbl.create 8 in
      let events = ref 0 and spans = ref 0 in
      let covered : (string, unit) Hashtbl.t = Hashtbl.create 8 in
      let check () =
        let lineno = ref 0 in
        (try
           while true do
             let line = input_line ic in
             Stdlib.incr lineno;
             let ln = !lineno in
             let line = String.trim line in
             if line = "" || line = "[" || line = "]" then ()
             else begin
               let name = field line "name" ln in
               let cat = field line "cat" ln in
               let ph = field line "ph" ln in
               let ts =
                 let raw = field line "ts" ln in
                 match float_of_string_opt raw with
                 | Some f -> f
                 | None ->
                     raise
                       (Bad (Printf.sprintf "line %d: bad ts %S" ln raw))
               in
               let tid =
                 let raw = field line "tid" ln in
                 match int_of_string_opt raw with
                 | Some i -> i
                 | None ->
                     raise
                       (Bad (Printf.sprintf "line %d: bad tid %S" ln raw))
               in
               if not (List.mem cat allowed_cats) then
                 raise
                   (Bad (Printf.sprintf "line %d: unknown cat %S" ln cat));
               if name = "" then
                 raise (Bad (Printf.sprintf "line %d: empty name" ln));
               (match Hashtbl.find_opt last_ts tid with
               | Some prev when ts < prev ->
                   raise
                     (Bad
                        (Printf.sprintf
                           "line %d: non-monotonic ts on tid %d (%.3f after \
                            %.3f)"
                           ln tid ts prev))
               | _ -> ());
               Hashtbl.replace last_ts tid ts;
               let stack =
                 match Hashtbl.find_opt stacks tid with
                 | Some r -> r
                 | None ->
                     let r = ref [] in
                     Hashtbl.add stacks tid r;
                     r
               in
               (match ph with
               | "B" -> stack := (name, ts) :: !stack
               | "E" -> (
                   match !stack with
                   | [] ->
                       raise
                         (Bad
                            (Printf.sprintf
                               "line %d: end event %S on tid %d with no open \
                                span"
                               ln name tid))
                   | (top, _) :: rest ->
                       if top <> name then
                         raise
                           (Bad
                              (Printf.sprintf
                                 "line %d: end event %S does not match open \
                                  span %S on tid %d"
                                 ln name top tid));
                       stack := rest;
                       Stdlib.incr spans;
                       Hashtbl.replace covered cat ())
               | _ ->
                   raise
                     (Bad (Printf.sprintf "line %d: unknown ph %S" ln ph)));
               Stdlib.incr events
             end
           done
         with End_of_file -> ());
        Hashtbl.iter
          (fun tid stack ->
            match !stack with
            | [] -> ()
            | (name, _) :: _ ->
                raise
                  (Bad
                     (Printf.sprintf "unbalanced span %S left open on tid %d"
                        name tid)))
          stacks;
        let phases_covered =
          List.filter
            (fun p -> Hashtbl.mem covered p)
            (List.map Metrics.phase_name Metrics.all_phases)
        in
        { events = !events; spans = !spans; phases_covered }
      in
      match check () with
      | s ->
          finally ();
          Ok s
      | exception Bad msg ->
          finally ();
          Error msg
      | exception e ->
          finally ();
          Error (Printexc.to_string e))
