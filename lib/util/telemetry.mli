(** Run-health time-series sampler.

    Streaming drivers call {!tick} at their natural cadence points; at
    most once per interval a sample — throughput, pool health, memory,
    GC words, and (when {!Metrics} is collecting) per-phase latency
    histograms — is encoded as a versioned [OTL1] frame and appended to
    a write-ahead journal beside the verdict journal.  Disabled, every
    entry point costs one [Atomic.get]. *)

(** What the streaming driver knows at the moment of a tick. *)
type progress = {
  pulled : int;  (** pairs pulled from the source so far *)
  settled : int;  (** pairs settled (verdict journaled or reported) *)
  quarantined : int;  (** pairs given up on after the retry budget *)
  in_flight : int;  (** jobs currently running *)
  window : int;  (** in-flight window bound at this instant *)
}

type sample = {
  ts_ns : int;  (** monotonic ns since [enable] *)
  pulled : int;
  settled : int;
  quarantined : int;
  in_flight : int;
  window : int;
  retries : int;  (** crash/stall retries noted since [enable] *)
  stalls : int;  (** watchdog stall settlements since [enable] *)
  backoffs : int;  (** backoff sleeps since [enable] *)
  deferrals : int;  (** admission deferrals since [enable] *)
  rss_kb : int;  (** parent resident set, KiB (0 if /proc absent) *)
  child_rss_kb : int;  (** running max child maxrss, KiB *)
  minor_words : int;  (** [Gc.quick_stat] minor words, truncated *)
  major_words : int;  (** [Gc.quick_stat] major words, truncated *)
  metrics : Metrics.snapshot option;
      (** aggregate latency histograms at the tick; [None] while
          [Metrics] collection is off *)
}

val default_interval_ns : int
(** Sampling interval when [enable] is not given one (100 ms). *)

val enable : ?interval_ns:int -> path:string -> unit -> unit
(** Start sampling into a fresh journal at [path], resetting the
    relative clock and the pool-health accumulators. *)

val disable : unit -> unit
(** Stop sampling and close the journal.  Idempotent. *)

val is_on : unit -> bool

val tick : (unit -> progress) -> unit
(** Rate-limited sample point.  When enabled and an interval has
    elapsed since the last sample, calls the thunk and appends one
    frame; otherwise (or when disabled) does nothing.  The thunk is
    only evaluated when a sample is actually taken. *)

val sample_now : progress -> unit
(** Unconditional sample (when enabled): drivers call this once at
    stream end so even a sub-interval run leaves a final cut. *)

(** Pool-health accumulators, fed by the drivers at the same sites that
    bump the corresponding {!Metrics} counters but gated on this
    module's own flag — telemetry never requires metrics collection. *)

val note_retry : unit -> unit
val note_stall : unit -> unit
val note_backoff : unit -> unit
val note_deferral : unit -> unit

val note_child_rss : int -> unit
(** Record a reaped child's maxrss (KiB); keeps the running max. *)

(** {1 Codec} *)

val codec_version : string
(** ["OTL1"]. *)

val encode_sample : sample -> string

val decode_sample : string -> sample option
(** Total: [None] on any malformed payload, never raises. *)

type replay = {
  samples : sample list;  (** every decodable sample, in append order *)
  undecodable : int;  (** intact frames {!decode_sample} rejected *)
  torn : bool;  (** the file ended in a truncated/corrupt frame *)
}

val replay : string -> replay
(** Decode a telemetry journal; a missing file replays empty. *)

(** {1 Process memory} *)

val self_rss_kb : unit -> int
(** Parent resident set in KiB from /proc/self/statm; 0 where /proc is
    absent. *)
