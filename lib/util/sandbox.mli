(** Fork-based process isolation for verification jobs.

    Each job runs [f : unit -> string] in a forked child under optional
    [setrlimit] bounds and returns its payload over a length-framed,
    CRC-checked pipe (the journal's frame layout, so the decoder is
    total and torn-frame tolerant).  The parent classifies every way a
    child can die into a {!death}, and {!Admission} turns observed
    memory pressure into admission decisions for the streaming driver.

    Fork safety: OCaml 5.1 forbids [Unix.fork] permanently once any
    domain has ever been spawned in the process — the restriction
    latches; joining the domain does not lift it.  Process isolation
    must therefore be the process's FIRST parallel work: never run a
    Domain-mode batch before {!spawn} in the same process.
    {!Pool.shutdown_shared} is still called defensively before the
    first fork (it is the correct move on runtimes that only require a
    single-domain process at fork time). *)

type limits = {
  as_mb : int option;  (** RLIMIT_AS in MiB; [None] leaves it unbounded *)
  cpu_s : int option;
      (** RLIMIT_CPU soft limit in seconds (hard limit one second
          later), a backstop behind the cooperative deadline *)
}

val no_limits : limits

val oom_exit_code : int
(** Reserved exit code (77) a child converts [Out_of_memory] into; the
    handler must not allocate, so no message crosses the pipe. *)

val exn_prefix : string
(** ["OEXN1"] — prefix marking a frame payload as a transported child
    exception rather than a result. *)

(** Classification of a child's death, from its [wait4] status plus the
    state of its pipe frame. *)
type death =
  | Clean of string  (** exit 0 with a valid frame: the result payload *)
  | Child_exn of string
      (** exit 0 with an {!exn_prefix} frame: the child's exception,
          printed *)
  | Segv  (** killed by SIGSEGV (or SIGBUS) *)
  | Oom of string
      (** out of memory — own [Out_of_memory] under RLIMIT_AS, or
          SIGKILL attributed to the kernel OOM killer *)
  | Cpu  (** killed by SIGXCPU: RLIMIT_CPU expired *)
  | Deadline_kill  (** SIGKILLed by the parent at its wall-clock budget *)
  | Torn of string
      (** exited cleanly but the frame is missing, truncated or
          CRC-corrupt *)
  | Other of string  (** unexpected exit code or signal *)

val pp_death : Format.formatter -> death -> unit

val frame : string -> string
(** [frame payload] is the single wire frame a child writes:
    [[len:u32le][crc32(payload):u32le][payload]]. *)

val parse_frame : string -> (string, string) result
(** Total decoder for {!frame}; [Error why] describes the tear. *)

type child
(** A live supervised child process. *)

val pid : child -> int

val fd : child -> Unix.file_descr
(** Parent's non-blocking read end, for select loops. *)

val spawn :
  ?limits:limits ->
  ?kill_after_s:float ->
  ?die:[ `None | `Segv | `Oom_kill ] ->
  (unit -> string) ->
  child
(** Forks a child running [f]; [kill_after_s] arms the parent-side
    wall-clock kill, [die] is the pre-drawn fault injection (the child
    signals itself before doing any work). *)

val drain : child -> bool
(** Read everything currently in the pipe; [true] on EOF. *)

val kill : child -> unit
(** Idempotent SIGKILL; marks the child so {!reap} reports
    {!Deadline_kill}. *)

val deadline_expired : child -> bool

val reap : child -> death * int
(** Close the pipe, wait for the child (momentary — call only after EOF
    or {!kill}) and classify.  Also returns the child's max RSS in KiB
    for {!Admission.note_child_rss}. *)

val run_child :
  ?limits:limits ->
  ?kill_after_s:float ->
  ?die:[ `None | `Segv | `Oom_kill ] ->
  (unit -> string) ->
  death * int
(** One-shot spawn/supervise/classify for single-job callers. *)

(** Memory-pressure admission control for the streaming driver: a
    window that halves past a watermark (parent RSS + worst observed
    child RSS) and regrows one admission at a time below half the
    watermark. *)
module Admission : sig
  type t

  val create : ?watermark_mb:int -> ?probe:(unit -> int) -> window:int -> unit -> t
  (** No [watermark_mb] means pressure never shrinks the window —
      [admit] degrades to plain window backpressure.  [probe] overrides
      the parent-RSS reading (KiB): a test seam, since RSS cannot be
      lowered on demand ([Gc.compact] does not return memory to the OS
      on OCaml 5.1), which makes the regrow path unreachable from a
      real-RSS test. *)

  val self_rss_kb : t -> int
  (** Parent resident set from /proc/self/statm; 0 where /proc is
      absent. *)

  val note_child_rss : t -> int -> unit
  (** Record a reaped child's max RSS (KiB). *)

  val admit : t -> in_flight:int -> [ `Admit | `Defer of [ `Pressure | `Full ] ]
  (** Re-evaluate pressure, then answer. [`Defer `Pressure] means the
      window is currently shrunk below its configured size. *)

  val window : t -> int
  (** Current (possibly shrunk) window size. *)

  val worst_child_kb : t -> int
end
