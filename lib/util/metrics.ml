(* Lock-free per-domain metrics registry.

   Counters and per-phase latency histograms are recorded into
   domain-local cells (one flat record of int arrays per domain,
   allocated on first use through [Domain.DLS]).  The hot path is a
   single [Atomic.get] on the global enable flag plus plain array
   stores into the caller's own cell — no locks, no cross-domain
   contention.  The only mutex in the module guards the registry list,
   touched once per domain (cell creation) and on aggregation.

   Collection is disabled by default; every recording entry point
   checks [is_on] first so an instrumented-but-idle build costs one
   atomic load per call site.  Hooks in the pipeline are placed at
   run-end granularity (e.g. VM steps are added once per [Interp.run],
   not per instruction) so even the enabled cost is negligible.

   Snapshots are plain records of fresh int arrays, safe to Marshal
   (the journal codec persists one per verdict) and to diff: a scoped
   measurement is just [current () ] before and after, subtracted.

   Cells persist for the lifetime of their domain, so [aggregate]
   returns process-lifetime totals; callers wanting a per-batch view
   capture a snapshot before the batch and [diff] afterwards. *)

(* -- phases ------------------------------------------------------------ *)

type phase = Taint | Cfg | Symex | Solve | Combine | Verify

let nphases = 6
let all_phases = [ Taint; Cfg; Symex; Solve; Combine; Verify ]

let phase_index = function
  | Taint -> 0
  | Cfg -> 1
  | Symex -> 2
  | Solve -> 3
  | Combine -> 4
  | Verify -> 5

let phase_name = function
  | Taint -> "taint"
  | Cfg -> "cfg"
  | Symex -> "symex"
  | Solve -> "solve"
  | Combine -> "combine"
  | Verify -> "verify"

let phase_of_name = function
  | "taint" -> Some Taint
  | "cfg" -> Some Cfg
  | "symex" -> Some Symex
  | "solve" -> Some Solve
  | "combine" -> Some Combine
  | "verify" -> Some Verify
  | _ -> None

(* -- counters ---------------------------------------------------------- *)

type counter =
  | Vm_steps  (** instructions executed by [Interp.run] *)
  | Symex_states_forked  (** branch decisions taken by directed symex *)
  | Symex_states_pruned  (** branch directions refuted as unsat *)
  | Solver_nodes  (** search-tree nodes visited by [Solve.solve] *)
  | Constraint_adds  (** constraints pushed into solver stores *)
  | Cache_hits  (** CFG build-cache hits *)
  | Pool_retries  (** worker crash/stall retries (requeues) *)
  | Pool_stalls  (** tasks settled as Stalled by the watchdog *)
  | Pool_backoffs  (** backoff sleeps taken before a crash-retry *)
  | Admission_deferrals
      (** admissions deferred by the memory-pressure controller (the
          streaming driver shrank its in-flight window past a watermark) *)

let ncounters = 10

let all_counters =
  [
    Vm_steps;
    Symex_states_forked;
    Symex_states_pruned;
    Solver_nodes;
    Constraint_adds;
    Cache_hits;
    Pool_retries;
    Pool_stalls;
    Pool_backoffs;
    Admission_deferrals;
  ]

let counter_index = function
  | Vm_steps -> 0
  | Symex_states_forked -> 1
  | Symex_states_pruned -> 2
  | Solver_nodes -> 3
  | Constraint_adds -> 4
  | Cache_hits -> 5
  | Pool_retries -> 6
  | Pool_stalls -> 7
  | Pool_backoffs -> 8
  | Admission_deferrals -> 9

let counter_name = function
  | Vm_steps -> "vm-steps"
  | Symex_states_forked -> "symex-states-forked"
  | Symex_states_pruned -> "symex-states-pruned"
  | Solver_nodes -> "solver-nodes"
  | Constraint_adds -> "constraint-adds"
  | Cache_hits -> "cache-hits"
  | Pool_retries -> "pool-retries"
  | Pool_stalls -> "pool-stalls"
  | Pool_backoffs -> "pool-backoffs"
  | Admission_deferrals -> "admission-deferrals"

(* -- snapshots / cells ------------------------------------------------- *)

(* Latency histograms are log2-bucketed: bucket [i] counts spans whose
   duration in nanoseconds satisfies 2^i <= ns < 2^(i+1) (bucket 0 also
   absorbs sub-nanosecond readings).  32 buckets cover ~4.3 s in the top
   bucket's lower bound, far beyond any per-phase span here. *)
let nbuckets = 32

type snapshot = {
  counters : int array;  (** length [ncounters] *)
  phase_count : int array;  (** completed spans per phase *)
  phase_ns : int array;  (** total span nanoseconds per phase *)
  phase_hist : int array;  (** [nphases * nbuckets] log2 latency buckets *)
}

let zero () =
  {
    counters = Array.make ncounters 0;
    phase_count = Array.make nphases 0;
    phase_ns = Array.make nphases 0;
    phase_hist = Array.make (nphases * nbuckets) 0;
  }

let copy s =
  {
    counters = Array.copy s.counters;
    phase_count = Array.copy s.phase_count;
    phase_ns = Array.copy s.phase_ns;
    phase_hist = Array.copy s.phase_hist;
  }

let equal a b =
  a.counters = b.counters
  && a.phase_count = b.phase_count
  && a.phase_ns = b.phase_ns
  && a.phase_hist = b.phase_hist

(* A cell is just a snapshot mutated in place by its owning domain. *)
let on = Atomic.make false
let registry : snapshot list ref = ref []
let reg_lock = Mutex.create ()

let cell_key : snapshot Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let c = zero () in
      Mutex.lock reg_lock;
      registry := c :: !registry;
      Mutex.unlock reg_lock;
      c)

let is_on () = Atomic.get on
let enable () = Atomic.set on true
let disable () = Atomic.set on false

let add c n =
  if Atomic.get on && n <> 0 then begin
    let cell = Domain.DLS.get cell_key in
    let i = counter_index c in
    cell.counters.(i) <- cell.counters.(i) + n
  end

let incr c = add c 1

let bucket_of_ns ns =
  if ns <= 1 then 0
  else
    let b = ref 0 and v = ref ns in
    while !v > 1 do
      v := !v lsr 1;
      Stdlib.incr b
    done;
    if !b >= nbuckets then nbuckets - 1 else !b

let observe_phase p ns =
  if Atomic.get on then begin
    let cell = Domain.DLS.get cell_key in
    let i = phase_index p in
    cell.phase_count.(i) <- cell.phase_count.(i) + 1;
    cell.phase_ns.(i) <- cell.phase_ns.(i) + ns;
    let h = (i * nbuckets) + bucket_of_ns ns in
    cell.phase_hist.(h) <- cell.phase_hist.(h) + 1
  end

(* -- arithmetic -------------------------------------------------------- *)

let add_into dst src =
  let blit d s = Array.iteri (fun i v -> d.(i) <- d.(i) + v) s in
  blit dst.counters src.counters;
  blit dst.phase_count src.phase_count;
  blit dst.phase_ns src.phase_ns;
  blit dst.phase_hist src.phase_hist

let sum snaps =
  let acc = zero () in
  List.iter (add_into acc) snaps;
  acc

let diff a b =
  let d = copy a in
  let sub x y = Array.iteri (fun i v -> x.(i) <- x.(i) - v) y in
  sub d.counters b.counters;
  sub d.phase_count b.phase_count;
  sub d.phase_ns b.phase_ns;
  sub d.phase_hist b.phase_hist;
  d

(* -- views ------------------------------------------------------------- *)

let per_domain () =
  Mutex.lock reg_lock;
  let cells = !registry in
  Mutex.unlock reg_lock;
  List.map copy cells

let aggregate () = sum (per_domain ())

(* Snapshot of the calling domain's own cell. *)
let current () = copy (Domain.DLS.get cell_key)

(* Speculative-execution support.  [with_private f] runs [f] with this
   domain's recording redirected into a fresh cell that is NOT registered:
   nothing [f] records is visible to [aggregate], [current] or any
   enclosing [scoped] until a caller explicitly [absorb]s the returned
   snapshot.  This is how discarded speculative work stays invisible (its
   cell is simply dropped) while validated speculative work is credited to
   the consuming domain exactly once, reproducing the counters a serial
   run would have recorded. *)
let with_private f =
  let saved = Domain.DLS.get cell_key in
  let priv = zero () in
  Domain.DLS.set cell_key priv;
  let v = Fun.protect ~finally:(fun () -> Domain.DLS.set cell_key saved) f in
  (v, priv)

(* [absorb snap] adds [snap] into the calling domain's live cell (no-op
   while collection is off, mirroring every other recording entry
   point). *)
let absorb snap = if Atomic.get on then add_into (Domain.DLS.get cell_key) snap

(* [scoped f] measures the delta this domain records while running [f].
   Returns [None] for the delta when collection is off, so callers can
   store the option directly.  Deltas are per-domain: work [f] hands to
   other domains is not included (use [aggregate] diffs for that). *)
let scoped f =
  if not (Atomic.get on) then (f (), None)
  else begin
    let before = current () in
    let v = f () in
    (v, Some (diff (current ()) before))
  end

let counter_value s c = s.counters.(counter_index c)
let phase_spans s p = s.phase_count.(phase_index p)
let phase_total_ns s p = s.phase_ns.(phase_index p)

let phase_hist_bucket s p i =
  if i < 0 || i >= nbuckets then invalid_arg "Metrics.phase_hist_bucket";
  s.phase_hist.((phase_index p * nbuckets) + i)

(* [percentile s p pct] reads the pct-th percentile (0 < pct <= 100) of
   phase [p]'s span latencies off the log2 histogram: the lower bound
   [2^i] ns of the bucket holding the rank-⌈pct/100·total⌉ span, [None]
   when no spans were recorded.  Exact to within the bucket's 2x width,
   which is all a log2 histogram ever promises — but deterministic,
   allocation-free, and shared by the [--metrics] breakdown and the
   [report] aggregator so both quote identical numbers. *)
let percentile s p pct =
  if not (pct > 0. && pct <= 100.) then invalid_arg "Metrics.percentile";
  let base = phase_index p * nbuckets in
  let total = ref 0 in
  for i = 0 to nbuckets - 1 do
    total := !total + s.phase_hist.(base + i)
  done;
  if !total = 0 then None
  else begin
    let rank =
      let r = int_of_float (Float.ceil (pct /. 100. *. float_of_int !total)) in
      max 1 (min r !total)
    in
    let acc = ref 0 and found = ref 0 in
    (try
       for i = 0 to nbuckets - 1 do
         acc := !acc + s.phase_hist.(base + i);
         if !acc >= rank then begin
           found := i;
           raise Exit
         end
       done
     with Exit -> ());
    Some (1 lsl !found)
  end

(* -- pretty-printing --------------------------------------------------- *)

let pp_counters ppf s =
  let first = ref true in
  List.iter
    (fun c ->
      if not !first then Format.fprintf ppf " ";
      first := false;
      Format.fprintf ppf "%s=%d" (counter_name c) (counter_value s c))
    all_counters

let pp_phases ppf s =
  let first = ref true in
  List.iter
    (fun p ->
      if not !first then Format.fprintf ppf " ";
      first := false;
      Format.fprintf ppf "%s=%.1fms" (phase_name p)
        (float_of_int (phase_total_ns s p) /. 1e6))
    all_phases
