(** Fork-based process isolation for verification jobs.

    A sandboxed job runs [f : unit -> string] in a forked child under
    optional [setrlimit] bounds (RLIMIT_AS for memory, RLIMIT_CPU as a
    hard backstop behind the cooperative deadline) and ships its result
    back over a pipe as a single length-framed, CRC-checked frame — the
    same frame layout as the write-ahead journal, so the parent-side
    decoder is total: a child that dies mid-write produces a torn frame,
    never a parse exception.

    The parent supervises: it drains the pipe from a select loop, kills
    children that outlive their wall-clock budget, and on exit classifies
    each death ({!death}) from the [wait4] status — clean verdict, child
    exception (transported as an ["OEXN1"]-prefixed payload), SIGSEGV,
    OOM (either the child's own [Out_of_memory] under RLIMIT_AS, exit
    code {!oom_exit_code}, or a SIGKILL attributed to the kernel OOM
    killer), RLIMIT_CPU expiry (SIGXCPU), parent deadline-kill, or a torn
    pipe protocol.  [wait4] also reports the child's max RSS, which feeds
    the {!Admission} memory-pressure controller.

    Fork safety: OCaml 5.1 refuses [Unix.fork] permanently once any
    domain has ever been spawned in the process — the restriction
    latches, and joining the domain does not lift it.  Sandboxed work
    must therefore be the process's FIRST parallel work: never run a
    Domain-mode batch (or create any pool) before the first {!spawn}.
    The process scheduler in [Octopocs] honours this by doing all its
    parallelism at the process level, and still calls
    {!Pool.shutdown_shared} defensively for runtimes that only require
    a single-domain process at fork time. *)

external setrlimit_as : int -> unit = "octo_setrlimit_as"
external setrlimit_cpu : int -> unit = "octo_setrlimit_cpu"
external page_size : unit -> int = "octo_page_size"

external wait4 : int -> bool -> int * int * int * int = "octo_wait4"
(** [(pid, kind, detail, maxrss_kb)]; see sandbox_stubs.c for the
    encoding.  [pid = 0] only under [nohang]. *)

type limits = {
  as_mb : int option;  (** RLIMIT_AS, MiB; [None] leaves it unbounded *)
  cpu_s : int option;
      (** RLIMIT_CPU soft limit, seconds (hard limit one second later);
          a backstop behind the cooperative deadline, not a scheduler *)
}

let no_limits = { as_mb = None; cpu_s = None }

(* A child whose allocation trips RLIMIT_AS sees an ordinary
   [Out_of_memory] (Linux returns ENOMEM from mmap; the OCaml runtime
   converts it).  The child handler must not allocate — even building an
   exception message can re-trip the limit — so it converts the
   exception straight into this reserved exit code. *)
let oom_exit_code = 77

(* A child exception is transported as a *valid* frame whose payload
   carries this prefix followed by [Printexc.to_string].  Using the
   normal success path (frame + exit 0) keeps the protocol total: the
   parent distinguishes verdict from exception by prefix, and a crash
   during exception transport still degrades to a torn frame. *)
let exn_prefix = "OEXN1"

type death =
  | Clean of string  (** exit 0 with a valid frame: the result payload *)
  | Child_exn of string
      (** exit 0 with an {!exn_prefix} frame: the child's exception,
          printed *)
  | Segv  (** killed by SIGSEGV (or SIGBUS) *)
  | Oom of string
      (** out of memory: either the child's own conversion of
          [Out_of_memory] under RLIMIT_AS ({!oom_exit_code}) or a
          SIGKILL attributed to the kernel OOM killer *)
  | Cpu  (** killed by SIGXCPU: RLIMIT_CPU expired *)
  | Deadline_kill  (** SIGKILLed by the parent at its wall-clock budget *)
  | Torn of string
      (** exited cleanly but the pipe frame is missing, truncated or
          CRC-corrupt — the argument says how *)
  | Other of string  (** anything else (unexpected exit code or signal) *)

let pp_death ppf = function
  | Clean _ -> Format.fprintf ppf "clean"
  | Child_exn e -> Format.fprintf ppf "child-exn(%s)" e
  | Segv -> Format.fprintf ppf "segv"
  | Oom why -> Format.fprintf ppf "oom(%s)" why
  | Cpu -> Format.fprintf ppf "cpu"
  | Deadline_kill -> Format.fprintf ppf "deadline-kill"
  | Torn why -> Format.fprintf ppf "torn(%s)" why
  | Other why -> Format.fprintf ppf "other(%s)" why

(* ------------------------------------------------------------------ *)
(* Pipe protocol: one frame per child, the journal's frame layout
   ([len:u32le][crc32(payload):u32le][payload]) with the same CRC, so
   torn-write tolerance is inherited rather than re-invented. *)

let frame payload =
  let len = String.length payload in
  let b = Buffer.create (len + 8) in
  let put_u32 v =
    Buffer.add_char b (Char.chr (v land 0xff));
    Buffer.add_char b (Char.chr ((v lsr 8) land 0xff));
    Buffer.add_char b (Char.chr ((v lsr 16) land 0xff));
    Buffer.add_char b (Char.chr ((v lsr 24) land 0xff))
  in
  put_u32 len;
  put_u32 (Journal.crc32 payload);
  Buffer.add_string b payload;
  Buffer.contents b

let u32le_at data off =
  Char.code data.[off]
  lor (Char.code data.[off + 1] lsl 8)
  lor (Char.code data.[off + 2] lsl 16)
  lor (Char.code data.[off + 3] lsl 24)

(** [parse_frame data] decodes the single frame a child wrote.  Total:
    every malformed input maps to [Error why], suitable for {!Torn}. *)
let parse_frame data =
  let n = String.length data in
  if n < 8 then Error (Printf.sprintf "short frame header (%d byte(s))" n)
  else begin
    let len = u32le_at data 0 in
    let crc = u32le_at data 4 in
    if len < 0 || len > Journal.max_record_len then
      Error "implausible frame length"
    else if n < 8 + len then
      Error (Printf.sprintf "truncated payload (%d of %d byte(s))" (n - 8) len)
    else if n > 8 + len then Error "trailing bytes after frame"
    else begin
      let payload = String.sub data 8 len in
      if Journal.crc32 payload <> crc then Error "frame CRC mismatch"
      else Ok payload
    end
  end

(* ------------------------------------------------------------------ *)
(* Spawning and supervising. *)

type child = {
  pid : int;
  fd : Unix.file_descr;  (** parent's read end, non-blocking *)
  cbuf : Buffer.t;  (** bytes drained so far *)
  mutable ckilled : bool;  (** parent sent SIGKILL (deadline) *)
  cdeadline : int64 option;  (** absolute monotonic kill point *)
}

let pid c = c.pid
let fd c = c.fd

let apply_limits l =
  Option.iter setrlimit_as l.as_mb;
  Option.iter setrlimit_cpu l.cpu_s

(** [spawn ?limits ?kill_after_s ?die f] forks a child that runs [f] and
    writes its result frame to the pipe.  [die] is the fault-injection
    hook: the *parent* draws the decision before forking (so retries
    advance the injector stream) and the child executes it by signalling
    itself before any real work — [`Segv] models a native crash,
    [`Oom_kill] models the kernel OOM killer.  The child converts
    [Out_of_memory] to {!oom_exit_code} and any other exception to an
    {!exn_prefix} frame; it leaves via [Unix._exit] on every path so
    no parent [at_exit] handler (journal writers, pools) runs twice. *)
let spawn ?(limits = no_limits) ?kill_after_s ?(die = `None) f =
  let r, w = Unix.pipe ~cloexec:false () in
  match Unix.fork () with
  | 0 ->
      (try
         Unix.close r;
         (match die with
         | `Segv -> Unix.kill (Unix.getpid ()) Sys.sigsegv
         | `Oom_kill -> Unix.kill (Unix.getpid ()) Sys.sigkill
         | `None -> ());
         apply_limits limits;
         let payload =
           try f () with
           | Out_of_memory -> Unix._exit oom_exit_code
           | e -> exn_prefix ^ Printexc.to_string e
         in
         let fr = Bytes.unsafe_of_string (frame payload) in
         let n = Bytes.length fr in
         let off = ref 0 in
         while !off < n do
           off := !off + Unix.write w fr !off (n - !off)
         done;
         Unix.close w;
         Unix._exit 0
       with _ -> Unix._exit 1)
  | pid ->
      Unix.close w;
      Unix.set_nonblock r;
      let cdeadline =
        Option.map (fun seconds -> Deadline.ns_after ~seconds) kill_after_s
      in
      { pid; fd = r; cbuf = Buffer.create 256; ckilled = false; cdeadline }

(** [drain c] reads whatever the pipe holds right now; [true] on EOF
    (child closed its end — by finishing or by dying). *)
let drain c =
  let buf = Bytes.create 4096 in
  let rec loop () =
    match Unix.read c.fd buf 0 (Bytes.length buf) with
    | 0 -> true
    | n ->
        Buffer.add_subbytes c.cbuf buf 0 n;
        loop ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> false
    | exception Unix.Unix_error (EINTR, _, _) -> loop ()
  in
  loop ()

(** [kill c] SIGKILLs the child (idempotent; ESRCH for an
    already-reaped pid is swallowed).  Marks the child so {!reap}
    classifies the death as {!Deadline_kill} regardless of how the
    kernel reports it. *)
let kill c =
  if not c.ckilled then begin
    c.ckilled <- true;
    try Unix.kill c.pid Sys.sigkill with Unix.Unix_error _ -> ()
  end

let deadline_expired c =
  match c.cdeadline with
  | None -> false
  | Some d -> Int64.compare (Deadline.monotonic_ns ()) d >= 0

(** [reap c] closes the pipe, waits for the child (momentary: only
    called after EOF or {!kill}) and classifies the death.  Returns the
    classification and the child's max RSS in KiB for the admission
    controller.  Precedence: a parent kill is always {!Deadline_kill}
    (the kernel just sees SIGKILL, which would otherwise read as the
    OOM killer). *)
let reap c =
  (try Unix.close c.fd with Unix.Unix_error _ -> ());
  let _, kind, detail, maxrss_kb = wait4 c.pid false in
  let data = Buffer.contents c.cbuf in
  let death =
    if c.ckilled then Deadline_kill
    else
      match kind with
      | 0 ->
          if detail = oom_exit_code then Oom "allocation past RLIMIT_AS"
          else if detail = 0 then begin
            match parse_frame data with
            | Error why -> Torn why
            | Ok payload ->
                let pn = String.length exn_prefix in
                if
                  String.length payload >= pn
                  && String.sub payload 0 pn = exn_prefix
                then Child_exn (String.sub payload pn (String.length payload - pn))
                else Clean payload
          end
          else Other (Printf.sprintf "exit code %d" detail)
      | 1 -> (
          match detail with
          | 1 -> Segv
          | 2 -> Oom "SIGKILL (kernel OOM killer)"
          | 3 -> Cpu
          | 4 -> Other "SIGABRT"
          | _ -> Other "unclassified fatal signal")
      | _ -> Other "child neither exited nor was signaled"
  in
  (death, maxrss_kb)

(** [run_child ?limits ?kill_after_s ?die f] is the one-shot form:
    spawn, supervise to completion, classify.  Used by callers running
    a single job (tests, [run_all]'s process path); the streaming
    scheduler multiplexes many children over one select loop instead. *)
let run_child ?limits ?kill_after_s ?die f =
  let c = spawn ?limits ?kill_after_s ?die f in
  let rec loop () =
    if deadline_expired c then kill c;
    let eof =
      match Unix.select [ c.fd ] [] [] 0.05 with
      | [ _ ], _, _ -> drain c
      | _ -> false
      | exception Unix.Unix_error (EINTR, _, _) -> false
    in
    if eof then reap c else loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Memory-pressure admission control. *)

module Admission = struct
  (* The streaming parent admits a new child only while the in-flight
     count is under a window.  The window starts at the configured
     concurrency and shrinks (halving, floor 1) whenever estimated
     pressure — parent RSS plus the worst child max-RSS seen so far, a
     conservative stand-in for "what one more child could cost" —
     crosses the watermark; it regrows by one admission at a time once
     pressure falls below half the watermark (hysteresis, so the window
     does not thrash at the boundary). *)
  type t = {
    watermark_kb : int option;
    base_window : int;
    mutable cur_window : int;
    mutable worst_child_kb : int;
    page_kb : int;
    probe : (unit -> int) option;
        (* parent-pressure override (KiB); None reads /proc.  A seam for
           tests: RSS cannot be lowered on demand (Gc.compact does not
           return memory to the OS on OCaml 5.1), so the regrow path is
           only reachable deterministically through an injected probe. *)
  }

  let create ?watermark_mb ?probe ~window () =
    {
      watermark_kb = Option.map (fun mb -> mb * 1024) watermark_mb;
      base_window = max 1 window;
      cur_window = max 1 window;
      worst_child_kb = 0;
      page_kb = max 1 (page_size () / 1024);
      probe;
    }

  (** Parent resident set in KiB, from /proc/self/statm (field 2 is
      resident pages).  0 where /proc is absent — pressure control then
      degrades to plain window backpressure. *)
  let self_rss_kb t =
    match open_in "/proc/self/statm" with
    | exception Sys_error _ -> 0
    | ic ->
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            try
              Scanf.sscanf (input_line ic) " %d %d" (fun _ rss ->
                  rss * t.page_kb)
            with _ -> 0)

  let note_child_rss t kb = if kb > t.worst_child_kb then t.worst_child_kb <- kb

  let refresh t =
    match t.watermark_kb with
    | None -> ()
    | Some wm ->
        let parent_kb =
          match t.probe with Some f -> f () | None -> self_rss_kb t
        in
        let pressure = parent_kb + t.worst_child_kb in
        if pressure > wm then t.cur_window <- max 1 (t.cur_window / 2)
        else if pressure < wm / 2 && t.cur_window < t.base_window then
          t.cur_window <- t.cur_window + 1

  (** [admit t ~in_flight] re-evaluates pressure and answers whether one
      more child may start.  [`Defer `Pressure] means the window has
      been shrunk below its configured size — the caller records the
      degradation; [`Defer `Full] is ordinary backpressure at full
      window. *)
  let admit t ~in_flight =
    refresh t;
    if in_flight < t.cur_window then `Admit
    else if t.cur_window < t.base_window then `Defer `Pressure
    else `Defer `Full

  let window t = t.cur_window
  let worst_child_kb t = t.worst_child_kb
end
