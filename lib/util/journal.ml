(** Append-only write-ahead journal for batch verification.

    A journal is a header followed by length-prefixed, CRC-framed records:

    {v
      "OCTOJRNL1\n"                                   10-byte header
      [ len:u32le ][ crc32(payload):u32le ][ payload ]  repeated
    v}

    Records are opaque byte strings (the caller owns the payload encoding);
    the framing makes two guarantees:

    - {b Durability}: {!append} writes the whole frame with one [write] and
      fsyncs before returning (unless the writer was opened with
      [~fsync:false]), so an acknowledged record survives the process dying
      immediately afterwards.
    - {b Torn-write tolerance}: a crash mid-append leaves a truncated or
      corrupt trailing frame.  {!replay} detects it (short frame header,
      short payload, CRC mismatch, or an absurd length) and drops it —
      replay never raises on a torn tail, and every record before the tear
      is recovered.  {!open_resume} additionally truncates the file back to
      its last valid frame so subsequent appends re-form a clean tail.

    A corrupt record is treated exactly like a torn one: it ends the valid
    prefix.  This is the standard WAL recovery rule — nothing after the
    first bad frame can be trusted, because frame boundaries are gone.

    Writers are thread-safe (appends serialize on an internal mutex), so a
    pool of worker domains can journal verdicts as they settle.

    Fault injection: the {!Faultinject.Journal_write} site models a crash
    mid-append — when it fires, only a prefix of the frame is written, the
    writer is poisoned (subsequent appends become no-ops, as if the process
    were dead), and {!Faultinject.Injected} is raised. *)

let header = "OCTOJRNL1\n"

(* Anything larger than this is not a record length we ever write; reading
   one means the "length" is really mid-frame garbage. *)
let max_record_len = 64 * 1024 * 1024

(* ------------------------------------------------------------------ *)
(* CRC-32 (IEEE 802.3, the zlib polynomial), table-driven. *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let t = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter (fun ch -> c := t.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8)) s;
  !c lxor 0xFFFFFFFF

(* ------------------------------------------------------------------ *)
(* Replay. *)

type replay = {
  records : string list;  (** every intact record, in append order *)
  valid_bytes : int;
      (** length of the valid prefix (header + intact frames); the offset
          {!open_resume} truncates to *)
  torn : bool;  (** a truncated or corrupt trailing frame was dropped *)
}

let u32le_at data off =
  Char.code data.[off]
  lor (Char.code data.[off + 1] lsl 8)
  lor (Char.code data.[off + 2] lsl 16)
  lor (Char.code data.[off + 3] lsl 24)

(* [?validate] extends the recovery rule one level up the stack: a frame
   whose CRC matches but whose payload the caller's decoder rejects is
   treated exactly like a torn frame — it ends the valid prefix.  This is
   what gives the quarantine journal (and any other single-codec journal)
   WAL-grade torn-tail semantics at the payload level: a record half
   overwritten by a crashed writer that happened to frame cleanly cannot
   silently poison the tail it precedes. *)
let parse ?(validate = fun (_ : string) -> true) data =
  let n = String.length data in
  let hl = String.length header in
  if n < hl || String.sub data 0 hl <> header then
    (* No (or a half-written) header: nothing recoverable.  A non-empty
       file that is not a journal counts as torn so callers can tell the
       difference from a genuinely fresh journal. *)
    { records = []; valid_bytes = 0; torn = n > 0 }
  else begin
    let records = ref [] in
    let pos = ref hl in
    let torn = ref false in
    let stop = ref false in
    while not !stop do
      if !pos = n then stop := true
      else if n - !pos < 8 then begin
        torn := true;
        stop := true
      end
      else begin
        let len = u32le_at data !pos in
        let crc = u32le_at data (!pos + 4) in
        if len > max_record_len || n - !pos - 8 < len then begin
          torn := true;
          stop := true
        end
        else begin
          let payload = String.sub data (!pos + 8) len in
          if crc32 payload <> crc || not (validate payload) then begin
            torn := true;
            stop := true
          end
          else begin
            records := payload :: !records;
            pos := !pos + 8 + len
          end
        end
      end
    done;
    { records = List.rev !records; valid_bytes = !pos; torn = !torn }
  end

(** [replay ?validate path] scans the journal tolerantly.  A missing file
    is an empty journal; a torn or corrupt tail — including a CRC-valid
    frame that [validate] rejects — is dropped, never raised on. *)
let replay ?validate path =
  if not (Sys.file_exists path) then { records = []; valid_bytes = 0; torn = false }
  else begin
    let ic = open_in_bin path in
    let data =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    parse ?validate data
  end

(* ------------------------------------------------------------------ *)
(* Writer. *)

type writer = {
  fd : Unix.file_descr;
  wlock : Mutex.t;
  winject : Faultinject.t;
  wfsync : bool;
  mutable wclosed : bool;
  mutable poisoned : bool;
      (* set after an injected torn write: the simulated process is dead,
         so later appends silently go nowhere (exactly what a real crash
         would leave behind) *)
}

let write_all fd bytes =
  let n = Bytes.length bytes in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd bytes !off (n - !off)
  done

let frame payload =
  let len = String.length payload in
  let b = Bytes.create (8 + len) in
  Bytes.set_int32_le b 0 (Int32.of_int len);
  Bytes.set_int32_le b 4 (Int32.of_int (crc32 payload));
  Bytes.blit_string payload 0 b 8 len;
  b

let mk_writer ?(inject = Faultinject.none) ?(fsync = true) fd =
  { fd; wlock = Mutex.create (); winject = inject; wfsync = fsync; wclosed = false;
    poisoned = false }

(** [create ?inject ?fsync ~path ()] starts a fresh journal, truncating any
    existing file at [path]. *)
let create ?inject ?fsync ~path () =
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  write_all fd (Bytes.of_string header);
  Unix.fsync fd;
  mk_writer ?inject ?fsync fd

(** [open_resume ?inject ?fsync ?validate ~path ()] reopens an existing
    journal for appending: replays it, truncates a torn tail back to the
    last valid frame ([validate]-rejected records end the valid prefix
    like torn ones, so the truncation also repairs payload-level
    corruption), and returns the writer positioned at the end together
    with the recovered records.  A missing file starts a fresh journal. *)
let open_resume ?inject ?fsync ?validate ~path () =
  let r = replay ?validate path in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
  if r.valid_bytes = 0 then begin
    (* Fresh, empty, or headerless-garbage file: start over. *)
    Unix.ftruncate fd 0;
    write_all fd (Bytes.of_string header)
  end
  else begin
    Unix.ftruncate fd r.valid_bytes;
    ignore (Unix.lseek fd r.valid_bytes Unix.SEEK_SET)
  end;
  Unix.fsync fd;
  (mk_writer ?inject ?fsync fd, r.records)

(** [append w payload] durably appends one record: a single [write] of the
    whole frame, then fsync.  Thread-safe.  Raises [Invalid_argument] on a
    closed writer; raises {!Faultinject.Injected} when the [journal-write]
    torn-write site fires (leaving a half-written frame and a poisoned
    writer behind, like a crash would). *)
let append w payload =
  Mutex.lock w.wlock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock w.wlock)
    (fun () ->
      if w.wclosed then invalid_arg "Journal.append: writer is closed";
      if not w.poisoned then begin
        let b = frame payload in
        if Faultinject.fire w.winject Faultinject.Journal_write then begin
          let cut = max 1 (Bytes.length b / 2) in
          write_all w.fd (Bytes.sub b 0 cut);
          w.poisoned <- true;
          raise (Faultinject.Injected "journal-write: torn append")
        end;
        write_all w.fd b;
        if w.wfsync then Unix.fsync w.fd
      end)

(** [close w] fsyncs and closes the fd.  Idempotent. *)
let close w =
  Mutex.lock w.wlock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock w.wlock)
    (fun () ->
      if not w.wclosed then begin
        w.wclosed <- true;
        (try Unix.fsync w.fd with Unix.Unix_error _ -> ());
        Unix.close w.fd
      end)

(* ------------------------------------------------------------------ *)
(* Sharded journals. *)

(** A sharded journal spreads a batch's records over N independent WAL
    files so corpus-scale runs don't serialize every fsync on one fd and a
    torn tail costs at most one shard's unsynced suffix.  On-disk layout is
    a directory:

    {v
      <dir>/MANIFEST          "octoshards N\n"
      <dir>/shard-00.jrnl     ordinary journals (header + framed records)
      ...
      <dir>/shard-<N-1>.jrnl
    v}

    Records are routed by a stable key ({!Sharded.shard_of_key}: CRC-32 of
    the key mod N), so a killed-and-resumed run looks for a pair's verdict
    in the same shard that the interrupted run wrote it to.  Each shard
    recovers independently: {!Sharded.open_resume} replays every shard,
    truncates each torn tail back to its own last valid frame, and returns
    the per-shard valid prefixes — tears on several shards at once each
    lose only their own trailing record. *)
module Sharded = struct
  type w = { shards : writer array; sdir : string }

  let manifest_name = "MANIFEST"
  let manifest_path dir = Filename.concat dir manifest_name
  let shard_path dir i = Filename.concat dir (Printf.sprintf "shard-%02d.jrnl" i)

  (** [shard_of_key ~shards key] routes a record key to a shard index —
      CRC-32 of the key bytes mod [shards], stable across processes. *)
  let shard_of_key ~shards key =
    if shards <= 1 then 0 else crc32 key mod shards

  let write_manifest dir n =
    let oc = open_out_bin (manifest_path dir) in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (Printf.sprintf "octoshards %d\n" n))

  (** [read_manifest dir] is the shard count recorded in [dir]'s MANIFEST,
      or [None] when the manifest is missing or malformed. *)
  let read_manifest dir =
    let p = manifest_path dir in
    if not (Sys.file_exists p) then None
    else begin
      let ic = open_in_bin p in
      let line =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> try Some (input_line ic) with End_of_file -> None)
      in
      match line with
      | Some l -> (
          match String.split_on_char ' ' (String.trim l) with
          | [ "octoshards"; n ] -> int_of_string_opt n
          | _ -> None)
      | None -> None
    end

  (** [exists dir] says whether [dir] already holds a sharded journal. *)
  let exists dir = Sys.file_exists dir && Sys.is_directory dir && read_manifest dir <> None

  let mk_dir dir = if not (Sys.file_exists dir) then Unix.mkdir dir 0o755

  (* Per-shard injectors: the streams inside a [Faultinject.t] are mutable
     and unsynchronized, so concurrent appends to different shards need
     per-shard injectors, not one shared one. *)
  let injector_for inject_for i =
    match inject_for with None -> Faultinject.none | Some f -> f i

  (** [create ?inject_for ?fsync ~dir ~shards ()] starts a fresh sharded
      journal: makes [dir], writes the manifest, and truncates/creates
      every shard file.  [inject_for i] (optional) supplies shard [i]'s
      fault injector. *)
  let create ?inject_for ?fsync ~dir ~shards () =
    if shards < 1 then invalid_arg "Journal.Sharded.create: shards < 1";
    mk_dir dir;
    write_manifest dir shards;
    let shards_arr =
      Array.init shards (fun i ->
          create ~inject:(injector_for inject_for i) ?fsync
            ~path:(shard_path dir i) ())
    in
    { shards = shards_arr; sdir = dir }

  (** [open_resume ?inject_for ?fsync ~dir ~shards ()] reopens a sharded
      journal for appending: every shard is independently replayed and its
      torn tail truncated back to the last valid frame.  Returns the writer
      and the per-shard recovered records (index [i] holds shard [i]'s
      valid prefix, in append order).  Raises [Failure] when [dir]'s
      manifest disagrees with [shards] — resuming with a different shard
      count would route keys to the wrong files. *)
  let open_resume ?inject_for ?fsync ~dir ~shards () =
    if shards < 1 then invalid_arg "Journal.Sharded.open_resume: shards < 1";
    (match read_manifest dir with
    | Some n when n <> shards ->
        failwith
          (Printf.sprintf
             "Journal.Sharded.open_resume: %s was written with %d shard(s), not %d" dir n
             shards)
    | Some _ -> ()
    | None ->
        mk_dir dir;
        write_manifest dir shards);
    let recovered = Array.make shards [] in
    let shards_arr =
      Array.init shards (fun i ->
          let w, records =
            open_resume ~inject:(injector_for inject_for i) ?fsync
              ~path:(shard_path dir i) ()
          in
          recovered.(i) <- records;
          w)
    in
    ({ shards = shards_arr; sdir = dir }, recovered)

  (** [append w ~key payload] appends the record to the shard [key] routes
      to.  Thread-safe (each shard writer carries its own lock). *)
  let append w ~key payload =
    let i = shard_of_key ~shards:(Array.length w.shards) key in
    append w.shards.(i) payload

  let close w = Array.iter close w.shards

  type merged = {
    mrecords : string list;  (** all shards' records, shard 0 first *)
    mshards : int;
    mtorn : int;  (** how many shards ended in a torn/corrupt tail *)
  }

  (** [replay_merged dir] tolerantly replays every shard listed by the
      manifest and concatenates their valid prefixes (shard order, append
      order within a shard).  Raises [Failure] on a missing/malformed
      manifest — an unreadable layout is not an empty journal. *)
  let replay_merged dir =
    match read_manifest dir with
    | None ->
        failwith
          (Printf.sprintf "Journal.Sharded.replay_merged: %s has no readable MANIFEST" dir)
    | Some n ->
        let torn = ref 0 in
        let records = ref [] in
        for i = 0 to n - 1 do
          let r = replay (shard_path dir i) in
          if r.torn then incr torn;
          records := !records @ r.records
        done;
        { mrecords = !records; mshards = n; mtorn = !torn }
end
