/* Process-sandbox primitives missing from OCaml's Unix library.
 *
 * Three gaps force C here:
 *   - setrlimit: Unix has no binding at all, and RLIMIT_AS/RLIMIT_CPU
 *     are the whole point of running a verification job in a child;
 *   - wait4: Unix.waitpid discards struct rusage, but the admission
 *     controller needs each child's max RSS to budget future forks;
 *   - signal numbers: WTERMSIG yields raw platform numbers while OCaml
 *     signals are runtime-internal negatives, so the crash-signal
 *     classification (SEGV / KILL / XCPU) is done here where both
 *     sides of the comparison are honest C ints. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>
#include <caml/fail.h>
#include <errno.h>
#include <signal.h>
#include <string.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

CAMLprim value octo_setrlimit_as(value mb)
{
  struct rlimit rl;
  rl.rlim_cur = rl.rlim_max = (rlim_t)Long_val(mb) << 20;
  if (setrlimit(RLIMIT_AS, &rl) != 0)
    caml_failwith("Sandbox: setrlimit(RLIMIT_AS) failed");
  return Val_unit;
}

/* Soft limit at [secs] so SIGXCPU fires (classifiable), hard limit one
 * second later so a handler-ignoring child still dies (SIGKILL). */
CAMLprim value octo_setrlimit_cpu(value secs)
{
  struct rlimit rl;
  rl.rlim_cur = (rlim_t)Long_val(secs);
  rl.rlim_max = (rlim_t)Long_val(secs) + 1;
  if (setrlimit(RLIMIT_CPU, &rl) != 0)
    caml_failwith("Sandbox: setrlimit(RLIMIT_CPU) failed");
  return Val_unit;
}

CAMLprim value octo_page_size(value unit)
{
  long ps = sysconf(_SC_PAGESIZE);
  return Val_long(ps > 0 ? ps : 4096);
}

/* wait4 with rusage, returning (pid, kind, detail, maxrss_kb):
 *   pid    = 0 when nohang and the child is still running;
 *   kind   = 0 exited (detail = exit code)
 *            1 killed by signal (detail = classified signal, below)
 *            2 anything else (stopped/continued);
 *   detail for kind 1: 1 SIGSEGV/SIGBUS, 2 SIGKILL, 3 SIGXCPU,
 *            4 SIGABRT, 0 any other signal;
 *   maxrss_kb = ru_maxrss (KiB on Linux).
 * The parent only blocks here after pipe EOF or after SIGKILLing the
 * child, so the wait is momentary; the runtime lock is kept. */
CAMLprim value octo_wait4(value vpid, value vnohang)
{
  CAMLparam2(vpid, vnohang);
  CAMLlocal1(res);
  int status = 0;
  struct rusage ru;
  pid_t p;
  memset(&ru, 0, sizeof ru);
  do {
    p = wait4((pid_t)Long_val(vpid), &status, Bool_val(vnohang) ? WNOHANG : 0, &ru);
  } while (p < 0 && errno == EINTR);
  if (p < 0)
    caml_failwith("Sandbox: wait4 failed");
  int kind = 2, detail = 0;
  if (p > 0) {
    if (WIFEXITED(status)) {
      kind = 0;
      detail = WEXITSTATUS(status);
    } else if (WIFSIGNALED(status)) {
      kind = 1;
      int sig = WTERMSIG(status);
      if (sig == SIGSEGV || sig == SIGBUS)
        detail = 1;
      else if (sig == SIGKILL)
        detail = 2;
      else if (sig == SIGXCPU)
        detail = 3;
      else if (sig == SIGABRT)
        detail = 4;
      else
        detail = 0;
    }
  }
  res = caml_alloc_tuple(4);
  Store_field(res, 0, Val_long((long)p));
  Store_field(res, 1, Val_long(kind));
  Store_field(res, 2, Val_long(detail));
  Store_field(res, 3, Val_long((long)ru.ru_maxrss));
  CAMLreturn(res);
}
