(* Run-health time-series sampler.

   While enabled, the streaming drivers call [tick] at their natural
   cadence points (each settle, each select-loop wakeup); at most once
   per [interval_ns] a sample is taken — throughput counters from the
   driver, pool-health counters accumulated here, parent/child memory,
   GC words, and (when [Metrics] collection is on) the per-phase latency
   histograms — encoded as a versioned [OTL1] frame and appended to a
   [telemetry.jrnl] write-ahead journal beside the verdict journal.

   Costs mirror [Metrics] and [Trace]: disabled, every entry point is a
   single [Atomic.get]; enabled, a non-due [tick] is two atomic loads
   and an int64 compare.  Samples are serialized under one mutex (the
   journal writer has its own, but the sample itself must be a
   consistent cut).

   Frames are crc-framed by the journal (torn tails replay to a valid
   prefix), the payload codec is hand-rolled and total — no [Marshal] —
   and timestamps are monotonic nanoseconds relative to [enable], so
   two dumps of the same run are structurally comparable. *)

(* Resident set of this process in KiB, from /proc/self/statm (field 2
   is resident pages).  0 where /proc is absent.  The page size comes
   from the same C stub Sandbox uses. *)
external page_size : unit -> int = "octo_page_size"

let self_rss_kb () =
  match open_in "/proc/self/statm" with
  | exception Sys_error _ -> 0
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          try
            Scanf.sscanf (input_line ic) " %d %d" (fun _ rss ->
                rss * max 1 (page_size () / 1024))
          with _ -> 0)

(* -- sample type ------------------------------------------------------- *)

(* What the streaming driver knows at the moment of the tick. *)
type progress = {
  pulled : int;  (** pairs pulled from the source so far *)
  settled : int;  (** pairs settled (verdict journaled or reported) *)
  quarantined : int;  (** pairs given up on after the retry budget *)
  in_flight : int;  (** jobs currently running *)
  window : int;  (** in-flight window bound at this instant *)
}

type sample = {
  ts_ns : int;  (** monotonic ns since [enable] *)
  pulled : int;
  settled : int;
  quarantined : int;
  in_flight : int;
  window : int;
  retries : int;  (** crash/stall retries noted since [enable] *)
  stalls : int;  (** watchdog stall settlements since [enable] *)
  backoffs : int;  (** backoff sleeps since [enable] *)
  deferrals : int;  (** admission deferrals since [enable] *)
  rss_kb : int;  (** parent resident set, KiB (0 if /proc absent) *)
  child_rss_kb : int;  (** running max child maxrss, KiB *)
  minor_words : int;  (** [Gc.quick_stat] minor words, truncated *)
  major_words : int;  (** [Gc.quick_stat] major words, truncated *)
  metrics : Metrics.snapshot option;
      (** aggregate per-phase latency histograms at the tick; [None]
          while [Metrics] collection is off *)
}

(* -- OTL1 codec -------------------------------------------------------- *)

let codec_version = "OTL1"

let put_int b i =
  let l = Bytes.create 8 in
  Bytes.set_int64_le l 0 (Int64.of_int i);
  Buffer.add_bytes b l

let put_int_array b a =
  put_int b (Array.length a);
  Array.iter (put_int b) a

let encode_sample (s : sample) =
  let b = Buffer.create 256 in
  Buffer.add_string b codec_version;
  put_int b s.ts_ns;
  put_int b s.pulled;
  put_int b s.settled;
  put_int b s.quarantined;
  put_int b s.in_flight;
  put_int b s.window;
  put_int b s.retries;
  put_int b s.stalls;
  put_int b s.backoffs;
  put_int b s.deferrals;
  put_int b s.rss_kb;
  put_int b s.child_rss_kb;
  put_int b s.minor_words;
  put_int b s.major_words;
  (match s.metrics with
  | None -> Buffer.add_char b '0'
  | Some m ->
      Buffer.add_char b '1';
      put_int_array b m.Metrics.counters;
      put_int_array b m.Metrics.phase_count;
      put_int_array b m.Metrics.phase_ns;
      put_int_array b m.Metrics.phase_hist);
  Buffer.contents b

(* Total: [None] on any malformed payload, never raises, never reads
   out of bounds.  Mirrors the OPR3/OQR1 decoders, including the
   length-tolerant counter array (an open enumeration across releases)
   and the trailing exact-consumption check. *)
let decode_sample (s : string) : sample option =
  let pos = ref 0 in
  let n = String.length s in
  let exception Bad in
  let take k =
    if k < 0 || n - !pos < k then raise Bad;
    let r = String.sub s !pos k in
    pos := !pos + k;
    r
  in
  let get_int () =
    let s = take 8 in
    Int64.to_int (Bytes.get_int64_le (Bytes.unsafe_of_string s) 0)
  in
  let get_int_array expect =
    if get_int () <> expect then raise Bad;
    if expect < 0 || expect * 8 > n - !pos then raise Bad;
    Array.init expect (fun _ -> get_int ())
  in
  let get_counters () =
    let k = get_int () in
    if k < 0 || k > 64 || k * 8 > n - !pos then raise Bad;
    let a = Array.init k (fun _ -> get_int ()) in
    let counters = Array.make Metrics.ncounters 0 in
    Array.blit a 0 counters 0 (min k Metrics.ncounters);
    counters
  in
  match
    if take 4 <> codec_version then raise Bad;
    let ts_ns = get_int () in
    let pulled = get_int () in
    let settled = get_int () in
    let quarantined = get_int () in
    let in_flight = get_int () in
    let window = get_int () in
    let retries = get_int () in
    let stalls = get_int () in
    let backoffs = get_int () in
    let deferrals = get_int () in
    let rss_kb = get_int () in
    let child_rss_kb = get_int () in
    let minor_words = get_int () in
    let major_words = get_int () in
    let metrics =
      match (take 1).[0] with
      | '0' -> None
      | '1' ->
          let counters = get_counters () in
          let phase_count = get_int_array Metrics.nphases in
          let phase_ns = get_int_array Metrics.nphases in
          let phase_hist = get_int_array (Metrics.nphases * Metrics.nbuckets) in
          Some { Metrics.counters; phase_count; phase_ns; phase_hist }
      | _ -> raise Bad
    in
    if !pos <> n then raise Bad;
    {
      ts_ns;
      pulled;
      settled;
      quarantined;
      in_flight;
      window;
      retries;
      stalls;
      backoffs;
      deferrals;
      rss_kb;
      child_rss_kb;
      minor_words;
      major_words;
      metrics;
    }
  with
  | s -> Some s
  | exception Bad -> None

(* -- sampler state ----------------------------------------------------- *)

let default_interval_ns = 100_000_000 (* 100 ms *)

let on = Atomic.make false
let lock = Mutex.create ()
let writer : Journal.writer option ref = ref None
let base_ns = ref 0L
let interval = ref default_interval_ns

(* Next tick-due instant, relative ns.  An [Atomic] so the hot non-due
   path never takes the mutex. *)
let next_due = Atomic.make 0

(* Pool-health accumulators, reset on [enable].  Fed by the drivers at
   the same sites that bump the corresponding [Metrics] counters, but
   gated on this module's own flag so telemetry never requires (or
   perturbs) metrics collection. *)
let retries = Atomic.make 0
let stalls = Atomic.make 0
let backoffs = Atomic.make 0
let deferrals = Atomic.make 0
let child_rss_max = Atomic.make 0

let is_on () = Atomic.get on
let note_retry () = if Atomic.get on then Atomic.incr retries
let note_stall () = if Atomic.get on then Atomic.incr stalls
let note_backoff () = if Atomic.get on then Atomic.incr backoffs
let note_deferral () = if Atomic.get on then Atomic.incr deferrals

let rec note_child_rss kb =
  if Atomic.get on then begin
    let cur = Atomic.get child_rss_max in
    if kb > cur && not (Atomic.compare_and_set child_rss_max cur kb) then note_child_rss kb
  end

let now_rel_ns () = Int64.to_int (Int64.sub (Deadline.monotonic_ns ()) !base_ns)

let enable ?(interval_ns = default_interval_ns) ~path () =
  Mutex.lock lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock lock)
    (fun () ->
      (match !writer with Some w -> Journal.close w | None -> ());
      (* fsync would put a disk barrier on the verify hot path for data
         that is advisory by nature; a torn telemetry tail just replays
         to a shorter valid prefix. *)
      writer := Some (Journal.create ~fsync:false ~path ());
      base_ns := Deadline.monotonic_ns ();
      interval := max 1 interval_ns;
      Atomic.set next_due 0;
      Atomic.set retries 0;
      Atomic.set stalls 0;
      Atomic.set backoffs 0;
      Atomic.set deferrals 0;
      Atomic.set child_rss_max 0;
      Atomic.set on true)

let disable () =
  Atomic.set on false;
  Mutex.lock lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock lock)
    (fun () ->
      (match !writer with Some w -> Journal.close w | None -> ());
      writer := None)

let take_sample (p : progress) =
  let gc = Gc.quick_stat () in
  let m = if Metrics.is_on () then Some (Metrics.aggregate ()) else None in
  {
    ts_ns = now_rel_ns ();
    pulled = p.pulled;
    settled = p.settled;
    quarantined = p.quarantined;
    in_flight = p.in_flight;
    window = p.window;
    retries = Atomic.get retries;
    stalls = Atomic.get stalls;
    backoffs = Atomic.get backoffs;
    deferrals = Atomic.get deferrals;
    rss_kb = self_rss_kb ();
    child_rss_kb = Atomic.get child_rss_max;
    minor_words = int_of_float gc.Gc.minor_words;
    major_words = int_of_float gc.Gc.major_words;
    metrics = m;
  }

(* Unconditional sample (when enabled): the drivers call this once at
   stream end so even a sub-interval run leaves a final cut. *)
let sample_now (p : progress) =
  if Atomic.get on then begin
    Mutex.lock lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock lock)
      (fun () ->
        match !writer with
        | None -> ()
        | Some w -> Journal.append w (encode_sample (take_sample p)))
  end

(* Rate-limited sample.  The CAS elects exactly one caller per due
   window; losers (concurrent ticks racing the same deadline) skip. *)
let tick (f : unit -> progress) =
  if Atomic.get on then begin
    let now = now_rel_ns () in
    let due = Atomic.get next_due in
    if now >= due && Atomic.compare_and_set next_due due (now + !interval) then
      sample_now (f ())
  end

(* -- replay ------------------------------------------------------------ *)

type replay = {
  samples : sample list;  (** every decodable sample, in append order *)
  undecodable : int;  (** intact frames [decode_sample] rejected *)
  torn : bool;  (** the file ended in a truncated/corrupt frame *)
}

let replay path =
  let r = Journal.replay path in
  let undecodable = ref 0 in
  let samples =
    List.filter_map
      (fun rec_ ->
        match decode_sample rec_ with
        | Some s -> Some s
        | None ->
            incr undecodable;
            None)
      r.Journal.records
  in
  { samples; undecodable = !undecodable; torn = r.Journal.torn }
