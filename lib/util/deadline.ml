(** Monotonic-clock wall-time budgets for cooperative cancellation.

    A {!t} is an absolute expiry point on the monotonic clock.  Long-running
    engines (the concrete interpreter, directed symbolic execution, the
    constraint solver's model search) poll {!check} at step/node granularity
    and raise {!Deadline_exceeded} when the budget is gone; the pipeline
    converts the exception into a structured [Failure] verdict, so a
    pathological pair costs its budget instead of hanging a whole batch.

    The clock is CLOCK_MONOTONIC via a one-line C stub: wall-clock
    (gettimeofday) budgets mis-fire when NTP steps the clock, and the
    OCaml 5.1 Unix library does not expose the monotonic clock. *)

external monotonic_ns : unit -> int64 = "octo_monotonic_ns"

(** [Int64.max_int] encodes "no deadline": it compares after every
    reachable clock reading, so [expired] is a plain comparison. *)
type t = { expires_at : int64 }

exception Deadline_exceeded of string
(** The payload names the engine that noticed the expiry (e.g. "concrete
    execution", "solver model search"), not the site that set the budget. *)

let () =
  Printexc.register_printer (function
    | Deadline_exceeded what -> Some (Printf.sprintf "Deadline_exceeded(%s)" what)
    | _ -> None)

let none = { expires_at = Int64.max_int }

let is_none t = Int64.equal t.expires_at Int64.max_int

(** [after ~seconds] is a deadline [seconds] from now.  [seconds = 0.]
    yields an already-expired deadline (useful in tests). *)
let after ~seconds =
  if seconds < 0. then invalid_arg "Deadline.after: negative budget";
  let ns = Int64.of_float (seconds *. 1e9) in
  { expires_at = Int64.add (monotonic_ns ()) ns }

let expired t = (not (is_none t)) && Int64.compare (monotonic_ns ()) t.expires_at >= 0

(** [ns_after ~seconds] is the absolute monotonic-clock reading [seconds]
    from now — the raw form of {!after} for supervisors that compare many
    expiry points against one clock sample (the process sandbox's parent
    loop) instead of polling {!check} per deadline. *)
let ns_after ~seconds =
  if seconds < 0. then invalid_arg "Deadline.ns_after: negative budget";
  Int64.add (monotonic_ns ()) (Int64.of_float (seconds *. 1e9))

(** [check t ~what] raises {!Deadline_exceeded} when the budget is spent.
    One monotonic-clock read; callers gate it on a step counter so the cost
    stays out of hot loops. *)
let check t ~what = if expired t then raise (Deadline_exceeded what)

(** [remaining_s t] is the budget left in seconds, [infinity] for {!none}
    and [0.] once expired. *)
let remaining_s t =
  if is_none t then infinity
  else max 0. (Int64.to_float (Int64.sub t.expires_at (monotonic_ns ())) /. 1e9)
