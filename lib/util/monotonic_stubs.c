/* Monotonic clock for deadline budgets.
 *
 * OCaml 5.1's Unix library exposes only the wall clock
 * (gettimeofday), which jumps under NTP adjustment; deadline
 * accounting must never move backwards or leap forwards, so we read
 * CLOCK_MONOTONIC directly. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <stdint.h>
#include <time.h>

CAMLprim value octo_monotonic_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000LL + (int64_t)ts.tv_nsec);
}
