(** AFLGo-style directed greybox fuzzer (Böhme et al., the second Table V
    baseline).

    Seeds are scored by the distance of their execution to the target
    function (our {!Octo_cfg.Cfg} distance map stands in for AFLGo's
    LLVM-computed function/basic-block distances), and a simulated-annealing
    power schedule shifts energy toward close seeds as the campaign
    progresses — exploration first, exploitation later.

    Faithful to the paper's experience (Table V, MuPDF row), the
    instrumentation pass has a tool limitation: binaries containing indirect
    calls make it bail out with {!Aflgo_error}. *)

open Octo_vm
module Rng = Octo_util.Rng
module Cfg = Octo_cfg.Cfg

exception Aflgo_error of string

type config = {
  max_execs : int;
  rng_seed : int;
  max_energy : int;
  exec_max_steps : int;
  exploration : float;  (** fraction of the budget spent in exploration *)
}

let default_config =
  { max_execs = 150_000; rng_seed = 0xAF160; max_energy = 256; exec_max_steps = 60_000;
    exploration = 0.5 }

type seed = {
  data : string;
  distance : float;   (** mean distance of the execution to the target *)
}

type result = {
  crash_input : string option;
  execs : int;
  elapsed_s : float;
  coverage : int;
  best_distance : float;
}

let check_instrumentable (prog : Isa.program) =
  Hashtbl.iter
    (fun _ (f : Isa.func) ->
      Array.iter
        (function
          | Isa.Icall _ ->
              raise
                (Aflgo_error
                   (Printf.sprintf "distance instrumentation failed on %s: indirect call in %s"
                      prog.pname f.fname))
          | _ -> ())
        f.code)
    prog.funcs

(** [run ?config prog ~target ~seeds ~crash_in] fuzzes toward [target]. *)
let run ?(config = default_config) (prog : Isa.program) ~(target : string)
    ~(seeds : string list) ~(crash_in : string list) : result =
  check_instrumentable prog;
  let t0 = Unix.gettimeofday () in
  let cfg = Cfg.build ~allow_unresolved:true prog ~ep:target in
  let rng = Rng.create config.rng_seed in
  let cov = Coverage.create () in
  let execs = ref 0 in
  let found = ref None in
  let queue : seed Queue.t = Queue.create () in
  let best = ref infinity in
  let compiled = Compile.get prog in
  let execute input =
    incr execs;
    (* Collect the distance of every executed location to the target. *)
    let dist_sum = ref 0.0 and dist_n = ref 0 in
    let hooks =
      {
        Interp.no_hooks with
        on_edge =
          (fun fname _ to_pc ->
            let d = Cfg.distance cfg fname to_pc in
            if d < Cfg.infinity then begin
              dist_sum := !dist_sum +. float_of_int d;
              incr dist_n
            end);
      }
    in
    let info =
      let hit = Hashtbl.create 64 in
      let hooks =
        { hooks with
          on_edge =
            (fun fname from_pc to_pc ->
              hooks.on_edge fname from_pc to_pc;
              Hashtbl.replace hit (Coverage.bucket_of ~fname ~from_pc ~to_pc) ()) }
      in
      let result = Compile.run ~hooks ~max_steps:config.exec_max_steps compiled ~input in
      let fresh = ref 0 in
      Hashtbl.iter
        (fun b () ->
          if Bytes.get cov.virgin b = '\000' then begin
            Bytes.set cov.virgin b '\001';
            incr fresh
          end)
        hit;
      (result, !fresh)
    in
    let result, fresh = info in
    if !found = None && Interp.crash_in result ~funcs:crash_in then found := Some input;
    let d = if !dist_n = 0 then infinity else !dist_sum /. float_of_int !dist_n in
    best := min !best d;
    if fresh > 0 then Queue.add { data = input; distance = d } queue
  in
  List.iter execute seeds;
  while !found = None && !execs < config.max_execs && not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    (* Annealing: progress 0 -> uniform low energy (exploration); progress
       1 -> energy proportional to closeness (exploitation). *)
    let progress = float_of_int !execs /. float_of_int config.max_execs in
    let closeness =
      if s.distance = infinity then 0.0
      else 1.0 /. (1.0 +. (s.distance /. 16.0))
    in
    let energy =
      if progress < config.exploration then 2
      else
        max 1
          (int_of_float
             (float_of_int config.max_energy *. closeness *. (progress -. config.exploration)
             /. (1.0 -. config.exploration)))
    in
    let i = ref 0 in
    while !i < energy && !found = None && !execs < config.max_execs do
      incr i;
      execute (Mutate.havoc rng s.data)
    done;
    Queue.add s queue
  done;
  {
    crash_input = !found;
    execs = !execs;
    elapsed_s = Unix.gettimeofday () -. t0;
    coverage = Coverage.covered cov;
    best_distance = !best;
  }
