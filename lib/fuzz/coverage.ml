(** AFL-style edge coverage over MiniVM executions.

    Control-flow edges reported by the interpreter's edge hook are hashed
    into a 64 KiB bucket map with the classic [prev xor cur] scheme.  A
    global "virgin map" accumulates everything ever seen, so the fuzzers can
    ask whether an execution discovered new behaviour, and a per-run path
    hash identifies the execution path for AFLFast's frequency schedule. *)

open Octo_vm

let map_size = 1 lsl 16

type t = {
  virgin : Bytes.t;               (** buckets ever hit across the campaign *)
  mutable paths_seen : int;
}

let create () = { virgin = Bytes.make map_size '\000'; paths_seen = 0 }

let bucket_of ~fname ~from_pc ~to_pc =
  let h = Hashtbl.hash (fname, from_pc) in
  let h2 = Hashtbl.hash (fname, to_pc) in
  (h lxor (h2 lsr 1)) land (map_size - 1)

type run_info = {
  result : Interp.result;
  new_buckets : int;      (** buckets not previously in the virgin map *)
  path_hash : int;        (** order-insensitive hash of the hit buckets *)
  instructions : int;
}

(** [run t prog ~input] executes [prog] under coverage instrumentation,
    updating the virgin map.

    [compiled] lets campaign loops (thousands of executions of one program)
    skip the per-call content-digest lookup of the compilation cache; it
    MUST be the compilation of [prog] ({!Compile.get}). *)
let run ?(max_steps = 60_000) ?compiled (t : t) (prog : Isa.program) ~(input : string) :
    run_info =
  let hit = Hashtbl.create 256 in
  let hooks =
    {
      Interp.no_hooks with
      on_edge =
        (fun fname from_pc to_pc ->
          let b = bucket_of ~fname ~from_pc ~to_pc in
          Hashtbl.replace hit b ());
    }
  in
  let compiled = match compiled with Some c -> c | None -> Compile.get prog in
  let result = Compile.run ~hooks ~max_steps compiled ~input in
  let new_buckets = ref 0 in
  let path_hash = ref 0 in
  Hashtbl.iter
    (fun b () ->
      path_hash := !path_hash lxor Hashtbl.hash (b * 2654435761);
      if Bytes.get t.virgin b = '\000' then begin
        Bytes.set t.virgin b '\001';
        incr new_buckets
      end)
    hit;
  if !new_buckets > 0 then t.paths_seen <- t.paths_seen + 1;
  { result; new_buckets = !new_buckets; path_hash = !path_hash; instructions = result.steps }

(** [covered t] counts virgin-map buckets hit so far. *)
let covered t =
  let n = ref 0 in
  Bytes.iter (fun c -> if c <> '\000' then incr n) t.virgin;
  !n
