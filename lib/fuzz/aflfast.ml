(** AFLFast-style coverage-guided fuzzer (Böhme et al., the Table V
    baseline).

    Implements the core of AFLFast over MiniVM: AFL's queue + deterministic
    first pass + havoc/splice mutations, with AFLFast's power schedule — the
    energy of a seed grows exponentially with how often it has been picked
    and inversely with how often its execution path has been exercised, so
    rarely-exercised paths get fuzzed hard. *)

open Octo_vm
module Rng = Octo_util.Rng

type config = {
  max_execs : int;          (** execution budget standing in for "20 h" *)
  rng_seed : int;
  max_energy : int;
  deterministic_limit : int;(** cap on the deterministic first pass *)
  exec_max_steps : int;
}

let default_config =
  { max_execs = 150_000; rng_seed = 0xAF1FA57; max_energy = 512; deterministic_limit = 4_000;
    exec_max_steps = 60_000 }

type seed = {
  data : string;
  mutable fuzz_count : int;
  path : int;
}

type result = {
  crash_input : string option;
  execs : int;
  elapsed_s : float;
  coverage : int;
  queue_len : int;
}

(** [run ?config prog ~seeds ~crash_in] fuzzes [prog] until a crash inside
    one of the [crash_in] functions, or until the budget is exhausted. *)
let run ?(config = default_config) (prog : Isa.program) ~(seeds : string list)
    ~(crash_in : string list) : result =
  let t0 = Unix.gettimeofday () in
  let rng = Rng.create config.rng_seed in
  let cov = Coverage.create () in
  let queue : seed Queue.t = Queue.create () in
  let path_freq : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let execs = ref 0 in
  let found = ref None in
  let corpus : string array ref = ref [||] in
  let record_path p =
    Hashtbl.replace path_freq p ((match Hashtbl.find_opt path_freq p with Some n -> n | None -> 0) + 1)
  in
  let compiled = Compile.get prog in
  let execute input =
    incr execs;
    let info = Coverage.run ~max_steps:config.exec_max_steps ~compiled cov prog ~input in
    record_path info.path_hash;
    if !found = None && Interp.crash_in info.result ~funcs:crash_in then found := Some input;
    if info.new_buckets > 0 then begin
      Queue.add { data = input; fuzz_count = 0; path = info.path_hash } queue;
      corpus := Array.append !corpus [| input |]
    end;
    info
  in
  List.iter (fun s -> ignore (execute s)) seeds;
  (* Deterministic first pass over the initial corpus, as AFL does. *)
  let det_budget = ref config.deterministic_limit in
  List.iter
    (fun s ->
      Seq.iter
        (fun m ->
          if !det_budget > 0 && !found = None && !execs < config.max_execs then begin
            decr det_budget;
            ignore (execute m)
          end)
        (Mutate.deterministic s))
    seeds;
  (* Main havoc loop with the AFLFast exponential schedule. *)
  while !found = None && !execs < config.max_execs && not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    let freq = match Hashtbl.find_opt path_freq s.path with Some n -> max n 1 | None -> 1 in
    let energy =
      min config.max_energy (max 1 ((1 lsl min s.fuzz_count 9) / freq * 8))
    in
    s.fuzz_count <- s.fuzz_count + 1;
    let i = ref 0 in
    while !i < energy && !found = None && !execs < config.max_execs do
      incr i;
      let mutant =
        if Array.length !corpus > 1 && Rng.int rng 4 = 0 then
          Mutate.splice rng s.data (Rng.choose rng !corpus)
        else Mutate.havoc rng s.data
      in
      ignore (execute mutant)
    done;
    Queue.add s queue
  done;
  {
    crash_input = !found;
    execs = !execs;
    elapsed_s = Unix.gettimeofday () -. t0;
    coverage = Coverage.covered cov;
    queue_len = Queue.length queue;
  }
