(** Per-pair causal evidence log: the semantic complement of
    {!Octo_util.Metrics} (how much work) and {!Octo_util.Trace} (when) —
    this module records {e why} a verdict came out the way it did.

    Events are typed decisions-with-evidence emitted by the pipeline
    phases:

    - {b P1}: which file-byte ranges each taint bunch covers and the ℓ
      access sites that consumed them ({!Taint_bunch});
    - {b P2}: branch directions forced because the preferred one was
      refuted, states pruned with both directions dead, and loop-retry
      grants against θ ({!Branch_forced}, {!Path_pruned}, {!Loop_retry});
    - {b P3}: where each bunch was pinned relative to the file-position
      indicator and, on a constraint conflict, a minimized conflicting
      core labelling each member as a bunch-byte pin, a replayed
      ep-argument, or one of T's own path constraints ({!Bunch_pinned},
      {!Conflict});
    - {b P4}: crash-site identity ({!Crash_site});
    - plus every degradation-ladder rung with its triggering failure
      ({!Rung}).

    Collection mirrors the Metrics discipline exactly: off by default, one
    [Atomic.get] per hook site when disabled, events recorded into a
    capped per-domain ring buffer (oldest dropped, drop count kept) and
    collected per pair with {!scoped}.  The log is deterministic for a
    deterministic run, so rendered explanations are byte-stable and
    diffable. *)

(** Where a conflicting constraint came from, for core labelling. *)
type origin =
  | Bunch_byte of { bunch : int; off : int; value : int }
      (** a P3 pin [in\[off\] == value] placed for bunch [bunch] *)
  | Replayed_arg of { bunch : int; arg : int; value : int }
      (** a replayed ep-argument equality for bunch [bunch], argument
          index [arg] (0-based) *)
  | Path_constraint
      (** one of T's own path constraints (a guard taken by P2) *)

(** One member of a minimized unsat core: its origin plus the rendered
    constraint. *)
type core_entry = { origin : origin; cond : string }

type event =
  | Taint_bunch of {
      seq : int;  (** 1-based ep entry *)
      anchor : int;  (** file-position indicator at entry *)
      ranges : (int * int) list;  (** inclusive file-byte ranges, sorted *)
      tainted_args : int list;  (** 0-based indices of input-derived args *)
      sites : string list;  (** ℓ functions whose accesses consumed them *)
    }
  | Branch_forced of { func : string; pc : int; preferred_taken : bool }
      (** the distance-preferred direction ([preferred_taken]) was refuted
          as unsat; execution fell back to the other one *)
  | Loop_retry of { func : string; pc : int; granted : int; theta : int }
      (** the loop at [func@pc] was granted its [granted]-th extra
          iteration (of at most [theta]) after a loop-dead run *)
  | Path_pruned of { func : string; pc : int }
      (** both directions of the branch at [func@pc] were unsat: the
          state died *)
  | Bunch_pinned of {
      seq : int;
      file_pos : int;  (** indicator the bunch was pinned at *)
      nbytes : int;  (** byte pins added *)
      args_replayed : int;  (** ep-argument equalities added *)
    }
  | Conflict of { seq : int; core : core_entry list }
      (** pinning bunch [seq] made the store unsat; [core] is the
          minimized conflicting set ([] when minimization was skipped,
          e.g. a primitive preceding the indicator) *)
  | Crash_site of { func : string; pc : int; fault : string; in_ell : bool }
  | Rung of { rung : string; failure : string }
      (** the degradation ladder climbed to [rung] because the previous
          attempt failed with [failure] *)

(** A collected per-pair log: events in emission order, plus how many
    older events the ring buffer dropped to stay within its cap. *)
type t = { events : event list; dropped : int }

val empty : t

(** [enable ?cap ()] turns collection on process-wide.  [cap] bounds the
    per-domain ring buffer (default 4096 events); it is fixed at the
    first emission of each domain. *)
val enable : ?cap:int -> unit -> unit

val disable : unit -> unit
val is_on : unit -> bool

(** [emit ev] records [ev] into the calling domain's ring buffer; a
    no-op costing one atomic load when collection is off. *)
val emit : event -> unit

(** [scoped f] resets the calling domain's buffer, runs [f], and returns
    its value with the events [f] emitted — [None] when collection is
    off.  Mirrors {!Octo_util.Metrics.scoped}. *)
val scoped : (unit -> 'a) -> 'a * t option

(** [ranges_of_offsets offs] coalesces sorted-or-not offsets into sorted
    inclusive ranges: [[3;4;5;9] -> [(3,5); (9,9)]]. *)
val ranges_of_offsets : int list -> (int * int) list

val event_count : t -> int

(** [conflict_core_size t] is the core size of the last {!Conflict}
    event, or 0 when none was recorded. *)
val conflict_core_size : t -> int

(** [last_conflict t] is the last {!Conflict} event's payload, if any. *)
val last_conflict : t -> (int * core_entry list) option

val pp_ranges : Format.formatter -> (int * int) list -> unit
val pp_origin : Format.formatter -> origin -> unit
val pp_event : Format.formatter -> event -> unit

(** Binary codec used by the journal's optional provenance tail.  Same
    discipline as the verdict codec: length-prefixed, binary-safe,
    [decode] is total (returns [None] on any malformed input, never
    raises). *)
val encode : t -> string

val decode : string -> t option
