(* Per-pair causal evidence log.  See the interface for the event
   taxonomy; this file is the recording machinery (Metrics-style gated
   ring buffer) plus the total binary codec used by the journal tail. *)

type origin =
  | Bunch_byte of { bunch : int; off : int; value : int }
  | Replayed_arg of { bunch : int; arg : int; value : int }
  | Path_constraint

type core_entry = { origin : origin; cond : string }

type event =
  | Taint_bunch of {
      seq : int;
      anchor : int;
      ranges : (int * int) list;
      tainted_args : int list;
      sites : string list;
    }
  | Branch_forced of { func : string; pc : int; preferred_taken : bool }
  | Loop_retry of { func : string; pc : int; granted : int; theta : int }
  | Path_pruned of { func : string; pc : int }
  | Bunch_pinned of { seq : int; file_pos : int; nbytes : int; args_replayed : int }
  | Conflict of { seq : int; core : core_entry list }
  | Crash_site of { func : string; pc : int; fault : string; in_ell : bool }
  | Rung of { rung : string; failure : string }

type t = { events : event list; dropped : int }

let empty = { events = []; dropped = 0 }

(* -- recording ---------------------------------------------------------- *)

(* The hot-path discipline is Metrics': one [Atomic.get] on [on] per hook
   site when disabled.  When enabled, each domain records into its own
   ring buffer (a plain array indexed modulo the cap) — no locks, no
   cross-domain contention, and [scoped] collects/reset it around one
   pair. *)
let on = Atomic.make false
let default_cap = 4096
let ring_cap = Atomic.make default_cap

type cell = {
  mutable buf : event option array;  (* ring; length = cap at creation *)
  mutable count : int;  (* events emitted since the last reset *)
}

let cell_key : cell Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { buf = [||]; count = 0 })

let is_on () = Atomic.get on

let enable ?(cap = default_cap) () =
  if cap < 1 then invalid_arg "Provenance.enable: cap must be >= 1";
  Atomic.set ring_cap cap;
  Atomic.set on true

let disable () = Atomic.set on false

let emit ev =
  if Atomic.get on then begin
    let c = Domain.DLS.get cell_key in
    if Array.length c.buf = 0 then c.buf <- Array.make (Atomic.get ring_cap) None;
    c.buf.(c.count mod Array.length c.buf) <- Some ev;
    c.count <- c.count + 1
  end

let reset c =
  Array.fill c.buf 0 (Array.length c.buf) None;
  c.count <- 0

let collect c =
  let n = Array.length c.buf in
  if n = 0 || c.count = 0 then empty
  else begin
    let kept = min c.count n in
    let start = if c.count <= n then 0 else c.count mod n in
    let events =
      List.init kept (fun i ->
          match c.buf.((start + i) mod n) with Some e -> e | None -> assert false)
    in
    { events; dropped = c.count - kept }
  end

let scoped f =
  if not (Atomic.get on) then (f (), None)
  else begin
    let c = Domain.DLS.get cell_key in
    if Array.length c.buf = 0 then c.buf <- Array.make (Atomic.get ring_cap) None;
    reset c;
    let v = f () in
    (v, Some (collect c))
  end

(* -- small helpers ------------------------------------------------------ *)

let ranges_of_offsets offs =
  let sorted = List.sort_uniq compare offs in
  let rec go acc = function
    | [] -> List.rev acc
    | o :: rest -> (
        match acc with
        | (lo, hi) :: tl when o = hi + 1 -> go ((lo, o) :: tl) rest
        | _ -> go ((o, o) :: acc) rest)
  in
  go [] sorted

let event_count t = List.length t.events

let last_conflict t =
  List.fold_left
    (fun acc ev -> match ev with Conflict { seq; core } -> Some (seq, core) | _ -> acc)
    None t.events

let conflict_core_size t =
  match last_conflict t with Some (_, core) -> List.length core | None -> 0

(* -- pretty-printing ---------------------------------------------------- *)

let pp_ranges ppf rs =
  let pp_one ppf (lo, hi) =
    if lo = hi then Fmt.pf ppf "%d" lo else Fmt.pf ppf "%d..%d" lo hi
  in
  Fmt.pf ppf "%a" Fmt.(list ~sep:(any ",") pp_one) rs

let pp_origin ppf = function
  | Bunch_byte { bunch; off; value } ->
      Fmt.pf ppf "bunch %d byte in[%d]=0x%02x" bunch off (value land 0xff)
  | Replayed_arg { bunch; arg; value } ->
      Fmt.pf ppf "bunch %d replayed arg #%d=%d" bunch arg value
  | Path_constraint -> Fmt.pf ppf "T path constraint"

let pp_event ppf = function
  | Taint_bunch { seq; anchor; ranges; tainted_args; sites } ->
      Fmt.pf ppf "taint: bunch %d bytes %a (anchor %d) consumed in [%s]%s" seq pp_ranges
        ranges anchor
        (String.concat "," sites)
        (match tainted_args with
        | [] -> ""
        | xs -> "; tainted args " ^ String.concat "," (List.map string_of_int xs))
  | Branch_forced { func; pc; preferred_taken } ->
      Fmt.pf ppf "symex: branch %s@%d forced to %s (preferred %s refuted)" func pc
        (if preferred_taken then "fall-through" else "taken")
        (if preferred_taken then "taken" else "fall-through")
  | Loop_retry { func; pc; granted; theta } ->
      Fmt.pf ppf "symex: loop %s@%d granted iteration %d/%d" func pc granted theta
  | Path_pruned { func; pc } ->
      Fmt.pf ppf "symex: state pruned at %s@%d (both directions unsat)" func pc
  | Bunch_pinned { seq; file_pos; nbytes; args_replayed } ->
      Fmt.pf ppf "combine: bunch %d pinned at offset %d (%d byte pin%s, %d replayed arg%s)"
        seq file_pos nbytes
        (if nbytes = 1 then "" else "s")
        args_replayed
        (if args_replayed = 1 then "" else "s")
  | Conflict { seq; core } ->
      Fmt.pf ppf "combine: CONFLICT pinning bunch %d (%d-constraint core)" seq
        (List.length core)
  | Crash_site { func; pc; fault; in_ell } ->
      Fmt.pf ppf "verify: crash %s at %s@%d (%s)" fault func pc
        (if in_ell then "inside ℓ" else "outside ℓ")
  | Rung { rung; failure } -> Fmt.pf ppf "ladder: %s after %S" rung failure

(* -- binary codec ------------------------------------------------------- *)

(* Same conventions as the OPR verdict codec in octopocs.ml: u32le string
   length prefixes, i64le ints, count prefixes validated against the
   remaining bytes before any allocation, [decode] total.  The blob this
   produces is itself a length-prefixed string inside the OPR3 record, so
   its layout can evolve with the leading version byte. *)

let codec_version = 'p' (* provenance codec v1 *)

let put_str b s =
  let l = Bytes.create 4 in
  Bytes.set_int32_le l 0 (Int32.of_int (String.length s));
  Buffer.add_bytes b l;
  Buffer.add_string b s

let put_int b i =
  let l = Bytes.create 8 in
  Bytes.set_int64_le l 0 (Int64.of_int i);
  Buffer.add_bytes b l

let put_origin b = function
  | Bunch_byte { bunch; off; value } ->
      Buffer.add_char b 'b';
      put_int b bunch;
      put_int b off;
      put_int b value
  | Replayed_arg { bunch; arg; value } ->
      Buffer.add_char b 'a';
      put_int b bunch;
      put_int b arg;
      put_int b value
  | Path_constraint -> Buffer.add_char b 't'

let put_event b = function
  | Taint_bunch { seq; anchor; ranges; tainted_args; sites } ->
      Buffer.add_char b 'B';
      put_int b seq;
      put_int b anchor;
      put_int b (List.length ranges);
      List.iter
        (fun (lo, hi) ->
          put_int b lo;
          put_int b hi)
        ranges;
      put_int b (List.length tainted_args);
      List.iter (put_int b) tainted_args;
      put_int b (List.length sites);
      List.iter (put_str b) sites
  | Branch_forced { func; pc; preferred_taken } ->
      Buffer.add_char b 'F';
      put_str b func;
      put_int b pc;
      Buffer.add_char b (if preferred_taken then '1' else '0')
  | Loop_retry { func; pc; granted; theta } ->
      Buffer.add_char b 'L';
      put_str b func;
      put_int b pc;
      put_int b granted;
      put_int b theta
  | Path_pruned { func; pc } ->
      Buffer.add_char b 'P';
      put_str b func;
      put_int b pc
  | Bunch_pinned { seq; file_pos; nbytes; args_replayed } ->
      Buffer.add_char b 'N';
      put_int b seq;
      put_int b file_pos;
      put_int b nbytes;
      put_int b args_replayed
  | Conflict { seq; core } ->
      Buffer.add_char b 'C';
      put_int b seq;
      put_int b (List.length core);
      List.iter
        (fun { origin; cond } ->
          put_origin b origin;
          put_str b cond)
        core
  | Crash_site { func; pc; fault; in_ell } ->
      Buffer.add_char b 'X';
      put_str b func;
      put_int b pc;
      put_str b fault;
      Buffer.add_char b (if in_ell then '1' else '0')
  | Rung { rung; failure } ->
      Buffer.add_char b 'R';
      put_str b rung;
      put_str b failure

let encode (t : t) : string =
  let b = Buffer.create 256 in
  Buffer.add_char b codec_version;
  put_int b t.dropped;
  put_int b (List.length t.events);
  List.iter (put_event b) t.events;
  Buffer.contents b

let decode (s : string) : t option =
  let pos = ref 0 in
  let n = String.length s in
  let exception Bad in
  let take k =
    if n - !pos < k then raise Bad;
    let r = String.sub s !pos k in
    pos := !pos + k;
    r
  in
  let get_char () = (take 1).[0] in
  let get_bool () =
    match get_char () with '1' -> true | '0' -> false | _ -> raise Bad
  in
  let get_str () =
    let l = take 4 in
    let len =
      Char.code l.[0] lor (Char.code l.[1] lsl 8) lor (Char.code l.[2] lsl 16)
      lor (Char.code l.[3] lsl 24)
    in
    if len < 0 || len > n - !pos then raise Bad;
    take len
  in
  let get_int () =
    let s = take 8 in
    Int64.to_int (Bytes.get_int64_le (Bytes.unsafe_of_string s) 0)
  in
  (* Count prefixes: each element costs at least [min_elem] bytes, so a
     count beyond the remaining budget is corrupt — reject before
     allocating. *)
  let get_count ~min_elem =
    let k = get_int () in
    let min_elem = max 1 min_elem in
    if k < 0 || k > (n - !pos) / min_elem then raise Bad;
    k
  in
  let get_origin () =
    match get_char () with
    | 'b' ->
        let bunch = get_int () in
        let off = get_int () in
        let value = get_int () in
        Bunch_byte { bunch; off; value }
    | 'a' ->
        let bunch = get_int () in
        let arg = get_int () in
        let value = get_int () in
        Replayed_arg { bunch; arg; value }
    | 't' -> Path_constraint
    | _ -> raise Bad
  in
  let get_event () =
    match get_char () with
    | 'B' ->
        let seq = get_int () in
        let anchor = get_int () in
        let nr = get_count ~min_elem:16 in
        let ranges =
          List.init nr (fun _ ->
              let lo = get_int () in
              let hi = get_int () in
              (lo, hi))
        in
        let na = get_count ~min_elem:8 in
        let tainted_args = List.init na (fun _ -> get_int ()) in
        let ns = get_count ~min_elem:4 in
        let sites = List.init ns (fun _ -> get_str ()) in
        Taint_bunch { seq; anchor; ranges; tainted_args; sites }
    | 'F' ->
        let func = get_str () in
        let pc = get_int () in
        let preferred_taken = get_bool () in
        Branch_forced { func; pc; preferred_taken }
    | 'L' ->
        let func = get_str () in
        let pc = get_int () in
        let granted = get_int () in
        let theta = get_int () in
        Loop_retry { func; pc; granted; theta }
    | 'P' ->
        let func = get_str () in
        let pc = get_int () in
        Path_pruned { func; pc }
    | 'N' ->
        let seq = get_int () in
        let file_pos = get_int () in
        let nbytes = get_int () in
        let args_replayed = get_int () in
        Bunch_pinned { seq; file_pos; nbytes; args_replayed }
    | 'C' ->
        let seq = get_int () in
        let nc = get_count ~min_elem:5 in
        let core =
          List.init nc (fun _ ->
              let origin = get_origin () in
              let cond = get_str () in
              { origin; cond })
        in
        Conflict { seq; core }
    | 'X' ->
        let func = get_str () in
        let pc = get_int () in
        let fault = get_str () in
        let in_ell = get_bool () in
        Crash_site { func; pc; fault; in_ell }
    | 'R' ->
        let rung = get_str () in
        let failure = get_str () in
        Rung { rung; failure }
    | _ -> raise Bad
  in
  match
    if get_char () <> codec_version then raise Bad;
    let dropped = get_int () in
    if dropped < 0 then raise Bad;
    let nev = get_count ~min_elem:1 in
    let events = List.init nev (fun _ -> get_event ()) in
    if !pos <> n then raise Bad;
    { events; dropped }
  with
  | t -> Some t
  | exception Bad -> None
