(** OCTOPOCS: verification of propagated vulnerable code by PoC reforming.

    This is the paper's primary contribution (§III), assembled from the
    substrate libraries:

    - {b Preprocessing}: find ℓ with {!Octo_clone.Clone} and identify [ep]
      from the crash backtrace of S running [poc].
    - {b P1}: extract crash primitives with context-aware taint analysis
      ({!Octo_taint.Taint}).
    - {b P2}: generate guiding inputs with directed symbolic execution
      ({!Octo_symex.Directed} over {!Octo_cfg.Cfg}).
    - {b P3}: combine — at every [ep] entry of T's symbolic execution, pin
      the corresponding bunch at the file position indicator and replay the
      tainted [ep] arguments; then solve for [poc'].
    - {b P4}: verify by running T on [poc'] and checking for a crash inside
      ℓ.

    The verdicts mirror the paper's result classes: Type-I/II (triggered),
    Type-III (verified not triggerable, cases i-iii of §III-D), and Failure
    (tool error, e.g. CFG recovery). *)

open Octo_vm
module Expr = Octo_solver.Expr
module Solve = Octo_solver.Solve
module Taint = Octo_taint.Taint
module Cfg = Octo_cfg.Cfg
module Directed = Octo_symex.Directed
module Sym_state = Octo_symex.Sym_state
module Clone = Octo_clone.Clone
module Deadline = Octo_util.Deadline
module Faultinject = Octo_util.Faultinject

type not_triggerable_reason =
  | Ep_not_called           (** verification case (ii) *)
  | Program_dead            (** verification case (iii) *)
  | Constraint_conflict of int
      (** bunch bytes or replayed ep arguments conflict with T's path
          constraints at the given entry — e.g. a patched guard or a
          hardcoded argument *)
  | Unsat_model             (** combined constraints admit no concrete poc' *)

type poc_type = Type_I | Type_II

type verdict =
  | Triggered of { poc' : string; ptype : poc_type }
  | Not_triggerable of not_triggerable_reason
  | Failure of string

type report = {
  verdict : verdict;
  ep : string;
  ell : string list;               (** shared functions (T-side names) *)
  bunches : Taint.bunch list;
  taint : Taint.result option;
  symex : Directed.stats option;
  degradations : string list;
      (** every degradation rung the pipeline climbed to produce this
          verdict, in the order applied: ["dynamic-cfg"], ["symex-escalate"],
          ["symex-escalate"; "sym-file-degrade"], ...  Empty for a clean
          first-attempt run. *)
  elapsed_s : float;
}

let pp_reason ppf = function
  | Ep_not_called -> Fmt.pf ppf "ep is never called in T"
  | Program_dead -> Fmt.pf ppf "program-dead state: ℓ unreachable"
  | Constraint_conflict k -> Fmt.pf ppf "constraints conflict at ep entry #%d" k
  | Unsat_model -> Fmt.pf ppf "no concrete input satisfies the combined constraints"

let pp_verdict ppf = function
  | Triggered { ptype = Type_I; poc' } ->
      Fmt.pf ppf "TRIGGERED (Type-I, %d-byte poc')" (String.length poc')
  | Triggered { ptype = Type_II; poc' } ->
      Fmt.pf ppf "TRIGGERED (Type-II, %d-byte poc')" (String.length poc')
  | Not_triggerable r -> Fmt.pf ppf "NOT TRIGGERABLE (%a)" pp_reason r
  | Failure msg -> Fmt.pf ppf "FAILURE: %s" msg

let verdict_class = function
  | Triggered { ptype = Type_I; _ } -> "Type-I"
  | Triggered { ptype = Type_II; _ } -> "Type-II"
  | Not_triggerable _ -> "Type-III"
  | Failure _ -> "Failure"

(** [identify_ep ~ell crash] picks [ep]: the bottom-most function of the
    crash backtrace that belongs to ℓ — i.e. the first ℓ function entered on
    the path to the crash (paper "Preprocessing"). *)
let identify_ep ~(ell : string list) (crash : Interp.crash) : string option =
  List.find_opt (fun f -> List.mem f ell) crash.backtrace

(* P3: the bunch-placement callback run at every ep entry of T's symbolic
   execution. *)
let place_bunches (bunches : Taint.bunch list) (st : Sym_state.t) ~count ~args ~file_pos :
    Directed.ep_action =
  match List.nth_opt bunches (count - 1) with
  | None -> Directed.Stop
  | Some (b : Taint.bunch) ->
      let ok = ref true in
      let add c = if !ok then match Solve.add st.store c with Solve.Ok -> () | Solve.Unsat -> ok := false in
      (* Replay the ep arguments that were input-derived in S: OCTOPOCS
         "executes ep in T with the same parameters as those used in S". *)
      List.iteri
        (fun i (v, tainted) ->
          if tainted then
            match List.nth_opt args i with
            | Some ae -> add { Expr.rel = Eq; lhs = ae; rhs = Expr.const v }
            | None -> ())
        b.ep_args;
      (* Pin the bunch bytes relative to the file position indicator
         (paper Fig. 5: "sym[5:9] == 0x41"-style constraints).

         Context-aware bunches keep each primitive at its offset relative to
         the entry's anchor.  A merged (context-free) bunch has no per-entry
         anchors, so its post-anchor primitives are located "at once":
         consecutively from the indicator — the Table III failure mode. *)
      let place tgt v =
        if tgt < 0 then ok := false
        else begin
          st.max_read_off <- max st.max_read_off (tgt + 1);
          add { Expr.rel = Eq; lhs = Expr.byte tgt; rhs = Expr.const v }
        end
      in
      if b.merged then begin
        let rank = ref 0 in
        List.iter
          (fun (off, v) ->
            if !ok then
              if off < b.anchor then place (file_pos + (off - b.anchor)) v
              else begin
                place (file_pos + !rank) v;
                incr rank
              end)
          b.prims
      end
      else
        List.iter
          (fun (off, v) -> if !ok then place (file_pos + (off - b.anchor)) v)
          b.prims;
      if not !ok then Directed.Conflict
      else if count >= List.length bunches then Directed.Stop
      else Directed.Continue

let poc_of_model (model : Solve.model) ~length =
  String.init length (fun i -> Char.chr (Solve.model_byte model i land 0xff))

type config = {
  taint_mode : Taint.mode;
  taint_granularity : Taint.granularity;
  symex : Directed.config;
  sym_file_size : int;
  max_steps : int;       (** concrete-run budget (hang detection) *)
  solver_budget : int;
  dynamic_cfg : bool;
      (** when static CFG recovery fails on an unresolvable indirect call
          (the paper's Idx-15 angr defect), fall back to the dynamic CFG:
          replay T on the PoC, record indirect-call targets, and
          devirtualize ({!Octo_cfg.Devirt}) before retrying.  Off by
          default to reproduce the paper's Failure row. *)
  deadline_s : float option;
      (** wall-clock budget for one [run], enforced cooperatively at
          VM-step / symex-step / solver-node granularity.  [None] (default)
          never expires; expiry yields [Failure "deadline exceeded: ..."],
          never an escaped exception. *)
  ladder : bool;
      (** climb the degradation ladder on rescuable failures (budget or
          deadline exhaustion): retry with escalated symex budgets, then
          with a degraded symbolic file size.  On by default — no registry
          pair needs rescuing at default budgets, so Table II is
          unchanged. *)
  inject : Faultinject.t;
      (** deterministic fault injector for the chaos harness;
          {!Faultinject.none} (default) costs one tag test per site. *)
}

let default_config =
  {
    taint_mode = Taint.Context_aware;
    taint_granularity = Taint.Byte_level;
    symex = Directed.default_config;
    sym_file_size = Sym_state.default_sym_file_size;
    max_steps = Interp.default_max_steps;
    solver_budget = 400_000;
    dynamic_cfg = false;
    deadline_s = None;
    ladder = true;
    inject = Faultinject.none;
  }

(** [failure_report msg] is the minimal report for a failure that happened
    outside (or instead of) the pipeline proper — a crashed worker, an
    exceeded deadline, an injected fault. *)
let failure_report ?(degradations = []) msg =
  {
    verdict = Failure msg;
    ep = "";
    ell = [];
    bunches = [];
    taint = None;
    symex = None;
    degradations;
    elapsed_s = 0.0;
  }

(* One full pipeline pass under a fixed configuration and deadline.  The
   public {!run} wraps this with deadline construction, exception
   containment and the degradation ladder. *)
let run_attempt ~(config : config) ~(deadline : Deadline.t) ?ell ~(s : Isa.program)
    ~(t : Isa.program) ~(poc : string) () : report =
  let t_start = Unix.gettimeofday () in
  let inject = config.inject in
  let degraded = ref [] in
  let finish verdict ~ep ~ell ~bunches ~taint ~symex =
    {
      verdict;
      ep;
      ell;
      bunches;
      taint;
      symex;
      degradations = List.rev !degraded;
      elapsed_s = Unix.gettimeofday () -. t_start;
    }
  in
  let ell =
    match ell with
    | Some l -> l
    | None -> Clone.ell_names (Clone.shared_functions s t)
  in
  if ell = [] then
    finish (Failure "no shared functions between S and T") ~ep:"" ~ell ~bunches:[] ~taint:None
      ~symex:None
  else begin
    (* Preprocessing: crash S, pick ep from the backtrace. *)
    Faultinject.maybe_raise inject Faultinject.Deadline_expiry ~what:"preprocessing";
    let s_run = Interp.run ~max_steps:config.max_steps ~deadline ~inject s ~input:poc in
    match s_run.outcome with
    | Interp.Exited _ ->
        finish (Failure "poc does not crash S") ~ep:"" ~ell ~bunches:[] ~taint:None ~symex:None
    | Interp.Crashed crash -> (
        match identify_ep ~ell crash with
        | None ->
            finish (Failure "crash occurred outside the shared code ℓ") ~ep:"" ~ell ~bunches:[]
              ~taint:None ~symex:None
        | Some ep -> (
            (* P1: crash-primitive extraction. *)
            Deadline.check deadline ~what:"taint analysis";
            let taint_res =
              Taint.extract ~mode:config.taint_mode ~granularity:config.taint_granularity s
                ~poc ~ep
            in
            let bunches = taint_res.bunches in
            if bunches = [] then
              finish (Failure "taint analysis produced no crash primitives") ~ep ~ell ~bunches
                ~taint:(Some taint_res) ~symex:None
            else begin
              (* P2 prerequisite: CFG recovery; its static failure is the
                 paper's Idx-15 tool-failure mode.  With [dynamic_cfg] the
                 pipeline repairs it by devirtualizing against observed
                 call targets; symbolic execution then runs on the repaired
                 binary while P4 verifies against the original. *)
              let cfg_result =
                match Cfg.build_cached t ~ep with
                | cfg -> Ok (t, cfg)
                | exception Cfg.Cfg_error msg ->
                    if not config.dynamic_cfg then Error msg
                    else begin
                      let observed = Octo_cfg.Dyncfg.observe t ~seeds:[ poc ] in
                      let t' = Octo_cfg.Devirt.apply t ~observed in
                      match Cfg.build_cached t' ~ep with
                      | cfg ->
                          degraded := "dynamic-cfg" :: !degraded;
                          Ok (t', cfg)
                      | exception Cfg.Cfg_error msg2 ->
                          Error (msg ^ "; dynamic CFG also failed: " ^ msg2)
                    end
              in
              match cfg_result with
              | Error msg ->
                  finish (Failure ("CFG recovery failed: " ^ msg)) ~ep ~ell ~bunches
                    ~taint:(Some taint_res) ~symex:None
              | Ok (t_sym, cfg) ->
                  if not (Cfg.ep_called_somewhere t_sym ~ep) then
                    finish (Not_triggerable Ep_not_called) ~ep ~ell ~bunches
                      ~taint:(Some taint_res) ~symex:None
                  else begin
                    (* P2 + P3: directed symbolic execution with bunch
                       placement at every ep entry. *)
                    Faultinject.maybe_raise inject Faultinject.Deadline_expiry
                      ~what:"directed symbolic execution";
                    let outcome, stats =
                      Directed.run ~config:config.symex ~sym_file_size:config.sym_file_size
                        ~deadline t_sym ~ep ~cfg ~on_ep:(place_bunches bunches)
                    in
                    let symex = Some stats in
                    match outcome with
                    | Directed.Failed Directed.Ep_not_in_cfg ->
                        finish (Not_triggerable Ep_not_called) ~ep ~ell ~bunches
                          ~taint:(Some taint_res) ~symex
                    | Directed.Failed Directed.Program_dead ->
                        finish (Not_triggerable Program_dead) ~ep ~ell ~bunches
                          ~taint:(Some taint_res) ~symex
                    | Directed.Failed (Directed.Constraint_conflict k) ->
                        finish (Not_triggerable (Constraint_conflict k)) ~ep ~ell ~bunches
                          ~taint:(Some taint_res) ~symex
                    | Directed.Failed (Directed.Budget_exhausted what) ->
                        finish (Failure ("symbolic execution budget exhausted: " ^ what)) ~ep
                          ~ell ~bunches ~taint:(Some taint_res) ~symex
                    | Directed.Reached st -> (
                        match Solve.solve ~budget:config.solver_budget ~deadline ~inject st.store with
                        | Solve.Unsat_result ->
                            finish (Not_triggerable Unsat_model) ~ep ~ell ~bunches
                              ~taint:(Some taint_res) ~symex
                        | Solve.Unknown ->
                            finish (Failure "constraint solver budget exhausted") ~ep ~ell
                              ~bunches ~taint:(Some taint_res) ~symex
                        | Solve.Sat model ->
                            (* P4: verification. *)
                            Faultinject.maybe_raise inject Faultinject.Deadline_expiry
                              ~what:"verification";
                            let poc' = poc_of_model model ~length:st.max_read_off in
                            let t_run =
                              Interp.run ~max_steps:config.max_steps ~deadline ~inject t
                                ~input:poc'
                            in
                            if Interp.crash_in t_run ~funcs:ell then begin
                              (* Type-I iff the original poc already works
                                 on T (its guiding input needed no
                                 reform). *)
                              let orig =
                                Interp.run ~max_steps:config.max_steps ~deadline ~inject t
                                  ~input:poc
                              in
                              let ptype =
                                if Interp.crash_in orig ~funcs:ell then Type_I else Type_II
                              in
                              finish (Triggered { poc'; ptype }) ~ep ~ell ~bunches
                                ~taint:(Some taint_res) ~symex
                            end
                            else
                              finish
                                (Failure "generated poc' did not reproduce the crash in T")
                                ~ep ~ell ~bunches ~taint:(Some taint_res) ~symex)
                  end
            end))
  end

(* ------------------------------------------------------------------ *)
(* Degradation ladder. *)

(* A failure is rescuable when a retry with more budget (or less symbolic
   surface) could plausibly change the verdict.  Semantic failures — no
   shared code, PoC does not crash S, CFG recovery failed, poc' did not
   reproduce — are facts about the pair, not about resource limits, and are
   returned as-is. *)
let rescuable_failure msg =
  let pre p = String.length msg >= String.length p && String.sub msg 0 (String.length p) = p in
  pre "symbolic execution budget exhausted"
  || pre "deadline exceeded"
  || pre "constraint solver budget exhausted"

(* The rungs, mildest first.  Escalation multiplies every symex budget;
   degradation additionally shrinks the symbolic file (fewer symbolic bytes
   = smaller constraint stores and cheaper model search) while keeping the
   escalated budgets. *)
let ladder_rungs (config : config) : (string * config) list =
  let sx = config.symex in
  let escalated =
    {
      config with
      symex =
        {
          Directed.theta = sx.theta * 4;
          max_runs = sx.max_runs * 8;
          max_steps = sx.max_steps * 4;
        };
    }
  in
  [
    ("symex-escalate", escalated);
    ("sym-file-degrade", { escalated with sym_file_size = max 256 (config.sym_file_size / 4) });
  ]

(** [run ?config ?ell ~s ~t ~poc ()] executes the full pipeline.

    ℓ defaults to the clone-detection result of {!Clone.shared_functions};
    pass [?ell] to override (the paper assumes ℓ is an input).  The report
    always carries whatever intermediate artifacts were produced, so failed
    runs remain debuggable.

    Robustness contract: this function does not raise.  A deadline expiry
    or an injected fault becomes [Failure "deadline exceeded: ..."] /
    [Failure "injected fault: ..."].  When [config.ladder] is on, rescuable
    failures (budget or deadline exhaustion) are retried up the degradation
    ladder; a rescued verdict lists the rungs climbed in [degradations],
    and if every rung fails the original failure is returned verbatim with
    the tried rungs recorded. *)
let run ?(config = default_config) ?ell ~(s : Isa.program) ~(t : Isa.program) ~(poc : string) ()
    : report =
  let t_start = Unix.gettimeofday () in
  let deadline =
    match config.deadline_s with
    | None -> Deadline.none
    | Some seconds -> Deadline.after ~seconds
  in
  let attempt cfg =
    match run_attempt ~config:cfg ~deadline ?ell ~s ~t ~poc () with
    | r -> r
    | exception Deadline.Deadline_exceeded what ->
        failure_report ("deadline exceeded: " ^ what)
    | exception Faultinject.Injected what -> failure_report ("injected fault: " ^ what)
  in
  let finalize r = { r with elapsed_s = Unix.gettimeofday () -. t_start } in
  let r0 = attempt config in
  match r0.verdict with
  | Failure msg when config.ladder && rescuable_failure msg ->
      let rec climb tried = function
        | [] -> finalize { r0 with degradations = r0.degradations @ List.rev tried }
        | (rung, cfg) :: rest ->
            if Deadline.expired deadline then
              (* No budget left to climb with: the original failure stands;
                 record only the rungs actually attempted. *)
              finalize { r0 with degradations = r0.degradations @ List.rev tried }
            else begin
              let r = attempt cfg in
              match r.verdict with
              | Failure msg' when rescuable_failure msg' -> climb (rung :: tried) rest
              | Failure _ ->
                  (* The degraded run failed differently; the first
                     attempt's failure is the honest one. *)
                  finalize
                    { r0 with degradations = r0.degradations @ List.rev (rung :: tried) }
              | _ ->
                  finalize { r with degradations = r.degradations @ List.rev (rung :: tried) }
            end
      in
      climb [] (ladder_rungs config)
  | _ -> finalize r0

(* ------------------------------------------------------------------ *)
(* Batch verification. *)

type job = {
  label : string;
  js : Isa.program;
  jt : Isa.program;
  jpoc : string;
  jell : string list option;
  jconfig : config option;  (** per-job override of the batch config *)
}

let job ?ell ?config ~label ~s ~t ~poc () =
  { label; js = s; jt = t; jpoc = poc; jell = ell; jconfig = config }

(** [run_all ?config ?jobs ?retries jobs_list] verifies every pair, fanning
    out over a fixed pool of [jobs] worker domains ([jobs <= 1] runs
    serially in the calling domain).  Results keep the input order.  Pairs
    are independent — each run builds its own stores and states — so corpus
    throughput scales with cores until memory bandwidth saturates.

    Crash isolation: a job whose worker raises (after [retries] extra
    attempts) yields [(label, Failure "worker crashed: ...")] — the batch
    always returns one labelled report per input job and never forfeits its
    batch-mates' completed work. *)
let run_all ?(config = default_config) ?(jobs = 1) ?(retries = 0) (batch : job list) :
    (string * report) list =
  let one j =
    let cfg = Option.value j.jconfig ~default:config in
    (* The chaos harness's synthetic worker crash fires *outside* run's
       containment on purpose: it exercises the pool's crash isolation. *)
    Faultinject.maybe_raise cfg.inject Faultinject.Worker_crash
      ~what:"synthetic worker exception";
    run ~config:cfg ?ell:j.jell ~s:j.js ~t:j.jt ~poc:j.jpoc ()
  in
  List.map2
    (fun j r ->
      match r with
      | Stdlib.Ok report -> (j.label, report)
      | Stdlib.Error (e, _bt) ->
          (j.label, failure_report ("worker crashed: " ^ Printexc.to_string e)))
    batch
    (Octo_util.Pool.parallel_map_result ~jobs ~retries one batch)
