(** OCTOPOCS: verification of propagated vulnerable code by PoC reforming.

    This is the paper's primary contribution (§III), assembled from the
    substrate libraries:

    - {b Preprocessing}: find ℓ with {!Octo_clone.Clone} and identify [ep]
      from the crash backtrace of S running [poc].
    - {b P1}: extract crash primitives with context-aware taint analysis
      ({!Octo_taint.Taint}).
    - {b P2}: generate guiding inputs with directed symbolic execution
      ({!Octo_symex.Directed} over {!Octo_cfg.Cfg}).
    - {b P3}: combine — at every [ep] entry of T's symbolic execution, pin
      the corresponding bunch at the file position indicator and replay the
      tainted [ep] arguments; then solve for [poc'].
    - {b P4}: verify by running T on [poc'] and checking for a crash inside
      ℓ.

    The verdicts mirror the paper's result classes: Type-I/II (triggered),
    Type-III (verified not triggerable, cases i-iii of §III-D), and Failure
    (tool error, e.g. CFG recovery). *)

open Octo_vm
module Expr = Octo_solver.Expr
module Solve = Octo_solver.Solve
module Taint = Octo_taint.Taint
module Cfg = Octo_cfg.Cfg
module Directed = Octo_symex.Directed
module Sym_state = Octo_symex.Sym_state
module Clone = Octo_clone.Clone
module Deadline = Octo_util.Deadline
module Faultinject = Octo_util.Faultinject
module Log = Octo_util.Log
module Metrics = Octo_util.Metrics
module Sandbox = Octo_util.Sandbox
module Telemetry = Octo_util.Telemetry
module Trace = Octo_util.Trace
module Provenance = Provenance

type not_triggerable_reason =
  | Ep_not_called           (** verification case (ii) *)
  | Program_dead            (** verification case (iii) *)
  | Constraint_conflict of int
      (** bunch bytes or replayed ep arguments conflict with T's path
          constraints at the given entry — e.g. a patched guard or a
          hardcoded argument *)
  | Unsat_model             (** combined constraints admit no concrete poc' *)

type poc_type = Type_I | Type_II

type verdict =
  | Triggered of { poc' : string; ptype : poc_type }
  | Not_triggerable of not_triggerable_reason
  | Failure of string

type report = {
  verdict : verdict;
  ep : string;
  ell : string list;               (** shared functions (T-side names) *)
  bunches : Taint.bunch list;
  taint : Taint.result option;
  symex : Directed.stats option;
  degradations : string list;
      (** every degradation rung the pipeline climbed to produce this
          verdict, in the order applied: ["dynamic-cfg"], ["symex-escalate"],
          ["symex-escalate"; "sym-file-degrade"], ...  Empty for a clean
          first-attempt run. *)
  elapsed_s : float;
  metrics : Metrics.snapshot option;
      (** per-pair metrics delta (counters and per-phase latency) recorded
          by the domain that ran this pair, when collection was enabled
          ([--metrics] / {!Metrics.enable}); [None] otherwise.  Journaled
          alongside the verdict. *)
  provenance : Provenance.t option;
      (** per-pair causal evidence log recorded when collection was
          enabled ([--provenance] / {!Provenance.enable}); [None]
          otherwise.  Journaled as an optional OPR3 tail field and
          rendered by {!explain_report} / the [explain] subcommand. *)
}

let pp_reason ppf = function
  | Ep_not_called -> Fmt.pf ppf "ep is never called in T"
  | Program_dead -> Fmt.pf ppf "program-dead state: ℓ unreachable"
  | Constraint_conflict k -> Fmt.pf ppf "constraints conflict at ep entry #%d" k
  | Unsat_model -> Fmt.pf ppf "no concrete input satisfies the combined constraints"

let pp_verdict ppf = function
  | Triggered { ptype = Type_I; poc' } ->
      Fmt.pf ppf "TRIGGERED (Type-I, %d-byte poc')" (String.length poc')
  | Triggered { ptype = Type_II; poc' } ->
      Fmt.pf ppf "TRIGGERED (Type-II, %d-byte poc')" (String.length poc')
  | Not_triggerable r -> Fmt.pf ppf "NOT TRIGGERABLE (%a)" pp_reason r
  | Failure msg -> Fmt.pf ppf "FAILURE: %s" msg

let verdict_class = function
  | Triggered { ptype = Type_I; _ } -> "Type-I"
  | Triggered { ptype = Type_II; _ } -> "Type-II"
  | Not_triggerable _ -> "Type-III"
  | Failure _ -> "Failure"

(** [conflict_detail prov] distills the last P3 conflict of a provenance
    log into one sentence: which bunch bytes (or replayed arguments) clash
    with which of T's own path constraints.  [None] when no provenance or
    no conflict was recorded. *)
let conflict_detail (prov : Provenance.t option) : string option =
  match prov with
  | None -> None
  | Some p -> (
      match Provenance.last_conflict p with
      | None -> None
      | Some (seq, []) ->
          (* No minimized core: the placement itself was impossible (a
             primitive lands before the file-position indicator, offset
             < 0) — there is no constraint to blame. *)
          Some
            (Fmt.str "bunch %d could not be placed: a primitive precedes the file-position \
                      indicator" seq)
      | Some (seq, core) -> (
          let pins, path =
            List.partition
              (fun (e : Provenance.core_entry) -> e.origin <> Provenance.Path_constraint)
              core
          in
          let pp_pin ppf (e : Provenance.core_entry) = Provenance.pp_origin ppf e.origin in
          let pins_s =
            match pins with
            | [] -> Fmt.str "bunch %d" seq
            | _ -> Fmt.str "%a" Fmt.(list ~sep:(any " + ") pp_pin) pins
          in
          match path with
          | [] -> Some (Fmt.str "%s: the pinned constraints contradict each other" pins_s)
          | e :: _ -> Some (Fmt.str "%s clashes with T's path constraint `%s`" pins_s e.cond)))

(** [pp_verdict_prov prov ppf v] is {!pp_verdict} upgraded with provenance:
    a [Constraint_conflict] verdict additionally names the conflicting
    bunch bytes and the T-side constraint when a conflict core was
    recorded.  Identical to {!pp_verdict} without provenance. *)
let pp_verdict_prov prov ppf v =
  match v with
  | Not_triggerable (Constraint_conflict k) -> (
      match conflict_detail prov with
      | Some d ->
          Fmt.pf ppf "NOT TRIGGERABLE (constraints conflict at ep entry #%d: %s)" k d
      | None -> pp_verdict ppf v)
  | _ -> pp_verdict ppf v

(** [explain_report ~label r] renders the deterministic, diffable
    explanation narrative for one verified pair: header, then one section
    per pipeline phase listing that phase's provenance events, the
    expanded minimized core of the last conflict (if any), and the ladder
    rungs.  Contains no timings, addresses or other run-varying data —
    two runs of the same pair produce byte-identical output, which is
    what the golden tests pin. *)
let explain_report ~label (r : report) : string =
  let b = Buffer.create 1024 in
  let pf fmt = Fmt.kstr (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  pf "OCTOPOCS explanation — %s" label;
  pf "verdict : %a" (pp_verdict_prov r.provenance) r.verdict;
  pf "class   : %s" (verdict_class r.verdict);
  if r.ep <> "" then pf "ep      : %s" r.ep;
  if r.ell <> [] then pf "ℓ       : %s" (String.concat ", " r.ell);
  (match r.verdict with
  | Triggered { poc'; _ } ->
      pf "poc'    : %d bytes, md5 %s" (String.length poc')
        (Digest.to_hex (Digest.string poc'))
  | _ -> ());
  (match r.provenance with
  | None ->
      pf "";
      pf "no provenance recorded — `explain PAIR` enables collection itself; journaled \
          records carry provenance only when the run used --provenance (pre-OPR3 journals \
          never do)"
  | Some p ->
      let section title pred =
        let evs = List.filter pred p.Provenance.events in
        pf "";
        pf "%s" title;
        if evs = [] then pf "  (nothing recorded)"
        else begin
          (* Cap each section so loop-heavy pairs stay readable; the cap
             is deterministic, and the summary line keeps the total. *)
          let cap = 12 in
          List.iteri (fun i ev -> if i < cap then pf "  %a" Provenance.pp_event ev) evs;
          let extra = List.length evs - cap in
          if extra > 0 then pf "  ... (+%d more)" extra
        end
      in
      section "P1 — crash primitives (taint)" (function
        | Provenance.Taint_bunch _ -> true
        | _ -> false);
      section "P2 — directed path search" (function
        | Provenance.Branch_forced _ | Provenance.Loop_retry _ | Provenance.Path_pruned _ ->
            true
        | _ -> false);
      section "P3 — combine (bunch pinning)" (function
        | Provenance.Bunch_pinned _ | Provenance.Conflict _ -> true
        | _ -> false);
      (match Provenance.last_conflict p with
      | None -> ()
      | Some (seq, core) ->
          pf "  minimized conflicting core for bunch %d:" seq;
          if core = [] then
            pf "    (empty: a primitive precedes the file-position indicator)"
          else
            List.iter
              (fun (e : Provenance.core_entry) ->
                pf "    %a: `%s`" Provenance.pp_origin e.origin e.cond)
              core;
          (match conflict_detail r.provenance with
          | Some d -> pf "  => %s" d
          | None -> ()));
      section "P4 — verification" (function
        | Provenance.Crash_site _ -> true
        | _ -> false);
      section "degradation ladder" (function Provenance.Rung _ -> true | _ -> false);
      pf "";
      pf "degradations: %s"
        (match r.degradations with [] -> "(none)" | ds -> String.concat "," ds);
      pf "provenance  : %d event(s), %d dropped" (Provenance.event_count p)
        p.Provenance.dropped);
  Buffer.contents b

(** [identify_ep ~ell crash] picks [ep]: the bottom-most function of the
    crash backtrace that belongs to ℓ — i.e. the first ℓ function entered on
    the path to the crash (paper "Preprocessing"). *)
let identify_ep ~(ell : string list) (crash : Interp.crash) : string option =
  List.find_opt (fun f -> List.mem f ell) crash.backtrace

(* P3: the bunch-placement callback run at every ep entry of T's symbolic
   execution.

   Partially applied once per pipeline attempt: the [pins] ledger — what
   each constraint WE added means (which bunch byte, which replayed
   argument) — lives across the entries of one symbolic state so that a
   conflict at entry k can label a core drawn from the whole store.  A
   fresh state re-enters ep from [count = 1], which resets the ledger. *)
let place_bunches (bunches : Taint.bunch list) =
  let pins : (Provenance.origin * Expr.cond) list ref = ref [] in
  fun (st : Sym_state.t) ~count ~args ~file_pos : Directed.ep_action ->
    Trace.with_span Trace.Combine "place-bunch" @@ fun () ->
    let prov_on = Provenance.is_on () in
    if prov_on && count = 1 then pins := [];
    match List.nth_opt bunches (count - 1) with
    | None -> Directed.Stop
    | Some (b : Taint.bunch) ->
        (* Each entry's pins are one incremental transaction on the live
           store: propagation reuses every narrowing performed by the path
           constraints (and earlier pins) instead of re-propagating from
           scratch, and a conflicting batch is rolled back to the exact
           pre-entry state after the core has been extracted. *)
        let scope = Solve.push_scope st.store in
        let ok = ref true in
        let nbytes = ref 0 and nargs = ref 0 in
        let add origin c =
          if !ok then begin
            if prov_on then pins := (origin, c) :: !pins;
            match Solve.add st.store c with Solve.Ok -> () | Solve.Unsat -> ok := false
          end
        in
        (* Replay the ep arguments that were input-derived in S: OCTOPOCS
           "executes ep in T with the same parameters as those used in S". *)
        List.iteri
          (fun i (v, tainted) ->
            if tainted then
              match List.nth_opt args i with
              | Some ae ->
                  incr nargs;
                  add
                    (Provenance.Replayed_arg { bunch = count; arg = i; value = v })
                    { Expr.rel = Eq; lhs = ae; rhs = Expr.const v }
              | None -> ())
          b.ep_args;
        (* Pin the bunch bytes relative to the file position indicator
           (paper Fig. 5: "sym[5:9] == 0x41"-style constraints).

           Context-aware bunches keep each primitive at its offset relative to
           the entry's anchor.  A merged (context-free) bunch has no per-entry
           anchors, so its post-anchor primitives are located "at once":
           consecutively from the indicator — the Table III failure mode. *)
        let place tgt v =
          if tgt < 0 then ok := false
          else begin
            st.max_read_off <- max st.max_read_off (tgt + 1);
            incr nbytes;
            add
              (Provenance.Bunch_byte { bunch = count; off = tgt; value = v })
              { Expr.rel = Eq; lhs = Expr.byte tgt; rhs = Expr.const v }
          end
        in
        if b.merged then begin
          let rank = ref 0 in
          List.iter
            (fun (off, v) ->
              if !ok then
                if off < b.anchor then place (file_pos + (off - b.anchor)) v
                else begin
                  place (file_pos + !rank) v;
                  incr rank
                end)
            b.prims
        end
        else
          List.iter
            (fun (off, v) -> if !ok then place (file_pos + (off - b.anchor)) v)
            b.prims;
        if not !ok then begin
          (* Conflict evidence: minimize the store (T's path constraints
             plus our pins — the failing constraint is still in it) to a
             core, then label each member against the pin ledger.  Only
             paid on the conflict path, and only with provenance on. *)
          if prov_on then begin
            let core = Solve.unsat_core (Solve.constraints st.store) in
            let entries =
              List.map
                (fun c ->
                  let origin =
                    match List.find_opt (fun (_, pc) -> pc = c) !pins with
                    | Some (o, _) -> o
                    | None -> Provenance.Path_constraint
                  in
                  { Provenance.origin; cond = Fmt.str "%a" Expr.pp_cond c })
                core
            in
            Provenance.emit (Provenance.Conflict { seq = count; core = entries })
          end;
          (* Core extraction above ran against the scoped store (pins
             included); only now roll the failed batch back. *)
          Solve.pop_scope st.store scope;
          Directed.Conflict
        end
        else begin
          Solve.commit_scope st.store scope;
          if prov_on then
            Provenance.emit
              (Provenance.Bunch_pinned
                 { seq = count; file_pos; nbytes = !nbytes; args_replayed = !nargs });
          if count >= List.length bunches then Directed.Stop else Directed.Continue
        end

let poc_of_model (model : Solve.model) ~length =
  String.init length (fun i -> Char.chr (Solve.model_byte model i land 0xff))

type config = {
  taint_mode : Taint.mode;
  taint_granularity : Taint.granularity;
  symex : Directed.config;
  sym_file_size : int;
  max_steps : int;       (** concrete-run budget (hang detection) *)
  solver_budget : int;
  dynamic_cfg : bool;
      (** when static CFG recovery fails on an unresolvable indirect call
          (the paper's Idx-15 angr defect), fall back to the dynamic CFG:
          replay T on the PoC, record indirect-call targets, and
          devirtualize ({!Octo_cfg.Devirt}) before retrying.  Off by
          default to reproduce the paper's Failure row. *)
  deadline_s : float option;
      (** wall-clock budget for one [run], enforced cooperatively at
          VM-step / symex-step / solver-node granularity.  [None] (default)
          never expires; expiry yields [Failure "deadline exceeded: ..."],
          never an escaped exception. *)
  ladder : bool;
      (** climb the degradation ladder on rescuable failures (budget or
          deadline exhaustion): retry with escalated symex budgets, then
          with a degraded symbolic file size.  On by default — no registry
          pair needs rescuing at default budgets, so Table II is
          unchanged. *)
  inject : Faultinject.t;
      (** deterministic fault injector for the chaos harness;
          {!Faultinject.none} (default) costs one tag test per site. *)
  spec_jobs : int;
      (** speculative loop-retry width for P2: with [spec_jobs > 1] (and
          provenance off — speculation is forced off while it is on, since
          the provenance ledger and probe callbacks are serial), the
          directed executor runs up to [spec_jobs - 1] predicted retry
          attempts ahead on the shared pool.  Verdicts, stats and
          deterministic metrics counters are identical to a serial run by
          construction, so this is a speed knob, not a semantic one — it
          is excluded from {!content_key}.  Default 1 (off). *)
}

let default_config =
  {
    taint_mode = Taint.Context_aware;
    taint_granularity = Taint.Byte_level;
    symex = Directed.default_config;
    sym_file_size = Sym_state.default_sym_file_size;
    max_steps = Interp.default_max_steps;
    solver_budget = 400_000;
    dynamic_cfg = false;
    deadline_s = None;
    ladder = true;
    inject = Faultinject.none;
    spec_jobs = 1;
  }

(** [failure_report msg] is the minimal report for a failure that happened
    outside (or instead of) the pipeline proper — a crashed worker, an
    exceeded deadline, an injected fault. *)
let failure_report ?(degradations = []) msg =
  {
    verdict = Failure msg;
    ep = "";
    ell = [];
    bunches = [];
    taint = None;
    symex = None;
    degradations;
    elapsed_s = 0.0;
    metrics = None;
    provenance = None;
  }

(* One full pipeline pass under a fixed configuration and deadline.  The
   public {!run} wraps this with deadline construction, exception
   containment and the degradation ladder. *)
let run_attempt ~(config : config) ~(deadline : Deadline.t) ?ell ~(s : Isa.program)
    ~(t : Isa.program) ~(poc : string) () : report =
  let t_start = Unix.gettimeofday () in
  let inject = config.inject in
  let degraded = ref [] in
  let finish verdict ~ep ~ell ~bunches ~taint ~symex =
    {
      verdict;
      ep;
      ell;
      bunches;
      taint;
      symex;
      degradations = List.rev !degraded;
      elapsed_s = Unix.gettimeofday () -. t_start;
      metrics = None;
      provenance = None;
    }
  in
  (* Canonical content digests, computed once per attempt: the ℓ cache and
     both compilation lookups key off them. *)
  let sdig = Compile.program_digest s in
  let tdig = Compile.program_digest t in
  let ell =
    match ell with
    | Some l -> l
    | None -> Clone.ell_names (Clone.shared_functions_cached ~sdig ~tdig s t)
  in
  if ell = [] then
    finish (Failure "no shared functions between S and T") ~ep:"" ~ell ~bunches:[] ~taint:None
      ~symex:None
  else begin
    (* Preprocessing: crash S, pick ep from the backtrace. *)
    Faultinject.maybe_raise inject Faultinject.Deadline_expiry ~what:"preprocessing";
    let cs = Compile.get ~digest:sdig s in
    let s_run = Compile.run ~max_steps:config.max_steps ~deadline ~inject cs ~input:poc in
    match s_run.outcome with
    | Interp.Exited _ ->
        finish (Failure "poc does not crash S") ~ep:"" ~ell ~bunches:[] ~taint:None ~symex:None
    | Interp.Crashed crash -> (
        match identify_ep ~ell crash with
        | None ->
            finish (Failure "crash occurred outside the shared code ℓ") ~ep:"" ~ell ~bunches:[]
              ~taint:None ~symex:None
        | Some ep -> (
            (* P1: crash-primitive extraction. *)
            Deadline.check deadline ~what:"taint analysis";
            let taint_res =
              Trace.with_span Trace.Taint "extract" @@ fun () ->
              Taint.extract ~mode:config.taint_mode ~granularity:config.taint_granularity
                ~compiled:cs s ~poc ~ep
            in
            let bunches = taint_res.bunches in
            if Provenance.is_on () then
              List.iter
                (fun (b : Taint.bunch) ->
                  Provenance.emit
                    (Provenance.Taint_bunch
                       {
                         seq = b.seq;
                         anchor = b.anchor;
                         ranges = Provenance.ranges_of_offsets (List.map fst b.prims);
                         tainted_args =
                           List.mapi (fun i (_, tainted) -> if tainted then i else -1) b.ep_args
                           |> List.filter (fun i -> i >= 0);
                         sites = b.sites;
                       }))
                bunches;
            if bunches = [] then
              finish (Failure "taint analysis produced no crash primitives") ~ep ~ell ~bunches
                ~taint:(Some taint_res) ~symex:None
            else begin
              (* P2 prerequisite: CFG recovery; its static failure is the
                 paper's Idx-15 tool-failure mode.  With [dynamic_cfg] the
                 pipeline repairs it by devirtualizing against observed
                 call targets; symbolic execution then runs on the repaired
                 binary while P4 verifies against the original. *)
              let cfg_result =
                Trace.with_span Trace.Cfg "build" @@ fun () ->
                match Cfg.build_cached t ~ep with
                | cfg -> Ok (t, cfg)
                | exception Cfg.Cfg_error msg ->
                    if not config.dynamic_cfg then Error msg
                    else begin
                      let observed = Octo_cfg.Dyncfg.observe t ~seeds:[ poc ] in
                      let t' = Octo_cfg.Devirt.apply t ~observed in
                      match Cfg.build_cached t' ~ep with
                      | cfg ->
                          degraded := "dynamic-cfg" :: !degraded;
                          if Provenance.is_on () then
                            Provenance.emit
                              (Provenance.Rung
                                 { rung = "dynamic-cfg"; failure = "CFG recovery failed: " ^ msg });
                          Ok (t', cfg)
                      | exception Cfg.Cfg_error msg2 ->
                          Error (msg ^ "; dynamic CFG also failed: " ^ msg2)
                    end
              in
              match cfg_result with
              | Error msg ->
                  finish (Failure ("CFG recovery failed: " ^ msg)) ~ep ~ell ~bunches
                    ~taint:(Some taint_res) ~symex:None
              | Ok (t_sym, cfg) ->
                  if not (Cfg.ep_called_somewhere t_sym ~ep) then
                    finish (Not_triggerable Ep_not_called) ~ep ~ell ~bunches
                      ~taint:(Some taint_res) ~symex:None
                  else begin
                    (* P2 + P3: directed symbolic execution with bunch
                       placement at every ep entry. *)
                    Faultinject.maybe_raise inject Faultinject.Deadline_expiry
                      ~what:"directed symbolic execution";
                    let probe =
                      if not (Provenance.is_on ()) then None
                      else
                        Some
                          {
                            Directed.on_forced =
                              (fun ~func ~pc ~preferred_taken ->
                                Provenance.emit
                                  (Provenance.Branch_forced { func; pc; preferred_taken }));
                            on_pruned =
                              (fun ~func ~pc ->
                                Provenance.emit (Provenance.Path_pruned { func; pc }));
                            on_loop_retry =
                              (fun ~func ~pc ~granted ~theta ->
                                Provenance.emit
                                  (Provenance.Loop_retry { func; pc; granted; theta }));
                          }
                    in
                    (* Speculation is gated off whenever a probe exists
                       (provenance on): the pin ledger and probe callbacks
                       assume serial attempts. *)
                    let spec_jobs = if probe = None then config.spec_jobs else 1 in
                    let outcome, stats =
                      Trace.with_span Trace.Symex "directed" @@ fun () ->
                      Directed.run ~config:config.symex ~sym_file_size:config.sym_file_size
                        ?probe ~deadline ~spec_jobs t_sym ~ep ~cfg
                        ~on_ep:(place_bunches bunches)
                    in
                    let symex = Some stats in
                    match outcome with
                    | Directed.Failed Directed.Ep_not_in_cfg ->
                        finish (Not_triggerable Ep_not_called) ~ep ~ell ~bunches
                          ~taint:(Some taint_res) ~symex
                    | Directed.Failed Directed.Program_dead ->
                        finish (Not_triggerable Program_dead) ~ep ~ell ~bunches
                          ~taint:(Some taint_res) ~symex
                    | Directed.Failed (Directed.Constraint_conflict k) ->
                        finish (Not_triggerable (Constraint_conflict k)) ~ep ~ell ~bunches
                          ~taint:(Some taint_res) ~symex
                    | Directed.Failed (Directed.Budget_exhausted what) ->
                        finish (Failure ("symbolic execution budget exhausted: " ^ what)) ~ep
                          ~ell ~bunches ~taint:(Some taint_res) ~symex
                    | Directed.Reached st -> (
                        match Solve.solve ~budget:config.solver_budget ~deadline ~inject st.store with
                        | Solve.Unsat_result ->
                            finish (Not_triggerable Unsat_model) ~ep ~ell ~bunches
                              ~taint:(Some taint_res) ~symex
                        | Solve.Unknown ->
                            finish (Failure "constraint solver budget exhausted") ~ep ~ell
                              ~bunches ~taint:(Some taint_res) ~symex
                        | Solve.Sat model ->
                            (* P4: verification. *)
                            Faultinject.maybe_raise inject Faultinject.Deadline_expiry
                              ~what:"verification";
                            let poc' = poc_of_model model ~length:st.max_read_off in
                            let ct = Compile.get ~digest:tdig t in
                            let t_run =
                              Trace.with_span Trace.Verify "replay-poc'" @@ fun () ->
                              Compile.run ~max_steps:config.max_steps ~deadline ~inject ct
                                ~input:poc'
                            in
                            (match t_run.outcome with
                            | Interp.Crashed c when Provenance.is_on () ->
                                Provenance.emit
                                  (Provenance.Crash_site
                                     {
                                       func = c.crash_func;
                                       pc = c.crash_pc;
                                       fault = Fmt.str "%a" Mem.pp_fault c.fault;
                                       in_ell = List.mem c.crash_func ell;
                                     })
                            | _ -> ());
                            if Interp.crash_in t_run ~funcs:ell then begin
                              (* Type-I iff the original poc already works
                                 on T (its guiding input needed no
                                 reform). *)
                              let orig =
                                Trace.with_span Trace.Verify "replay-poc" @@ fun () ->
                                Compile.run ~max_steps:config.max_steps ~deadline ~inject ct
                                  ~input:poc
                              in
                              let ptype =
                                if Interp.crash_in orig ~funcs:ell then Type_I else Type_II
                              in
                              finish (Triggered { poc'; ptype }) ~ep ~ell ~bunches
                                ~taint:(Some taint_res) ~symex
                            end
                            else
                              finish
                                (Failure "generated poc' did not reproduce the crash in T")
                                ~ep ~ell ~bunches ~taint:(Some taint_res) ~symex)
                  end
            end))
  end

(* ------------------------------------------------------------------ *)
(* Degradation ladder. *)

(* A failure is rescuable when a retry with more budget (or less symbolic
   surface) could plausibly change the verdict.  Semantic failures — no
   shared code, PoC does not crash S, CFG recovery failed, poc' did not
   reproduce — are facts about the pair, not about resource limits, and are
   returned as-is. *)
let rescuable_failure msg =
  let pre p = String.length msg >= String.length p && String.sub msg 0 (String.length p) = p in
  pre "symbolic execution budget exhausted"
  || pre "deadline exceeded"
  || pre "constraint solver budget exhausted"

(* The rungs, mildest first.  Escalation multiplies every symex budget;
   degradation additionally shrinks the symbolic file (fewer symbolic bytes
   = smaller constraint stores and cheaper model search) while keeping the
   escalated budgets. *)
let ladder_rungs (config : config) : (string * config) list =
  let sx = config.symex in
  let escalated =
    {
      config with
      symex =
        {
          Directed.theta = sx.theta * 4;
          max_runs = sx.max_runs * 8;
          max_steps = sx.max_steps * 4;
        };
    }
  in
  [
    ("symex-escalate", escalated);
    ("sym-file-degrade", { escalated with sym_file_size = max 256 (config.sym_file_size / 4) });
  ]

(** [climb_ladder ~deadline ~attempt r0 rungs] retries a rescuable failure
    [r0] up the ladder.  The deadline is the ONE budget shared by every
    rung — a retried rung cannot reset the clock, and once it expires the
    climb stops and the original failure stands with only the rungs
    actually attempted recorded.  A rung that fails differently (a
    non-rescuable failure) also ends the climb with the first attempt's
    failure, the honest one.  Exposed for testing. *)
let climb_ladder ~(deadline : Deadline.t) ~(attempt : config -> report) (r0 : report) rungs :
    report =
  let rec climb ~last_failure tried = function
    | [] -> { r0 with degradations = r0.degradations @ List.rev tried }
    | (rung, cfg) :: rest ->
        if Deadline.expired deadline then
          (* No budget left to climb with: the original failure stands;
             record only the rungs actually attempted. *)
          { r0 with degradations = r0.degradations @ List.rev tried }
        else begin
          if Provenance.is_on () then
            Provenance.emit (Provenance.Rung { rung; failure = last_failure });
          let r = attempt cfg in
          match r.verdict with
          | Failure msg' when rescuable_failure msg' ->
              climb ~last_failure:msg' (rung :: tried) rest
          | Failure _ ->
              (* The degraded run failed differently; the first attempt's
                 failure is the honest one. *)
              { r0 with degradations = r0.degradations @ List.rev (rung :: tried) }
          | _ -> { r with degradations = r.degradations @ List.rev (rung :: tried) }
        end
  in
  let last_failure = match r0.verdict with Failure msg -> msg | _ -> "" in
  climb ~last_failure [] rungs

(** [run ?config ?ell ~s ~t ~poc ()] executes the full pipeline.

    ℓ defaults to the clone-detection result of {!Clone.shared_functions};
    pass [?ell] to override (the paper assumes ℓ is an input).  The report
    always carries whatever intermediate artifacts were produced, so failed
    runs remain debuggable.

    Robustness contract: this function does not raise.  A deadline expiry
    or an injected fault becomes [Failure "deadline exceeded: ..."] /
    [Failure "injected fault: ..."].  When [config.ladder] is on, rescuable
    failures (budget or deadline exhaustion) are retried up the degradation
    ladder; a rescued verdict lists the rungs climbed in [degradations],
    and if every rung fails the original failure is returned verbatim with
    the tried rungs recorded. *)
let run ?(config = default_config) ?ell ~(s : Isa.program) ~(t : Isa.program) ~(poc : string) ()
    : report =
  let t_start = Unix.gettimeofday () in
  let deadline =
    match config.deadline_s with
    | None -> Deadline.none
    | Some seconds -> Deadline.after ~seconds
  in
  let attempt cfg =
    (* Each attempt start is a liveness proof for the pool's watchdog: a
       pair climbing the ladder is slow, not wedged. *)
    Octo_util.Pool.heartbeat ();
    match run_attempt ~config:cfg ~deadline ?ell ~s ~t ~poc () with
    | r -> r
    | exception Deadline.Deadline_exceeded what ->
        failure_report ("deadline exceeded: " ^ what)
    | exception Faultinject.Injected what -> failure_report ("injected fault: " ^ what)
  in
  (* The whole pair — first attempt plus any ladder rungs — is one trace
     envelope (cat "pair"), one metrics scope and one provenance scope, so
     report.metrics / report.provenance are the per-pair records of the
     domain that ran it. *)
  let (r, m), p =
    Provenance.scoped @@ fun () ->
    Metrics.scoped @@ fun () ->
    Trace.with_cat_span ~cat:"pair" ~name:"pipeline" @@ fun () ->
    let r0 = attempt config in
    match r0.verdict with
    | Failure msg when config.ladder && rescuable_failure msg ->
        climb_ladder ~deadline ~attempt r0 (ladder_rungs config)
    | _ -> r0
  in
  { r with elapsed_s = Unix.gettimeofday () -. t_start; metrics = m; provenance = p }

(* ------------------------------------------------------------------ *)
(* Batch verification. *)

type job = {
  label : string;
  js : Isa.program;
  jt : Isa.program;
  jpoc : string;
  jell : string list option;
  jconfig : config option;  (** per-job override of the batch config *)
}

let job ?ell ?config ~label ~s ~t ~poc () =
  { label; js = s; jt = t; jpoc = poc; jell = ell; jconfig = config }

let job_label (j : job) = j.label

(* How batch/stream drivers isolate one job from its batch-mates.
   [Domains] (the default, the historical behaviour) runs jobs on worker
   domains in this process: crash containment is exception-level, so a
   native fault (segfault, OOM) in one job kills the whole batch.
   [Processes] forks one rlimit-bounded child per job: the blast radius
   of any fault is the child, and the parent classifies its death into a
   structured failure. *)
type isolation = Domains | Processes

(* ------------------------------------------------------------------ *)
(* Verdict cache keys. *)

(* Canonical program rendering for hashing: functions in sorted-name order
   so the digest does not depend on hash-table internals (bucket layout,
   [OCAMLRUNPARAM=R] randomization).  The digest now lives in
   {!Compile.program_digest} — the compilation cache, the ℓ cache and the
   verdict cache all key off the same bytes. *)
let hash_program (p : Isa.program) = Compile.program_digest p

(* Every config field that can change a verdict.  [inject] is deliberately
   excluded: fault injection perturbs a run, not the pair's identity — a
   resumed chaos batch must treat the journaled verdict of a fault-afflicted
   pair as settled, exactly as the uninterrupted run would have.
   [spec_jobs] is excluded for the same reason from the other side: a
   speculative run produces the identical verdict, so serial and
   speculative invocations must share journal entries. *)
let config_fingerprint (c : config) =
  Marshal.to_string
    ( c.taint_mode,
      c.taint_granularity,
      c.symex,
      c.sym_file_size,
      c.max_steps,
      c.solver_budget,
      c.dynamic_cfg,
      c.deadline_s,
      c.ladder )
    []

(** [content_key ?config ?ell ~s ~t ~poc ()] is the verdict-cache key: a
    hex digest over the canonical content of both programs, the PoC bytes,
    the ℓ override, and every budget/config field that can change a verdict
    (fault injection excluded — see the journal docs).  Two invocations
    share a key iff a journaled verdict of one is valid for the other. *)
let content_key ?(config = default_config) ?ell ~(s : Isa.program) ~(t : Isa.program)
    ~(poc : string) () =
  Digest.to_hex
    (Digest.string
       (String.concat "\000"
          [
            hash_program s;
            hash_program t;
            Digest.string poc;
            Digest.string (Marshal.to_string ell []);
            Digest.string (config_fingerprint config);
          ]))

(** [job_key ~config j] is [content_key] for a batch item, under the job's
    own config override when it has one. *)
let job_key ~config (j : job) =
  content_key
    ~config:(Option.value j.jconfig ~default:config)
    ?ell:j.jell ~s:j.js ~t:j.jt ~poc:j.jpoc ()

(* ------------------------------------------------------------------ *)
(* Journal record codec.

   One record per settled pair: label, cache key, and enough of the report
   to reconstruct the verdict exactly (poc' bytes included).  Artifacts
   (taint, symex stats, bunches) are run-time debugging aids, not verdict
   state, and are not persisted.  The encoding is length-prefixed and
   binary-safe; [decode_result] is total, returning [None] on any
   malformed record (a foreign or future-versioned journal must not crash
   the reader). *)

(* OPR3 appends two tail fields to OPR2: an explicit metrics presence
   flag (OPR2 inferred presence from end-of-record, which left no room
   for anything after it) and an optional provenance blob.  The decoder
   still reads OPR2 records — journals written before the bump replay and
   resume unchanged, with [provenance = None]. *)
let codec_version = "OPR3"
let legacy_codec_version = "OPR2"

let put_str b s =
  let l = Bytes.create 4 in
  Bytes.set_int32_le l 0 (Int32.of_int (String.length s));
  Buffer.add_bytes b l;
  Buffer.add_string b s

(* The codec is hand-rolled end to end — no [Marshal] on the decode path,
   ever: [Marshal.from_string] on attacker-or-bitrot-controlled bytes can
   segfault the process, and journal payloads survive crashes and disk
   corruption by design.  Every field is length- or count-prefixed so the
   decoder is total (returns [None], never raises, never reads OOB). *)
let put_int b i =
  let l = Bytes.create 8 in
  Bytes.set_int64_le l 0 (Int64.of_int i);
  Buffer.add_bytes b l

let put_str_list b xs =
  put_int b (List.length xs);
  List.iter (put_str b) xs

let put_int_array b a =
  put_int b (Array.length a);
  Array.iter (put_int b) a

let put_metrics b (m : Metrics.snapshot) =
  put_int_array b m.Metrics.counters;
  put_int_array b m.Metrics.phase_count;
  put_int_array b m.Metrics.phase_ns;
  put_int_array b m.Metrics.phase_hist

let encode_result ~label ~key (r : report) =
  let b = Buffer.create 256 in
  Buffer.add_string b codec_version;
  put_str b label;
  put_str b key;
  put_str b r.ep;
  put_str_list b r.ell;
  (match r.verdict with
  | Triggered { poc'; ptype } ->
      Buffer.add_char b 'T';
      Buffer.add_char b (match ptype with Type_I -> '1' | Type_II -> '2');
      put_str b poc'
  | Not_triggerable reason ->
      Buffer.add_char b 'N';
      (match reason with
      | Ep_not_called -> Buffer.add_char b 'e'
      | Program_dead -> Buffer.add_char b 'd'
      | Unsat_model -> Buffer.add_char b 'u'
      | Constraint_conflict k ->
          Buffer.add_char b 'c';
          put_str b (string_of_int k))
  | Failure msg ->
      Buffer.add_char b 'F';
      put_str b msg);
  put_str_list b r.degradations;
  put_str b (Int64.to_string (Int64.bits_of_float r.elapsed_s));
  (* Metrics presence is explicit in OPR3 ('0'/'1') so the record can
     carry fields after it; provenance stays an optional tail — decoders
     treat end-of-record here as [provenance = None], so records written
     with collection off cost one flag byte over OPR2. *)
  (match r.metrics with
  | None -> Buffer.add_char b '0'
  | Some snap ->
      Buffer.add_char b '1';
      put_metrics b snap);
  (match r.provenance with None -> () | Some p -> put_str b (Provenance.encode p));
  Buffer.contents b

let decode_result (s : string) : (string * string * report) option =
  let pos = ref 0 in
  let n = String.length s in
  let exception Bad in
  let take k =
    if n - !pos < k then raise Bad;
    let r = String.sub s !pos k in
    pos := !pos + k;
    r
  in
  let get_str () =
    let l = take 4 in
    let len =
      Char.code l.[0] lor (Char.code l.[1] lsl 8) lor (Char.code l.[2] lsl 16)
      lor (Char.code l.[3] lsl 24)
    in
    if len < 0 || len > n - !pos then raise Bad;
    take len
  in
  let get_int () =
    let s = take 8 in
    Int64.to_int (Bytes.get_int64_le (Bytes.unsafe_of_string s) 0)
  in
  let get_str_list () =
    let k = get_int () in
    (* Each element costs at least its 4-byte length prefix, so a count
       beyond the remaining bytes is corrupt — reject before allocating. *)
    if k < 0 || k > (n - !pos) / 4 then raise Bad;
    List.init k (fun _ -> get_str ())
  in
  let get_int_array expect =
    if get_int () <> expect then raise Bad;
    Array.init expect (fun _ -> get_int ())
  in
  let get_counters () =
    (* The counter array is decoded length-tolerantly: it is the one
       snapshot dimension that grows when a release adds a counter (the
       phase list is the pipeline's shape; the counter list is an open
       enumeration).  A record written by an older build carries fewer
       counters — pad the missing ones with 0; a newer build's extras are
       read and dropped.  The count is still sanity-bounded so corrupt
       lengths stay rejected. *)
    let k = get_int () in
    if k < 0 || k > 64 || k * 8 > n - !pos then raise Bad;
    let a = Array.init k (fun _ -> get_int ()) in
    let counters = Array.make Metrics.ncounters 0 in
    Array.blit a 0 counters 0 (min k Metrics.ncounters);
    counters
  in
  let get_metrics () =
    (* Sequenced lets: record-field evaluation order is unspecified, and
       these reads must consume the stream in write order. *)
    let counters = get_counters () in
    let phase_count = get_int_array Metrics.nphases in
    let phase_ns = get_int_array Metrics.nphases in
    let phase_hist = get_int_array (Metrics.nphases * Metrics.nbuckets) in
    { Metrics.counters; phase_count; phase_ns; phase_hist }
  in
  match
    let version = take 4 in
    if version <> codec_version && version <> legacy_codec_version then raise Bad;
    let label = get_str () in
    let key = get_str () in
    let ep = get_str () in
    let ell = get_str_list () in
    let verdict =
      match (take 1).[0] with
      | 'T' ->
          let ptype = match (take 1).[0] with '1' -> Type_I | '2' -> Type_II | _ -> raise Bad in
          Triggered { poc' = get_str (); ptype }
      | 'N' -> (
          match (take 1).[0] with
          | 'e' -> Not_triggerable Ep_not_called
          | 'd' -> Not_triggerable Program_dead
          | 'u' -> Not_triggerable Unsat_model
          | 'c' -> (
              match int_of_string_opt (get_str ()) with
              | Some k -> Not_triggerable (Constraint_conflict k)
              | None -> raise Bad)
          | _ -> raise Bad)
      | 'F' -> Failure (get_str ())
      | _ -> raise Bad
    in
    let degradations = get_str_list () in
    let elapsed_s =
      match Int64.of_string_opt (get_str ()) with
      | Some bits -> Int64.float_of_bits bits
      | None -> raise Bad
    in
    let metrics, provenance =
      if version = legacy_codec_version then
        (* OPR2: metrics presence inferred from end-of-record; no
           provenance field existed. *)
        ((if !pos = n then None else Some (get_metrics ())), None)
      else begin
        let metrics =
          match (take 1).[0] with
          | '0' -> None
          | '1' -> Some (get_metrics ())
          | _ -> raise Bad
        in
        let provenance =
          if !pos = n then None
          else
            match Provenance.decode (get_str ()) with
            | Some p -> Some p
            | None -> raise Bad
        in
        (metrics, provenance)
      end
    in
    if !pos <> n then raise Bad;
    ( label,
      key,
      {
        verdict;
        ep;
        ell;
        bunches = [];
        taint = None;
        symex = None;
        degradations;
        elapsed_s;
        metrics;
        provenance;
      } )
  with
  | r -> Some r
  | exception Bad -> None

(* ------------------------------------------------------------------ *)

let skipped_failure_msg = "skipped: fail-fast after an earlier failure"

let is_skipped_report (r : report) =
  match r.verdict with
  | Failure msg -> msg = skipped_failure_msg
  | _ -> false

(** [run_all ?config ?jobs ?retries ?stall_grace_s ?fail_fast ?on_settle
    jobs_list] verifies every pair, fanning out over a fixed pool of [jobs]
    worker domains ([jobs <= 1] runs serially in the calling domain).
    Results keep the input order.  Pairs are independent — each run builds
    its own stores and states — so corpus throughput scales with cores
    until memory bandwidth saturates.

    Crash isolation: a job whose worker raises (after [retries] extra
    attempts) yields [(label, Failure "worker crashed: ...")] — the batch
    always returns one labelled report per input job and never forfeits its
    batch-mates' completed work.

    Stall supervision: with [stall_grace_s] (and [jobs >= 2]), a worker
    silent past the grace is requeued under the same [retries] accounting;
    exhausted attempts settle as [Failure "worker stalled: ..."].

    [fail_fast] stops scheduling once any pair settles as a [Failure]:
    not-yet-started pairs come back as [Failure "skipped: ..."]
    ({!is_skipped_report}) and are NOT passed to [on_settle], so a
    journaled resumed run re-verifies them.

    [on_settle label report] fires exactly once per non-skipped job as it
    settles (completion order, from worker context — the write-ahead
    journal hooks in here); [run_all] returns only after every callback
    has finished. *)
let run_all_domains ?(config = default_config) ?(jobs = 1) ?(retries = 0) ?stall_grace_s
    ?(fail_fast = false) ?pre_run ?on_settle (batch : job list) : (string * report) list =
  let stop = Atomic.make false in
  let one j =
    if fail_fast && Atomic.get stop then failure_report skipped_failure_msg
    else begin
      (match pre_run with None -> () | Some f -> f j);
      let cfg = Option.value j.jconfig ~default:config in
      (* The chaos harness's synthetic worker faults fire *outside* run's
         containment on purpose: crash exercises the pool's crash
         isolation, stall its heartbeat watchdog. *)
      Faultinject.maybe_raise cfg.inject Faultinject.Worker_crash
        ~what:"synthetic worker exception";
      if Faultinject.fire cfg.inject Faultinject.Worker_stall then begin
        let stall_s =
          match stall_grace_s with Some g -> 2.5 *. g | None -> 0.25
        in
        Unix.sleepf stall_s;
        raise (Faultinject.Injected "worker-stall: synthetic wedged worker")
      end;
      run ~config:cfg ?ell:j.jell ~s:j.js ~t:j.jt ~poc:j.jpoc ()
    end
  in
  let arr = Array.of_list batch in
  let to_report = function
    | Stdlib.Ok report -> report
    | Stdlib.Error (Octo_util.Pool.Stalled msg, _) ->
        failure_report ("worker stalled: " ^ msg)
    | Stdlib.Error (e, _bt) -> failure_report ("worker crashed: " ^ Printexc.to_string e)
  in
  let settle i res =
    let r = to_report res in
    if not (is_skipped_report r) then begin
      (match r.verdict with Failure _ -> Atomic.set stop true | _ -> ());
      match on_settle with None -> () | Some f -> f arr.(i).label r
    end
  in
  List.map2
    (fun j res -> (j.label, to_report res))
    batch
    (Octo_util.Pool.parallel_map_result ~jobs ~retries ?stall_grace_s ~on_settle:settle one
       batch)

(* ------------------------------------------------------------------ *)
(* Poison-pair quarantine. *)

type quarantine = {
  qlabel : string;
  qkey : string;
  qreason : string;  (** ["worker crashed"] or ["worker stalled"] *)
  qmessage : string;  (** printable exception of the final attempt *)
  qbacktrace : string;  (** final attempt's backtrace (may be empty) *)
  qattempts : int;  (** attempts consumed, retries included *)
}

(* Quarantine records share the journal framing with verdicts but carry
   their own version tag, so [decode_result] rejects them cleanly (version
   mismatch -> [None]) and vice versa — one quarantine journal can be
   dumped by the same tolerant reader loop as a verdict journal. *)
let quarantine_codec_version = "OQR1"

let encode_quarantine (q : quarantine) =
  let b = Buffer.create 128 in
  Buffer.add_string b quarantine_codec_version;
  put_str b q.qlabel;
  put_str b q.qkey;
  put_str b q.qreason;
  put_str b q.qmessage;
  put_str b q.qbacktrace;
  put_int b q.qattempts;
  Buffer.contents b

let decode_quarantine (s : string) : quarantine option =
  let pos = ref 0 in
  let n = String.length s in
  let exception Bad in
  let take k =
    if n - !pos < k then raise Bad;
    let r = String.sub s !pos k in
    pos := !pos + k;
    r
  in
  let get_str () =
    let l = take 4 in
    let len =
      Char.code l.[0] lor (Char.code l.[1] lsl 8) lor (Char.code l.[2] lsl 16)
      lor (Char.code l.[3] lsl 24)
    in
    if len < 0 || len > n - !pos then raise Bad;
    take len
  in
  let get_int () =
    let s = take 8 in
    Int64.to_int (Bytes.get_int64_le (Bytes.unsafe_of_string s) 0)
  in
  match
    if take 4 <> quarantine_codec_version then raise Bad;
    let qlabel = get_str () in
    let qkey = get_str () in
    let qreason = get_str () in
    let qmessage = get_str () in
    let qbacktrace = get_str () in
    let qattempts = get_int () in
    if !pos <> n then raise Bad;
    { qlabel; qkey; qreason; qmessage; qbacktrace; qattempts }
  with
  | q -> Some q
  | exception Bad -> None

(* ------------------------------------------------------------------ *)
(* Streaming batch verification. *)

type stream_stats = {
  st_pulled : int;  (** jobs pulled from the source *)
  st_settled : int;  (** jobs that produced a verdict (on_settle fired) *)
  st_quarantined : int;  (** jobs handed to [on_quarantine] *)
  st_peak_in_flight : int;  (** high-water mark of concurrently held jobs *)
  st_deferrals : int;
      (** admission-deferral episodes: times the process-mode memory
          controller paused admissions under pressure (always 0 in
          Domain isolation) *)
}

(* ------------------------------------------------------------------ *)
(* Process-isolated streaming scheduler.

   Single-domain by construction: OCaml 5.1 refuses [Unix.fork]
   permanently once any domain has EVER been spawned in the process (the
   restriction latches; joining does not lift it), so this scheduler
   spawns NO worker domains — its parallelism is process-level,
   multiplexing child pipes over one select loop — and callers must
   reach it before the process's first Domain-mode batch.  The shared
   pool is still shut down defensively on entry: on runtimes that only
   require a single-domain process at fork time, that is what restores
   forkability. *)

type proc_active = {
  ac : Sandbox.child;
  aj : job;
  ak : int;  (* 0-based attempt number *)
  adeferred : bool;  (* admission was deferred under pressure *)
}

(* What a sandboxed child runs: the same worker body as the Domain-mode
   drivers (pre-run hook, synthetic worker faults, the pipeline), with
   the settled report encoded onto the pipe as the child's one frame.
   Exceptions deliberately escape into [Sandbox.spawn]'s transport so
   the parent's retry ladder sees them, mirroring how Domain mode lets
   them escape into the pool's crash isolation. *)
let run_child_payload cfg ~key pre_run j () =
  (match pre_run with None -> () | Some f -> f j);
  Faultinject.maybe_raise cfg.inject Faultinject.Worker_crash
    ~what:"synthetic worker exception";
  if Faultinject.fire cfg.inject Faultinject.Worker_stall then begin
    Unix.sleepf 0.25;
    raise (Faultinject.Injected "worker-stall: synthetic wedged worker")
  end;
  let r = run ~config:cfg ?ell:j.jell ~s:j.js ~t:j.jt ~poc:j.jpoc () in
  encode_result ~label:j.label ~key r

let proc_stream ~(config : config) ~retries ~window ?limits ?mem_watermark_mb ?pre_run
    ?on_settle ?on_quarantine (next : unit -> job option) : stream_stats =
  Octo_util.Pool.shutdown_shared ();
  let limits = Option.value limits ~default:Sandbox.no_limits in
  let adm = Sandbox.Admission.create ?watermark_mb:mem_watermark_mb ~window () in
  let pulled = ref 0 and settled = ref 0 and quarantined = ref 0 in
  let peak = ref 0 and deferrals = ref 0 in
  (* [deferring] marks an open pressure episode: one episode counts one
     deferral however many loop iterations it spans, and the first job
     admitted out of it carries the "admission-deferred" degradation. *)
  let deferring = ref false in
  let active : proc_active list ref = ref [] in
  (* Respawns take priority over fresh pulls so a retried pair cannot be
     starved by an endless source. *)
  let pending : (job * int * bool) Queue.t = Queue.create () in
  let exhausted_src = ref false in
  let settle_cb j r =
    incr settled;
    match on_settle with
    | None -> ()
    | Some f -> (
        try f j r
        with e ->
          Log.err (fun m ->
              m "run_stream: on_settle for %s raised %s" j.label (Printexc.to_string e)))
  in
  let spawn_job (j, k, was_deferred) =
    let cfg = Option.value j.jconfig ~default:config in
    (* Child-death faults are drawn by the PARENT, pre-fork: each retry
       advances the injector stream, so a seeded schedule can kill the
       first attempt and let the retry survive — deterministically. *)
    let die =
      if Faultinject.fire cfg.inject Faultinject.Child_segv then `Segv
      else if Faultinject.fire cfg.inject Faultinject.Child_oom_kill then `Oom_kill
      else `None
    in
    (* The wall-clock kill is a hard backstop well behind the cooperative
       deadline (which already absorbs ladder climbs); no per-job deadline
       means the parent never kills on time. *)
    let kill_after_s = Option.map (fun d -> (d *. 4.0) +. 1.0) cfg.deadline_s in
    let key = job_key ~config j in
    let c = Sandbox.spawn ~limits ?kill_after_s ~die (run_child_payload cfg ~key pre_run j) in
    active := { ac = c; aj = j; ak = k; adeferred = was_deferred } :: !active;
    let n = List.length !active in
    if n > !peak then peak := n
  in
  let retry_or_quarantine e ~reason ~message ~rung =
    let j = e.aj and k = e.ak in
    if k < retries then begin
      Metrics.incr Metrics.Pool_retries;
      Telemetry.note_retry ();
      Log.warn (fun m ->
          m "run_stream: %s child died (%s: %s); retrying (%d/%d)" j.label reason message
            (k + 1) retries);
      Octo_util.Pool.backoff_sleep ~key:(Hashtbl.hash j.label) ~attempt:(k + 1) ();
      Queue.add (j, k + 1, e.adeferred) pending
    end
    else
      match on_quarantine with
      | Some f -> (
          let q =
            {
              qlabel = j.label;
              qkey = job_key ~config j;
              qreason = reason;
              qmessage = message;
              qbacktrace = "";  (* died in another address space: no backtrace *)
              qattempts = k + 1;
            }
          in
          incr quarantined;
          try f q
          with qe ->
            Log.err (fun m ->
                m "run_stream: on_quarantine for %s raised %s" j.label
                  (Printexc.to_string qe)))
      | None ->
          (* Settle like Domain mode, but with the death classification as
             a provenance rung so `explain` shows WHY the child died. *)
          let provenance =
            if Provenance.is_on () then
              Some
                {
                  Provenance.events = [ Provenance.Rung { rung; failure = message } ];
                  dropped = 0;
                }
            else None
          in
          settle_cb j { (failure_report (reason ^ ": " ^ message)) with provenance }
  in
  let handle_death e (death, maxrss_kb) =
    Sandbox.Admission.note_child_rss adm maxrss_kb;
    Telemetry.note_child_rss maxrss_kb;
    match death with
    | Sandbox.Clean payload -> (
        match decode_result payload with
        | Some (_, _, r) ->
            let r =
              if e.adeferred then
                { r with degradations = r.degradations @ [ "admission-deferred" ] }
              else r
            in
            settle_cb e.aj r
        | None ->
            retry_or_quarantine e ~reason:"worker crashed"
              ~message:"child returned an undecodable verdict frame" ~rung:"child-torn")
    | Sandbox.Child_exn msg ->
        (* The transported exception is already printed; the injected
           stall site's marker survives as "Injected(worker-stall: ...)". *)
        let is_stall =
          let p = "Injected(worker-stall" in
          String.length msg >= String.length p && String.sub msg 0 (String.length p) = p
        in
        let reason = if is_stall then "worker stalled" else "worker crashed" in
        retry_or_quarantine e ~reason ~message:msg ~rung:"child-exn"
    | Sandbox.Segv ->
        retry_or_quarantine e ~reason:"worker crashed" ~message:"child segfaulted (SIGSEGV)"
          ~rung:"child-segv"
    | Sandbox.Oom why ->
        retry_or_quarantine e ~reason:"oom" ~message:("child out of memory: " ^ why)
          ~rung:"child-oom"
    | Sandbox.Cpu ->
        retry_or_quarantine e ~reason:"worker crashed"
          ~message:"child exceeded RLIMIT_CPU (SIGXCPU)" ~rung:"child-cpu"
    | Sandbox.Deadline_kill ->
        retry_or_quarantine e ~reason:"worker stalled"
          ~message:"child killed by parent at deadline" ~rung:"child-deadline-kill"
    | Sandbox.Torn why ->
        retry_or_quarantine e ~reason:"worker crashed"
          ~message:("child pipe protocol torn: " ^ why) ~rung:"child-torn"
    | Sandbox.Other why ->
        retry_or_quarantine e ~reason:"worker crashed"
          ~message:("child died unexpectedly: " ^ why) ~rung:"child-other"
  in
  let progress_cut () =
    {
      Telemetry.pulled = !pulled;
      settled = !settled;
      quarantined = !quarantined;
      in_flight = List.length !active;
      window;
    }
  in
  let try_admit () =
    let stop = ref false in
    while not !stop do
      let have_pending = not (Queue.is_empty pending) in
      if (not have_pending) && !exhausted_src then stop := true
      else
        match Sandbox.Admission.admit adm ~in_flight:(List.length !active) with
        | `Defer `Full -> stop := true
        | `Defer `Pressure ->
            if not !deferring then begin
              deferring := true;
              incr deferrals;
              Metrics.incr Metrics.Admission_deferrals;
              Telemetry.note_deferral ()
            end;
            stop := true
        | `Admit -> (
            let was_deferred = !deferring in
            deferring := false;
            if have_pending then spawn_job (Queue.pop pending)
            else
              match next () with
              | None -> exhausted_src := true
              | Some j ->
                  incr pulled;
                  spawn_job (j, 0, was_deferred))
    done
  in
  let rec loop () =
    try_admit ();
    if !active = [] && Queue.is_empty pending && !exhausted_src then ()
    else begin
      List.iter (fun e -> if Sandbox.deadline_expired e.ac then Sandbox.kill e.ac) !active;
      let fds = List.map (fun e -> Sandbox.fd e.ac) !active in
      let readable =
        match Unix.select fds [] [] 0.05 with
        | r, _, _ -> r
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
      in
      let finished, still =
        List.partition
          (fun e -> List.memq (Sandbox.fd e.ac) readable && Sandbox.drain e.ac)
          !active
      in
      active := still;
      List.iter (fun e -> handle_death e (Sandbox.reap e.ac)) finished;
      (* The 0.05 s select timeout gives the sampler a steady cadence
         even while every child is quiet. *)
      Telemetry.tick (fun () -> progress_cut ());
      loop ()
    end
  in
  loop ();
  Telemetry.sample_now (progress_cut ());
  {
    st_pulled = !pulled;
    st_settled = !settled;
    st_quarantined = !quarantined;
    st_peak_in_flight = !peak;
    st_deferrals = !deferrals;
  }

(** [run_stream ?config ?jobs ?retries ?window ?on_settle ?on_quarantine
    next] verifies a stream of jobs pulled lazily from [next] — the
    corpus-scale runner.  Unlike {!run_all} it never materializes the
    batch: [next ()] is called (from the dispatching domain only) each
    time a worker slot is admitted, so peak memory is bounded by the
    admission window, not the corpus size.

    Admission control: at most [window] jobs (default [max 4 (2 * jobs)])
    are in flight at once; the generator behind [next] is simply not
    pulled while the window is full, which is what bounds in-flight
    memory.

    Crash containment: a job whose worker raises gets [retries] extra
    attempts, each preceded by {!Octo_util.Pool.backoff_delay}'s capped
    exponential backoff (the job's attempt streams — fault injectors
    included — advance deterministically, so a killed-and-resumed run
    replays the same decisions).  A job that still raises after the
    budget is handed to [on_quarantine] with its reason, printable
    exception, backtrace and attempt count — it does NOT settle and does
    not fail the batch.  Without [on_quarantine], exhausted jobs settle
    as [Failure "worker crashed: ..."] like {!run_all}.

    There is no heartbeat watchdog in streaming mode: wedged-worker
    containment comes from the per-job cooperative deadline
    ([config.deadline_s]); the injected [Worker_stall] site sleeps then
    raises, taking the crash path above (reason ["worker stalled"]).

    [on_settle job report] and [on_quarantine q] fire exactly once per
    job, from worker context, in completion order; [run_stream] returns
    only after every callback has finished. *)
let run_stream ?(config = default_config) ?(jobs = 1) ?(retries = 0) ?window
    ?(isolate = Domains) ?limits ?mem_watermark_mb ?pre_run ?on_settle ?on_quarantine
    (next : unit -> job option) : stream_stats =
  let jobs = Octo_util.Pool.effective_jobs jobs in
  (* In process isolation the window IS the concurrency: one child per
     admitted job, so the Domain-mode default (twice the workers) carries
     over as "up to 2*jobs live children". *)
  let window = match window with Some w -> max 1 w | None -> max 4 (2 * jobs) in
  match isolate with
  | Processes ->
      proc_stream ~config ~retries ~window ?limits ?mem_watermark_mb ?pre_run ?on_settle
        ?on_quarantine next
  | Domains ->
  let one j =
    (match pre_run with None -> () | Some f -> f j);
    let cfg = Option.value j.jconfig ~default:config in
    Faultinject.maybe_raise cfg.inject Faultinject.Worker_crash
      ~what:"synthetic worker exception";
    if Faultinject.fire cfg.inject Faultinject.Worker_stall then begin
      Unix.sleepf 0.25;
      raise (Faultinject.Injected "worker-stall: synthetic wedged worker")
    end;
    run ~config:cfg ?ell:j.jell ~s:j.js ~t:j.jt ~poc:j.jpoc ()
  in
  let settle_cb j r =
    match on_settle with
    | None -> ()
    | Some f -> (
        try f j r
        with e ->
          Log.err (fun m ->
              m "run_stream: on_settle for %s raised %s" j.label (Printexc.to_string e)))
  in
  let stall_message e =
    (* The injected stall site raises [Injected "worker-stall: ..."] after
       its sleep; classify it as a stall so the quarantine record
       distinguishes a wedge from a crash. *)
    match e with
    | Faultinject.Injected msg ->
        String.length msg >= 12 && String.sub msg 0 12 = "worker-stall"
    | _ -> false
  in
  let exhausted j (e, bt) ~attempts =
    let reason = if stall_message e then "worker stalled" else "worker crashed" in
    match on_quarantine with
    | Some f -> (
        let q =
          {
            qlabel = j.label;
            qkey = job_key ~config j;
            qreason = reason;
            qmessage = Printexc.to_string e;
            qbacktrace = Printexc.raw_backtrace_to_string bt;
            qattempts = attempts;
          }
        in
        try
          f q;
          `Quarantined
        with qe ->
          Log.err (fun m ->
              m "run_stream: on_quarantine for %s raised %s" j.label (Printexc.to_string qe));
          `Quarantined)
    | None ->
        settle_cb j (failure_report (reason ^ ": " ^ Printexc.to_string e));
        `Settled
  in
  let pulled = ref 0 and settled = ref 0 and quarantined = ref 0 in
  let peak = ref 0 in
  if jobs <= 1 then begin
    (* Serial: pull, attempt with backoff'd retries, settle or quarantine,
       all in the calling domain.  [in_flight] is identically 1. *)
    peak := 1;
    let rec drain () =
      match next () with
      | None -> ()
      | Some j ->
          incr pulled;
          let bkey = Hashtbl.hash j.label in
          let rec attempt k =
            match one j with
            | r ->
                settle_cb j r;
                incr settled
            | exception e ->
                let bt = Printexc.get_raw_backtrace () in
                if k < retries then begin
                  Metrics.incr Metrics.Pool_retries;
                  Telemetry.note_retry ();
                  Log.warn (fun m ->
                      m "run_stream: %s raised %s; retrying (%d/%d)" j.label
                        (Printexc.to_string e) (k + 1) retries);
                  Octo_util.Pool.backoff_sleep ~key:bkey ~attempt:(k + 1) ();
                  attempt (k + 1)
                end
                else begin
                  match exhausted j (e, bt) ~attempts:(k + 1) with
                  | `Quarantined -> incr quarantined
                  | `Settled -> incr settled
                end
          in
          attempt 0;
          Telemetry.tick (fun () ->
              {
                Telemetry.pulled = !pulled;
                settled = !settled;
                quarantined = !quarantined;
                in_flight = 1;
                window = 1;
              });
          drain ()
    in
    drain ();
    Telemetry.sample_now
      {
        Telemetry.pulled = !pulled;
        settled = !settled;
        quarantined = !quarantined;
        in_flight = 0;
        window = 1;
      };
    {
      st_pulled = !pulled;
      st_settled = !settled;
      st_quarantined = !quarantined;
      st_peak_in_flight = (if !pulled = 0 then 0 else 1);
      st_deferrals = 0;
    }
  end
  else begin
    let pool = Octo_util.Pool.create ~jobs in
    let lock = Mutex.create () in
    let slot_free = Condition.create () in
    let in_flight = ref 0 in
    let release () =
      Mutex.lock lock;
      decr in_flight;
      Condition.signal slot_free;
      Mutex.unlock lock;
      (* Every completion is a tick opportunity; the counter reads are
         deliberately unlocked (a sample is a statistical cut, and OCaml 5
         unsynchronized int reads are stale at worst, never garbage). *)
      Telemetry.tick (fun () ->
          {
            Telemetry.pulled = !pulled;
            settled = !settled;
            quarantined = !quarantined;
            in_flight = !in_flight;
            window;
          })
    in
    let rec task j k () =
      match one j with
      | r ->
          settle_cb j r;
          Mutex.lock lock;
          incr settled;
          Mutex.unlock lock;
          release ()
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          if k < retries then begin
            Metrics.incr Metrics.Pool_retries;
            Telemetry.note_retry ();
            Log.warn (fun m ->
                m "run_stream: %s raised %s; retrying (%d/%d)" j.label (Printexc.to_string e)
                  (k + 1) retries);
            Octo_util.Pool.backoff_sleep ~key:(Hashtbl.hash j.label) ~attempt:(k + 1) ();
            Octo_util.Pool.submit pool (task j (k + 1))
          end
          else begin
            (match exhausted j (e, bt) ~attempts:(k + 1) with
            | `Quarantined ->
                Mutex.lock lock;
                incr quarantined;
                Mutex.unlock lock
            | `Settled ->
                Mutex.lock lock;
                incr settled;
                Mutex.unlock lock);
            release ()
          end
    in
    (* Dispatcher: the calling domain pulls the next job only once a slot
       is free — this is the generator pause. *)
    let rec dispatch () =
      Mutex.lock lock;
      while !in_flight >= window do
        Condition.wait slot_free lock
      done;
      incr in_flight;
      if !in_flight > !peak then peak := !in_flight;
      Mutex.unlock lock;
      match next () with
      | None ->
          (* Nothing was admitted after all: give the slot back. *)
          release ()
      | Some j ->
          Mutex.lock lock;
          incr pulled;
          Mutex.unlock lock;
          Octo_util.Pool.submit pool (task j 0);
          dispatch ()
    in
    dispatch ();
    Mutex.lock lock;
    while !in_flight > 0 do
      Condition.wait slot_free lock
    done;
    Mutex.unlock lock;
    Octo_util.Pool.shutdown pool;
    Telemetry.sample_now
      {
        Telemetry.pulled = !pulled;
        settled = !settled;
        quarantined = !quarantined;
        in_flight = 0;
        window;
      };
    {
      st_pulled = !pulled;
      st_settled = !settled;
      st_quarantined = !quarantined;
      st_peak_in_flight = !peak;
      st_deferrals = 0;
    }
  end

(* ------------------------------------------------------------------ *)
(* Process-isolated batch verification: the fixed batch streamed through
   [proc_stream] with the worker count as the window.  Exhausted retry
   budgets settle as failures (run_all has no quarantine channel), and
   fail-fast stops pulling once any pair settles as a Failure —
   in-flight children still complete, like Domain mode's started jobs. *)
let run_all_proc ~(config : config) ~jobs ~retries ~fail_fast ?limits ?pre_run ?on_settle
    (batch : job list) : (string * report) list =
  let stop = Atomic.make false in
  let remaining = ref batch in
  let next () =
    if fail_fast && Atomic.get stop then None
    else
      match !remaining with
      | [] -> None
      | j :: rest ->
          remaining := rest;
          Some j
  in
  (* Results are keyed by physical job identity, not label, so duplicate
     labels in one batch cannot cross their reports. *)
  let results : (job * report) list ref = ref [] in
  let settle j r =
    (match r.verdict with Failure _ -> Atomic.set stop true | _ -> ());
    results := (j, r) :: !results;
    match on_settle with None -> () | Some f -> f j.label r
  in
  let window = max 1 (Octo_util.Pool.effective_jobs jobs) in
  let (_ : stream_stats) =
    proc_stream ~config ~retries ~window ?limits ?pre_run ~on_settle:settle next
  in
  List.map
    (fun j ->
      match List.find_opt (fun (j', _) -> j' == j) !results with
      | Some (_, r) -> (j.label, r)
      | None -> (j.label, failure_report skipped_failure_msg))
    batch

(* The public batch entry point: Domain isolation is the default and
   byte-identical to the historical behaviour; [~isolate:Processes]
   forks one rlimit-bounded child per job.  [stall_grace_s] is inert
   under process isolation — the parent's wall-clock deadline-kill
   subsumes the heartbeat watchdog. *)
let run_all ?(config = default_config) ?(jobs = 1) ?(retries = 0) ?stall_grace_s
    ?(fail_fast = false) ?(isolate = Domains) ?limits ?pre_run ?on_settle
    (batch : job list) : (string * report) list =
  match isolate with
  | Domains ->
      run_all_domains ~config ~jobs ~retries ?stall_grace_s ~fail_fast ?pre_run ?on_settle
        batch
  | Processes ->
      ignore stall_grace_s;
      run_all_proc ~config ~jobs ~retries ~fail_fast ?limits ?pre_run ?on_settle batch

(** [stream_of_list jobs] is a pull cursor over a pre-materialized job
    list, safe to hand to {!run_stream}: the dispatcher is the only
    caller by contract, but the cursor is mutex-protected anyway so a
    future multi-dispatcher cannot corrupt it. *)
let stream_of_list jobs =
  let m = Mutex.create () in
  let rest = ref jobs in
  fun () ->
    Mutex.lock m;
    let j =
      match !rest with
      | [] -> None
      | j :: tl ->
          rest := tl;
          Some j
    in
    Mutex.unlock m;
    j

(* ------------------------------------------------------------------ *)
(* Deterministic dump ordering. *)

(* Registry labels are integers-as-strings; compare those numerically so
   "10" sorts after "9", everything else lexicographically. *)
let compare_labels a b =
  match (int_of_string_opt a, int_of_string_opt b) with
  | Some x, Some y -> compare x y
  | _ -> compare a b

(** [sort_dump entries] orders decoded journal records [(label, key, _)]
    for display: label (numeric-aware), then content key.  The key
    tiebreak is what makes a merged sharded dump deterministic — shard
    interleave depends on settle order, and one label can legitimately
    appear under several keys (config changes across resumes), so label
    alone would leave the order timing-dependent. *)
let sort_dump entries =
  List.sort
    (fun (l1, k1, _) (l2, k2, _) ->
      match compare_labels l1 l2 with 0 -> compare k1 k2 | c -> c)
    entries
