(** OCTOPOCS: verification of propagated vulnerable code by PoC reforming.

    The public entry point of the reproduction.  Given the original
    vulnerable program S, the propagated program T and a malformed-file PoC
    that crashes S, {!run} decides whether the propagated clone is still
    triggerable, producing a reformed PoC when it is (paper §III, phases
    P1-P4). *)

module Taint = Octo_taint.Taint
module Directed = Octo_symex.Directed
module Metrics = Octo_util.Metrics

(** Per-pair causal evidence log (why a verdict came out the way it did);
    see {!Provenance}.  Re-exported here because the library's wrapped
    modules are only reachable through this interface. *)
module Provenance = Provenance

(** Why a vulnerability was proven not triggerable — the paper's
    verification cases (ii), (iii) and the constraint-conflict outcomes. *)
type not_triggerable_reason =
  | Ep_not_called
      (** the shared entry function is never called in T (case ii) *)
  | Program_dead
      (** no feasible path reaches ℓ (case iii) *)
  | Constraint_conflict of int
      (** bunch bytes or replayed ep arguments conflict with T's own path
          constraints at the given ep entry (1-based) — e.g. a downstream
          patch guard or a hardcoded argument *)
  | Unsat_model
      (** the combined constraint store admits no concrete input *)

type poc_type =
  | Type_I   (** the original PoC's guiding input already fits T *)
  | Type_II  (** the guiding input had to be reformed *)

type verdict =
  | Triggered of { poc' : string; ptype : poc_type }
      (** the reformed PoC crashes T inside ℓ *)
  | Not_triggerable of not_triggerable_reason
  | Failure of string
      (** tool error (e.g. CFG recovery), not a verification result *)

(** Full pipeline report: the verdict plus every intermediate artifact, so
    failed runs remain debuggable. *)
type report = {
  verdict : verdict;
  ep : string;                     (** chosen entry point of ℓ *)
  ell : string list;               (** shared functions (T-side names) *)
  bunches : Taint.bunch list;      (** P1 crash primitives *)
  taint : Taint.result option;
  symex : Directed.stats option;
  degradations : string list;
      (** degradation rungs climbed to produce this verdict, in order
          applied (e.g. ["dynamic-cfg"], ["symex-escalate"]); empty for a
          clean first-attempt run *)
  elapsed_s : float;
  metrics : Metrics.snapshot option;
      (** per-pair metrics delta (counters and per-phase latency histogram)
          recorded by the domain that ran this pair, when collection was
          enabled ({!Octo_util.Metrics.enable} / [--metrics]); [None]
          otherwise.  Persisted by {!encode_result} as an optional tail
          field, so pre-metrics journals stay decodable. *)
  provenance : Provenance.t option;
      (** per-pair causal evidence log, recorded when collection was
          enabled ({!Provenance.enable} / [--provenance]); [None]
          otherwise.  Persisted as an optional OPR3 tail field (pre-OPR3
          journals decode with [None]) and rendered by
          {!explain_report}. *)
}

val pp_reason : Format.formatter -> not_triggerable_reason -> unit
val pp_verdict : Format.formatter -> verdict -> unit

(** [conflict_detail prov] distills the last P3 conflict recorded in
    [prov] into one sentence naming the conflicting bunch bytes (or
    replayed arguments) and the T-side path constraint they clash with;
    [None] when no provenance or no conflict was recorded. *)
val conflict_detail : Provenance.t option -> string option

(** [pp_verdict_prov prov ppf v] is {!pp_verdict} upgraded in place by
    provenance: a [Constraint_conflict] verdict additionally names the
    conflicting bunch and constraint when a conflict core is available.
    Byte-identical to {!pp_verdict} when [prov] is [None] or carries no
    conflict. *)
val pp_verdict_prov : Provenance.t option -> Format.formatter -> verdict -> unit

(** [explain_report ~label r] renders the deterministic human-readable
    explanation narrative for one verified pair (the [explain]
    subcommand's output): verdict header, per-phase provenance sections,
    the expanded minimized core of the last conflict, ladder rungs.  No
    timings or other run-varying data — byte-identical across runs of the
    same pair. *)
val explain_report : label:string -> report -> string

(** [verdict_class v] renders the paper's Table II class:
    ["Type-I"], ["Type-II"], ["Type-III"] or ["Failure"]. *)
val verdict_class : verdict -> string

(** [identify_ep ~ell crash] picks [ep]: the bottom-most function of the
    crash backtrace belonging to ℓ — the first ℓ function entered on the
    path to the crash (paper "Preprocessing").  Exposed for testing. *)
val identify_ep : ell:string list -> Octo_vm.Interp.crash -> string option

(** Pipeline configuration.  {!default_config} reproduces the paper's
    setup: context-aware byte-level taint, θ = 120, static CFG only. *)
type config = {
  taint_mode : Taint.mode;
  taint_granularity : Taint.granularity;
  symex : Directed.config;
  sym_file_size : int;     (** symbolic input-file bound for P2 *)
  max_steps : int;         (** concrete-run budget (hang detection) *)
  solver_budget : int;     (** model-search node budget for P3 *)
  dynamic_cfg : bool;
      (** repair CFG-recovery failures by replaying T on the PoC and
          devirtualizing observed indirect-call targets (extension; the
          paper's Idx-15 verifies under this mode) *)
  deadline_s : float option;
      (** wall-clock budget per {!run}, enforced cooperatively inside the
          VM, the symbolic executor and the solver; [None] never expires.
          Expiry yields [Failure "deadline exceeded: ..."], never an
          escaped exception. *)
  ladder : bool;
      (** retry rescuable failures (budget/deadline exhaustion) up the
          degradation ladder: escalated symex budgets, then a degraded
          symbolic file size.  On by default; Table II is unaffected at
          default budgets. *)
  inject : Octo_util.Faultinject.t;
      (** deterministic fault injector for the chaos harness
          ({!Octo_util.Faultinject.none} by default) *)
  spec_jobs : int;
      (** speculative loop-retry width for P2 (default 1 = off).  With
          [spec_jobs > 1] and provenance off, the directed executor runs
          up to [spec_jobs - 1] predicted retry attempts ahead on the
          shared pool; verdicts, stats and deterministic metrics counters
          are identical to a serial run by construction, so the field is
          excluded from {!content_key}. *)
}

val default_config : config

(** [failure_report msg] builds a minimal report carrying
    [Failure msg] and no artifacts — used for failures that happen outside
    the pipeline proper (crashed worker, exceeded deadline).  Exposed for
    the harnesses. *)
val failure_report : ?degradations:string list -> string -> report

(** [rescuable_failure msg] is [true] when [msg] describes a resource
    exhaustion (symex budget, solver budget, deadline) that the degradation
    ladder may rescue, as opposed to a semantic fact about the pair.
    Exposed for testing. *)
val rescuable_failure : string -> bool

(** [ladder_rungs config] is the degradation ladder for [config], mildest
    first: [("symex-escalate", _)] multiplies every symex budget, then
    [("sym-file-degrade", _)] additionally shrinks the symbolic file.
    Exposed for testing. *)
val ladder_rungs : config -> (string * config) list

(** [climb_ladder ~deadline ~attempt r0 rungs] retries the rescuable
    failure [r0] up [rungs].  The deadline is the ONE wall-clock budget
    shared by every rung — a retried rung cannot reset the clock; once it
    expires the climb stops and [r0] stands, recording only the rungs
    actually attempted.  Exposed for testing the deadline × retry
    interaction. *)
val climb_ladder :
  deadline:Octo_util.Deadline.t ->
  attempt:(config -> report) ->
  report ->
  (string * config) list ->
  report

(** [run ?config ?ell ~s ~t ~poc ()] executes the full pipeline.

    ℓ defaults to the clone-detection result of
    {!Octo_clone.Clone.shared_functions}; pass [?ell] to override (the
    paper assumes ℓ is an input).

    Does not raise: deadline expiries and injected faults become [Failure]
    verdicts, and rescuable failures are retried up the degradation ladder
    when [config.ladder] is on (the rungs climbed are recorded in
    [degradations]). *)
val run :
  ?config:config ->
  ?ell:string list ->
  s:Octo_vm.Isa.program ->
  t:Octo_vm.Isa.program ->
  poc:string ->
  unit ->
  report

(** A batch-verification work item: one (S, T, PoC) pair plus a caller
    label (e.g. the registry index) used to key the result. *)
type job

(** [job ~label ~s ~t ~poc ()] builds a batch item; [?ell] overrides clone
    detection as in {!run}, [?config] overrides the batch-level
    configuration for this item only (used by the chaos harness to give
    every job its own injector). *)
val job :
  ?ell:string list ->
  ?config:config ->
  label:string ->
  s:Octo_vm.Isa.program ->
  t:Octo_vm.Isa.program ->
  poc:string ->
  unit ->
  job

(** [content_key ?config ?ell ~s ~t ~poc ()] is the verdict-cache key: a
    hex digest over the canonical content of S and T, the PoC bytes, the ℓ
    override, and every budget/config field that can change a verdict
    ([config.inject] excluded — fault injection perturbs a run, not the
    pair's identity).  A journaled verdict is valid for a later invocation
    iff the keys match; any content or budget change forces a re-run. *)
val content_key :
  ?config:config ->
  ?ell:string list ->
  s:Octo_vm.Isa.program ->
  t:Octo_vm.Isa.program ->
  poc:string ->
  unit ->
  string

(** [job_key ~config j] is {!content_key} for a batch item, under the
    job's own config override when it has one. *)
val job_key : config:config -> job -> string

(** [encode_result ~label ~key r] serializes one settled pair for the
    write-ahead journal ({!Octo_util.Journal}): label, cache key, and the
    full verdict (poc' bytes, degradation rungs, elapsed time).  Pipeline
    artifacts (taint, symex stats, bunches) are not persisted. *)
val encode_result : label:string -> key:string -> report -> string

(** [decode_result payload] is the inverse of {!encode_result}:
    [(label, key, report)], or [None] on any malformed or
    foreign-versioned record — the decoder never raises. *)
val decode_result : string -> (string * string * report) option

(** [is_skipped_report r] recognizes the placeholder [Failure] that
    [run_all ~fail_fast:true] returns for pairs it never started. *)
val is_skipped_report : report -> bool

(** How batch/stream drivers isolate one job from its batch-mates.

    [Domains] (the default, the historical behaviour) runs jobs on
    worker domains in this process; crash containment is
    exception-level, so a native fault — a real segfault, or an OOM
    kill — in one job takes down the whole batch.

    [Processes] forks one child per job under optional [setrlimit]
    bounds ({!Octo_util.Sandbox.limits}) and classifies every way the
    child can die (clean verdict, exception, SIGSEGV, OOM, RLIMIT_CPU,
    parent deadline-kill, torn pipe protocol) into a structured
    [Failure] — the blast radius of any fault is one child.  Process
    mode runs single-domain in the parent with process-level
    parallelism instead, and must be the process's first parallel
    work: OCaml 5.1 refuses [Unix.fork] permanently once any domain
    has ever been spawned, so never run a Domain-mode batch before a
    Processes one in the same process.  Verdicts and journal dumps are
    identical to Domain mode by construction. *)
type isolation = Domains | Processes

(** [run_all ?config ?jobs ?retries ?stall_grace_s ?fail_fast ?isolate
    ?limits ?pre_run ?on_settle batch] verifies every pair of [batch],
    fanning the work out over a fixed pool of [jobs] worker domains
    ({!Octo_util.Pool}) — or, with [~isolate:Processes], over up to
    [jobs] concurrently forked children; [jobs <= 1] (the default) runs
    serially in the calling domain (one child at a time under process
    isolation).  Results are returned in input order, labelled.

    Crash isolation: a job whose worker raises — after [retries] (default
    0) additional attempts — yields [(label, Failure "worker crashed:
    ...")].  The batch always returns exactly one labelled report per
    input job; one crashing job never discards its batch-mates' work.

    Stall supervision: with [stall_grace_s] (and [jobs >= 2]), a worker
    silent past the grace period is requeued under the same [retries]
    accounting; once its attempts are exhausted the pair settles as
    [Failure "worker stalled: ..."].  Pick a grace comfortably above the
    per-pair deadline — the deadline bounds a healthy pair's runtime, the
    watchdog catches everything the deadline cannot (non-cooperative
    wedges).

    [fail_fast] stops scheduling new pairs once any pair settles as a
    [Failure]; unstarted pairs come back as skipped placeholders
    ({!is_skipped_report}) and are not journaled.

    [on_settle label report] fires exactly once per non-skipped job, in
    completion order, from worker context; [run_all] returns only after
    every callback finishes.  The CLI's write-ahead journaling hooks in
    here.

    [limits] bounds each child under [~isolate:Processes] (ignored in
    Domain mode, where no rlimit can be scoped to one job);
    [stall_grace_s] is inert under process isolation, where the
    parent's wall-clock deadline-kill subsumes the heartbeat watchdog.
    [pre_run job] runs in the worker (the child, under process
    isolation) just before the job's pipeline — the hook the CLI uses
    to plant a deliberate allocation for sandbox smoke tests. *)
val run_all :
  ?config:config ->
  ?jobs:int ->
  ?retries:int ->
  ?stall_grace_s:float ->
  ?fail_fast:bool ->
  ?isolate:isolation ->
  ?limits:Octo_util.Sandbox.limits ->
  ?pre_run:(job -> unit) ->
  ?on_settle:(string -> report -> unit) ->
  job list ->
  (string * report) list

(** [job_label j] is the caller label the job was built with. *)
val job_label : job -> string

(** A poison-pair quarantine record: a job whose worker crashed or
    stalled on every attempt of its retry budget, moved aside with its
    evidence instead of failing the batch. *)
type quarantine = {
  qlabel : string;
  qkey : string;  (** the job's {!content_key} *)
  qreason : string;  (** ["worker crashed"] or ["worker stalled"] *)
  qmessage : string;  (** printable exception of the final attempt *)
  qbacktrace : string;  (** final attempt's backtrace (may be empty) *)
  qattempts : int;  (** attempts consumed, retries included *)
}

(** [encode_quarantine q] serializes a quarantine record for the
    quarantine journal.  The record carries its own version tag (["OQR1"]),
    so {!decode_result} rejects it cleanly and vice versa. *)
val encode_quarantine : quarantine -> string

(** [decode_quarantine payload] is the inverse of {!encode_quarantine};
    [None] on any malformed or foreign-versioned record — never raises. *)
val decode_quarantine : string -> quarantine option

(** Summary of one {!run_stream} invocation. *)
type stream_stats = {
  st_pulled : int;  (** jobs pulled from the source *)
  st_settled : int;  (** jobs that produced a verdict ([on_settle] fired) *)
  st_quarantined : int;  (** jobs handed to [on_quarantine] *)
  st_peak_in_flight : int;  (** high-water mark of concurrently held jobs *)
  st_deferrals : int;
      (** admission-deferral episodes: times the process-mode memory
          controller paused admissions under pressure (always 0 in
          Domain isolation) *)
}

(** [run_stream ?config ?jobs ?retries ?window ?on_settle ?on_quarantine
    next] verifies a stream of jobs pulled lazily from [next] — the
    corpus-scale runner.  The batch is never materialized: [next ()] is
    called (from the dispatching domain only) each time the admission
    window has a free slot, so peak memory is bounded by [window] (default
    [max 4 (2 * jobs)]) in-flight jobs, not by the corpus size.

    A job whose worker raises gets [retries] extra attempts, each preceded
    by a capped exponential backoff with deterministic jitter
    ({!Octo_util.Pool.backoff_delay}).  A job still raising after the
    budget is handed to [on_quarantine] (when given) instead of settling —
    poison pairs are moved aside, never fail the batch; without
    [on_quarantine] they settle as [Failure "worker crashed/stalled: ..."]
    like {!run_all}.

    Streaming mode has no heartbeat watchdog; wedged workers are bounded
    by the per-job cooperative deadline ([config.deadline_s]).

    [on_settle job report] and [on_quarantine q] fire exactly once per
    job, from worker context, in completion order; [run_stream] returns
    only after every callback has finished.

    With [~isolate:Processes] every job runs in a forked child under
    [limits] ({!Octo_util.Sandbox.limits}); the admission window IS the
    concurrency (one child per admitted job, so the default carries
    over as up to [2 * jobs] live children).  Child deaths — SIGSEGV,
    OOM (the child's own [Out_of_memory] under RLIMIT_AS or a kernel
    OOM SIGKILL), RLIMIT_CPU expiry, parent deadline-kill (a hard
    wall-clock backstop at four times [config.deadline_s] plus one
    second), torn pipe frames — feed the same retry → quarantine ladder
    as Domain-mode crashes, with the classification as the quarantine
    reason ([qreason = "oom"] for memory deaths) or, absent
    [on_quarantine], as a structured [Failure] carrying one provenance
    [Rung] naming the death.  [mem_watermark_mb] arms the
    memory-pressure admission controller: past the watermark (parent
    RSS plus worst observed child RSS) the in-flight window halves and
    admissions defer, counted in [st_deferrals] and recorded as an
    ["admission-deferred"] degradation on the next admitted job.
    [pre_run job] runs in the child just before the pipeline.

    Fork safety: process mode spawns no domains and must run before
    the process's first Domain-mode work — OCaml 5.1 refuses
    [Unix.fork] permanently once any domain has ever been spawned
    (joining does not lift the restriction).  The shared pool is still
    shut down defensively on entry. *)
val run_stream :
  ?config:config ->
  ?jobs:int ->
  ?retries:int ->
  ?window:int ->
  ?isolate:isolation ->
  ?limits:Octo_util.Sandbox.limits ->
  ?mem_watermark_mb:int ->
  ?pre_run:(job -> unit) ->
  ?on_settle:(job -> report -> unit) ->
  ?on_quarantine:(quarantine -> unit) ->
  (unit -> job option) ->
  stream_stats

(** [stream_of_list jobs] wraps a pre-materialized job list as a pull
    cursor for {!run_stream} — the scan pipeline's bridge from a finite
    confirmed-candidate set to the streaming runner.  Thread-safe. *)
val stream_of_list : job list -> unit -> job option

(** [sort_dump entries] orders decoded journal records [(label, key, v)]
    for display: label (numeric-aware, so registry pair "10" sorts after
    "9"), then content key as a tiebreak.  The tiebreak is what makes a
    merged sharded dump deterministic: shard interleave depends on
    settle order, and one label can appear under several keys across
    resumed runs with changed budgets. *)
val sort_dump : (string * string * 'a) list -> (string * string * 'a) list
