(** Bounds-checked memory for MiniVM.

    Memory is a set of disjoint regions (read-only data, heap allocations,
    file mappings).  Any access outside a live region is a fault — the
    mechanism by which the CWE-119/190 vulnerabilities of the target pairs
    crash, mirroring the hardware traps of the paper's native binaries. *)

type region_kind = Rodata | Heap | Mapped

type region = {
  base : int;
  size : int;
  kind : region_kind;
  bytes : Bytes.t;
}

type fault =
  | Oob_read of int          (** load outside any live region *)
  | Oob_write of int         (** store outside any live region *)
  | Write_to_rodata of int
  | Null_deref of int        (** access below the data base (the null page) *)
  | Div_by_zero
  | Hang                     (** step budget exhausted: models CWE-835 *)
  | Bad_icall of int         (** indirect call outside the function table *)

exception Fault of fault

let pp_fault ppf = function
  | Oob_read a -> Fmt.pf ppf "out-of-bounds read at 0x%x" a
  | Oob_write a -> Fmt.pf ppf "out-of-bounds write at 0x%x" a
  | Write_to_rodata a -> Fmt.pf ppf "write to read-only data at 0x%x" a
  | Null_deref a -> Fmt.pf ppf "null dereference at 0x%x" a
  | Div_by_zero -> Fmt.pf ppf "division by zero"
  | Hang -> Fmt.pf ppf "hang (step budget exhausted)"
  | Bad_icall i -> Fmt.pf ppf "indirect call to invalid slot %d" i

let fault_to_string f = Fmt.str "%a" pp_fault f

type t = {
  mutable regions : region list;
  mutable brk : int;   (* bump pointer for heap allocations *)
  mutable last : region option;
      (* most recently hit region: programs overwhelmingly touch the same
         region in consecutive accesses, so this short-circuits the linear
         region scan.  Regions are disjoint and never freed, so a stale
         [last] can only miss, never alias. *)
}

(* Heap starts well above the data section so data growth never collides. *)
let heap_base = 0x100000

let create () = { regions = []; brk = heap_base; last = None }

(** [load_rodata t data] installs the assembled program's data section. *)
let load_rodata t (data : (string * int * string) list) =
  List.iter
    (fun (_sym, base, s) ->
      if String.length s > 0 then
        t.regions <-
          { base; size = String.length s; kind = Rodata; bytes = Bytes.of_string s }
          :: t.regions)
    data

(** [alloc t size] returns the base of a fresh zero-filled heap region.
    Each allocation is padded apart from its neighbours so off-by-one writes
    always fault instead of silently landing in the next allocation. *)
let alloc t size =
  let size = max size 0 in
  let base = t.brk in
  t.brk <- t.brk + size + 16;
  t.regions <- { base; size; kind = Heap; bytes = Bytes.make (max size 1) '\000' } :: t.regions;
  base

(** [map_bytes t s] installs [s] as a fresh mapped region (used by mmap). *)
let map_bytes t s =
  let size = String.length s in
  let base = t.brk in
  t.brk <- t.brk + size + 16;
  t.regions <- { base; size; kind = Mapped; bytes = Bytes.of_string (if size = 0 then "\000" else s) } :: t.regions;
  base

let find_region t addr =
  match t.last with
  | Some r when addr >= r.base && addr - r.base < r.size -> Some r
  | _ -> (
      match List.find_opt (fun r -> addr >= r.base && addr < r.base + r.size) t.regions with
      | Some _ as hit ->
          t.last <- hit;
          hit
      | None -> None)

(** [read8 t addr] loads one byte, faulting on invalid addresses. *)
let read8 t addr =
  match find_region t addr with
  | Some r -> Bytes.get_uint8 r.bytes (addr - r.base)
  | None -> raise (Fault (if addr < Asm.data_base then Null_deref addr else Oob_read addr))

(** [write8 t addr v] stores one byte, faulting on invalid or read-only
    addresses. *)
let write8 t addr v =
  match find_region t addr with
  | Some { kind = Rodata; _ } -> raise (Fault (Write_to_rodata addr))
  | Some r -> Bytes.set_uint8 r.bytes (addr - r.base) (v land 0xff)
  | None -> raise (Fault (if addr < Asm.data_base then Null_deref addr else Oob_write addr))

let read_word t addr =
  let b i = read8 t (addr + i) in
  b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)

let write_word t addr v =
  write8 t addr v;
  write8 t (addr + 1) (v lsr 8);
  write8 t (addr + 2) (v lsr 16);
  write8 t (addr + 3) (v lsr 24)

(** [region_of t addr] exposes region metadata (tests and taint reports). *)
let region_of t addr = find_region t addr
