(** Compile-once direct-threaded execution engine for MiniVM.

    The decode-per-step interpreter re-matches every instruction and
    re-resolves every operand on every executed step; for the pipeline that
    cost is paid four times per pair (S crash run, taint replay, poc' and
    poc verification) and millions of times for hang-bound pairs.  This
    module lowers a program once into arrays of OCaml closures — one
    closure per instruction, operands pre-resolved to register slots or
    pre-masked immediates, jump targets pre-indexed — and caches the result
    behind the same canonical content digest the verdict cache uses, so
    P1, P4 and the fuzzers all reuse one compilation.

    Two closure arrays are compiled per function:

    - [fast]: instrumentation specialized OUT — no hook dispatch, no access
      record allocation.  Selected when the caller passes no hooks.
    - [slow]: the PIN-style hook protocol of {!Interp}, event-for-event
      identical to the reference decode loop (order, payloads, object
      lists), for taint replay and coverage.

    Each array carries one sentinel closure past the last instruction so
    the driver loop needs no bounds branch for the fall-off-the-end
    implicit [Ret 0].

    Semantics contract: byte-for-byte the reference interpreter —
    outcomes, crash sites, backtraces, step counts, hook streams, output
    channels, fault-injection and deadline behavior.  The qcheck
    differential property in [test/test_vm.ml] pins this against
    {!Interp.run_reference} over random DSL programs.

    The shared runtime types ([hooks], [crash], [result], ...) live here —
    the bottom of the VM dependency order — and {!Interp} re-exports them
    with type equations, so existing callers compile unchanged. *)

open Isa
module Deadline = Octo_util.Deadline
module Faultinject = Octo_util.Faultinject

(** A taintable object: a register of a specific activation frame, or one
    byte of memory. *)
type obj =
  | OReg of int * reg   (** (frame id, register) *)
  | OMem of int         (** byte address *)

type access = {
  reads : obj list;
  writes : obj list;
}
(** One dataflow event: every write object receives the joined influence of
    all read objects. *)

type hooks = {
  on_access : access -> unit;
  on_input_bytes : addr:int -> file_off:int -> len:int -> unit;
  on_call : fname:string -> frame_id:int -> args:int list -> unit;
  on_ret : string -> unit;
  on_edge : string -> int -> int -> unit;
  on_step : string -> int -> unit;
  on_seek : fd:int -> pos:int -> unit;
}

let no_hooks =
  {
    on_access = (fun _ -> ());
    on_input_bytes = (fun ~addr:_ ~file_off:_ ~len:_ -> ());
    on_call = (fun ~fname:_ ~frame_id:_ ~args:_ -> ());
    on_ret = (fun _ -> ());
    on_edge = (fun _ _ _ -> ());
    on_step = (fun _ _ -> ());
    on_seek = (fun ~fd:_ ~pos:_ -> ());
  }

type crash = {
  fault : Mem.fault;
  crash_func : string;
  crash_pc : int;
  backtrace : string list;  (** outermost (entry) first, crash site last *)
}

type outcome =
  | Exited of int
  | Crashed of crash

type result = {
  outcome : outcome;
  outputs : int list;
  steps : int;
}

exception Exit_program of int

let default_max_steps = 400_000

(* Deadline polling granularity: one monotonic-clock read every this many
   steps.  Power of two so the gate is a single [land]. *)
let deadline_stride = 2048

(* ------------------------------------------------------------------ *)
(* Compiled representation. *)

type cfunc = {
  cf_name : string;
  mutable fast : op array;  (** hook-free closures, length [code+1] *)
  mutable slow : op array;  (** hooked closures, length [code+1] *)
}

and cframe = {
  cfunc : cfunc;
  mutable pc : int;
  regs : int array;
  ret_dst : reg option;
  frame_id : int;
  ops : op array;  (** the mode-selected closure array of [cfunc] *)
}

and ectx = {
  mem : Mem.t;
  file : Vfile.t;
  input : string;
  hooks : hooks;
  inject : Faultinject.t;
  hooked : bool;
  mutable outputs : int list;  (* reversed *)
  mutable stack : cframe list;
  mutable cur : cframe;
  mutable next_frame : int;
  mutable steps : int;
}

and op = ectx -> unit

type compiled = {
  centry : cfunc;
  cdata : (string * int * string) list;
}

(* ------------------------------------------------------------------ *)
(* Operand pre-resolution.  Register indices outside 0..31 compile to
   closures that raise exactly as the reference's [Array.get] would, so
   unsafe accesses are only emitted for statically-valid slots. *)

let reg_ok r = r >= 0 && r < 32

let rval (o : operand) : cframe -> int =
  match o with
  | Reg r when reg_ok r -> fun fr -> Array.unsafe_get fr.regs r
  | Reg r -> fun fr -> fr.regs.(r)
  | Imm v ->
      let v = mask32 v in
      fun _ -> v
  | Sym s -> fun _ -> invalid_arg ("Interp: unresolved symbol " ^ s)

(* Static read-object shape of an operand (hooked mode only). *)
let oreads (o : operand) : cframe -> obj list =
  match o with
  | Reg r -> fun fr -> [ OReg (fr.frame_id, r) ]
  | Imm _ | Sym _ -> fun _ -> []

let set_reg d : cframe -> int -> unit =
  if reg_ok d then fun fr v -> Array.unsafe_set fr.regs d v
  else fun fr v -> fr.regs.(d) <- v

let missing_func pname fname () =
  invalid_arg (Printf.sprintf "Isa.func_exn: no function %S in %s" fname pname)

(* ------------------------------------------------------------------ *)
(* Frame push/pop shared by calls and returns. *)

let select_ops ctx (cf : cfunc) = if ctx.hooked then cf.slow else cf.fast

let pop_to ctx caller rest =
  ctx.stack <- rest;
  ctx.cur <- caller

(* ------------------------------------------------------------------ *)
(* Instruction lowering.  [hooked] selects whether the PIN-style hook
   protocol is compiled in; the hook-free variant allocates nothing on the
   per-step path.  Event order and payloads of the hooked variant replicate
   the reference decode loop exactly. *)

let compile_instr ~hooked ~(p : program) ~(cfuncs : (string, cfunc) Hashtbl.t)
    ~(ftable : (string * cfunc option) array) ~(fname : string) ~(pc : int) (ins : instr) : op
    =
  let pc1 = pc + 1 in
  let on_step ctx = ctx.hooks.on_step fname pc in
  (* Shared call lowering: resolve the callee statically when it exists;
     a missing callee raises [func_exn]'s error at execution time, after
     the step hook, exactly like the reference. *)
  let compile_call (callee : cfunc option) (callee_name : string) (args : operand list)
      (dst : reg option) : op =
    let getters = Array.of_list (List.map rval args) in
    let nargs = Array.length getters in
    match callee with
    | None -> fun ctx -> if hooked then on_step ctx; missing_func p.pname callee_name ()
    | Some callee ->
        if not hooked then fun ctx ->
          let fr = ctx.cur in
          let regs = Array.make 32 0 in
          for i = 0 to nargs - 1 do
            let v = (Array.unsafe_get getters i) fr in
            if i < 32 then Array.unsafe_set regs i (v land 0xFFFFFFFF)
          done;
          let frame_id = ctx.next_frame in
          ctx.next_frame <- frame_id + 1;
          let nf =
            { cfunc = callee; pc = 0; regs; ret_dst = dst; frame_id; ops = callee.fast }
          in
          fr.pc <- pc1;
          ctx.stack <- nf :: ctx.stack;
          ctx.cur <- nf
        else begin
          let readers = Array.of_list (List.map oreads args) in
          fun ctx ->
            let fr = ctx.cur in
            on_step ctx;
            let argv = Array.make nargs 0 in
            for i = 0 to nargs - 1 do
              argv.(i) <- (Array.unsafe_get getters i) fr
            done;
            let regs = Array.make 32 0 in
            Array.iteri (fun i v -> if i < 32 then regs.(i) <- v land 0xFFFFFFFF) argv;
            let frame_id = ctx.next_frame in
            ctx.next_frame <- frame_id + 1;
            let nf =
              { cfunc = callee; pc = 0; regs; ret_dst = dst; frame_id; ops = callee.slow }
            in
            Array.iteri
              (fun i rd ->
                ctx.hooks.on_access { reads = rd fr; writes = [ OReg (frame_id, i) ] })
              readers;
            ctx.hooks.on_edge fname pc 0;
            fr.pc <- pc1;
            ctx.stack <- nf :: ctx.stack;
            ctx.cur <- nf;
            ctx.hooks.on_call ~fname:callee.cf_name ~frame_id ~args:(Array.to_list argv)
        end
  in
  match ins with
  | Mov (d, a) ->
      let ga = rval a and set = set_reg d in
      if not hooked then fun ctx ->
        let fr = ctx.cur in
        set fr (ga fr);
        fr.pc <- pc1
      else begin
        let ra = oreads a in
        fun ctx ->
          let fr = ctx.cur in
          on_step ctx;
          ctx.hooks.on_access { reads = ra fr; writes = [ OReg (fr.frame_id, d) ] };
          set fr (ga fr);
          fr.pc <- pc1
      end
  | Bin (op, d, x, y) ->
      let gx = rval x and gy = rval y and set = set_reg d in
      (* Specialize the operator away; inputs are re-masked like
         [eval_binop] (register contents may exceed 32 bits via alloc
         bases). *)
      let f : cframe -> int =
        match op with
        | Add -> fun fr -> ((gx fr land 0xFFFFFFFF) + (gy fr land 0xFFFFFFFF)) land 0xFFFFFFFF
        | Sub -> fun fr -> ((gx fr land 0xFFFFFFFF) - (gy fr land 0xFFFFFFFF)) land 0xFFFFFFFF
        | Mul -> fun fr -> ((gx fr land 0xFFFFFFFF) * (gy fr land 0xFFFFFFFF)) land 0xFFFFFFFF
        | Div ->
            fun fr ->
              let b = gy fr land 0xFFFFFFFF in
              if b = 0 then raise (Mem.Fault Mem.Div_by_zero)
              else (gx fr land 0xFFFFFFFF) / b
        | Mod ->
            fun fr ->
              let b = gy fr land 0xFFFFFFFF in
              if b = 0 then raise (Mem.Fault Mem.Div_by_zero)
              else (gx fr land 0xFFFFFFFF) mod b
        | And -> fun fr -> gx fr land gy fr land 0xFFFFFFFF
        | Or -> fun fr -> (gx fr lor gy fr) land 0xFFFFFFFF
        | Xor -> fun fr -> (gx fr lxor gy fr) land 0xFFFFFFFF
        | Shl ->
            fun fr -> (gx fr land 0xFFFFFFFF) lsl (gy fr land 31) land 0xFFFFFFFF
        | Shr -> fun fr -> (gx fr land 0xFFFFFFFF) lsr (gy fr land 31)
      in
      if not hooked then fun ctx ->
        let fr = ctx.cur in
        set fr (f fr);
        fr.pc <- pc1
      else begin
        let rx = oreads x and ry = oreads y in
        fun ctx ->
          let fr = ctx.cur in
          on_step ctx;
          ctx.hooks.on_access { reads = rx fr @ ry fr; writes = [ OReg (fr.frame_id, d) ] };
          set fr (f fr);
          fr.pc <- pc1
      end
  | Load8 (d, b, o) ->
      let gb = rval b and go = rval o and set = set_reg d in
      if not hooked then fun ctx ->
        let fr = ctx.cur in
        let addr = (gb fr + go fr) land 0xFFFFFFFF in
        set fr (Mem.read8 ctx.mem addr);
        fr.pc <- pc1
      else begin
        let rb = oreads b and ro = oreads o in
        fun ctx ->
          let fr = ctx.cur in
          on_step ctx;
          let addr = (gb fr + go fr) land 0xFFFFFFFF in
          let v = Mem.read8 ctx.mem addr in
          ctx.hooks.on_access
            {
              reads = (OMem addr :: rb fr) @ ro fr;
              writes = [ OReg (fr.frame_id, d) ];
            };
          set fr v;
          fr.pc <- pc1
      end
  | LoadW (d, b, o) ->
      let gb = rval b and go = rval o and set = set_reg d in
      if not hooked then fun ctx ->
        let fr = ctx.cur in
        let addr = (gb fr + go fr) land 0xFFFFFFFF in
        set fr (Mem.read_word ctx.mem addr land 0xFFFFFFFF);
        fr.pc <- pc1
      else begin
        let rb = oreads b and ro = oreads o in
        fun ctx ->
          let fr = ctx.cur in
          on_step ctx;
          let addr = (gb fr + go fr) land 0xFFFFFFFF in
          let v = Mem.read_word ctx.mem addr in
          ctx.hooks.on_access
            {
              reads = (List.init 4 (fun i -> OMem (addr + i)) @ rb fr) @ ro fr;
              writes = [ OReg (fr.frame_id, d) ];
            };
          set fr (v land 0xFFFFFFFF);
          fr.pc <- pc1
      end
  | Store8 (b, o, v) ->
      let gb = rval b and go = rval o and gv = rval v in
      if not hooked then fun ctx ->
        let fr = ctx.cur in
        let addr = (gb fr + go fr) land 0xFFFFFFFF in
        Mem.write8 ctx.mem addr (gv fr);
        fr.pc <- pc1
      else begin
        let rb = oreads b and ro = oreads o and rv = oreads v in
        fun ctx ->
          let fr = ctx.cur in
          on_step ctx;
          let addr = (gb fr + go fr) land 0xFFFFFFFF in
          ctx.hooks.on_access
            { reads = (rv fr @ rb fr) @ ro fr; writes = [ OMem addr ] };
          Mem.write8 ctx.mem addr (gv fr);
          fr.pc <- pc1
      end
  | StoreW (b, o, v) ->
      let gb = rval b and go = rval o and gv = rval v in
      if not hooked then fun ctx ->
        let fr = ctx.cur in
        let addr = (gb fr + go fr) land 0xFFFFFFFF in
        Mem.write_word ctx.mem addr (gv fr);
        fr.pc <- pc1
      else begin
        let rb = oreads b and ro = oreads o and rv = oreads v in
        fun ctx ->
          let fr = ctx.cur in
          on_step ctx;
          let addr = (gb fr + go fr) land 0xFFFFFFFF in
          ctx.hooks.on_access
            {
              reads = (rv fr @ rb fr) @ ro fr;
              writes = List.init 4 (fun i -> OMem (addr + i));
            };
          Mem.write_word ctx.mem addr (gv fr);
          fr.pc <- pc1
      end
  | Jmp t ->
      if not hooked then fun ctx -> ctx.cur.pc <- t
      else fun ctx ->
        on_step ctx;
        ctx.hooks.on_edge fname pc t;
        ctx.cur.pc <- t
  | Jif (rel, a, b, t) ->
      let ga = rval a and gb = rval b in
      (* Specialized unsigned comparison over masked 32-bit values. *)
      let cmp : cframe -> bool =
        match rel with
        | Eq -> fun fr -> ga fr land 0xFFFFFFFF = gb fr land 0xFFFFFFFF
        | Ne -> fun fr -> ga fr land 0xFFFFFFFF <> gb fr land 0xFFFFFFFF
        | Lt -> fun fr -> ga fr land 0xFFFFFFFF < gb fr land 0xFFFFFFFF
        | Le -> fun fr -> ga fr land 0xFFFFFFFF <= gb fr land 0xFFFFFFFF
        | Gt -> fun fr -> ga fr land 0xFFFFFFFF > gb fr land 0xFFFFFFFF
        | Ge -> fun fr -> ga fr land 0xFFFFFFFF >= gb fr land 0xFFFFFFFF
      in
      if not hooked then fun ctx ->
        let fr = ctx.cur in
        fr.pc <- (if cmp fr then t else pc1)
      else begin
        let ra = oreads a and rb = oreads b in
        fun ctx ->
          let fr = ctx.cur in
          on_step ctx;
          ctx.hooks.on_access { reads = ra fr @ rb fr; writes = [] };
          let dst = if cmp fr then t else pc1 in
          ctx.hooks.on_edge fname pc dst;
          fr.pc <- dst
      end
  | Call (callee, args, dst) -> compile_call (Hashtbl.find_opt cfuncs callee) callee args dst
  | Icall (f, args, dst) ->
      let gf = rval f in
      let slots =
        Array.map (fun (nm, cf) -> compile_call cf nm args dst) ftable
      in
      let nslots = Array.length slots in
      fun ctx ->
        (* The per-slot closure replays the step hook itself in hooked
           mode, so only the bounds check lives here; an invalid slot must
           still fire the step hook first, like the reference. *)
        let idx = gf ctx.cur in
        if idx < 0 || idx >= nslots then begin
          if hooked then on_step ctx;
          raise (Mem.Fault (Mem.Bad_icall idx))
        end
        else (Array.unsafe_get slots idx) ctx
  | Ret v ->
      let gv = rval v in
      if not hooked then fun ctx ->
        let fr = ctx.cur in
        let rv = gv fr in
        (match ctx.stack with
        | [ _ ] -> raise (Exit_program rv)
        | _ :: (caller :: _ as rest) ->
            (match fr.ret_dst with Some d -> caller.regs.(d) <- rv | None -> ());
            pop_to ctx caller rest
        | [] -> assert false)
      else begin
        let rv_reads = oreads v in
        fun ctx ->
          let fr = ctx.cur in
          on_step ctx;
          ctx.hooks.on_ret fname;
          let rv = gv fr in
          match ctx.stack with
          | [ _ ] -> raise (Exit_program rv)
          | _ :: (caller :: _ as rest) ->
              (match fr.ret_dst with
              | Some d ->
                  ctx.hooks.on_access
                    { reads = rv_reads fr; writes = [ OReg (caller.frame_id, d) ] };
                  caller.regs.(d) <- rv
              | None -> ());
              pop_to ctx caller rest
          | [] -> assert false
      end
  | Halt ->
      fun ctx ->
        if hooked then on_step ctx;
        raise (Exit_program 0)
  | Sys sc -> (
      let sys_gate ctx =
        if hooked then on_step ctx;
        Faultinject.maybe_raise ctx.inject Faultinject.Vm_syscall ~what:"vm syscall"
      in
      let wr_access ctx d =
        if hooked then
          ctx.hooks.on_access { reads = []; writes = [ OReg (ctx.cur.frame_id, d) ] }
      in
      match sc with
      | Open d ->
          let set = set_reg d in
          fun ctx ->
            sys_gate ctx;
            let fr = ctx.cur in
            set fr (Vfile.open_ ctx.file);
            wr_access ctx d;
            fr.pc <- pc1
      | Read (d, fd, buf, len) ->
          let gfd = rval fd and gbuf = rval buf and glen = rval len and set = set_reg d in
          fun ctx ->
            sys_gate ctx;
            let fr = ctx.cur in
            let fdv = gfd fr and bufv = gbuf fr and lenv = glen fr in
            let off, s = Vfile.read ctx.file fdv lenv in
            String.iteri (fun i c -> Mem.write8 ctx.mem (bufv + i) (Char.code c)) s;
            if hooked && String.length s > 0 then
              ctx.hooks.on_input_bytes ~addr:bufv ~file_off:off ~len:(String.length s);
            set fr (String.length s);
            wr_access ctx d;
            fr.pc <- pc1
      | Seek (fd, p') ->
          let gfd = rval fd and gp = rval p' in
          fun ctx ->
            sys_gate ctx;
            let fr = ctx.cur in
            let fdv = gfd fr and pv = gp fr in
            Vfile.seek ctx.file fdv pv;
            if hooked then ctx.hooks.on_seek ~fd:fdv ~pos:pv;
            fr.pc <- pc1
      | Tell (d, fd) ->
          let gfd = rval fd and set = set_reg d in
          fun ctx ->
            sys_gate ctx;
            let fr = ctx.cur in
            set fr (Vfile.tell ctx.file (gfd fr));
            wr_access ctx d;
            fr.pc <- pc1
      | Fsize (d, _fd) ->
          let set = set_reg d in
          fun ctx ->
            sys_gate ctx;
            let fr = ctx.cur in
            set fr (Vfile.size ctx.file);
            wr_access ctx d;
            fr.pc <- pc1
      | Mmap (d, _fd) ->
          let set = set_reg d in
          fun ctx ->
            sys_gate ctx;
            let fr = ctx.cur in
            let base = Mem.map_bytes ctx.mem ctx.input in
            if hooked && String.length ctx.input > 0 then
              ctx.hooks.on_input_bytes ~addr:base ~file_off:0
                ~len:(String.length ctx.input);
            set fr base;
            wr_access ctx d;
            fr.pc <- pc1
      | Alloc (d, sz) ->
          let gsz = rval sz and set = set_reg d in
          fun ctx ->
            sys_gate ctx;
            let fr = ctx.cur in
            set fr (Mem.alloc ctx.mem (gsz fr));
            wr_access ctx d;
            fr.pc <- pc1
      | Exit c ->
          let gc = rval c in
          fun ctx ->
            sys_gate ctx;
            raise (Exit_program (gc ctx.cur))
      | Emit v ->
          let gv = rval v in
          if not hooked then fun ctx ->
            sys_gate ctx;
            let fr = ctx.cur in
            ctx.outputs <- gv fr :: ctx.outputs;
            fr.pc <- pc1
          else begin
            let rv = oreads v in
            fun ctx ->
              sys_gate ctx;
              let fr = ctx.cur in
              ctx.hooks.on_access { reads = rv fr; writes = [] };
              ctx.outputs <- gv fr :: ctx.outputs;
              fr.pc <- pc1
          end)

(* The sentinel closure at index [len]: falling off the end of a function
   behaves as [Ret 0] with no step hook (the reference fires hooks only for
   real instructions). *)
let implicit_ret ~hooked ~(fname : string) : op =
 fun ctx ->
  if hooked then ctx.hooks.on_ret fname;
  match ctx.stack with
  | [ _ ] -> raise (Exit_program 0)
  | fr :: (caller :: _ as rest) ->
      (match fr.ret_dst with
      | Some d ->
          if hooked then
            ctx.hooks.on_access { reads = []; writes = [ OReg (caller.frame_id, d) ] };
          caller.regs.(d) <- 0
      | None -> ());
      pop_to ctx caller rest
  | [] -> assert false

let compile_func ~hooked ~(p : program) ~cfuncs ~ftable (f : func) : op array =
  let n = Array.length f.code in
  Array.init (n + 1) (fun pc ->
      if pc = n then implicit_ret ~hooked ~fname:f.fname
      else compile_instr ~hooked ~p ~cfuncs ~ftable ~fname:f.fname ~pc f.code.(pc))

(** [compile p] lowers every function of [p]; raises [func_exn]'s
    [Invalid_argument] when the entry function is missing, like the
    reference interpreter's first fetch would. *)
let compile (p : program) : compiled =
  let cfuncs : (string, cfunc) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.iter
    (fun name _ -> Hashtbl.replace cfuncs name { cf_name = name; fast = [||]; slow = [||] })
    p.funcs;
  let ftable = Array.map (fun nm -> (nm, Hashtbl.find_opt cfuncs nm)) p.ftable in
  Hashtbl.iter
    (fun name (f : func) ->
      let cf = Hashtbl.find cfuncs name in
      cf.fast <- compile_func ~hooked:false ~p ~cfuncs ~ftable f;
      cf.slow <- compile_func ~hooked:true ~p ~cfuncs ~ftable f)
    p.funcs;
  let centry =
    match Hashtbl.find_opt cfuncs p.entry with
    | Some cf -> cf
    | None ->
        ignore (func_exn p p.entry);
        assert false
  in
  { centry; cdata = p.data }

(* ------------------------------------------------------------------ *)
(* Content-keyed compilation cache.

   The key is the canonical program digest — the same digest the verdict
   cache's content keys build on — NOT physical identity: a program
   mutated in place (devirtualization, tests) digests differently and
   recompiles, so stale closures can never run.  The digest costs a few
   microseconds per lookup; every run it saves re-decoding the whole
   execution. *)

(** [program_digest p] is the canonical content digest of [p]: functions
    in sorted-name order so the digest does not depend on hash-table
    internals.  {!Octopocs.content_key} builds on this digest — keep the
    rendering stable or journaled verdict caches invalidate. *)
let program_digest (p : program) =
  let b = Buffer.create 4096 in
  Buffer.add_string b p.pname;
  Buffer.add_char b '\000';
  Buffer.add_string b p.entry;
  Buffer.add_char b '\000';
  let fnames = Hashtbl.fold (fun k _ acc -> k :: acc) p.funcs [] |> List.sort compare in
  List.iter
    (fun fn ->
      let f = func_exn p fn in
      Buffer.add_string b (Marshal.to_string (f.fname, f.nparams, f.code) []))
    fnames;
  Buffer.add_string b (Marshal.to_string (p.ftable, p.data) []);
  Digest.string (Buffer.contents b)

let cache : (string, compiled) Hashtbl.t = Hashtbl.create 16
let cache_lock = Mutex.create ()
let cache_cap = 64

(** [get ?digest p] returns the cached compilation of [p], compiling on
    first use.  [digest] lets callers that already hold the program's
    canonical digest (pipeline, verdict cache) skip recomputing it — it
    MUST equal [program_digest p].  Hits are counted under
    {!Octo_util.Metrics.Cache_hits}. *)
let get ?digest (p : program) : compiled =
  let d = match digest with Some d -> d | None -> program_digest p in
  Mutex.lock cache_lock;
  let hit = Hashtbl.find_opt cache d in
  Mutex.unlock cache_lock;
  match hit with
  | Some c ->
      Octo_util.Metrics.incr Octo_util.Metrics.Cache_hits;
      c
  | None ->
      let c = compile p in
      Mutex.lock cache_lock;
      (* Re-check under the lock; keep whichever compilation landed first
         so concurrent callers share closures. *)
      let c =
        match Hashtbl.find_opt cache d with
        | Some c' -> c'
        | None ->
            if Hashtbl.length cache >= cache_cap then Hashtbl.reset cache;
            Hashtbl.add cache d c;
            c
      in
      Mutex.unlock cache_lock;
      c

(* ------------------------------------------------------------------ *)
(* Driver. *)

let backtrace ctx = List.rev_map (fun f -> f.cfunc.cf_name) ctx.stack

(** [run ?hooks ?max_steps ?deadline ?inject compiled ~input] executes a
    compiled program with the exact semantics of the reference
    interpreter (see {!Interp.run}). *)
let run ?(hooks = no_hooks) ?(max_steps = default_max_steps) ?(deadline = Deadline.none)
    ?(inject = Faultinject.none) (cp : compiled) ~(input : string) : result =
  let mem = Mem.create () in
  Mem.load_rodata mem cp.cdata;
  let file = Vfile.create input in
  let hooked = hooks != no_hooks in
  let entry = cp.centry in
  let fr0 =
    {
      cfunc = entry;
      pc = 0;
      regs = Array.make 32 0;
      ret_dst = None;
      frame_id = 0;
      ops = (if hooked then entry.slow else entry.fast);
    }
  in
  let ctx =
    {
      mem;
      file;
      input;
      hooks;
      inject;
      hooked;
      outputs = [];
      stack = [ fr0 ];
      cur = fr0;
      next_frame = 1;
      steps = 0;
    }
  in
  let stride = deadline_stride - 1 in
  let outcome =
    try
      while true do
        let s = ctx.steps in
        if s >= max_steps then raise (Mem.Fault Mem.Hang);
        if s land stride = 0 then Deadline.check deadline ~what:"concrete execution";
        ctx.steps <- s + 1;
        let fr = ctx.cur in
        let ops = fr.ops in
        let last = Array.length ops - 1 in
        let pc = fr.pc in
        if pc >= 0 && pc < last then (Array.unsafe_get ops pc) ctx
        else (Array.unsafe_get ops last) ctx
      done;
      assert false
    with
    | Exit_program c -> Exited c
    | Mem.Fault fault ->
        let fr = ctx.cur in
        Crashed
          { fault; crash_func = fr.cfunc.cf_name; crash_pc = fr.pc; backtrace = backtrace ctx }
    | Vfile.Bad_fd fd ->
        let fr = ctx.cur in
        Crashed
          {
            fault = Mem.Oob_read fd;
            crash_func = fr.cfunc.cf_name;
            crash_pc = fr.pc;
            backtrace = backtrace ctx;
          }
  in
  Octo_util.Metrics.add Octo_util.Metrics.Vm_steps ctx.steps;
  { outcome; outputs = List.rev ctx.outputs; steps = ctx.steps }
