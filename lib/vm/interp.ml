(** Concrete interpreter for MiniVM, with PIN-style instrumentation hooks.

    The hook interface is the OCaml analogue of the paper's dynamic binary
    instrumentation layer (§IV-A): for every executed instruction the
    interpreter reports which objects (frame-local registers, memory bytes)
    were read and written, with addresses fully resolved — exactly the
    [GetCurrentAsm] primitive of Algorithm 1.  Input-derived bytes entering
    memory (read/mmap syscalls) are reported with their file offsets, which is
    how the taint engine seeds its specified memory area.

    Execution is delegated to {!Compile}: the program is lowered once into
    direct-threaded closure arrays (cached by content digest) and {!run} is a
    thin driver over the compiled form.  The original decode-per-step loop is
    kept below as {!run_reference} — the executable specification the compiled
    engine is differentially tested against (see [test/test_vm.ml]). *)

open Isa
module Deadline = Octo_util.Deadline
module Faultinject = Octo_util.Faultinject

(** A taintable object: a register of a specific activation frame, or one
    byte of memory. *)
type obj = Compile.obj =
  | OReg of int * reg   (** (frame id, register) *)
  | OMem of int         (** byte address *)

type access = Compile.access = {
  reads : obj list;
  writes : obj list;
}
(** One dataflow event: every write object receives the joined influence of
    all read objects.  Instructions that move several independent values
    (calls, returns) emit one event per moved value. *)

type hooks = Compile.hooks = {
  on_access : access -> unit;
  on_input_bytes : addr:int -> file_off:int -> len:int -> unit;
      (** [len] input-file bytes starting at [file_off] were copied to
          memory starting at [addr]. *)
  on_call : fname:string -> frame_id:int -> args:int list -> unit;
  on_ret : string -> unit;
  on_edge : string -> int -> int -> unit;
      (** control-flow edge taken: (function, from pc, to pc); used by the
          fuzzers' coverage map and by the dynamic CFG builder. *)
  on_step : string -> int -> unit;  (** executed (function, pc) *)
  on_seek : fd:int -> pos:int -> unit;
      (** explicit file repositioning; lets analyses track the file position
          indicator without re-implementing the file table *)
}

let no_hooks = Compile.no_hooks

type frame = {
  func : func;
  mutable pc : int;
  regs : int array;
  ret_dst : reg option;
  frame_id : int;
}

type crash = Compile.crash = {
  fault : Mem.fault;
  crash_func : string;
  crash_pc : int;
  backtrace : string list;  (** outermost (entry) first, crash site last *)
}

type outcome = Compile.outcome =
  | Exited of int
  | Crashed of crash

type result = Compile.result = {
  outcome : outcome;
  outputs : int list;   (** values passed to [Emit], in order *)
  steps : int;
}

exception Exit_program = Compile.Exit_program

let default_max_steps = Compile.default_max_steps

let pp_outcome ppf = function
  | Exited c -> Fmt.pf ppf "exited(%d)" c
  | Crashed c ->
      Fmt.pf ppf "CRASH %a in %s@%d [%s]" Mem.pp_fault c.fault c.crash_func c.crash_pc
        (String.concat " > " c.backtrace)

(* Deadline polling granularity: one monotonic-clock read every this many
   steps.  Power of two so the gate is a single [land]. *)
let deadline_stride = Compile.deadline_stride

(** [run ?hooks ?max_steps ?deadline ?inject program ~input] executes
    [program] on the input file [input].  Termination is via [Exit], falling
    off a [Halt], a memory fault, or the step budget (reported as a
    {!Mem.Hang} crash, the paper's CWE-835 infinite-loop manifestation).

    [deadline] is polled every {!deadline_stride} steps;
    {!Octo_util.Deadline.Deadline_exceeded} propagates to the caller
    (cooperative cancellation — a wall-clock budget is not a crash of the
    program under test).  [inject] may fire a {!Faultinject.Vm_syscall}
    fault at any executed syscall; the resulting
    {!Octo_util.Faultinject.Injected} also propagates.

    The program is compiled to threaded code on first use and the
    compilation is reused across runs ({!Compile.get}); callers that
    execute the same program many times back-to-back (fuzzers) can hoist
    the lookup with {!Compile.get} + {!Compile.run} themselves. *)
let run ?hooks ?max_steps ?deadline ?inject (prog : program) ~(input : string) : result =
  Compile.run ?hooks ?max_steps ?deadline ?inject (Compile.get prog) ~input

(** [run_reference] is the original decode-per-step interpreter, byte-line
    compatible with {!run}: same outcomes, crash sites, step counts, hook
    streams, outputs, fault-injection and deadline behavior.  It exists as
    the executable specification for differential testing of the compiled
    engine; production callers use {!run}. *)
let run_reference ?(hooks = no_hooks) ?(max_steps = default_max_steps)
    ?(deadline = Deadline.none) ?(inject = Faultinject.none) (prog : program)
    ~(input : string) : result =
  let mem = Mem.create () in
  Mem.load_rodata mem prog.data;
  let file = Vfile.create input in
  let outputs = ref [] in
  let next_frame = ref 0 in
  let new_frame func ret_dst args =
    let regs = Array.make 32 0 in
    List.iteri (fun i v -> if i < 32 then regs.(i) <- mask32 v) args;
    let frame_id = !next_frame in
    incr next_frame;
    { func; pc = 0; regs; ret_dst; frame_id }
  in
  let entry = func_exn prog prog.entry in
  let stack = ref [ new_frame entry None [] ] in
  let steps = ref 0 in
  let current () = match !stack with f :: _ -> f | [] -> assert false in
  let value fr = function
    | Reg r -> fr.regs.(r)
    | Imm v -> mask32 v
    | Sym s -> invalid_arg ("Interp: unresolved symbol " ^ s)
  in
  let operand_reads fr = function
    | Reg r -> [ OReg (fr.frame_id, r) ]
    | Imm _ | Sym _ -> []
  in
  let backtrace () = List.rev_map (fun f -> f.func.fname) !stack in
  let do_call fname args dst =
    let fr = current () in
    let callee = func_exn prog fname in
    let argv = List.map (value fr) args in
    let nf = new_frame callee dst argv in
    (* one dataflow event per argument: caller operand -> callee register *)
    List.iteri
      (fun i arg ->
        hooks.on_access { reads = operand_reads fr arg; writes = [ OReg (nf.frame_id, i) ] })
      args;
    hooks.on_edge fr.func.fname fr.pc 0;
    fr.pc <- fr.pc + 1;
    stack := nf :: !stack;
    hooks.on_call ~fname ~frame_id:nf.frame_id ~args:argv
  in
  let step () =
    let fr = current () in
    if fr.pc < 0 || fr.pc >= Array.length fr.func.code then
      (* Falling off the end of a function behaves as [Ret 0]. *)
      begin
        hooks.on_ret fr.func.fname;
        match !stack with
        | [ _ ] -> raise (Exit_program 0)
        | _ :: (caller :: _ as rest) ->
            (match fr.ret_dst with
            | Some d ->
                hooks.on_access { reads = []; writes = [ OReg (caller.frame_id, d) ] };
                caller.regs.(d) <- 0
            | None -> ());
            stack := rest
        | [] -> assert false
      end
    else begin
      let ins = fr.func.code.(fr.pc) in
      hooks.on_step fr.func.fname fr.pc;
      match ins with
      | Mov (d, a) ->
          hooks.on_access { reads = operand_reads fr a; writes = [ OReg (fr.frame_id, d) ] };
          fr.regs.(d) <- value fr a;
          fr.pc <- fr.pc + 1
      | Bin (op, d, x, y) ->
          hooks.on_access
            { reads = operand_reads fr x @ operand_reads fr y; writes = [ OReg (fr.frame_id, d) ] };
          fr.regs.(d) <-
            (try eval_binop op (value fr x) (value fr y)
             with Division_by_zero -> raise (Mem.Fault Mem.Div_by_zero));
          fr.pc <- fr.pc + 1
      | Load8 (d, b, o) ->
          let addr = mask32 (value fr b + value fr o) in
          let v = Mem.read8 mem addr in
          hooks.on_access
            {
              reads = (OMem addr :: operand_reads fr b) @ operand_reads fr o;
              writes = [ OReg (fr.frame_id, d) ];
            };
          fr.regs.(d) <- v;
          fr.pc <- fr.pc + 1
      | LoadW (d, b, o) ->
          let addr = mask32 (value fr b + value fr o) in
          let v = Mem.read_word mem addr in
          hooks.on_access
            {
              reads =
                (List.init 4 (fun i -> OMem (addr + i)) @ operand_reads fr b)
                @ operand_reads fr o;
              writes = [ OReg (fr.frame_id, d) ];
            };
          fr.regs.(d) <- mask32 v;
          fr.pc <- fr.pc + 1
      | Store8 (b, o, v) ->
          let addr = mask32 (value fr b + value fr o) in
          hooks.on_access
            {
              reads = (operand_reads fr v @ operand_reads fr b) @ operand_reads fr o;
              writes = [ OMem addr ];
            };
          Mem.write8 mem addr (value fr v);
          fr.pc <- fr.pc + 1
      | StoreW (b, o, v) ->
          let addr = mask32 (value fr b + value fr o) in
          hooks.on_access
            {
              reads = (operand_reads fr v @ operand_reads fr b) @ operand_reads fr o;
              writes = List.init 4 (fun i -> OMem (addr + i));
            };
          Mem.write_word mem addr (value fr v);
          fr.pc <- fr.pc + 1
      | Jmp t ->
          hooks.on_edge fr.func.fname fr.pc t;
          fr.pc <- t
      | Jif (rel, a, b, t) ->
          hooks.on_access { reads = operand_reads fr a @ operand_reads fr b; writes = [] };
          let taken = eval_relop rel (value fr a) (value fr b) in
          let dst = if taken then t else fr.pc + 1 in
          hooks.on_edge fr.func.fname fr.pc dst;
          fr.pc <- dst
      | Call (fname, args, dst) -> do_call fname args dst
      | Icall (f, args, dst) ->
          let idx = value fr f in
          if idx < 0 || idx >= Array.length prog.ftable then
            raise (Mem.Fault (Mem.Bad_icall idx));
          do_call prog.ftable.(idx) args dst
      | Ret v -> (
          hooks.on_ret fr.func.fname;
          let rv = value fr v in
          match !stack with
          | [ _ ] -> raise (Exit_program rv)
          | _ :: (caller :: _ as rest) ->
              (match fr.ret_dst with
              | Some d ->
                  hooks.on_access
                    { reads = operand_reads fr v; writes = [ OReg (caller.frame_id, d) ] };
                  caller.regs.(d) <- rv
              | None -> ());
              stack := rest
          | [] -> assert false)
      | Halt -> raise (Exit_program 0)
      | Sys sc -> (
          Faultinject.maybe_raise inject Faultinject.Vm_syscall ~what:"vm syscall";
          let next () = fr.pc <- fr.pc + 1 in
          match sc with
          | Open d ->
              fr.regs.(d) <- Vfile.open_ file;
              hooks.on_access { reads = []; writes = [ OReg (fr.frame_id, d) ] };
              next ()
          | Read (d, fd, buf, len) ->
              let fdv = value fr fd and bufv = value fr buf and lenv = value fr len in
              let off, s = Vfile.read file fdv lenv in
              String.iteri (fun i c -> Mem.write8 mem (bufv + i) (Char.code c)) s;
              if String.length s > 0 then
                hooks.on_input_bytes ~addr:bufv ~file_off:off ~len:(String.length s);
              fr.regs.(d) <- String.length s;
              hooks.on_access { reads = []; writes = [ OReg (fr.frame_id, d) ] };
              next ()
          | Seek (fd, p) ->
              Vfile.seek file (value fr fd) (value fr p);
              hooks.on_seek ~fd:(value fr fd) ~pos:(value fr p);
              next ()
          | Tell (d, fd) ->
              fr.regs.(d) <- Vfile.tell file (value fr fd);
              hooks.on_access { reads = []; writes = [ OReg (fr.frame_id, d) ] };
              next ()
          | Fsize (d, _fd) ->
              fr.regs.(d) <- Vfile.size file;
              hooks.on_access { reads = []; writes = [ OReg (fr.frame_id, d) ] };
              next ()
          | Mmap (d, _fd) ->
              let base = Mem.map_bytes mem input in
              if String.length input > 0 then
                hooks.on_input_bytes ~addr:base ~file_off:0 ~len:(String.length input);
              fr.regs.(d) <- base;
              hooks.on_access { reads = []; writes = [ OReg (fr.frame_id, d) ] };
              next ()
          | Alloc (d, sz) ->
              fr.regs.(d) <- Mem.alloc mem (value fr sz);
              hooks.on_access { reads = []; writes = [ OReg (fr.frame_id, d) ] };
              next ()
          | Exit c -> raise (Exit_program (value fr c))
          | Emit v ->
              hooks.on_access { reads = operand_reads fr v; writes = [] };
              outputs := value fr v :: !outputs;
              next ())
    end
  in
  let outcome =
    try
      let rec loop () =
        if !steps >= max_steps then raise (Mem.Fault Mem.Hang);
        if !steps land (deadline_stride - 1) = 0 then
          Deadline.check deadline ~what:"concrete execution";
        incr steps;
        step ();
        loop ()
      in
      loop ()
    with
    | Exit_program c -> Exited c
    | Mem.Fault fault ->
        let fr = current () in
        Crashed
          { fault; crash_func = fr.func.fname; crash_pc = fr.pc; backtrace = backtrace () }
    | Vfile.Bad_fd fd ->
        let fr = current () in
        Crashed
          {
            fault = Mem.Oob_read fd;
            crash_func = fr.func.fname;
            crash_pc = fr.pc;
            backtrace = backtrace ();
          }
  in
  Octo_util.Metrics.add Octo_util.Metrics.Vm_steps !steps;
  { outcome; outputs = List.rev !outputs; steps = !steps }

(** [crashes result] is true when the run ended in any fault. *)
let crashes r = match r.outcome with Crashed _ -> true | Exited _ -> false

(** [crash_in result ~funcs] is true when the run crashed while executing one
    of [funcs] — the P4 check that the reproduced crash is the propagated
    vulnerability and not an unrelated fault. *)
let crash_in r ~funcs =
  match r.outcome with
  | Crashed c -> List.mem c.crash_func funcs
  | Exited _ -> false
