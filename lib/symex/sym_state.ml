(** Symbolic execution state and single-stepping for MiniVM.

    This module is the angr replacement (paper §IV-B): it executes a program
    whose input file is entirely symbolic — byte at offset [i] is the solver
    variable [Expr.Byte i] — accumulating path constraints in a
    {!Octo_solver.Solve.store}.

    The stepper is policy-free: it runs until it either finishes, faults,
    reaches a branch whose condition is not decided by the current
    constraints ([Branch_choice], the caller picks a direction), or enters
    the target function [ep] ([Entered_ep], the caller places bunch
    constraints per P3).  The naive (forking) and directed executors are
    built on top in {!Naive} and {!Directed}. *)

open Octo_vm
open Octo_vm.Isa
module Expr = Octo_solver.Expr
module Solve = Octo_solver.Solve

type sframe = {
  func : func;
  mutable pc : int;
  regs : Expr.t array;
  ret_dst : reg option;
  frame_id : int;
}

(* Symbolic memory: concrete byte addresses mapped to byte-valued
   expressions, backed by region bookkeeping for default contents. *)
type region_kind = Rodata of string | Heap of int | FileMap
(* Rodata carries its bytes; Heap carries its size (zero-filled); FileMap
   maps address base+i to input byte i. *)

type sregion = { base : int; size : int; kind : region_kind }

type t = {
  prog : program;
  ep : string;
  store : Solve.store;
  mem : (int, Expr.t) Hashtbl.t;
  mutable regions : sregion list;
  mutable brk : int;
  mutable stack : sframe list;
  mutable next_frame : int;
  mutable fds : (int * int) list;  (* fd -> position *)
  mutable next_fd : int;
  mutable steps : int;
  mutable ep_count : int;
  mutable max_read_off : int;       (* high-water mark of symbolic file reads *)
  mutable loop_visits : (int * int, int) Hashtbl.t;  (* (frame_id, pc) -> count *)
  sym_file_size : int;
}

let default_sym_file_size = 4096

let create ?(sym_file_size = default_sym_file_size) (prog : program) ~(ep : string) : t =
  let st =
    {
      prog;
      ep;
      store = Solve.create ();
      mem = Hashtbl.create 256;
      regions = [];
      brk = Mem.heap_base;
      stack = [];
      next_frame = 0;
      fds = [];
      next_fd = 3;
      steps = 0;
      ep_count = 0;
      max_read_off = 0;
      loop_visits = Hashtbl.create 64;
      sym_file_size;
    }
  in
  List.iter
    (fun (_sym, base, bytes) ->
      if String.length bytes > 0 then
        st.regions <- { base; size = String.length bytes; kind = Rodata bytes } :: st.regions)
    prog.data;
  let entry = func_exn prog prog.entry in
  let regs = Array.make 32 (Expr.const 0) in
  st.stack <- [ { func = entry; pc = 0; regs; ret_dst = None; frame_id = 0 } ];
  st.next_frame <- 1;
  st

(** [clone t] deep-copies the mutable execution state; constraint stores and
    expression trees are persistent and shared.  Used by the naive forking
    executor — each clone is one "state" in angr terms, and the per-state
    footprint is what blows up in Table IV's MemError rows. *)
let clone t =
  {
    t with
    store = Solve.copy t.store;
    mem = Hashtbl.copy t.mem;
    stack =
      List.map
        (fun f -> { f with regs = Array.copy f.regs })
        t.stack;
    loop_visits = Hashtbl.copy t.loop_visits;
  }

exception Sym_fault of string

let current t = match t.stack with f :: _ -> f | [] -> raise (Sym_fault "empty stack")

let value fr = function
  | Reg r -> fr.regs.(r)
  | Imm v -> Expr.const v
  | Sym s -> raise (Sym_fault ("unresolved symbol " ^ s))

let find_region t addr = List.find_opt (fun r -> addr >= r.base && addr < r.base + r.size) t.regions

(* Default memory contents by region, before any symbolic store. *)
let default_byte t addr =
  match find_region t addr with
  | Some { kind = Rodata s; base; _ } -> Some (Expr.const (Char.code s.[addr - base]))
  | Some { kind = Heap _; _ } -> Some (Expr.const 0)
  | Some { kind = FileMap; base; _ } ->
      Some (Expr.byte (addr - base))
  | None -> None

let read8 t addr =
  match Hashtbl.find_opt t.mem addr with
  | Some e -> e
  | None -> (
      match default_byte t addr with
      | Some e -> e
      | None -> raise (Sym_fault (Printf.sprintf "symbolic OOB read at 0x%x" addr)))

let write8 t addr e =
  match find_region t addr with
  | Some { kind = Rodata _; _ } -> raise (Sym_fault (Printf.sprintf "write to rodata 0x%x" addr))
  | Some _ -> Hashtbl.replace t.mem addr e
  | None -> raise (Sym_fault (Printf.sprintf "symbolic OOB write at 0x%x" addr))

(* Concretization: addresses and a few other operands must be concrete.  If
   the constraints pin the expression to one value we use it; otherwise we
   pick the interval low bound and pin it with an extra constraint — the
   standard concretization strategy of binary symex engines. *)
let concretize t (e : Expr.t) : int =
  match Expr.to_const_opt e with
  | Some v -> v
  | None ->
      let lo, hi = Solve.ival t.store e in
      if lo = hi then lo
      else begin
        (match Solve.add t.store { rel = Eq; lhs = e; rhs = Expr.const lo } with
        | Solve.Ok -> ()
        | Solve.Unsat -> raise (Sym_fault "concretization made constraints unsat"));
        lo
      end

(* A byte load at a symbolic address: when the whole feasible address range
   sits inside one read-only region with no symbolic overrides, the load
   becomes a table-select expression instead of concretizing the address —
   this is what lets directed execution reason through indirect-dispatch
   handler tables (e.g. the devirtualized Idx-15 target). *)
let symbolic_table_load t (addr_e : Expr.t) : Expr.t option =
  let lo, hi = Solve.ival t.store addr_e in
  if hi - lo > 64 then None
  else
    match find_region t lo with
    | Some { kind = Rodata s; base; size } when hi < base + size ->
        let clean = ref true in
        for a = lo to hi do
          if Hashtbl.mem t.mem a then clean := false
        done;
        if not !clean then None
        else begin
          let table = Array.init (hi - lo + 1) (fun i -> Char.code s.[lo - base + i]) in
          Some (Expr.sel table (Expr.bin Sub addr_e (Expr.const lo)))
        end
    | _ -> None

let fd_pos t fd = match List.assoc_opt fd t.fds with Some p -> p | None -> raise (Sym_fault "bad fd")

let set_fd_pos t fd p = t.fds <- (fd, p) :: List.remove_assoc fd t.fds

(** Events returned by {!step}; the executor driving the state decides how
    to proceed. *)
type event =
  | Running
  | Branch_choice of branch
  | Entered_ep of { count : int; args : Expr.t list; file_pos : int }
  | Finished of int
  | Faulted of string

and branch = {
  br_cond : Expr.cond;    (** condition of the taken direction *)
  br_taken_pc : int;
  br_fall_pc : int;
  br_func : string;
  br_pc : int;
  br_is_loop : bool;      (** heuristic: taken target jumps backward *)
}

(** [take_branch t br ~taken] commits a direction at a symbolic branch,
    adding the corresponding constraint.  Returns [false] if that direction
    is unsatisfiable — in which case the store is left exactly as it was
    (the probe is retracted via the solver trail), so the caller can try
    the other direction on a clean store. *)
let take_branch t (br : branch) ~taken =
  let fr = current t in
  let c = if taken then br.br_cond else Expr.negate br.br_cond in
  match Solve.add_checked t.store c with
  | Solve.Unsat -> false
  | Solve.Ok ->
      fr.pc <- (if taken then br.br_taken_pc else br.br_fall_pc);
      true

let new_frame t func ret_dst (args : Expr.t list) =
  let regs = Array.make 32 (Expr.const 0) in
  List.iteri (fun i v -> if i < 32 then regs.(i) <- v) args;
  let frame_id = t.next_frame in
  t.next_frame <- t.next_frame + 1;
  { func; pc = 0; regs; ret_dst; frame_id }

let do_call t fname args dst : event =
  let fr = current t in
  let callee = func_exn t.prog fname in
  let argv = List.map (value fr) args in
  fr.pc <- fr.pc + 1;
  t.stack <- new_frame t callee dst argv :: t.stack;
  if fname = t.ep then begin
    t.ep_count <- t.ep_count + 1;
    (* File position indicator: position of the most recently used fd; a
       program with no open fd (pure mmap) anchors at 0. *)
    let pos = match t.fds with (_, p) :: _ -> p | [] -> 0 in
    Entered_ep { count = t.ep_count; args = argv; file_pos = pos }
  end
  else Running

(** [step t] executes one instruction.  All events except [Branch_choice]
    leave the state advanced; a [Branch_choice] leaves the pc at the branch
    until the caller commits a direction with {!take_branch}. *)
let step (t : t) : event =
  t.steps <- t.steps + 1;
  let fr = current t in
  if fr.pc < 0 || fr.pc >= Array.length fr.func.code then begin
    (* Implicit return 0. *)
    match t.stack with
    | [ _ ] -> Finished 0
    | _ :: (caller :: _ as rest) ->
        (match fr.ret_dst with Some d -> caller.regs.(d) <- Expr.const 0 | None -> ());
        t.stack <- rest;
        Running
    | [] -> assert false
  end
  else
    match fr.func.code.(fr.pc) with
    | Mov (d, a) ->
        fr.regs.(d) <- value fr a;
        fr.pc <- fr.pc + 1;
        Running
    | Bin (op, d, x, y) ->
        fr.regs.(d) <- Expr.bin op (value fr x) (value fr y);
        fr.pc <- fr.pc + 1;
        Running
    | Load8 (d, b, o) ->
        let addr_e = Expr.bin Add (value fr b) (value fr o) in
        (match Expr.to_const_opt addr_e with
        | Some addr -> fr.regs.(d) <- read8 t addr
        | None -> (
            match symbolic_table_load t addr_e with
            | Some e -> fr.regs.(d) <- e
            | None -> fr.regs.(d) <- read8 t (concretize t addr_e)));
        fr.pc <- fr.pc + 1;
        Running
    | LoadW (d, b, o) ->
        let addr = concretize t (Expr.bin Add (value fr b) (value fr o)) in
        let byte i sh acc = Expr.bin Or acc (Expr.bin Shl (read8 t (addr + i)) (Expr.const sh)) in
        fr.regs.(d) <- byte 3 24 (byte 2 16 (byte 1 8 (read8 t addr)));
        fr.pc <- fr.pc + 1;
        Running
    | Store8 (b, o, v) ->
        let addr = concretize t (Expr.bin Add (value fr b) (value fr o)) in
        write8 t addr (Expr.bin And (value fr v) (Expr.const 0xff));
        fr.pc <- fr.pc + 1;
        Running
    | StoreW (b, o, v) ->
        let addr = concretize t (Expr.bin Add (value fr b) (value fr o)) in
        let e = value fr v in
        for i = 0 to 3 do
          write8 t (addr + i)
            (Expr.bin And (Expr.bin Shr e (Expr.const (8 * i))) (Expr.const 0xff))
        done;
        fr.pc <- fr.pc + 1;
        Running
    | Jmp tgt ->
        fr.pc <- tgt;
        Running
    | Jif (rel, a, b, tgt) -> (
        let cond : Expr.cond = { rel; lhs = value fr a; rhs = value fr b } in
        match Solve.entails t.store cond with
        | Solve.True ->
            fr.pc <- tgt;
            Running
        | Solve.False ->
            fr.pc <- fr.pc + 1;
            Running
        | Solve.Maybe ->
            Branch_choice
              {
                br_cond = cond;
                br_taken_pc = tgt;
                br_fall_pc = fr.pc + 1;
                br_func = fr.func.fname;
                br_pc = fr.pc;
                br_is_loop = tgt <= fr.pc;
              })
    | Call (fname, args, dst) -> do_call t fname args dst
    | Icall (f, args, dst) ->
        let idx = concretize t (value fr f) in
        if idx < 0 || idx >= Array.length t.prog.ftable then
          Faulted (Printf.sprintf "icall to invalid slot %d" idx)
        else do_call t t.prog.ftable.(idx) args dst
    | Ret v -> (
        let rv = value fr v in
        match t.stack with
        | [ _ ] -> Finished (concretize t rv)
        | _ :: (caller :: _ as rest) ->
            (match fr.ret_dst with Some d -> caller.regs.(d) <- rv | None -> ());
            t.stack <- rest;
            Running
        | [] -> assert false)
    | Halt -> Finished 0
    | Sys sc -> (
        let next () = fr.pc <- fr.pc + 1 in
        match sc with
        | Open d ->
            let fd = t.next_fd in
            t.next_fd <- t.next_fd + 1;
            t.fds <- (fd, 0) :: t.fds;
            fr.regs.(d) <- Expr.const fd;
            next ();
            Running
        | Read (d, fd, buf, len) ->
            let fdv = concretize t (value fr fd) in
            let bufv = concretize t (value fr buf) in
            let lenv = concretize t (value fr len) in
            let pos = fd_pos t fdv in
            let avail = max 0 (t.sym_file_size - pos) in
            let n = min lenv avail in
            for i = 0 to n - 1 do
              write8 t (bufv + i) (Expr.byte (pos + i))
            done;
            set_fd_pos t fdv (pos + n);
            t.max_read_off <- max t.max_read_off (pos + n);
            fr.regs.(d) <- Expr.const n;
            next ();
            Running
        | Seek (fd, p) ->
            let fdv = concretize t (value fr fd) in
            let pv = concretize t (value fr p) in
            set_fd_pos t fdv pv;
            next ();
            Running
        | Tell (d, fd) ->
            let fdv = concretize t (value fr fd) in
            fr.regs.(d) <- Expr.const (fd_pos t fdv);
            next ();
            Running
        | Fsize (d, _) ->
            fr.regs.(d) <- Expr.const t.sym_file_size;
            next ();
            Running
        | Mmap (d, _) ->
            let base = t.brk in
            t.brk <- t.brk + t.sym_file_size + 16;
            t.regions <- { base; size = t.sym_file_size; kind = FileMap } :: t.regions;
            t.max_read_off <- max t.max_read_off t.sym_file_size;
            fr.regs.(d) <- Expr.const base;
            next ();
            Running
        | Alloc (d, sz) ->
            let szv = concretize t (value fr sz) in
            let base = t.brk in
            t.brk <- t.brk + max szv 0 + 16;
            t.regions <- { base; size = max szv 0; kind = Heap szv } :: t.regions;
            fr.regs.(d) <- Expr.const base;
            next ();
            Running
        | Exit c ->
            Finished (concretize t (value fr c))
        | Emit _ ->
            next ();
            Running)

(** [backtrace t] lists function names, outermost first. *)
let backtrace t = List.rev_map (fun f -> f.func.fname) t.stack

(** [current_loc t] is the (function, pc) about to execute. *)
let current_loc t =
  let fr = current t in
  (fr.func.fname, fr.pc)
