(** Directed symbolic execution (paper §III-B, P2).

    One single state is driven from the program entry toward [ep].  At every
    branch the constraints cannot decide, the executor consults the
    interprocedural distance map of {!Octo_cfg.Cfg} — the product of backward
    path finding — and commits to the direction that gets closer to [ep],
    falling back to the other direction when the preferred one is
    unsatisfiable.

    Loop states are handled as in the paper: a branch recognised as a loop
    head is given an iteration budget, initially 0, and re-entered on retry
    with budgets increasing up to θ (default 120).  A run that dies after
    exiting a loop is classified {e loop-dead} and retried with one more
    iteration of the most recently exited loop; a run that dies with no loop
    involvement is {e program-dead}, meaning ℓ is unreachable and the
    vulnerability cannot be triggered (verification case iii). *)

open Octo_vm
module Expr = Octo_solver.Expr
module Solve = Octo_solver.Solve
module Cfg = Octo_cfg.Cfg
module Deadline = Octo_util.Deadline

type ep_action =
  | Continue  (** keep executing (more bunches to place) *)
  | Stop      (** final bunch placed: terminate and solve *)
  | Conflict  (** bunch or argument constraints were unsatisfiable *)

type config = {
  theta : int;          (** max loop iterations to try (paper: 120) *)
  max_runs : int;       (** bound on loop-retry attempts *)
  max_steps : int;      (** per-run symbolic step budget *)
}

let default_config = { theta = 120; max_runs = 256; max_steps = 60_000 }

type failure =
  | Program_dead        (** all directions dead with no loop to blame *)
  | Ep_not_in_cfg       (** backward path finding found no path to ep *)
  | Constraint_conflict of int  (** ep-entry constraints unsat (entry #) *)
  | Budget_exhausted of string

type outcome =
  | Reached of Sym_state.t  (** stopped with all bunch constraints placed *)
  | Failed of failure

type stats = {
  mutable runs : int;
  mutable total_steps : int;
  mutable branches_decided : int;
  mutable loop_retries : int;
  mutable states_pruned : int;
      (** branch directions refuted as unsat by [take_branch] *)
}

(** Optional path-decision observer, for the provenance layer: the
    executor itself stays agnostic of how the evidence is stored (the
    core library sits above this one in the dependency order).  All
    callbacks fire on the slow paths only — a probe-free run pays one
    pattern match per event site. *)
type probe = {
  on_forced : func:string -> pc:int -> preferred_taken:bool -> unit;
      (** the distance-preferred direction was unsat; fell back *)
  on_pruned : func:string -> pc:int -> unit;
      (** both directions unsat: the state died at this branch *)
  on_loop_retry : func:string -> pc:int -> granted:int -> theta:int -> unit;
      (** a loop-dead run granted this loop one more iteration *)
}

let fresh_stats () =
  { runs = 0; total_steps = 0; branches_decided = 0; loop_retries = 0; states_pruned = 0 }

let pp_failure ppf = function
  | Program_dead -> Fmt.pf ppf "program-dead (ℓ unreachable)"
  | Ep_not_in_cfg -> Fmt.pf ppf "ep unreachable in CFG"
  | Constraint_conflict k -> Fmt.pf ppf "constraint conflict at ep entry #%d"  k
  | Budget_exhausted what -> Fmt.pf ppf "budget exhausted (%s)" what

(* Outcome of one attempt with fixed loop budgets. *)
type attempt =
  | A_reached of Sym_state.t
  | A_dead of (string * int) option   (* most recently exited loop, if any *)
  | A_conflict of int
  | A_steps

(* Static loop-head detection: a pc is a loop head when it is the target of
   a backward edge within its function.  This catches the common compiled
   shape where the conditional exit of a loop is a *forward* branch at the
   head while the latch is an unconditional backward jump. *)
let loop_heads (prog : Isa.program) : (string, (int, unit) Hashtbl.t) Hashtbl.t =
  let per_fn = Hashtbl.create 16 in
  Hashtbl.iter
    (fun name (f : Isa.func) ->
      let heads = Hashtbl.create 8 in
      Array.iteri
        (fun pc ins ->
          match ins with
          | Isa.Jmp t when t <= pc -> Hashtbl.replace heads t ()
          | Isa.Jif (_, _, _, t) when t <= pc -> Hashtbl.replace heads t ()
          | _ -> ())
        f.code;
      Hashtbl.replace per_fn name heads)
    prog.funcs;
  per_fn

let run_once ~(config : config) ~(deadline : Deadline.t) ~(distance : string -> int -> int)
    ~(iters : (string * int, int) Hashtbl.t)
    ~(heads : (string, (int, unit) Hashtbl.t) Hashtbl.t)
    ~(on_ep : Sym_state.t -> count:int -> args:Expr.t list -> file_pos:int -> ep_action)
    ~(probe : probe option) ~(stats : stats) (prog : Isa.program) ~(ep : string)
    ~sym_file_size : attempt =
  let st = Sym_state.create ~sym_file_size prog ~ep in
  let last_loop_exit = ref None in
  let iter_budget key = match Hashtbl.find_opt iters key with Some n -> n | None -> 0 in
  let rec go () =
    if st.steps land 1023 = 0 then
      Deadline.check deadline ~what:"directed symbolic execution";
    if st.steps > config.max_steps then A_steps
    else
      match Sym_state.step st with
      | Sym_state.Running -> go ()
      | Sym_state.Finished _ ->
          (* The program terminated before the final bunch was placed. *)
          A_dead !last_loop_exit
      | Sym_state.Faulted _ -> A_dead !last_loop_exit
      | Sym_state.Entered_ep { count; args; file_pos } -> (
          match on_ep st ~count ~args ~file_pos with
          | Continue -> go ()
          | Stop -> A_reached st
          | Conflict -> A_conflict count)
      | Sym_state.Branch_choice br -> (
          stats.branches_decided <- stats.branches_decided + 1;
          let fr_id = (Sym_state.current st).frame_id in
          let visit_key = (fr_id, br.br_pc) in
          let visits =
            let v = (match Hashtbl.find_opt st.loop_visits visit_key with Some n -> n | None -> 0) + 1 in
            Hashtbl.replace st.loop_visits visit_key v;
            v
          in
          let loop_key = (br.br_func, br.br_pc) in
          (* A branch is treated as a loop head when static analysis marks
             its pc as a back-edge target, when its own taken edge goes
             backward, or once it repeats within one frame. *)
          let static_head =
            match Hashtbl.find_opt heads br.br_func with
            | Some hs -> Hashtbl.mem hs br.br_pc
            | None -> false
          in
          let is_loop = br.br_is_loop || static_head || visits > 1 in
          let continue_dir = if br.br_is_loop then true else false in
          let preferred, record_exit =
            if is_loop then
              if visits <= iter_budget loop_key then (continue_dir, false)
              else ((not continue_dir), true)
            else begin
              (* Distance policy: smaller distance to the next ep entry wins. *)
              let dt = distance br.br_func br.br_taken_pc in
              let df = distance br.br_func br.br_fall_pc in
              ((dt <= df), false)
            end
          in
          if Sym_state.take_branch st br ~taken:preferred then begin
            if record_exit then last_loop_exit := Some loop_key;
            go ()
          end
          else begin
            stats.states_pruned <- stats.states_pruned + 1;
            if Sym_state.take_branch st br ~taken:(not preferred) then begin
              (match probe with
              | Some p ->
                  p.on_forced ~func:br.br_func ~pc:br.br_pc ~preferred_taken:preferred
              | None -> ());
              (* Fallback direction; if we were forced OUT of a loop that we
                 wanted to continue, that is also an exit event. *)
              if is_loop && not preferred = not continue_dir then
                last_loop_exit := Some loop_key;
              go ()
            end
            else begin
              stats.states_pruned <- stats.states_pruned + 1;
              (match probe with
              | Some p -> p.on_pruned ~func:br.br_func ~pc:br.br_pc
              | None -> ());
              A_dead !last_loop_exit
            end
          end)
  in
  let r = go () in
  stats.runs <- stats.runs + 1;
  stats.total_steps <- stats.total_steps + st.steps;
  r

(** [run ?config ?probe ?deadline ?spec_jobs prog ~ep ~cfg ~on_ep] drives
    directed symbolic execution with loop-state retry.  [on_ep] is invoked
    at every entry of [ep] — the combining phase P3 lives in that callback
    (see {!Octopocs.Phases}).  [probe] observes path decisions (forced
    fallbacks, prunes, loop-retry grants) for the provenance layer.  The
    [deadline] is polled every 1024 symbolic steps;
    {!Octo_util.Deadline.Deadline_exceeded} propagates to the caller.

    [spec_jobs > 1] enables speculative loop-retry on the shared pool
    ({!Octo_util.Pool.shared}): the retry chain is deterministic given the
    loop-budget map, and a loop-dead run overwhelmingly dies at the same
    loop again, so while attempt [n] executes, attempts [n+1 .. n+k] are
    run ahead on idle domains under the predicted budget maps.  Each
    speculative attempt gets a private state, private stats and a private
    metrics cell; a result is merged only when the serial chain reaches it
    with exactly the predicted budget map, and a mispredicted result is
    discarded wholesale — so the outcome, stats and deterministic metrics
    counters are identical to a serial run by construction.  Requires
    [probe = None] and an [on_ep] callback safe to run concurrently
    against distinct states (P3's bunch placement is, once provenance is
    off — the caller gates this). *)
let run ?(config = default_config) ?(sym_file_size = Sym_state.default_sym_file_size)
    ?probe ?(deadline = Deadline.none) ?(spec_jobs = 1) (prog : Isa.program)
    ~(ep : string) ~(cfg : Cfg.t)
    ~(on_ep : Sym_state.t -> count:int -> args:Expr.t list -> file_pos:int -> ep_action) :
    outcome * stats =
  let stats = fresh_stats () in
  if not (Cfg.ep_reachable cfg) then (Failed Ep_not_in_cfg, stats)
  else begin
    let iters : (string * int, int) Hashtbl.t = Hashtbl.create 16 in
    let heads = loop_heads prog in
    (* One memoized distance lookup shared by every loop-retry attempt:
       retries re-walk the same prefix and re-query the same (func, pc)
       pairs at each branch. *)
    let distance = Cfg.distance_fn cfg in
    let iter_budget key = match Hashtbl.find_opt iters key with Some n -> n | None -> 0 in
    let speculate = spec_jobs > 1 && probe = None in
    let pool = if speculate then Some (Octo_util.Pool.shared ()) else None in
    (* Speculative attempt for [loop_key] at [budget]: a private copy of
       the budget map, private stats, and a private (unregistered) metrics
       cell so a discarded attempt leaves no trace anywhere. *)
    let spawn pool loop_key budget =
      let m = Hashtbl.copy iters in
      Hashtbl.replace m loop_key budget;
      let pstats = fresh_stats () in
      ( budget,
        Octo_util.Pool.future pool (fun () ->
            Octo_util.Metrics.with_private (fun () ->
                run_once ~config ~deadline ~distance ~iters:m ~heads ~on_ep ~probe:None
                  ~stats:pstats prog ~ep ~sym_file_size)
            |> fun (r, priv) -> (r, pstats, priv)) )
    in
    (* Predictions for deaths at [loop_key] with budgets cur+2 .. (the
       cur+1 attempt runs locally, concurrently with them), capped at θ —
       serial never runs a budget beyond it. *)
    let spawn_chain pool loop_key ~cur =
      let rec mk j acc =
        if j >= spec_jobs then List.rev acc
        else
          let b = cur + 1 + j in
          if b > config.theta then List.rev acc else mk (j + 1) (spawn pool loop_key b :: acc)
      in
      match mk 1 [] with [] -> None | futs -> Some (loop_key, futs)
    in
    let merge (pstats : stats) priv =
      stats.runs <- stats.runs + pstats.runs;
      stats.total_steps <- stats.total_steps + pstats.total_steps;
      stats.branches_decided <- stats.branches_decided + pstats.branches_decided;
      stats.states_pruned <- stats.states_pruned + pstats.states_pruned;
      Octo_util.Metrics.absorb priv
    in
    (* [pending]: the speculation chain — futures for consecutive budgets
       of one loop, each valid exactly when the canonical budget map
       reaches its predicted state.  A consumed future is the next serial
       attempt verbatim; a mispredicted chain is dropped unawaited (the
       tasks finish in their private cells and are never merged). *)
    let rec attempt n pending =
      if n >= config.max_runs then Failed (Budget_exhausted "loop retries")
      else begin
        let consumed, att =
          match (pool, pending) with
          | Some pool, Some (lk, (b, fut) :: _) when iter_budget lk = b -> (
              match Octo_util.Pool.await pool fut with
              | Ok (r, pstats, priv) ->
                  merge pstats priv;
                  (true, r)
              | Error (e, bt) -> Printexc.raise_with_backtrace e bt)
          | _ ->
              ( false,
                run_once ~config ~deadline ~distance ~iters ~heads ~on_ep ~probe ~stats prog
                  ~ep ~sym_file_size )
        in
        let pending =
          if not consumed then pending
          else
            match pending with
            | Some (lk, _ :: (_ :: _ as tl)) -> Some (lk, tl)
            | _ -> None
        in
        match att with
        | A_reached st -> Reached st
        | A_conflict k -> Failed (Constraint_conflict k)
        | A_steps -> Failed (Budget_exhausted "symbolic steps")
        | A_dead None -> Failed Program_dead
        | A_dead (Some loop_key) ->
            (* Loop-dead: grant the most recently exited loop one more
               iteration, up to θ. *)
            let cur = iter_budget loop_key in
            if cur >= config.theta then Failed Program_dead
            else begin
              Hashtbl.replace iters loop_key (cur + 1);
              stats.loop_retries <- stats.loop_retries + 1;
              (match probe with
              | Some p ->
                  p.on_loop_retry ~func:(fst loop_key) ~pc:(snd loop_key)
                    ~granted:(cur + 1) ~theta:config.theta
              | None -> ());
              let pending =
                match pool with
                | None -> None
                | Some pool -> (
                    match pending with
                    (* The chain predicted this grant (its head is the
                       budget the canonical map just reached, or the one
                       after — the local cur+1 attempt): keep riding it. *)
                    | Some (lk, (b, _) :: _) when lk = loop_key && (b = cur + 1 || b = cur + 2)
                      ->
                        pending
                    | _ -> spawn_chain pool loop_key ~cur)
              in
              attempt (n + 1) pending
            end
      end
    in
    let outcome = attempt 0 None in
    Octo_util.Metrics.add Octo_util.Metrics.Symex_states_forked stats.branches_decided;
    Octo_util.Metrics.add Octo_util.Metrics.Symex_states_pruned stats.states_pruned;
    (outcome, stats)
  end
