(** Vulnerable code-clone detection (VUDDY-style fingerprinting).

    The substrate that computes ℓ, the set of functions shared between the
    original vulnerable program S and the propagated program T — the input
    the paper assumes from existing clone detectors. *)

open Octo_vm.Isa

(** Abstraction level, mirroring VUDDY's levels. *)
type level =
  | Exact           (** full instruction stream, callee names included *)
  | Abstract_calls  (** callee names abstracted: detects clones whose
                        helpers were renamed during propagation *)

(** [fingerprint ?level f] hashes the normalised body of [f]. *)
val fingerprint : ?level:level -> func -> string

type clone_pair = {
  s_func : string;
  t_func : string;
  renamed : bool;  (** the clone carries a different name in T *)
}

(** [shared_functions ?level s t] computes ℓ: every function of [s] whose
    fingerprint also occurs in [t]; same-name matches preferred. *)
val shared_functions : ?level:level -> program -> program -> clone_pair list

(** [shared_functions_cached ?level ?sdig ?tdig s t] is {!shared_functions}
    memoized by program content digest (the canonical digest of
    {!Octo_vm.Compile.program_digest}; pass [sdig]/[tdig] when already
    computed).  The pipeline's hot path: clone detection re-fingerprints
    both whole programs otherwise.  Hits count under
    {!Octo_util.Metrics.Cache_hits}; safe under domains. *)
val shared_functions_cached :
  ?level:level -> ?sdig:string -> ?tdig:string -> program -> program -> clone_pair list

(** [ell_names pairs] is ℓ as T-side function names — the form the
    OCTOPOCS pipeline consumes. *)
val ell_names : clone_pair list -> string list

(** [is_vulnerable_clone_present s t ~vuln_func] asks whether T contains a
    clone of S's known-vulnerable function. *)
val is_vulnerable_clone_present :
  ?level:level -> program -> program -> vuln_func:string -> bool
