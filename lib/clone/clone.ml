(** Vulnerable code-clone detection (VUDDY-style fingerprinting).

    The paper assumes ℓ — the set of functions shared between S and T — is
    given by an existing clone detector such as VUDDY [6].  We implement the
    substrate: every function body is normalised (abstraction level chosen by
    the caller) and hashed; two functions are clones when their fingerprints
    match.  Because MiniVM code is already register-canonical, normalisation
    concerns jump structure and callee names. *)

open Octo_vm.Isa

(** Abstraction level, mirroring VUDDY's levels:
    - [Exact]: the whole instruction stream, callee names included.
    - [Abstract_calls]: callee names replaced by a placeholder, detecting
      clones whose helper functions were renamed during propagation. *)
type level = Exact | Abstract_calls

let render_instr ~level buf (ins : instr) =
  let add = Buffer.add_string buf in
  match ins with
  | Call (g, args, dst) when level = Abstract_calls ->
      add (Printf.sprintf "call<%d,%s>" (List.length args)
             (match dst with Some _ -> "r" | None -> "-"))
      |> ignore;
      ignore g
  | _ -> add (Fmt.str "%a;" pp_instr ins)

(** [fingerprint ?level f] hashes the normalised body of [f]. *)
let fingerprint ?(level = Exact) (f : func) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (string_of_int f.nparams);
  Array.iter (fun ins -> render_instr ~level buf ins) f.code;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(** A detected clone pair. *)
type clone_pair = {
  s_func : string;
  t_func : string;
  renamed : bool;  (** the clone carries a different name in T *)
}

(** [shared_functions ?level s t] computes ℓ: every function of [s] whose
    fingerprint also occurs in [t].  Same-name matches are preferred;
    renamed clones are reported with [renamed = true]. *)
let shared_functions ?level (s : program) (t : program) : clone_pair list =
  let t_by_fp = Hashtbl.create 64 in
  Hashtbl.iter
    (fun name f -> Hashtbl.add t_by_fp (fingerprint ?level f) name)
    t.funcs;
  let pairs = ref [] in
  Hashtbl.iter
    (fun s_name f ->
      let fp = fingerprint ?level f in
      match Hashtbl.find_all t_by_fp fp with
      | [] -> ()
      | candidates ->
          let t_name = if List.mem s_name candidates then s_name else List.hd candidates in
          pairs := { s_func = s_name; t_func = t_name; renamed = t_name <> s_name } :: !pairs)
    s.funcs;
  List.sort compare !pairs

(* ------------------------------------------------------------------ *)
(* Content-keyed result cache.

   [shared_functions] re-fingerprints every function of BOTH programs on
   every call — at ~86µs per pair-1-sized pair that is over half the whole
   pipeline, paid again for every run, ladder rung and batch retry of the
   same (s, t).  The result is a pure function of program content and the
   abstraction level, so it is cached under the same canonical digest the
   verdict cache builds on. *)

let ell_cache : (level * string * string, clone_pair list) Hashtbl.t = Hashtbl.create 16
let ell_cache_lock = Mutex.create ()
let ell_cache_cap = 256

(** [shared_functions_cached ?level ?sdig ?tdig s t] is {!shared_functions}
    memoized by (level, content digest of [s], content digest of [t]).
    [sdig]/[tdig] let callers that already digested the programs skip
    recomputation; they MUST equal {!Octo_vm.Compile.program_digest} of the
    respective program.  Hits are counted under
    {!Octo_util.Metrics.Cache_hits}.  Safe under domains. *)
let shared_functions_cached ?(level = Exact) ?sdig ?tdig (s : program) (t : program) :
    clone_pair list =
  let dig d p = match d with Some d -> d | None -> Octo_vm.Compile.program_digest p in
  let key = (level, dig sdig s, dig tdig t) in
  Mutex.lock ell_cache_lock;
  let hit = Hashtbl.find_opt ell_cache key in
  Mutex.unlock ell_cache_lock;
  match hit with
  | Some pairs ->
      Octo_util.Metrics.incr Octo_util.Metrics.Cache_hits;
      pairs
  | None ->
      let pairs = shared_functions ~level s t in
      Mutex.lock ell_cache_lock;
      if Hashtbl.length ell_cache >= ell_cache_cap then Hashtbl.reset ell_cache;
      if not (Hashtbl.mem ell_cache key) then Hashtbl.add ell_cache key pairs;
      Mutex.unlock ell_cache_lock;
      pairs

(** [ell_names pairs] is the ℓ set as T-side function names — the form the
    OCTOPOCS pipeline consumes. *)
let ell_names pairs = List.map (fun p -> p.t_func) pairs

(** [is_vulnerable_clone_present s t ~vuln_func] answers the question a
    VUDDY user asks first: does T contain a clone of the known-vulnerable
    function of S? *)
let is_vulnerable_clone_present ?level (s : program) (t : program) ~vuln_func =
  match Hashtbl.find_opt s.funcs vuln_func with
  | None -> false
  | Some f ->
      let fp = fingerprint ?level f in
      Hashtbl.fold (fun _ g acc -> acc || fingerprint ?level g = fp) t.funcs false
