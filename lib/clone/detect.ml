(** Clone-detection front-end: discovering (S, T, ℓ, ep) candidates.

    {!Clone} answers the question the paper takes as given — "are these
    two functions byte-identical clones?".  This module answers the
    retrieval question that precedes it at fleet scale (the VUDDY /
    VulCoCo workflow): given a corpus of target programs and the one
    function of S known to be vulnerable, which (S, T) pairs are worth
    verifying at all?

    The front-end has three layers:

    - {b Normalized fingerprinting}: every instruction is rendered as an
      opcode-shape token — registers renumbered by first occurrence
      (parameters keep their slots), callee names reduced to arity +
      return shape, jump targets made pc-relative; immediates and data
      symbols stay concrete (on register-canonical MiniVM code the
      constants are what distinguishes template-stamped functions).  A
      consistent renaming of non-parameter registers or a renamed helper
      therefore does not change a function's normalized shape, while any
      opcode-level edit does.

    - {b Winnowed k-gram shingles}: the token stream is hashed into
      overlapping k-grams and winnowed (per-window minima), giving each
      function a small shingle set.  An inverted index (shingle →
      postings) retrieves candidate target functions for a probe in time
      proportional to the overlap, and the probe-side containment ratio
      |probe ∩ target| / |probe| scores each hit — robust to the
      instruction insertions real propagation accrues.

    - {b Validity filter}: a retrieved (S, T) hit is confirmed into a
      verifiable candidate only if the shared region aligns (the
      vulnerable function is an exact clone under {!Clone}, or the hit
      clears the stricter confirmation threshold), the entry point ep
      recovers from S's own crash backtrace, and T-side CFG reachability
      of ep is recorded (never used to drop: a dead entry point is
      exactly the Type-III case (ii) the verifier must see). *)

open Octo_vm.Isa
module Cfg = Octo_cfg.Cfg
module Interp = Octo_vm.Interp

(** Detection parameters.  The thresholds are probe-side containment
    ratios in [0, 1]: [tau_retrieve] gates index hits, [tau_confirm]
    gates confirmation of hits whose vulnerable function is {e not} an
    exact {!Clone} match (near-clones). *)
type params = {
  shingle_k : int;  (** k-gram length over the token stream *)
  winnow_w : int;  (** winnowing window (k-grams per selection window) *)
  tau_retrieve : float;  (** retrieval threshold *)
  tau_confirm : float;  (** confirmation threshold for non-exact hits *)
}

let default_params =
  { shingle_k = 4; winnow_w = 4; tau_retrieve = 0.5; tau_confirm = 0.9 }

(* ------------------------------------------------------------------ *)
(* Normalized tokenization. *)

(* 61-bit FNV-style string hash: deterministic across OCaml versions and
   platforms (goldens and the bench gate pin shingle counts), unlike
   [Hashtbl.hash].  Masked to 61 bits so every hash is a nonnegative
   native int on 64-bit systems. *)
let mask61 = (1 lsl 61) - 1
let fnv_prime = 0x100000001B3

let hash_string s =
  let h = ref 0x27220A95 in
  String.iter (fun c -> h := (!h lxor Char.code c) * fnv_prime land mask61) s;
  !h

(** [tokens f] is the normalized token stream of [f]: one opcode-shape
    token per instruction.  Registers are renumbered by first occurrence
    (parameter registers keep their canonical slots 0..n-1), callee names
    become ["call<arity,r|->"], jump targets pc-relative offsets;
    immediates and data symbols stay concrete.  Exposed for the property
    tests. *)
let tokens (f : func) : string list =
  let map = Hashtbl.create 32 in
  let next = ref f.nparams in
  for i = 0 to f.nparams - 1 do
    Hashtbl.replace map i i
  done;
  let reg r =
    match Hashtbl.find_opt map r with
    | Some n -> n
    | None ->
        let n = !next in
        incr next;
        Hashtbl.replace map r n;
        n
  in
  let rg r = Printf.sprintf "v%d" (reg r) in
  (* Immediates and data symbols stay concrete: on register-canonical
     MiniVM code the constants ARE the code's identity (the family
     decoders differ only by their tag/bound immediates), so abstracting
     them collapses every template-stamped wrapper into one shape and
     retrieval drowns in cross-family hits.  Rename-invariance only needs
     registers and callee names abstracted. *)
  let op = function
    | Reg r -> rg r
    | Imm i -> "#" ^ string_of_int i
    | Sym s -> "@" ^ s
  in
  let ops xs = String.concat "," (List.map op xs) in
  let dst = function Some r -> rg r | None -> "-" in
  let tok pc (ins : instr) =
    match ins with
    | Mov (d, a) -> Printf.sprintf "mov %s,%s" (rg d) (op a)
    | Bin (b, d, x, y) ->
        Printf.sprintf "%s %s,%s,%s" (string_of_binop b) (rg d) (op x) (op y)
    | Load8 (d, b, o) -> Printf.sprintf "ld8 %s,%s,%s" (rg d) (op b) (op o)
    | Store8 (b, o, v) -> Printf.sprintf "st8 %s,%s,%s" (op b) (op o) (op v)
    | LoadW (d, b, o) -> Printf.sprintf "ldw %s,%s,%s" (rg d) (op b) (op o)
    | StoreW (b, o, v) -> Printf.sprintf "stw %s,%s,%s" (op b) (op o) (op v)
    | Jmp t -> Printf.sprintf "jmp %+d" (t - pc)
    | Jif (r, a, b, t) ->
        Printf.sprintf "j%s %s,%s,%+d" (string_of_relop r) (op a) (op b) (t - pc)
    | Call (_, args, d) ->
        Printf.sprintf "call<%d,%s>(%s)" (List.length args)
          (match d with Some _ -> "r" | None -> "-")
          (ops args)
    | Icall (f, args, d) -> Printf.sprintf "icall %s(%s)->%s" (op f) (ops args) (dst d)
    | Ret v -> Printf.sprintf "ret %s" (op v)
    | Sys (Open r) -> Printf.sprintf "sys.open %s" (rg r)
    | Sys (Read (d, fd, buf, len)) ->
        Printf.sprintf "sys.read %s,%s,%s,%s" (rg d) (op fd) (op buf) (op len)
    | Sys (Seek (fd, p)) -> Printf.sprintf "sys.seek %s,%s" (op fd) (op p)
    | Sys (Tell (d, fd)) -> Printf.sprintf "sys.tell %s,%s" (rg d) (op fd)
    | Sys (Fsize (d, fd)) -> Printf.sprintf "sys.fsize %s,%s" (rg d) (op fd)
    | Sys (Mmap (d, fd)) -> Printf.sprintf "sys.mmap %s,%s" (rg d) (op fd)
    | Sys (Alloc (d, sz)) -> Printf.sprintf "sys.alloc %s,%s" (rg d) (op sz)
    | Sys (Exit c) -> Printf.sprintf "sys.exit %s" (op c)
    | Sys (Emit v) -> Printf.sprintf "sys.emit %s" (op v)
    | Halt -> "halt"
  in
  Array.to_list (Array.mapi tok f.code)

(** [fingerprint_norm f] digests the normalized token stream — the
    rename-invariant analogue of {!Clone.fingerprint}.  Invariant under
    register renaming and helper renaming; sensitive to any opcode-level
    or constant edit. *)
let fingerprint_norm (f : func) : string =
  Digest.to_hex
    (Digest.string (string_of_int f.nparams ^ ";" ^ String.concat ";" (tokens f)))

(* ------------------------------------------------------------------ *)
(* Winnowed k-gram shingles. *)

module ISet = Set.Make (Int)

(** [shingles ~k ~w f] is the winnowed k-gram shingle set of [f]'s
    normalized token stream: hash every window of [k] consecutive token
    hashes, then keep each [w]-window's minimum (rightmost on ties) —
    Schleimer-style winnowing, so near-identical functions select
    near-identical shingles.  A function shorter than [k] tokens
    contributes the single hash of its whole stream. *)
let shingles ~k ~w (f : func) : ISet.t =
  let toks = Array.of_list (tokens f) in
  let n = Array.length toks in
  let th = Array.map hash_string toks in
  if n = 0 then ISet.empty
  else if n < k then
    ISet.singleton
      (hash_string (string_of_int f.nparams ^ String.concat ";" (Array.to_list toks)))
  else begin
    let grams = Array.make (n - k + 1) 0 in
    for i = 0 to n - k do
      let g = ref 0x165667B1 in
      for j = i to i + k - 1 do
        g := (!g * fnv_prime lxor th.(j)) land mask61
      done;
      grams.(i) <- !g
    done;
    let m = Array.length grams in
    let sel = ref ISet.empty in
    if m <= w then begin
      (* One short window: select its minimum. *)
      let best = ref grams.(0) in
      Array.iter (fun g -> if g <= !best then best := g) grams;
      sel := ISet.singleton !best
    end
    else
      for i = 0 to m - w do
        let best = ref grams.(i) in
        for j = i + 1 to i + w - 1 do
          if grams.(j) <= !best then best := grams.(j)
        done;
        sel := ISet.add !best !sel
      done;
    !sel
  end

(** [containment ~k probe target] is the probe-side containment
    |probe ∩ target| / |probe| over the {e full} (unwinnowed) k-gram
    sets of the two functions.  Winnowing is a retrieval-side
    compression: on short functions the few selected shingles can all
    fall outside a real difference, saturating the winnowed ratio at
    1.0.  Validation therefore re-scores on every k-gram — the
    retrieve-cheap / validate-precise split of VulCoCo. *)
let containment ~k (probe : func) (target : func) : float =
  let p = shingles ~k ~w:1 probe and t = shingles ~k ~w:1 target in
  let total = ISet.cardinal p in
  if total = 0 then 0.0
  else float_of_int (ISet.cardinal (ISet.inter p t)) /. float_of_int total

(* ------------------------------------------------------------------ *)
(* Inverted index: shingle -> postings of (target label, function). *)

type index = {
  ix_params : params;
  postings : (int, (string * string) list ref) Hashtbl.t;
  sizes : (string * string, int) Hashtbl.t;  (** shingle-set size per posting *)
  mutable n_programs : int;
  mutable n_funcs : int;
  mutable n_postings : int;  (** total (shingle, function) entries *)
}

let index_create params =
  {
    ix_params = params;
    postings = Hashtbl.create 1024;
    sizes = Hashtbl.create 256;
    n_programs = 0;
    n_funcs = 0;
    n_postings = 0;
  }

let index_stats ix = (ix.n_programs, ix.n_funcs, ix.n_postings)

(** [index_add ix ~label t] fingerprints every function of target
    program [t] under corpus label [label] and inserts its shingles. *)
let index_add ix ~label (t : program) =
  ix.n_programs <- ix.n_programs + 1;
  Hashtbl.iter
    (fun fname f ->
      let sh = shingles ~k:ix.ix_params.shingle_k ~w:ix.ix_params.winnow_w f in
      ix.n_funcs <- ix.n_funcs + 1;
      Hashtbl.replace ix.sizes (label, fname) (ISet.cardinal sh);
      ISet.iter
        (fun s ->
          (match Hashtbl.find_opt ix.postings s with
          | Some l -> l := (label, fname) :: !l
          | None -> Hashtbl.add ix.postings s (ref [ (label, fname) ]));
          ix.n_postings <- ix.n_postings + 1)
        sh)
    t.funcs

(** A retrieval hit: target function [h_func] of corpus entry [h_label]
    shares fraction [h_score] of the probe's shingles. *)
type hit = { h_label : string; h_func : string; h_score : float }

(** [query ix probe] retrieves every indexed function whose probe-side
    containment |probe ∩ target| / |probe| clears [tau_retrieve], best
    score first (label, then function name, as tiebreaks — the order is
    deterministic for goldens). *)
let query ix (probe : func) : hit list =
  let sh = shingles ~k:ix.ix_params.shingle_k ~w:ix.ix_params.winnow_w probe in
  let total = ISet.cardinal sh in
  if total = 0 then []
  else begin
    let counts : (string * string, int) Hashtbl.t = Hashtbl.create 64 in
    ISet.iter
      (fun s ->
        match Hashtbl.find_opt ix.postings s with
        | None -> ()
        | Some l ->
            List.iter
              (fun key ->
                Hashtbl.replace counts key (1 + Option.value (Hashtbl.find_opt counts key) ~default:0))
              !l)
      sh;
    Hashtbl.fold
      (fun (label, fname) c acc ->
        let score = float_of_int c /. float_of_int total in
        if score >= ix.ix_params.tau_retrieve then
          { h_label = label; h_func = fname; h_score = score } :: acc
        else acc)
      counts []
    |> List.sort (fun a b ->
           match compare b.h_score a.h_score with
           | 0 -> compare (a.h_label, a.h_func) (b.h_label, b.h_func)
           | c -> c)
  end

(* ------------------------------------------------------------------ *)
(* Validity filter: hit -> confirmed (S, T, ℓ, ep) candidate. *)

(** A confirmed candidate: everything the verifier needs, plus the
    evidence the filter based its decision on. *)
type candidate = {
  c_s_label : string;  (** probe-side corpus label *)
  c_t_label : string;  (** target-side corpus label *)
  c_vuln_func : string;  (** S-side vulnerable function (the probe) *)
  c_hit_func : string;  (** matched T-side function *)
  c_score : float;
      (** validated probe-side containment over full k-gram sets
          ({!containment}), not the winnowed retrieval score *)
  c_exact : bool;  (** the vulnerable function is an exact {!Clone} match *)
  c_ell : string list;  (** ℓ as T-side names, sorted *)
  c_ep : string;  (** recovered entry point (T-side name) *)
  c_reachable : bool option;
      (** T-side CFG: is [c_ep] called from reachable code?  [None] when
          CFG recovery failed ({!Cfg.Cfg_error}); recorded, never used to
          reject — a dead ep is the verifier's Type-III case (ii) *)
}

(** [s_crash ?max_steps s ~poc] replays S on its own PoC and returns the
    crash, or [None] when the PoC does not crash S — in which case no
    candidate probed from S can be confirmed (there is no crash path to
    recover an entry point from). *)
let s_crash ?max_steps (s : program) ~poc : Interp.crash option =
  match (Interp.run ?max_steps s ~input:poc).outcome with
  | Interp.Crashed c -> Some c
  | Interp.Exited _ -> None
  | exception _ -> None

(** [confirm params ~s ~s_label ~t ~t_label ~vuln_func ~s_crash hit]
    applies the validity filter to one retrieval hit:

    + shared-region alignment: ℓ is recomputed exactly via
      {!Clone.shared_functions_cached}; the hit survives if [vuln_func]
      is an exact clone, or its containment clears [tau_confirm] (the
      near-clone path, which extends ℓ with the aligned pair);
    + entry-point recovery: the first crash-backtrace frame of S that
      belongs to ℓ, mapped to its T-side name, is ep — mirroring the
      pipeline's own {!Octopocs.identify_ep}, so a confirmed diagonal
      candidate verifies under the very same ep;
    + reachability: whether T's CFG calls ep from reachable code is
      recorded in [c_reachable] (a CFG failure records [None]).

    [None] when the hit fails alignment or no entry point recovers.
    [sdig]/[tdig] are the optional {!Octo_vm.Compile.program_digest}
    values of [s]/[t], forwarded to the ℓ cache. *)
let confirm params ?sdig ?tdig ~(s : program) ~s_label ~(t : program) ~t_label
    ~vuln_func ~(s_crash : Interp.crash option) (h : hit) : candidate option =
  let pairs = Clone.shared_functions_cached ?sdig ?tdig s t in
  let exact = List.exists (fun (cp : Clone.clone_pair) -> cp.s_func = vuln_func) pairs in
  (* Re-score on full k-gram sets (see {!containment}): the winnowed
     retrieval score saturates on short functions, the validated score
     does not. *)
  let score =
    containment ~k:params.shingle_k (func_exn s vuln_func) (func_exn t h.h_func)
  in
  if (not exact) && score < params.tau_confirm then None
  else
    let mapping =
      List.map (fun (cp : Clone.clone_pair) -> (cp.s_func, cp.t_func)) pairs
      @ (if exact then [] else [ (vuln_func, h.h_func) ])
    in
    match s_crash with
    | None -> None
    | Some crash -> (
        match
          List.find_map (fun fr -> Option.map (fun tf -> (fr, tf))
                                     (List.assoc_opt fr mapping))
            crash.backtrace
        with
        | None -> None
        | Some (_, ep) ->
            let reachable =
              match Cfg.ep_called_somewhere t ~ep with
              | b -> Some b
              | exception Cfg.Cfg_error _ -> None
            in
            Some
              {
                c_s_label = s_label;
                c_t_label = t_label;
                c_vuln_func = vuln_func;
                c_hit_func =
                  (if exact then List.assoc vuln_func mapping else h.h_func);
                c_score = score;
                c_exact = exact;
                c_ell = List.sort_uniq compare (List.map snd mapping);
                c_ep = ep;
                c_reachable = reachable;
              })
