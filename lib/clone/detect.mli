(** Clone-detection front-end: discovering (S, T, ℓ, ep) candidates.

    {!Clone} decides whether two functions are identical clones; this
    module answers the retrieval question that precedes it at corpus
    scale (the VUDDY / VulCoCo workflow): given one known-vulnerable
    function of S, which target programs of a corpus plausibly contain a
    clone of it — and for each plausible pair, what are the ℓ and ep the
    verifier should run with? *)

open Octo_vm.Isa

(** Detection parameters: k-gram length, winnowing window, and the two
    probe-side containment thresholds ([tau_retrieve] gates index hits,
    [tau_confirm] gates non-exact-match confirmation). *)
type params = {
  shingle_k : int;
  winnow_w : int;
  tau_retrieve : float;
  tau_confirm : float;
}

val default_params : params
(** [{ shingle_k = 4; winnow_w = 4; tau_retrieve = 0.5; tau_confirm = 0.9 }] *)

val tokens : func -> string list
(** [tokens f] is the normalized token stream: one opcode-shape token per
    instruction, registers renumbered by first occurrence (parameters
    pinned to their slots), callee names reduced to arity + return shape,
    jump targets pc-relative; immediates and data symbols stay concrete
    (on register-canonical MiniVM code the constants are what
    distinguishes template-stamped functions).  Exposed for the property
    tests. *)

val fingerprint_norm : func -> string
(** Digest of the normalized token stream: invariant under register
    renaming and helper renaming; sensitive to any opcode-level or
    constant edit. *)

module ISet : Set.S with type elt = int

val shingles : k:int -> w:int -> func -> ISet.t
(** Winnowed k-gram shingle set over the normalized token stream
    (per-window minima of k-gram hashes).  Deterministic across
    platforms: hashing is the module's own 61-bit FNV, not
    [Hashtbl.hash]. *)

val containment : k:int -> func -> func -> float
(** [containment ~k probe target] is |probe ∩ target| / |probe| over the
    full (unwinnowed) k-gram sets — the precise score the validity
    filter re-computes per hit, because the winnowed retrieval score
    saturates at 1.0 on short functions whose differences fall between
    selected shingles. *)

(** Inverted index over target-program functions. *)
type index

val index_create : params -> index

val index_add : index -> label:string -> program -> unit
(** Fingerprint every function of a target program under a corpus label
    and insert its shingles. *)

val index_stats : index -> int * int * int
(** [(programs, functions, postings)] indexed so far. *)

(** A retrieval hit: target function [h_func] of entry [h_label] shares
    fraction [h_score] of the probe's shingles. *)
type hit = { h_label : string; h_func : string; h_score : float }

val query : index -> func -> hit list
(** Hits clearing [tau_retrieve], best score first (label and function
    name as deterministic tiebreaks). *)

(** A confirmed candidate: everything the verifier needs plus the
    filter's evidence.  [c_reachable] is [None] when T's CFG recovery
    failed; it is recorded, never used to reject (a dead entry point is
    the verifier's Type-III case (ii)). *)
type candidate = {
  c_s_label : string;
  c_t_label : string;
  c_vuln_func : string;
  c_hit_func : string;
  c_score : float;  (** validated containment ({!containment}) *)
  c_exact : bool;
  c_ell : string list;  (** T-side names, sorted *)
  c_ep : string;
  c_reachable : bool option;
}

val s_crash : ?max_steps:int -> program -> poc:string -> Octo_vm.Interp.crash option
(** Replay S on its own PoC; [None] when it does not crash (no candidate
    probed from that S can then be confirmed). *)

val confirm :
  params ->
  ?sdig:string ->
  ?tdig:string ->
  s:program ->
  s_label:string ->
  t:program ->
  t_label:string ->
  vuln_func:string ->
  s_crash:Octo_vm.Interp.crash option ->
  hit ->
  candidate option
(** Validity filter: exact shared-region alignment via
    {!Clone.shared_functions_cached} (or the [tau_confirm] near-clone
    path, which extends ℓ with the aligned pair), entry-point recovery
    from S's crash backtrace mapped to T-side names, and recorded CFG
    reachability of ep.  [sdig]/[tdig] forward precomputed
    {!Octo_vm.Compile.program_digest} values to the ℓ cache. *)
