(** Constraint solving over input-byte variables.

    A {!store} maintains interval domains for every byte variable together
    with the accumulated path constraints.  Adding a constraint triggers
    interval propagation (forward evaluation plus best-effort backward
    narrowing), which is what lets directed symbolic execution prune
    unsatisfiable branch choices cheaply — the loop-dead test of §III-B.
    Full model construction ([solve]) performs backtracking search with a
    node budget; every candidate model is verified by concrete evaluation,
    so narrowing never needs to be complete for soundness.

    Engine layout (the hot path of every pipeline phase):

    - Domains live in a growable array indexed by byte offset, so [dom] and
      [set_dom] are O(1) instead of assoc-list walks.
    - A var→constraint dependency index drives AC-3-style worklist
      propagation: narrowing a variable enqueues only the constraints that
      mention it, so [add] is proportional to the affected slice of the
      store rather than re-running every constraint to a fixpoint.
    - Model search records [(var, old_interval)] undo entries on a trail,
      making backtracking O(changes touched) instead of copying the whole
      store per candidate value. *)

open Octo_vm.Isa
module Deadline = Octo_util.Deadline
module Faultinject = Octo_util.Faultinject

type interval = int * int (* inclusive; over 0..2^32-1 *)

let word_max = 0xFFFFFFFF
let top : interval = (0, word_max)
let byte_top : interval = (0, 255)

(* Trail of undo records.  Represented as a cons list so a [mark] is just
   the current list: [undo_to] pops back to the marked tail by physical
   equality, touching only the entries written since the mark. *)
type trail = (int * interval) list

type store = {
  mutable doms : interval array;   (* var -> domain; byte_top when untouched *)
  mutable deps : int list array;   (* var -> ids of constraints mentioning it *)
  mutable dcap : int;              (* capacity of [doms]/[deps] *)
  mutable cons : Expr.cond array;  (* constraints in insertion order *)
  mutable ncons : int;
  mutable queued : bool array;     (* constraint id -> already on worklist *)
  mutable queue : int Queue.t;     (* propagation worklist *)
  mutable trail : trail;
  mutable trailing : bool;         (* record undo entries in [set_dom]? *)
  mutable nvars : int;             (* distinct variables seen so far *)
}

let dummy_cond : Expr.cond = { rel = Eq; lhs = Expr.Const 0; rhs = Expr.Const 0 }

let create () =
  {
    doms = [||];
    deps = [||];
    dcap = 0;
    cons = [||];
    ncons = 0;
    queued = [||];
    queue = Queue.create ();
    trail = [];
    trailing = false;
    nvars = 0;
  }

(* The queue is empty and the trail off outside [add]/[propagate]/[solve],
   so a copy starts with fresh empty ones. *)
let copy s =
  {
    doms = Array.copy s.doms;
    deps = Array.copy s.deps;
    dcap = s.dcap;
    cons = Array.copy s.cons;
    ncons = s.ncons;
    queued = Array.make (Array.length s.queued) false;
    queue = Queue.create ();
    trail = [];
    trailing = false;
    nvars = s.nvars;
  }

(* Negative offsets cannot occur for real input bytes; they are treated as
   unconstrained (never narrowed, skipped by search) so a malformed bunch
   offset degrades to "no pruning" rather than an exception. *)
let dom s v = if v < 0 || v >= s.dcap then byte_top else s.doms.(v)

let ensure_var s v =
  if v >= s.dcap then begin
    let cap = max 16 (max (v + 1) (2 * s.dcap)) in
    let doms = Array.make cap byte_top in
    Array.blit s.doms 0 doms 0 s.dcap;
    let deps = Array.make cap [] in
    Array.blit s.deps 0 deps 0 s.dcap;
    s.doms <- doms;
    s.deps <- deps;
    s.dcap <- cap
  end

(** [set_dom s v d] writes domain [d] for variable [v], recording an undo
    entry when a trail is active and enqueueing every constraint that
    mentions [v].  No-ops when the domain is unchanged, which is what makes
    worklist propagation converge (domains only shrink). *)
let set_dom s v d =
  if v >= 0 then begin
    ensure_var s v;
    let old = s.doms.(v) in
    if d <> old then begin
      if s.trailing then s.trail <- (v, old) :: s.trail;
      s.doms.(v) <- d;
      List.iter
        (fun ci ->
          if not s.queued.(ci) then begin
            s.queued.(ci) <- true;
            Queue.add ci s.queue
          end)
        s.deps.(v)
    end
  end

type mark = trail

let mark s : mark = s.trail

(** [undo_to s m] rolls the domains back to the state captured by [mark].
    Cost is proportional to the number of narrowings since the mark. *)
let undo_to s (m : mark) =
  let rec go l =
    if l != m then
      match l with
      | (v, d) :: tl ->
          s.doms.(v) <- d;
          go tl
      | [] -> ()
  in
  go s.trail;
  s.trail <- m

let constraints s = Array.to_list (Array.sub s.cons 0 s.ncons)

(* ------------------------------------------------------------------ *)
(* Forward interval evaluation with wrap-awareness: any operation that
   might wrap returns [top] rather than a wrong tight bound. *)

let pow2_bound hi =
  let rec go b = if b > hi && b - 1 <= word_max then b - 1 else go (b * 2) in
  if hi >= word_max then word_max else go 1

let rec ival s (e : Expr.t) : interval =
  match e with
  | Const v -> (v, v)
  | Byte i -> dom s i
  | Sel (table, idx) ->
      (* Bounds over the feasible slice of the table. *)
      let li, hi_ = ival s idx in
      let lo = max 0 li and hi = min (Array.length table - 1) hi_ in
      if lo > hi then (0, 0)
      else begin
        let mn = ref table.(lo) and mx = ref table.(lo) in
        for i = lo to hi do
          mn := min !mn table.(i);
          mx := max !mx table.(i)
        done;
        (* An out-of-range index evaluates to 0. *)
        if li < 0 || hi_ >= Array.length table then (min 0 !mn, !mx) else (!mn, !mx)
      end
  | Bin (op, a, b) ->
      let la, ha = ival s a and lb, hb = ival s b in
      (match op with
      | Add -> if ha + hb <= word_max then (la + lb, ha + hb) else top
      | Sub -> if la - hb >= 0 then (la - hb, ha - lb) else top
      | Mul ->
          (* Overflow-safe product bound: ha*hb can exceed the native int
             range, so divide instead of multiplying. *)
          if ha = 0 || hb <= word_max / ha then (la * lb, ha * hb) else top
      | Div -> if lb > 0 then (la / hb, ha / lb) else top
      | Mod -> if lb > 0 then (0, hb - 1) else top
      | And -> (0, min ha hb)
      | Or -> (max la lb, pow2_bound (max ha hb + min ha hb))
      | Xor -> (0, pow2_bound (max ha hb + min ha hb))
      | Shl ->
          (* Shift counts are masked to 31, as in the VM semantics; the
             overflow check divides rather than shifting left. *)
          let k = lb land 31 in
          if lb = hb && ha <= word_max lsr k then (la lsl k, ha lsl k) else top
      | Shr ->
          let k = lb land 31 in
          if lb = hb then (la lsr k, ha lsr k) else (0, ha))

(* ------------------------------------------------------------------ *)
(* Condition evaluation under current domains. *)

type verdict = True | False | Maybe

let eval_cond_iv s (c : Expr.cond) : verdict =
  let la, ha = ival s c.lhs and lb, hb = ival s c.rhs in
  match c.rel with
  | Eq -> if la = ha && lb = hb && la = lb then True else if ha < lb || la > hb then False else Maybe
  | Ne -> if ha < lb || la > hb then True else if la = ha && lb = hb && la = lb then False else Maybe
  | Lt -> if ha < lb then True else if la >= hb then False else Maybe
  | Le -> if ha <= lb then True else if la > hb then False else Maybe
  | Gt -> if la > hb then True else if ha <= lb then False else Maybe
  | Ge -> if la >= hb then True else if ha < lb then False else Maybe

(* ------------------------------------------------------------------ *)
(* Backward narrowing: given that expression [e] must lie within [lo,hi],
   tighten byte-variable domains.  Handles the invertible spine shapes that
   dominate parser constraints (offsets, lengths, masked bytes); anything
   else is left to search. *)

exception Unsat_exn

let inter (l1, h1) (l2, h2) =
  let l = max l1 l2 and h = min h1 h2 in
  if l > h then raise Unsat_exn;
  (l, h)

let rec narrow s (e : Expr.t) ((lo, hi) as want : interval) =
  if lo > hi then raise Unsat_exn;
  match e with
  | Const v -> if v < lo || v > hi then raise Unsat_exn
  | Byte i ->
      if i < 0 then ignore (inter byte_top want)
      else set_dom s i (inter (dom s i) (inter want byte_top))
  | Sel (table, idx) ->
      (* Only indices whose table entry lies in [want] remain feasible;
         narrow the index to their convex hull. *)
      let li, hi_ = ival s idx in
      let lo_i = max 0 li and hi_i = min (Array.length table - 1) hi_ in
      let first = ref (-1) and last = ref (-1) in
      for i = lo_i to hi_i do
        if table.(i) >= lo && table.(i) <= hi then begin
          if !first < 0 then first := i;
          last := i
        end
      done;
      if !first < 0 then raise Unsat_exn else narrow s idx (!first, !last)
  | Bin (op, a, b) -> (
      match (op, Expr.to_const_opt a, Expr.to_const_opt b) with
      | Add, Some k, None ->
          if lo - k >= 0 && hi - k <= word_max then narrow s b (max 0 (lo - k), hi - k)
      | Add, None, Some k ->
          if lo - k >= 0 && hi - k <= word_max then narrow s a (max 0 (lo - k), hi - k)
      | Sub, None, Some k -> if hi + k <= word_max then narrow s a (lo + k, hi + k)
      | Mul, Some k, None when k > 0 ->
          narrow s b ((lo + k - 1) / k, hi / k)
      | Mul, None, Some k when k > 0 ->
          narrow s a ((lo + k - 1) / k, hi / k)
      | Shl, None, Some k ->
          let k = k land 31 in
          narrow s a ((lo + (1 lsl k) - 1) lsr k, hi lsr k)
      | Shr, None, Some k ->
          let k = k land 31 in
          if hi <= word_max lsr k then
            narrow s a (lo lsl k, (hi lsl k) lor ((1 lsl k) - 1))
      | And, None, Some 0xff ->
          (* Common byte-masking pattern: the mask is exact when the operand
             is already a byte. *)
          let la, ha = ival s a in
          if ha <= 0xff then narrow s a (inter (la, ha) want)
      | _ ->
          (* No inversion known: at least check feasibility. *)
          let l, h = ival s e in
          if h < lo || l > hi then raise Unsat_exn)

let narrow_cond s (c : Expr.cond) =
  let la, ha = ival s c.lhs and lb, hb = ival s c.rhs in
  match c.rel with
  | Eq ->
      let l = max la lb and h = min ha hb in
      if l > h then raise Unsat_exn;
      narrow s c.lhs (l, h);
      narrow s c.rhs (l, h)
  | Ne -> (
      (* Only exact when one side is a fixed constant at a domain edge. *)
      match (Expr.to_const_opt c.lhs, Expr.to_const_opt c.rhs) with
      | Some v, None ->
          if lb = hb && lb = v then raise Unsat_exn;
          if v = lb then narrow s c.rhs (lb + 1, hb)
          else if v = hb then narrow s c.rhs (lb, hb - 1)
      | None, Some v ->
          if la = ha && la = v then raise Unsat_exn;
          if v = la then narrow s c.lhs (la + 1, ha)
          else if v = ha then narrow s c.lhs (la, ha - 1)
      | Some x, Some y -> if x = y then raise Unsat_exn
      | None, None -> ())
  | Lt ->
      if lb = 0 && hb = 0 then raise Unsat_exn;
      narrow s c.lhs (la, min ha (hb - 1));
      narrow s c.rhs (max lb (la + 1), hb)
  | Le ->
      narrow s c.lhs (la, min ha hb);
      narrow s c.rhs (max lb la, hb)
  | Gt ->
      narrow s c.lhs (max la (lb + 1), ha);
      narrow s c.rhs (lb, min hb (ha - 1))
  | Ge ->
      narrow s c.lhs (max la lb, ha);
      narrow s c.rhs (lb, min hb ha)

(* ------------------------------------------------------------------ *)
(* Worklist propagation: drain the queue of dirty constraints, where
   narrowing a variable re-enqueues exactly the constraints that mention it.
   Domains only shrink over a finite lattice, so the drain terminates; a
   work budget additionally guards against pathological ping-ponging between
   constraints that narrow without converging quickly (propagation is
   best-effort, so stopping early is sound). *)

let clear_queue s =
  Queue.iter (fun ci -> s.queued.(ci) <- false) s.queue;
  Queue.clear s.queue

let propagate s =
  let budget = ref (200 + (64 * s.ncons)) in
  try
    while not (Queue.is_empty s.queue) do
      let ci = Queue.pop s.queue in
      s.queued.(ci) <- false;
      if !budget > 0 then begin
        decr budget;
        narrow_cond s s.cons.(ci)
      end
      else clear_queue s
    done
  with e ->
    clear_queue s;
    raise e

type add_result = Ok | Unsat

let push_cons s (c : Expr.cond) : int =
  let id = s.ncons in
  if id >= Array.length s.cons then begin
    let cap = max 16 (2 * Array.length s.cons) in
    let cons = Array.make cap dummy_cond in
    Array.blit s.cons 0 cons 0 s.ncons;
    let queued = Array.make cap false in
    Array.blit s.queued 0 queued 0 s.ncons;
    s.cons <- cons;
    s.queued <- queued
  end;
  s.cons.(id) <- c;
  s.ncons <- id + 1;
  List.iter
    (fun v ->
      if v >= 0 then begin
        ensure_var s v;
        if s.deps.(v) = [] then s.nvars <- s.nvars + 1;
        s.deps.(v) <- id :: s.deps.(v)
      end)
    (Expr.cond_vars c);
  id

(* Remove the most recently added constraint (and its dependency-index
   entries); only valid directly after [push_cons]. *)
let pop_cons s (id : int) =
  assert (id = s.ncons - 1);
  let c = s.cons.(id) in
  List.iter
    (fun v ->
      if v >= 0 && v < s.dcap then
        s.deps.(v) <- List.filter (fun i -> i <> id) s.deps.(v))
    (Expr.cond_vars c);
  s.cons.(id) <- dummy_cond;
  s.queued.(id) <- false;
  s.ncons <- id

(** [add s c] records constraint [c] and propagates from it through the
    dependency index.  [Unsat] means the store is now definitely
    unsatisfiable (a domain emptied); [Ok] means it may still be
    satisfiable. *)
let add s (c : Expr.cond) : add_result =
  Octo_util.Metrics.incr Octo_util.Metrics.Constraint_adds;
  let id = push_cons s c in
  s.queued.(id) <- true;
  Queue.add id s.queue;
  try
    propagate s;
    Ok
  with Unsat_exn -> Unsat

(** [add_checked s c] is [add] that leaves the store untouched when the
    constraint is unsatisfiable: the constraint is retracted and every
    narrowing it performed is rolled back.  This is what lets a branch
    chooser probe one direction and cleanly fall back to the other without
    poisoning the store (directed execution's push/pop at branch points). *)
let add_checked s (c : Expr.cond) : add_result =
  Octo_util.Metrics.incr Octo_util.Metrics.Constraint_adds;
  let was = s.trailing in
  s.trailing <- true;
  let m = mark s in
  let id = push_cons s c in
  s.queued.(id) <- true;
  Queue.add id s.queue;
  let r = try propagate s; Ok with Unsat_exn -> Unsat in
  (match r with
  | Unsat ->
      undo_to s m;
      pop_cons s id
  | Ok -> ());
  s.trailing <- was;
  if not was then s.trail <- [];
  r

(** [entails s c] evaluates [c] under the current domains. *)
let entails s c = eval_cond_iv s c

(* ------------------------------------------------------------------ *)
(* Cross-phase scopes.

   [add_checked] is a one-constraint transaction; a scope is the same
   trail/mark machinery stretched over an arbitrary sequence of [add]s —
   the shape P3 bunch pinning needs.  Pins land on the live store one
   [add] at a time (propagation is incremental, reusing every narrowing
   performed by earlier phases), and when one of them conflicts the caller
   can first interrogate the poisoned store (e.g. {!unsat_core} over
   {!constraints} — the scoped constraints are ordinary constraints) and
   then [pop_scope] back to the exact pre-scope state instead of
   discarding the store.

   Scopes nest with the existing transactional primitives: [add_checked]
   and [solve] save and restore [trailing] themselves and undo to their
   own marks, so calling them inside an open scope is safe. *)

type scope = {
  sc_mark : mark;            (* trail suffix to roll narrowings back to *)
  sc_ncons : int;            (* constraint count to pop back to *)
  sc_was_trailing : bool;    (* outer trail mode to restore *)
}

(** [push_scope s] opens a scope: every subsequent narrowing is recorded
    on the trail until the matching [pop_scope]/[commit_scope]. *)
let push_scope s : scope =
  let sc = { sc_mark = s.trail; sc_ncons = s.ncons; sc_was_trailing = s.trailing } in
  s.trailing <- true;
  sc

(** [pop_scope s sc] rolls back every narrowing and every constraint added
    since [push_scope]: domains are restored from the trail, constraints
    retracted newest-first (the LIFO discipline [pop_cons] requires).
    Cost is proportional to the scope's own footprint, not the store's. *)
let pop_scope s (sc : scope) =
  undo_to s sc.sc_mark;
  while s.ncons > sc.sc_ncons do
    pop_cons s (s.ncons - 1)
  done;
  s.trailing <- sc.sc_was_trailing;
  if not sc.sc_was_trailing then s.trail <- []

(** [commit_scope s sc] keeps the scope's constraints and narrowings and
    restores the outer trail mode — the success path of a pin batch. *)
let commit_scope s (sc : scope) =
  s.trailing <- sc.sc_was_trailing;
  if not sc.sc_was_trailing then s.trail <- []

(* ------------------------------------------------------------------ *)
(* Model search. *)

type model = (int, int) Hashtbl.t

(** [model_byte m i] reads offset [i] from a model; unconstrained bytes
    default to 0. *)
let model_byte (m : model) i = match Hashtbl.find_opt m i with Some v -> v | None -> 0

type solve_result =
  | Sat of model
  | Unsat_result
  | Unknown  (** node budget exhausted *)

exception Budget_exceeded
(** Raised internally when the model-search node budget runs out; distinct
    from any exception used for control flow in fixed-variable checking so
    the two can never be conflated. *)

exception Not_fixed
(* Control flow of [check_fixed]'s environment lookup only. *)

let all_vars s =
  let seen = Hashtbl.create 64 in
  let acc = ref [] in
  for i = 0 to s.ncons - 1 do
    List.iter
      (fun v ->
        if not (Hashtbl.mem seen v) then begin
          Hashtbl.add seen v ();
          acc := v :: !acc
        end)
      (Expr.cond_vars s.cons.(i))
  done;
  List.sort compare !acc

(* Check all constraints whose variables are fully fixed by the domains. *)
let check_fixed s =
  let env i =
    let l, h = dom s i in
    if l = h then l else raise Not_fixed
  in
  let rec go i =
    i >= s.ncons
    || (try Expr.eval_cond env s.cons.(i) with
        | Not_fixed -> true
        | Expr.Symbolic_division_by_zero -> false)
       && go (i + 1)
  in
  go 0

(** [solve ?budget ?deadline ?inject s] searches for a concrete byte
    assignment satisfying every constraint in [s].  The search assigns
    variables smallest-domain first, backtracking via the trail, and
    verifies the final assignment by concrete evaluation.  The store's
    domains are restored on return — including when the [deadline] expires
    mid-search ({!Octo_util.Deadline.Deadline_exceeded} propagates after the
    trail is rolled back).  A fired {!Faultinject.Solver_budget} site
    starves the search: it returns [Unknown] exactly as a spent node budget
    would. *)
let solve ?(budget = 200_000) ?(deadline = Deadline.none) ?(inject = Faultinject.none)
    (s : store) : solve_result =
  Octo_util.Trace.with_span Octo_util.Trace.Solve "model-search" @@ fun () ->
  if Faultinject.fire inject Faultinject.Solver_budget then Unknown
  else begin
  let nodes = ref 0 in
  let vars = List.filter (fun v -> v >= 0) (all_vars s) in
  let exception Found of model in
  let rec go remaining =
    incr nodes;
    if !nodes > budget then raise Budget_exceeded;
    if !nodes land 255 = 0 then Deadline.check deadline ~what:"solver model search";
    (* Select the unfixed variable with the smallest domain. *)
    let unfixed =
      List.filter_map
        (fun v ->
          let l, h = dom s v in
          if l = h then None else Some (v, h - l))
        remaining
    in
    match unfixed with
    | [] ->
        if check_fixed s then begin
          let m = Hashtbl.create 16 in
          List.iter
            (fun v ->
              let l, _ = dom s v in
              Hashtbl.replace m v l)
            vars;
          raise (Found m)
        end
    | _ ->
        let v, _ = List.fold_left (fun (bv, bw) (v, w) -> if w < bw then (v, w) else (bv, bw))
            (List.hd unfixed) (List.tl unfixed)
        in
        let l, h = dom s v in
        (* Ascending scan is fine: domains are at most 256 wide. *)
        for x = l to h do
          let m0 = mark s in
          (match (try set_dom s v (x, x); propagate s; true with Unsat_exn -> false) with
          | true -> go remaining
          | false -> ());
          undo_to s m0
        done
  in
  let was = s.trailing in
  s.trailing <- true;
  let m0 = mark s in
  let restore () =
    undo_to s m0;
    s.trailing <- was;
    Octo_util.Metrics.add Octo_util.Metrics.Solver_nodes !nodes
  in
  match go vars with
  | () ->
      restore ();
      Unsat_result
  | exception Found m ->
      restore ();
      Sat m
  | exception Budget_exceeded ->
      restore ();
      Unknown
  | exception Unsat_exn ->
      restore ();
      Unsat_result
  | exception e ->
      (* Deadline expiry (or any unexpected exception): leave the store
         clean before propagating. *)
      restore ();
      raise e
  end

(** [sat ?budget ?deadline s extra] checks satisfiability of [s] plus the
    extra constraints without mutating [s]. *)
let sat ?budget ?deadline (s : store) (extra : Expr.cond list) : solve_result =
  let s' = copy s in
  let ok = List.for_all (fun c -> add s' c = Ok) extra in
  if not ok then Unsat_result else solve ?budget ?deadline s'

(** [unsat_core ?solve_budget ?max_constraints cs] minimizes an
    unsatisfiable constraint set by greedy deletion: every constraint is
    tried for removal once, in order, and dropped iff the remainder is
    still refutable.  Refutability is checked first at propagation level
    (some [add] into a fresh store returns [Unsat] — the common case for
    P3 pin conflicts, and cheap) and then, for sets only the model search
    can refute, by a [solve] bounded at [solve_budget] nodes, where
    [Unknown] conservatively counts as "not refuted" (the constraint is
    kept).  Returns [] when the input set is not detectably unsatisfiable
    within the budgets, or when it exceeds [max_constraints] (the pass is
    quadratic).  Deterministic: the core preserves input order and
    depends only on the input list. *)
let unsat_core ?(solve_budget = 20_000) ?(max_constraints = 400) (cs : Expr.cond list) :
    Expr.cond list =
  let refuted set =
    let s = create () in
    let rec add_all = function
      | [] -> false
      | c :: rest -> ( match add s c with Unsat -> true | Ok -> add_all rest)
    in
    add_all set
    || (match solve ~budget:solve_budget s with
       | Unsat_result -> true
       | Sat _ | Unknown -> false)
  in
  let n = List.length cs in
  if n = 0 || n > max_constraints || not (refuted cs) then []
  else begin
    let arr = Array.of_list cs in
    let keep = Array.make n true in
    let without i =
      let acc = ref [] in
      for j = n - 1 downto 0 do
        if keep.(j) && j <> i then acc := arr.(j) :: !acc
      done;
      !acc
    in
    for i = 0 to n - 1 do
      if refuted (without i) then keep.(i) <- false
    done;
    let acc = ref [] in
    for j = n - 1 downto 0 do
      if keep.(j) then acc := arr.(j) :: !acc
    done;
    !acc
  end
