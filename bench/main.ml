(* Benchmark harness: regenerates every table of the paper's evaluation
   (§V).  Run with no arguments for everything, or with a subset of
   [table2 table3 table4 table5 micro] to select.

   - Table II : verification results of OCTOPOCS on the 15 pairs
   - Table III: context-aware vs context-free taint analysis (pairs 1-9)
   - Table IV : naive vs directed symbolic execution (pairs 7-9)
   - Table V  : AFLFast / AFLGo / OCTOPOCS elapsed time (pairs 7-9)
   - micro    : Bechamel micro-benchmarks, one per table's core operation
   - chaos    : resilience harness — the 15-pair batch under N seeded
                fault-injection schedules (only when named explicitly;
                options: --schedules N, --chaos-seed S) *)

module Registry = Octo_targets.Registry
module Taint = Octo_taint.Taint
module Naive = Octo_symex.Naive
module Directed = Octo_symex.Directed
module Cfg = Octo_cfg.Cfg
module Clone = Octo_clone.Clone
module Aflfast = Octo_fuzz.Aflfast
module Aflgo = Octo_fuzz.Aflgo
module F = Octo_formats.Formats
module B = Octo_util.Bytes_util
module Faultinject = Octo_util.Faultinject

let say fmt = Format.printf (fmt ^^ "@.")
let hr () = say "%s" (String.make 78 '-')

let alloc_mb f =
  let before = Gc.allocated_bytes () in
  let r = f () in
  (r, (Gc.allocated_bytes () -. before) /. 1_048_576.)

(* ------------------------------------------------------------------ *)

let table2 () =
  say "";
  say "TABLE II: Vulnerability verification results of OCTOPOCS";
  hr ();
  say "%-4s %-22s %-22s %-20s %-8s %-5s %-6s %-9s" "Idx" "S" "T" "Vuln ID" "CWE" "poc'"
    "Verif" "Type";
  hr ();
  let matches = ref 0 in
  List.iter
    (fun (c : Registry.case) ->
      let r = Octopocs.run ~s:c.s ~t:c.t ~poc:c.poc () in
      let poc_gen = match r.verdict with Octopocs.Triggered _ -> "O" | _ -> "X" in
      let verified =
        match r.verdict with
        | Octopocs.Failure _ -> "X"
        | Octopocs.Triggered _ | Octopocs.Not_triggerable _ -> "O"
      in
      let cls = Octopocs.verdict_class r.verdict in
      let expected = Registry.expected_to_string c.expected in
      if cls = expected then incr matches;
      say "%-4d %-22s %-22s %-20s %-8s %-5s %-6s %-9s %s" c.idx
        (Printf.sprintf "%s %s" c.s.pname c.s_version)
        (Printf.sprintf "%s %s" c.t.pname c.t_version)
        c.vuln_id c.cwe poc_gen verified cls
        (if cls = expected then "" else Printf.sprintf "(paper: %s)" expected))
    Registry.all;
  hr ();
  say "paper: 6 Type-I, 3 Type-II, 5 Type-III, 1 Failure; ours match %d/15" !matches

(* ------------------------------------------------------------------ *)

let table3 () =
  say "";
  say "TABLE III: Effectiveness of context-aware taint analysis (pairs 1-9)";
  hr ();
  say "%-4s %-22s %-22s %-14s %-14s" "Idx" "S" "T" "Plain taint" "Context-aware";
  hr ();
  let verdict_mark (r : Octopocs.report) =
    match r.verdict with Octopocs.Triggered _ -> "O" | _ -> "X"
  in
  List.iter
    (fun (c : Registry.case) ->
      let plain =
        Octopocs.run
          ~config:{ Octopocs.default_config with taint_mode = Taint.Plain }
          ~s:c.s ~t:c.t ~poc:c.poc ()
      in
      let aware = Octopocs.run ~s:c.s ~t:c.t ~poc:c.poc () in
      say "%-4d %-22s %-22s %-14s %-14s" c.idx c.s.pname c.t.pname (verdict_mark plain)
        (verdict_mark aware))
    Registry.table3_cases;
  hr ();
  say "paper: plain taint fails (X) on Idx 3, 4, 9; context-aware succeeds on all"

(* ------------------------------------------------------------------ *)

let symex_ep (c : Registry.case) = c.vuln_func

let table4 () =
  say "";
  say "TABLE IV: Effectiveness of directed symbolic execution (reach ep)";
  hr ();
  say "%-14s %-16s | %-22s %-10s | %-10s %-10s" "S" "T" "SE time(s)" "SE MB" "D-SE t(s)"
    "D-SE MB";
  hr ();
  List.iter
    (fun (c : Registry.case) ->
      let ep = symex_ep c in
      let t0 = Unix.gettimeofday () in
      let (naive_out, _), naive_mb = alloc_mb (fun () -> Naive.run c.t ~ep) in
      let naive_t = Unix.gettimeofday () -. t0 in
      let naive_cell =
        match naive_out with
        | Naive.Reached _ -> Printf.sprintf "%.3f" naive_t
        | Naive.Mem_error n -> Printf.sprintf "MemError(%d states)" n
        | Naive.Exhausted -> "N/A(dead)"
        | Naive.Step_limit -> "N/A(steps)"
      in
      let naive_mem_cell =
        match naive_out with
        | Naive.Mem_error _ -> "MemError"
        | _ -> Printf.sprintf "%.1f" naive_mb
      in
      let cfg = Cfg.build c.t ~ep in
      let stop_at_first _st ~count:_ ~args:_ ~file_pos:_ = Directed.Stop in
      let t1 = Unix.gettimeofday () in
      let (dir_out, _stats), dir_mb =
        alloc_mb (fun () -> Directed.run c.t ~ep ~cfg ~on_ep:stop_at_first)
      in
      let dir_t = Unix.gettimeofday () -. t1 in
      let dir_cell =
        match dir_out with
        | Directed.Reached _ -> Printf.sprintf "%.4f" dir_t
        | Directed.Failed f -> Fmt.str "failed(%a)" Directed.pp_failure f
      in
      say "%-14s %-16s | %-22s %-10s | %-10s %-10.2f" c.s.pname c.t.pname naive_cell
        naive_mem_cell dir_cell dir_mb)
    Registry.table45_cases;
  hr ();
  say "paper shape: naive SE succeeds only on opj_dump, MemErrors on MuPDF and";
  say "gif2png; directed SE succeeds on all three, opj_dump < MuPDF < gif2png"

(* ------------------------------------------------------------------ *)

(* Fuzzer seed corpora: the smallest file each T accepts, plus the original
   PoC (which T typically rejects) — standard minimal-valid seeding. *)
let fuzz_seeds (c : Registry.case) =
  let minimal =
    match c.t.pname with
    | "opj_dump_211" -> F.Mj2k.raw_file []
    | "mupdf" ->
        (* magic, version byte, empty hint table, end object *)
        B.concat [ F.Mpdf.magic; B.of_int_list [ 0x00; 0x00 ]; B.of_int_list [ F.Mpdf.o_end ] ]
    | "gif2png_strict" ->
        (* The version check and palette checksum force 32 palette
           entries; grayscale entries are 2 bytes each. *)
        let palette = B.concat (List.init 32 (fun _ -> B.of_int_list [ 0x00; 0x77 ])) in
        B.concat
          [
            F.Mgif.magic; "87a"; B.of_int_list [ 32 ]; palette;
            B.of_int_list [ F.Mgif.b_trailer ];
          ]
    | _ -> c.poc
  in
  [ minimal; c.poc ]

let table5 ?(budget = 120_000) () =
  say "";
  say "TABLE V: Elapsed time for verifying the propagated vulnerability";
  say "(fuzzer budget: %d execs, standing in for the paper's 20 h)" budget;
  hr ();
  say "%-14s %-16s | %-18s %-18s %-12s" "S" "T" "AFLFast" "AFLGo" "OCTOPOCS";
  hr ();
  List.iter
    (fun (c : Registry.case) ->
      let ell = Clone.ell_names (Clone.shared_functions c.s c.t) in
      let seeds = fuzz_seeds c in
      let fast =
        let r =
          Aflfast.run ~config:{ Aflfast.default_config with max_execs = budget } c.t ~seeds
            ~crash_in:ell
        in
        match r.crash_input with
        | Some _ -> Printf.sprintf "%.1fs (%d ex)" r.elapsed_s r.execs
        | None -> Printf.sprintf "N/A (%d ex)" r.execs
      in
      let go =
        match
          Aflgo.run ~config:{ Aflgo.default_config with max_execs = budget } c.t
            ~target:(symex_ep c) ~seeds ~crash_in:ell
        with
        | r -> (
            match r.crash_input with
            | Some _ -> Printf.sprintf "%.1fs (%d ex)" r.elapsed_s r.execs
            | None -> Printf.sprintf "N/A (%d ex)" r.execs)
        | exception Aflgo.Aflgo_error _ -> "Error"
      in
      let octo =
        let r = Octopocs.run ~s:c.s ~t:c.t ~poc:c.poc () in
        match r.verdict with
        | Octopocs.Triggered _ -> Printf.sprintf "%.2fs" r.elapsed_s
        | _ -> "failed"
      in
      say "%-14s %-16s | %-18s %-18s %-12s" c.s.pname c.t.pname fast go octo)
    Registry.table45_cases;
  hr ();
  say "paper shape: OCTOPOCS verifies all three; AFLFast verifies only gif2png";
  say "within budget; AFLGo errors on MuPDF and verifies none"

(* ------------------------------------------------------------------ *)

(* Ablations beyond the paper's tables, for the design choices DESIGN.md
   calls out. *)

let ablations () =
  say "";
  say "ABLATION A: taint granularity (paper §IV-A's byte-level choice)";
  hr ();
  say "%-4s %-16s %-18s | %-22s %-22s" "Idx" "S" "T" "Byte-level taint" "Word-level taint";
  hr ();
  List.iter
    (fun idx ->
      let c = Registry.find idx in
      let cell g =
        let config = { Octopocs.default_config with taint_granularity = g } in
        let r = Octopocs.run ~config ~s:c.s ~t:c.t ~poc:c.poc () in
        match r.verdict with
        | Octopocs.Triggered { poc'; _ } -> Printf.sprintf "O (%d-byte poc')" (String.length poc')
        | Octopocs.Not_triggerable _ -> "X (reported safe)"
        | Octopocs.Failure _ -> "X (failed)"
      in
      say "%-4d %-16s %-18s | %-22s %-22s" c.idx c.s.pname c.t.pname (cell Taint.Byte_level)
        (cell Taint.Word_level))
    [ 1; 5; 7; 8; 9 ];
  hr ();
  say "observed: word-level taint over-approximates — bunches drag in aligned";
  say "neighbour bytes and every poc' grows accordingly; byte-level taint (the";
  say "paper's §IV-A choice) keeps the primitives minimal";
  say "";
  say "ABLATION B: loop-state iteration cap θ (paper §IV-B sets θ = 120)";
  hr ();
  say "%-8s %-12s %-10s %-14s" "theta" "verdict" "runs" "loop retries";
  hr ();
  let c = Registry.find 9 in
  List.iter
    (fun theta ->
      let config =
        { Octopocs.default_config with
          symex = { Octo_symex.Directed.default_config with theta } }
      in
      let r = Octopocs.run ~config ~s:c.s ~t:c.t ~poc:c.poc () in
      let runs, retries =
        match r.symex with Some s -> (s.runs, s.loop_retries) | None -> (0, 0)
      in
      say "%-8d %-12s %-10d %-14d" theta (Octopocs.verdict_class r.verdict) runs retries)
    [ 4; 16; 31; 32; 64; 120 ];
  hr ();
  say "expected: gif2png_strict needs exactly 32 loop iterations, so any";
  say "theta >= 32 verifies and smaller caps give up";
  say "";
  say "ABLATION C: static vs dynamic CFG on the Failure pair (paper §V-B";
  say "predicts Idx-15 verifies once the CFG defect is fixed)";
  hr ();
  let c15 = Registry.find 15 in
  let static_r = Octopocs.run ~s:c15.s ~t:c15.t ~poc:c15.poc () in
  say "static CFG (paper's setup) : %s" (Fmt.str "%a" Octopocs.pp_verdict static_r.verdict);
  let dyn_r =
    Octopocs.run
      ~config:{ Octopocs.default_config with dynamic_cfg = true }
      ~s:c15.s ~t:c15.t ~poc:c15.poc ()
  in
  say "dynamic CFG + devirt       : %s" (Fmt.str "%a" Octopocs.pp_verdict dyn_r.verdict);
  hr ()

(* ------------------------------------------------------------------ *)

let micro () =
  say "";
  say "Bechamel micro-benchmarks (core operation of each table)";
  let open Bechamel in
  let open Toolkit in
  let c1 = Registry.find 1 in
  let c7 = Registry.find 7 in
  let tests =
    [
      Test.make ~name:"table2:pipeline-pair1"
        (Staged.stage (fun () -> ignore (Octopocs.run ~s:c1.s ~t:c1.t ~poc:c1.poc ())));
      Test.make ~name:"table3:taint-extraction"
        (Staged.stage (fun () -> ignore (Taint.extract c1.s ~poc:c1.poc ~ep:c1.vuln_func)));
      Test.make ~name:"table4:directed-symex-pair7"
        (Staged.stage (fun () ->
             let cfg = Cfg.build_cached c7.t ~ep:c7.vuln_func in
             ignore
               (Directed.run c7.t ~ep:c7.vuln_func ~cfg
                  ~on_ep:(fun _ ~count:_ ~args:_ ~file_pos:_ -> Directed.Stop))));
      Test.make ~name:"table5:fuzz-500-execs"
        (Staged.stage (fun () ->
             ignore
               (Aflfast.run
                  ~config:{ Aflfast.default_config with max_execs = 500 }
                  c7.t ~seeds:(fuzz_seeds c7) ~crash_in:[ c7.vuln_func ])));
    ]
  in
  let benchmark test =
    let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
    let instance = Instance.monotonic_clock in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.8) ~kde:(Some 10) () in
    let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
    let results = Analyze.all ols instance raw in
    Hashtbl.iter
      (fun name result ->
        match Analyze.OLS.estimates result with
        | Some [ est ] -> say "  %-32s %14.1f ns/run" name est
        | _ -> say "  %-32s (no estimate)" name)
      results
  in
  List.iter benchmark tests

(* ------------------------------------------------------------------ *)

(* Machine-readable solver/engine benchmark: emits BENCH_solver.json so the
   perf trajectory survives across PRs.  The "seed" block holds the numbers
   measured on the pre-overhaul engine (assoc-list store, full
   re-propagation, copy-per-candidate search, serial runner) on the same
   workloads; "current" is re-measured on every run. *)

module Solve = Octo_solver.Solve
module Expr = Octo_solver.Expr

let time_ns ?(reps = 1) n f =
  (* Best of [reps] timing runs of [n] iterations, in ns/iteration. *)
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n do
      ignore (Sys.opaque_identity (f ()))
    done;
    let per = (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int n in
    if per < !best then best := per
  done;
  !best

(* Workloads match the ones used to record the seed numbers. *)
let bench_add () =
  (* 128 adds over 64 variables: the store shape of a long parser path. *)
  time_ns ~reps:3 200 (fun () ->
      let s = Solve.create () in
      for i = 0 to 63 do
        ignore (Solve.add s { Expr.rel = Octo_vm.Isa.Le; lhs = Expr.byte i; rhs = Expr.const (255 - i) });
        ignore (Solve.add s { Expr.rel = Octo_vm.Isa.Ge; lhs = Expr.byte i; rhs = Expr.const 1 })
      done)
  /. 128.

let bench_propagate () =
  (* One extra add against an already-populated 128-constraint store:
     isolates incremental propagation cost. *)
  let base = Solve.create () in
  for i = 0 to 63 do
    ignore (Solve.add base { Expr.rel = Octo_vm.Isa.Le; lhs = Expr.byte i; rhs = Expr.const (255 - i) });
    ignore (Solve.add base { Expr.rel = Octo_vm.Isa.Ge; lhs = Expr.byte i; rhs = Expr.const 1 })
  done;
  time_ns ~reps:3 500 (fun () ->
      let s = Solve.copy base in
      Solve.add s { Expr.rel = Octo_vm.Isa.Lt; lhs = Expr.byte 32; rhs = Expr.const 100 })

let bench_solve () =
  time_ns ~reps:3 50 (fun () ->
      let s = Solve.create () in
      let w = Expr.bin Octo_vm.Isa.Or (Expr.byte 0) (Expr.bin Octo_vm.Isa.Shl (Expr.byte 1) (Expr.const 8)) in
      ignore (Solve.add s { Expr.rel = Octo_vm.Isa.Eq; lhs = w; rhs = Expr.const 0x8000 });
      for i = 2 to 17 do
        ignore (Solve.add s { Expr.rel = Octo_vm.Isa.Ge; lhs = Expr.byte i; rhs = Expr.const 200 })
      done;
      Solve.solve s)

let bench_pipeline_pair1 () =
  let c1 = Registry.find 1 in
  time_ns ~reps:3 200 (fun () -> Octopocs.run ~s:c1.s ~t:c1.t ~poc:c1.poc ())

let bench_directed_pair7 () =
  let c7 = Registry.find 7 in
  time_ns ~reps:3 500 (fun () ->
      let cfg = Cfg.build_cached c7.t ~ep:c7.vuln_func in
      Directed.run c7.t ~ep:c7.vuln_func ~cfg
        ~on_ep:(fun _ ~count:_ ~args:_ ~file_pos:_ -> Directed.Stop))

let bench_table2 ~jobs =
  let batch =
    List.map
      (fun (c : Registry.case) ->
        Octopocs.job ~label:(string_of_int c.idx) ~s:c.s ~t:c.t ~poc:c.poc ())
      Registry.all
  in
  (* Repeat the 15-pair batch to stabilise the wall-clock measurement. *)
  let reps = 8 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    ignore (Sys.opaque_identity (Octopocs.run_all ~jobs batch))
  done;
  (Unix.gettimeofday () -. t0) /. float_of_int reps

(* Numbers measured on the seed engine (commit 8c76129) with the workloads
   above, on the reference container.  Kept verbatim so speedups are always
   reported against the same baseline. *)
let seed_numbers =
  [
    ("solver_add_ns", 157565.0);
    ("solver_propagate_ns", 157565.0);  (* seed add == full re-propagation *)
    ("solver_solve_ns", 2458301.0);
    ("table2_pipeline_pair1_ns", 638173.0);
    ("table4_directed_symex_pair7_ns", 44283.8);
    ("table2_serial_s", 0.202);
  ]

let bench_json () =
  say "";
  say "Engine benchmark (machine-readable -> BENCH_solver.json)";
  hr ();
  let current =
    [
      ("solver_add_ns", bench_add ());
      ("solver_propagate_ns", bench_propagate ());
      ("solver_solve_ns", bench_solve ());
      ("table2_pipeline_pair1_ns", bench_pipeline_pair1 ());
      ("table4_directed_symex_pair7_ns", bench_directed_pair7 ());
    ]
  in
  let serial_s = bench_table2 ~jobs:1 in
  let cores = Domain.recommended_domain_count () in
  let eff = Octo_util.Pool.effective_jobs 4 in
  (* On a single-core machine the pool clamps --jobs to 1, so a "parallel"
     run would measure clamping overhead, not speedup: skip it and record
     why, rather than publishing a meaningless ~1.0x number. *)
  let parallel_s = if cores < 2 then None else Some (bench_table2 ~jobs:4) in
  let current =
    current
    @ [ ("table2_serial_s", serial_s) ]
    @ (match parallel_s with Some p -> [ ("table2_parallel4_s", p) ] | None -> [])
    @ [ ("cores", float_of_int cores); ("effective_jobs_of_4", float_of_int eff) ]
  in
  List.iter (fun (k, v) -> say "  %-34s %14.1f" k v) current;
  (match parallel_s with
  | Some p -> say "  %-34s %14.2fx" "parallel_speedup_4j" (serial_s /. p)
  | None ->
      say "  %-34s %14s" "parallel_speedup_4j" "skipped";
      say "  (single-core machine: the pool clamps --jobs to 1, so the";
      say "   parallel run would measure clamping overhead, not speedup)");
  (* With --trace the bench process has metrics collection on: entries
     carry a per-phase breakdown of one pipeline-pair1 run, so the JSON
     answers "where did the time go" and not just "how much". *)
  let phase_block =
    if not (Octo_util.Metrics.is_on ()) then []
    else begin
      let c1 = Registry.find 1 in
      let _, snap =
        Octo_util.Metrics.scoped (fun () -> Octopocs.run ~s:c1.s ~t:c1.t ~poc:c1.poc ())
      in
      match snap with
      | None -> []
      | Some m ->
          let fields =
            List.map
              (fun p ->
                Printf.sprintf "    \"%s_ns\": %d" (Octo_util.Metrics.phase_name p)
                  (Octo_util.Metrics.phase_total_ns m p))
              Octo_util.Metrics.all_phases
          in
          [ "  \"phases_pipeline_pair1\": {"; String.concat ",\n" fields; "  }," ]
    end
  in
  let field (k, v) = Printf.sprintf "    %S: %.1f" k v in
  let speedups =
    List.filter_map
      (fun (k, seed) ->
        match List.assoc_opt k current with
        | Some cur when cur > 0. -> Some (Printf.sprintf "    %S: %.2f" k (seed /. cur))
        | _ -> None)
      seed_numbers
  in
  let json =
    String.concat "\n"
      ([ "{"; "  \"schema\": \"octopocs-bench-solver/1\"," ]
      @ phase_block
      @ [ "  \"seed\": {" ]
      @ [ String.concat ",\n" (List.map field seed_numbers) ]
      @ [ "  },"; "  \"current\": {" ]
      @ [ String.concat ",\n" (List.map field current) ]
      @ [ "  },"; "  \"speedup_vs_seed\": {" ]
      @ [ String.concat ",\n" speedups ]
      @ [ "  }," ]
      @ (match parallel_s with
        | Some p -> [ Printf.sprintf "  \"parallel_speedup_4j\": %.2f" (serial_s /. p) ]
        | None ->
            [
              "  \"parallel_speedup_4j\": null,";
              "  \"parallel_skipped_reason\": \"single-core machine (pool clamps --jobs to 1)\"";
            ])
      @ [ "}"; "" ])
  in
  let oc = open_out "BENCH_solver.json" in
  output_string oc json;
  close_out oc;
  say "wrote BENCH_solver.json"

(* ------------------------------------------------------------------ *)

(* Perf-history ledger + regression gate.

   [bench] appends one flat JSON line per run to BENCH_history.jsonl: the
   per-pair DETERMINISTIC work counters (vm steps, solver nodes, constraint
   adds, states forked/pruned — pure functions of the pair and the default
   config, identical on any machine) plus wall-clock timings (machine-
   dependent, recorded for trend-reading only).

   [gate] re-measures the deterministic counters and compares them against
   the LAST committed entry: any counter more than 10% above its baseline
   fails the gate (exit 1).  Timings are printed but never gate — CI
   machines are too noisy for wall-clock assertions, while the counters
   catch real regressions (a solver that suddenly visits 2x the nodes)
   bit-exactly. *)

module Metrics = Octo_util.Metrics

let history_path = "BENCH_history.jsonl"

(* The deterministic counters and their flat-key suffixes. *)
let history_counters =
  [
    (Metrics.Vm_steps, "vm_steps");
    (Metrics.Solver_nodes, "solver_nodes");
    (Metrics.Constraint_adds, "constraint_adds");
    (Metrics.Symex_states_forked, "states_forked");
    (Metrics.Symex_states_pruned, "states_pruned");
  ]

(* Run the 15 pairs serially with metrics on; every report carries its own
   per-pair counter delta.  Returns (deterministic fields, timing fields),
   keys flat like "p7_solver_nodes" / "p7_elapsed_ms". *)
let history_fields () =
  let was_on = Metrics.is_on () in
  if not was_on then Metrics.enable ();
  let t0 = Unix.gettimeofday () in
  let rows =
    List.map
      (fun (c : Registry.case) -> (c.idx, Octopocs.run ~s:c.s ~t:c.t ~poc:c.poc ()))
      Registry.all
  in
  let total_s = Unix.gettimeofday () -. t0 in
  if not was_on then Metrics.disable ();
  let det =
    List.concat_map
      (fun (idx, (r : Octopocs.report)) ->
        match r.metrics with
        | None -> []
        | Some m ->
            List.map
              (fun (c, key) ->
                (Printf.sprintf "p%d_%s" idx key, float_of_int (Metrics.counter_value m c)))
              history_counters)
      rows
  in
  let timings =
    List.map
      (fun (idx, (r : Octopocs.report)) ->
        (Printf.sprintf "p%d_elapsed_ms" idx, r.elapsed_s *. 1000.))
      rows
    @ [ ("total_elapsed_s", total_s) ]
  in
  (det, timings)

(* Scan-detection counters: a detection-only clone scan over the gen:40:42
   corpus plus 3 seeded decoys.  Retrieval, confirmation and ground-truth
   tallies are pure functions of (seed, params) — identical on any
   machine — so they gate alongside the per-pair counters.  The elapsed
   time rides along as a non-gating timing. *)
let scan_history_keys =
  [ "scan_retrieved"; "scan_confirmed"; "scan_rejected"; "scan_gt"; "scan_tp"; "scan_postings" ]

let scan_history_fields () =
  let module Scan = Octo_targets.Scan in
  let t0 = Unix.gettimeofday () in
  let src = Octo_targets.Source.generated ~seed:42 ~count:40 () in
  let probes, targets = Scan.of_source src in
  let n_decoys = 3 in
  let targets = targets @ Scan.decoy_targets ~seed:7 ~count:n_decoys in
  let r = Scan.run ~probes ~targets ~n_decoys () in
  let ms = (Unix.gettimeofday () -. t0) *. 1000. in
  let det =
    [
      ("scan_retrieved", float_of_int r.Scan.n_retrieved);
      ("scan_confirmed", float_of_int (List.length r.Scan.candidates));
      ("scan_rejected", float_of_int r.Scan.n_rejected);
      ("scan_gt", float_of_int (List.length r.Scan.gt));
      ("scan_tp", float_of_int r.Scan.n_tp);
      ("scan_postings", float_of_int r.Scan.index_postings);
    ]
  in
  let pairs = r.Scan.n_probes * r.Scan.n_targets in
  say "scan: gen:40:42 + %d decoys — %d probe-target pairs, %d confirmed of %d retrieved in %.0f ms (%.0f pairs/s)"
    n_decoys pairs (List.length r.Scan.candidates) r.Scan.n_retrieved ms
    (float_of_int pairs /. Float.max (ms /. 1000.) 1e-9);
  (det, [ ("scan_elapsed_ms", ms) ])

let bench_history () =
  say "";
  say "Perf history (deterministic counters + timings -> %s)" history_path;
  hr ();
  let det, timings = history_fields () in
  let sdet, stimings = scan_history_fields () in
  let det = det @ sdet and timings = timings @ stimings in
  let field (k, v) =
    if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%S: %.0f" k v
    else Printf.sprintf "%S: %.3f" k v
  in
  let line =
    "{" ^ String.concat ", " (List.map field (det @ timings)) ^ "}"
  in
  let oc = open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 history_path in
  output_string oc (line ^ "\n");
  close_out oc;
  say "appended %d deterministic counters + %d timings to %s" (List.length det)
    (List.length timings) history_path

(* Hand-rolled flat-object scanner ("key": number pairs) — the container has
   no JSON library and the history lines are flat by construction. *)
let parse_history_line (s : string) : (string * float) list =
  let n = String.length s in
  let fields = ref [] in
  let i = ref 0 in
  (try
     while !i < n do
       while !i < n && s.[!i] <> '"' do incr i done;
       if !i >= n then raise Exit;
       let k0 = !i + 1 in
       let j = ref k0 in
       while !j < n && s.[!j] <> '"' do incr j done;
       if !j >= n then raise Exit;
       let key = String.sub s k0 (!j - k0) in
       i := !j + 1;
       while !i < n && (s.[!i] = ':' || s.[!i] = ' ') do incr i done;
       let v0 = !i in
       let num = function '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false in
       while !i < n && num s.[!i] do incr i done;
       if !i > v0 then
         match float_of_string_opt (String.sub s v0 (!i - v0)) with
         | Some v -> fields := (key, v) :: !fields
         | None -> ()
     done
   with Exit -> ());
  List.rev !fields

let last_history_line path =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in path in
    let last = ref None in
    (try
       while true do
         let l = input_line ic in
         if String.trim l <> "" then last := Some l
       done
     with End_of_file -> ());
    close_in ic;
    !last
  end

let is_deterministic_key k =
  List.mem k scan_history_keys
  || List.exists
       (fun (_, suffix) ->
         let sl = String.length suffix and kl = String.length k in
         kl > sl && String.sub k (kl - sl) sl = suffix)
       history_counters

(* Telemetry must not move the pipeline: pair 1's deterministic counter
   deltas have to be identical with the sampler off and on (enabled into
   a throwaway journal), and the disabled [tick] must stay at its
   documented one-Atomic.get budget.  Counter diffs count as gate
   regressions. *)
module Telemetry = Octo_util.Telemetry

let telemetry_overhead_gate () =
  let counters_of () =
    let was_on = Metrics.is_on () in
    if not was_on then Metrics.enable ();
    let c1 = Registry.find 1 in
    let r = Octopocs.run ~s:c1.s ~t:c1.t ~poc:c1.poc () in
    if not was_on then Metrics.disable ();
    match r.Octopocs.metrics with
    | None -> []
    | Some m -> List.map (fun (c, k) -> (k, Metrics.counter_value m c)) history_counters
  in
  let off = counters_of () in
  let path = Filename.temp_file "octo_bench_telemetry" ".jrnl" in
  Telemetry.enable ~path ();
  let on = counters_of () in
  Telemetry.disable ();
  (try Sys.remove path with Sys_error _ -> ());
  let diffs = List.filter (fun (k, v) -> List.assoc_opt k on <> Some v) off in
  List.iter
    (fun (k, v) ->
      say "  REGRESSION telemetry perturbs %s: %d (disabled) vs %s (enabled)" k v
        (match List.assoc_opt k on with Some v' -> string_of_int v' | None -> "-"))
    diffs;
  let n = 1_000_000 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to n do
    Telemetry.tick (fun () -> assert false)
  done;
  let per_ns = (Unix.gettimeofday () -. t0) /. float_of_int n *. 1e9 in
  say "gate: telemetry disabled tick %.1f ns/call; pair-1 counters %s under sampling"
    per_ns
    (if diffs = [] then "unchanged" else "PERTURBED");
  List.length diffs

(* Returns the number of regressions (CI fails on > 0). *)
let bench_gate () =
  say "";
  say "Perf-regression gate (deterministic counters vs last %s entry)" history_path;
  hr ();
  match last_history_line history_path with
  | None ->
      (* A missing baseline is a bootstrap state, not a regression: record
         one now so the next gate run has something to compare against,
         and tell the operator exactly what to do with it. *)
      say "gate: no baseline in %s — recording one now; commit %s to arm the gate"
        history_path history_path;
      bench_history ();
      telemetry_overhead_gate ()
  | Some line ->
      let baseline = List.filter (fun (k, _) -> is_deterministic_key k) (parse_history_line line) in
      if baseline = [] then begin
        say "gate: last %s entry carries no deterministic counters" history_path;
        1
      end
      else begin
        let det, timings = history_fields () in
        let sdet, stimings = scan_history_fields () in
        let det = det @ sdet and timings = timings @ stimings in
        let regressions = ref 0 in
        let improved = ref 0 and unchanged = ref 0 and fresh = ref 0 in
        List.iter
          (fun (k, cur) ->
            match List.assoc_opt k baseline with
            | None -> incr fresh
            | Some base ->
                if cur > (base *. 1.10) +. 1e-9 then begin
                  incr regressions;
                  say "  REGRESSION %-24s %10.0f vs baseline %10.0f (+%.1f%% > 10%%)" k cur
                    base (((cur /. Float.max base 1.) -. 1.) *. 100.)
                end
                else if cur < base then incr improved
                else incr unchanged)
          det;
        List.iter
          (fun (k, _base) ->
            if not (List.mem_assoc k det) then
              say "  note: baseline counter %s no longer measured" k)
          baseline;
        say "gate: %d counters checked — %d regression(s), %d improved, %d unchanged, %d new"
          (List.length det) !regressions !improved !unchanged !fresh;
        (match List.assoc_opt "total_elapsed_s" timings with
        | Some t -> say "gate: total elapsed %.3fs (timings are non-gating)" t
        | None -> ());
        !regressions + telemetry_overhead_gate ()
      end

(* ------------------------------------------------------------------ *)

(* Chaos harness: run the full 15-pair batch under [schedules] seeded
   fault-injection schedules.  Every schedule gets one derived seed; every
   pair gets one independent injector derived from that seed and the pair
   index, so the fault pattern is a pure function of (master seed, schedule,
   pair) — in particular it does not depend on which worker domain picks up
   which job.  Each schedule is run twice on fresh injectors and the two
   verdict tables must agree byte-for-byte; any incomplete batch, label
   disorder or divergence counts as a violation.

   On top of the replay check, every schedule exercises the durable run
   layer: the batch is run once journaled end-to-end (the reference), then
   again interrupted after K pairs — the journal's own torn-write fault
   site armed, plus raw garbage appended to simulate dying mid-frame — and
   resumed.  The resumed journal must decode to exactly the reference's
   verdict set (poc' bytes and degradation rungs included). *)

module Journal = Octo_util.Journal
module Source = Octo_targets.Source

(* Corpus-scale chaos: stream a generated corpus through the sharded run
   layer with the worker-crash site armed hot enough to push pairs past
   the retry budget, and prove three properties the ISSUE-level batch
   cannot: (1) two identical streamed runs agree byte-for-byte on the
   merged verdict table AND the quarantine set; (2) a run killed after K
   pairs — with torn tails planted on several shards at once — resumes to
   exactly the uninterrupted run's merged state; (3) the in-flight window
   bound holds.  Returns the violation count. *)
let chaos_corpus ~seed () =
  say "";
  say "CHAOS corpus: sharded streaming run (4 shards), kill/resume + quarantine";
  hr ();
  let violations = ref 0 in
  let violate fmt = Printf.ksprintf (fun m -> incr violations; say "  VIOLATION: %s" m) fmt in
  let count = 60 and shards = 4 and jobs = 4 and retries = 1 in
  let poison = 0.3 in
  let config_of label =
    let inject =
      Faultinject.create ~rate:0.0
        ~site_rates:[ (Faultinject.Worker_crash, poison) ]
        ~seed:(Faultinject.seed_for ~seed label) ()
    in
    { Octopocs.default_config with inject; deadline_s = Some 30.0 }
  in
  let with_dir f =
    let dir = Filename.temp_file "octochaos-corpus" ".d" in
    Sys.remove dir;
    let rec rm p =
      if Sys.file_exists p then
        if Sys.is_directory p then begin
          Array.iter (fun n -> rm (Filename.concat p n)) (Sys.readdir p);
          Unix.rmdir p
        end
        else Sys.remove p
    in
    Fun.protect ~finally:(fun () -> rm dir) (fun () -> f dir)
  in
  let qpath_of dir = Filename.concat dir "quarantine.jrnl" in
  (* One streamed run over the corpus prefix [0, upto): settled verdicts
     into the shard their key routes to, exhausted pairs into the
     quarantine journal.  [resume] skips pairs already settled or
     quarantined in [dir].  Fresh injectors per call — determinism is
     seed-to-verdicts, never object reuse. *)
  let run_streamed ~dir ~resume ~upto () =
    let w, skip =
      if resume then begin
        let w, recovered = Journal.Sharded.open_resume ~dir ~shards () in
        ( w,
          Array.to_list recovered |> List.concat
          |> List.filter_map Octopocs.decode_result
          |> List.map (fun (l, _, _) -> l) )
      end
      else (Journal.Sharded.create ~dir ~shards (), [])
    in
    let qw, qrecords = Journal.open_resume ~path:(qpath_of dir) () in
    let skip = skip @ List.filter_map
        (fun p -> Option.map (fun q -> q.Octopocs.qlabel) (Octopocs.decode_quarantine p))
        qrecords
    in
    let skipset = Hashtbl.create 31 in
    List.iter (fun l -> Hashtbl.replace skipset l ()) skip;
    let src = Source.generated ~seed ~count:upto () in
    let lock = Mutex.create () in
    let keys = Hashtbl.create 64 in
    let rec next () =
      match Source.next src with
      | None -> None
      | Some p ->
          if Hashtbl.mem skipset p.Source.plabel then next ()
          else begin
            let config = config_of p.Source.plabel in
            let key =
              Octopocs.content_key ~config ~s:p.Source.ps ~t:p.Source.pt ~poc:p.Source.ppoc ()
            in
            Mutex.lock lock;
            Hashtbl.replace keys p.Source.plabel key;
            Mutex.unlock lock;
            Some
              (Octopocs.job ~config ~label:p.Source.plabel ~s:p.Source.ps ~t:p.Source.pt
                 ~poc:p.Source.ppoc ())
          end
    in
    let on_settle j r =
      let label = Octopocs.job_label j in
      Mutex.lock lock;
      let key = Option.value (Hashtbl.find_opt keys label) ~default:"-" in
      Mutex.unlock lock;
      Journal.Sharded.append w ~key (Octopocs.encode_result ~label ~key r)
    in
    let on_quarantine q = Journal.append qw (Octopocs.encode_quarantine q) in
    let st = Octopocs.run_stream ~jobs ~retries ~on_settle ~on_quarantine next in
    Journal.Sharded.close w;
    Journal.close qw;
    st
  in
  (* The run-independent state of a corpus directory: merged settled
     verdicts (poc' bytes and rungs included) plus the quarantine set. *)
  let table dir =
    let m = Journal.Sharded.replay_merged dir in
    let verdicts =
      List.filter_map Octopocs.decode_result m.Journal.Sharded.mrecords
      |> List.map (fun (l, _, (r : Octopocs.report)) -> (l, r.verdict, r.degradations))
      |> List.sort compare
    in
    let quars =
      let qp = qpath_of dir in
      if not (Sys.file_exists qp) then []
      else
        List.filter_map Octopocs.decode_quarantine (Journal.replay qp).Journal.records
        |> List.map (fun q -> Octopocs.(q.qlabel, q.qreason, q.qattempts))
        |> List.sort compare
    in
    (verdicts, quars)
  in
  let reference =
    with_dir (fun dira ->
        let sta = run_streamed ~dir:dira ~resume:false ~upto:count () in
        let bound = max 4 (2 * Octo_util.Pool.effective_jobs jobs) in
        if sta.Octopocs.st_peak_in_flight > bound then
          violate "corpus: peak in-flight %d exceeds window bound %d"
            sta.Octopocs.st_peak_in_flight bound;
        let ta = table dira in
        if List.length (fst ta) + List.length (snd ta) <> count then
          violate "corpus: %d settled + %d quarantined != %d pairs"
            (List.length (fst ta)) (List.length (snd ta)) count;
        ta)
  in
  with_dir (fun dirb ->
      ignore (run_streamed ~dir:dirb ~resume:false ~upto:count ());
      if table dirb <> reference then
        violate "corpus: verdicts differ between identical streamed replays");
  with_dir (fun dirc ->
      (* Kill after K pairs, then die mid-frame on two shards at once. *)
      let k = 23 in
      ignore (run_streamed ~dir:dirc ~resume:false ~upto:k ());
      List.iter
        (fun i ->
          let oc =
            open_out_gen [ Open_append; Open_binary ] 0o644 (Journal.Sharded.shard_path dirc i)
          in
          output_string oc "\x40\x00\x00\x00\x99\x99\x99\x99AB";
          close_out oc)
        [ 0; 2 ];
      let m = Journal.Sharded.replay_merged dirc in
      if m.Journal.Sharded.mtorn < 2 then
        violate "corpus: expected >= 2 torn shard tails, found %d" m.Journal.Sharded.mtorn;
      ignore (run_streamed ~dir:dirc ~resume:true ~upto:count ());
      if table dirc <> reference then
        violate "corpus: resumed sharded run differs from uninterrupted run");
  say "corpus: %d pairs, %d quarantined, x2 replays + multi-shard kill/resume, %d violation(s)"
    count
    (List.length (snd reference))
    !violations;
  !violations

let chaos ~schedules ~seed () =
  say "";
  say "CHAOS: 15-pair batch under deterministic fault injection";
  say "(%d schedule(s), master seed %d, sites: vm-syscall solver-budget" schedules seed;
  say " worker-crash deadline-expiry worker-stall journal-write;";
  say " 4 worker domains, 1 retry, 30s deadline, 1s stall grace)";
  hr ();
  let npairs = List.length Registry.all in
  let violations = ref 0 in
  let violate fmt = Printf.ksprintf (fun m -> incr violations; say "  VIOLATION: %s" m) fmt in
  (* Decode a journal into its run-independent verdict table: label,
     structural verdict (poc' bytes included) and degradation rungs, sorted
     by pair index.  elapsed_s is the only report field left out. *)
  let decode_table path =
    let r = Journal.replay path in
    List.filter_map Octopocs.decode_result r.Journal.records
    |> List.map (fun (label, _key, (rep : Octopocs.report)) ->
           (label, rep.verdict, rep.degradations))
    |> List.sort (fun (a, _, _) (b, _, _) ->
           compare (int_of_string a) (int_of_string b))
  in
  for sched = 0 to schedules - 1 do
    let sched_seed = seed + (sched * 7919) in
    (* Injector streams are mutable and advance as sites draw, so every
       repetition needs a fresh batch: determinism is seed-to-verdicts, not
       object-reuse. *)
    let job_of (c : Registry.case) =
      let inject =
        Faultinject.create ~rate:0.0
          ~site_rates:
            [
              (Faultinject.Vm_syscall, 0.0005);
              (Faultinject.Solver_budget, 0.05);
              (Faultinject.Worker_crash, 0.05);
              (Faultinject.Deadline_expiry, 0.02);
              (Faultinject.Worker_stall, 0.01);
            ]
          ~seed:(sched_seed lxor (c.idx * 0x9E3779B9)) ()
      in
      let config = { Octopocs.default_config with inject; deadline_s = Some 30.0 } in
      Octopocs.job ~config ~label:(string_of_int c.idx) ~s:c.s ~t:c.t ~poc:c.poc ()
    in
    let fresh_batch ?(only = fun _ -> true) () =
      List.filter_map
        (fun (c : Registry.case) -> if only c then Some (job_of c) else None)
        Registry.all
    in
    (* The stall grace rides far above the pairs' millisecond runtimes, so
       a loaded CI machine cannot false-positive a requeue and perturb the
       replay-equality check. *)
    let run_batch ?on_settle batch =
      Octopocs.run_all ~jobs:4 ~retries:1 ~stall_grace_s:1.0 ?on_settle batch
    in
    let snapshot () =
      run_batch (fresh_batch ())
      |> List.map (fun (label, (r : Octopocs.report)) ->
             (label, Octopocs.verdict_class r.verdict, r.degradations))
    in
    let a = snapshot () in
    let b = snapshot () in
    if List.length a <> npairs then
      violate "schedule %d: %d/%d reports returned" sched (List.length a) npairs;
    List.iteri
      (fun i (label, _, _) ->
        let want = string_of_int (i + 1) in
        if label <> want then
          violate "schedule %d: report %d labelled %s (want %s)" sched i label want)
      a;
    if a <> b then violate "schedule %d: verdicts differ between identical replays" sched;
    (* Kill-mid-batch -> resume determinism.  Reference: the same schedule
       journaled uninterrupted. *)
    let journal_settle w label r =
      try Journal.append w (Octopocs.encode_result ~label ~key:"-" r)
      with Faultinject.Injected _ -> ()
      (* the armed torn-write site firing IS the simulated crash *)
    in
    let ref_path = Filename.temp_file "octochaos-ref" ".jrnl" in
    let wref = Journal.create ~path:ref_path () in
    ignore (run_batch ~on_settle:(journal_settle wref) (fresh_batch ()));
    Journal.close wref;
    (* Interrupted run: only the first K pairs get to settle, the journal
       writer has the journal-write torn-append site armed, and the file
       gains a trailing half-frame (a length prefix promising 64 bytes that
       never arrived) — dying mid-append, modelled twice over. *)
    let k = 1 + (sched mod (npairs - 1)) in
    let res_path = Filename.temp_file "octochaos-res" ".jrnl" in
    let winject =
      Faultinject.create ~rate:0.0
        ~site_rates:[ (Faultinject.Journal_write, 0.15) ]
        ~seed:(sched_seed lxor 0x6A09E667) ()
    in
    let w1 = Journal.create ~inject:winject ~path:res_path () in
    ignore
      (run_batch ~on_settle:(journal_settle w1)
         (fresh_batch ~only:(fun c -> c.idx <= k) ()));
    Journal.close w1;
    let oc = open_out_gen [ Open_append; Open_binary ] 0o644 res_path in
    output_string oc "\x40\x00\x00\x00\x99\x99\x99\x99AB";
    close_out oc;
    if not (Journal.replay res_path).Journal.torn then
      violate "schedule %d: torn tail not detected before resume" sched;
    (* Resume: recover the settled prefix, re-run only the rest (on fresh
       per-pair injectors — fault schedules are per pair, so the re-run
       pairs replay their uninterrupted fault pattern exactly). *)
    let w2, records = Journal.open_resume ~path:res_path () in
    let settled =
      List.filter_map Octopocs.decode_result records |> List.map (fun (l, _, _) -> l)
    in
    ignore
      (run_batch ~on_settle:(journal_settle w2)
         (fresh_batch ~only:(fun c -> not (List.mem (string_of_int c.idx) settled)) ()));
    Journal.close w2;
    let ra = decode_table ref_path and rb = decode_table res_path in
    if List.length ra <> npairs then
      violate "schedule %d: reference journal decodes %d/%d pairs" sched (List.length ra)
        npairs;
    if ra <> rb then
      violate "schedule %d: resumed journal verdicts differ from uninterrupted run" sched;
    Sys.remove ref_path;
    Sys.remove res_path;
    let cell (label, cls, degr) =
      let short =
        match cls with
        | "Type-I" -> "I"
        | "Type-II" -> "II"
        | "Type-III" -> "III"
        | _ -> "F"
      in
      Printf.sprintf "%s:%s%s" label short (if degr = [] then "" else "+")
    in
    say "schedule %2d (seed %11d, resume after %2d): %s" sched sched_seed k
      (String.concat " " (List.map cell a))
  done;
  hr ();
  say "legend: pair:<class>, '+' = degradation rung(s) climbed, F = Failure";
  say "chaos: %d schedule(s) x2 replays + journaled kill/resume, %d violation(s)" schedules
    !violations;
  !violations

(* Sandbox chaos: the process-isolation layer under seeded child deaths.
   Phase A — Domain and process isolation agree pair-for-pair on the
   15-pair registry (same structural verdicts, poc' bytes included, same
   degradation rungs): the journal-dump identity the CLI promises for
   [--isolate proc].  Phase B — a seeded schedule of real child deaths
   (SIGSEGV / SIGKILL drawn pre-fork from the child-segv and
   child-oom-kill sites) double-replays identically: same settled table,
   same quarantine set.  Must run FIRST among the chaos phases, with its
   process runs before its domain run: OCaml 5.1 forbids [Unix.fork]
   permanently once any domain has ever been spawned in the process, so
   every fork must precede the first domain. *)
let chaos_sandbox ~seed () =
  say "";
  say "CHAOS sandbox: process isolation (fork + rlimit + pipe protocol)";
  say "(phase A: domain vs process verdict identity over %d pairs;"
    (List.length Registry.all);
  say " phase B: seeded child SIGSEGV/OOM-kill schedule x2 replays, 1 retry)";
  hr ();
  let npairs = List.length Registry.all in
  let violations = ref 0 in
  let violate fmt = Printf.ksprintf (fun m -> incr violations; say "  VIOLATION: %s" m) fmt in
  (* Phase A: clean configs, batch API, both isolation modes.  The process
     run MUST precede the domain run (fork-before-first-domain). *)
  let clean_job (c : Registry.case) =
    let config = { Octopocs.default_config with deadline_s = Some 30.0 } in
    Octopocs.job ~config ~label:(string_of_int c.idx) ~s:c.s ~t:c.t ~poc:c.poc ()
  in
  let batch_table results =
    List.map
      (fun (label, (r : Octopocs.report)) -> (label, r.Octopocs.verdict, r.degradations))
      results
    |> List.sort compare
  in
  let prc =
    batch_table
      (Octopocs.run_all ~jobs:4 ~isolate:Octopocs.Processes
         (List.map clean_job Registry.all))
  in
  (* Phase B: every pair streams through the process supervisor with the
     child-death sites armed.  The die is drawn in the parent before each
     fork, so retries advance the per-pair stream deterministically; fresh
     injectors per run — determinism is seed-to-verdicts, never object
     reuse. *)
  let death_rates =
    [ (Faultinject.Child_segv, 0.35); (Faultinject.Child_oom_kill, 0.25) ]
  in
  let death_inject (c : Registry.case) =
    Faultinject.create ~rate:0.0 ~site_rates:death_rates
      ~seed:(seed lxor (c.idx * 0x9E3779B9)) ()
  in
  (* The die schedule is parent-drawn and scheduling-independent, so the
     expected deaths and the exact quarantine set are computable in
     advance by replaying each pair's injector stream the way the
     scheduler draws it (segv first, oom only if segv did not fire; one
     such draw pair per attempt, 1 retry). *)
  let predicted_deaths = ref 0 in
  let predicted_quars =
    List.filter_map
      (fun (c : Registry.case) ->
        let inject = death_inject c in
        let die () =
          if Faultinject.fire inject Faultinject.Child_segv then `Segv
          else if Faultinject.fire inject Faultinject.Child_oom_kill then `Oom
          else `None
        in
        match die () with
        | `None -> None
        | _ -> (
            incr predicted_deaths;
            match die () with
            | `None -> None
            | d2 ->
                incr predicted_deaths;
                let reason, message =
                  match d2 with
                  | `Oom -> ("oom", "child out of memory: SIGKILL (kernel OOM killer)")
                  | _ -> ("worker crashed", "child segfaulted (SIGSEGV)")
                in
                Some (string_of_int c.idx, reason, message, 2)))
      Registry.all
    |> List.sort compare
  in
  let death_run () =
    let job_of (c : Registry.case) =
      let config =
        { Octopocs.default_config with inject = death_inject c; deadline_s = Some 30.0 }
      in
      Octopocs.job ~config ~label:(string_of_int c.idx) ~s:c.s ~t:c.t ~poc:c.poc ()
    in
    let pending = ref (List.map job_of Registry.all) in
    let next () =
      match !pending with [] -> None | j :: rest -> pending := rest; Some j
    in
    let settled = ref [] and quars = ref [] in
    let on_settle j (r : Octopocs.report) =
      settled := (Octopocs.job_label j, r.Octopocs.verdict, r.degradations) :: !settled
    in
    let on_quarantine (q : Octopocs.quarantine) =
      quars := Octopocs.(q.qlabel, q.qreason, q.qmessage, q.qattempts) :: !quars
    in
    let st =
      Octopocs.run_stream ~jobs:4 ~retries:1 ~isolate:Octopocs.Processes ~on_settle
        ~on_quarantine next
    in
    (st, List.sort compare !settled, List.sort compare !quars)
  in
  let sta, seta, qa = death_run () in
  let _stb, setb, qb = death_run () in
  (* Phase A's domain half runs only now: the first Domain.spawn forecloses
     every later fork, so it must come after the last process run. *)
  let dom = batch_table (Octopocs.run_all ~jobs:4 (List.map clean_job Registry.all)) in
  if List.length dom <> npairs then
    violate "sandbox: domain run returned %d/%d reports" (List.length dom) npairs;
  if List.length prc <> npairs then
    violate "sandbox: process run returned %d/%d reports" (List.length prc) npairs;
  if dom <> prc then
    violate "sandbox: process-isolated verdicts differ from domain-mode verdicts";
  say "phase A: domain vs process tables %s over %d pairs"
    (if dom = prc then "identical" else "DIFFER")
    npairs;
  if sta.Octopocs.st_pulled <> npairs then
    violate "sandbox: pulled %d/%d pairs" sta.Octopocs.st_pulled npairs;
  if List.length seta + List.length qa <> npairs then
    violate "sandbox: %d settled + %d quarantined != %d pairs" (List.length seta)
      (List.length qa) npairs;
  if seta <> setb then
    violate "sandbox: settled verdicts differ between identical child-death replays";
  if qa <> qb then
    violate "sandbox: quarantine sets differ between identical child-death replays";
  if !predicted_deaths = 0 then
    violate "sandbox: seed %d predicts no child deaths; the phase is vacuous" seed;
  if qa <> predicted_quars then
    violate "sandbox: quarantine set differs from the pre-drawn die schedule (%d vs %d)"
      (List.length qa) (List.length predicted_quars);
  List.iter
    (fun (l, reason, _, attempts) ->
      say "  quarantined pair %s (%s) after %d attempts" l reason attempts)
    qa;
  say "phase B: %d predicted child death(s); %d settled, %d quarantined, x2 replays %s"
    !predicted_deaths (List.length seta) (List.length qa)
    (if seta = setb && qa = qb then "identical" else "DIFFER");
  say "sandbox: %d violation(s)" !violations;
  !violations

(* ------------------------------------------------------------------ *)

let () =
  let valued = [ "--schedules"; "--chaos-seed"; "--trace" ] in
  let rec split_opts modes opts = function
    | [] -> (List.rev modes, List.rev opts)
    | [ k ] when List.mem k valued -> failwith ("missing value for option " ^ k)
    | k :: v :: _ when List.mem k valued && List.mem v valued ->
        failwith ("missing value for option " ^ k)
    | k :: v :: rest when List.mem k valued -> split_opts modes ((k, v) :: opts) rest
    | a :: rest -> split_opts (a :: modes) opts rest
  in
  let args, opts = split_opts [] [] (List.tl (Array.to_list Sys.argv)) in
  let opt k d =
    match List.assoc_opt k opts with Some v -> int_of_string v | None -> d
  in
  (* --trace PATH: emit phase spans for everything the selected modes run,
     and switch metrics collection on so bench entries carry phase
     breakdowns. *)
  (match List.assoc_opt "--trace" opts with
  | Some path ->
      Octo_util.Trace.enable ~path;
      Octo_util.Metrics.enable ()
  | None -> ());
  let want name = args = [] || List.mem name args in
  if want "table2" then table2 ();
  if want "table3" then table3 ();
  if want "table4" then table4 ();
  if want "table5" then table5 ();
  if want "ablations" then ablations ();
  if want "micro" then micro ();
  if List.mem "bench" args then begin
    bench_json ();
    bench_history ()
  end;
  let gate_regressions = if List.mem "gate" args then bench_gate () else 0 in
  let chaos_violations =
    if List.mem "chaos" args then begin
      (* sandbox phase first: OCaml 5.1 permanently forbids Unix.fork once
         any domain has ever been spawned, so its forks must precede the
         domain-pool phases *)
      let v = chaos_sandbox ~seed:(opt "--chaos-seed" 42) () in
      let v = v + chaos ~schedules:(opt "--schedules" 8) ~seed:(opt "--chaos-seed" 42) () in
      v + chaos_corpus ~seed:(opt "--chaos-seed" 42) ()
    end
    else 0
  in
  Octo_util.Trace.disable ();
  say "";
  say "done.";
  if chaos_violations > 0 || gate_regressions > 0 then exit 1
