(* Behavioural tests for the 15 Table II target pairs: every S crashes on
   its PoC inside the vulnerable function; every T behaves according to its
   expected verification type. *)

open Octo_vm
module Registry = Octo_targets.Registry

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let run = Interp.run

let every_s_crashes_on_poc () =
  List.iter
    (fun (c : Registry.case) ->
      match (run c.s ~input:c.poc).outcome with
      | Interp.Crashed crash ->
          check Alcotest.string
            (Printf.sprintf "pair %d crash location" c.idx)
            c.vuln_func crash.crash_func
      | Interp.Exited n ->
          Alcotest.failf "pair %d: S exited %d instead of crashing" c.idx n)
    Registry.all

let type1_t_crashes_on_original_poc () =
  (* Type-I means the original poc works on T unchanged. *)
  List.iter
    (fun (c : Registry.case) ->
      if c.expected = Registry.Type_I then
        match (run c.t ~input:c.poc).outcome with
        | Interp.Crashed crash ->
            check Alcotest.string
              (Printf.sprintf "pair %d T crash location" c.idx)
              c.vuln_func crash.crash_func
        | Interp.Exited n -> Alcotest.failf "pair %d: Type-I T exited %d" c.idx n)
    Registry.all

let type2_t_rejects_original_poc () =
  (* Type-II means the original guiding input does not fit T. *)
  List.iter
    (fun (c : Registry.case) ->
      if c.expected = Registry.Type_II then
        match (run c.t ~input:c.poc).outcome with
        | Interp.Exited _ -> ()
        | Interp.Crashed _ -> Alcotest.failf "pair %d: Type-II T crashed on original poc" c.idx)
    Registry.all

let type3_t_never_crashes_on_poc () =
  List.iter
    (fun (c : Registry.case) ->
      if c.expected = Registry.Type_III then
        match (run c.t ~input:c.poc).outcome with
        | Interp.Exited _ -> ()
        | Interp.Crashed _ -> Alcotest.failf "pair %d: Type-III T crashed" c.idx)
    Registry.all

let cwe_fault_kinds () =
  (* The fault kind matches the CWE label of each case. *)
  List.iter
    (fun (c : Registry.case) ->
      match (run c.s ~input:c.poc).outcome with
      | Interp.Crashed crash -> (
          match (c.cwe, crash.fault) with
          | "CWE-835", Mem.Hang -> ()
          | "CWE-835", f -> Alcotest.failf "pair %d: expected hang, got %a" c.idx Mem.pp_fault f
          | _, (Mem.Oob_write _ | Mem.Oob_read _) -> ()
          | _, f -> Alcotest.failf "pair %d: unexpected fault %a" c.idx Mem.pp_fault f)
      | Interp.Exited _ -> Alcotest.failf "pair %d: no crash" c.idx)
    Registry.all

let registry_indices_unique_and_complete () =
  let idxs = List.map (fun (c : Registry.case) -> c.idx) Registry.all in
  check Alcotest.(list int) "1..15" (List.init 15 (fun i -> i + 1)) (List.sort compare idxs)

let registry_expected_distribution () =
  let count e = List.length (List.filter (fun (c : Registry.case) -> c.expected = e) Registry.all) in
  check Alcotest.int "6 Type-I" 6 (count Registry.Type_I);
  check Alcotest.int "3 Type-II" 3 (count Registry.Type_II);
  check Alcotest.int "5 Type-III" 5 (count Registry.Type_III);
  check Alcotest.int "1 Failure" 1 (count Registry.Fail)

let registry_find () =
  check Alcotest.int "find 7" 7 (Registry.find 7).idx;
  Alcotest.check_raises "missing" (Invalid_argument "Registry.find: no case 99") (fun () ->
      ignore (Registry.find 99))

let registry_find_opt_total () =
  (* The CLI resolves untrusted indices through find_opt: every bad index
     must be a [None], never an exception. *)
  (match Registry.find_opt 7 with
  | Some c -> check Alcotest.int "find_opt 7" 7 c.idx
  | None -> Alcotest.fail "find_opt 7 missing");
  List.iter
    (fun idx ->
      check Alcotest.bool (Printf.sprintf "find_opt %d is None" idx) true
        (Registry.find_opt idx = None))
    [ 0; -1; -7; 16; 99; max_int; min_int ]

let table_subsets () =
  check Alcotest.(list int) "table3 = 1..9"
    (List.init 9 (fun i -> i + 1))
    (List.map (fun (c : Registry.case) -> c.idx) Registry.table3_cases);
  check Alcotest.(list int) "table45 = 7..9" [ 7; 8; 9 ]
    (List.map (fun (c : Registry.case) -> c.idx) Registry.table45_cases)

let s_accepts_benign_inputs () =
  (* Every S exits cleanly on the empty input (EOF-driven rejection, not a
     crash). *)
  List.iter
    (fun (c : Registry.case) ->
      match (run c.s ~input:"").outcome with
      | Interp.Exited _ -> ()
      | Interp.Crashed crash ->
          Alcotest.failf "pair %d: S crashed on empty input: %a" c.idx Interp.pp_outcome
            (Interp.Crashed crash))
    Registry.all

let t_accepts_empty_input () =
  List.iter
    (fun (c : Registry.case) ->
      match (run c.t ~input:"").outcome with
      | Interp.Exited _ -> ()
      | Interp.Crashed crash ->
          Alcotest.failf "pair %d: T crashed on empty input: %a" c.idx Interp.pp_outcome
            (Interp.Crashed crash))
    Registry.all

let random_bytes_never_crash_outside_ell () =
  (* Property: random inputs either exit cleanly or crash inside the shared
     vulnerable code (our targets contain no unintended memory bugs). *)
  let rng = Octo_util.Rng.create 2026 in
  List.iter
    (fun (c : Registry.case) ->
      for _ = 1 to 40 do
        let n = Octo_util.Rng.int rng 64 in
        let input = String.init n (fun _ -> Char.chr (Octo_util.Rng.byte rng)) in
        match (run c.t ~input).outcome with
        | Interp.Exited _ -> ()
        | Interp.Crashed crash ->
            if crash.crash_func <> c.vuln_func then
              Alcotest.failf "pair %d: unintended crash in %s" c.idx crash.crash_func
      done)
    Registry.all

let poc_sizes_reasonable () =
  List.iter
    (fun (c : Registry.case) ->
      check Alcotest.bool
        (Printf.sprintf "pair %d poc non-empty" c.idx)
        true
        (String.length c.poc > 0 && String.length c.poc < 256))
    Registry.all

let binaries_have_code () =
  List.iter
    (fun (c : Registry.case) ->
      check Alcotest.bool "S has code" true (Octo_vm.Asm.size_of_code c.s > 10);
      check Alcotest.bool "T has code" true (Octo_vm.Asm.size_of_code c.t > 10))
    Registry.all

let suite =
  [
    tc "every S crashes on its PoC in the vulnerable function" every_s_crashes_on_poc;
    tc "Type-I targets crash on the original PoC" type1_t_crashes_on_original_poc;
    tc "Type-II targets reject the original PoC" type2_t_rejects_original_poc;
    tc "Type-III targets never crash on the PoC" type3_t_never_crashes_on_poc;
    tc "fault kinds match CWE labels" cwe_fault_kinds;
    tc "registry: indices 1..15" registry_indices_unique_and_complete;
    tc "registry: expected distribution matches the paper" registry_expected_distribution;
    tc "registry: find" registry_find;
    tc "registry: find_opt is total" registry_find_opt_total;
    tc "registry: table subsets" table_subsets;
    tc "S exits cleanly on empty input" s_accepts_benign_inputs;
    tc "T exits cleanly on empty input" t_accepts_empty_input;
    tc "random inputs never crash outside ℓ" random_bytes_never_crash_outside_ell;
    tc "poc sizes reasonable" poc_sizes_reasonable;
    tc "binaries non-trivial" binaries_have_code;
  ]
