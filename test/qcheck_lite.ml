(* A miniature property-testing harness over the repo's own splitmix64
   generator ({!Octo_util.Rng}) — no new dependencies, fully deterministic
   (fixed seed per property), and shrink-free by design: failing cases
   print their seed and iteration so the exact input is one [Rng.create]
   away.

   A ['a gen] is just a function from an Rng state to a value; combinators
   compose them the usual way.  [check_prop] drives N iterations and
   raises an Alcotest failure naming the (seed, iteration) of the first
   counterexample, so failures reproduce bit-for-bit. *)

module Rng = Octo_util.Rng

type 'a gen = Rng.t -> 'a

let return x : 'a gen = fun _ -> x
let map f (g : 'a gen) : 'b gen = fun rng -> f (g rng)
let bind (g : 'a gen) (f : 'a -> 'b gen) : 'b gen = fun rng -> f (g rng) rng
let pair (ga : 'a gen) (gb : 'b gen) : ('a * 'b) gen =
 fun rng ->
  let a = ga rng in
  let b = gb rng in
  (a, b)

(** [int_range lo hi] draws uniformly from the inclusive range. *)
let int_range lo hi : int gen =
 fun rng ->
  if hi < lo then invalid_arg "Qcheck_lite.int_range";
  lo + Rng.int rng (hi - lo + 1)

let bool : bool gen = fun rng -> Rng.bool rng

(** [byte_string n] draws [n] arbitrary bytes — binary-safe on purpose
    (codec round-trips must survive NUL and high bytes). *)
let byte_string (glen : int gen) : string gen =
 fun rng ->
  let n = glen rng in
  String.init n (fun _ -> Char.chr (Rng.byte rng))

let list_of (glen : int gen) (g : 'a gen) : 'a list gen =
 fun rng ->
  let n = glen rng in
  List.init n (fun _ -> g rng)

let oneof (gs : 'a gen array) : 'a gen =
 fun rng ->
  if Array.length gs = 0 then invalid_arg "Qcheck_lite.oneof";
  gs.(Rng.int rng (Array.length gs)) rng

(** [frequency [(w1, g1); ...]] picks a generator with probability
    proportional to its weight. *)
let frequency (wgs : (int * 'a gen) list) : 'a gen =
 fun rng ->
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 wgs in
  if total <= 0 then invalid_arg "Qcheck_lite.frequency";
  let k = Rng.int rng total in
  let rec pick acc = function
    | [] -> assert false
    | (w, g) :: rest -> if k < acc + w then g rng else pick (acc + w) rest
  in
  pick 0 wgs

(** [check_prop ~name ?count ~seed gen prop] runs [prop] on [count]
    (default 200) generated values.  [prop] either returns [true] (pass),
    returns [false], or raises — both failures are reported with the seed
    and iteration index that produced the counterexample. *)
let check_prop ~name ?(count = 200) ~seed (g : 'a gen) (prop : 'a -> bool) () =
  let rng = Rng.create seed in
  for i = 1 to count do
    (* One split per iteration: a property that consumes a variable amount
       of randomness cannot desynchronize later iterations. *)
    let case_rng = Rng.split rng in
    let x = g case_rng in
    let ok =
      try prop x
      with e ->
        Alcotest.failf "%s: raised %s (seed=%d, iteration=%d)" name (Printexc.to_string e)
          seed i
    in
    if not ok then Alcotest.failf "%s: property falsified (seed=%d, iteration=%d)" name seed i
  done

(** [test_case name ~seed ?count gen prop] wraps {!check_prop} as an
    Alcotest quick case. *)
let test_case name ?count ~seed g prop =
  Alcotest.test_case name `Quick (check_prop ~name ?count ~seed g prop)
