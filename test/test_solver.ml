(* Unit and property tests for the constraint solver: expression algebra,
   interval propagation, and model search. *)

open Octo_vm.Isa
module Expr = Octo_solver.Expr
module Solve = Octo_solver.Solve

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let env_of l i = match List.assoc_opt i l with Some v -> v | None -> 0

(* ------------------------------------------------------------------ *)
(* Expressions *)

let expr_const_fold () =
  match Expr.bin Add (Expr.const 2) (Expr.const 3) with
  | Expr.Const 5 -> ()
  | e -> Alcotest.failf "not folded: %a" Expr.pp e

let expr_identity_fold () =
  (match Expr.bin Add (Expr.byte 0) (Expr.const 0) with
  | Expr.Byte 0 -> ()
  | e -> Alcotest.failf "x+0 not folded: %a" Expr.pp e);
  match Expr.bin Mul (Expr.byte 1) (Expr.const 1) with
  | Expr.Byte 1 -> ()
  | e -> Alcotest.failf "x*1 not folded: %a" Expr.pp e

let expr_eval () =
  let e = Expr.bin Or (Expr.byte 0) (Expr.bin Shl (Expr.byte 1) (Expr.const 8)) in
  check Alcotest.int "le16 combine" 0x1234 (Expr.eval (env_of [ (0, 0x34); (1, 0x12) ]) e)

let expr_vars () =
  let e = Expr.bin Add (Expr.byte 3) (Expr.bin Mul (Expr.byte 1) (Expr.byte 3)) in
  check Alcotest.(list int) "vars sorted dedup" [ 1; 3 ] (Expr.vars e)

let expr_negate_involution () =
  let c = { Expr.rel = Lt; lhs = Expr.byte 0; rhs = Expr.const 5 } in
  check Alcotest.bool "double negation" true (Expr.negate (Expr.negate c) = c)

let expr_div_zero () =
  Alcotest.check_raises "symbolic div0" Expr.Symbolic_division_by_zero (fun () ->
      ignore (Expr.eval (env_of []) (Expr.Bin (Div, Expr.Const 1, Expr.Const 0))))

(* ------------------------------------------------------------------ *)
(* Store and propagation *)

let add c s = Solve.add s c

let store_eq_pins_domain () =
  let s = Solve.create () in
  (match add { Expr.rel = Eq; lhs = Expr.byte 0; rhs = Expr.const 65 } s with
  | Solve.Ok -> ()
  | Solve.Unsat -> Alcotest.fail "should be sat");
  check (Alcotest.pair Alcotest.int Alcotest.int) "pinned" (65, 65) (Solve.dom s 0)

let store_contradiction_detected () =
  let s = Solve.create () in
  ignore (add { Expr.rel = Eq; lhs = Expr.byte 0; rhs = Expr.const 1 } s);
  match add { Expr.rel = Eq; lhs = Expr.byte 0; rhs = Expr.const 2 } s with
  | Solve.Unsat -> ()
  | Solve.Ok -> Alcotest.fail "contradiction not caught by propagation"

let store_lt_narrows () =
  let s = Solve.create () in
  ignore (add { Expr.rel = Lt; lhs = Expr.byte 0; rhs = Expr.const 10 } s);
  let _, hi = Solve.dom s 0 in
  check Alcotest.int "upper bound" 9 hi

let store_add_shape_narrows () =
  let s = Solve.create () in
  ignore
    (add { Expr.rel = Eq; lhs = Expr.bin Add (Expr.byte 0) (Expr.const 5) ; rhs = Expr.const 70 } s);
  check (Alcotest.pair Alcotest.int Alcotest.int) "inverted" (65, 65) (Solve.dom s 0)

let store_entails () =
  let s = Solve.create () in
  ignore (add { Expr.rel = Eq; lhs = Expr.byte 0; rhs = Expr.const 7 } s);
  check Alcotest.bool "implied true" true
    (Solve.entails s { Expr.rel = Lt; lhs = Expr.byte 0; rhs = Expr.const 8 } = Solve.True);
  check Alcotest.bool "implied false" true
    (Solve.entails s { Expr.rel = Gt; lhs = Expr.byte 0; rhs = Expr.const 8 } = Solve.False);
  check Alcotest.bool "unknown var maybe" true
    (Solve.entails s { Expr.rel = Eq; lhs = Expr.byte 1; rhs = Expr.const 1 } = Solve.Maybe)

let store_copy_isolated () =
  let s = Solve.create () in
  ignore (add { Expr.rel = Eq; lhs = Expr.byte 0; rhs = Expr.const 3 } s);
  let s' = Solve.copy s in
  ignore (add { Expr.rel = Eq; lhs = Expr.byte 1; rhs = Expr.const 4 } s');
  check (Alcotest.pair Alcotest.int Alcotest.int) "original untouched" (0, 255) (Solve.dom s 1)

(* ------------------------------------------------------------------ *)
(* Solving *)

let model_satisfies s m = List.for_all (Expr.eval_cond (Solve.model_byte m)) (Solve.constraints s)

let solve_simple () =
  let s = Solve.create () in
  ignore (add { Expr.rel = Eq; lhs = Expr.byte 0; rhs = Expr.const 0x41 } s);
  ignore (add { Expr.rel = Gt; lhs = Expr.byte 1; rhs = Expr.const 16 } s);
  match Solve.solve s with
  | Solve.Sat m ->
      check Alcotest.int "byte0" 0x41 (Solve.model_byte m 0);
      check Alcotest.bool "byte1 > 16" true (Solve.model_byte m 1 > 16);
      check Alcotest.bool "model verifies" true (model_satisfies s m)
  | _ -> Alcotest.fail "expected sat"

let solve_le16_word () =
  (* w = b0 | (b1 << 8) must equal 0x8000: search must find b1 = 0x80. *)
  let s = Solve.create () in
  let w = Expr.bin Or (Expr.byte 0) (Expr.bin Shl (Expr.byte 1) (Expr.const 8)) in
  ignore (add { Expr.rel = Eq; lhs = w; rhs = Expr.const 0x8000 } s);
  match Solve.solve s with
  | Solve.Sat m ->
      check Alcotest.int "combined" 0x8000
        (Solve.model_byte m 0 lor (Solve.model_byte m 1 lsl 8))
  | _ -> Alcotest.fail "expected sat"

let solve_unsat () =
  let s = Solve.create () in
  ignore (add { Expr.rel = Lt; lhs = Expr.byte 0; rhs = Expr.const 5 } s);
  let r = Solve.sat s [ { Expr.rel = Gt; lhs = Expr.byte 0; rhs = Expr.const 10 } ] in
  check Alcotest.bool "unsat" true (r = Solve.Unsat_result)

let solve_ne_chain () =
  let s = Solve.create () in
  for v = 0 to 254 do
    ignore (add { Expr.rel = Ne; lhs = Expr.byte 0; rhs = Expr.const v } s)
  done;
  match Solve.solve s with
  | Solve.Sat m -> check Alcotest.int "only 255 left" 255 (Solve.model_byte m 0)
  | _ -> Alcotest.fail "expected sat with 255"

let solve_cross_var () =
  let s = Solve.create () in
  ignore (add { Expr.rel = Lt; lhs = Expr.byte 0; rhs = Expr.byte 1 } s);
  ignore (add { Expr.rel = Eq; lhs = Expr.byte 1; rhs = Expr.const 1 } s);
  match Solve.solve s with
  | Solve.Sat m -> check Alcotest.int "forced zero" 0 (Solve.model_byte m 0)
  | _ -> Alcotest.fail "expected sat"

let solve_empty_store () =
  match Solve.solve (Solve.create ()) with
  | Solve.Sat _ -> ()
  | _ -> Alcotest.fail "empty store is trivially sat"

let solve_arith_sum () =
  let s = Solve.create () in
  let sum = Expr.bin Add (Expr.byte 0) (Expr.byte 1) in
  ignore (add { Expr.rel = Eq; lhs = sum; rhs = Expr.const 300 } s);
  match Solve.solve s with
  | Solve.Sat m ->
      check Alcotest.int "sum" 300 (Solve.model_byte m 0 + Solve.model_byte m 1)
  | _ -> Alcotest.fail "expected sat"

let ival_masking () =
  let s = Solve.create () in
  let lo, hi = Solve.ival s (Expr.bin And (Expr.byte 0) (Expr.const 0x0F)) in
  check Alcotest.bool "mask bounds" true (lo = 0 && hi <= 0x0F)

let ival_mul_wrap_top () =
  let s = Solve.create () in
  let e = Expr.bin Mul (Expr.Bin (Shl, Expr.byte 0, Expr.Const 24)) (Expr.const 0x100) in
  let _, hi = Solve.ival s e in
  check Alcotest.bool "wrap gives top" true (hi = 0xFFFFFFFF)

(* Regression: interval evaluation of shifts must mask the count to 31 the
   way the VM does — found by the soundness property. *)
let ival_shift_count_masked () =
  let s = Solve.create () in
  let e = Expr.Bin (Shr, Expr.Const 0x80000000, Expr.Const 4294967163) in
  let v = Expr.eval (fun _ -> 0) e in
  let lo, hi = Solve.ival s e in
  check Alcotest.bool "masked count sound" true (lo <= v && v <= hi)

(* Regression: ha*hb and ha lsl k can overflow the 63-bit native int, which
   must widen to top instead of producing a negative bound — found by the
   soundness property. *)
let ival_native_overflow_safe () =
  let s = Solve.create () in
  let sub = Expr.Bin (Sub, Expr.byte 1, Expr.byte 0) in
  let e = Expr.Bin (Mul, Expr.Const 4294967121, Expr.Bin (Shl, Expr.Const 999424, sub)) in
  let v = Expr.eval (fun _ -> 0) e in
  let lo, hi = Solve.ival s e in
  check Alcotest.bool "bounds non-negative" true (lo >= 0 && hi >= lo);
  check Alcotest.bool "value covered" true (lo <= v && v <= hi)

(* ------------------------------------------------------------------ *)
(* Narrowing edge cases *)

(* Shl/Shr with a non-constant shift count must stay sound: no inversion is
   known, so narrowing may only prune via feasibility, never tighten into a
   wrong bound. *)
let narrow_shl_symbolic_count () =
  let s = Solve.create () in
  let e = Expr.bin Shl (Expr.byte 0) (Expr.byte 1) in
  (match add { Expr.rel = Eq; lhs = e; rhs = Expr.const 0x20 } s with
  | Solve.Ok -> ()
  | Solve.Unsat -> Alcotest.fail "b0 << b1 = 0x20 is satisfiable (8 << 2)");
  match Solve.solve s with
  | Solve.Sat m ->
      check Alcotest.int "model evaluates" 0x20
        (Expr.eval (Solve.model_byte m) e)
  | _ -> Alcotest.fail "expected sat"

let narrow_shr_symbolic_count () =
  let s = Solve.create () in
  let e = Expr.bin Shr (Expr.byte 0) (Expr.byte 1) in
  ignore (add { Expr.rel = Eq; lhs = Expr.byte 1; rhs = Expr.const 3 } s);
  (match add { Expr.rel = Eq; lhs = e; rhs = Expr.const 0x1F } s with
  | Solve.Ok -> ()
  | Solve.Unsat -> Alcotest.fail "b0 >> 3 = 0x1F is satisfiable (0xF8 >> 3)");
  match Solve.solve s with
  | Solve.Sat m -> check Alcotest.int "shifted" 0x1F (Solve.model_byte m 0 lsr 3)
  | _ -> Alcotest.fail "expected sat"

(* A Sel whose index interval extends past the table must keep 0 (the
   out-of-range value) in its bounds and still narrow the index when the
   wanted value only occurs in range. *)
let sel_out_of_range_bounds () =
  let s = Solve.create () in
  let table = [| 10; 20; 30; 40 |] in
  let lo, hi = Solve.ival s (Expr.Sel (table, Expr.byte 0)) in
  check Alcotest.bool "covers OOB zero" true (lo <= 0);
  check Alcotest.int "max of table" 40 hi;
  ignore (add { Expr.rel = Eq; lhs = Expr.Sel (table, Expr.byte 0); rhs = Expr.const 30 } s);
  match Solve.solve s with
  | Solve.Sat m -> check Alcotest.int "index pinned" 2 (Solve.model_byte m 0)
  | _ -> Alcotest.fail "expected sat"

let sel_unsat_value_not_in_table () =
  let s = Solve.create () in
  let table = [| 1; 2; 3 |] in
  ignore (add { Expr.rel = Lt; lhs = Expr.byte 0; rhs = Expr.const 3 } s);
  match add { Expr.rel = Eq; lhs = Expr.Sel (table, Expr.byte 0); rhs = Expr.const 9 } s with
  | Solve.Unsat -> ()
  | Solve.Ok -> (
      (* Narrowing may miss it; the search must not produce a bogus model. *)
      match Solve.solve s with
      | Solve.Sat _ -> Alcotest.fail "9 is not in the table"
      | Solve.Unsat_result | Solve.Unknown -> ())

(* The And-0xff masking rule: when the operand is already byte-sized the
   mask is exact, so equality through the mask pins the byte. *)
let and_ff_mask_narrows () =
  let s = Solve.create () in
  ignore
    (add { Expr.rel = Eq;
           lhs = Expr.bin And (Expr.byte 2) (Expr.const 0xff);
           rhs = Expr.const 0x7E } s);
  check (Alcotest.pair Alcotest.int Alcotest.int) "pinned through mask" (0x7E, 0x7E)
    (Solve.dom s 2)

let and_ff_mask_wide_operand_sound () =
  (* When the operand can exceed 0xff the rule must not fire with a wrong
     bound; the constraint still solves by search. *)
  let s = Solve.create () in
  let wide = Expr.bin Add (Expr.byte 0) (Expr.const 0x100) in
  ignore (add { Expr.rel = Eq; lhs = Expr.bin And wide (Expr.const 0xff); rhs = Expr.const 5 } s);
  match Solve.solve s with
  | Solve.Sat m -> check Alcotest.int "low byte" 5 (Solve.model_byte m 0)
  | _ -> Alcotest.fail "expected sat"

(* Trail/backtracking invariants of the rewritten engine. *)
let add_checked_restores_store () =
  let s = Solve.create () in
  ignore (add { Expr.rel = Le; lhs = Expr.byte 0; rhs = Expr.const 10 } s);
  let before = Solve.dom s 0 in
  let n_before = List.length (Solve.constraints s) in
  (match Solve.add_checked s { Expr.rel = Gt; lhs = Expr.byte 0; rhs = Expr.const 10 } with
  | Solve.Unsat -> ()
  | Solve.Ok -> Alcotest.fail "contradiction must be Unsat");
  check (Alcotest.pair Alcotest.int Alcotest.int) "domain restored" before (Solve.dom s 0);
  check Alcotest.int "constraint retracted" n_before (List.length (Solve.constraints s));
  (* The clean store must still accept the other direction. *)
  match Solve.add_checked s { Expr.rel = Le; lhs = Expr.byte 0; rhs = Expr.const 5 } with
  | Solve.Ok -> check Alcotest.int "narrowed" 5 (snd (Solve.dom s 0))
  | Solve.Unsat -> Alcotest.fail "fallback direction must be sat"

let solve_restores_domains () =
  let s = Solve.create () in
  ignore (add { Expr.rel = Le; lhs = Expr.byte 0; rhs = Expr.const 200 } s);
  ignore (add { Expr.rel = Lt; lhs = Expr.byte 1; rhs = Expr.byte 0 } s);
  let d0 = Solve.dom s 0 and d1 = Solve.dom s 1 in
  (match Solve.solve s with Solve.Sat _ -> () | _ -> Alcotest.fail "expected sat");
  check (Alcotest.pair Alcotest.int Alcotest.int) "dom 0 untouched" d0 (Solve.dom s 0);
  check (Alcotest.pair Alcotest.int Alcotest.int) "dom 1 untouched" d1 (Solve.dom s 1)

(* Cross-phase scopes: the multi-add generalization of add_checked used by
   P3 bunch pinning. *)
let scope_pop_restores_store () =
  let s = Solve.create () in
  ignore (add { Expr.rel = Le; lhs = Expr.byte 0; rhs = Expr.const 100 } s);
  let d0 = Solve.dom s 0 and n0 = List.length (Solve.constraints s) in
  let sc = Solve.push_scope s in
  ignore (add { Expr.rel = Eq; lhs = Expr.byte 0; rhs = Expr.const 65 } s);
  ignore (add { Expr.rel = Le; lhs = Expr.byte 1; rhs = Expr.const 9 } s);
  check (Alcotest.pair Alcotest.int Alcotest.int) "pinned inside scope" (65, 65)
    (Solve.dom s 0);
  Solve.pop_scope s sc;
  check (Alcotest.pair Alcotest.int Alcotest.int) "dom 0 restored" d0 (Solve.dom s 0);
  check (Alcotest.pair Alcotest.int Alcotest.int) "dom 1 restored" (0, 255) (Solve.dom s 1);
  check Alcotest.int "constraints retracted" n0 (List.length (Solve.constraints s));
  (* The rolled-back store must accept what the scope made unsat. *)
  match add { Expr.rel = Eq; lhs = Expr.byte 0; rhs = Expr.const 99 } s with
  | Solve.Ok -> ()
  | Solve.Unsat -> Alcotest.fail "popped scope must not leak narrowings"

let scope_core_then_pop () =
  (* The P3 conflict path: interrogate the poisoned scoped store for an
     unsat core, then pop back to a usable store. *)
  let s = Solve.create () in
  ignore (add { Expr.rel = Le; lhs = Expr.byte 0; rhs = Expr.const 10 } s);
  let sc = Solve.push_scope s in
  (match add { Expr.rel = Gt; lhs = Expr.byte 0; rhs = Expr.const 10 } s with
  | Solve.Unsat -> ()
  | Solve.Ok -> Alcotest.fail "pin must conflict");
  let core = Solve.unsat_core (Solve.constraints s) in
  check Alcotest.bool "core is non-empty" true (core <> []);
  Solve.pop_scope s sc;
  check Alcotest.int "only the base constraint remains" 1
    (List.length (Solve.constraints s));
  match Solve.solve s with
  | Solve.Sat _ -> ()
  | _ -> Alcotest.fail "store must be sat again after pop"

let scope_commit_keeps_pins () =
  let s = Solve.create () in
  let sc = Solve.push_scope s in
  ignore (add { Expr.rel = Eq; lhs = Expr.byte 0; rhs = Expr.const 65 } s);
  Solve.commit_scope s sc;
  check (Alcotest.pair Alcotest.int Alcotest.int) "pin survives commit" (65, 65)
    (Solve.dom s 0);
  check Alcotest.int "constraint survives commit" 1 (List.length (Solve.constraints s));
  (* Committed scopes must leave the store in its default untrailed mode:
     a later add's narrowing must be permanent. *)
  ignore (add { Expr.rel = Le; lhs = Expr.byte 1; rhs = Expr.const 3 } s);
  check (Alcotest.pair Alcotest.int Alcotest.int) "post-commit add permanent" (0, 3)
    (Solve.dom s 1)

let scope_nests_with_transactions () =
  (* add_checked and solve save/restore their own state; running them inside
     an open scope must not disturb the scope's rollback point. *)
  let s = Solve.create () in
  ignore (add { Expr.rel = Le; lhs = Expr.byte 0; rhs = Expr.const 50 } s);
  let sc = Solve.push_scope s in
  ignore (add { Expr.rel = Ge; lhs = Expr.byte 0; rhs = Expr.const 10 } s);
  (match Solve.add_checked s { Expr.rel = Gt; lhs = Expr.byte 0; rhs = Expr.const 50 } with
  | Solve.Unsat -> ()
  | Solve.Ok -> Alcotest.fail "inner transaction must be unsat");
  check (Alcotest.pair Alcotest.int Alcotest.int) "scope narrowing intact" (10, 50)
    (Solve.dom s 0);
  (match Solve.solve s with Solve.Sat _ -> () | _ -> Alcotest.fail "expected sat");
  Solve.pop_scope s sc;
  check (Alcotest.pair Alcotest.int Alcotest.int) "outer domain restored" (0, 50)
    (Solve.dom s 0);
  check Alcotest.int "outer constraints only" 1 (List.length (Solve.constraints s))

(* Regression: the indexed-store rewrite must return the exact models the
   assoc-list engine produced on these seed constraint sets (captured from
   commit 8c76129).  Identical search order (ascending values, smallest
   domain first) plus identical propagation fixpoints imply identical
   models, so any divergence here means the engine changed semantics. *)
let seed_model_regression () =
  let expect name s want =
    match Solve.solve s with
    | Solve.Sat m ->
        List.iter
          (fun (v, x) ->
            check Alcotest.int (Printf.sprintf "%s: byte %d" name v) x (Solve.model_byte m v))
          want
    | _ -> Alcotest.failf "%s: expected sat" name
  in
  let s = Solve.create () in
  let w = Expr.bin Or (Expr.byte 0) (Expr.bin Shl (Expr.byte 1) (Expr.const 8)) in
  ignore (add { Expr.rel = Eq; lhs = w; rhs = Expr.const 0x8000 } s);
  expect "le16" s [ (0, 0); (1, 128) ];
  let s = Solve.create () in
  ignore (add { Expr.rel = Eq; lhs = Expr.bin Add (Expr.byte 0) (Expr.byte 1); rhs = Expr.const 300 } s);
  ignore (add { Expr.rel = Lt; lhs = Expr.byte 2; rhs = Expr.byte 0 } s);
  expect "sum" s [ (0, 45); (1, 255); (2, 0) ];
  let s = Solve.create () in
  ignore (add { Expr.rel = Eq; lhs = Expr.bin And (Expr.byte 3) (Expr.const 0xff); rhs = Expr.const 0x41 } s);
  ignore (add { Expr.rel = Ge; lhs = Expr.byte 4; rhs = Expr.const 250 } s);
  ignore (add { Expr.rel = Ne; lhs = Expr.byte 4; rhs = Expr.const 250 } s);
  expect "mask" s [ (3, 65); (4, 251) ];
  let s = Solve.create () in
  ignore (add { Expr.rel = Lt; lhs = Expr.byte 0; rhs = Expr.byte 1 } s);
  ignore (add { Expr.rel = Lt; lhs = Expr.byte 1; rhs = Expr.byte 2 } s);
  ignore (add { Expr.rel = Le; lhs = Expr.byte 2; rhs = Expr.const 2 } s);
  expect "chain" s [ (0, 0); (1, 1); (2, 2) ]

(* ------------------------------------------------------------------ *)
(* Properties *)

let gen_expr =
  (* Random small expressions over bytes 0..3. *)
  let open QCheck.Gen in
  let leaf = oneof [ map Expr.const (int_bound 300); map Expr.byte (int_bound 3) ] in
  let op = oneofl [ Add; Sub; Mul; And; Or; Xor; Shl; Shr ] in
  let rec go n =
    if n = 0 then leaf
    else oneof [ leaf; map3 (fun o a b -> Expr.bin o a b) op (go (n - 1)) (go (n - 1)) ]
  in
  go 3

let arb_expr = QCheck.make gen_expr ~print:(Fmt.str "%a" Expr.pp)

let arb_env =
  QCheck.(quad (int_bound 255) (int_bound 255) (int_bound 255) (int_bound 255))

let env_of4 (a, b, c, d) i = List.nth [ a; b; c; d ] (i land 3)

let qcheck_tests =
  [
    QCheck.Test.make ~name:"interval eval is sound (value within ival)"
      QCheck.(pair arb_expr arb_env)
      (fun (e, env4) ->
        let v = Expr.eval (env_of4 env4) e in
        let lo, hi = Solve.ival (Solve.create ()) e in
        lo <= v && v <= hi);
    QCheck.Test.make ~name:"negate flips cond evaluation"
      QCheck.(triple arb_expr arb_expr arb_env)
      (fun (a, b, env4) ->
        let env = env_of4 env4 in
        List.for_all
          (fun rel ->
            let c = { Expr.rel; lhs = a; rhs = b } in
            Expr.eval_cond env c = not (Expr.eval_cond env (Expr.negate c)))
          [ Eq; Ne; Lt; Le; Gt; Ge ]);
    QCheck.Test.make ~name:"bin folding preserves semantics"
      QCheck.(pair arb_expr arb_env)
      (fun (e, env4) ->
        match e with
        | Expr.Bin (op, a, b) ->
            let env = env_of4 env4 in
            Expr.eval env (Expr.bin op a b) = Expr.eval env e
        | _ -> true);
    QCheck.Test.make ~name:"solve returns verifying models" ~count:60
      QCheck.(list_of_size Gen.(1 -- 4) (pair (int_bound 3) (int_bound 255)))
      (fun pins ->
        let s = Solve.create () in
        let ok =
          List.for_all
            (fun (v, x) ->
              Solve.add s { Expr.rel = Le; lhs = Expr.byte v; rhs = Expr.const x } = Solve.Ok)
            pins
        in
        (not ok)
        ||
        match Solve.solve s with
        | Solve.Sat m -> model_satisfies s m
        | Solve.Unsat_result | Solve.Unknown -> false);
  ]

let suite =
  [
    tc "expr: constant folding" expr_const_fold;
    tc "expr: identity folding" expr_identity_fold;
    tc "expr: evaluation" expr_eval;
    tc "expr: vars" expr_vars;
    tc "expr: negate involution" expr_negate_involution;
    tc "expr: symbolic division by zero" expr_div_zero;
    tc "store: eq pins domain" store_eq_pins_domain;
    tc "store: contradiction detected" store_contradiction_detected;
    tc "store: lt narrows" store_lt_narrows;
    tc "store: add-shape inversion" store_add_shape_narrows;
    tc "store: entails" store_entails;
    tc "store: copy isolation" store_copy_isolated;
    tc "solve: simple" solve_simple;
    tc "solve: 16-bit word target" solve_le16_word;
    tc "solve: unsat detected" solve_unsat;
    tc "solve: ne chain forces last value" solve_ne_chain;
    tc "solve: cross-variable ordering" solve_cross_var;
    tc "solve: empty store" solve_empty_store;
    tc "solve: arithmetic sum" solve_arith_sum;
    tc "narrow: shl with symbolic count" narrow_shl_symbolic_count;
    tc "narrow: shr with symbolic count" narrow_shr_symbolic_count;
    tc "sel: out-of-range index bounds" sel_out_of_range_bounds;
    tc "sel: value not in table" sel_unsat_value_not_in_table;
    tc "narrow: and-0xff mask pins byte" and_ff_mask_narrows;
    tc "narrow: and-0xff wide operand sound" and_ff_mask_wide_operand_sound;
    tc "store: add_checked restores on unsat" add_checked_restores_store;
    tc "scope: pop restores store" scope_pop_restores_store;
    tc "scope: core extraction then pop" scope_core_then_pop;
    tc "scope: commit keeps pins" scope_commit_keeps_pins;
    tc "scope: nests with transactions" scope_nests_with_transactions;
    tc "solve: domains restored after search" solve_restores_domains;
    tc "solve: seed model regression" seed_model_regression;
    tc "ival: and-mask bounds" ival_masking;
    tc "ival: wrap widens to top" ival_mul_wrap_top;
    tc "ival: shift count masked (regression)" ival_shift_count_masked;
    tc "ival: native-int overflow safe (regression)" ival_native_overflow_safe;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests
