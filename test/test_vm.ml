(* Unit tests for the MiniVM substrate: ISA semantics, assembler, memory,
   file table, interpreter and its instrumentation hooks. *)

open Octo_vm
open Octo_vm.Isa
open Octo_vm.Asm

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* ISA arithmetic semantics *)

let binop_wraps () =
  check Alcotest.int "add wraps" 0 (eval_binop Add 0xFFFFFFFF 1);
  check Alcotest.int "sub wraps" 0xFFFFFFFF (eval_binop Sub 0 1);
  check Alcotest.int "mul wraps" 0 (eval_binop Mul 0x10000 0x10000);
  check Alcotest.int "mul wrap x4" 0 (eval_binop Mul (eval_binop Mul 0x8000 0x8000) 4)

let binop_basic () =
  check Alcotest.int "div" 3 (eval_binop Div 10 3);
  check Alcotest.int "mod" 1 (eval_binop Mod 10 3);
  check Alcotest.int "and" 0x0F (eval_binop And 0xFF 0x0F);
  check Alcotest.int "or" 0xFF (eval_binop Or 0xF0 0x0F);
  check Alcotest.int "xor" 0xFF (eval_binop Xor 0xF0 0x0F);
  check Alcotest.int "shl" 0x100 (eval_binop Shl 1 8);
  check Alcotest.int "shr" 1 (eval_binop Shr 0x100 8)

let binop_div_zero () =
  Alcotest.check_raises "div by zero" Division_by_zero (fun () -> ignore (eval_binop Div 1 0));
  Alcotest.check_raises "mod by zero" Division_by_zero (fun () -> ignore (eval_binop Mod 1 0))

let shift_masks_count () =
  check Alcotest.int "shl count mod 32" 2 (eval_binop Shl 1 33)

let relop_unsigned () =
  (* -1 masks to 0xFFFFFFFF, which is the largest unsigned value. *)
  check Alcotest.bool "unsigned lt" false (eval_relop Lt (-1) 1);
  check Alcotest.bool "unsigned gt" true (eval_relop Gt (-1) 1);
  check Alcotest.bool "eq masked" true (eval_relop Eq (-1) 0xFFFFFFFF)

(* ------------------------------------------------------------------ *)
(* Assembler *)

let asm_simple () =
  let p =
    assemble ~name:"t" ~entry:"main"
      [ fn "main" ~params:0 [ I (Mov (0, Imm 7)); I (Sys (Exit (Reg 0))) ] ]
  in
  check Alcotest.int "one function" 1 (Hashtbl.length p.funcs);
  check Alcotest.int "two instructions" 2 (Asm.size_of_code p)

let asm_labels_resolve () =
  let p =
    assemble ~name:"t" ~entry:"main"
      [
        fn "main" ~params:0
          [ I (Jmp "end"); I (Sys (Exit (Imm 1))); L "end"; I (Sys (Exit (Imm 0))) ];
      ]
  in
  match (func_exn p "main").code.(0) with
  | Jmp 2 -> ()
  | i -> Alcotest.failf "unexpected %a" pp_instr i

let asm_duplicate_label () =
  Alcotest.check_raises "dup label" (Asm_error "duplicate label \"x\"") (fun () ->
      ignore
        (assemble ~name:"t" ~entry:"main" [ fn "main" ~params:0 [ L "x"; L "x"; I Halt ] ]))

let asm_unknown_label () =
  Alcotest.check_raises "unknown" (Asm_error "unknown label \"nope\"") (fun () ->
      ignore (assemble ~name:"t" ~entry:"main" [ fn "main" ~params:0 [ I (Jmp "nope") ] ]))

let asm_unknown_entry () =
  Alcotest.check_raises "entry" (Asm_error "entry function \"main\" not defined") (fun () ->
      ignore (assemble ~name:"t" ~entry:"main" [ fn "other" ~params:0 [ I Halt ] ]))

let asm_call_arity_checked () =
  Alcotest.check_raises "arity"
    (Asm_error "call to \"f\" with 1 args, expected 2 (in main)")
    (fun () ->
      ignore
        (assemble ~name:"t" ~entry:"main"
           [
             fn "main" ~params:0 [ I (Call ("f", [ Imm 1 ], None)); I Halt ];
             fn "f" ~params:2 [ I (Ret (Imm 0)) ];
           ]))

let asm_undefined_callee () =
  Alcotest.check_raises "undefined"
    (Asm_error "call to undefined function \"g\" (in main)")
    (fun () ->
      ignore
        (assemble ~name:"t" ~entry:"main"
           [ fn "main" ~params:0 [ I (Call ("g", [], None)) ] ]))

let asm_data_symbols () =
  let p =
    assemble ~name:"t" ~entry:"main"
      ~data:[ ("a", "hi"); ("b", "world") ]
      [ fn "main" ~params:0 [ I (Mov (0, Sym "b")); I Halt ] ]
  in
  (match (func_exn p "main").code.(0) with
  | Mov (0, Imm addr) -> check Alcotest.int "b after a" (Asm.data_base + 2) addr
  | i -> Alcotest.failf "unexpected %a" pp_instr i);
  check Alcotest.int "data entries" 2 (List.length p.data)

let asm_unknown_symbol () =
  Alcotest.check_raises "unknown sym" (Asm_error "unknown data symbol \"nope\"") (fun () ->
      ignore
        (assemble ~name:"t" ~entry:"main" [ fn "main" ~params:0 [ I (Mov (0, Sym "nope")) ] ]))

(* ------------------------------------------------------------------ *)
(* Memory *)

let mem_alloc_bounds () =
  let m = Mem.create () in
  let b = Mem.alloc m 4 in
  Mem.write8 m (b + 3) 0xAB;
  check Alcotest.int "read back" 0xAB (Mem.read8 m (b + 3));
  Alcotest.check_raises "oob write faults" (Mem.Fault (Mem.Oob_write (b + 4))) (fun () ->
      Mem.write8 m (b + 4) 1)

let mem_alloc_padding () =
  let m = Mem.create () in
  let a = Mem.alloc m 8 in
  let b = Mem.alloc m 8 in
  check Alcotest.bool "allocations padded apart" true (b - a > 8)

let mem_null_deref () =
  let m = Mem.create () in
  Alcotest.check_raises "null read" (Mem.Fault (Mem.Null_deref 4)) (fun () ->
      ignore (Mem.read8 m 4))

let mem_rodata_protected () =
  let m = Mem.create () in
  Mem.load_rodata m [ ("s", 0x1000, "ro") ];
  check Alcotest.int "rodata readable" (Char.code 'r') (Mem.read8 m 0x1000);
  Alcotest.check_raises "rodata write faults" (Mem.Fault (Mem.Write_to_rodata 0x1000))
    (fun () -> Mem.write8 m 0x1000 0)

let mem_word_roundtrip () =
  let m = Mem.create () in
  let b = Mem.alloc m 8 in
  Mem.write_word m b 0xDEADBEEF;
  check Alcotest.int "word roundtrip" 0xDEADBEEF (Mem.read_word m b);
  check Alcotest.int "little endian low byte" 0xEF (Mem.read8 m b)

let mem_zero_alloc () =
  let m = Mem.create () in
  let b = Mem.alloc m 0 in
  Alcotest.check_raises "empty region faults" (Mem.Fault (Mem.Oob_write b)) (fun () ->
      Mem.write8 m b 1)

(* ------------------------------------------------------------------ *)
(* Vfile *)

let vfile_sequential () =
  let f = Vfile.create "hello" in
  let fd = Vfile.open_ f in
  let off, s = Vfile.read f fd 3 in
  check Alcotest.int "first offset" 0 off;
  check Alcotest.string "first bytes" "hel" s;
  let _, s2 = Vfile.read f fd 10 in
  check Alcotest.string "short read at EOF" "lo" s2;
  let _, s3 = Vfile.read f fd 1 in
  check Alcotest.string "EOF reads empty" "" s3

let vfile_seek_tell () =
  let f = Vfile.create "abcdef" in
  let fd = Vfile.open_ f in
  Vfile.seek f fd 4;
  check Alcotest.int "tell after seek" 4 (Vfile.tell f fd);
  let _, s = Vfile.read f fd 2 in
  check Alcotest.string "read at pos" "ef" s

let vfile_seek_past_eof () =
  let f = Vfile.create "ab" in
  let fd = Vfile.open_ f in
  Vfile.seek f fd 100;
  let _, s = Vfile.read f fd 4 in
  check Alcotest.string "reads empty" "" s

let vfile_two_handles () =
  let f = Vfile.create "xyz" in
  let a = Vfile.open_ f and b = Vfile.open_ f in
  ignore (Vfile.read f a 2);
  check Alcotest.int "independent positions" 0 (Vfile.tell f b)

let vfile_bad_fd () =
  let f = Vfile.create "" in
  Alcotest.check_raises "bad fd" (Vfile.Bad_fd 99) (fun () -> ignore (Vfile.tell f 99))

(* ------------------------------------------------------------------ *)
(* Interpreter *)

let prog items = assemble ~name:"t" ~entry:"main" [ fn "main" ~params:0 items ]

let run ?(input = "") p = Interp.run p ~input

let exit_code r = match r.Interp.outcome with Interp.Exited c -> c | Interp.Crashed _ -> -1

let interp_arith () =
  let p =
    prog [ I (Mov (1, Imm 6)); I (Bin (Mul, 2, Reg 1, Imm 7)); I (Sys (Exit (Reg 2))) ]
  in
  check Alcotest.int "6*7" 42 (exit_code (run p))

let interp_branching () =
  let p =
    prog
      [
        I (Mov (1, Imm 5));
        I (Jif (Lt, Reg 1, Imm 10, "small"));
        I (Sys (Exit (Imm 1)));
        L "small";
        I (Sys (Exit (Imm 0)));
      ]
  in
  check Alcotest.int "takes branch" 0 (exit_code (run p))

let interp_loop () =
  (* sum 1..10 *)
  let p =
    prog
      [
        I (Mov (1, Imm 0));
        I (Mov (2, Imm 1));
        L "l";
        I (Jif (Gt, Reg 2, Imm 10, "done"));
        I (Bin (Add, 1, Reg 1, Reg 2));
        I (Bin (Add, 2, Reg 2, Imm 1));
        I (Jmp "l");
        L "done";
        I (Sys (Exit (Reg 1)));
      ]
  in
  check Alcotest.int "sum" 55 (exit_code (run p))

let interp_call_ret () =
  let p =
    assemble ~name:"t" ~entry:"main"
      [
        fn "main" ~params:0 [ I (Call ("double", [ Imm 21 ], Some 1)); I (Sys (Exit (Reg 1))) ];
        fn "double" ~params:1 [ I (Bin (Add, 1, Reg 0, Reg 0)); I (Ret (Reg 1)) ];
      ]
  in
  check Alcotest.int "call result" 42 (exit_code (run p))

let interp_recursion () =
  let p =
    assemble ~name:"t" ~entry:"main"
      [
        fn "main" ~params:0 [ I (Call ("fact", [ Imm 6 ], Some 1)); I (Sys (Exit (Reg 1))) ];
        fn "fact" ~params:1
          [
            I (Jif (Le, Reg 0, Imm 1, "base"));
            I (Bin (Sub, 1, Reg 0, Imm 1));
            I (Call ("fact", [ Reg 1 ], Some 2));
            I (Bin (Mul, 3, Reg 0, Reg 2));
            I (Ret (Reg 3));
            L "base";
            I (Ret (Imm 1));
          ];
      ]
  in
  check Alcotest.int "6!" 720 (exit_code (run p))

let interp_fall_off_returns_zero () =
  let p =
    assemble ~name:"t" ~entry:"main"
      [
        fn "main" ~params:0 [ I (Call ("f", [], Some 1)); I (Sys (Exit (Reg 1))) ];
        fn "f" ~params:0 [ I (Mov (0, Imm 9)) ];
      ]
  in
  check Alcotest.int "implicit ret 0" 0 (exit_code (run p))

let interp_read_input () =
  let p =
    prog
      [
        I (Sys (Open 1));
        I (Sys (Alloc (2, Imm 8)));
        I (Sys (Read (3, Reg 1, Reg 2, Imm 2)));
        I (Load8 (4, Reg 2, Imm 1));
        I (Sys (Exit (Reg 4)));
      ]
  in
  check Alcotest.int "second byte" Char.(code 'B') (exit_code (run ~input:"AB" p))

let interp_mmap () =
  let p =
    prog [ I (Sys (Mmap (1, Imm 0))); I (Load8 (2, Reg 1, Imm 3)); I (Sys (Exit (Reg 2))) ]
  in
  check Alcotest.int "mapped byte" Char.(code 'D') (exit_code (run ~input:"ABCD" p))

let interp_fsize_tell_seek () =
  let p =
    prog
      [
        I (Sys (Open 1));
        I (Sys (Fsize (2, Reg 1)));
        I (Sys (Seek (Reg 1, Imm 2)));
        I (Sys (Tell (3, Reg 1)));
        I (Bin (Mul, 4, Reg 2, Imm 10));
        I (Bin (Add, 4, Reg 4, Reg 3));
        I (Sys (Exit (Reg 4)));
      ]
  in
  check Alcotest.int "size*10+pos" 52 (exit_code (run ~input:"hello" p))

let interp_crash_backtrace () =
  let p =
    assemble ~name:"t" ~entry:"main"
      [
        fn "main" ~params:0 [ I (Call ("inner", [], None)); I Halt ];
        fn "inner" ~params:0 [ I (Store8 (Imm 4, Imm 0, Imm 1)) ];
      ]
  in
  match (run p).outcome with
  | Interp.Crashed c ->
      check Alcotest.(list string) "backtrace" [ "main"; "inner" ] c.backtrace;
      check Alcotest.string "crash func" "inner" c.crash_func;
      (match c.fault with Mem.Null_deref _ -> () | f -> Alcotest.failf "fault %a" Mem.pp_fault f)
  | Interp.Exited _ -> Alcotest.fail "expected crash"

let interp_hang_budget () =
  let p = prog [ L "l"; I (Jmp "l") ] in
  match (Interp.run ~max_steps:1000 p ~input:"").outcome with
  | Interp.Crashed { fault = Mem.Hang; _ } -> ()
  | o -> Alcotest.failf "expected hang, got %a" Interp.pp_outcome o

let interp_div_zero_fault () =
  let p = prog [ I (Mov (1, Imm 0)); I (Bin (Div, 2, Imm 1, Reg 1)); I Halt ] in
  match (run p).outcome with
  | Interp.Crashed { fault = Mem.Div_by_zero; _ } -> ()
  | o -> Alcotest.failf "expected div0, got %a" Interp.pp_outcome o

let interp_emit_outputs () =
  let p = prog [ I (Sys (Emit (Imm 1))); I (Sys (Emit (Imm 2))); I (Sys (Exit (Imm 0))) ] in
  check Alcotest.(list int) "outputs in order" [ 1; 2 ] (run p).outputs

let interp_icall () =
  let p =
    assemble ~name:"t" ~entry:"main"
      [
        fn "main" ~params:0 [ I (Icall (Imm 1, [ Imm 20 ], Some 1)); I (Sys (Exit (Reg 1))) ];
        fn "h" ~params:1 [ I (Bin (Add, 1, Reg 0, Imm 2)); I (Ret (Reg 1)) ];
      ]
  in
  check Alcotest.int "through table" 22 (exit_code (run p))

let interp_icall_invalid_slot () =
  let p = prog [ I (Icall (Imm 99, [], None)); I Halt ] in
  match (run p).outcome with
  | Interp.Crashed { fault = Mem.Bad_icall 99; _ } -> ()
  | o -> Alcotest.failf "expected bad icall, got %a" Interp.pp_outcome o

let hooks_input_bytes () =
  let seen = ref [] in
  let hooks =
    { Interp.no_hooks with
      on_input_bytes = (fun ~addr ~file_off ~len -> seen := (addr, file_off, len) :: !seen) }
  in
  let p =
    prog
      [
        I (Sys (Open 1));
        I (Sys (Alloc (2, Imm 8)));
        I (Sys (Read (3, Reg 1, Reg 2, Imm 2)));
        I (Sys (Read (3, Reg 1, Reg 2, Imm 2)));
        I Halt;
      ]
  in
  ignore (Interp.run ~hooks p ~input:"abcd");
  check Alcotest.int "two read events" 2 (List.length !seen);
  let offs = List.rev_map (fun (_, o, _) -> o) !seen in
  check Alcotest.(list int) "file offsets advance" [ 0; 2 ] offs

let hooks_access_dataflow () =
  (* A mov from register to register reports the source as read and the
     destination as written. *)
  let events = ref [] in
  let hooks = { Interp.no_hooks with on_access = (fun a -> events := a :: !events) } in
  let p = prog [ I (Mov (1, Imm 3)); I (Mov (2, Reg 1)); I Halt ] in
  ignore (Interp.run ~hooks p ~input:"");
  let second = List.nth (List.rev !events) 1 in
  check Alcotest.int "one read" 1 (List.length second.Interp.reads);
  (match second.Interp.reads with
  | [ Interp.OReg (_, 1) ] -> ()
  | _ -> Alcotest.fail "expected read of r1");
  match second.Interp.writes with
  | [ Interp.OReg (_, 2) ] -> ()
  | _ -> Alcotest.fail "expected write of r2"

let hooks_call_args () =
  let calls = ref [] in
  let hooks =
    { Interp.no_hooks with
      on_call = (fun ~fname ~frame_id:_ ~args -> calls := (fname, args) :: !calls) }
  in
  let p =
    assemble ~name:"t" ~entry:"main"
      [
        fn "main" ~params:0 [ I (Call ("g", [ Imm 4; Imm 5 ], None)); I Halt ];
        fn "g" ~params:2 [ I (Ret (Imm 0)) ];
      ]
  in
  ignore (Interp.run ~hooks p ~input:"");
  check Alcotest.(list (pair string (list int))) "call observed" [ ("g", [ 4; 5 ]) ] !calls

let hooks_edges_on_branch () =
  let edges = ref 0 in
  let hooks = { Interp.no_hooks with on_edge = (fun _ _ _ -> incr edges) } in
  let p = prog [ I (Jif (Eq, Imm 1, Imm 1, "x")); L "x"; I Halt ] in
  ignore (Interp.run ~hooks p ~input:"");
  check Alcotest.bool "edge fired" true (!edges >= 1)

(* ------------------------------------------------------------------ *)
(* Differential testing: compiled engine vs the reference interpreter.

   [Interp.run] executes direct-threaded closures ({!Compile}); the original
   decode-per-step loop survives as [Interp.run_reference], the executable
   specification.  Random structured programs are run through both engines
   and everything observable must agree: outcome (including crash site and
   backtrace), outputs, step count, every instrumentation hook stream, and
   fault-injection behavior. *)

(* A statement AST that lowers to assemblable, terminating MiniVM code.
   Loops are counter-bounded (register 8, never nested), yet the programs
   still exercise crash paths: wild stores past the 16-byte buffer and
   divisions by possibly-zero data registers. *)
type gstmt =
  | G_arith of int * int * int * int  (* binop index, dst, src, src *)
  | G_read of int                     (* next input byte -> data reg *)
  | G_emit of int
  | G_if of relop * int * int * gstmt list * gstmt list
  | G_loop of int * gstmt list        (* fixed iteration count *)
  | G_store of int * int              (* mem8[buf+off] <- reg; off may be oob *)
  | G_load of int * int
  | G_call of int                     (* d <- h(d): exercises frames *)

let all_binops = [| Add; Sub; Mul; Div; Mod; And; Or; Xor; Shl; Shr |]

(* Data registers are r4-r7; r1 = fd, r2 = buffer, r3 = read status, r8 =
   loop counter. *)
let dreg i = 4 + i

let lower stmts =
  let lbl = ref 0 in
  let fresh () = incr lbl; Printf.sprintf "L%d" !lbl in
  let rec stmt = function
    | G_arith (o, d, a, b) ->
        [ I (Bin (all_binops.(o), dreg d, Reg (dreg a), Reg (dreg b))) ]
    | G_read d ->
        [ I (Sys (Read (3, Reg 1, Reg 2, Imm 1))); I (Load8 (dreg d, Reg 2, Imm 0)) ]
    | G_emit d -> [ I (Sys (Emit (Reg (dreg d)))) ]
    | G_if (r, a, b, th, el) ->
        let lt = fresh () and le = fresh () in
        [ I (Jif (r, Reg (dreg a), Reg (dreg b), lt)) ]
        @ List.concat_map stmt el
        @ [ I (Jmp le); L lt ]
        @ List.concat_map stmt th
        @ [ L le ]
    | G_loop (n, body) ->
        let head = fresh () and stop = fresh () in
        [ I (Mov (8, Imm n)); L head; I (Jif (Eq, Reg 8, Imm 0, stop)) ]
        @ List.concat_map stmt body
        @ [ I (Bin (Sub, 8, Reg 8, Imm 1)); I (Jmp head); L stop ]
    | G_store (d, off) -> [ I (Store8 (Reg 2, Imm off, Reg (dreg d))) ]
    | G_load (d, off) -> [ I (Load8 (dreg d, Reg 2, Imm off)) ]
    | G_call d -> [ I (Call ("h", [ Reg (dreg d) ], Some (dreg d))) ]
  in
  assemble ~name:"t" ~entry:"main"
    [
      fn "main" ~params:0
        ([ I (Sys (Open 1)); I (Sys (Alloc (2, Imm 16))) ]
        @ List.init 4 (fun i -> I (Mov (dreg i, Imm (i + 1))))
        @ List.concat_map stmt stmts
        @ [ I (Sys (Emit (Reg 4))); I Halt ]);
      fn "h" ~params:1
        [
          I (Bin (Mul, 2, Reg 1, Imm 2));
          I (Bin (Add, 1, Reg 2, Imm 1));
          I (Sys (Emit (Reg 1)));
          I (Ret (Reg 1));
        ];
    ]

let gen_stmts =
  let open QCheck.Gen in
  let reg = int_range 0 3 in
  let base =
    frequency
      [
        (3, map3 (fun o d (a, b) -> G_arith (o, d, a, b)) (int_range 0 9) reg (pair reg reg));
        (2, map (fun d -> G_read d) reg);
        (2, map (fun d -> G_emit d) reg);
        (1, map (fun d -> G_call d) reg);
        (1, map2 (fun d off -> G_store (d, off)) reg (int_range 0 20));
        (1, map2 (fun d off -> G_load (d, off)) reg (int_range 0 20));
      ]
  in
  let block = list_size (int_range 1 4) base in
  let stmt =
    frequency
      [
        (6, base);
        ( 1,
          map3
            (fun r (a, b) (t, e) -> G_if (r, a, b, t, e))
            (oneofl [ Eq; Ne; Lt; Le; Gt; Ge ])
            (pair reg reg) (pair block block) );
        (1, map2 (fun n body -> G_loop (n, body)) (int_range 1 4) block);
      ]
  in
  list_size (int_range 1 8) stmt

let arb_diff =
  QCheck.make
    ~print:(fun (stmts, input, seed) ->
      Printf.sprintf "%d stmts, input=%S, seed=%d" (List.length stmts) input seed)
    QCheck.Gen.(
      triple gen_stmts
        (string_size ~gen:printable (int_range 0 12))
        (int_bound 10_000))

(* Serialize every hook event into one stream; the two engines must produce
   identical bytes. *)
let record_hooks buf =
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  let str_obj = function
    | Interp.OReg (f, r) -> Printf.sprintf "R%d.%d" f r
    | Interp.OMem a -> Printf.sprintf "M%d" a
  in
  let objs os = String.concat ";" (List.map str_obj os) in
  {
    Interp.on_access = (fun a -> add "A[%s]<-[%s]" (objs a.Interp.writes) (objs a.Interp.reads));
    on_input_bytes = (fun ~addr ~file_off ~len -> add "I%d@%d+%d" addr file_off len);
    on_call =
      (fun ~fname ~frame_id ~args ->
        add "C%s#%d(%s)" fname frame_id (String.concat "," (List.map string_of_int args)));
    on_ret = (fun f -> add "r%s" f);
    on_edge = (fun f a b -> add "E%s:%d->%d" f a b);
    on_step = (fun f pc -> add "S%s:%d" f pc);
    on_seek = (fun ~fd ~pos -> add "K%d@%d" fd pos);
  }

let engines_agree (stmts, input, _seed) =
  let p = lower stmts in
  let b1 = Buffer.create 256 and b2 = Buffer.create 256 in
  let r1 = Interp.run ~hooks:(record_hooks b1) p ~input in
  let r2 = Interp.run_reference ~hooks:(record_hooks b2) p ~input in
  r1 = r2 && String.equal (Buffer.contents b1) (Buffer.contents b2)

let engines_agree_under_injection (stmts, input, seed) =
  (* Each engine gets its own injector built from the same seed: the draws
     happen once per executed syscall, so an Injected fault must fire at
     the same point in both engines (or in neither). *)
  let p = lower stmts in
  let run engine =
    let inject = Octo_util.Faultinject.create ~rate:0.2 ~seed () in
    match engine ~inject p ~input with
    | (r : Interp.result) -> Ok r
    | exception Octo_util.Faultinject.Injected m -> Error m
  in
  run (fun ~inject p ~input -> Interp.run ~inject p ~input)
  = run (fun ~inject p ~input -> Interp.run_reference ~inject p ~input)

let compile_cache_no_stale_closures () =
  (* Two programs with identical shape but different bodies must compile to
     different digests; a digest-keyed cache can therefore never replay the
     old closures for the mutated program. *)
  let mk k = prog [ I (Sys (Emit (Imm k))); I Halt ] in
  let p1 = mk 1 and p2 = mk 2 in
  check Alcotest.bool "digests differ" true
    (Compile.program_digest p1 <> Compile.program_digest p2);
  check (Alcotest.list Alcotest.int) "p1 outputs" [ 1 ] (Interp.run p1 ~input:"").outputs;
  check (Alcotest.list Alcotest.int) "mutated outputs" [ 2 ] (Interp.run p2 ~input:"").outputs;
  check (Alcotest.list Alcotest.int) "p1 unchanged after p2" [ 1 ]
    (Interp.run p1 ~input:"").outputs

let qcheck_tests =
  [
    QCheck.Test.make ~count:300 ~name:"compiled engine ≡ reference interpreter" arb_diff
      engines_agree;
    QCheck.Test.make ~count:150 ~name:"compiled ≡ reference under fault injection" arb_diff
      engines_agree_under_injection;
    QCheck.Test.make ~name:"binop result always fits 32 bits"
      QCheck.(triple (int_bound 9) int int)
      (fun (opi, a, b) ->
        let op = [| Add; Sub; Mul; Div; Mod; And; Or; Xor; Shl; Shr |].(opi) in
        try
          let r = eval_binop op a b in
          r >= 0 && r <= 0xFFFFFFFF
        with Division_by_zero -> true);
    QCheck.Test.make ~name:"relop total order consistency"
      QCheck.(pair int int)
      (fun (a, b) ->
        eval_relop Le a b = (eval_relop Lt a b || eval_relop Eq a b)
        && eval_relop Ge a b = not (eval_relop Lt a b));
  ]

let suite =
  [
    tc "isa: binop wraps at 32 bits" binop_wraps;
    tc "isa: binop basics" binop_basic;
    tc "isa: division by zero raises" binop_div_zero;
    tc "isa: shift count masked" shift_masks_count;
    tc "isa: comparisons unsigned" relop_unsigned;
    tc "asm: simple program" asm_simple;
    tc "asm: labels resolve" asm_labels_resolve;
    tc "asm: duplicate label rejected" asm_duplicate_label;
    tc "asm: unknown label rejected" asm_unknown_label;
    tc "asm: unknown entry rejected" asm_unknown_entry;
    tc "asm: call arity checked" asm_call_arity_checked;
    tc "asm: undefined callee rejected" asm_undefined_callee;
    tc "asm: data symbols laid out" asm_data_symbols;
    tc "asm: unknown symbol rejected" asm_unknown_symbol;
    tc "mem: alloc bounds enforced" mem_alloc_bounds;
    tc "mem: allocations padded" mem_alloc_padding;
    tc "mem: null dereference" mem_null_deref;
    tc "mem: rodata protected" mem_rodata_protected;
    tc "mem: word little-endian roundtrip" mem_word_roundtrip;
    tc "mem: zero-size alloc faults on use" mem_zero_alloc;
    tc "vfile: sequential reads" vfile_sequential;
    tc "vfile: seek and tell" vfile_seek_tell;
    tc "vfile: seek past EOF reads empty" vfile_seek_past_eof;
    tc "vfile: handles independent" vfile_two_handles;
    tc "vfile: bad fd raises" vfile_bad_fd;
    tc "interp: arithmetic" interp_arith;
    tc "interp: branching" interp_branching;
    tc "interp: loop" interp_loop;
    tc "interp: call and return" interp_call_ret;
    tc "interp: recursion" interp_recursion;
    tc "interp: fall-off returns zero" interp_fall_off_returns_zero;
    tc "interp: read from input" interp_read_input;
    tc "interp: mmap input" interp_mmap;
    tc "interp: fsize/tell/seek" interp_fsize_tell_seek;
    tc "interp: crash carries backtrace" interp_crash_backtrace;
    tc "interp: hang budget fault" interp_hang_budget;
    tc "interp: div by zero faults" interp_div_zero_fault;
    tc "interp: emit collects outputs" interp_emit_outputs;
    tc "interp: indirect call" interp_icall;
    tc "interp: invalid icall slot faults" interp_icall_invalid_slot;
    tc "hooks: input byte events" hooks_input_bytes;
    tc "hooks: access dataflow" hooks_access_dataflow;
    tc "hooks: call arguments" hooks_call_args;
    tc "hooks: branch edges" hooks_edges_on_branch;
    tc "compile: cache keyed by content digest" compile_cache_no_stale_closures;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests
