(* Tests for the extensions beyond the paper's evaluation: symbolic
   table-select expressions, profile-guided devirtualization, and the
   dynamic-CFG pipeline mode that repairs the Idx-15 failure. *)

open Octo_vm
open Octo_vm.Isa
open Octo_vm.Asm
module Expr = Octo_solver.Expr
module Solve = Octo_solver.Solve
module Sym_state = Octo_symex.Sym_state
module Dyncfg = Octo_cfg.Dyncfg
module Devirt = Octo_cfg.Devirt
module Cfg = Octo_cfg.Cfg
module Registry = Octo_targets.Registry

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* Sel expressions *)

let table = [| 9; 4; 4; 7; 1 |]

let sel_folds_constant_index () =
  match Expr.sel table (Expr.const 3) with
  | Expr.Const 7 -> ()
  | e -> Alcotest.failf "expected fold, got %a" Expr.pp e

let sel_eval () =
  let e = Expr.sel table (Expr.byte 0) in
  check Alcotest.int "in range" 4 (Expr.eval (fun _ -> 1) e);
  check Alcotest.int "out of range is zero" 0 (Expr.eval (fun _ -> 200) e)

let sel_ival_bounds () =
  let s = Solve.create () in
  ignore (Solve.add s { Expr.rel = Le; lhs = Expr.byte 0; rhs = Expr.const 4 });
  let lo, hi = Solve.ival s (Expr.sel table (Expr.byte 0)) in
  check Alcotest.bool "bounds cover table" true (lo <= 1 && hi >= 9)

let sel_narrowing_pins_index () =
  let s = Solve.create () in
  ignore (Solve.add s { Expr.rel = Le; lhs = Expr.byte 0; rhs = Expr.const 4 });
  (match Solve.add s { Expr.rel = Eq; lhs = Expr.sel table (Expr.byte 0); rhs = Expr.const 7 } with
  | Solve.Ok -> ()
  | Solve.Unsat -> Alcotest.fail "7 is present at index 3");
  check (Alcotest.pair Alcotest.int Alcotest.int) "index pinned" (3, 3) (Solve.dom s 0)

let sel_narrowing_unsat_for_absent () =
  let s = Solve.create () in
  ignore (Solve.add s { Expr.rel = Le; lhs = Expr.byte 0; rhs = Expr.const 4 });
  match Solve.add s { Expr.rel = Eq; lhs = Expr.sel table (Expr.byte 0); rhs = Expr.const 42 } with
  | Solve.Unsat -> ()
  | Solve.Ok -> (
      match Solve.solve s with
      | Solve.Sat _ -> Alcotest.fail "42 is not in the table"
      | _ -> ())

let sel_solve_finds_witness () =
  let s = Solve.create () in
  ignore (Solve.add s { Expr.rel = Le; lhs = Expr.byte 0; rhs = Expr.const 4 });
  ignore (Solve.add s { Expr.rel = Eq; lhs = Expr.sel table (Expr.byte 0); rhs = Expr.const 4 });
  match Solve.solve s with
  | Solve.Sat m ->
      let i = Solve.model_byte m 0 in
      check Alcotest.bool "witness index maps to 4" true (i = 1 || i = 2)
  | _ -> Alcotest.fail "expected sat"

(* ------------------------------------------------------------------ *)
(* Symbolic table loads in the executor *)

let table_load_program =
  assemble ~name:"tl" ~entry:"main" ~data:[ ("tab", "\x01\x02\x03\x04") ]
    [
      fn "main" ~params:0
        [
          I (Sys (Open 1));
          I (Sys (Alloc (2, Imm 4)));
          I (Sys (Read (3, Reg 1, Reg 2, Imm 1)));
          I (Load8 (4, Reg 2, Imm 0));
          I (Bin (And, 4, Reg 4, Imm 3));     (* bounded symbolic index *)
          I (Load8 (5, Sym "tab", Reg 4));    (* table lookup *)
          I (Jif (Eq, Reg 5, Imm 3, "hit"));
          I (Sys (Exit (Imm 1)));
          L "hit";
          I (Sys (Exit (Imm 0)));
        ];
    ]

let executor_builds_sel () =
  let st = Sym_state.create table_load_program ~ep:"x" in
  let rec go n =
    if n = 0 then Alcotest.fail "budget"
    else
      match Sym_state.step st with
      | Sym_state.Running -> go (n - 1)
      | Sym_state.Branch_choice br -> br
      | _ -> Alcotest.fail "expected to stop at the table-value branch"
  in
  let br = go 100 in
  (* The branch condition must mention a Sel, not a concretized constant. *)
  let rec has_sel = function
    | Expr.Sel _ -> true
    | Expr.Bin (_, a, b) -> has_sel a || has_sel b
    | Expr.Const _ | Expr.Byte _ -> false
  in
  check Alcotest.bool "condition carries the table" true
    (has_sel br.br_cond.lhs || has_sel br.br_cond.rhs);
  (* Taking the branch must be satisfiable and pin the input byte to an
     index whose entry is 3 (index 2). *)
  check Alcotest.bool "taken satisfiable" true (Sym_state.take_branch st br ~taken:true);
  match Solve.solve st.store with
  | Solve.Sat m -> check Alcotest.int "input selects entry 3" 2 (Solve.model_byte m 0 land 3)
  | _ -> Alcotest.fail "expected model"

(* ------------------------------------------------------------------ *)
(* Devirtualization *)

let idx15_t = (Registry.find 15).t

let detects_unresolved () =
  check Alcotest.bool "idx15 T has unresolved icalls" true
    (Devirt.has_unresolved_icalls idx15_t);
  check Alcotest.bool "idx1 T does not" false
    (Devirt.has_unresolved_icalls (Registry.find 1).t)

let devirt_removes_icalls () =
  let c = Registry.find 15 in
  let observed = Dyncfg.observe c.t ~seeds:[ c.poc ] in
  let t' = Devirt.apply c.t ~observed in
  check Alcotest.bool "no unresolved icalls remain" false (Devirt.has_unresolved_icalls t');
  (* And the repaired binary is analysable. *)
  let cfg = Cfg.build t' ~ep:c.vuln_func in
  check Alcotest.bool "ep reachable after repair" true (Cfg.ep_reachable cfg)

let devirt_preserves_behaviour () =
  let c = Registry.find 15 in
  let observed = Dyncfg.observe c.t ~seeds:[ c.poc ] in
  let t' = Devirt.apply c.t ~observed in
  (* On the observed input, outcome and outputs must match exactly. *)
  let a = Interp.run c.t ~input:c.poc and b = Interp.run t' ~input:c.poc in
  check Alcotest.(list int) "same outputs" a.outputs b.outputs;
  (match (a.outcome, b.outcome) with
  | Interp.Crashed x, Interp.Crashed y ->
      check Alcotest.string "same crash function" x.crash_func y.crash_func
  | Interp.Exited x, Interp.Exited y -> check Alcotest.int "same exit" x y
  | _ -> Alcotest.fail "outcome kind diverged")

let devirt_unobserved_slot_exits () =
  let c = Registry.find 15 in
  (* Observe only the 'E'-object path; a font object then hits the
     unobserved-target exit (97) instead of trapping. *)
  let benign = Octo_formats.Formats.Mpdf.file [] in
  let observed = Dyncfg.observe c.t ~seeds:[ benign ] in
  let t' = Devirt.apply c.t ~observed in
  match (Interp.run t' ~input:c.poc).outcome with
  | Interp.Exited 97 -> ()
  | o -> Alcotest.failf "expected exit 97, got %a" Interp.pp_outcome o

(* ------------------------------------------------------------------ *)
(* Dynamic-CFG pipeline mode *)

let dynamic_cfg_repairs_idx15 () =
  let c = Registry.find 15 in
  let config = { Octopocs.default_config with dynamic_cfg = true } in
  let r = Octopocs.run ~config ~s:c.s ~t:c.t ~poc:c.poc () in
  match r.verdict with
  | Octopocs.Triggered { poc'; _ } ->
      (* poc' must work against the ORIGINAL binary, not the repaired one. *)
      check Alcotest.bool "poc' crashes the original T" true
        (Interp.crash_in (Interp.run c.t ~input:poc') ~funcs:[ c.vuln_func ])
  | v -> Alcotest.failf "expected Triggered, got %s" (Octopocs.verdict_class v)

let static_mode_still_fails_idx15 () =
  let c = Registry.find 15 in
  match (Octopocs.run ~s:c.s ~t:c.t ~poc:c.poc ()).verdict with
  | Octopocs.Failure _ -> ()
  | v -> Alcotest.failf "expected Failure, got %s" (Octopocs.verdict_class v)

let dynamic_mode_harmless_elsewhere () =
  (* Turning the repair on must not change verdicts for pairs whose static
     CFG is fine. *)
  let config = { Octopocs.default_config with dynamic_cfg = true } in
  List.iter
    (fun idx ->
      let c = Registry.find idx in
      let a = Octopocs.run ~s:c.s ~t:c.t ~poc:c.poc () in
      let b = Octopocs.run ~config ~s:c.s ~t:c.t ~poc:c.poc () in
      check Alcotest.string
        (Printf.sprintf "pair %d unchanged" idx)
        (Octopocs.verdict_class a.verdict)
        (Octopocs.verdict_class b.verdict))
    [ 1; 8; 10; 12 ]

(* ------------------------------------------------------------------ *)
(* Worker pool and batch verification *)

let pool_map_preserves_order () =
  let items = List.init 37 (fun i -> i) in
  let out = Octo_util.Pool.parallel_map ~jobs:4 (fun i -> i * i) items in
  check Alcotest.(list int) "squares in order" (List.map (fun i -> i * i) items) out

let pool_map_propagates_exception () =
  let p = Octo_util.Pool.create ~jobs:2 in
  Fun.protect
    ~finally:(fun () -> Octo_util.Pool.shutdown p)
    (fun () ->
      match Octo_util.Pool.map p (fun i -> if i = 3 then failwith "boom" else i) [ 1; 2; 3 ] with
      | exception Failure msg -> check Alcotest.string "exn forwarded" "boom" msg
      | _ -> Alcotest.fail "expected Failure to propagate")

let pool_reused_across_batches () =
  let p = Octo_util.Pool.create ~jobs:2 in
  Fun.protect
    ~finally:(fun () -> Octo_util.Pool.shutdown p)
    (fun () ->
      for k = 1 to 5 do
        let out = Octo_util.Pool.map p (fun i -> i + k) [ 1; 2; 3 ] in
        check Alcotest.(list int) "batch result" [ 1 + k; 2 + k; 3 + k ] out
      done)

let run_all_matches_serial_verdicts () =
  (* The parallel batch runner must produce exactly the verdict classes of
     one-at-a-time runs, in input order. *)
  let cases = List.filteri (fun i _ -> i < 5) Registry.all in
  let batch =
    List.map
      (fun (c : Registry.case) ->
        Octopocs.job ~label:(string_of_int c.idx) ~s:c.s ~t:c.t ~poc:c.poc ())
      cases
  in
  let par = Octopocs.run_all ~jobs:4 batch in
  List.iter2
    (fun (c : Registry.case) (label, (r : Octopocs.report)) ->
      check Alcotest.string "labels in order" (string_of_int c.idx) label;
      let serial = Octopocs.run ~s:c.s ~t:c.t ~poc:c.poc () in
      check Alcotest.string
        (Printf.sprintf "pair %d verdict" c.idx)
        (Octopocs.verdict_class serial.verdict)
        (Octopocs.verdict_class r.verdict))
    cases par

let qcheck_tests =
  [
    QCheck.Test.make ~name:"Sel eval lies within Sel ival" ~count:200
      QCheck.(pair (array_of_size Gen.(1 -- 8) (int_bound 255)) (int_bound 255))
      (fun (tab, v) ->
        let s = Solve.create () in
        let e = Expr.Sel (tab, Expr.byte 0) in
        let value = Expr.eval (fun _ -> v) e in
        let lo, hi = Solve.ival s e in
        lo <= value && value <= hi);
  ]

let suite =
  [
    tc "sel: constant index folds" sel_folds_constant_index;
    tc "sel: evaluation" sel_eval;
    tc "sel: interval bounds" sel_ival_bounds;
    tc "sel: narrowing pins index" sel_narrowing_pins_index;
    tc "sel: absent value unsat" sel_narrowing_unsat_for_absent;
    tc "sel: solver finds witness" sel_solve_finds_witness;
    tc "executor: symbolic table load builds Sel" executor_builds_sel;
    tc "devirt: detects unresolved icalls" detects_unresolved;
    tc "devirt: removes icalls, CFG builds" devirt_removes_icalls;
    tc "devirt: behaviour preserved on observed input" devirt_preserves_behaviour;
    tc "devirt: unobserved slot exits distinctly" devirt_unobserved_slot_exits;
    tc "pipeline: dynamic CFG repairs Idx-15" dynamic_cfg_repairs_idx15;
    tc "pipeline: static mode reproduces the Failure" static_mode_still_fails_idx15;
    tc "pipeline: dynamic mode harmless elsewhere" dynamic_mode_harmless_elsewhere;
    tc "pool: map preserves order" pool_map_preserves_order;
    tc "pool: exceptions propagate" pool_map_propagates_exception;
    tc "pool: reused across batches" pool_reused_across_batches;
    tc "batch: run_all matches serial verdicts" run_all_matches_serial_verdicts;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests
