(* Golden regression tests pinning Table II and the explain narratives.

   Every registry pair is run at DEFAULT budgets and the resulting
   (pair, verdict-class, degradations) tuples are compared line-for-line
   against the checked-in [test/golden_table2.txt].  Any behavior change
   that moves a verdict or climbs a ladder rung shows up as a readable
   diff here, not as a silent drift.

   The same treatment pins the [explain] subcommand's output for two
   representative pairs: pair 1 (Triggered, Type-I — the happy path with
   taint, pinning and crash-site evidence) and pair 13 (Not_triggerable
   via Constraint_conflict — the minimized core naming the replayed
   argument that clashes with T's own path constraint).  The narrative is
   documented as deterministic and diffable; these goldens plus the
   determinism case below are what hold that promise.

   Regeneration (after an INTENTIONAL change, from the repo root):

     OCTOPOCS_REGEN_GOLDEN=$PWD/test/golden_table2.txt dune runtest --force

   All golden files (Table II and the explain narratives) are rewritten
   into the env var's directory and the tests pass; review and commit the
   diff. *)

module Registry = Octo_targets.Registry
module Prov = Octopocs.Provenance

let golden_path = "golden_table2.txt"

let render_lines () =
  List.map
    (fun (c : Registry.case) ->
      let r = Octopocs.run ~s:c.s ~t:c.t ~poc:c.poc () in
      Printf.sprintf "pair %-2d %-8s %s" c.idx
        (Octopocs.verdict_class r.verdict)
        (match r.degradations with [] -> "-" | ds -> String.concat "," ds))
    Registry.all

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let regen_target () =
  match Sys.getenv_opt "OCTOPOCS_REGEN_GOLDEN" with
  | Some out when out <> "" -> Some out
  | _ -> None

let golden_test () =
  let lines = render_lines () in
  match regen_target () with
  | Some out ->
      let oc = open_out out in
      List.iter (fun l -> output_string oc (l ^ "\n")) lines;
      close_out oc;
      Printf.printf "regenerated %s (%d lines)\n" out (List.length lines)
  | None ->
      if not (Sys.file_exists golden_path) then
        Alcotest.failf
          "%s missing — regenerate with OCTOPOCS_REGEN_GOLDEN=$PWD/test/%s dune runtest \
           --force"
          golden_path golden_path;
      Alcotest.(check (list string)) "Table II verdicts and degradations" (read_lines golden_path)
        lines

(* -- explain narratives ------------------------------------------------ *)

(* One full pipeline run of pair [idx] with provenance collection on,
   rendered exactly as the [explain] subcommand would. *)
let render_explain idx =
  let c = Registry.find idx in
  let was_on = Prov.is_on () in
  if not was_on then Prov.enable ();
  let r = Octopocs.run ~s:c.s ~t:c.t ~poc:c.poc () in
  if not was_on then Prov.disable ();
  Octopocs.explain_report ~label:(Printf.sprintf "pair %d" idx) r

let explain_golden_file idx = Printf.sprintf "golden_explain_pair%d.txt" idx

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let explain_golden_test idx () =
  let rendered = render_explain idx in
  let file = explain_golden_file idx in
  match regen_target () with
  | Some out ->
      (* The env var names the Table II golden; its directory receives
         every regenerated golden file. *)
      let path = Filename.concat (Filename.dirname out) file in
      let oc = open_out_bin path in
      output_string oc rendered;
      close_out oc;
      Printf.printf "regenerated %s (%d bytes)\n" path (String.length rendered)
  | None ->
      if not (Sys.file_exists file) then
        Alcotest.failf
          "%s missing — regenerate with OCTOPOCS_REGEN_GOLDEN=$PWD/test/%s dune runtest \
           --force"
          file golden_path;
      Alcotest.(check string)
        (Printf.sprintf "explain narrative for pair %d" idx)
        (read_file file) rendered

(* Two independent full runs must render byte-identically — the narrative
   carries no timings, addresses or other run-varying data. *)
let explain_deterministic () =
  let a = render_explain 13 in
  let b = render_explain 13 in
  Alcotest.(check string) "explain output is byte-stable across runs" a b

(* -- report aggregator ------------------------------------------------- *)

module Journal = Octo_util.Journal
module Metrics = Octo_util.Metrics

(* A synthetic-but-realistic run: real verdicts from three registry
   pairs journaled across two shards, one hand-built quarantine record,
   and one hand-built latency histogram (real histograms carry wall
   time, which a golden cannot pin).  The render must be byte-stable —
   across invocations AND across machines. *)
let render_report () =
  let dir = Filename.temp_file "octo_report_golden" "" in
  Sys.remove dir;
  let w = Journal.Sharded.create ~dir ~shards:2 () in
  let fixed_metrics =
    let s = Metrics.zero () in
    let put p spans ns buckets =
      let i = Metrics.phase_index p in
      s.Metrics.phase_count.(i) <- spans;
      s.Metrics.phase_ns.(i) <- ns;
      List.iter
        (fun (b, n) -> s.Metrics.phase_hist.((i * Metrics.nbuckets) + b) <- n)
        buckets
    in
    put Metrics.Taint 10 5_000 [ (8, 7); (9, 3) ];
    put Metrics.Solve 4 66_000 [ (13, 3); (15, 1) ];
    s
  in
  List.iter
    (fun (idx, metrics) ->
      let c = Registry.find idx in
      let r = Octopocs.run ~s:c.s ~t:c.t ~poc:c.poc () in
      let r = { r with Octopocs.metrics } in
      let label = string_of_int idx in
      Journal.Sharded.append w ~key:label (Octopocs.encode_result ~label ~key:label r))
    [ (1, Some fixed_metrics); (2, None); (13, None) ];
  Journal.Sharded.close w;
  let qw = Journal.create ~path:(Filename.concat dir "quarantine.jrnl") () in
  Journal.append qw
    (Octopocs.encode_quarantine
       {
         Octopocs.qlabel = "9";
         qkey = "9";
         qreason = "worker crashed";
         qmessage = "Failure(\"injected\")";
         qbacktrace = "";
         qattempts = 3;
       });
  Journal.close qw;
  let rendered =
    match Octo_report.Report.of_files_rendered ~journal:dir () with
    | Ok doc -> doc
    | Error msg -> Alcotest.failf "report failed: %s" msg
  in
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Unix.rmdir dir;
  rendered

let report_golden_file = "golden_report.txt"

let report_golden_test () =
  let rendered = render_report () in
  match regen_target () with
  | Some out ->
      let path = Filename.concat (Filename.dirname out) report_golden_file in
      let oc = open_out_bin path in
      output_string oc rendered;
      close_out oc;
      Printf.printf "regenerated %s (%d bytes)\n" path (String.length rendered)
  | None ->
      if not (Sys.file_exists report_golden_file) then
        Alcotest.failf
          "%s missing — regenerate with OCTOPOCS_REGEN_GOLDEN=$PWD/test/%s dune runtest \
           --force"
          report_golden_file golden_path;
      Alcotest.(check string) "run report" (read_file report_golden_file) rendered

let report_deterministic () =
  let a = render_report () in
  let b = render_report () in
  Alcotest.(check string) "report output is byte-stable across runs" a b

let suite =
  [
    Alcotest.test_case "Table II golden (default budgets)" `Quick golden_test;
    Alcotest.test_case "report golden (sharded journal + quarantine)" `Quick
      report_golden_test;
    Alcotest.test_case "report is deterministic across runs" `Quick report_deterministic;
    Alcotest.test_case "explain golden: pair 1 (Triggered, Type-I)" `Quick
      (explain_golden_test 1);
    Alcotest.test_case "explain golden: pair 13 (constraint conflict)" `Quick
      (explain_golden_test 13);
    Alcotest.test_case "explain is deterministic across runs" `Quick explain_deterministic;
  ]
