(* Golden regression test pinning Table II.

   Every registry pair is run at DEFAULT budgets and the resulting
   (pair, verdict-class, degradations) tuples are compared line-for-line
   against the checked-in [test/golden_table2.txt].  Any behavior change
   that moves a verdict or climbs a ladder rung shows up as a readable
   diff here, not as a silent drift.

   Regeneration (after an INTENTIONAL change, from the repo root):

     OCTOPOCS_REGEN_GOLDEN=$PWD/test/golden_table2.txt dune runtest --force

   The test then rewrites the golden file in place and passes; review and
   commit the diff. *)

module Registry = Octo_targets.Registry

let golden_path = "golden_table2.txt"

let render_lines () =
  List.map
    (fun (c : Registry.case) ->
      let r = Octopocs.run ~s:c.s ~t:c.t ~poc:c.poc () in
      Printf.sprintf "pair %-2d %-8s %s" c.idx
        (Octopocs.verdict_class r.verdict)
        (match r.degradations with [] -> "-" | ds -> String.concat "," ds))
    Registry.all

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let golden_test () =
  let lines = render_lines () in
  match Sys.getenv_opt "OCTOPOCS_REGEN_GOLDEN" with
  | Some out when out <> "" ->
      let oc = open_out out in
      List.iter (fun l -> output_string oc (l ^ "\n")) lines;
      close_out oc;
      Printf.printf "regenerated %s (%d lines)\n" out (List.length lines)
  | _ ->
      if not (Sys.file_exists golden_path) then
        Alcotest.failf
          "%s missing — regenerate with OCTOPOCS_REGEN_GOLDEN=$PWD/test/%s dune runtest \
           --force"
          golden_path golden_path;
      Alcotest.(check (list string)) "Table II verdicts and degradations" (read_lines golden_path)
        lines

let suite = [ Alcotest.test_case "Table II golden (default budgets)" `Quick golden_test ]
