(* Unit tests for the run-health sampler (lib/util/telemetry.ml) and the
   leveled logger (lib/util/log.ml): enable/tick/replay round trips
   through a real journal file, the disabled paths are no-ops, and the
   log threshold actually gates emission — including the Source
   malformed-manifest warning the CLI routes through it. *)

module Telemetry = Octo_util.Telemetry
module Log = Octo_util.Log
module Metrics = Octo_util.Metrics
module Source = Octo_targets.Source

let tc name f = Alcotest.test_case name `Quick f

let tmp_path name =
  let p = Filename.temp_file ("octo_" ^ name) ".jrnl" in
  Sys.remove p;
  p

let progress ?(pulled = 0) ?(settled = 0) ?(quarantined = 0) ?(in_flight = 0) ?(window = 1)
    () =
  { Telemetry.pulled; settled; quarantined; in_flight; window }

(* Run [f] with telemetry enabled into a temp journal; always disables
   (and removes the file) on the way out so later tests see a clean
   module state. *)
let with_telemetry ?interval_ns f =
  let path = tmp_path "telemetry" in
  Telemetry.enable ?interval_ns ~path ();
  Fun.protect
    ~finally:(fun () ->
      Telemetry.disable ();
      if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

(* -- sampler ------------------------------------------------------------ *)

let sampler_roundtrip () =
  with_telemetry (fun path ->
      Alcotest.(check bool) "enabled" true (Telemetry.is_on ());
      Telemetry.note_retry ();
      Telemetry.note_retry ();
      Telemetry.note_stall ();
      Telemetry.note_backoff ();
      Telemetry.note_deferral ();
      Telemetry.note_child_rss 512;
      Telemetry.note_child_rss 256;
      (* running max, not last-write *)
      Telemetry.sample_now (progress ~pulled:7 ~settled:5 ~quarantined:1 ~in_flight:2 ~window:4 ());
      Telemetry.sample_now (progress ~pulled:9 ~settled:9 ());
      Telemetry.disable ();
      let r = Telemetry.replay path in
      Alcotest.(check int) "samples" 2 (List.length r.Telemetry.samples);
      Alcotest.(check int) "undecodable" 0 r.Telemetry.undecodable;
      Alcotest.(check bool) "torn" false r.Telemetry.torn;
      let s = List.hd r.Telemetry.samples in
      Alcotest.(check int) "pulled" 7 s.Telemetry.pulled;
      Alcotest.(check int) "settled" 5 s.Telemetry.settled;
      Alcotest.(check int) "quarantined" 1 s.Telemetry.quarantined;
      Alcotest.(check int) "in_flight" 2 s.Telemetry.in_flight;
      Alcotest.(check int) "window" 4 s.Telemetry.window;
      Alcotest.(check int) "retries" 2 s.Telemetry.retries;
      Alcotest.(check int) "stalls" 1 s.Telemetry.stalls;
      Alcotest.(check int) "backoffs" 1 s.Telemetry.backoffs;
      Alcotest.(check int) "deferrals" 1 s.Telemetry.deferrals;
      Alcotest.(check int) "child rss keeps the max" 512 s.Telemetry.child_rss_kb;
      let s2 = List.nth r.Telemetry.samples 1 in
      Alcotest.(check bool) "timestamps monotonic" true
        (s2.Telemetry.ts_ns >= s.Telemetry.ts_ns))

let sampler_tick_rate_limited () =
  (* A huge interval admits exactly one tick sample; the thunk must not
     even run for the suppressed ticks. *)
  with_telemetry ~interval_ns:3_600_000_000_000 (fun path ->
      let calls = ref 0 in
      for _ = 1 to 50 do
        Telemetry.tick (fun () ->
            incr calls;
            progress ())
      done;
      Alcotest.(check int) "thunk ran once" 1 !calls;
      Telemetry.disable ();
      Alcotest.(check int) "one frame" 1
        (List.length (Telemetry.replay path).Telemetry.samples))

let sampler_disabled_noop () =
  Alcotest.(check bool) "off" false (Telemetry.is_on ());
  let calls = ref 0 in
  Telemetry.tick (fun () ->
      incr calls;
      progress ());
  Telemetry.sample_now (progress ());
  Telemetry.note_retry ();
  Telemetry.note_child_rss 999;
  Alcotest.(check int) "thunk never ran" 0 !calls;
  (* A later enable starts from zeroed accumulators. *)
  with_telemetry (fun path ->
      Telemetry.sample_now (progress ());
      Telemetry.disable ();
      let s = List.hd (Telemetry.replay path).Telemetry.samples in
      Alcotest.(check int) "retries reset" 0 s.Telemetry.retries;
      Alcotest.(check int) "child rss reset" 0 s.Telemetry.child_rss_kb)

let sampler_metrics_attached () =
  with_telemetry (fun path ->
      Metrics.enable ();
      Fun.protect ~finally:Metrics.disable (fun () ->
          Metrics.observe_phase Metrics.Taint 1000;
          Telemetry.sample_now (progress ()));
      Telemetry.disable ();
      let s = List.hd (Telemetry.replay path).Telemetry.samples in
      match s.Telemetry.metrics with
      | None -> Alcotest.fail "expected a metrics snapshot in the frame"
      | Some m ->
          Alcotest.(check bool) "taint span recorded" true
            (Metrics.phase_spans m Metrics.Taint >= 1))

let sampler_torn_tail () =
  (* Chopping bytes off the journal must degrade to a valid prefix. *)
  let path = tmp_path "torn" in
  Telemetry.enable ~path ();
  Telemetry.sample_now (progress ~settled:1 ());
  Telemetry.sample_now (progress ~settled:2 ());
  Telemetry.disable ();
  let len = (Unix.stat path).Unix.st_size in
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Unix.ftruncate fd (len - 3);
  Unix.close fd;
  let r = Telemetry.replay path in
  Sys.remove path;
  Alcotest.(check int) "prefix survives" 1 (List.length r.Telemetry.samples);
  Alcotest.(check bool) "torn flagged" true r.Telemetry.torn;
  Alcotest.(check int) "prefix content" 1
    (List.hd r.Telemetry.samples).Telemetry.settled

let replay_missing_file () =
  let r = Telemetry.replay "/nonexistent/octo_telemetry.jrnl" in
  Alcotest.(check int) "empty" 0 (List.length r.Telemetry.samples);
  Alcotest.(check bool) "not torn" false r.Telemetry.torn

let self_rss_positive () =
  (* /proc is available on every platform CI runs on; a live process has
     nonzero RSS. *)
  Alcotest.(check bool) "rss > 0" true (Telemetry.self_rss_kb () > 0)

(* -- logger ------------------------------------------------------------- *)

(* Capture emitted lines through a test sink at a given threshold,
   restoring the default sink and threshold afterwards. *)
let with_log_capture level f =
  let captured = ref [] in
  let saved = Log.level () in
  Log.set_level level;
  Log.set_sink (fun lvl msg -> captured := (lvl, msg) :: !captured);
  Fun.protect
    ~finally:(fun () ->
      Log.reset_sink ();
      Log.set_level saved)
    (fun () ->
      f ();
      List.rev !captured)

let log_threshold_gates () =
  let lines =
    with_log_capture Log.Warn (fun () ->
        Log.err (fun m -> m "e%d" 1);
        Log.warn (fun m -> m "w%d" 2);
        Log.info (fun m -> m "i%d" 3);
        Log.debug (fun m -> m "d%d" 4))
  in
  Alcotest.(check (list string)) "warn passes err+warn" [ "e1"; "w2" ]
    (List.map snd lines);
  let lines =
    with_log_capture Log.Error (fun () ->
        Log.err (fun m -> m "only");
        Log.warn (fun m -> m "dropped"))
  in
  Alcotest.(check (list string)) "error passes err only" [ "only" ]
    (List.map snd lines)

let log_lazy_formatting () =
  (* Below the threshold the message closure must never run. *)
  let ran = ref false in
  let lines =
    with_log_capture Log.Error (fun () ->
        Log.debug (fun m ->
            ran := true;
            m "never"))
  in
  Alcotest.(check (list string)) "nothing emitted" [] (List.map snd lines);
  Alcotest.(check bool) "closure skipped" false !ran

let log_level_of_string () =
  List.iter
    (fun (s, want) ->
      Alcotest.(check bool) s true (Log.level_of_string s = Some want))
    [
      ("error", Log.Error); ("err", Log.Error); ("warn", Log.Warn);
      ("warning", Log.Warn); ("info", Log.Info); ("debug", Log.Debug);
    ];
  Alcotest.(check bool) "garbage" true (Log.level_of_string "loud" = None)

(* The satellite contract: Source's malformed-manifest warning goes
   through Log.warn, so --log-level error silences it. *)
let source_warning_gated () =
  let dir = Filename.temp_file "octo_corpus" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Source.write_dir ~dir ~seed:1 ~count:2;
  let bad = Filename.concat dir "zz_bad.pair" in
  let oc = open_out bad in
  output_string oc "not a manifest\n";
  close_out oc;
  let drain () =
    let src = Source.directory dir in
    let rec go n = match Source.next src with None -> n | Some _ -> go (n + 1) in
    go 0
  in
  let lines = with_log_capture Log.Warn (fun () -> ignore (drain ())) in
  Alcotest.(check int) "warn level: warning emitted" 1 (List.length lines);
  Alcotest.(check bool) "names the manifest" true
    (let msg = snd (List.hd lines) in
     String.length msg >= String.length bad
     && String.sub msg (String.length msg - String.length bad) (String.length bad) = bad);
  let lines = with_log_capture Log.Error (fun () -> ignore (drain ())) in
  Alcotest.(check int) "error level: silenced" 0 (List.length lines);
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Unix.rmdir dir

let log_jsonl_sink () =
  let path = tmp_path "log" in
  let saved = Log.level () in
  Log.set_level Log.Warn;
  Log.set_sink (fun _ _ -> ());
  Log.set_jsonl path;
  Log.warn (fun m -> m "json \"quoted\" line");
  Log.close_jsonl ();
  Log.reset_sink ();
  Log.set_level saved;
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "level field" true
    (let re = {|"level":"warn"|} in
     let rec find i =
       i + String.length re <= String.length line
       && (String.sub line i (String.length re) = re || find (i + 1))
     in
     find 0);
  Alcotest.(check bool) "quotes escaped" true
    (let re = {|json \"quoted\" line|} in
     let rec find i =
       i + String.length re <= String.length line
       && (String.sub line i (String.length re) = re || find (i + 1))
     in
     find 0)

let suite =
  [
    tc "sampler: samples round-trip through the journal" sampler_roundtrip;
    tc "sampler: tick is rate-limited and lazy" sampler_tick_rate_limited;
    tc "sampler: disabled entry points are no-ops" sampler_disabled_noop;
    tc "sampler: metrics snapshot rides along when collecting" sampler_metrics_attached;
    tc "sampler: torn tail degrades to a valid prefix" sampler_torn_tail;
    tc "sampler: replaying a missing file is empty, not an error" replay_missing_file;
    tc "sampler: self_rss_kb reads a live value" self_rss_positive;
    tc "log: threshold gates emission" log_threshold_gates;
    tc "log: suppressed messages never format" log_lazy_formatting;
    tc "log: level_of_string accepts the documented aliases" log_level_of_string;
    tc "log: source malformed-manifest warning obeys the threshold" source_warning_gated;
    tc "log: jsonl sink writes escaped records" log_jsonl_sink;
  ]
