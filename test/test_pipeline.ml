(* End-to-end tests for the OCTOPOCS pipeline: Table II verdicts, poc'
   properties, the Table III ablation, and report plumbing. *)

open Octo_vm
module Registry = Octo_targets.Registry
module Taint = Octo_taint.Taint

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let run_case (c : Registry.case) = Octopocs.run ~s:c.s ~t:c.t ~poc:c.poc ()

let all_verdicts_match_table2 () =
  List.iter
    (fun (c : Registry.case) ->
      let r = run_case c in
      check Alcotest.string
        (Printf.sprintf "pair %d" c.idx)
        (Registry.expected_to_string c.expected)
        (Octopocs.verdict_class r.verdict))
    Registry.all

let poc'_crashes_t_in_ell () =
  List.iter
    (fun (c : Registry.case) ->
      let r = run_case c in
      match r.verdict with
      | Octopocs.Triggered { poc'; _ } ->
          let t_run = Interp.run c.t ~input:poc' in
          check Alcotest.bool
            (Printf.sprintf "pair %d poc' reproduces" c.idx)
            true
            (Interp.crash_in t_run ~funcs:r.ell)
      | _ -> ())
    Registry.all

let poc'_often_smaller_than_poc () =
  (* The paper notes Type-I poc' files are often more optimized than poc;
     at minimum they never blow up. *)
  List.iter
    (fun (c : Registry.case) ->
      let r = run_case c in
      match r.verdict with
      | Octopocs.Triggered { poc'; _ } ->
          check Alcotest.bool
            (Printf.sprintf "pair %d poc' bounded" c.idx)
            true
            (String.length poc' <= String.length c.poc + 160)
      | _ -> ())
    Registry.all

let type1_poc_equivalence () =
  (* For Type-I pairs the original poc itself crashes T; for Type-II it
     must not (that is what distinguishes the classes). *)
  List.iter
    (fun (c : Registry.case) ->
      let r = run_case c in
      match r.verdict with
      | Octopocs.Triggered { ptype; _ } ->
          let orig_crashes = Interp.crash_in (Interp.run c.t ~input:c.poc) ~funcs:r.ell in
          let expected = ptype = Octopocs.Type_I in
          check Alcotest.bool (Printf.sprintf "pair %d classification" c.idx) expected
            orig_crashes
      | _ -> ())
    Registry.all

let ep_is_vulnerable_function () =
  List.iter
    (fun (c : Registry.case) ->
      let r = run_case c in
      if r.ep <> "" then
        check Alcotest.string (Printf.sprintf "pair %d ep" c.idx) c.vuln_func r.ep)
    Registry.all

let reasons_match_mechanisms () =
  let reason idx =
    match (run_case (Registry.find idx)).verdict with
    | Octopocs.Not_triggerable r -> r
    | v -> Alcotest.failf "pair %d: expected Not_triggerable, got %s" idx
             (Octopocs.verdict_class v)
  in
  (match reason 10 with
  | Octopocs.Constraint_conflict 1 -> ()
  | _ -> Alcotest.fail "pair 10 should conflict on the hardcoded tag");
  (match reason 11 with
  | Octopocs.Ep_not_called -> ()
  | _ -> Alcotest.fail "pair 11 should report dead code");
  (match reason 12 with
  | Octopocs.Program_dead -> ()
  | _ -> Alcotest.fail "pair 12 should be program-dead");
  match reason 14 with
  | Octopocs.Constraint_conflict _ -> ()
  | _ -> Alcotest.fail "pair 14 should conflict on the patched guard"

let failure_is_cfg_error () =
  match (run_case (Registry.find 15)).verdict with
  | Octopocs.Failure msg ->
      check Alcotest.bool "mentions CFG" true
        (String.length msg >= 3 && String.sub msg 0 3 = "CFG")
  | v -> Alcotest.failf "expected Failure, got %s" (Octopocs.verdict_class v)

let plain_taint_table3 () =
  let plain_config = { Octopocs.default_config with taint_mode = Taint.Plain } in
  List.iter
    (fun (c : Registry.case) ->
      let r = Octopocs.run ~config:plain_config ~s:c.s ~t:c.t ~poc:c.poc () in
      let triggered = match r.verdict with Octopocs.Triggered _ -> true | _ -> false in
      let expected = not (List.mem c.idx [ 3; 4; 9 ]) in
      check Alcotest.bool
        (Printf.sprintf "pair %d plain-taint outcome" c.idx)
        expected triggered)
    Registry.table3_cases

let explicit_ell_override () =
  let c = Registry.find 1 in
  let r = Octopocs.run ~ell:[ c.vuln_func ] ~s:c.s ~t:c.t ~poc:c.poc () in
  check Alcotest.string "verdict with explicit ℓ" "Type-I" (Octopocs.verdict_class r.verdict)

let empty_ell_fails_cleanly () =
  let c = Registry.find 1 in
  match (Octopocs.run ~ell:[] ~s:c.s ~t:c.t ~poc:c.poc ()).verdict with
  | Octopocs.Failure _ -> ()
  | v -> Alcotest.failf "expected Failure, got %s" (Octopocs.verdict_class v)

let non_crashing_poc_fails_cleanly () =
  let c = Registry.find 1 in
  match (Octopocs.run ~s:c.s ~t:c.t ~poc:"MJ" ()).verdict with
  | Octopocs.Failure msg -> check Alcotest.string "message" "poc does not crash S" msg
  | v -> Alcotest.failf "expected Failure, got %s" (Octopocs.verdict_class v)

let report_carries_artifacts () =
  let c = Registry.find 4 in
  let r = run_case c in
  check Alcotest.bool "taint result present" true (r.taint <> None);
  check Alcotest.bool "symex stats present" true (r.symex <> None);
  check Alcotest.int "two bunches for two frames" 2 (List.length r.bunches);
  check Alcotest.bool "elapsed recorded" true (r.elapsed_s >= 0.0)

let deterministic_verdicts () =
  let c = Registry.find 9 in
  let a = run_case c and b = run_case c in
  (match (a.verdict, b.verdict) with
  | Octopocs.Triggered x, Octopocs.Triggered y ->
      check Alcotest.string "same poc'" x.poc' y.poc'
  | _ -> Alcotest.fail "expected both triggered");
  check Alcotest.string "same class" (Octopocs.verdict_class a.verdict)
    (Octopocs.verdict_class b.verdict)

let speculative_verdicts_match_serial () =
  (* spec_jobs > 1 runs predicted loop-retry attempts ahead on the shared
     pool; verdicts, poc' bytes and symex stats must be identical to the
     serial run on every pair — speculation is a pure latency optimization.
     Full sweep so pairs with no retries (degenerate chains) are covered
     alongside the 38-retry gif pair. *)
  let spec = { Octopocs.default_config with spec_jobs = 4 } in
  List.iter
    (fun (c : Registry.case) ->
      let serial = run_case c in
      let specr = Octopocs.run ~config:spec ~s:c.s ~t:c.t ~poc:c.poc () in
      let tag = Printf.sprintf "pair %d" c.idx in
      check Alcotest.string (tag ^ " class")
        (Octopocs.verdict_class serial.verdict)
        (Octopocs.verdict_class specr.verdict);
      (match (serial.verdict, specr.verdict) with
      | Octopocs.Triggered a, Octopocs.Triggered b ->
          check Alcotest.string (tag ^ " poc'") a.poc' b.poc'
      | _ -> ());
      match (serial.symex, specr.symex) with
      | Some a, Some b ->
          check Alcotest.int (tag ^ " runs") a.runs b.runs;
          check Alcotest.int (tag ^ " retries") a.loop_retries b.loop_retries;
          check Alcotest.int (tag ^ " steps") a.total_steps b.total_steps
      | None, None -> ()
      | _ -> Alcotest.failf "%s: symex stats presence differs" tag)
    Registry.all

let identify_ep_scans_outermost_first () =
  let crash =
    { Interp.fault = Mem.Hang; crash_func = "inner"; crash_pc = 0;
      backtrace = [ "main"; "outer_shared"; "inner" ] }
  in
  check (Alcotest.option Alcotest.string) "first shared function wins"
    (Some "outer_shared")
    (Octopocs.identify_ep ~ell:[ "outer_shared"; "inner" ] crash);
  check (Alcotest.option Alcotest.string) "none in ell" None
    (Octopocs.identify_ep ~ell:[ "zzz" ] crash)

let suite =
  [
    tc "all 15 verdicts match Table II" all_verdicts_match_table2;
    tc "poc' reproduces the crash inside ℓ" poc'_crashes_t_in_ell;
    tc "poc' size bounded" poc'_often_smaller_than_poc;
    tc "Type-I/II split matches original-poc behaviour" type1_poc_equivalence;
    tc "ep is the vulnerable function" ep_is_vulnerable_function;
    tc "Type-III reasons match mechanisms" reasons_match_mechanisms;
    tc "pair 15 fails with a CFG error" failure_is_cfg_error;
    tc "plain taint reproduces Table III" plain_taint_table3;
    tc "explicit ℓ override" explicit_ell_override;
    tc "empty ℓ fails cleanly" empty_ell_fails_cleanly;
    tc "non-crashing poc fails cleanly" non_crashing_poc_fails_cleanly;
    tc "report carries artifacts" report_carries_artifacts;
    tc "verdicts deterministic" deterministic_verdicts;
    tc "speculative verdicts match serial" speculative_verdicts_match_serial;
    tc "ep identification scans outermost first" identify_ep_scans_outermost_first;
  ]
