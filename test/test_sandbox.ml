(* Tests for the fork-based process sandbox: the pipe-protocol frame
   codec, every death classification the parent can produce (clean
   verdict, transported exception, SIGSEGV, OOM-kill, RLIMIT_AS,
   RLIMIT_CPU, parent deadline-kill), the memory-pressure admission
   controller, and the process-isolated run paths end to end —
   Domain/process verdict identity, seeded child-death quarantine, and
   the OOM-pair-to-quarantine ladder.

   ORDERING CONSTRAINT: this suite MUST run before any suite that
   spawns a domain.  OCaml 5.1 refuses [Unix.fork] permanently once a
   domain has ever been created in the process (the restriction
   latches; joining does not lift it), and every pool — even a
   single-worker one — spawns domains.  The runner registers this
   suite first for that reason; the Domain-mode halves of the
   comparison tests below use [jobs:1], which stays on the serial
   no-domain path. *)

module Sandbox = Octo_util.Sandbox
module Faultinject = Octo_util.Faultinject
module Registry = Octo_targets.Registry

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Pipe protocol framing *)

let binary_payload = "\x00\x01|\xff\n child \x00 bytes \r\n" ^ String.make 200 '\xee'

let frame_roundtrip () =
  List.iter
    (fun p ->
      match Sandbox.parse_frame (Sandbox.frame p) with
      | Ok p' -> check Alcotest.string "payload" p p'
      | Error why -> Alcotest.failf "valid frame rejected: %s" why)
    [ ""; "verdict"; binary_payload ]

let frame_torn_cases () =
  let f = Sandbox.frame "hello sandbox" in
  let expect_error what data =
    match Sandbox.parse_frame data with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s accepted" what
  in
  expect_error "empty pipe" "";
  expect_error "short header" (String.sub f 0 5);
  expect_error "truncated payload" (String.sub f 0 (String.length f - 3));
  expect_error "trailing bytes" (f ^ "x");
  expect_error "absurd length" "\xff\xff\xff\x7f\x00\x00\x00\x00";
  let corrupt = Bytes.of_string f in
  Bytes.set corrupt 10 (Char.chr (Char.code (Bytes.get corrupt 10) lxor 0xff));
  expect_error "flipped payload byte" (Bytes.to_string corrupt)

(* ------------------------------------------------------------------ *)
(* Death classification, one child per class *)

let child_clean () =
  match Sandbox.run_child (fun () -> binary_payload) with
  | Sandbox.Clean p, _ -> check Alcotest.string "payload crosses the pipe" binary_payload p
  | d, _ -> Alcotest.failf "wanted Clean, got %a" Sandbox.pp_death d

let child_exn () =
  match Sandbox.run_child (fun () -> failwith "boom in the child") with
  | Sandbox.Child_exn msg, _ ->
      check Alcotest.bool "exception text transported" true
        (contains ~needle:"boom in the child" msg)
  | d, _ -> Alcotest.failf "wanted Child_exn, got %a" Sandbox.pp_death d

let child_segv () =
  match Sandbox.run_child ~die:`Segv (fun () -> "unreached") with
  | Sandbox.Segv, _ -> ()
  | d, _ -> Alcotest.failf "wanted Segv, got %a" Sandbox.pp_death d

let child_oom_kill () =
  match Sandbox.run_child ~die:`Oom_kill (fun () -> "unreached") with
  | Sandbox.Oom why, _ ->
      check Alcotest.bool "attributed to the OOM killer" true
        (contains ~needle:"SIGKILL" why)
  | d, _ -> Alcotest.failf "wanted Oom, got %a" Sandbox.pp_death d

(* Allocate way past RLIMIT_AS in MiB-sized steps: the child's runtime
   raises [Out_of_memory], which the sandbox converts to its reserved
   exit code without allocating. *)
let allocate_mb mb () =
  ignore (Sys.opaque_identity (Array.init mb (fun _ -> Bytes.make (1 lsl 20) 'x')));
  "survived"

let child_rlimit_as () =
  let limits = { Sandbox.as_mb = Some 512; cpu_s = None } in
  match Sandbox.run_child ~limits (allocate_mb 2048) with
  | Sandbox.Oom why, _ ->
      check Alcotest.bool "names RLIMIT_AS" true
        (contains ~needle:"RLIMIT_AS" why)
  | d, _ -> Alcotest.failf "wanted Oom (RLIMIT_AS), got %a" Sandbox.pp_death d

let child_deadline_kill () =
  match
    Sandbox.run_child ~kill_after_s:0.2 (fun () ->
        Unix.sleepf 30.0;
        "unreached")
  with
  | Sandbox.Deadline_kill, _ -> ()
  | d, _ -> Alcotest.failf "wanted Deadline_kill, got %a" Sandbox.pp_death d

let child_rlimit_cpu () =
  let limits = { Sandbox.as_mb = None; cpu_s = Some 1 } in
  (* Pure CPU spin; the wall-clock kill is a distant backstop so a
     miscounted RLIMIT_CPU cannot wedge the test. *)
  match
    Sandbox.run_child ~limits ~kill_after_s:30.0 (fun () ->
        let x = ref 0 in
        while true do
          x := !x + 1;
          if !x = max_int then x := 0
        done;
        "unreached")
  with
  | Sandbox.Cpu, _ -> ()
  | d, _ -> Alcotest.failf "wanted Cpu (SIGXCPU), got %a" Sandbox.pp_death d

(* ------------------------------------------------------------------ *)
(* Admission controller *)

let admission_plain_backpressure () =
  (* No watermark: the window never shrinks, deferrals are plain Full. *)
  let t = Sandbox.Admission.create ~window:3 () in
  (match Sandbox.Admission.admit t ~in_flight:2 with
  | `Admit -> ()
  | `Defer _ -> Alcotest.fail "room in the window refused");
  match Sandbox.Admission.admit t ~in_flight:3 with
  | `Defer `Full -> ()
  | `Defer `Pressure -> Alcotest.fail "unshrunk window reported Pressure"
  | `Admit -> Alcotest.fail "full window admitted"

let admission_shrinks_under_pressure () =
  (* A 1 MiB watermark is always exceeded by the parent's own RSS, so
     every admit halves the window until the floor of 1. *)
  let t = Sandbox.Admission.create ~watermark_mb:1 ~window:4 () in
  check Alcotest.bool "parent RSS measurable" true (Sandbox.Admission.self_rss_kb t > 1024);
  (match Sandbox.Admission.admit t ~in_flight:0 with
  | `Admit -> ()
  | `Defer _ -> Alcotest.fail "first admit under pressure should still fit");
  check Alcotest.int "window halved" 2 (Sandbox.Admission.window t);
  (match Sandbox.Admission.admit t ~in_flight:1 with
  | `Defer `Pressure -> ()
  | `Defer `Full -> Alcotest.fail "shrunk window must report Pressure, not Full"
  | `Admit -> Alcotest.fail "admitted past a pressure-shrunk window");
  check Alcotest.int "window at floor" 1 (Sandbox.Admission.window t);
  ignore (Sandbox.Admission.admit t ~in_flight:1);
  check Alcotest.int "floor holds at 1" 1 (Sandbox.Admission.window t);
  Sandbox.Admission.note_child_rss t 12345;
  check Alcotest.int "worst child RSS is a running max" 12345
    (Sandbox.Admission.worst_child_kb t);
  Sandbox.Admission.note_child_rss t 99;
  check Alcotest.int "smaller child does not lower it" 12345
    (Sandbox.Admission.worst_child_kb t)

let admission_regrows_below_half_watermark () =
  (* Shrink under pressure, then release it: once pressure falls below
     half the watermark the window regrows one admission at a time
     (hysteresis).  Pressure is driven through the [probe] seam — real
     RSS cannot be lowered on demand (Gc.compact does not return memory
     to the OS on OCaml 5.1), so the regrow path is unreachable from a
     ballast-allocation test. *)
  let pressure_kb = ref (3 * 1024) in
  let t =
    Sandbox.Admission.create ~watermark_mb:2 ~probe:(fun () -> !pressure_kb)
      ~window:4 ()
  in
  ignore (Sandbox.Admission.admit t ~in_flight:0);
  check Alcotest.bool "pressure shrank the window" true (Sandbox.Admission.window t < 4);
  (* between wm/2 and wm: hysteresis holds the window where it is *)
  pressure_kb := 1536;
  ignore (Sandbox.Admission.admit t ~in_flight:0);
  check Alcotest.bool "window held in the hysteresis band" true (Sandbox.Admission.window t < 4);
  let held = Sandbox.Admission.window t in
  pressure_kb := 256;
  ignore (Sandbox.Admission.admit t ~in_flight:0);
  check Alcotest.int "regrowth is one admission at a time" (held + 1) (Sandbox.Admission.window t);
  let rec pump n = if n > 0 then (ignore (Sandbox.Admission.admit t ~in_flight:0); pump (n - 1)) in
  pump 8;
  check Alcotest.int "window regrown to base" 4 (Sandbox.Admission.window t)

(* ------------------------------------------------------------------ *)
(* Process-isolated run paths, end to end *)

let small_registry n = List.filteri (fun i _ -> i < n) Registry.all

let clean_job (c : Registry.case) =
  let config = { Octopocs.default_config with deadline_s = Some 30.0 } in
  Octopocs.job ~config ~label:(string_of_int c.idx) ~s:c.s ~t:c.t ~poc:c.poc ()

let verdict_table results =
  List.map
    (fun (label, (r : Octopocs.report)) -> (label, r.Octopocs.verdict, r.degradations))
    results
  |> List.sort compare

let proc_matches_domain () =
  let cases = small_registry 3 in
  (* Process half FIRST (fork before any conceivable domain), Domain
     half with jobs:1 — the serial path spawns no domain anywhere. *)
  let prc =
    Octopocs.run_all ~jobs:2 ~isolate:Octopocs.Processes (List.map clean_job cases)
  in
  let dom = Octopocs.run_all ~jobs:1 (List.map clean_job cases) in
  check Alcotest.int "all pairs reported" (List.length cases) (List.length prc);
  check Alcotest.bool "verdict tables identical" true (verdict_table prc = verdict_table dom)

let segv_job (c : Registry.case) =
  let inject =
    Faultinject.create ~rate:0.0
      ~site_rates:[ (Faultinject.Child_segv, 1.0) ]
      ~seed:c.idx ()
  in
  let config = { Octopocs.default_config with inject; deadline_s = Some 30.0 } in
  Octopocs.job ~config ~label:(string_of_int c.idx) ~s:c.s ~t:c.t ~poc:c.poc ()

let stream_of jobs =
  let pending = ref jobs in
  fun () -> match !pending with [] -> None | j :: rest -> pending := rest; Some j

let seeded_segv_quarantines () =
  let cases = small_registry 3 in
  let quars = ref [] in
  let settled = ref 0 in
  let st =
    Octopocs.run_stream ~jobs:2 ~retries:1 ~isolate:Octopocs.Processes
      ~on_settle:(fun _ _ -> incr settled)
      ~on_quarantine:(fun q -> quars := q :: !quars)
      (stream_of (List.map segv_job cases))
  in
  check Alcotest.int "every child died twice -> all quarantined" (List.length cases)
    st.Octopocs.st_quarantined;
  check Alcotest.int "nothing settled" 0 !settled;
  List.iter
    (fun (q : Octopocs.quarantine) ->
      check Alcotest.string "reason" "worker crashed" q.Octopocs.qreason;
      check Alcotest.bool "message names the signal" true
        (contains ~needle:"SIGSEGV" q.Octopocs.qmessage);
      check Alcotest.int "retry ladder consumed" 2 q.Octopocs.qattempts)
    !quars

let seeded_segv_settles_as_failure_without_quarantine () =
  let cases = small_registry 2 in
  let reports = ref [] in
  let st =
    Octopocs.run_stream ~jobs:1 ~retries:0 ~isolate:Octopocs.Processes
      ~on_settle:(fun j r -> reports := (Octopocs.job_label j, r) :: !reports)
      (stream_of (List.map segv_job cases))
  in
  check Alcotest.int "all settled" (List.length cases) st.Octopocs.st_settled;
  List.iter
    (fun ((_, r) : string * Octopocs.report) ->
      match r.Octopocs.verdict with
      | Octopocs.Failure msg ->
          check Alcotest.bool "failure names the segfault" true
            (contains ~needle:"SIGSEGV" msg)
      | _ -> Alcotest.fail "child segfault settled as a non-Failure verdict")
    !reports

(* The ISSUE's acceptance scenario: one pair deterministically OOMs
   under RLIMIT_AS, is classified as an OOM failure, retried, and lands
   in quarantine with reason "oom" — while its batch-mates complete. *)
let oom_pair_quarantined_others_complete () =
  let cases = small_registry 3 in
  let oom_label = string_of_int (List.hd cases).Registry.idx in
  let limits = { Sandbox.as_mb = Some 512; cpu_s = None } in
  let pre_run j =
    if Octopocs.job_label j = oom_label then ignore (allocate_mb 2048 ())
  in
  let quars = ref [] in
  let settled = ref [] in
  let st =
    Octopocs.run_stream ~jobs:2 ~retries:1 ~isolate:Octopocs.Processes ~limits ~pre_run
      ~on_settle:(fun j _ -> settled := Octopocs.job_label j :: !settled)
      ~on_quarantine:(fun q -> quars := q :: !quars)
      (stream_of (List.map clean_job cases))
  in
  check Alcotest.int "exactly the OOM pair quarantined" 1 st.Octopocs.st_quarantined;
  (match !quars with
  | [ q ] ->
      check Alcotest.string "label" oom_label q.Octopocs.qlabel;
      check Alcotest.string "reason" "oom" q.Octopocs.qreason;
      check Alcotest.int "after the full retry ladder" 2 q.Octopocs.qattempts;
      check Alcotest.bool "message says out of memory" true
        (contains ~needle:"out of memory" q.Octopocs.qmessage)
  | _ -> Alcotest.fail "expected exactly one quarantine record");
  check Alcotest.int "batch-mates all settled" (List.length cases - 1)
    (List.length !settled);
  check Alcotest.bool "the OOM pair never settled" false (List.mem oom_label !settled)

(* Memory-pressure admission: a 1 MiB watermark forces the window to
   its floor, so the run must record at least one deferral episode and
   stamp the "admission-deferred" degradation on a later admission. *)
let stream_records_deferrals () =
  let cases = small_registry 3 in
  let degraded = ref 0 in
  let st =
    Octopocs.run_stream ~jobs:2 ~window:4 ~isolate:Octopocs.Processes ~mem_watermark_mb:1
      ~on_settle:(fun _ (r : Octopocs.report) ->
        if List.mem "admission-deferred" r.Octopocs.degradations then incr degraded)
      (stream_of (List.map clean_job cases))
  in
  check Alcotest.int "all pairs settled" (List.length cases) st.Octopocs.st_settled;
  check Alcotest.bool "deferral episodes counted" true (st.Octopocs.st_deferrals >= 1);
  check Alcotest.bool "a deferred admission carries the degradation" true (!degraded >= 1);
  check Alcotest.bool "peak in-flight bounded by the shrunk window" true
    (st.Octopocs.st_peak_in_flight <= 2)

let suite =
  [
    tc "frame: roundtrip with binary payloads" frame_roundtrip;
    tc "frame: every torn shape maps to Error" frame_torn_cases;
    tc "child: clean payload crosses the pipe" child_clean;
    tc "child: exception transported and classified" child_exn;
    tc "child: SIGSEGV classified" child_segv;
    tc "child: OOM-kill classified" child_oom_kill;
    tc "child: RLIMIT_AS converts to the OOM exit code" child_rlimit_as;
    tc "child: parent deadline-kill classified" child_deadline_kill;
    tc "child: RLIMIT_CPU (SIGXCPU) classified" child_rlimit_cpu;
    tc "admission: full window is plain backpressure" admission_plain_backpressure;
    tc "admission: pressure halves the window to its floor" admission_shrinks_under_pressure;
    tc "admission: window regrows below half the watermark" admission_regrows_below_half_watermark;
    tc "proc: batch verdicts identical to domain mode" proc_matches_domain;
    tc "proc: seeded segv schedule exhausts into quarantine" seeded_segv_quarantines;
    tc "proc: child deaths settle as failures sans quarantine"
      seeded_segv_settles_as_failure_without_quarantine;
    tc "proc: OOM pair quarantined with reason oom, mates complete"
      oom_pair_quarantined_others_complete;
    tc "proc: memory watermark defers admissions" stream_records_deferrals;
  ]
