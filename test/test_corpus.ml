(* Tests for the corpus layer: the deterministic pair generator (same
   coordinates, same pair; expected verdict classes hold end-to-end),
   streaming pair sources (spec parsing, directory manifests), the
   streaming runner's quarantine/windowing behaviour, and the pool's
   backoff policy. *)

module Corpus = Octo_targets.Corpus
module Source = Octo_targets.Source
module Pool = Octo_util.Pool
module Metrics = Octo_util.Metrics
module Faultinject = Octo_util.Faultinject
module O = Octopocs

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let with_tmp_dir f =
  let dir = Filename.temp_file "octocorpus" ".d" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let rec rm p =
    if Sys.is_directory p then begin
      Array.iter (fun n -> rm (Filename.concat p n)) (Sys.readdir p);
      Unix.rmdir p
    end
    else Sys.remove p
  in
  Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm dir) (fun () -> f dir)

(* ------------------------------------------------------------------ *)
(* Generator determinism and structure *)

let gen_deterministic () =
  for i = 0 to 49 do
    let a = Corpus.generate ~seed:7 ~index:i and b = Corpus.generate ~seed:7 ~index:i in
    check Alcotest.string "label" a.Corpus.glabel b.Corpus.glabel;
    check Alcotest.string "poc" a.Corpus.gpoc b.Corpus.gpoc;
    check Alcotest.bool "s" true (a.Corpus.gs = b.Corpus.gs);
    check Alcotest.bool "t" true (a.Corpus.gt = b.Corpus.gt)
  done

let gen_seed_sensitivity () =
  (* Different seeds must not produce the same corpus: over 30 indices at
     least one pair must differ in PoC or label. *)
  let differs =
    List.exists
      (fun i ->
        let a = Corpus.generate ~seed:1 ~index:i and b = Corpus.generate ~seed:2 ~index:i in
        a.Corpus.glabel <> b.Corpus.glabel || a.Corpus.gpoc <> b.Corpus.gpoc)
      (List.init 30 Fun.id)
  in
  check Alcotest.bool "seeds diverge" true differs

let gen_label_shape () =
  let g = Corpus.generate ~seed:7 ~index:123 in
  check Alcotest.bool "label prefix" true
    (String.length g.Corpus.glabel > 6 && String.sub g.Corpus.glabel 0 6 = "g00123")

let gen_covers_all_variants () =
  (* The weighted draw must hit every variant and family in a modest
     prefix of the corpus (deterministic, so this is a fixed fact). *)
  let variants = Hashtbl.create 4 and fams = Hashtbl.create 6 in
  for i = 0 to 99 do
    let g = Corpus.generate ~seed:42 ~index:i in
    Hashtbl.replace variants (Corpus.variant_name g.Corpus.gvariant) ();
    Hashtbl.replace fams (Corpus.family_name g.Corpus.gfamily) ()
  done;
  check Alcotest.int "4 variants" 4 (Hashtbl.length variants);
  check Alcotest.int "6 families" 6 (Hashtbl.length fams)

(* The load-bearing property: every generated pair verifies to the class
   the generator promised.  Scan a prefix until each (family, variant)
   cell seen there is validated; cap the work at a fixed pair budget. *)
let gen_expected_classes () =
  let budget = 36 in
  for i = 0 to budget - 1 do
    let g = Corpus.generate ~seed:42 ~index:i in
    let r = O.run ~s:g.Corpus.gs ~t:g.Corpus.gt ~poc:g.Corpus.gpoc () in
    check Alcotest.string
      (Printf.sprintf "%s class" g.Corpus.glabel)
      g.Corpus.gexpected
      (O.verdict_class r.O.verdict)
  done

(* ------------------------------------------------------------------ *)
(* Sources *)

let drain src =
  let rec go acc = match Source.next src with None -> List.rev acc | Some p -> go (p :: acc) in
  go []

let source_registry () =
  let ps = drain (Source.registry ()) in
  check Alcotest.int "15 pairs" 15 (List.length ps);
  check Alcotest.(list string) "labels"
    (List.init 15 (fun i -> string_of_int (i + 1)))
    (List.map (fun p -> p.Source.plabel) ps)

let source_generated () =
  let ps = drain (Source.generated ~seed:9 ~count:12 ()) in
  check Alcotest.int "12 pairs" 12 (List.length ps);
  List.iteri
    (fun i p ->
      let g = Corpus.generate ~seed:9 ~index:i in
      check Alcotest.string "label" g.Corpus.glabel p.Source.plabel;
      check Alcotest.string "poc" g.Corpus.gpoc p.Source.ppoc;
      check Alcotest.bool "expected" true (p.Source.pexpected = Some g.Corpus.gexpected))
    ps

let source_of_spec () =
  let ok spec = match Source.of_spec spec with Ok s -> Source.id s | Error e -> "error: " ^ e in
  check Alcotest.string "registry" "registry" (ok "registry");
  check Alcotest.string "gen default seed" "gen:5:42" (ok "gen:5");
  check Alcotest.string "gen explicit seed" "gen:7:9" (ok "gen:7:9");
  let bad spec = match Source.of_spec spec with Ok _ -> false | Error _ -> true in
  check Alcotest.bool "bad count" true (bad "gen:x");
  check Alcotest.bool "negative" true (bad "gen:-3");
  check Alcotest.bool "nonsense" true (bad "no-such-corpus-dir")

let source_dir_roundtrip () =
  with_tmp_dir (fun dir ->
      Source.write_dir ~dir ~seed:11 ~count:8;
      let ps = drain (Source.directory dir) in
      check Alcotest.int "8 pairs" 8 (List.length ps);
      List.iteri
        (fun i p ->
          let g = Corpus.generate ~seed:11 ~index:i in
          check Alcotest.string "label" g.Corpus.glabel p.Source.plabel;
          check Alcotest.string "poc" g.Corpus.gpoc p.Source.ppoc)
        ps)

let source_dir_skips_malformed () =
  with_tmp_dir (fun dir ->
      Source.write_dir ~dir ~seed:11 ~count:3;
      let oc = open_out (Filename.concat dir "pair-00001.pair") in
      output_string oc "not a manifest\n";
      close_out oc;
      let oc = open_out (Filename.concat dir "zz-junk.pair") in
      output_string oc "octopair1\nregistry=9999\n";
      close_out oc;
      let ps = drain (Source.directory dir) in
      check Alcotest.int "malformed skipped" 2 (List.length ps))

let source_dir_registry_manifest () =
  with_tmp_dir (fun dir ->
      let oc = open_out (Filename.concat dir "only.pair") in
      output_string oc "octopair1\nregistry=3\n";
      close_out oc;
      let ps = drain (Source.directory dir) in
      check Alcotest.int "one pair" 1 (List.length ps);
      check Alcotest.string "label" "3" (List.hd ps).Source.plabel)

(* ------------------------------------------------------------------ *)
(* Backoff policy *)

let backoff_deterministic () =
  let a = Pool.backoff_delay ~key:5 ~attempt:3 () in
  let b = Pool.backoff_delay ~key:5 ~attempt:3 () in
  check (Alcotest.float 0.0) "same (key, attempt), same delay" a b

let backoff_caps_and_grows () =
  (* Expected (pre-jitter) delay doubles per attempt and saturates at the
     cap; jitter keeps every sample within [0.5, 1.5] x nominal. *)
  let nominal a = Float.min 0.100 (0.002 *. Float.of_int (1 lsl (min a 16 - 1))) in
  for attempt = 1 to 20 do
    let d = Pool.backoff_delay ~key:attempt ~attempt () in
    let n = nominal attempt in
    check Alcotest.bool "lower" true (d >= (0.5 *. n) -. 1e-9);
    check Alcotest.bool "upper" true (d <= (1.5 *. n) +. 1e-9)
  done;
  check Alcotest.bool "cap" true (Pool.backoff_delay ~key:1 ~attempt:30 () <= 0.150 +. 1e-9)

let backoff_counter () =
  Metrics.enable ();
  let read () = Metrics.counter_value (Metrics.current ()) Metrics.Pool_backoffs in
  let before = read () in
  Pool.backoff_sleep ~base_s:0.0001 ~cap_s:0.0002 ~key:1 ~attempt:1 ();
  Pool.backoff_sleep ~base_s:0.0001 ~cap_s:0.0002 ~key:2 ~attempt:2 ();
  check Alcotest.int "two sleeps counted" (before + 2) (read ())

(* ------------------------------------------------------------------ *)
(* Streaming runner *)

let mini_source n =
  (* A source of n cheap registry-pair-1 jobs with distinct labels. *)
  let c = Octo_targets.Registry.find 1 in
  let i = ref 0 in
  fun () ->
    if !i >= n then None
    else begin
      incr i;
      Some
        (O.job
           ~label:(Printf.sprintf "p%02d" !i)
           ~s:c.Octo_targets.Registry.s ~t:c.Octo_targets.Registry.t
           ~poc:c.Octo_targets.Registry.poc ())
    end

let stream_serial_settles_all () =
  let settled = ref [] in
  let st =
    O.run_stream ~jobs:1
      ~on_settle:(fun j r ->
        settled := (O.job_label j, O.verdict_class r.O.verdict) :: !settled)
      (mini_source 5)
  in
  check Alcotest.int "pulled" 5 st.O.st_pulled;
  check Alcotest.int "settled" 5 st.O.st_settled;
  check Alcotest.int "quarantined" 0 st.O.st_quarantined;
  check Alcotest.int "all reported" 5 (List.length !settled);
  List.iter (fun (_, c) -> check Alcotest.string "class" "Type-I" c) !settled

let stream_parallel_bounded_window () =
  let st = O.run_stream ~jobs:2 ~window:3 ~on_settle:(fun _ _ -> ()) (mini_source 8) in
  check Alcotest.int "settled" 8 st.O.st_settled;
  check Alcotest.bool "window respected" true (st.O.st_peak_in_flight <= 3)

(* A config whose injector always fires Worker_crash: the job dies on
   every attempt, exhausts the retry budget, and must be quarantined
   rather than failing the stream. *)
let poison_config () =
  let inject =
    Faultinject.create ~seed:1 ~rate:0.0 ~site_rates:[ (Faultinject.Worker_crash, 1.0) ] ()
  in
  { O.default_config with O.inject }

let stream_quarantines_poison () =
  let c = Octo_targets.Registry.find 1 in
  let poison = poison_config () in
  let i = ref 0 in
  let next () =
    if !i >= 4 then None
    else begin
      incr i;
      let label = Printf.sprintf "q%02d" !i in
      if !i = 2 then
        Some
          (O.job ~config:poison ~label ~s:c.Octo_targets.Registry.s
             ~t:c.Octo_targets.Registry.t ~poc:c.Octo_targets.Registry.poc ())
      else
        Some
          (O.job ~label ~s:c.Octo_targets.Registry.s ~t:c.Octo_targets.Registry.t
             ~poc:c.Octo_targets.Registry.poc ())
    end
  in
  let quarantined = ref [] in
  let settled = ref 0 in
  let st =
    O.run_stream ~jobs:1 ~retries:2
      ~on_settle:(fun _ _ -> incr settled)
      ~on_quarantine:(fun q -> quarantined := q :: !quarantined)
      next
  in
  check Alcotest.int "settled" 3 !settled;
  check Alcotest.int "quarantined" 1 st.O.st_quarantined;
  match !quarantined with
  | [ q ] ->
      check Alcotest.string "label" "q02" q.O.qlabel;
      check Alcotest.string "reason" "worker crashed" q.O.qreason;
      check Alcotest.int "attempts" 3 q.O.qattempts;
      check Alcotest.bool "key recorded" true (String.length q.O.qkey > 0)
  | qs -> Alcotest.failf "expected 1 quarantine, got %d" (List.length qs)

let stream_without_handler_settles_failure () =
  (* No on_quarantine: the poison pair must settle as a Failure report
     instead of disappearing. *)
  let c = Octo_targets.Registry.find 1 in
  let poison = poison_config () in
  let sent = ref false in
  let next () =
    if !sent then None
    else begin
      sent := true;
      Some
        (O.job ~config:poison ~label:"lone" ~s:c.Octo_targets.Registry.s
           ~t:c.Octo_targets.Registry.t ~poc:c.Octo_targets.Registry.poc ())
    end
  in
  let got = ref None in
  let st = O.run_stream ~jobs:1 ~retries:1 ~on_settle:(fun _ r -> got := Some r) next in
  check Alcotest.int "settled" 1 st.O.st_settled;
  check Alcotest.int "quarantined" 0 st.O.st_quarantined;
  match !got with
  | Some r ->
      check Alcotest.string "failure class" "Failure" (O.verdict_class r.O.verdict)
  | None -> Alcotest.fail "no report"

let quarantine_codec_roundtrip () =
  let q =
    {
      O.qlabel = "g00042-tif-clone";
      qkey = "abcd1234";
      qreason = "worker stalled";
      qmessage = "Injected(worker-stall: synthetic wedged worker)";
      qbacktrace = "Raised at ...\nCalled from ...";
      qattempts = 3;
    }
  in
  match O.decode_quarantine (O.encode_quarantine q) with
  | Some q' -> check Alcotest.bool "roundtrip" true (q = q')
  | None -> Alcotest.fail "decode failed"

let quarantine_codec_rejects_junk () =
  check Alcotest.bool "empty" true (O.decode_quarantine "" = None);
  check Alcotest.bool "foreign" true (O.decode_quarantine "OPR3xxxx" = None);
  let enc = O.encode_quarantine
      { O.qlabel = "l"; qkey = "k"; qreason = "r"; qmessage = "m"; qbacktrace = "b"; qattempts = 1 }
  in
  check Alcotest.bool "truncated" true
    (O.decode_quarantine (String.sub enc 0 (String.length enc - 1)) = None);
  check Alcotest.bool "padded" true (O.decode_quarantine (enc ^ "x") = None)

let suite =
  [
    tc "gen: deterministic" gen_deterministic;
    tc "gen: seed sensitivity" gen_seed_sensitivity;
    tc "gen: label shape" gen_label_shape;
    tc "gen: covers all variants and families" gen_covers_all_variants;
    tc "gen: expected classes hold end-to-end" gen_expected_classes;
    tc "source: registry" source_registry;
    tc "source: generated" source_generated;
    tc "source: of_spec" source_of_spec;
    tc "source: directory roundtrip" source_dir_roundtrip;
    tc "source: directory skips malformed" source_dir_skips_malformed;
    tc "source: registry manifest" source_dir_registry_manifest;
    tc "backoff: deterministic" backoff_deterministic;
    tc "backoff: caps and grows" backoff_caps_and_grows;
    tc "backoff: counter" backoff_counter;
    tc "stream: serial settles all" stream_serial_settles_all;
    tc "stream: parallel bounded window" stream_parallel_bounded_window;
    tc "stream: quarantines poison" stream_quarantines_poison;
    tc "stream: no handler settles failure" stream_without_handler_settles_failure;
    tc "quarantine codec: roundtrip" quarantine_codec_roundtrip;
    tc "quarantine codec: rejects junk" quarantine_codec_rejects_junk;
  ]
