(* Tests for the durable run layer: the write-ahead journal (framing,
   torn-write recovery, injected torn appends), the verdict record codec,
   content-keyed verdict caching, the pool's heartbeat watchdog, and
   fail-fast / resume semantics of batch verification. *)

module Journal = Octo_util.Journal
module Faultinject = Octo_util.Faultinject
module Pool = Octo_util.Pool
module Registry = Octo_targets.Registry

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let tmp_journal () =
  let path = Filename.temp_file "octotest" ".jrnl" in
  Sys.remove path;
  path

let with_tmp f =
  let path = tmp_journal () in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path) (fun () -> f path)

let append_raw path bytes =
  let oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path in
  output_string oc bytes;
  close_out oc

(* A record with every byte class a payload can contain. *)
let binary_record = "\x00\x01|\xff\n framed \x00 bytes \r\n" ^ String.make 300 '\xaa'

(* ------------------------------------------------------------------ *)
(* Journal framing *)

let journal_roundtrip () =
  with_tmp (fun path ->
      let w = Journal.create ~path () in
      let records = [ "first"; ""; binary_record; "last" ] in
      List.iter (Journal.append w) records;
      Journal.close w;
      let r = Journal.replay path in
      check Alcotest.(list string) "records" records r.Journal.records;
      check Alcotest.bool "not torn" false r.Journal.torn)

let journal_missing_file_is_empty () =
  let r = Journal.replay "/nonexistent/octopocs.jrnl" in
  check Alcotest.(list string) "no records" [] r.Journal.records;
  check Alcotest.bool "not torn" false r.Journal.torn

let journal_header_garbage_is_torn () =
  with_tmp (fun path ->
      append_raw path "this is not a journal at all";
      let r = Journal.replay path in
      check Alcotest.(list string) "nothing recovered" [] r.Journal.records;
      check Alcotest.bool "flagged torn" true r.Journal.torn;
      check Alcotest.int "no valid prefix" 0 r.Journal.valid_bytes)

let journal_torn_tail_dropped () =
  with_tmp (fun path ->
      let w = Journal.create ~path () in
      Journal.append w "alpha";
      Journal.append w "beta";
      Journal.close w;
      let clean_len = (Unix.stat path).Unix.st_size in
      (* A frame header promising 64 payload bytes that never arrived. *)
      append_raw path "\x40\x00\x00\x00\x99\x99\x99\x99partial";
      let r = Journal.replay path in
      check Alcotest.(list string) "prefix intact" [ "alpha"; "beta" ] r.Journal.records;
      check Alcotest.bool "flagged torn" true r.Journal.torn;
      check Alcotest.int "valid prefix ends before tear" clean_len r.Journal.valid_bytes)

let journal_short_frame_header_dropped () =
  with_tmp (fun path ->
      let w = Journal.create ~path () in
      Journal.append w "alpha";
      Journal.close w;
      append_raw path "\x05\x00\x00";  (* 3 bytes: not even a length field *)
      let r = Journal.replay path in
      check Alcotest.(list string) "prefix intact" [ "alpha" ] r.Journal.records;
      check Alcotest.bool "flagged torn" true r.Journal.torn)

let journal_crc_corruption_ends_prefix () =
  with_tmp (fun path ->
      let w = Journal.create ~path () in
      Journal.append w "alpha";
      Journal.append w "beta";
      Journal.append w "gamma";
      Journal.close w;
      (* Flip one payload byte of the SECOND record: it and everything after
         it is untrusted (frame boundaries are gone past the first bad
         frame). *)
      let ic = open_in_bin path in
      let data = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let second_payload =
        String.length Journal.header + (8 + String.length "alpha") + 8
      in
      let b = Bytes.of_string data in
      Bytes.set b second_payload 'X';
      let oc = open_out_bin path in
      output_bytes oc b;
      close_out oc;
      let r = Journal.replay path in
      check Alcotest.(list string) "only the pre-corruption prefix" [ "alpha" ]
        r.Journal.records;
      check Alcotest.bool "flagged torn" true r.Journal.torn)

let journal_absurd_length_is_torn () =
  with_tmp (fun path ->
      let w = Journal.create ~path () in
      Journal.append w "alpha";
      Journal.close w;
      (* Length field far beyond max_record_len: mid-frame garbage, not a
         record we could ever have written. *)
      append_raw path "\xff\xff\xff\x7f\x00\x00\x00\x00";
      let r = Journal.replay path in
      check Alcotest.(list string) "prefix intact" [ "alpha" ] r.Journal.records;
      check Alcotest.bool "flagged torn" true r.Journal.torn)

let journal_open_resume_truncates_and_appends () =
  with_tmp (fun path ->
      let w = Journal.create ~path () in
      Journal.append w "alpha";
      Journal.append w "beta";
      Journal.close w;
      append_raw path "\x10\x00\x00\x00\x00\x00\x00\x00half";
      let w2, recovered = Journal.open_resume ~path () in
      check Alcotest.(list string) "recovered prefix" [ "alpha"; "beta" ] recovered;
      Journal.append w2 "gamma";
      Journal.close w2;
      let r = Journal.replay path in
      check Alcotest.(list string) "tail repaired, append clean"
        [ "alpha"; "beta"; "gamma" ] r.Journal.records;
      check Alcotest.bool "no longer torn" false r.Journal.torn)

let journal_open_resume_fresh_and_garbage () =
  with_tmp (fun path ->
      (* Missing file: starts a fresh journal. *)
      let w, recovered = Journal.open_resume ~path () in
      check Alcotest.(list string) "nothing to recover" [] recovered;
      Journal.append w "only";
      Journal.close w;
      check Alcotest.(list string) "fresh journal works" [ "only" ]
        (Journal.replay path).Journal.records);
  with_tmp (fun path ->
      (* Headerless garbage: no valid prefix, so resume starts over. *)
      append_raw path "garbage, not a journal";
      let w, recovered = Journal.open_resume ~path () in
      check Alcotest.(list string) "nothing recovered from garbage" [] recovered;
      Journal.append w "fresh";
      Journal.close w;
      let r = Journal.replay path in
      check Alcotest.(list string) "restarted clean" [ "fresh" ] r.Journal.records;
      check Alcotest.bool "clean" false r.Journal.torn)

let journal_injected_torn_write () =
  with_tmp (fun path ->
      let inject =
        Faultinject.create ~rate:0.0 ~site_rates:[ (Faultinject.Journal_write, 1.0) ]
          ~seed:1 ()
      in
      let w = Journal.create ~inject ~path () in
      (match Journal.append w "doomed" with
      | () -> Alcotest.fail "expected Injected"
      | exception Faultinject.Injected _ -> ());
      (* The simulated process is dead: later appends silently go nowhere. *)
      Journal.append w "after poison";
      Journal.close w;
      let r = Journal.replay path in
      check Alcotest.(list string) "half-frame recovered as nothing" [] r.Journal.records;
      check Alcotest.bool "torn" true r.Journal.torn;
      (* Resume repairs the tear and appending works again. *)
      let w2, recovered = Journal.open_resume ~path () in
      check Alcotest.(list string) "empty recovery" [] recovered;
      Journal.append w2 "reborn";
      Journal.close w2;
      check Alcotest.(list string) "clean after resume" [ "reborn" ]
        (Journal.replay path).Journal.records)

let journal_append_after_close_rejected () =
  with_tmp (fun path ->
      let w = Journal.create ~path () in
      Journal.close w;
      Journal.close w;  (* idempotent *)
      match Journal.append w "late" with
      | () -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ())

let crc32_check_value () =
  (* The CRC-32/IEEE check value from the rocksoft catalogue. *)
  check Alcotest.int "crc32(123456789)" 0xCBF43926 (Journal.crc32 "123456789")

(* ------------------------------------------------------------------ *)
(* Verdict record codec *)

let sample_reports : (string * Octopocs.report) list =
  let base = Octopocs.failure_report "x" in
  [
    ( "triggered-I",
      { base with
        verdict = Octopocs.Triggered { poc' = binary_record; ptype = Octopocs.Type_I };
        ep = "mjpg_scan"; ell = [ "a"; "b" ]; elapsed_s = 1.25 } );
    ( "triggered-II",
      { base with
        verdict = Octopocs.Triggered { poc' = ""; ptype = Octopocs.Type_II };
        degradations = [ "symex-escalate"; "sym-file-degrade" ] } );
    ("nt-ep", { base with verdict = Octopocs.Not_triggerable Octopocs.Ep_not_called });
    ("nt-dead", { base with verdict = Octopocs.Not_triggerable Octopocs.Program_dead });
    ("nt-unsat", { base with verdict = Octopocs.Not_triggerable Octopocs.Unsat_model });
    ( "nt-conflict",
      { base with verdict = Octopocs.Not_triggerable (Octopocs.Constraint_conflict 3) } );
    ("failure", { base with verdict = Octopocs.Failure "CFG recovery failed: x@3" });
  ]

let codec_roundtrip () =
  List.iter
    (fun (name, (r : Octopocs.report)) ->
      let payload = Octopocs.encode_result ~label:name ~key:"k123" r in
      match Octopocs.decode_result payload with
      | None -> Alcotest.failf "%s: decode returned None" name
      | Some (label, key, d) ->
          check Alcotest.string (name ^ " label") name label;
          check Alcotest.string (name ^ " key") "k123" key;
          check Alcotest.bool (name ^ " verdict") true (d.verdict = r.verdict);
          check Alcotest.string (name ^ " ep") r.ep d.ep;
          check Alcotest.(list string) (name ^ " ell") r.ell d.ell;
          check Alcotest.(list string) (name ^ " degradations") r.degradations d.degradations;
          check (Alcotest.float 0.0) (name ^ " elapsed") r.elapsed_s d.elapsed_s)
    sample_reports

let codec_rejects_malformed () =
  let valid =
    Octopocs.encode_result ~label:"1" ~key:"k" (snd (List.hd sample_reports))
  in
  (* Every strict prefix is an incomplete record; every version or tag
     perturbation is a foreign record.  None may crash the decoder. *)
  for cut = 0 to String.length valid - 1 do
    match Octopocs.decode_result (String.sub valid 0 cut) with
    | None -> ()
    | Some _ -> Alcotest.failf "prefix of length %d decoded" cut
  done;
  check Alcotest.bool "trailing garbage rejected" true
    (Octopocs.decode_result (valid ^ "x") = None);
  check Alcotest.bool "foreign version rejected" true
    (Octopocs.decode_result ("XXXX" ^ String.sub valid 4 (String.length valid - 4)) = None);
  check Alcotest.bool "empty rejected" true (Octopocs.decode_result "" = None)

(* ------------------------------------------------------------------ *)
(* Content keys *)

let content_key_stable_and_sensitive () =
  let c1 = Registry.find 1 and c2 = Registry.find 2 in
  let key ?config ?ell (c : Registry.case) =
    Octopocs.content_key ?config ?ell ~s:c.s ~t:c.t ~poc:c.poc ()
  in
  check Alcotest.string "deterministic" (key c1) (key c1);
  check Alcotest.bool "different pair, different key" true (key c1 <> key c2);
  check Alcotest.bool "poc change forces re-run" true
    (key c1 <> Octopocs.content_key ~s:c1.s ~t:c1.t ~poc:(c1.poc ^ "\x00") ());
  check Alcotest.bool "ell override changes key" true (key c1 <> key ~ell:[ "mjpg_scan" ] c1);
  let budget = { Octopocs.default_config with solver_budget = 7 } in
  check Alcotest.bool "budget change forces re-run" true (key c1 <> key ~config:budget c1);
  (* Fault injection perturbs a run, not the pair's identity: a resumed
     chaos batch must accept the journaled verdicts. *)
  let injected =
    { Octopocs.default_config with
      inject = Faultinject.create ~rate:0.5 ~seed:9 () }
  in
  check Alcotest.string "inject excluded from key" (key c1) (key ~config:injected c1)

(* ------------------------------------------------------------------ *)
(* Heartbeat watchdog *)

let watchdog_requeues_stalled_worker () =
  (* First attempt wedges (no heartbeat) for far longer than the grace; the
     requeued attempt answers immediately.  The watchdog must hand the item
     to a fresh attempt and settle with its result. *)
  let attempts = Atomic.make 0 in
  let f () =
    if Atomic.fetch_and_add attempts 1 = 0 then begin
      Unix.sleepf 0.6;
      111
    end
    else 222
  in
  match Pool.parallel_map_result ~jobs:2 ~retries:1 ~stall_grace_s:0.05 (fun () -> f ()) [ () ] with
  | [ Ok 222 ] -> check Alcotest.int "both attempts ran" 2 (Atomic.get attempts)
  | [ Ok n ] -> Alcotest.failf "settled with attempt result %d" n
  | [ Error (e, _) ] -> Alcotest.failf "unexpected error: %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "expected one result"

let watchdog_exhausted_attempts_settle_stalled () =
  let f () = Unix.sleepf 0.5; 1 in
  match Pool.parallel_map_result ~jobs:2 ~retries:0 ~stall_grace_s:0.05 (fun () -> f ()) [ () ] with
  | [ Error (Pool.Stalled _, _) ] -> ()
  | [ Error (e, _) ] -> Alcotest.failf "unexpected error: %s" (Printexc.to_string e)
  | [ Ok _ ] -> Alcotest.fail "expected Stalled, got Ok"
  | _ -> Alcotest.fail "expected one result"

let watchdog_heartbeat_staves_off_requeue () =
  (* Slow but alive: a worker stamping its heartbeat inside the grace must
     never be requeued, no matter how long it runs. *)
  let attempts = Atomic.make 0 in
  let f () =
    Atomic.incr attempts;
    for _ = 1 to 10 do
      Unix.sleepf 0.02;
      Pool.heartbeat ()
    done;
    42
  in
  match Pool.parallel_map_result ~jobs:2 ~retries:3 ~stall_grace_s:0.08 (fun () -> f ()) [ () ] with
  | [ Ok 42 ] -> check Alcotest.int "single attempt" 1 (Atomic.get attempts)
  | _ -> Alcotest.fail "expected Ok 42"

let watchdog_stale_failure_costs_no_retry () =
  (* The superseded first attempt eventually raises; that failure must be
     discarded as stale, not billed against the retry budget — the requeue
     already consumed the one retry, so a billed stale failure would flip
     the verdict to an error. *)
  let attempts = Atomic.make 0 in
  let f () =
    if Atomic.fetch_and_add attempts 1 = 0 then begin
      Unix.sleepf 0.4;
      failwith "stale attempt dying late"
    end
    else 7
  in
  match Pool.parallel_map_result ~jobs:2 ~retries:1 ~stall_grace_s:0.05 (fun () -> f ()) [ () ] with
  | [ Ok 7 ] -> ()
  | [ Error (e, _) ] -> Alcotest.failf "stale failure consumed the retry: %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "expected one result"

let run_all_maps_stall_to_failure () =
  (* A forced worker-stall with no retries must settle as the structured
     "worker stalled" Failure — the CLI maps it to the tool-crash exit. *)
  let c = Registry.find 1 in
  let config =
    { Octopocs.default_config with
      inject =
        Faultinject.create ~rate:0.0 ~site_rates:[ (Faultinject.Worker_stall, 1.0) ] ~seed:4 () }
  in
  let batch = [ Octopocs.job ~config ~label:"1" ~s:c.s ~t:c.t ~poc:c.poc () ] in
  match Octopocs.run_all ~jobs:2 ~retries:0 ~stall_grace_s:0.05 batch with
  | [ ("1", (r : Octopocs.report)) ] -> (
      match r.verdict with
      | Octopocs.Failure msg ->
          check Alcotest.bool "stall failure message" true
            (String.length msg >= 14 && String.sub msg 0 14 = "worker stalled")
      | v -> Alcotest.failf "expected Failure, got %s" (Octopocs.verdict_class v))
  | _ -> Alcotest.fail "expected one labelled report"

(* ------------------------------------------------------------------ *)
(* Fail-fast and settle callbacks *)

let run_all_fail_fast_skips_rest () =
  (* Serial batch, pair 1 sabotaged with a forced worker crash: fail-fast
     must stop scheduling, report the rest as skipped, and fire on_settle
     only for the pair that actually settled. *)
  let crash =
    { Octopocs.default_config with
      inject =
        Faultinject.create ~rate:0.0 ~site_rates:[ (Faultinject.Worker_crash, 1.0) ] ~seed:2 () }
  in
  let batch =
    List.filter_map
      (fun (c : Registry.case) ->
        if c.idx > 4 then None
        else
          Some
            (Octopocs.job
               ?config:(if c.idx = 1 then Some crash else None)
               ~label:(string_of_int c.idx) ~s:c.s ~t:c.t ~poc:c.poc ()))
      Registry.all
  in
  let settled = ref [] in
  let results =
    Octopocs.run_all ~jobs:1 ~fail_fast:true
      ~on_settle:(fun label _ -> settled := label :: !settled)
      batch
  in
  check Alcotest.int "all four reports" 4 (List.length results);
  (match results with
  | ("1", r1) :: rest ->
      check Alcotest.bool "pair 1 crashed" true
        (match r1.Octopocs.verdict with Octopocs.Failure _ -> true | _ -> false);
      check Alcotest.bool "pair 1 not a skip" false (Octopocs.is_skipped_report r1);
      List.iter
        (fun (label, r) ->
          check Alcotest.bool (label ^ " skipped") true (Octopocs.is_skipped_report r))
        rest
  | _ -> Alcotest.fail "unexpected result shape");
  check Alcotest.(list string) "only the settled pair journaled" [ "1" ] !settled

let run_all_on_settle_covers_every_pair () =
  let batch =
    List.filter_map
      (fun (c : Registry.case) ->
        if c.idx > 5 then None
        else Some (Octopocs.job ~label:(string_of_int c.idx) ~s:c.s ~t:c.t ~poc:c.poc ()))
      Registry.all
  in
  let settled = ref [] in
  let results =
    Octopocs.run_all ~jobs:2 ~on_settle:(fun label _ -> settled := label :: !settled) batch
  in
  (* on_settle fires from worker context in completion order; by the time
     run_all returns, every pair must have been journaled exactly once. *)
  check Alcotest.(list string) "every pair settled once" [ "1"; "2"; "3"; "4"; "5" ]
    (List.sort compare !settled);
  check Alcotest.int "all reports" 5 (List.length results)

(* ------------------------------------------------------------------ *)
(* Resume-merge equivalence (the CLI's --resume in miniature) *)

let resume_merge_equivalence () =
  with_tmp (fun path ->
      let cases = List.filteri (fun i _ -> i < 3) Registry.all in
      let batch only =
        List.filter_map
          (fun (c : Registry.case) ->
            if only c then
              Some (Octopocs.job ~label:(string_of_int c.idx) ~s:c.s ~t:c.t ~poc:c.poc ())
            else None)
          cases
      in
      let key_of (c : Registry.case) = Octopocs.content_key ~s:c.s ~t:c.t ~poc:c.poc () in
      let journal_to w label (r : Octopocs.report) =
        let key =
          match int_of_string_opt label with
          | Some idx -> key_of (Registry.find idx)
          | None -> ""
        in
        Journal.append w (Octopocs.encode_result ~label ~key r)
      in
      (* Reference: uninterrupted journaled run of all three pairs. *)
      let w = Journal.create ~path () in
      ignore (Octopocs.run_all ~on_settle:(journal_to w) (batch (fun _ -> true)));
      Journal.close w;
      let reference =
        List.filter_map Octopocs.decode_result (Journal.replay path).Journal.records
        |> List.map (fun (l, k, (r : Octopocs.report)) -> (l, k, r.verdict, r.degradations))
        |> List.sort compare
      in
      check Alcotest.int "reference complete" 3 (List.length reference);
      (* Interrupted: only pair 1 settles, then the process "dies" mid-
         append.  Resume recovers the prefix, re-runs the rest, and the
         journal must decode to the reference verdict set. *)
      Sys.remove path;
      let w1 = Journal.create ~path () in
      ignore
        (Octopocs.run_all ~on_settle:(journal_to w1)
           (batch (fun c -> c.idx = 1)));
      Journal.close w1;
      append_raw path "\x30\x00\x00\x00\x00\x00\x00\x00torn";
      let w2, records = Journal.open_resume ~path () in
      let have =
        List.filter_map Octopocs.decode_result records |> List.map (fun (l, _, _) -> l)
      in
      check Alcotest.(list string) "pair 1 recovered" [ "1" ] have;
      ignore
        (Octopocs.run_all ~on_settle:(journal_to w2)
           (batch (fun c -> not (List.mem (string_of_int c.idx) have))));
      Journal.close w2;
      let resumed =
        List.filter_map Octopocs.decode_result (Journal.replay path).Journal.records
        |> List.map (fun (l, k, (r : Octopocs.report)) -> (l, k, r.verdict, r.degradations))
        |> List.sort compare
      in
      check Alcotest.bool "resumed == uninterrupted" true (reference = resumed))

(* ------------------------------------------------------------------ *)
(* Sharded journals *)

module Sharded = Journal.Sharded

let str_contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let with_tmp_dir f =
  let dir = Filename.temp_file "octoshard" ".d" in
  Sys.remove dir;
  let rec rm p =
    if Sys.file_exists p then
      if Sys.is_directory p then begin
        Array.iter (fun n -> rm (Filename.concat p n)) (Sys.readdir p);
        Unix.rmdir p
      end
      else Sys.remove p
  in
  Fun.protect ~finally:(fun () -> rm dir) (fun () -> f dir)

let sharded_roundtrip_and_routing () =
  with_tmp_dir (fun dir ->
      let w = Sharded.create ~dir ~shards:4 () in
      let recs =
        List.init 20 (fun i -> (Printf.sprintf "key-%d" i, Printf.sprintf "rec-%02d" i))
      in
      List.iter (fun (k, p) -> Sharded.append w ~key:k p) recs;
      Sharded.close w;
      let m = Sharded.replay_merged dir in
      check Alcotest.int "shards" 4 m.Sharded.mshards;
      check Alcotest.int "no tears" 0 m.Sharded.mtorn;
      check
        Alcotest.(list string)
        "all records survive the merge"
        (List.sort compare (List.map snd recs))
        (List.sort compare m.Sharded.mrecords);
      (* Routing: every record must sit in the shard its key hashes to,
         and the hash must be stable across writer instances. *)
      List.iter
        (fun (k, p) ->
          let i = Sharded.shard_of_key ~shards:4 k in
          check Alcotest.int "routing stable" i (Sharded.shard_of_key ~shards:4 k);
          let r = Journal.replay (Sharded.shard_path dir i) in
          check Alcotest.bool (p ^ " in its shard") true (List.mem p r.Journal.records))
        recs;
      check Alcotest.int "single shard routes to 0" 0 (Sharded.shard_of_key ~shards:1 "any"))

let sharded_multi_shard_torn_tails () =
  with_tmp_dir (fun dir ->
      let w = Sharded.create ~dir ~shards:3 () in
      let recs = List.init 12 (fun i -> Printf.sprintf "r%02d" i) in
      List.iter (fun p -> Sharded.append w ~key:p p) recs;
      Sharded.close w;
      (* Tear every shard's tail simultaneously: a mid-write SIGKILL can
         leave several shards torn at once. *)
      for i = 0 to 2 do
        append_raw (Sharded.shard_path dir i) "\x40\x00\x00\x00\x99\x99\x99\x99partial"
      done;
      let m = Sharded.replay_merged dir in
      check Alcotest.int "all shards torn" 3 m.Sharded.mtorn;
      check
        Alcotest.(list string)
        "every pre-tear record recovered" (List.sort compare recs)
        (List.sort compare m.Sharded.mrecords);
      (* Resume truncates each tear independently and appends cleanly. *)
      let w2, recovered = Sharded.open_resume ~dir ~shards:3 () in
      check
        Alcotest.(list string)
        "per-shard recovery covers all" (List.sort compare recs)
        (List.sort compare (List.concat (Array.to_list recovered)));
      Sharded.append w2 ~key:"extra" "extra";
      Sharded.close w2;
      let m2 = Sharded.replay_merged dir in
      check Alcotest.int "tears healed" 0 m2.Sharded.mtorn;
      check Alcotest.int "13 records" 13 (List.length m2.Sharded.mrecords))

let sharded_resume_shard_count_mismatch () =
  with_tmp_dir (fun dir ->
      let w = Sharded.create ~dir ~shards:4 () in
      Sharded.close w;
      (match Sharded.open_resume ~dir ~shards:2 () with
      | exception Failure msg ->
          check Alcotest.bool "names both counts" true
            (str_contains msg "4 shard" && str_contains msg "not 2")
      | _ -> Alcotest.fail "mismatched shard count must be refused");
      match Sharded.replay_merged (Filename.concat dir "nope") with
      | exception Failure msg -> check Alcotest.bool "manifest error" true (str_contains msg "MANIFEST")
      | _ -> Alcotest.fail "missing manifest must be an error")

(* Kill-after-K with multi-shard tears: the merged decoded verdict set
   after a resume must equal the uninterrupted run's.  Record-level
   simulation of the CLI driver: verify once for reference, journal the
   first K records, tear two shards, resume (recovering per-shard valid
   prefixes), then append exactly the missing records. *)
let sharded_kill_resume_equivalence () =
  let shards = 4 in
  let pairs =
    List.init 8 (fun i ->
        let g = Octo_targets.Corpus.generate ~seed:5 ~index:i in
        Octo_targets.Corpus.(g.glabel, g.gs, g.gt, g.gpoc))
  in
  let payloads =
    List.map
      (fun (label, s, t, poc) ->
        let key = Octopocs.content_key ~s ~t ~poc () in
        let r = Octopocs.run ~s ~t ~poc () in
        (key, Octopocs.encode_result ~label ~key r))
      pairs
  in
  let decoded_set recs =
    List.filter_map Octopocs.decode_result recs
    |> List.map (fun (l, k, (r : Octopocs.report)) -> (l, k, r.verdict, r.degradations))
    |> List.sort compare
  in
  with_tmp_dir (fun dir ->
      (* Uninterrupted reference run. *)
      let w = Sharded.create ~dir ~shards () in
      List.iter (fun (k, p) -> Sharded.append w ~key:k p) payloads;
      Sharded.close w;
      let reference = decoded_set (Sharded.replay_merged dir).Sharded.mrecords in
      check Alcotest.int "reference complete" (List.length pairs) (List.length reference);
      with_tmp_dir (fun dir2 ->
          (* "Killed" run: only the first K records landed... *)
          let k = 5 in
          let w1 = Sharded.create ~dir:dir2 ~shards () in
          List.iteri (fun i (key, p) -> if i < k then Sharded.append w1 ~key p) payloads;
          Sharded.close w1;
          (* ...and the kill tore two shards mid-frame. *)
          append_raw (Sharded.shard_path dir2 0) "\x30\x00\x00\x00\xaa\xaa\xaa\xaahalf";
          append_raw (Sharded.shard_path dir2 2) "\x7f";
          let w2, recovered = Sharded.open_resume ~dir:dir2 ~shards () in
          let have =
            Array.to_list recovered |> List.concat
            |> List.filter_map Octopocs.decode_result
            |> List.map (fun (l, _, _) -> l)
          in
          check Alcotest.int "first K recovered" k (List.length have);
          List.iter
            (fun (key, p) ->
              match Octopocs.decode_result p with
              | Some (l, _, _) when not (List.mem l have) -> Sharded.append w2 ~key p
              | _ -> ())
            payloads;
          Sharded.close w2;
          let resumed = decoded_set (Sharded.replay_merged dir2).Sharded.mrecords in
          check Alcotest.bool "resumed == uninterrupted" true (reference = resumed)))

(* ------------------------------------------------------------------ *)
(* Validated recovery (quarantine journal) and dump ordering *)

let quar label =
  {
    Octopocs.qlabel = label;
    qkey = "k-" ^ label;
    qreason = "oom";
    qmessage = "child out of memory";
    qbacktrace = "";
    qattempts = 2;
  }

let is_quarantine p = Octopocs.decode_quarantine p <> None

let journal_validate_rejects_wellformed_frame () =
  (* A CRC-valid frame whose payload fails [validate] ends the valid
     prefix exactly like a torn frame: past a record the reader cannot
     interpret, frame boundaries are untrusted. *)
  with_tmp (fun path ->
      let w = Journal.create ~path () in
      Journal.append w (Octopocs.encode_quarantine (quar "7"));
      Journal.append w "not a quarantine record";
      Journal.append w (Octopocs.encode_quarantine (quar "9"));
      Journal.close w;
      let r = Journal.replay ~validate:is_quarantine path in
      check Alcotest.int "prefix of one record" 1 (List.length r.Journal.records);
      check Alcotest.bool "flagged torn" true r.Journal.torn)

let quarantine_resume_truncates_foreign_tail () =
  (* open_resume with the quarantine validator treats a CRC-valid but
     non-OQR1 tail like a tear: truncate to the last decodable record,
     then append cleanly — same recovery rule as the main WAL. *)
  with_tmp (fun path ->
      let w = Journal.create ~path () in
      Journal.append w (Octopocs.encode_quarantine (quar "3"));
      Journal.append w (Octopocs.encode_quarantine (quar "5"));
      Journal.append w "OPR1 payload that is not a quarantine record";
      Journal.close w;
      let w2, recovered = Journal.open_resume ~validate:is_quarantine ~path () in
      check Alcotest.int "valid prefix recovered" 2 (List.length recovered);
      Journal.append w2 (Octopocs.encode_quarantine (quar "8"));
      Journal.close w2;
      let r = Journal.replay ~validate:is_quarantine path in
      check Alcotest.bool "no longer torn" false r.Journal.torn;
      let labels =
        List.filter_map Octopocs.decode_quarantine r.Journal.records
        |> List.map (fun q -> q.Octopocs.qlabel)
      in
      check Alcotest.(list string) "records after repair" [ "3"; "5"; "8" ] labels)

let quarantine_resume_truncates_torn_tail () =
  with_tmp (fun path ->
      let w = Journal.create ~path () in
      Journal.append w (Octopocs.encode_quarantine (quar "1"));
      Journal.close w;
      (* a kill mid-append: header promises bytes that never arrived *)
      append_raw path "\x40\x00\x00\x00\x99\x99\x99\x99partial";
      let w2, recovered = Journal.open_resume ~validate:is_quarantine ~path () in
      check Alcotest.int "prefix recovered" 1 (List.length recovered);
      Journal.append w2 (Octopocs.encode_quarantine (quar "2"));
      Journal.close w2;
      let labels =
        List.filter_map Octopocs.decode_quarantine (Journal.replay path).Journal.records
        |> List.map (fun q -> q.Octopocs.qlabel)
      in
      check Alcotest.(list string) "append clean after tear" [ "1"; "2" ] labels)

let sort_dump_ordering_pinned () =
  let e label key = (label, key, ()) in
  let input = [ e "10" "a"; e "2" "z"; e "2" "a"; e "alpha" ""; e "Beta" "k"; e "1" "m" ] in
  let strip l = List.map (fun (lbl, k, ()) -> (lbl, k)) l in
  let pinned =
    [ ("1", "m"); ("2", "a"); ("2", "z"); ("10", "a"); ("Beta", "k"); ("alpha", "") ]
  in
  check Alcotest.(list (pair string string))
    "numeric labels ascend, key tiebreaks duplicates, strings sort after"
    pinned (strip (Octopocs.sort_dump input));
  (* input-order invariance: a merged sharded dump interleaves by settle
     order, so any permutation must sort identically *)
  check Alcotest.(list (pair string string)) "reversal sorts identically"
    pinned (strip (Octopocs.sort_dump (List.rev input)))

let suite =
  [
    tc "journal: roundtrip with binary payloads" journal_roundtrip;
    tc "journal: missing file is an empty journal" journal_missing_file_is_empty;
    tc "journal: headerless garbage is torn, not fatal" journal_header_garbage_is_torn;
    tc "journal: torn tail dropped, prefix recovered" journal_torn_tail_dropped;
    tc "journal: short frame header dropped" journal_short_frame_header_dropped;
    tc "journal: CRC corruption ends the valid prefix" journal_crc_corruption_ends_prefix;
    tc "journal: absurd length field is torn" journal_absurd_length_is_torn;
    tc "journal: open_resume truncates tear, appends clean" journal_open_resume_truncates_and_appends;
    tc "journal: open_resume on fresh and garbage files" journal_open_resume_fresh_and_garbage;
    tc "journal: injected torn write poisons the writer" journal_injected_torn_write;
    tc "journal: append after close rejected, close idempotent" journal_append_after_close_rejected;
    tc "journal: crc32 reference check value" crc32_check_value;
    tc "codec: every verdict shape roundtrips" codec_roundtrip;
    tc "codec: malformed records decode to None" codec_rejects_malformed;
    tc "cache: content key stable, sensitive, inject-blind" content_key_stable_and_sensitive;
    tc "watchdog: stalled worker requeued and rescued" watchdog_requeues_stalled_worker;
    tc "watchdog: exhausted attempts settle as Stalled" watchdog_exhausted_attempts_settle_stalled;
    tc "watchdog: heartbeat staves off requeue" watchdog_heartbeat_staves_off_requeue;
    tc "watchdog: stale failure costs no retry" watchdog_stale_failure_costs_no_retry;
    tc "batch: forced stall maps to 'worker stalled' Failure" run_all_maps_stall_to_failure;
    tc "batch: fail-fast skips the rest, settles only the first" run_all_fail_fast_skips_rest;
    tc "batch: on_settle covers every pair exactly once" run_all_on_settle_covers_every_pair;
    tc "resume: merged journal equals uninterrupted run" resume_merge_equivalence;
    tc "sharded: roundtrip, routing, merge" sharded_roundtrip_and_routing;
    tc "sharded: simultaneous torn tails recovered" sharded_multi_shard_torn_tails;
    tc "sharded: shard-count mismatch refused" sharded_resume_shard_count_mismatch;
    tc "sharded: kill-after-K resume equals uninterrupted" sharded_kill_resume_equivalence;
    tc "validate: rejected well-formed frame ends the prefix" journal_validate_rejects_wellformed_frame;
    tc "quarantine: resume truncates a foreign-record tail" quarantine_resume_truncates_foreign_tail;
    tc "quarantine: resume truncates a torn tail, appends clean" quarantine_resume_truncates_torn_tail;
    tc "dump: merged ordering pinned (numeric, key tiebreak)" sort_dump_ordering_pinned;
  ]
