(* Test runner: aggregates the per-module suites. *)

let () =
  Alcotest.run "octopocs"
    [
      ("util", Test_util.suite);
      ("vm", Test_vm.suite);
      ("solver", Test_solver.suite);
      ("cfg", Test_cfg.suite);
      ("clone", Test_clone.suite);
      ("taint", Test_taint.suite);
      ("symex", Test_symex.suite);
      ("formats", Test_formats.suite);
      ("targets", Test_targets.suite);
      ("pipeline", Test_pipeline.suite);
      ("fuzz", Test_fuzz.suite);
      ("extensions", Test_extensions.suite);
      ("robust", Test_robust.suite);
      ("journal", Test_journal.suite);
      ("corpus", Test_corpus.suite);
      ("trace", Test_trace.suite);
      ("prop", Test_prop.suite);
      ("stress", Test_stress.suite);
      ("golden", Test_golden.suite);
    ]
