(* Test runner: aggregates the per-module suites.

   "sandbox" MUST stay first: its tests fork, and OCaml 5.1 refuses
   Unix.fork permanently once any domain has ever been spawned in the
   process — which any later suite touching a pool does. *)

let () =
  Alcotest.run "octopocs"
    [
      ("sandbox", Test_sandbox.suite);
      ("util", Test_util.suite);
      ("vm", Test_vm.suite);
      ("solver", Test_solver.suite);
      ("cfg", Test_cfg.suite);
      ("clone", Test_clone.suite);
      ("detect", Test_detect.suite);
      ("taint", Test_taint.suite);
      ("symex", Test_symex.suite);
      ("formats", Test_formats.suite);
      ("targets", Test_targets.suite);
      ("pipeline", Test_pipeline.suite);
      ("fuzz", Test_fuzz.suite);
      ("extensions", Test_extensions.suite);
      ("robust", Test_robust.suite);
      ("journal", Test_journal.suite);
      ("telemetry", Test_telemetry.suite);
      ("corpus", Test_corpus.suite);
      ("trace", Test_trace.suite);
      ("prop", Test_prop.suite);
      ("stress", Test_stress.suite);
      ("golden", Test_golden.suite);
    ]
