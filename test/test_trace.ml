(* Tests for the observability layer: Trace spans (emission, nesting,
   exception safety, schema validation) and the Metrics registry
   (counters, phase histograms, scoped deltas, journal round-trip of
   snapshots, batch-total consistency). *)

module Metrics = Octo_util.Metrics
module Trace = Octo_util.Trace
module Journal = Octo_util.Journal
module Registry = Octo_targets.Registry

let with_metrics f =
  Metrics.enable ();
  Fun.protect ~finally:Metrics.disable f

let with_tracing f =
  let path = Filename.temp_file "octotrace" ".jsonl" in
  Trace.enable ~path;
  (try f () with e -> Trace.disable (); Sys.remove path; raise e);
  Trace.disable ();
  path

let write_file path lines =
  let oc = open_out path in
  List.iter (fun l -> output_string oc (l ^ "\n")) lines;
  close_out oc

let ev ?(tid = 0) ~name ~cat ~ph ts =
  Printf.sprintf "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"ts\":%.3f,\"pid\":1,\"tid\":%d},"
    name cat ph ts tid

(* -- trace emission ---------------------------------------------------- *)

let test_span_file_valid () =
  let path =
    with_tracing (fun () ->
        Trace.with_cat_span ~cat:"pair" ~name:"outer" (fun () ->
            Trace.with_span Trace.Taint "t1" (fun () -> ());
            Trace.with_span Trace.Symex "s1" (fun () ->
                Trace.with_span Trace.Combine "nested" (fun () -> ())));
        (* A second domain gets its own tid lane with its own stack. *)
        Domain.join
          (Domain.spawn (fun () -> Trace.with_span Trace.Solve "other-domain" (fun () -> ()))))
  in
  (match Trace.validate_file path with
  | Ok s ->
      Alcotest.(check int) "spans" 5 s.Trace.spans;
      Alcotest.(check int) "events" 10 s.Trace.events;
      Alcotest.(check (list string)) "phases covered"
        [ "taint"; "symex"; "solve"; "combine" ]
        s.Trace.phases_covered
  | Error msg -> Alcotest.failf "expected valid trace, got: %s" msg);
  Sys.remove path

let test_span_exception_safety () =
  let path =
    with_tracing (fun () ->
        try
          Trace.with_span Trace.Verify "raising" (fun () -> failwith "boom")
        with Failure _ -> ())
  in
  (match Trace.validate_file path with
  | Ok s -> Alcotest.(check int) "span closed despite raise" 1 s.Trace.spans
  | Error msg -> Alcotest.failf "expected valid trace, got: %s" msg);
  Sys.remove path;
  Alcotest.(check int) "span stack drained" 0 (Trace.depth ())

let test_span_inactive_is_passthrough () =
  (* Neither tracing nor metrics on: with_span must run the thunk
     directly and touch no span state. *)
  let r = Trace.with_span Trace.Taint "idle" (fun () -> 41 + 1) in
  Alcotest.(check int) "result" 42 r;
  Alcotest.(check int) "no frame pushed" 0 (Trace.depth ())

(* -- validator rejections ---------------------------------------------- *)

let expect_invalid ~substr lines =
  let path = Filename.temp_file "octotrace" ".jsonl" in
  write_file path ("[" :: lines);
  let r = Trace.validate_file path in
  Sys.remove path;
  match r with
  | Ok _ -> Alcotest.failf "expected invalid (%s), got Ok" substr
  | Error msg ->
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        nn = 0 || go 0
      in
      if not (contains msg substr) then
        Alcotest.failf "error %S does not mention %S" msg substr

let test_validator_rejects () =
  expect_invalid ~substr:"unbalanced" [ ev ~name:"a" ~cat:"taint" ~ph:"B" 1.0 ];
  expect_invalid ~substr:"no open span" [ ev ~name:"a" ~cat:"taint" ~ph:"E" 1.0 ];
  expect_invalid ~substr:"does not match"
    [
      ev ~name:"a" ~cat:"taint" ~ph:"B" 1.0;
      ev ~name:"b" ~cat:"taint" ~ph:"E" 2.0;
    ];
  expect_invalid ~substr:"non-monotonic"
    [
      ev ~name:"a" ~cat:"taint" ~ph:"B" 5.0;
      ev ~name:"a" ~cat:"taint" ~ph:"E" 1.0;
    ];
  expect_invalid ~substr:"unknown cat"
    [ ev ~name:"a" ~cat:"mystery" ~ph:"B" 1.0; ev ~name:"a" ~cat:"mystery" ~ph:"E" 2.0 ];
  (* Distinct tids have independent stacks and clocks: interleaved lanes
     that would be invalid on one tid are fine on two. *)
  let path = Filename.temp_file "octotrace" ".jsonl" in
  write_file path
    [
      "[";
      ev ~tid:1 ~name:"a" ~cat:"taint" ~ph:"B" 5.0;
      ev ~tid:2 ~name:"b" ~cat:"solve" ~ph:"B" 1.0;
      ev ~tid:1 ~name:"a" ~cat:"taint" ~ph:"E" 6.0;
      ev ~tid:2 ~name:"b" ~cat:"solve" ~ph:"E" 2.0;
    ];
  (match Trace.validate_file path with
  | Ok s -> Alcotest.(check int) "two lanes, two spans" 2 s.Trace.spans
  | Error msg -> Alcotest.failf "per-tid lanes should validate: %s" msg);
  Sys.remove path

(* -- metrics ----------------------------------------------------------- *)

let test_counters_and_hist () =
  with_metrics (fun () ->
      let (), d = Metrics.scoped (fun () ->
          Metrics.incr Metrics.Cache_hits;
          Metrics.add Metrics.Vm_steps 41;
          Metrics.incr Metrics.Vm_steps;
          (* 1000 ns lands in log2 bucket 9 (512 <= 1000 < 1024). *)
          Metrics.observe_phase Metrics.Taint 1000)
      in
      let d = Option.get d in
      Alcotest.(check int) "cache-hits" 1 (Metrics.counter_value d Metrics.Cache_hits);
      Alcotest.(check int) "vm-steps" 42 (Metrics.counter_value d Metrics.Vm_steps);
      Alcotest.(check int) "taint spans" 1 (Metrics.phase_spans d Metrics.Taint);
      Alcotest.(check int) "taint ns" 1000 (Metrics.phase_total_ns d Metrics.Taint);
      Alcotest.(check int) "hist bucket 9" 1 (Metrics.phase_hist_bucket d Metrics.Taint 9);
      Alcotest.(check int) "hist bucket 8" 0 (Metrics.phase_hist_bucket d Metrics.Taint 8))

let test_disabled_records_nothing () =
  Metrics.disable ();
  let before = Metrics.aggregate () in
  Metrics.incr Metrics.Cache_hits;
  Metrics.observe_phase Metrics.Solve 5000;
  let after = Metrics.aggregate () in
  Alcotest.(check bool) "no mutation while off" true (Metrics.equal before after)

let test_pipeline_metrics_cover_phases () =
  let c = Registry.find 1 in
  with_metrics (fun () ->
      let r = Octopocs.run ~s:c.s ~t:c.t ~poc:c.poc () in
      match r.metrics with
      | None -> Alcotest.fail "expected Some metrics with collection on"
      | Some m ->
          List.iter
            (fun p ->
              if Metrics.phase_spans m p < 1 then
                Alcotest.failf "phase %s has no spans" (Metrics.phase_name p))
            Metrics.all_phases;
          Alcotest.(check bool) "vm steps counted" true
            (Metrics.counter_value m Metrics.Vm_steps > 0);
          Alcotest.(check bool) "solver nodes counted" true
            (Metrics.counter_value m Metrics.Solver_nodes > 0);
          Alcotest.(check bool) "constraint adds counted" true
            (Metrics.counter_value m Metrics.Constraint_adds > 0);
          Alcotest.(check bool) "symex decisions counted" true
            (Metrics.counter_value m Metrics.Symex_states_forked > 0))

let test_metrics_off_means_none () =
  Metrics.disable ();
  let c = Registry.find 1 in
  let r = Octopocs.run ~s:c.s ~t:c.t ~poc:c.poc () in
  Alcotest.(check bool) "metrics absent when off" true (r.metrics = None)

(* The acceptance-criterion identity: the batch summary sums the per-pair
   report snapshots, and the journal records those same snapshots — so
   the two totals must be equal, field for field. *)
let test_totals_match_journal () =
  let jpath = Filename.temp_file "octotrace" ".jrnl" in
  Sys.remove jpath;
  with_metrics (fun () ->
      let w = Journal.create ~fsync:false ~path:jpath () in
      let batch =
        List.filter_map
          (fun idx ->
            Option.map
              (fun (c : Registry.case) ->
                Octopocs.job ~label:(string_of_int idx) ~s:c.s ~t:c.t ~poc:c.poc ())
              (Registry.find_opt idx))
          [ 1; 2; 10 ]
      in
      let on_settle label r =
        Journal.append w (Octopocs.encode_result ~label ~key:"k" r)
      in
      let results = Octopocs.run_all ~on_settle batch in
      Journal.close w;
      let report_total =
        Metrics.sum (List.filter_map (fun (_, r) -> r.Octopocs.metrics) results)
      in
      let journal_total =
        Metrics.sum
          (List.filter_map
             (fun payload ->
               match Octopocs.decode_result payload with
               | Some (_, _, rep) -> rep.Octopocs.metrics
               | None -> None)
             (Journal.replay jpath).records)
      in
      Alcotest.(check bool) "three snapshots journaled" true
        (Metrics.counter_value journal_total Metrics.Vm_steps > 0);
      Alcotest.(check bool) "summary totals = journal totals" true
        (Metrics.equal report_total journal_total));
  Sys.remove jpath

let test_aggregate_is_per_domain_sum () =
  with_metrics (fun () ->
      Metrics.incr Metrics.Cache_hits;
      Domain.join (Domain.spawn (fun () -> Metrics.incr Metrics.Cache_hits));
      Alcotest.(check bool) "aggregate = sum(per_domain)" true
        (Metrics.equal (Metrics.aggregate ()) (Metrics.sum (Metrics.per_domain ()))))

let suite =
  [
    Alcotest.test_case "spans: nested emission validates" `Quick test_span_file_valid;
    Alcotest.test_case "spans: exception-safe begin/end" `Quick test_span_exception_safety;
    Alcotest.test_case "spans: inactive is pure passthrough" `Quick
      test_span_inactive_is_passthrough;
    Alcotest.test_case "validator: rejects malformed traces" `Quick test_validator_rejects;
    Alcotest.test_case "metrics: counters, phases, histogram" `Quick test_counters_and_hist;
    Alcotest.test_case "metrics: disabled records nothing" `Quick test_disabled_records_nothing;
    Alcotest.test_case "metrics: pipeline covers all six phases" `Quick
      test_pipeline_metrics_cover_phases;
    Alcotest.test_case "metrics: off -> report.metrics = None" `Quick test_metrics_off_means_none;
    Alcotest.test_case "metrics: batch totals match journal snapshots" `Quick
      test_totals_match_journal;
    Alcotest.test_case "metrics: aggregate equals per-domain sum" `Quick
      test_aggregate_is_per_domain_sum;
  ]
