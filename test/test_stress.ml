(* Pool stress test under seeded fault injection, plus the two
   crash-vs-stall distinguishability paths of the watchdog's structured
   failure message.

   The stress case throws 64 tasks with randomly drawn behaviors
   (fast / always-crash / slow / stall) at a supervised pool and checks
   the full settlement contract: every task settles exactly once, each
   behavior lands on its expected outcome, the pool retry/stall counters
   come out exactly right, and the aggregated metrics equal the sum of
   the per-domain cells. *)

module Pool = Octo_util.Pool
module Rng = Octo_util.Rng
module Metrics = Octo_util.Metrics

exception Boom of int

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let with_metrics f =
  Metrics.enable ();
  Fun.protect ~finally:Metrics.disable f

type behavior = Fast | Crash | Slow | Stall

let grace = 0.1

(* A stalling task goes silent well past the grace, then dies — the raise
   always lands after the watchdog has superseded the attempt, so it must
   be discarded as stale, never counted as a crash-retry. *)
let perform i = function
  | Fast -> i * 2
  | Crash -> raise (Boom i)
  | Slow ->
      Unix.sleepf 0.01;
      i * 2
  | Stall ->
      Unix.sleepf (grace *. 5.);
      raise (Boom i)

let test_stress () =
  let n = 64 in
  let rng = Rng.create 0x57E55 in
  let behaviors =
    Array.init n (fun _ ->
        (* Mostly fast; enough faulty tasks to exercise every path without
           the stalls (2 worker-occupying attempts each) dominating wall
           time. *)
        match Rng.int rng 16 with
        | 0 | 1 -> Crash
        | 2 | 3 -> Slow
        | 4 -> Stall
        | _ -> Fast)
  in
  let count b = Array.fold_left (fun a x -> if x = b then a + 1 else a) 0 behaviors in
  let ncrash = count Crash and nstall = count Stall in
  if ncrash = 0 || nstall = 0 then Alcotest.fail "seed draws no faulty tasks; pick another";
  let settled = Array.make n 0 in
  let on_settle i _r = settled.(i) <- settled.(i) + 1 in
  with_metrics @@ fun () ->
  let m0 = Metrics.aggregate () in
  let results =
    Pool.parallel_map_result ~jobs:8 ~retries:1 ~stall_grace_s:grace ~on_settle
      (fun i -> perform i behaviors.(i))
      (List.init n Fun.id)
  in
  Alcotest.(check int) "one result per task" n (List.length results);
  Array.iteri
    (fun i c -> if c <> 1 then Alcotest.failf "task %d settled %d times" i c)
    settled;
  List.iteri
    (fun i r ->
      match (behaviors.(i), r) with
      | (Fast | Slow), Ok v -> Alcotest.(check int) "value" (i * 2) v
      | Crash, Error (Boom j, _) -> Alcotest.(check int) "crash keeps its exn" i j
      | Stall, Error (Pool.Stalled msg, _) ->
          if not (contains msg "no heartbeat") then
            Alcotest.failf "task %d: stall message %S" i msg
      | b, _ ->
          Alcotest.failf "task %d (%s): unexpected outcome" i
            (match b with Fast -> "fast" | Crash -> "crash" | Slow -> "slow" | Stall -> "stall"))
    results;
  let d = Metrics.diff (Metrics.aggregate ()) m0 in
  (* retries=1: each crasher burns its one retry on a counted crash, each
     staller on a watchdog requeue; the second stall then settles the task. *)
  Alcotest.(check int) "pool retries" (ncrash + nstall)
    (Metrics.counter_value d Metrics.Pool_retries);
  Alcotest.(check int) "pool stalls" nstall (Metrics.counter_value d Metrics.Pool_stalls);
  Alcotest.(check bool) "aggregate = sum of per-domain cells" true
    (Metrics.equal (Metrics.aggregate ()) (Metrics.sum (Metrics.per_domain ())))

(* Satellite fix, path 1: a task that only ever goes silent reports pure
   silence — no crash attribution. *)
let test_stall_message_pure () =
  match
    Pool.parallel_map_result ~jobs:2 ~retries:0 ~stall_grace_s:grace
      (fun () ->
        Unix.sleepf (grace *. 5.);
        failwith "late death")
      [ () ]
  with
  | [ Error (Pool.Stalled msg, _) ] ->
      Alcotest.(check bool) "mentions silence" true (contains msg "no heartbeat");
      Alcotest.(check bool) "no crash attribution" false (contains msg "crashed after")
  | _ -> Alcotest.fail "expected a single Stalled error"

(* Satellite fix, path 2: when an attempt crashes after stamping its
   heartbeat and the retry then stalls, the Stalled message attributes the
   earlier crash (with its exception) instead of reporting only silence —
   previously the two histories were indistinguishable. *)
let test_stall_message_after_crash () =
  let attempts = Atomic.make 0 in
  match
    Pool.parallel_map_result ~jobs:2 ~retries:1 ~stall_grace_s:grace
      (fun () ->
        if Atomic.fetch_and_add attempts 1 = 0 then failwith "first-attempt crash"
        else Unix.sleepf (grace *. 5.))
      [ () ]
  with
  | [ Error (Pool.Stalled msg, _) ] ->
      Alcotest.(check bool) "attributes the earlier crash" true
        (contains msg "1 earlier attempt(s) crashed after their heartbeat");
      Alcotest.(check bool) "names the exception" true (contains msg "first-attempt crash")
  | _ -> Alcotest.fail "expected a single Stalled error"

let suite =
  [
    Alcotest.test_case "64-task stress: seeded crash/stall/slow" `Slow test_stress;
    Alcotest.test_case "stall message: pure wedge" `Slow test_stall_message_pure;
    Alcotest.test_case "stall message: crash-then-stall attribution" `Slow
      test_stall_message_after_crash;
  ]
