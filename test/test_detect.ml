(* Clone-detection front-end tests: the normalization invariants the
   fingerprint promises (property tests over random MiniVM functions),
   the retrieve-cheap / validate-precise split (decoys retrieved but
   rejected), the strict/lenient directory-source contract, the golden
   scan report over the registry, and the differential check that a scan
   over the generated corpus rediscovers its own clone variants and
   verifies them to the annotated verdict classes.

   Golden regeneration (after an INTENTIONAL change, from the repo root):

     OCTOPOCS_REGEN_GOLDEN=$PWD/test/golden_table2.txt dune runtest --force

   (the env var names the Table II golden; every golden file — including
   [golden_scan_registry.txt] — is rewritten into its directory). *)

open Octo_vm.Isa
module Q = Qcheck_lite
module Detect = Octo_clone.Detect
module Scan = Octo_targets.Scan
module Source = Octo_targets.Source
module Corpus = Octo_targets.Corpus
module Rng = Octo_util.Rng

(* -- random MiniVM functions ------------------------------------------- *)

let nregs = 8

let gen_operand : operand Q.gen =
  Q.oneof
    [|
      Q.map (fun r -> Reg r) (Q.int_range 0 (nregs - 1));
      Q.map (fun i -> Imm i) (Q.int_range 0 300);
    |]

let gen_binop : binop Q.gen =
  Q.oneof [| Q.return Add; Q.return Sub; Q.return Mul; Q.return Xor; Q.return Shl |]

let gen_relop : relop Q.gen =
  Q.oneof
    [| Q.return Eq; Q.return Ne; Q.return Lt; Q.return Le; Q.return Gt; Q.return Ge |]

(* One instruction with jump targets valid for a [len]-instruction body. *)
let gen_instr ~len : instr Q.gen =
  let reg = Q.int_range 0 (nregs - 1) in
  let tgt = Q.int_range 0 (len - 1) in
  Q.oneof
    [|
      (fun rng -> Mov (reg rng, gen_operand rng));
      (fun rng -> Bin (gen_binop rng, reg rng, gen_operand rng, gen_operand rng));
      (fun rng -> Load8 (reg rng, gen_operand rng, gen_operand rng));
      (fun rng -> Store8 (gen_operand rng, gen_operand rng, gen_operand rng));
      (fun rng -> LoadW (reg rng, gen_operand rng, gen_operand rng));
      (fun rng -> StoreW (gen_operand rng, gen_operand rng, gen_operand rng));
      (fun rng -> Jmp (tgt rng));
      (fun rng -> Jif (gen_relop rng, gen_operand rng, gen_operand rng, tgt rng));
      (fun rng ->
        Call
          ( "h" ^ string_of_int (Q.int_range 0 3 rng),
            Q.list_of (Q.int_range 0 2) gen_operand rng,
            if Q.bool rng then Some (reg rng) else None ));
      (fun rng -> Ret (gen_operand rng));
      (fun rng -> Sys (Alloc (reg rng, gen_operand rng)));
      (fun rng -> Sys (Emit (gen_operand rng)));
      Q.return Halt;
    |]

let gen_func : func Q.gen =
 fun rng ->
  let nparams = Q.int_range 0 3 rng in
  let len = Q.int_range 1 24 rng in
  { fname = "f"; nparams; code = Array.init len (fun _ -> gen_instr ~len rng) }

(* A permutation of registers that fixes the parameter slots 0..n-1 and
   permutes only the non-parameter registers among themselves — the exact
   invariance [fingerprint_norm] claims.  (A permutation that moved a
   scratch register INTO a parameter slot would rightly change the
   canonical stream: parameter slots are pinned.) *)
let gen_nonparam_perm ~nparams : int array Q.gen =
 fun rng ->
  let perm = Array.init 32 (fun i -> i) in
  for i = 31 downto nparams + 1 do
    let j = nparams + Rng.int rng (i - nparams + 1) in
    let t = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- t
  done;
  perm

let map_syscall m mo = function
  | Open r -> Open (m r)
  | Read (d, fd, buf, len) -> Read (m d, mo fd, mo buf, mo len)
  | Seek (fd, p) -> Seek (mo fd, mo p)
  | Tell (d, fd) -> Tell (m d, mo fd)
  | Fsize (d, fd) -> Fsize (m d, mo fd)
  | Mmap (d, fd) -> Mmap (m d, mo fd)
  | Alloc (d, sz) -> Alloc (m d, mo sz)
  | Exit c -> Exit (mo c)
  | Emit v -> Emit (mo v)

(* Apply a register permutation and a callee-renaming to a function. *)
let rewrite ?(callee = fun n -> n) (perm : int array) (f : func) : func =
  let m r = perm.(r) in
  let mo = function Reg r -> Reg (m r) | o -> o in
  let mi = function
    | Mov (d, a) -> Mov (m d, mo a)
    | Bin (b, d, x, y) -> Bin (b, m d, mo x, mo y)
    | Load8 (d, b, o) -> Load8 (m d, mo b, mo o)
    | Store8 (b, o, v) -> Store8 (mo b, mo o, mo v)
    | LoadW (d, b, o) -> LoadW (m d, mo b, mo o)
    | StoreW (b, o, v) -> StoreW (mo b, mo o, mo v)
    | Jmp t -> Jmp t
    | Jif (r, a, b, t) -> Jif (r, mo a, mo b, t)
    | Call (n, args, d) -> Call (callee n, List.map mo args, Option.map m d)
    | Icall (fp, args, d) -> Icall (mo fp, List.map mo args, Option.map m d)
    | Ret v -> Ret (mo v)
    | Sys s -> Sys (map_syscall m mo s)
    | Halt -> Halt
  in
  { f with code = Array.map mi f.code }

(* A mutation guaranteed to change the instruction's opcode-shape token:
   every arm either changes the opcode, flips a binop/relop, or perturbs
   a concrete operand. *)
let bump = function Imm i -> Imm (i + 1) | Reg _ | Sym _ -> Imm 0

let mutate = function
  | Mov (d, a) -> Bin (Add, d, a, Imm 1)
  | Bin (b, d, x, y) -> Bin ((if b = Xor then Add else Xor), d, x, y)
  | Load8 (d, b, o) -> LoadW (d, b, o)
  | LoadW (d, b, o) -> Load8 (d, b, o)
  | Store8 (b, o, v) -> StoreW (b, o, v)
  | StoreW (b, o, v) -> Store8 (b, o, v)
  | Jmp t -> Jif (Eq, Imm 0, Imm 0, t)
  | Jif (r, a, b, t) -> Jif ((if r = Eq then Ne else Eq), a, b, t)
  | Call (n, args, d) -> Call (n, Imm 7 :: args, d)
  | Icall (f, args, d) -> Icall (f, Imm 7 :: args, d)
  | Ret v -> Sys (Exit v)
  | Sys (Exit v) -> Ret v
  | Sys (Open r) -> Sys (Tell (r, Imm 0))
  | Sys (Read (d, fd, buf, len)) -> Sys (Read (d, fd, buf, bump len))
  | Sys (Seek (fd, p)) -> Sys (Seek (fd, bump p))
  | Sys (Tell (d, fd)) -> Sys (Fsize (d, fd))
  | Sys (Fsize (d, fd)) -> Sys (Tell (d, fd))
  | Sys (Mmap (d, sz)) -> Sys (Alloc (d, sz))
  | Sys (Alloc (d, sz)) -> Sys (Mmap (d, sz))
  | Sys (Emit v) -> Sys (Emit (bump v))
  | Halt -> Ret (Imm 0)

(* -- properties -------------------------------------------------------- *)

(* Consistent renaming of non-parameter registers plus helper renaming
   changes neither the fingerprint nor the shingle set. *)
let prop_rename_invariant =
  Q.check_prop ~name:"rename invariance" ~seed:1101
    (fun rng ->
      let f = gen_func rng in
      (f, gen_nonparam_perm ~nparams:f.nparams rng))
    (fun (f, perm) ->
      let g = rewrite ~callee:(fun n -> n ^ "_renamed") perm f in
      Detect.fingerprint_norm f = Detect.fingerprint_norm g
      && Detect.ISet.equal (Detect.shingles ~k:4 ~w:4 f) (Detect.shingles ~k:4 ~w:4 g))

(* Function reordering and dead-function padding of a target program do
   not change what a query retrieves for the original functions: the hits
   on the original names carry identical scores in both indexes. *)
let prop_reorder_pad_invariant =
  Q.check_prop ~name:"reorder/pad invariance" ~seed:1102 ~count:100
    (fun rng ->
      let fs =
        List.init 3 (fun i -> { (gen_func rng) with fname = Printf.sprintf "f%d" i })
      in
      let pad =
        List.init
          (Q.int_range 1 3 rng)
          (fun i -> { (gen_func rng) with fname = Printf.sprintf "dead%d" i })
      in
      let probe = rewrite (gen_nonparam_perm ~nparams:(List.hd fs).nparams rng) (List.hd fs) in
      (fs, pad, probe))
    (fun (fs, pad, probe) ->
      let prog name funcs =
        let h = Hashtbl.create 8 in
        List.iter (fun f -> Hashtbl.replace h f.fname f) funcs;
        { pname = name; entry = "f0"; funcs = h; ftable = [||]; data = [] }
      in
      let ix_a = Detect.index_create Detect.default_params in
      Detect.index_add ix_a ~label:"t" (prog "a" fs);
      let ix_b = Detect.index_create Detect.default_params in
      Detect.index_add ix_b ~label:"t" (prog "b" (pad @ List.rev fs));
      let orig = List.map (fun f -> f.fname) fs in
      let on_orig hits =
        List.filter (fun (h : Detect.hit) -> List.mem h.h_func orig) hits
      in
      on_orig (Detect.query ix_a probe) = on_orig (Detect.query ix_b probe))

(* Any single opcode-level mutation changes the fingerprint.  (The issue
   asks for "high probability"; with concrete operands in the token
   stream the change is in fact certain, so the property is exact.) *)
let prop_mutation_changes =
  Q.check_prop ~name:"mutation sensitivity" ~seed:1103
    (fun rng ->
      let f = gen_func rng in
      (f, Q.int_range 0 (Array.length f.code - 1) rng))
    (fun (f, i) ->
      let code = Array.copy f.code in
      code.(i) <- mutate code.(i);
      Detect.fingerprint_norm f <> Detect.fingerprint_norm { f with code })

(* -- unit: containment & the decoy split -------------------------------- *)

let registry_scan () =
  let src = Source.registry () in
  let probes, targets = Scan.of_source src in
  let n_decoys = 3 in
  let targets = targets @ Scan.decoy_targets ~seed:7 ~count:n_decoys in
  Scan.run ~probes ~targets ~n_decoys ()

let test_containment () =
  let c = Octo_targets.Registry.find 1 in
  let f = func_exn c.s c.vuln_func in
  Alcotest.(check (float 1e-9)) "self-containment is 1" 1.0 (Detect.containment ~k:4 f f);
  (* The patched decoy (index 0 of seed 7 is kind [index mod 3]): its
     enlarged allocations must drop full-k-gram containment below the
     confirmation threshold even though retrieval still surfaces it. *)
  let dlabel, dprog = Corpus.decoy ~seed:7 ~index:0 in
  Alcotest.(check bool) "decoy label is stable" true
    (String.length dlabel > 0 && String.sub dlabel 0 1 = "d");
  Hashtbl.iter
    (fun _ df ->
      if df.nparams = f.nparams && Array.length df.code = Array.length f.code then
        Alcotest.(check bool)
          (Printf.sprintf "decoy %s/%s below tau_confirm" dlabel df.fname)
          true
          (Detect.containment ~k:4 f df < Detect.default_params.tau_confirm))
    dprog.funcs

let test_registry_scan () =
  let r = registry_scan () in
  Alcotest.(check int) "retrieved" 129 r.Scan.n_retrieved;
  Alcotest.(check int) "confirmed" 35 (List.length r.Scan.candidates);
  Alcotest.(check int) "rejected" 94 r.Scan.n_rejected;
  Alcotest.(check (float 1e-9)) "precision" 1.0 (Scan.precision r);
  Alcotest.(check (float 1e-9)) "recall" 1.0 (Scan.recall r);
  (* The decoys were indexed (they appear in the rejected count) but
     confirmed nothing: no candidate may name a decoy target. *)
  List.iter
    (fun (c : Detect.candidate) ->
      Alcotest.(check bool)
        (Printf.sprintf "candidate %s->%s is not a decoy" c.c_s_label c.c_t_label)
        false
        (String.length c.c_t_label > 0 && c.c_t_label.[0] = 'd'))
    r.Scan.candidates;
  (* Every diagonal candidate recovers a usable (ℓ, ep): ep ∈ ℓ. *)
  List.iter
    (fun (c : Detect.candidate) ->
      if c.c_s_label = c.c_t_label then begin
        Alcotest.(check bool)
          (Printf.sprintf "pair %s: ep in ell" c.c_s_label)
          true (List.mem c.c_ep c.c_ell);
        Alcotest.(check bool) (Printf.sprintf "pair %s: exact" c.c_s_label) true c.c_exact
      end)
    r.Scan.candidates

(* -- golden: the registry scan report ----------------------------------- *)

let scan_golden_file = "golden_scan_registry.txt"

let render_registry_scan () = Scan.render ~corpus_id:"registry" (registry_scan ())

let test_scan_golden () =
  let rendered = render_registry_scan () in
  match Sys.getenv_opt "OCTOPOCS_REGEN_GOLDEN" with
  | Some out when out <> "" ->
      let path = Filename.concat (Filename.dirname out) scan_golden_file in
      let oc = open_out_bin path in
      output_string oc rendered;
      close_out oc;
      Printf.printf "regenerated %s (%d bytes)\n" path (String.length rendered)
  | _ ->
      if not (Sys.file_exists scan_golden_file) then
        Alcotest.failf
          "%s missing — regenerate with OCTOPOCS_REGEN_GOLDEN=$PWD/test/golden_table2.txt \
           dune runtest --force"
          scan_golden_file;
      let ic = open_in_bin scan_golden_file in
      let want = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Alcotest.(check string) "registry scan report" want rendered

let test_scan_deterministic () =
  Alcotest.(check string) "scan render is byte-stable across runs" (render_registry_scan ())
    (render_registry_scan ())

(* -- strict vs lenient directory sources -------------------------------- *)

let with_corrupt_dir f =
  let dir = Filename.temp_file "octoscan" "" in
  Sys.remove dir;
  Source.write_dir ~dir ~seed:42 ~count:2;
  let bad = Filename.concat dir "zz-corrupt.pair" in
  let oc = open_out bad in
  output_string oc "this is not a manifest\n";
  close_out oc;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

let drain src =
  let rec go n = match Source.next src with None -> n | Some _ -> go (n + 1) in
  go 0

let test_directory_lenient () =
  with_corrupt_dir (fun dir ->
      Alcotest.(check int) "lenient: malformed manifest skipped, 2 pairs stream" 2
        (drain (Source.directory dir)))

let test_directory_strict () =
  with_corrupt_dir (fun dir ->
      let src = Source.directory ~strict:true dir in
      Alcotest.check_raises "strict: malformed manifest raises"
        (Source.Malformed_manifest (Filename.concat dir "zz-corrupt.pair"))
        (fun () -> ignore (drain src)))

(* -- differential: scan over gen:200:42 --------------------------------- *)

(* The scan must rediscover the generator's clone variants on the
   diagonal (recall >= 0.9 pinned by the issue; the detector currently
   achieves 1.0), and every rediscovered pair must verify to exactly the
   class the generator annotated — the same (S, T, poc) the scan's
   verification stage would run. *)
let test_differential_gen200 () =
  let src = Source.generated ~seed:42 ~count:200 () in
  let probes, targets = Scan.of_source src in
  let r = Scan.run ~probes ~targets ~n_decoys:0 () in
  Alcotest.(check (float 1e-9)) "overall precision" 1.0 (Scan.precision r);
  let diag_hit label =
    List.exists
      (fun (c : Detect.candidate) -> c.c_s_label = label && c.c_t_label = label)
      r.Scan.candidates
  in
  let pairs = List.init 200 (fun i -> Corpus.generate ~seed:42 ~index:i) in
  let clones = List.filter (fun g -> g.Corpus.gvariant = Corpus.Clone) pairs in
  let hit = List.length (List.filter (fun g -> diag_hit g.Corpus.glabel) clones) in
  let frac = float_of_int hit /. float_of_int (List.length clones) in
  if frac < 0.9 then
    Alcotest.failf "clone-variant diagonal recall %.3f < 0.9 (%d/%d)" frac hit
      (List.length clones);
  (* Verify one rediscovered pair per variant class and compare the
     verdict class with the generator's annotation. *)
  let sample =
    List.filter_map
      (fun variant ->
        List.find_opt
          (fun g -> g.Corpus.gvariant = variant && diag_hit g.Corpus.glabel)
          pairs)
      [ Corpus.Clone; Corpus.Guard; Corpus.Conflict; Corpus.Dead_ep ]
  in
  Alcotest.(check bool) "all four variants rediscovered" true (List.length sample = 4);
  List.iter
    (fun (g : Corpus.gen_pair) ->
      let rep = Octopocs.run ~s:g.Corpus.gs ~t:g.Corpus.gt ~poc:g.Corpus.gpoc () in
      Alcotest.(check string)
        (Printf.sprintf "%s verifies to its annotated class" g.Corpus.glabel)
        g.Corpus.gexpected
        (Octopocs.verdict_class rep.Octopocs.verdict))
    sample

let suite =
  [
    Alcotest.test_case "prop: rename invariance" `Quick prop_rename_invariant;
    Alcotest.test_case "prop: reorder/pad invariance" `Quick prop_reorder_pad_invariant;
    Alcotest.test_case "prop: mutation sensitivity" `Quick prop_mutation_changes;
    Alcotest.test_case "containment and decoy rejection" `Quick test_containment;
    Alcotest.test_case "registry scan: precision/recall" `Quick test_registry_scan;
    Alcotest.test_case "registry scan: golden report" `Quick test_scan_golden;
    Alcotest.test_case "registry scan: deterministic" `Quick test_scan_deterministic;
    Alcotest.test_case "directory source: lenient skips" `Quick test_directory_lenient;
    Alcotest.test_case "directory source: strict raises" `Quick test_directory_strict;
    Alcotest.test_case "differential: gen:200:42 rediscovery" `Slow test_differential_gen200;
  ]
