(* Property-based tests (Qcheck_lite over the repo's splitmix64 Rng) for
   the durable run layer:

   - the OPR1 verdict codec round-trips arbitrary reports exactly
     ([decode_result (encode_result r) = r] on the persisted fields), and
     is total on garbage;
   - the journal reader ([Journal.replay] / [Journal.parse]) never raises
     on corrupted files — random byte-flips and truncations of a valid
     journal always yield a valid prefix of the original records. *)

module Q = Qcheck_lite
module Journal = Octo_util.Journal
module Metrics = Octo_util.Metrics

(* -- generators -------------------------------------------------------- *)

let gen_label : string Q.gen = Q.map string_of_int (Q.int_range 0 99)
let gen_key : string Q.gen = Q.byte_string (Q.int_range 0 40)

(* Arbitrary binary strings, NULs and high bytes included: poc' bytes are
   raw model output and the codec must be binary-safe. *)
let gen_poc : string Q.gen = Q.byte_string (Q.int_range 0 64)

let gen_reason : Octopocs.not_triggerable_reason Q.gen =
  Q.oneof
    [|
      Q.return Octopocs.Ep_not_called;
      Q.return Octopocs.Program_dead;
      Q.return Octopocs.Unsat_model;
      Q.map (fun k -> Octopocs.Constraint_conflict k) (Q.int_range 0 1000);
    |]

let gen_verdict : Octopocs.verdict Q.gen =
  Q.frequency
    [
      ( 3,
        Q.map
          (fun (poc', b) ->
            Octopocs.Triggered
              { poc'; ptype = (if b then Octopocs.Type_I else Octopocs.Type_II) })
          (Q.pair gen_poc Q.bool) );
      (3, Q.map (fun r -> Octopocs.Not_triggerable r) gen_reason);
      (2, Q.map (fun m -> Octopocs.Failure m) (Q.byte_string (Q.int_range 0 80)));
    ]

let gen_degradations : string list Q.gen =
  Q.list_of (Q.int_range 0 3)
    (Q.oneof
       [|
         Q.return "dynamic-cfg"; Q.return "symex-escalate"; Q.return "sym-file-degrade";
       |])

let gen_metrics : Metrics.snapshot option Q.gen =
 fun rng ->
  if Q.bool rng then None
  else begin
    let s = Metrics.zero () in
    List.iter
      (fun c -> s.Metrics.counters.(Metrics.counter_index c) <- Q.int_range 0 100000 rng)
      Metrics.all_counters;
    List.iter
      (fun p ->
        let i = Metrics.phase_index p in
        s.Metrics.phase_count.(i) <- Q.int_range 0 50 rng;
        s.Metrics.phase_ns.(i) <- Q.int_range 0 1_000_000 rng)
      Metrics.all_phases;
    Some s
  end

let gen_report : Octopocs.report Q.gen =
 fun rng ->
  let verdict = gen_verdict rng in
  let ep = Q.byte_string (Q.int_range 0 12) rng in
  let ell = Q.list_of (Q.int_range 0 4) (Q.byte_string (Q.int_range 1 10)) rng in
  let degradations = gen_degradations rng in
  let elapsed_s = float_of_int (Q.int_range 0 10_000 rng) /. 1000. in
  let metrics = gen_metrics rng in
  {
    (Octopocs.failure_report "") with
    verdict;
    ep;
    ell;
    degradations;
    elapsed_s;
    metrics;
  }

let gen_labelled_report : (string * string * Octopocs.report) Q.gen =
 fun rng -> (gen_label rng, gen_key rng, gen_report rng)

(* -- codec round-trip -------------------------------------------------- *)

let verdict_eq a b =
  match (a, b) with
  | Octopocs.Triggered x, Octopocs.Triggered y -> x.poc' = y.poc' && x.ptype = y.ptype
  | Octopocs.Not_triggerable x, Octopocs.Not_triggerable y -> x = y
  | Octopocs.Failure x, Octopocs.Failure y -> x = y
  | _ -> false

let metrics_eq a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> Metrics.equal x y
  | _ -> false

let roundtrip_ok (label, key, (r : Octopocs.report)) =
  match Octopocs.decode_result (Octopocs.encode_result ~label ~key r) with
  | None ->
      Printf.eprintf
        "roundtrip: decode_result returned None (label=%S key_len=%d verdict=%s ell=%d \
         degr=%d metrics=%b)\n\
         %!"
        label (String.length key)
        (match r.verdict with
        | Octopocs.Triggered _ -> "T"
        | Octopocs.Not_triggerable (Octopocs.Constraint_conflict k) ->
            Printf.sprintf "Nc(%d)" k
        | Octopocs.Not_triggerable _ -> "N"
        | Octopocs.Failure _ -> "F")
        (List.length r.ell)
        (List.length r.degradations)
        (r.metrics <> None);
      false
  | Some (label', key', r') ->
      let checks =
        [
          ("label", label' = label);
          ("key", key' = key);
          ("verdict", verdict_eq r'.verdict r.verdict);
          ("ep", r'.ep = r.ep);
          ("ell", r'.ell = r.ell);
          ("degradations", r'.degradations = r.degradations);
          ("elapsed_s", r'.elapsed_s = r.elapsed_s);
          ("metrics", metrics_eq r'.metrics r.metrics);
        ]
      in
      List.iter
        (fun (f, ok) -> if not ok then Printf.eprintf "roundtrip: field %s differs\n%!" f)
        checks;
      List.for_all snd checks

(* decode_result must be total: arbitrary bytes are Some _ or None, never
   an escaped exception.  (Records that happen to parse are fine — the
   property is totality, not rejection.) *)
let decode_total s =
  match Octopocs.decode_result s with Some _ | None -> true

(* Flipping any single byte of a valid encoding must not crash the
   decoder.  (It MAY still decode: a flip inside poc' bytes or a label is
   not detectable by the codec itself — record integrity is the journal
   CRC's job, exercised below.) *)
let flip_safe ((label, key, r), (pos_frac, newbyte)) =
  let enc = Octopocs.encode_result ~label ~key r in
  if String.length enc = 0 then true
  else begin
    let pos = pos_frac mod String.length enc in
    let b = Bytes.of_string enc in
    Bytes.set b pos (Char.chr newbyte);
    decode_total (Bytes.to_string b)
  end

(* Truncating a valid encoding anywhere must decode to None (every field
   is length-prefixed, so a shorter record is always detectably short) —
   and, above all, must not raise. *)
let truncate_none ((label, key, r), cut_frac) =
  let enc = Octopocs.encode_result ~label ~key r in
  let n = String.length enc in
  if n = 0 then true
  else begin
    let cut = cut_frac mod n in
    match Octopocs.decode_result (String.sub enc 0 cut) with
    | Some _ -> false
    | None -> true
  end

(* -- journal corruption ------------------------------------------------ *)

(* Build a valid journal of the given payloads on disk, return its path.
   Callers corrupt the bytes afterwards. *)
let write_journal payloads =
  let path = Filename.temp_file "octoprop" ".jrnl" in
  Sys.remove path;
  let w = Journal.create ~fsync:false ~path () in
  List.iter (Journal.append w) payloads;
  Journal.close w;
  path

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let is_prefix_of shorter longer =
  let rec go a b =
    match (a, b) with
    | [], _ -> true
    | _, [] -> false
    | x :: xs, y :: ys -> x = y && go xs ys
  in
  go shorter longer

(* The central robustness property of the durable layer: ANY byte flip in
   a valid journal leaves [replay] returning a valid prefix (CRC framing
   detects the damaged record and everything after it is dropped; damage
   in record k never corrupts records before k), and never raises. *)
let corrupt_prop ((payloads, flips) : string list * (int * int) list) =
  let path = write_journal payloads in
  let ok =
    try
      let orig = (Journal.replay path).records in
      let data = Bytes.of_string (read_file path) in
      List.iter
        (fun (pos_frac, newbyte) ->
          if Bytes.length data > 0 then
            Bytes.set data (pos_frac mod Bytes.length data) (Char.chr newbyte))
        flips;
      write_file path (Bytes.to_string data);
      let r = Journal.replay path in
      is_prefix_of r.records orig
    with e ->
      Sys.remove path;
      raise e
  in
  Sys.remove path;
  ok

(* Same property for truncation at every possible length: the reader
   must degrade to a valid prefix, bit-for-bit, with the torn flag set
   whenever anything was actually lost mid-record. *)
let truncate_prop ((payloads, cut_frac) : string list * int) =
  let path = write_journal payloads in
  let ok =
    try
      let orig = (Journal.replay path).records in
      let data = read_file path in
      let cut = if String.length data = 0 then 0 else cut_frac mod (String.length data + 1) in
      write_file path (String.sub data 0 cut);
      let r = Journal.replay path in
      is_prefix_of r.records orig
    with e ->
      Sys.remove path;
      raise e
  in
  Sys.remove path;
  ok

(* -- suite ------------------------------------------------------------- *)

let gen_payloads : string list Q.gen =
  Q.list_of (Q.int_range 0 6)
    (Q.map
       (fun (label, key, r) -> Octopocs.encode_result ~label ~key r)
       gen_labelled_report)

let gen_flips : (int * int) list Q.gen =
  Q.list_of (Q.int_range 1 4) (Q.pair (Q.int_range 0 1_000_000) (Q.int_range 0 255))

let suite =
  [
    Q.test_case "codec: random reports round-trip exactly" ~seed:0xC0DEC ~count:300
      gen_labelled_report roundtrip_ok;
    Q.test_case "codec: decode is total on random bytes" ~seed:0xBAD ~count:300
      (Q.byte_string (Q.int_range 0 200))
      decode_total;
    Q.test_case "codec: single byte-flips never crash the decoder" ~seed:0xF11B ~count:300
      (Q.pair gen_labelled_report (Q.pair (Q.int_range 0 1_000_000) (Q.int_range 0 255)))
      flip_safe;
    Q.test_case "codec: truncations decode to None, never raise" ~seed:0x7C ~count:300
      (Q.pair gen_labelled_report (Q.int_range 0 1_000_000))
      truncate_none;
    Q.test_case "journal: random byte-flips -> replay returns a valid prefix" ~seed:0x10F1
      ~count:60
      (Q.pair gen_payloads gen_flips)
      corrupt_prop;
    Q.test_case "journal: random truncations -> replay returns a valid prefix" ~seed:0x7210
      ~count:60
      (Q.pair gen_payloads (Q.int_range 0 1_000_000))
      truncate_prop;
  ]
