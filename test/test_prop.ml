(* Property-based tests (Qcheck_lite over the repo's splitmix64 Rng) for
   the durable run layer:

   - the OPR1 verdict codec round-trips arbitrary reports exactly
     ([decode_result (encode_result r) = r] on the persisted fields), and
     is total on garbage;
   - the journal reader ([Journal.replay] / [Journal.parse]) never raises
     on corrupted files — random byte-flips and truncations of a valid
     journal always yield a valid prefix of the original records. *)

module Q = Qcheck_lite
module Journal = Octo_util.Journal
module Metrics = Octo_util.Metrics
module Prov = Octopocs.Provenance

(* -- generators -------------------------------------------------------- *)

let gen_label : string Q.gen = Q.map string_of_int (Q.int_range 0 99)
let gen_key : string Q.gen = Q.byte_string (Q.int_range 0 40)

(* Arbitrary binary strings, NULs and high bytes included: poc' bytes are
   raw model output and the codec must be binary-safe. *)
let gen_poc : string Q.gen = Q.byte_string (Q.int_range 0 64)

let gen_reason : Octopocs.not_triggerable_reason Q.gen =
  Q.oneof
    [|
      Q.return Octopocs.Ep_not_called;
      Q.return Octopocs.Program_dead;
      Q.return Octopocs.Unsat_model;
      Q.map (fun k -> Octopocs.Constraint_conflict k) (Q.int_range 0 1000);
    |]

let gen_verdict : Octopocs.verdict Q.gen =
  Q.frequency
    [
      ( 3,
        Q.map
          (fun (poc', b) ->
            Octopocs.Triggered
              { poc'; ptype = (if b then Octopocs.Type_I else Octopocs.Type_II) })
          (Q.pair gen_poc Q.bool) );
      (3, Q.map (fun r -> Octopocs.Not_triggerable r) gen_reason);
      (2, Q.map (fun m -> Octopocs.Failure m) (Q.byte_string (Q.int_range 0 80)));
    ]

let gen_degradations : string list Q.gen =
  Q.list_of (Q.int_range 0 3)
    (Q.oneof
       [|
         Q.return "dynamic-cfg"; Q.return "symex-escalate"; Q.return "sym-file-degrade";
       |])

let gen_metrics : Metrics.snapshot option Q.gen =
 fun rng ->
  if Q.bool rng then None
  else begin
    let s = Metrics.zero () in
    List.iter
      (fun c -> s.Metrics.counters.(Metrics.counter_index c) <- Q.int_range 0 100000 rng)
      Metrics.all_counters;
    List.iter
      (fun p ->
        let i = Metrics.phase_index p in
        s.Metrics.phase_count.(i) <- Q.int_range 0 50 rng;
        s.Metrics.phase_ns.(i) <- Q.int_range 0 1_000_000 rng)
      Metrics.all_phases;
    Some s
  end

(* Provenance generators: every event constructor, binary-safe strings
   (condition renderings and failure messages are raw text in real logs,
   but the codec must survive arbitrary bytes). *)

let gen_fname : string Q.gen = Q.byte_string (Q.int_range 1 10)

let gen_origin : Prov.origin Q.gen =
  Q.oneof
    [|
      (fun rng ->
        let bunch = Q.int_range 1 9 rng in
        let off = Q.int_range 0 500 rng in
        Prov.Bunch_byte { bunch; off; value = Q.int_range 0 255 rng });
      (fun rng ->
        let bunch = Q.int_range 1 9 rng in
        let arg = Q.int_range 0 7 rng in
        Prov.Replayed_arg { bunch; arg; value = Q.int_range (-1000) 1000 rng });
      Q.return Prov.Path_constraint;
    |]

let gen_core_entry : Prov.core_entry Q.gen =
 fun rng ->
  let origin = gen_origin rng in
  { Prov.origin; cond = Q.byte_string (Q.int_range 0 20) rng }

let gen_event : Prov.event Q.gen =
  Q.oneof
    [|
      (fun rng ->
        let seq = Q.int_range 1 9 rng in
        let anchor = Q.int_range 0 100 rng in
        let ranges =
          Q.list_of (Q.int_range 0 4) (Q.pair (Q.int_range 0 100) (Q.int_range 0 100)) rng
        in
        let tainted_args = Q.list_of (Q.int_range 0 4) (Q.int_range 0 7) rng in
        Prov.Taint_bunch
          { seq; anchor; ranges; tainted_args; sites = Q.list_of (Q.int_range 0 3) gen_fname rng });
      (fun rng ->
        let func = gen_fname rng in
        let pc = Q.int_range 0 999 rng in
        Prov.Branch_forced { func; pc; preferred_taken = Q.bool rng });
      (fun rng ->
        let func = gen_fname rng in
        let pc = Q.int_range 0 999 rng in
        let granted = Q.int_range 1 200 rng in
        Prov.Loop_retry { func; pc; granted; theta = Q.int_range 1 200 rng });
      (fun rng ->
        let func = gen_fname rng in
        Prov.Path_pruned { func; pc = Q.int_range 0 999 rng });
      (fun rng ->
        let seq = Q.int_range 1 9 rng in
        let file_pos = Q.int_range 0 100 rng in
        let nbytes = Q.int_range 0 64 rng in
        Prov.Bunch_pinned { seq; file_pos; nbytes; args_replayed = Q.int_range 0 8 rng });
      (fun rng ->
        let seq = Q.int_range 1 9 rng in
        Prov.Conflict { seq; core = Q.list_of (Q.int_range 0 5) gen_core_entry rng });
      (fun rng ->
        let func = gen_fname rng in
        let pc = Q.int_range 0 999 rng in
        let fault = Q.byte_string (Q.int_range 0 24) rng in
        Prov.Crash_site { func; pc; fault; in_ell = Q.bool rng });
      (fun rng ->
        let rung = gen_fname rng in
        Prov.Rung { rung; failure = Q.byte_string (Q.int_range 0 30) rng });
    |]

let gen_prov : Prov.t Q.gen =
 fun rng ->
  let events = Q.list_of (Q.int_range 0 12) gen_event rng in
  { Prov.events; dropped = Q.int_range 0 5 rng }

let gen_provenance : Prov.t option Q.gen =
 fun rng -> if Q.bool rng then None else Some (gen_prov rng)

let gen_report : Octopocs.report Q.gen =
 fun rng ->
  let verdict = gen_verdict rng in
  let ep = Q.byte_string (Q.int_range 0 12) rng in
  let ell = Q.list_of (Q.int_range 0 4) (Q.byte_string (Q.int_range 1 10)) rng in
  let degradations = gen_degradations rng in
  let elapsed_s = float_of_int (Q.int_range 0 10_000 rng) /. 1000. in
  let metrics = gen_metrics rng in
  let provenance = gen_provenance rng in
  {
    (Octopocs.failure_report "") with
    verdict;
    ep;
    ell;
    degradations;
    elapsed_s;
    metrics;
    provenance;
  }

let gen_labelled_report : (string * string * Octopocs.report) Q.gen =
 fun rng -> (gen_label rng, gen_key rng, gen_report rng)

(* -- codec round-trip -------------------------------------------------- *)

let verdict_eq a b =
  match (a, b) with
  | Octopocs.Triggered x, Octopocs.Triggered y -> x.poc' = y.poc' && x.ptype = y.ptype
  | Octopocs.Not_triggerable x, Octopocs.Not_triggerable y -> x = y
  | Octopocs.Failure x, Octopocs.Failure y -> x = y
  | _ -> false

let metrics_eq a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> Metrics.equal x y
  | _ -> false

let roundtrip_ok (label, key, (r : Octopocs.report)) =
  match Octopocs.decode_result (Octopocs.encode_result ~label ~key r) with
  | None ->
      Printf.eprintf
        "roundtrip: decode_result returned None (label=%S key_len=%d verdict=%s ell=%d \
         degr=%d metrics=%b)\n\
         %!"
        label (String.length key)
        (match r.verdict with
        | Octopocs.Triggered _ -> "T"
        | Octopocs.Not_triggerable (Octopocs.Constraint_conflict k) ->
            Printf.sprintf "Nc(%d)" k
        | Octopocs.Not_triggerable _ -> "N"
        | Octopocs.Failure _ -> "F")
        (List.length r.ell)
        (List.length r.degradations)
        (r.metrics <> None);
      false
  | Some (label', key', r') ->
      let checks =
        [
          ("label", label' = label);
          ("key", key' = key);
          ("verdict", verdict_eq r'.verdict r.verdict);
          ("ep", r'.ep = r.ep);
          ("ell", r'.ell = r.ell);
          ("degradations", r'.degradations = r.degradations);
          ("elapsed_s", r'.elapsed_s = r.elapsed_s);
          ("metrics", metrics_eq r'.metrics r.metrics);
          (* events are plain immutable data, structural equality is exact *)
          ("provenance", r'.provenance = r.provenance);
        ]
      in
      List.iter
        (fun (f, ok) -> if not ok then Printf.eprintf "roundtrip: field %s differs\n%!" f)
        checks;
      List.for_all snd checks

(* decode_result must be total: arbitrary bytes are Some _ or None, never
   an escaped exception.  (Records that happen to parse are fine — the
   property is totality, not rejection.) *)
let decode_total s =
  match Octopocs.decode_result s with Some _ | None -> true

(* Flipping any single byte of a valid encoding must not crash the
   decoder.  (It MAY still decode: a flip inside poc' bytes or a label is
   not detectable by the codec itself — record integrity is the journal
   CRC's job, exercised below.) *)
let flip_safe ((label, key, r), (pos_frac, newbyte)) =
  let enc = Octopocs.encode_result ~label ~key r in
  if String.length enc = 0 then true
  else begin
    let pos = pos_frac mod String.length enc in
    let b = Bytes.of_string enc in
    Bytes.set b pos (Char.chr newbyte);
    decode_total (Bytes.to_string b)
  end

(* Truncating a valid encoding anywhere must decode to None (every field
   is length-prefixed, so a shorter record is always detectably short) —
   and, above all, must not raise. *)
let truncate_none ((label, key, r), cut_frac) =
  let enc = Octopocs.encode_result ~label ~key r in
  let n = String.length enc in
  if n = 0 then true
  else begin
    let cut = cut_frac mod n in
    match Octopocs.decode_result (String.sub enc 0 cut) with
    | Some _ -> false
    | None -> true
  end

(* -- provenance codec -------------------------------------------------- *)

let prov_roundtrip_ok p = Prov.decode (Prov.encode p) = Some p
let prov_decode_total s = match Prov.decode s with Some _ | None -> true

let prov_flip_safe (p, (pos_frac, newbyte)) =
  let enc = Prov.encode p in
  if String.length enc = 0 then true
  else begin
    let b = Bytes.of_string enc in
    Bytes.set b (pos_frac mod String.length enc) (Char.chr newbyte);
    prov_decode_total (Bytes.to_string b)
  end

(* The provenance decoder consumes the exact layout its prefixes promise
   and rejects records that end early or late, so every strict truncation
   is detectably short. *)
let prov_truncate_none (p, cut_frac) =
  let enc = Prov.encode p in
  let cut = cut_frac mod String.length enc in
  match Prov.decode (String.sub enc 0 cut) with Some _ -> false | None -> true

(* -- OPR2 legacy compatibility ----------------------------------------- *)

(* Byte-faithful replica of the pre-provenance (OPR2) encoder: same fields
   as OPR3 but metrics presence inferred from end-of-record and no
   provenance tail.  Guards the decoder's promise that journals written
   before the bump replay and resume unchanged. *)

let put_str b s =
  let l = Bytes.create 4 in
  Bytes.set_int32_le l 0 (Int32.of_int (String.length s));
  Buffer.add_bytes b l;
  Buffer.add_string b s

let put_int b i =
  let l = Bytes.create 8 in
  Bytes.set_int64_le l 0 (Int64.of_int i);
  Buffer.add_bytes b l

let put_str_list b xs =
  put_int b (List.length xs);
  List.iter (put_str b) xs

let put_int_array b a =
  put_int b (Array.length a);
  Array.iter (put_int b) a

let encode_result_opr2 ~label ~key (r : Octopocs.report) =
  let b = Buffer.create 256 in
  Buffer.add_string b "OPR2";
  put_str b label;
  put_str b key;
  put_str b r.ep;
  put_str_list b r.ell;
  (match r.verdict with
  | Octopocs.Triggered { poc'; ptype } ->
      Buffer.add_char b 'T';
      Buffer.add_char b (match ptype with Octopocs.Type_I -> '1' | Octopocs.Type_II -> '2');
      put_str b poc'
  | Octopocs.Not_triggerable reason ->
      Buffer.add_char b 'N';
      (match reason with
      | Octopocs.Ep_not_called -> Buffer.add_char b 'e'
      | Octopocs.Program_dead -> Buffer.add_char b 'd'
      | Octopocs.Unsat_model -> Buffer.add_char b 'u'
      | Octopocs.Constraint_conflict k ->
          Buffer.add_char b 'c';
          put_str b (string_of_int k))
  | Octopocs.Failure msg ->
      Buffer.add_char b 'F';
      put_str b msg);
  put_str_list b r.degradations;
  put_str b (Int64.to_string (Int64.bits_of_float r.elapsed_s));
  (match r.metrics with
  | None -> ()
  | Some (m : Metrics.snapshot) ->
      put_int_array b m.Metrics.counters;
      put_int_array b m.Metrics.phase_count;
      put_int_array b m.Metrics.phase_ns;
      put_int_array b m.Metrics.phase_hist);
  Buffer.contents b

let legacy_decodes_ok (label, key, (r : Octopocs.report)) =
  match Octopocs.decode_result (encode_result_opr2 ~label ~key r) with
  | None -> false
  | Some (label', key', r') ->
      label' = label && key' = key
      && verdict_eq r'.verdict r.verdict
      && r'.ep = r.ep && r'.ell = r.ell
      && r'.degradations = r.degradations
      && r'.elapsed_s = r.elapsed_s
      && metrics_eq r'.metrics r.metrics
      && r'.provenance = None

(* -- journal corruption ------------------------------------------------ *)

(* Build a valid journal of the given payloads on disk, return its path.
   Callers corrupt the bytes afterwards. *)
let write_journal payloads =
  let path = Filename.temp_file "octoprop" ".jrnl" in
  Sys.remove path;
  let w = Journal.create ~fsync:false ~path () in
  List.iter (Journal.append w) payloads;
  Journal.close w;
  path

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let is_prefix_of shorter longer =
  let rec go a b =
    match (a, b) with
    | [], _ -> true
    | _, [] -> false
    | x :: xs, y :: ys -> x = y && go xs ys
  in
  go shorter longer

(* The central robustness property of the durable layer: ANY byte flip in
   a valid journal leaves [replay] returning a valid prefix (CRC framing
   detects the damaged record and everything after it is dropped; damage
   in record k never corrupts records before k), and never raises. *)
let corrupt_prop ((payloads, flips) : string list * (int * int) list) =
  let path = write_journal payloads in
  let ok =
    try
      let orig = (Journal.replay path).records in
      let data = Bytes.of_string (read_file path) in
      List.iter
        (fun (pos_frac, newbyte) ->
          if Bytes.length data > 0 then
            Bytes.set data (pos_frac mod Bytes.length data) (Char.chr newbyte))
        flips;
      write_file path (Bytes.to_string data);
      let r = Journal.replay path in
      is_prefix_of r.records orig
    with e ->
      Sys.remove path;
      raise e
  in
  Sys.remove path;
  ok

(* Same property for truncation at every possible length: the reader
   must degrade to a valid prefix, bit-for-bit, with the torn flag set
   whenever anything was actually lost mid-record. *)
let truncate_prop ((payloads, cut_frac) : string list * int) =
  let path = write_journal payloads in
  let ok =
    try
      let orig = (Journal.replay path).records in
      let data = read_file path in
      let cut = if String.length data = 0 then 0 else cut_frac mod (String.length data + 1) in
      write_file path (String.sub data 0 cut);
      let r = Journal.replay path in
      is_prefix_of r.records orig
    with e ->
      Sys.remove path;
      raise e
  in
  Sys.remove path;
  ok

(* -- suite ------------------------------------------------------------- *)

let gen_payloads : string list Q.gen =
  Q.list_of (Q.int_range 0 6)
    (Q.map
       (fun (label, key, r) -> Octopocs.encode_result ~label ~key r)
       gen_labelled_report)

let gen_flips : (int * int) list Q.gen =
  Q.list_of (Q.int_range 1 4) (Q.pair (Q.int_range 0 1_000_000) (Q.int_range 0 255))

(* -- Pool.backoff_delay ------------------------------------------------- *)

module Pool = Octo_util.Pool

(* Mirror of the documented envelope midpoint: exponential in the
   attempt, clamped to [1, 16] doublings, capped at [cap_s]. *)
let backoff_mid ~base_s ~cap_s attempt =
  let a = max 1 (min attempt 16) in
  Float.min cap_s (base_s *. Float.of_int (1 lsl (a - 1)))

let gen_bkey : int Q.gen = Q.int_range 0 1_000_000
let gen_attempt : int Q.gen = Q.int_range (-3) 40

let backoff_deterministic (key, attempt) =
  let d1 = Pool.backoff_delay ~key ~attempt () in
  let d2 = Pool.backoff_delay ~key ~attempt () in
  Float.equal d1 d2

let backoff_envelope (key, attempt) =
  let d = Pool.backoff_delay ~key ~attempt () in
  let mid = backoff_mid ~base_s:0.002 ~cap_s:0.100 attempt in
  d >= 0.5 *. mid && d < 1.5 *. mid

let backoff_envelope_monotone_capped key =
  (* The jitter-free midpoint never shrinks as attempts mount and never
     exceeds the cap; past 16 doublings it is pinned at the cap. *)
  let ok = ref true in
  for attempt = 1 to 39 do
    let m = backoff_mid ~base_s:0.002 ~cap_s:0.100 attempt in
    let m' = backoff_mid ~base_s:0.002 ~cap_s:0.100 (attempt + 1) in
    if m' < m || m' > 0.100 then ok := false;
    ignore (Pool.backoff_delay ~key ~attempt ())
  done;
  !ok && Float.equal (backoff_mid ~base_s:0.002 ~cap_s:0.100 40) 0.100

let backoff_keys_decorrelated (k1, k2) =
  (* Distinct labels must not share a jitter stream: over attempts 1..8
     at least one delay differs (the deterministic per-(key, attempt)
     jitter makes collisions across all eight vanishingly unlikely). *)
  k1 = k2
  || List.exists
       (fun attempt ->
         not
           (Float.equal
              (Pool.backoff_delay ~key:k1 ~attempt ())
              (Pool.backoff_delay ~key:k2 ~attempt ())))
       [ 1; 2; 3; 4; 5; 6; 7; 8 ]

(* -- OTL1 telemetry codec ----------------------------------------------- *)

module Telemetry = Octo_util.Telemetry

(* Samples with and without an attached metrics snapshot; histogram
   buckets populated too (gen_metrics leaves them zero, and the OTL1
   frame persists all of them). *)
let gen_sample : Telemetry.sample Q.gen =
 fun rng ->
  let i lo hi = Q.int_range lo hi rng in
  let metrics =
    match gen_metrics rng with
    | None -> None
    | Some s ->
        for k = 0 to Array.length s.Metrics.phase_hist - 1 do
          s.Metrics.phase_hist.(k) <- Q.int_range 0 50 rng
        done;
        Some s
  in
  {
    Telemetry.ts_ns = i 0 1_000_000_000;
    pulled = i 0 100000;
    settled = i 0 100000;
    quarantined = i 0 1000;
    in_flight = i 0 64;
    window = i 0 64;
    retries = i 0 1000;
    stalls = i 0 1000;
    backoffs = i 0 1000;
    deferrals = i 0 1000;
    rss_kb = i 0 10_000_000;
    child_rss_kb = i 0 10_000_000;
    minor_words = i 0 1_000_000_000;
    major_words = i 0 1_000_000_000;
    metrics;
  }

let otl_roundtrip_ok s = Telemetry.decode_sample (Telemetry.encode_sample s) = Some s

let otl_decode_total bytes =
  match Telemetry.decode_sample bytes with Some _ | None -> true

let otl_flip_safe (s, (pos_frac, newbyte)) =
  let enc = Bytes.of_string (Telemetry.encode_sample s) in
  if Bytes.length enc = 0 then true
  else begin
    Bytes.set enc (pos_frac mod Bytes.length enc) (Char.chr newbyte);
    match Telemetry.decode_sample (Bytes.to_string enc) with Some _ | None -> true
  end

let otl_truncate_none (s, cut_frac) =
  let enc = Telemetry.encode_sample s in
  let cut = cut_frac mod (String.length enc + 1) in
  if cut = String.length enc then true
  else Telemetry.decode_sample (String.sub enc 0 cut) = None

let suite =
  [
    Q.test_case "codec: random reports round-trip exactly" ~seed:0xC0DEC ~count:300
      gen_labelled_report roundtrip_ok;
    Q.test_case "codec: decode is total on random bytes" ~seed:0xBAD ~count:300
      (Q.byte_string (Q.int_range 0 200))
      decode_total;
    Q.test_case "codec: single byte-flips never crash the decoder" ~seed:0xF11B ~count:300
      (Q.pair gen_labelled_report (Q.pair (Q.int_range 0 1_000_000) (Q.int_range 0 255)))
      flip_safe;
    Q.test_case "codec: truncations decode to None, never raise" ~seed:0x7C ~count:300
      (Q.pair gen_labelled_report (Q.int_range 0 1_000_000))
      truncate_none;
    Q.test_case "codec: hand-built OPR2 records decode with provenance=None" ~seed:0x0972
      ~count:300 gen_labelled_report legacy_decodes_ok;
    Q.test_case "provenance: random logs round-trip exactly" ~seed:0x940C ~count:300
      gen_prov prov_roundtrip_ok;
    Q.test_case "provenance: decode is total on random bytes" ~seed:0x94BAD ~count:300
      (Q.byte_string (Q.int_range 0 200))
      prov_decode_total;
    Q.test_case "provenance: single byte-flips never crash the decoder" ~seed:0x94F1
      ~count:300
      (Q.pair gen_prov (Q.pair (Q.int_range 0 1_000_000) (Q.int_range 0 255)))
      prov_flip_safe;
    Q.test_case "provenance: truncations decode to None, never raise" ~seed:0x947C
      ~count:300
      (Q.pair gen_prov (Q.int_range 0 1_000_000))
      prov_truncate_none;
    Q.test_case "journal: random byte-flips -> replay returns a valid prefix" ~seed:0x10F1
      ~count:60
      (Q.pair gen_payloads gen_flips)
      corrupt_prop;
    Q.test_case "journal: random truncations -> replay returns a valid prefix" ~seed:0x7210
      ~count:60
      (Q.pair gen_payloads (Q.int_range 0 1_000_000))
      truncate_prop;
    Q.test_case "backoff: same key and attempt replay the exact delay" ~seed:0xBAC0
      ~count:300 (Q.pair gen_bkey gen_attempt) backoff_deterministic;
    Q.test_case "backoff: jitter stays inside the [0.5d, 1.5d) envelope" ~seed:0xBAC1
      ~count:300 (Q.pair gen_bkey gen_attempt) backoff_envelope;
    Q.test_case "backoff: envelope midpoint is monotone and capped" ~seed:0xBAC2
      ~count:100 gen_bkey backoff_envelope_monotone_capped;
    Q.test_case "backoff: distinct keys draw decorrelated jitter streams" ~seed:0xBAC3
      ~count:300 (Q.pair gen_bkey gen_bkey) backoff_keys_decorrelated;
    Q.test_case "telemetry: random samples round-trip exactly" ~seed:0x071A ~count:300
      gen_sample otl_roundtrip_ok;
    Q.test_case "telemetry: decode is total on random bytes" ~seed:0x071B ~count:300
      (Q.byte_string (Q.int_range 0 200))
      otl_decode_total;
    Q.test_case "telemetry: single byte-flips never crash the decoder" ~seed:0x071C
      ~count:300
      (Q.pair gen_sample (Q.pair (Q.int_range 0 1_000_000) (Q.int_range 0 255)))
      otl_flip_safe;
    Q.test_case "telemetry: truncations decode to None, never raise" ~seed:0x071D
      ~count:300
      (Q.pair gen_sample (Q.int_range 0 1_000_000))
      otl_truncate_none;
  ]
