(* Tests for the robustness layer: monotonic deadlines, the degradation
   ladder, crash-isolated batch verification and deterministic fault
   injection. *)

module Deadline = Octo_util.Deadline
module Faultinject = Octo_util.Faultinject
module Pool = Octo_util.Pool
module Registry = Octo_targets.Registry
module Directed = Octo_symex.Directed

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* Deadlines *)

let deadline_none_never_expires () =
  check Alcotest.bool "none is none" true (Deadline.is_none Deadline.none);
  check Alcotest.bool "none not expired" false (Deadline.expired Deadline.none);
  Deadline.check Deadline.none ~what:"anything"

let deadline_zero_expires_immediately () =
  let d = Deadline.after ~seconds:0.0 in
  check Alcotest.bool "expired" true (Deadline.expired d);
  match Deadline.check d ~what:"phase" with
  | () -> Alcotest.fail "expected Deadline_exceeded"
  | exception Deadline.Deadline_exceeded what -> check Alcotest.string "what" "phase" what

let deadline_future_not_expired () =
  let d = Deadline.after ~seconds:3600.0 in
  check Alcotest.bool "not expired" false (Deadline.expired d);
  check Alcotest.bool "remaining positive" true (Deadline.remaining_s d > 3500.0);
  Deadline.check d ~what:"fine"

let deadline_negative_rejected () =
  match Deadline.after ~seconds:(-1.0) with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let deadline_clock_is_monotonic () =
  let a = Deadline.monotonic_ns () in
  let b = Deadline.monotonic_ns () in
  check Alcotest.bool "non-decreasing" true (Int64.compare b a >= 0)

let pipeline_deadline_zero_is_failure () =
  (* An already-expired deadline must surface as a structured Failure, not
     as an escaped exception, and must not be "rescued" by the ladder
     (there is no budget left to climb with). *)
  let c = Registry.find 1 in
  let config = { Octopocs.default_config with deadline_s = Some 0.0 } in
  let r = Octopocs.run ~config ~s:c.s ~t:c.t ~poc:c.poc () in
  (match r.verdict with
  | Octopocs.Failure msg ->
      check Alcotest.bool "deadline message" true
        (String.length msg >= 17 && String.sub msg 0 17 = "deadline exceeded")
  | v -> Alcotest.failf "expected Failure, got %s" (Octopocs.verdict_class v));
  check Alcotest.(list string) "no rungs climbed" [] r.degradations

(* ------------------------------------------------------------------ *)
(* Degradation ladder *)

(* gif2png (pair 9) needs exactly 32 loop iterations, hence ~33 loop-retry
   runs: max_runs = 8 exhausts the budget, and the first ladder rung
   (max_runs x8 = 64) rescues it. *)
let starved_config =
  {
    Octopocs.default_config with
    symex = { Directed.default_config with max_runs = 8 };
  }

let ladder_off_reports_budget_failure () =
  let c = Registry.find 9 in
  let config = { starved_config with ladder = false } in
  let r = Octopocs.run ~config ~s:c.s ~t:c.t ~poc:c.poc () in
  match r.verdict with
  | Octopocs.Failure msg ->
      check Alcotest.string "budget failure" "symbolic execution budget exhausted: loop retries"
        msg
  | v -> Alcotest.failf "expected Failure, got %s" (Octopocs.verdict_class v)

let ladder_rescues_budget_exhaustion () =
  let c = Registry.find 9 in
  let r = Octopocs.run ~config:starved_config ~s:c.s ~t:c.t ~poc:c.poc () in
  (match r.verdict with
  | Octopocs.Triggered { ptype = Octopocs.Type_II; _ } -> ()
  | v -> Alcotest.failf "expected Type-II, got %s" (Octopocs.verdict_class v));
  check Alcotest.(list string) "one rung climbed" [ "symex-escalate" ] r.degradations

let ladder_total_failure_preserves_original () =
  (* max_steps = 5 fails on every rung (x4 escalation is still far too
     small); the report must carry the FIRST attempt's failure verbatim,
     with the tried rungs recorded. *)
  let c = Registry.find 9 in
  let tiny = { Directed.default_config with max_steps = 5 } in
  let off =
    Octopocs.run
      ~config:{ Octopocs.default_config with symex = tiny; ladder = false }
      ~s:c.s ~t:c.t ~poc:c.poc ()
  in
  let on =
    Octopocs.run
      ~config:{ Octopocs.default_config with symex = tiny }
      ~s:c.s ~t:c.t ~poc:c.poc ()
  in
  let msg = function
    | Octopocs.Failure m -> m
    | v -> Alcotest.failf "expected Failure, got %s" (Octopocs.verdict_class v)
  in
  check Alcotest.string "original failure string verbatim" (msg off.verdict) (msg on.verdict);
  check Alcotest.(list string) "both rungs tried"
    [ "symex-escalate"; "sym-file-degrade" ]
    on.degradations

let ladder_rungs_escalate () =
  let rungs = Octopocs.ladder_rungs Octopocs.default_config in
  check Alcotest.(list string) "rung names"
    [ "symex-escalate"; "sym-file-degrade" ]
    (List.map fst rungs);
  let sx = Octopocs.default_config.symex in
  List.iter
    (fun (_, (cfg : Octopocs.config)) ->
      check Alcotest.bool "theta escalated" true (cfg.symex.theta > sx.theta);
      check Alcotest.bool "max_runs escalated" true (cfg.symex.max_runs > sx.max_runs))
    rungs;
  let _, degraded = List.nth rungs 1 in
  check Alcotest.bool "file degraded" true
    (degraded.sym_file_size < Octopocs.default_config.sym_file_size)

let ladder_shares_one_deadline () =
  (* The deadline budget is shared across the whole ladder: a retried rung
     runs on whatever clock is left, never a fresh one.  Rung 1's attempt
     burns the entire budget and fails rescuably; rung 2 must then never be
     attempted, and the ORIGINAL failure stands with only the attempted
     rung recorded. *)
  let deadline = Deadline.after ~seconds:0.05 in
  let r0 = Octopocs.failure_report "symbolic execution budget exhausted: loop retries" in
  let attempts = ref 0 in
  let attempt _cfg =
    incr attempts;
    while not (Deadline.expired deadline) do
      ignore (Sys.opaque_identity (Deadline.remaining_s deadline))
    done;
    Octopocs.failure_report "constraint solver budget exhausted"
  in
  let rungs = Octopocs.ladder_rungs Octopocs.default_config in
  check Alcotest.int "two rungs exist" 2 (List.length rungs);
  let r = Octopocs.climb_ladder ~deadline ~attempt r0 rungs in
  check Alcotest.int "rung 2 never attempted" 1 !attempts;
  (match r.verdict with
  | Octopocs.Failure msg ->
      check Alcotest.string "original failure verbatim"
        "symbolic execution budget exhausted: loop retries" msg
  | v -> Alcotest.failf "expected Failure, got %s" (Octopocs.verdict_class v));
  check Alcotest.(list string) "only the attempted rung recorded" [ "symex-escalate" ]
    r.degradations

let ladder_expired_before_first_rung () =
  (* Expiry before any rung: the climb is a no-op — no attempts, no rungs
     recorded, r0 untouched. *)
  let deadline = Deadline.after ~seconds:0.0 in
  let r0 = Octopocs.failure_report "deadline exceeded: taint analysis" in
  let attempts = ref 0 in
  let attempt _cfg =
    incr attempts;
    r0
  in
  let r =
    Octopocs.climb_ladder ~deadline ~attempt r0 (Octopocs.ladder_rungs Octopocs.default_config)
  in
  check Alcotest.int "no rung attempted" 0 !attempts;
  check Alcotest.(list string) "no rungs recorded" [] r.degradations

let ladder_rescue_mid_climb_keeps_clock () =
  (* A healthy deadline: rung 1 succeeds, and the success report carries
     the climbed rung. *)
  let deadline = Deadline.after ~seconds:60.0 in
  let r0 = Octopocs.failure_report "constraint solver budget exhausted" in
  let attempt _cfg =
    {
      (Octopocs.failure_report "unused") with
      verdict = Octopocs.Triggered { poc' = "x"; ptype = Octopocs.Type_I };
    }
  in
  let r =
    Octopocs.climb_ladder ~deadline ~attempt r0 (Octopocs.ladder_rungs Octopocs.default_config)
  in
  (match r.verdict with
  | Octopocs.Triggered _ -> ()
  | v -> Alcotest.failf "expected Triggered, got %s" (Octopocs.verdict_class v));
  check Alcotest.(list string) "rescuing rung recorded" [ "symex-escalate" ] r.degradations

let pipeline_tiny_deadline_expires_mid_run () =
  (* End-to-end: a not-quite-zero deadline expires at the first cooperative
     check inside the pipeline; run must contain it as a structured Failure
     with no ladder climb (the expired clock is shared, so every rung is
     stillborn). *)
  let c = Registry.find 1 in
  let config = { Octopocs.default_config with deadline_s = Some 1e-9 } in
  let r = Octopocs.run ~config ~s:c.s ~t:c.t ~poc:c.poc () in
  (match r.verdict with
  | Octopocs.Failure msg ->
      check Alcotest.bool "deadline message" true
        (String.length msg >= 17 && String.sub msg 0 17 = "deadline exceeded")
  | v -> Alcotest.failf "expected Failure, got %s" (Octopocs.verdict_class v));
  check Alcotest.(list string) "no rungs climbed" [] r.degradations

let rescuable_classification () =
  List.iter
    (fun m -> check Alcotest.bool m true (Octopocs.rescuable_failure m))
    [
      "symbolic execution budget exhausted: loop retries";
      "deadline exceeded: solver model search";
      "constraint solver budget exhausted";
    ];
  List.iter
    (fun m -> check Alcotest.bool m false (Octopocs.rescuable_failure m))
    [
      "CFG recovery failed: unresolvable indirect call at main@23";
      "poc does not crash S";
      "generated poc' did not reproduce the crash in T";
      "worker crashed: Stack_overflow";
    ]

(* ------------------------------------------------------------------ *)
(* Crash-isolated pool *)

let map_result_isolates_crashes () =
  let items = List.init 10 (fun i -> i) in
  let f i = if i mod 2 = 0 then failwith (string_of_int i) else i * 10 in
  let out = Pool.parallel_map_result ~jobs:4 f items in
  check Alcotest.int "all items settled" 10 (List.length out);
  List.iteri
    (fun i r ->
      match r with
      | Ok v -> check Alcotest.int (Printf.sprintf "item %d ok" i) (i * 10) v
      | Error (Failure m, _) -> check Alcotest.string (Printf.sprintf "item %d err" i) (string_of_int i) m
      | Error (e, _) -> Alcotest.failf "item %d: unexpected %s" i (Printexc.to_string e))
    out

let map_still_raises_first_error () =
  (* The raising API keeps its contract on top of map_result. *)
  let p = Pool.create ~jobs:2 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown p)
    (fun () ->
      match Pool.map p (fun i -> if i >= 2 then failwith (string_of_int i) else i) [ 0; 1; 2; 3 ] with
      | exception Failure m -> check Alcotest.string "first error in input order" "2" m
      | _ -> Alcotest.fail "expected Failure")

let retry_absorbs_transient_fault () =
  (* jobs:1 takes the serial path, so a plain ref is race-free. *)
  let attempts = ref 0 in
  let flaky () =
    incr attempts;
    if !attempts = 1 then failwith "transient" else !attempts
  in
  (match Pool.parallel_map_result ~jobs:1 ~retries:1 (fun () -> flaky ()) [ () ] with
  | [ Ok 2 ] -> ()
  | _ -> Alcotest.fail "expected rescue on second attempt");
  attempts := 0;
  match Pool.parallel_map_result ~jobs:1 ~retries:0 (fun () -> flaky ()) [ () ] with
  | [ Error (Failure m, _) ] -> check Alcotest.string "original error kept" "transient" m
  | _ -> Alcotest.fail "expected Error without retries"

let submit_shutdown_race () =
  (* A submit racing shutdown must either run the task or raise
     Invalid_argument — never hang, never drop a task silently.  Every
     accepted task must have executed once shutdown + join complete. *)
  let p = Pool.create ~jobs:2 in
  let executed = Atomic.make 0 in
  let submitter =
    Domain.spawn (fun () ->
        let accepted = ref 0 and rejected = ref 0 in
        for _ = 1 to 2000 do
          match Pool.submit p (fun () -> Atomic.incr executed) with
          | () -> incr accepted
          | exception Invalid_argument _ -> incr rejected
        done;
        (!accepted, !rejected))
  in
  (* Let some tasks land first so both outcomes are plausible, but never
     block on it (the submitter may finish before we look). *)
  let spins = ref 0 in
  while Atomic.get executed = 0 && !spins < 10_000_000 do
    incr spins;
    Domain.cpu_relax ()
  done;
  Pool.shutdown p;
  let accepted, rejected = Domain.join submitter in
  check Alcotest.int "every submit settled" 2000 (accepted + rejected);
  check Alcotest.int "accepted = executed" accepted (Atomic.get executed)

let future_settles_value_and_error () =
  let p = Pool.create ~jobs:2 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown p)
    (fun () ->
      let a = Pool.future p (fun () -> 6 * 7) in
      let b = Pool.future p (fun () -> failwith "boom") in
      (match Pool.await p a with
      | Ok 42 -> ()
      | Ok v -> Alcotest.failf "expected 42, got %d" v
      | Error (e, _) -> Alcotest.failf "unexpected error: %s" (Printexc.to_string e));
      match Pool.await p b with
      | Error (Failure m, _) -> check Alcotest.string "error carried to await" "boom" m
      | _ -> Alcotest.fail "expected the task's exception at await")

let await_helps_nested_fanout () =
  (* Futures spawned from inside a pool task and awaited there must not
     deadlock even with a single worker: the awaiting domain pops and runs
     queued tasks itself while it waits. *)
  let p = Pool.create ~jobs:1 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown p)
    (fun () ->
      let outer =
        Pool.future p (fun () ->
            let inner = List.init 8 (fun i -> Pool.future p (fun () -> i * i)) in
            List.fold_left
              (fun acc f ->
                match Pool.await p f with Ok v -> acc + v | Error (e, _) -> raise e)
              0 inner)
      in
      match Pool.await p outer with
      | Ok v -> check Alcotest.int "nested fan-out sum" 140 v
      | Error (e, _) -> Alcotest.failf "unexpected: %s" (Printexc.to_string e))

let shared_pool_is_memoized () =
  let a = Pool.shared () and b = Pool.shared () in
  check Alcotest.bool "one process-global pool" true (a == b)

(* ------------------------------------------------------------------ *)
(* Batch crash isolation (the acceptance scenario) *)

let run_all_isolates_crash_and_deadline () =
  (* 15 jobs: pair 3 gets an already-expired deadline, pair 5 a forced
     synthetic worker crash.  The batch must return all 15 labelled reports
     in order — the two sabotaged pairs as Failure, the rest unchanged. *)
  let batch =
    List.map
      (fun (c : Registry.case) ->
        let config =
          if c.idx = 3 then Some { Octopocs.default_config with deadline_s = Some 0.0 }
          else if c.idx = 5 then
            Some
              {
                Octopocs.default_config with
                inject =
                  Faultinject.create ~rate:0.0
                    ~site_rates:[ (Faultinject.Worker_crash, 1.0) ]
                    ~seed:7 ();
              }
          else None
        in
        Octopocs.job ?config ~label:(string_of_int c.idx) ~s:c.s ~t:c.t ~poc:c.poc ())
      Registry.all
  in
  let results = Octopocs.run_all ~jobs:2 batch in
  check Alcotest.int "all reports returned" (List.length Registry.all) (List.length results);
  List.iter2
    (fun (c : Registry.case) (label, (r : Octopocs.report)) ->
      check Alcotest.string "label order" (string_of_int c.idx) label;
      let cls = Octopocs.verdict_class r.verdict in
      match c.idx with
      | 3 -> (
          match r.verdict with
          | Octopocs.Failure msg ->
              check Alcotest.bool "pair 3 deadline failure" true
                (String.length msg >= 17 && String.sub msg 0 17 = "deadline exceeded")
          | v -> Alcotest.failf "pair 3: expected Failure, got %s" (Octopocs.verdict_class v))
      | 5 -> (
          match r.verdict with
          | Octopocs.Failure msg ->
              check Alcotest.bool "pair 5 worker-crash failure" true
                (String.length msg >= 14 && String.sub msg 0 14 = "worker crashed")
          | v -> Alcotest.failf "pair 5: expected Failure, got %s" (Octopocs.verdict_class v))
      | _ ->
          check Alcotest.string
            (Printf.sprintf "pair %d unchanged" c.idx)
            (Registry.expected_to_string c.expected)
            cls)
    Registry.all results

let run_all_retry_rescues_transient_crash () =
  (* Worker_crash at rate 0.5: the first draw of seed 11's stream fires,
     the retry's second draw does not — so retries:0 records a crash and
     retries:1 rescues the job.  (The pair of draws is a deterministic
     property of the seed; the assertion below locks it in.) *)
  let c = Registry.find 1 in
  let mk () =
    {
      Octopocs.default_config with
      inject =
        Faultinject.create ~rate:0.0
          ~site_rates:[ (Faultinject.Worker_crash, 0.5) ]
          ~seed:11 ();
    }
  in
  (let i = Faultinject.create ~rate:0.0 ~site_rates:[ (Faultinject.Worker_crash, 0.5) ] ~seed:11 () in
   let first = Faultinject.fire i Faultinject.Worker_crash in
   let second = Faultinject.fire i Faultinject.Worker_crash in
   check Alcotest.(pair bool bool) "seed 11 draw pattern" (true, false) (first, second));
  let job config = [ Octopocs.job ~config ~label:"1" ~s:c.s ~t:c.t ~poc:c.poc () ] in
  (match Octopocs.run_all ~retries:0 (job (mk ())) with
  | [ (_, { verdict = Octopocs.Failure _; _ }) ] -> ()
  | _ -> Alcotest.fail "expected worker-crash Failure without retries");
  match Octopocs.run_all ~retries:1 (job (mk ())) with
  | [ (_, r) ] ->
      check Alcotest.string "rescued by retry" (Registry.expected_to_string c.expected)
        (Octopocs.verdict_class r.verdict)
  | _ -> Alcotest.fail "expected one report"

(* ------------------------------------------------------------------ *)
(* Fault injection *)

let injection_deterministic () =
  let draws seed =
    let t = Faultinject.create ~rate:0.5 ~seed () in
    List.concat_map
      (fun site -> List.init 64 (fun _ -> Faultinject.fire t site))
      Faultinject.all_sites
  in
  check Alcotest.(list bool) "same seed, same schedule" (draws 42) (draws 42);
  check Alcotest.bool "different seed, different schedule" false (draws 42 = draws 43)

let injection_sites_independent () =
  (* Draining one site's stream must not perturb another's. *)
  let a = Faultinject.create ~rate:0.5 ~seed:5 () in
  let b = Faultinject.create ~rate:0.5 ~seed:5 () in
  for _ = 1 to 100 do
    ignore (Faultinject.fire a Faultinject.Vm_syscall)
  done;
  let seq t = List.init 32 (fun _ -> Faultinject.fire t Faultinject.Solver_budget) in
  check Alcotest.(list bool) "solver stream unperturbed" (seq b) (seq a)

let injection_off_is_silent () =
  check Alcotest.bool "Off never fires" false (Faultinject.fire Faultinject.none Faultinject.Vm_syscall);
  Faultinject.maybe_raise Faultinject.none Faultinject.Worker_crash ~what:"x";
  let zero = Faultinject.create ~rate:0.0 ~seed:1 () in
  for _ = 1 to 100 do
    check Alcotest.bool "rate 0 never fires" false (Faultinject.fire zero Faultinject.Deadline_expiry)
  done

let forced_solver_starvation_is_rescuable () =
  (* Solver_budget at rate 1.0 starves every attempt including the ladder
     rungs: the original failure must come back verbatim with both rungs
     recorded. *)
  let c = Registry.find 1 in
  let config =
    {
      Octopocs.default_config with
      inject =
        Faultinject.create ~rate:0.0 ~site_rates:[ (Faultinject.Solver_budget, 1.0) ] ~seed:3 ();
    }
  in
  let r = Octopocs.run ~config ~s:c.s ~t:c.t ~poc:c.poc () in
  (match r.verdict with
  | Octopocs.Failure msg ->
      check Alcotest.string "starved solver" "constraint solver budget exhausted" msg
  | v -> Alcotest.failf "expected Failure, got %s" (Octopocs.verdict_class v));
  check Alcotest.(list string) "both rungs tried"
    [ "symex-escalate"; "sym-file-degrade" ]
    r.degradations

let injected_deadline_contained () =
  (* Deadline_expiry at rate 1.0 fires at the first phase boundary; run
     must contain it as a Failure (the ladder retries but every rung hits
     the same injected expiry). *)
  let c = Registry.find 1 in
  let config =
    {
      Octopocs.default_config with
      inject =
        Faultinject.create ~rate:0.0 ~site_rates:[ (Faultinject.Deadline_expiry, 1.0) ] ~seed:3 ();
    }
  in
  match (Octopocs.run ~config ~s:c.s ~t:c.t ~poc:c.poc ()).verdict with
  | Octopocs.Failure msg ->
      check Alcotest.bool "deadline message" true
        (String.length msg >= 17 && String.sub msg 0 17 = "deadline exceeded")
  | v -> Alcotest.failf "expected Failure, got %s" (Octopocs.verdict_class v)

let chaos_schedule_deterministic () =
  (* A miniature of bench's chaos mode: one seeded 5-pair schedule, run
     twice on fresh injectors, must produce identical labelled verdicts.
     The seed is env-overridable so CI can sweep it. *)
  let seed =
    match Sys.getenv_opt "OCTOPOCS_CHAOS_SEED" with
    | Some s -> ( try int_of_string s with _ -> 42)
    | None -> 42
  in
  let cases = List.filteri (fun i _ -> i < 5) Registry.all in
  let snapshot () =
    let batch =
      List.map
        (fun (c : Registry.case) ->
          let inject =
            Faultinject.create ~rate:0.0
              ~site_rates:
                [
                  (Faultinject.Solver_budget, 0.05);
                  (Faultinject.Worker_crash, 0.05);
                  (Faultinject.Deadline_expiry, 0.02);
                ]
              ~seed:(seed lxor (c.idx * 0x9E3779B9)) ()
          in
          let config = { Octopocs.default_config with inject } in
          Octopocs.job ~config ~label:(string_of_int c.idx) ~s:c.s ~t:c.t ~poc:c.poc ())
        cases
    in
    Octopocs.run_all ~jobs:2 ~retries:1 batch
    |> List.map (fun (label, (r : Octopocs.report)) ->
           (label, Octopocs.verdict_class r.verdict, r.degradations))
  in
  let a = snapshot () in
  check Alcotest.int "all reports" 5 (List.length a);
  check Alcotest.bool "replay identical" true (a = snapshot ())

let qcheck_tests =
  [
    QCheck.Test.make ~name:"fault schedules are a pure function of the seed" ~count:50
      QCheck.(small_int)
      (fun seed ->
        let draws () =
          let t = Faultinject.create ~rate:0.5 ~seed () in
          List.concat_map
            (fun site -> List.init 20 (fun _ -> Faultinject.fire t site))
            Faultinject.all_sites
        in
        draws () = draws ());
  ]

let suite =
  [
    tc "deadline: none never expires" deadline_none_never_expires;
    tc "deadline: zero budget expires immediately" deadline_zero_expires_immediately;
    tc "deadline: future budget holds" deadline_future_not_expired;
    tc "deadline: negative budget rejected" deadline_negative_rejected;
    tc "deadline: clock is monotonic" deadline_clock_is_monotonic;
    tc "pipeline: expired deadline is a structured Failure" pipeline_deadline_zero_is_failure;
    tc "ladder: off reports budget failure" ladder_off_reports_budget_failure;
    tc "ladder: rescues budget exhaustion" ladder_rescues_budget_exhaustion;
    tc "ladder: total failure preserves original verbatim" ladder_total_failure_preserves_original;
    tc "ladder: rungs escalate then degrade" ladder_rungs_escalate;
    tc "ladder: one deadline shared across rungs" ladder_shares_one_deadline;
    tc "ladder: expired clock means zero attempts" ladder_expired_before_first_rung;
    tc "ladder: mid-climb rescue records its rung" ladder_rescue_mid_climb_keeps_clock;
    tc "pipeline: tiny deadline expires mid-run, structured" pipeline_tiny_deadline_expires_mid_run;
    tc "ladder: rescuable failure classification" rescuable_classification;
    tc "pool: map_result isolates crashes" map_result_isolates_crashes;
    tc "pool: map raises first error in input order" map_still_raises_first_error;
    tc "pool: retry absorbs a transient fault" retry_absorbs_transient_fault;
    tc "pool: submit/shutdown race settles every submit" submit_shutdown_race;
    tc "pool: futures settle values and errors" future_settles_value_and_error;
    tc "pool: await helps nested fan-out on one worker" await_helps_nested_fanout;
    tc "pool: shared pool is memoized" shared_pool_is_memoized;
    tc "batch: crash + deadline isolated, 15 labelled reports" run_all_isolates_crash_and_deadline;
    tc "batch: retry rescues a transient worker crash" run_all_retry_rescues_transient_crash;
    tc "inject: deterministic per seed" injection_deterministic;
    tc "inject: per-site streams independent" injection_sites_independent;
    tc "inject: off and rate-0 are silent" injection_off_is_silent;
    tc "inject: forced solver starvation, ladder exhausted" forced_solver_starvation_is_rescuable;
    tc "inject: injected deadline contained" injected_deadline_contained;
    tc "chaos: seeded schedule replays identically" chaos_schedule_deterministic;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests
