(* Tests for the symbolic executor: stepping, branch events, concretization,
   directed execution with loop-state retries, and the naive baseline. *)

open Octo_vm.Isa
open Octo_vm.Asm
module Expr = Octo_solver.Expr
module Solve = Octo_solver.Solve
module Sym_state = Octo_symex.Sym_state
module Directed = Octo_symex.Directed
module Naive = Octo_symex.Naive
module Cfg = Octo_cfg.Cfg
module Registry = Octo_targets.Registry

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let rec drive st n =
  if n = 0 then Alcotest.fail "step budget in test driver"
  else
    match Sym_state.step st with
    | Sym_state.Running -> drive st (n - 1)
    | ev -> ev

(* ------------------------------------------------------------------ *)
(* Stepping basics *)

let concrete_branches_followed () =
  let p =
    assemble ~name:"t" ~entry:"main"
      [
        fn "main" ~params:0
          [
            I (Mov (1, Imm 5));
            I (Jif (Lt, Reg 1, Imm 10, "a"));
            I (Sys (Exit (Imm 1)));
            L "a";
            I (Sys (Exit (Imm 0)));
          ];
      ]
  in
  let st = Sym_state.create p ~ep:"none_needed" in
  match drive st 100 with
  | Sym_state.Finished 0 -> ()
  | _ -> Alcotest.fail "expected clean finish through concrete branch"

let symbolic_branch_reported () =
  let p =
    assemble ~name:"t" ~entry:"main"
      [
        fn "main" ~params:0
          ([
             I (Sys (Open 1));
             I (Sys (Alloc (2, Imm 4)));
             I (Sys (Read (3, Reg 1, Reg 2, Imm 1)));
             I (Load8 (4, Reg 2, Imm 0));
             I (Jif (Eq, Reg 4, Imm 0x41, "a"));
             I (Sys (Exit (Imm 1)));
             L "a";
             I (Sys (Exit (Imm 0)));
           ]);
      ]
  in
  let st = Sym_state.create p ~ep:"x" in
  match drive st 100 with
  | Sym_state.Branch_choice br ->
      check Alcotest.bool "not a loop" false br.br_is_loop;
      check Alcotest.bool "taken commits constraint" true
        (Sym_state.take_branch st br ~taken:true);
      (* After committing, byte 0 is pinned to 0x41. *)
      check (Alcotest.pair Alcotest.int Alcotest.int) "pinned" (0x41, 0x41)
        (Solve.dom st.store 0);
      (match drive st 100 with
      | Sym_state.Finished 0 -> ()
      | _ -> Alcotest.fail "expected exit 0 after branch")
  | _ -> Alcotest.fail "expected branch choice"

let branch_unsat_direction_rejected () =
  let p =
    assemble ~name:"t" ~entry:"main"
      [
        fn "main" ~params:0
          [
            I (Sys (Open 1));
            I (Sys (Alloc (2, Imm 4)));
            I (Sys (Read (3, Reg 1, Reg 2, Imm 1)));
            I (Load8 (4, Reg 2, Imm 0));
            I (Jif (Gt, Reg 4, Imm 300, "a"));  (* a byte can never exceed 300 *)
            I (Sys (Exit (Imm 0)));
            L "a";
            I (Sys (Exit (Imm 1)));
          ];
      ]
  in
  let st = Sym_state.create p ~ep:"x" in
  (* The branch is decided by intervals: never taken, no choice event. *)
  match drive st 100 with
  | Sym_state.Finished 0 -> ()
  | _ -> Alcotest.fail "interval reasoning should decide the branch"

let ep_entry_event () =
  let p =
    assemble ~name:"t" ~entry:"main"
      [
        fn "main" ~params:0 [ I (Call ("epf", [ Imm 9 ], None)); I Halt ];
        fn "epf" ~params:1 [ I (Ret (Imm 0)) ];
      ]
  in
  let st = Sym_state.create p ~ep:"epf" in
  match drive st 100 with
  | Sym_state.Entered_ep { count; args; file_pos } ->
      check Alcotest.int "first entry" 1 count;
      check Alcotest.int "no file yet" 0 file_pos;
      (match args with
      | [ Expr.Const 9 ] -> ()
      | _ -> Alcotest.fail "expected const arg")
  | _ -> Alcotest.fail "expected ep event"

let symbolic_memory_from_file () =
  let p =
    assemble ~name:"t" ~entry:"main"
      [
        fn "main" ~params:0
          [
            I (Sys (Open 1));
            I (Sys (Alloc (2, Imm 4)));
            I (Sys (Read (3, Reg 1, Reg 2, Imm 1)));
            I (Load8 (4, Reg 2, Imm 0));
            I Halt;
          ];
      ]
  in
  let st = Sym_state.create p ~ep:"x" in
  (match drive st 100 with Sym_state.Finished _ -> () | _ -> Alcotest.fail "finish");
  let fr = Sym_state.current st in
  match fr.regs.(4) with
  | Expr.Byte 0 -> ()
  | e -> Alcotest.failf "expected Byte 0, got %a" Expr.pp e

let clone_isolates_state () =
  let p =
    assemble ~name:"t" ~entry:"main" [ fn "main" ~params:0 [ I (Mov (1, Imm 1)); I Halt ] ]
  in
  let st = Sym_state.create p ~ep:"x" in
  let st2 = Sym_state.clone st in
  ignore (Sym_state.step st);
  let fr = Sym_state.current st and fr2 = Sym_state.current st2 in
  check Alcotest.bool "clone unaffected" true (fr.regs.(1) <> fr2.regs.(1) || fr.pc <> fr2.pc)

(* ------------------------------------------------------------------ *)
(* Directed execution on the real targets *)

let stop_at_first _st ~count:_ ~args:_ ~file_pos:_ = Directed.Stop

let directed_reaches_every_triggerable_t () =
  List.iter
    (fun idx ->
      let c = Registry.find idx in
      let cfg = Cfg.build c.t ~ep:c.vuln_func in
      match Directed.run c.t ~ep:c.vuln_func ~cfg ~on_ep:stop_at_first with
      | Directed.Reached _, _ -> ()
      | Directed.Failed f, _ ->
          Alcotest.failf "pair %d: directed failed: %a" idx Directed.pp_failure f)
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9 ]

let directed_loop_retries_on_gif () =
  let c = Registry.find 9 in
  let cfg = Cfg.build c.t ~ep:c.vuln_func in
  match Directed.run c.t ~ep:c.vuln_func ~cfg ~on_ep:stop_at_first with
  | Directed.Reached _, stats ->
      (* The palette checksum pins the loop to 32 iterations. *)
      check Alcotest.bool "needed loop retries" true (stats.loop_retries >= 32)
  | Directed.Failed f, _ -> Alcotest.failf "failed: %a" Directed.pp_failure f

let directed_no_retries_on_simple () =
  let c = Registry.find 1 in
  let cfg = Cfg.build c.t ~ep:c.vuln_func in
  match Directed.run c.t ~ep:c.vuln_func ~cfg ~on_ep:stop_at_first with
  | Directed.Reached _, stats -> check Alcotest.int "no retries" 0 stats.loop_retries
  | Directed.Failed f, _ -> Alcotest.failf "failed: %a" Directed.pp_failure f

let directed_program_dead_on_contradiction () =
  let c = Registry.find 12 in
  let cfg = Cfg.build c.t ~ep:c.vuln_func in
  match Directed.run c.t ~ep:c.vuln_func ~cfg ~on_ep:stop_at_first with
  | Directed.Failed Directed.Program_dead, _ -> ()
  | Directed.Reached _, _ -> Alcotest.fail "libgdiplus ep should be unreachable"
  | Directed.Failed f, _ -> Alcotest.failf "wrong failure: %a" Directed.pp_failure f

let directed_theta_bounds_retries () =
  (* With θ = 4, the 32-iteration gif palette loop must give up. *)
  let c = Registry.find 9 in
  let cfg = Cfg.build c.t ~ep:c.vuln_func in
  let config = { Directed.default_config with theta = 4 } in
  match Directed.run ~config c.t ~ep:c.vuln_func ~cfg ~on_ep:stop_at_first with
  | Directed.Failed _, _ -> ()
  | Directed.Reached _, _ -> Alcotest.fail "theta=4 cannot cover 32 iterations"

let directed_conflict_via_on_ep () =
  (* An on_ep callback that injects an impossible constraint reports
     Conflict. *)
  let c = Registry.find 1 in
  let cfg = Cfg.build c.t ~ep:c.vuln_func in
  let on_ep (st : Sym_state.t) ~count:_ ~args:_ ~file_pos:_ =
    match
      Solve.add st.store { Expr.rel = Eq; lhs = Expr.const 1; rhs = Expr.const 2 }
    with
    | Solve.Unsat -> Directed.Conflict
    | Solve.Ok -> Directed.Stop
  in
  match Directed.run c.t ~ep:c.vuln_func ~cfg ~on_ep with
  | Directed.Failed (Directed.Constraint_conflict 1), _ -> ()
  | _ -> Alcotest.fail "expected conflict at entry 1"

let directed_guiding_solvable () =
  (* Reaching ep must leave a satisfiable store whose model drives the
     concrete program to the same ep. *)
  let c = Registry.find 1 in
  let cfg = Cfg.build c.t ~ep:c.vuln_func in
  match Directed.run c.t ~ep:c.vuln_func ~cfg ~on_ep:stop_at_first with
  | Directed.Reached st, _ -> (
      match Solve.solve st.store with
      | Solve.Sat m ->
          let input =
            String.init st.max_read_off (fun i -> Char.chr (Solve.model_byte m i land 0xff))
          in
          let called = ref false in
          let hooks =
            {
              Octo_vm.Interp.no_hooks with
              on_call = (fun ~fname ~frame_id:_ ~args:_ -> if fname = c.vuln_func then called := true);
            }
          in
          ignore (Octo_vm.Interp.run ~hooks c.t ~input);
          check Alcotest.bool "guiding input reaches ep concretely" true !called
      | _ -> Alcotest.fail "guiding constraints unsolvable")
  | Directed.Failed f, _ -> Alcotest.failf "failed: %a" Directed.pp_failure f

let directed_prunes_unsat_preferred () =
  (* A branch whose condition is relational (two symbolic bytes) cannot be
     decided by interval reasoning, so the executor must try the
     distance-preferred direction through the solver.  Committing x < y
     first makes the later preferred direction x > y unsat: the state is
     pruned and the run survives through the fallback. *)
  let p =
    assemble ~name:"t" ~entry:"main"
      [
        fn "main" ~params:0
          [
            I (Sys (Open 1));
            I (Sys (Alloc (2, Imm 4)));
            I (Sys (Read (3, Reg 1, Reg 2, Imm 2)));
            I (Load8 (4, Reg 2, Imm 0));
            I (Load8 (5, Reg 2, Imm 1));
            I (Jif (Lt, Reg 4, Reg 5, "lt"));  (* toward ep: commits x < y *)
            I (Sys (Exit (Imm 1)));
            L "lt";
            I (Jif (Gt, Reg 4, Reg 5, "gt"));  (* preferred, but x > y is unsat *)
            I (Mov (6, Imm 0));
            I (Call ("epf", [], None));
            I (Sys (Exit (Imm 0)));
            L "gt";
            I (Call ("epf", [], None));
            I (Sys (Exit (Imm 0)));
          ];
        fn "epf" ~params:0 [ I (Ret (Imm 0)) ];
      ]
  in
  let cfg = Cfg.build p ~ep:"epf" in
  match Directed.run p ~ep:"epf" ~cfg ~on_ep:stop_at_first with
  | Directed.Reached _, stats ->
      check Alcotest.bool "pruned the unsat preferred direction" true
        (stats.states_pruned > 0)
  | Directed.Failed f, _ -> Alcotest.failf "failed: %a" Directed.pp_failure f

(* ------------------------------------------------------------------ *)
(* Speculative loop-retry *)

let model_input (st : Sym_state.t) =
  match Solve.solve st.store with
  | Solve.Sat m ->
      String.init st.max_read_off (fun i -> Char.chr (Solve.model_byte m i land 0xff))
  | _ -> Alcotest.fail "reached state should be solvable"

let directed_speculation_matches_serial () =
  (* Pair 9 needs a 38-deep loop-retry chain — the speculation machinery's
     consume / keep / respawn logic is exercised for many rounds.  The
     speculative run must agree with the serial run on the outcome, the
     guiding model, and every stats field (validated speculative attempts
     are merged as if they had run serially; discarded ones leave no
     trace). *)
  let c = Registry.find 9 in
  let cfg = Cfg.build c.t ~ep:c.vuln_func in
  let run spec_jobs = Directed.run ~spec_jobs c.t ~ep:c.vuln_func ~cfg ~on_ep:stop_at_first in
  match (run 1, run 4) with
  | (Directed.Reached st1, s1), (Directed.Reached st4, s4) ->
      check Alcotest.int "runs" s1.runs s4.runs;
      check Alcotest.int "loop retries" s1.loop_retries s4.loop_retries;
      check Alcotest.int "total steps" s1.total_steps s4.total_steps;
      check Alcotest.int "branches decided" s1.branches_decided s4.branches_decided;
      check Alcotest.int "states pruned" s1.states_pruned s4.states_pruned;
      check Alcotest.string "guiding model" (model_input st1) (model_input st4)
  | _ -> Alcotest.fail "both serial and speculative runs must reach ep"

let directed_speculation_metrics_absorbed () =
  (* Validated speculative attempts run on pool domains but their solver
     counters must be credited to the calling domain exactly once
     (Metrics.with_private / absorb) — a speculative run records the same
     deterministic counters a serial run does, and discarded attempts
     record nothing. *)
  let c = Registry.find 9 in
  let cfg = Cfg.build c.t ~ep:c.vuln_func in
  let counters spec_jobs =
    let (_ : Directed.outcome * Directed.stats), snap =
      Octo_util.Metrics.scoped (fun () ->
          Directed.run ~spec_jobs c.t ~ep:c.vuln_func ~cfg ~on_ep:stop_at_first)
    in
    match snap with
    | Some s ->
        List.map
          (fun ctr -> Octo_util.Metrics.counter_value s ctr)
          Octo_util.Metrics.
            [ Solver_nodes; Constraint_adds; Symex_states_forked; Symex_states_pruned ]
    | None -> Alcotest.fail "metrics collection was enabled"
  in
  Octo_util.Metrics.enable ();
  Fun.protect ~finally:Octo_util.Metrics.disable (fun () ->
      check
        (Alcotest.list Alcotest.int)
        "deterministic counters" (counters 1) (counters 4))

(* ------------------------------------------------------------------ *)
(* Naive execution *)

let naive_reaches_shallow () =
  let c = Registry.find 7 in
  match Naive.run c.t ~ep:c.vuln_func with
  | Naive.Reached _, _ -> ()
  | _ -> Alcotest.fail "opj_dump is shallow enough for naive BFS"

let naive_memerror_on_branchy () =
  List.iter
    (fun idx ->
      let c = Registry.find idx in
      match Naive.run c.t ~ep:c.vuln_func with
      | Naive.Mem_error _, stats ->
          check Alcotest.bool "states exploded" true
            (stats.peak_states > Naive.default_config.max_states)
      | _ -> Alcotest.failf "pair %d should MemError" idx)
    [ 8; 9 ]

let naive_state_cap_respected () =
  let c = Registry.find 9 in
  let config = { Naive.default_config with max_states = 64 } in
  match Naive.run ~config c.t ~ep:c.vuln_func with
  | Naive.Mem_error n, _ -> check Alcotest.bool "cap honored" true (n <= 64 + 2)
  | _ -> Alcotest.fail "expected MemError with tiny cap"

let suite =
  [
    tc "step: concrete branches followed" concrete_branches_followed;
    tc "step: symbolic branch reported" symbolic_branch_reported;
    tc "step: intervals decide impossible branch" branch_unsat_direction_rejected;
    tc "step: ep entry event" ep_entry_event;
    tc "step: file bytes become symbols" symbolic_memory_from_file;
    tc "step: clone isolation" clone_isolates_state;
    tc "directed: reaches ep on pairs 1-9" directed_reaches_every_triggerable_t;
    tc "directed: gif needs 32 loop retries" directed_loop_retries_on_gif;
    tc "directed: simple pair needs none" directed_no_retries_on_simple;
    tc "directed: program-dead on contradiction" directed_program_dead_on_contradiction;
    tc "directed: theta bounds retries" directed_theta_bounds_retries;
    tc "directed: conflict surfaces from on_ep" directed_conflict_via_on_ep;
    tc "directed: guiding input verified concretely" directed_guiding_solvable;
    tc "directed: prunes unsat preferred direction" directed_prunes_unsat_preferred;
    tc "directed: speculation matches serial" directed_speculation_matches_serial;
    tc "directed: speculation absorbs metrics" directed_speculation_metrics_absorbed;
    tc "naive: reaches shallow target" naive_reaches_shallow;
    tc "naive: MemError on branchy targets" naive_memerror_on_branchy;
    tc "naive: custom state cap" naive_state_cap_respected;
  ]
