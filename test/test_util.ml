(* Unit tests for Octo_util: PRNG determinism and byte helpers. *)

open Octo_util

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int "same stream" (Rng.bits a) (Rng.bits b)
  done

let rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let xs = List.init 8 (fun _ -> Rng.bits a) in
  let ys = List.init 8 (fun _ -> Rng.bits b) in
  check Alcotest.bool "different streams" true (xs <> ys)

let rng_int_range () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    check Alcotest.bool "in range" true (v >= 0 && v < 17)
  done

let rng_byte_range () =
  let r = Rng.create 9 in
  for _ = 1 to 1000 do
    let v = Rng.byte r in
    check Alcotest.bool "byte" true (v >= 0 && v <= 255)
  done

let rng_int_rejects_nonpositive () =
  let r = Rng.create 1 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let rng_split_independent () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  check Alcotest.bool "split differs" true (Rng.bits a <> Rng.bits b)

let rng_copy_preserves () =
  let a = Rng.create 11 in
  ignore (Rng.bits a);
  let b = Rng.copy a in
  check Alcotest.int "copy continues identically" (Rng.bits a) (Rng.bits b)

let rng_choose () =
  let r = Rng.create 3 in
  let arr = [| 10; 20; 30 |] in
  for _ = 1 to 50 do
    check Alcotest.bool "member" true (Array.mem (Rng.choose r arr) arr)
  done

let bytes_roundtrip () =
  let l = [ 0; 1; 127; 128; 255; 300 ] in
  let s = Bytes_util.of_int_list l in
  check (Alcotest.list Alcotest.int) "roundtrip masks to bytes"
    [ 0; 1; 127; 128; 255; 44 ] (Bytes_util.to_int_list s)

let u16le_layout () =
  check Alcotest.string "u16le" "\x34\x12" (Bytes_util.u16le 0x1234)

let u32le_layout () =
  check Alcotest.string "u32le" "\x78\x56\x34\x12" (Bytes_util.u32le 0x12345678)

let repeat_layout () =
  check Alcotest.string "repeat" "AAAA" (Bytes_util.repeat 4 0x41)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let hexdump_shape () =
  let d = Bytes_util.hexdump "ABCDEFGHIJKLMNOPQR" in
  check Alcotest.int "two lines" 2 (List.length (String.split_on_char '\n' (String.trim d)));
  check Alcotest.bool "ascii gutter shows text" true (contains ~needle:"ABCDEFGH" d);
  check Alcotest.bool "hex bytes shown" true (contains ~needle:"41 42 43" d)

let diff_offsets_basic () =
  check (Alcotest.list Alcotest.int) "single diff" [ 1 ] (Bytes_util.diff_offsets "abc" "aXc");
  check (Alcotest.list Alcotest.int) "equal" [] (Bytes_util.diff_offsets "abc" "abc");
  check (Alcotest.list Alcotest.int) "length tail" [ 3; 4 ] (Bytes_util.diff_offsets "abc" "abcde")

(* -- Metrics.percentile ------------------------------------------------- *)

module Metrics = Octo_util.Metrics

(* A snapshot with chosen taint-phase histogram buckets; every other
   phase stays empty so the None case is exercised by the same value. *)
let hist_snapshot buckets =
  let s = Metrics.zero () in
  let base = Metrics.phase_index Metrics.Taint * Metrics.nbuckets in
  List.iter (fun (i, n) -> s.Metrics.phase_hist.(base + i) <- n) buckets;
  s

let percentile_empty () =
  let s = Metrics.zero () in
  Alcotest.(check (option int)) "empty histogram" None (Metrics.percentile s Metrics.Taint 50.0)

let percentile_single_bucket () =
  (* All mass in bucket 5: every percentile answers its lower bound. *)
  let s = hist_snapshot [ (5, 10) ] in
  List.iter
    (fun pct ->
      Alcotest.(check (option int))
        (Printf.sprintf "p%.0f" pct)
        (Some 32) (Metrics.percentile s Metrics.Taint pct))
    [ 1.0; 50.0; 99.0; 100.0 ];
  Alcotest.(check (option int)) "other phase empty" None (Metrics.percentile s Metrics.Solve 50.0)

let percentile_split () =
  (* 90 spans in bucket 3, 10 in bucket 8: the p90 rank (90) still lands
     in bucket 3, anything above crosses into bucket 8. *)
  let s = hist_snapshot [ (3, 90); (8, 10) ] in
  Alcotest.(check (option int)) "p50" (Some 8) (Metrics.percentile s Metrics.Taint 50.0);
  Alcotest.(check (option int)) "p90" (Some 8) (Metrics.percentile s Metrics.Taint 90.0);
  Alcotest.(check (option int)) "p91" (Some 256) (Metrics.percentile s Metrics.Taint 91.0);
  Alcotest.(check (option int)) "p99" (Some 256) (Metrics.percentile s Metrics.Taint 99.0)

let percentile_bounds () =
  let s = hist_snapshot [ (0, 1) ] in
  Alcotest.check_raises "0 rejected" (Invalid_argument "Metrics.percentile") (fun () ->
      ignore (Metrics.percentile s Metrics.Taint 0.0));
  Alcotest.check_raises "101 rejected" (Invalid_argument "Metrics.percentile") (fun () ->
      ignore (Metrics.percentile s Metrics.Taint 101.0))

let qcheck_tests =
  [
    QCheck.Test.make ~name:"of_int_list/to_int_list roundtrip"
      QCheck.(list (int_bound 255))
      (fun l -> Bytes_util.(to_int_list (of_int_list l)) = l);
    QCheck.Test.make ~name:"diff_offsets empty iff equal"
      QCheck.(pair (string_of_size Gen.(0 -- 20)) (string_of_size Gen.(0 -- 20)))
      (fun (a, b) -> Bytes_util.diff_offsets a b = [] = (a = b));
    QCheck.Test.make ~name:"rng int always in bound"
      QCheck.(pair small_int (int_range 1 1000))
      (fun (seed, n) ->
        let r = Rng.create seed in
        let v = Rng.int r n in
        v >= 0 && v < n);
  ]

let suite =
  [
    tc "rng: determinism" rng_deterministic;
    tc "rng: seed sensitivity" rng_seed_sensitivity;
    tc "rng: int range" rng_int_range;
    tc "rng: byte range" rng_byte_range;
    tc "rng: rejects non-positive bound" rng_int_rejects_nonpositive;
    tc "rng: split independence" rng_split_independent;
    tc "rng: copy preserves state" rng_copy_preserves;
    tc "rng: choose members" rng_choose;
    tc "bytes: of_int_list masks" bytes_roundtrip;
    tc "bytes: u16le layout" u16le_layout;
    tc "bytes: u32le layout" u32le_layout;
    tc "bytes: repeat" repeat_layout;
    tc "bytes: hexdump shape" hexdump_shape;
    tc "bytes: diff_offsets" diff_offsets_basic;
    tc "percentile: empty histogram is None" percentile_empty;
    tc "percentile: single bucket answers its lower bound" percentile_single_bucket;
    tc "percentile: rank crosses buckets at the right pct" percentile_split;
    tc "percentile: pct outside (0, 100] rejected" percentile_bounds;
  ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests
