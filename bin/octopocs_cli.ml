(* Command-line interface to the OCTOPOCS reproduction.

   Subcommands:
     verify <idx>     run the full pipeline on one Table II pair
     verify-all       run all 15 pairs (optionally in parallel with --jobs)
                      and print the Table II summary
     inspect <idx>    show the pair's programs, PoC hexdump and ℓ
     fuzz <idx>       run the AFLFast baseline on the pair's T binary

   Exit codes of [verify] report the verdict, not the paper-match status:
     0 = Triggered, 1 = Not_triggerable, 2 = Failure, 3 = tool crash.
   [verify-all] keeps 0 = all pairs match the paper / 1 = some mismatch,
   with 3 still reserved for a crash of the tool itself. *)

open Cmdliner
module Registry = Octo_targets.Registry
module B = Octo_util.Bytes_util
module Faultinject = Octo_util.Faultinject

let say fmt = Format.printf (fmt ^^ "@.")

(* Per-pair pipeline configuration from the shared robustness flags.  The
   chaos seed derives one independent injector per pair (splitmix64 mixing
   of the pair index), so a batch's fault schedule does not depend on which
   worker domain picks up which job. *)
let config_for ?(dynamic = false) ~deadline ~chaos_seed idx =
  let inject =
    match chaos_seed with
    | None -> Faultinject.none
    | Some seed -> Faultinject.create ~seed:(seed lxor (idx * 0x9E3779B9)) ()
  in
  { Octopocs.default_config with dynamic_cfg = dynamic; deadline_s = deadline; inject }

let pp_degradations (r : Octopocs.report) =
  if r.degradations <> [] then
    say "  degraded: %s" (String.concat " -> " r.degradations)

let run_one ?(dynamic = false) ?deadline ?chaos_seed idx : Octopocs.report =
  let c = Registry.find idx in
  say "Pair %d: S=%s(%s)  T=%s(%s)  %s [%s]" c.idx c.s.pname c.s_version c.t.pname c.t_version
    c.vuln_id c.cwe;
  let config = config_for ~dynamic ~deadline ~chaos_seed idx in
  let r = Octopocs.run ~config ~s:c.s ~t:c.t ~poc:c.poc () in
  say "  ep      : %s" r.ep;
  say "  ℓ       : %s" (String.concat ", " r.ell);
  (match r.taint with
  | Some t ->
      say "  bunches : %d (ep entered %d times, %d primitive bytes)"
        (List.length t.bunches) t.ep_entries t.marked_offsets
  | None -> ());
  (match r.symex with
  | Some s ->
      say "  symex   : %d run(s), %d steps, %d branch decisions, %d loop retries" s.runs
        s.total_steps s.branches_decided s.loop_retries
  | None -> ());
  say "  verdict : %a  (expected %s)" Octopocs.pp_verdict r.verdict
    (Registry.expected_to_string c.expected);
  pp_degradations r;
  say "  elapsed : %.3fs" r.elapsed_s;
  (match r.verdict with
  | Octopocs.Triggered { poc'; _ } -> say "  poc' hexdump:@.%s" (B.hexdump poc')
  | _ -> ());
  let got = Octopocs.verdict_class r.verdict in
  let want = Registry.expected_to_string c.expected in
  if got = want then say "  MATCH" else say "  MISMATCH (%s vs %s)" got want;
  r

let verdict_exit (r : Octopocs.report) =
  match r.verdict with
  | Octopocs.Triggered _ -> 0
  | Octopocs.Not_triggerable _ -> 1
  | Octopocs.Failure _ -> 2

let matches (c : Registry.case) (r : Octopocs.report) =
  Octopocs.verdict_class r.verdict = Registry.expected_to_string c.expected

(* Shared robustness flags. *)
let deadline_arg =
  Arg.(value & opt (some float) None
       & info [ "deadline" ] ~docv:"SECS"
           ~doc:"Wall-clock budget per pair; expiry yields a Failure verdict, never a hang.")

let chaos_seed_arg =
  Arg.(value & opt (some int) None
       & info [ "chaos-seed" ] ~docv:"SEED"
           ~doc:"Enable deterministic fault injection, deriving one independent \
                 fault stream per pair from $(docv).")

let verify_cmd =
  let idx = Arg.(required & pos 0 (some int) None & info [] ~docv:"IDX") in
  let dynamic =
    Arg.(value & flag
         & info [ "dynamic-cfg" ]
             ~doc:"Repair CFG-recovery failures with dynamic devirtualization")
  in
  Cmd.v (Cmd.info "verify" ~doc:"Verify one Table II pair")
    Term.(const (fun dynamic deadline chaos_seed idx ->
              verdict_exit (run_one ~dynamic ?deadline ?chaos_seed idx))
          $ dynamic $ deadline_arg $ chaos_seed_arg $ idx)

let run_all jobs retries deadline chaos_seed =
  if jobs <= 1 && retries = 0 then begin
    let failures =
      List.fold_left
        (fun acc (c : Registry.case) ->
          let r = run_one ?deadline ?chaos_seed c.idx in
          if matches c r then acc else acc + 1)
        0 Registry.all
    in
    say "%d/%d pairs match the paper's verdicts" (List.length Registry.all - failures)
      (List.length Registry.all);
    if failures = 0 then 0 else 1
  end
  else begin
    (* Parallel batch: verify on a fixed pool of worker domains, then print
       the summary in registry order.  Each job carries its own config so
       fault streams stay per-pair. *)
    let t0 = Unix.gettimeofday () in
    let batch =
      List.map
        (fun (c : Registry.case) ->
          let config = config_for ~deadline ~chaos_seed c.idx in
          Octopocs.job ~config ~label:(string_of_int c.idx) ~s:c.s ~t:c.t ~poc:c.poc ())
        Registry.all
    in
    let results = Octopocs.run_all ~jobs ~retries batch in
    let elapsed = Unix.gettimeofday () -. t0 in
    let failures =
      List.fold_left2
        (fun acc (c : Registry.case) (label, (r : Octopocs.report)) ->
          assert (label = string_of_int c.idx);
          let got = Octopocs.verdict_class r.verdict in
          let want = Registry.expected_to_string c.expected in
          say "Pair %-3s %-22s -> %-40s %s%s" label
            (Printf.sprintf "%s/%s" c.s.pname c.t.pname)
            (Fmt.str "%a" Octopocs.pp_verdict r.verdict)
            (if got = want then "MATCH" else Printf.sprintf "MISMATCH (want %s)" want)
            (if r.degradations = [] then ""
             else Printf.sprintf "  [degraded: %s]" (String.concat " -> " r.degradations));
          if got = want then acc else acc + 1)
        0 Registry.all results
    in
    say "%d/%d pairs match the paper's verdicts (%.3fs wall, %d worker domain(s))"
      (List.length Registry.all - failures)
      (List.length Registry.all)
      elapsed
      (Octo_util.Pool.effective_jobs jobs);
    if failures = 0 then 0 else 1
  end

let verify_all_cmd =
  let jobs =
    Arg.(value & opt int 1
         & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:"Verify pairs in parallel on $(docv) worker domains (default 1: serial).")
  in
  let retries =
    Arg.(value & opt int 0
         & info [ "retries" ] ~docv:"N"
             ~doc:"Retry a crashed pair $(docv) extra times before recording \
                   its worker-crash Failure (default 0).")
  in
  Cmd.v (Cmd.info "verify-all" ~doc:"Verify all 15 pairs")
    Term.(const run_all $ jobs $ retries $ deadline_arg $ chaos_seed_arg)

let inspect idx =
  let c = Registry.find idx in
  say "S = %s (%d instructions), T = %s (%d instructions)" c.s.pname
    (Octo_vm.Asm.size_of_code c.s) c.t.pname (Octo_vm.Asm.size_of_code c.t);
  let pairs = Octo_clone.Clone.shared_functions c.s c.t in
  say "shared functions (ℓ): %s"
    (String.concat ", "
       (List.map (fun (p : Octo_clone.Clone.clone_pair) -> p.t_func) pairs));
  say "PoC (%d bytes):@.%s" (String.length c.poc) (B.hexdump c.poc);
  0

let inspect_cmd =
  let idx = Arg.(required & pos 0 (some int) None & info [] ~docv:"IDX") in
  Cmd.v (Cmd.info "inspect" ~doc:"Show a pair's programs and PoC") Term.(const inspect $ idx)

let fuzz idx =
  let c = Registry.find idx in
  let seeds = [ c.poc ] in
  let r =
    Octo_fuzz.Aflfast.run
      ~config:{ Octo_fuzz.Aflfast.default_config with max_execs = 200_000 }
      c.t ~seeds ~crash_in:(Octo_clone.Clone.ell_names (Octo_clone.Clone.shared_functions c.s c.t))
  in
  (match r.crash_input with
  | Some input ->
      say "crash found after %d execs (%.2fs): %d bytes" r.execs r.elapsed_s
        (String.length input)
  | None -> say "no crash in %d execs (%.2fs)" r.execs r.elapsed_s);
  0

let fuzz_cmd =
  let idx = Arg.(required & pos 0 (some int) None & info [] ~docv:"IDX") in
  Cmd.v (Cmd.info "fuzz" ~doc:"Run the AFLFast baseline on a pair's T") Term.(const fuzz $ idx)

let () =
  (* Pool/worker diagnostics (swallowed task exceptions, retry notices) go
     through Logs; without a reporter they would be invisible. *)
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some Logs.Warning);
  let info = Cmd.info "octopocs" ~doc:"Verify propagated vulnerable code with reformed PoCs" in
  (* ~catch:false so an unexpected exception maps to the documented tool-
     crash exit code instead of cmdliner's 125. *)
  match Cmd.eval' ~catch:false (Cmd.group info [ verify_cmd; verify_all_cmd; inspect_cmd; fuzz_cmd ]) with
  | code -> exit code
  | exception e ->
      Format.eprintf "octopocs: tool crash: %s@." (Printexc.to_string e);
      exit 3
